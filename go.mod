module racesim

go 1.24
