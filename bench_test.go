package racesim

import (
	"bytes"
	"testing"

	"racesim/internal/hw"
	"racesim/internal/irace"
	"racesim/internal/perturb"
	"racesim/internal/sim"
	"racesim/internal/trace"
	"racesim/internal/ubench"
	"racesim/internal/validate"
	"racesim/internal/workload"
)

// The benchmarks below regenerate each table/figure of the paper at a
// reduced scale, so `go test -bench .` both exercises and times the full
// reproduction pipeline. `racesim experiments` produces the full renderings.

func benchPlatform(b *testing.B) *hw.Platform {
	b.Helper()
	p, err := hw.Firefly()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkTable1MicrobenchSuite generates and records the 40-benchmark
// suite (Table I).
func BenchmarkTable1MicrobenchSuite(b *testing.B) {
	opts := ubench.Options{Scale: 0.002}
	for i := 0; i < b.N; i++ {
		total := 0
		for _, bench := range ubench.Suite() {
			tr, err := bench.Trace(opts)
			if err != nil {
				b.Fatal(err)
			}
			total += tr.Len()
		}
		b.ReportMetric(float64(total), "instructions")
	}
}

// BenchmarkTable2SPECWorkloads synthesizes the 11 Table II workloads.
func BenchmarkTable2SPECWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range workload.Profiles() {
			if _, err := workload.Generate(p, workload.Options{Events: 30_000}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig2RacingDynamics runs a small irace round and reports the
// number of elimination events (Figure 2).
func BenchmarkFig2RacingDynamics(b *testing.B) {
	p := benchPlatform(b)
	ms, err := validate.MeasureSuite(p.A53, ubench.Options{Scale: 0.002})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := validate.Tune(sim.PublicA53(), ms, validate.TuneOptions{Budget: 600, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Irace.RaceTrace)), "race-events")
	}
}

// BenchmarkFig4MicrobenchTuning measures untuned-vs-tuned error on the
// micro-benchmark suite (Figure 4).
func BenchmarkFig4MicrobenchTuning(b *testing.B) {
	p := benchPlatform(b)
	ms, err := validate.MeasureSuite(p.A53, ubench.Options{Scale: 0.002})
	if err != nil {
		b.Fatal(err)
	}
	before, err := validate.Errors(sim.PublicA53(), ms)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := validate.Tune(sim.PublicA53(), ms, validate.TuneOptions{Budget: 800, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		beforeMean, err := validate.MeanError(before)
		if err != nil {
			b.Fatal(err)
		}
		tunedMean, err := validate.MeanError(res.Errors)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(beforeMean*100, "untuned-err-pct")
		b.ReportMetric(tunedMean*100, "tuned-err-pct")
	}
}

func specWorkloads(b *testing.B, board *hw.Board, events int) []perturb.Workload {
	b.Helper()
	var ws []perturb.Workload
	for _, p := range workload.Profiles() {
		tr, err := workload.Generate(p, workload.Options{Events: events})
		if err != nil {
			b.Fatal(err)
		}
		c, err := board.Measure(tr)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, perturb.Workload{Name: p.Name, Trace: tr, Counters: c})
	}
	return ws
}

func specMeanError(b *testing.B, cfg sim.Config, ws []perturb.Workload) float64 {
	b.Helper()
	total := 0.0
	for _, w := range ws {
		res, err := cfg.Run(w.Trace)
		if err != nil {
			b.Fatal(err)
		}
		e := res.CPI() - w.Counters.CPI
		if e < 0 {
			e = -e
		}
		total += e / w.Counters.CPI
	}
	return total / float64(len(ws))
}

// BenchmarkFig5SpecA53 evaluates a validated in-order model on the SPEC
// workloads (Figure 5). The board's true config stands in for the tuned
// model so the bench isolates evaluation cost; the full tuned-model figure
// comes from `racesim experiments`.
func BenchmarkFig5SpecA53(b *testing.B) {
	p := benchPlatform(b)
	ws := specWorkloads(b, p.A53, 30_000)
	tuned := p.A53.TrueConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(specMeanError(b, tuned, ws)*100, "cpi-err-pct")
	}
}

// BenchmarkFig6SpecA72 is the out-of-order counterpart (Figure 6).
func BenchmarkFig6SpecA72(b *testing.B) {
	p := benchPlatform(b)
	ws := specWorkloads(b, p.A72, 30_000)
	tuned := p.A72.TrueConfig()
	// The public model cannot express the spatial prefetcher; evaluating
	// the truth config with the closest expressible prefetcher mirrors
	// the tuned model's residual error.
	tuned.Mem.L2.Prefetch.Kind = "stride"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(specMeanError(b, tuned, ws)*100, "cpi-err-pct")
	}
}

// BenchmarkFig7PerturbA53 runs the near-optimum worst-case search
// (Figure 7).
func BenchmarkFig7PerturbA53(b *testing.B) {
	p := benchPlatform(b)
	ws := specWorkloads(b, p.A53, 15_000)[:6]
	tuned := p.A53.TrueConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := perturb.WorstNearOptimum(tuned, ws, perturb.Options{
			Restarts: 1, MaxPasses: 1, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanError*100, "worst-err-pct")
	}
}

// BenchmarkFig8PerturbA72 is the out-of-order counterpart (Figure 8).
func BenchmarkFig8PerturbA72(b *testing.B) {
	p := benchPlatform(b)
	ws := specWorkloads(b, p.A72, 15_000)[:6]
	tuned := p.A72.TrueConfig()
	tuned.Mem.L2.Prefetch.Kind = "stride"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := perturb.WorstNearOptimum(tuned, ws, perturb.Options{
			Restarts: 1, MaxPasses: 1, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanError*100, "worst-err-pct")
	}
}

// BenchmarkStagedValidation runs the full Figure 1 pipeline at small scale
// (Sec. IV-B narrative).
func BenchmarkStagedValidation(b *testing.B) {
	p := benchPlatform(b)
	for i := 0; i < b.N; i++ {
		stages, err := validate.Pipeline(p.A53, sim.PublicA53(), validate.PipelineOptions{
			BudgetRound1: 400, BudgetRound2: 500, Seed: int64(i), UbenchScale: 0.002,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stages[0].MeanError*100, "untuned-pct")
		b.ReportMetric(stages[len(stages)-1].MeanError*100, "final-pct")
	}
}

// BenchmarkAblationTunerComparison compares iterated racing against random
// search at equal budget (design-choice ablation from DESIGN.md).
func BenchmarkAblationTunerComparison(b *testing.B) {
	p := benchPlatform(b)
	ms, err := validate.MeasureSuite(p.A53, ubench.Options{Scale: 0.002})
	if err != nil {
		b.Fatal(err)
	}
	eval := &validate.Evaluator{Base: sim.PublicA53(), Ms: ms}
	space, err := sim.Space(sim.InOrder)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner, err := irace.New(space, eval, irace.Options{Budget: 600, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		raced, err := tuner.Run()
		if err != nil {
			b.Fatal(err)
		}
		random, err := irace.RandomSearch(space, eval, irace.Options{Budget: 600, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(raced.BestCost*100, "irace-cost-pct")
		b.ReportMetric(random.BestCost*100, "random-cost-pct")
	}
}

// BenchmarkSimulatorInOrderThroughput measures raw in-order simulation
// speed (instructions simulated per second drive irace turnaround, the
// paper's Sec. III-C concern).
func BenchmarkSimulatorInOrderThroughput(b *testing.B) {
	p, ok := ubench.ByName("MIP")
	if !ok {
		b.Fatal("missing MIP")
	}
	tr, err := p.Trace(ubench.Options{Scale: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.PublicA53()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tr.Len()))
}

// BenchmarkSimulatorOoOThroughput is the out-of-order counterpart.
func BenchmarkSimulatorOoOThroughput(b *testing.B) {
	p, ok := ubench.ByName("MIP")
	if !ok {
		b.Fatal("missing MIP")
	}
	tr, err := p.Trace(ubench.Options{Scale: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.PublicA72()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tr.Len()))
}

// BenchmarkTraceRoundTrip measures RIFT encode/decode throughput.
func BenchmarkTraceRoundTrip(b *testing.B) {
	p, _ := ubench.ByName("MD")
	tr, err := p.Trace(ubench.Options{Scale: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		got, err := trace.ReadFrom(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if got.Len() != tr.Len() {
			b.Fatal("round trip length mismatch")
		}
	}
}
