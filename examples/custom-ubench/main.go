// custom-ubench shows how to extend the validation suite with your own
// targeted micro-benchmark: write it in racesim assembly, record it, and
// check whether the model tracks the reference hardware on it.
//
// The benchmark here stresses store-to-load forwarding through the same
// cache line from two alternating addresses — a behaviour the Table I
// suite touches only lightly (STc).
package main

import (
	"fmt"
	"log"

	"racesim/internal/asm"
	"racesim/internal/hw"
	"racesim/internal/sim"
	"racesim/internal/trace"
)

const src = `
	.equ BUF, 0x50000
	.org 0x1000
	la   x1, BUF
	movz x2, #0
	la   x28, 12000
loop:
	// Ping-pong store->load pairs within one line.
	strx x2, [x1, #0]
	ldrx x3, [x1, #0]
	strx x3, [x1, #8]
	ldrx x2, [x1, #8]
	addi x2, x2, #1
	subi x28, x28, #1
	cbnz x28, loop
	halt
`

func main() {
	prog, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Record("fwd-pingpong", prog, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	plat, err := hw.Firefly()
	if err != nil {
		log.Fatal(err)
	}
	hwC, err := plat.A53.Measure(tr)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.PublicA53().Run(tr)
	if err != nil {
		log.Fatal(err)
	}

	errPct := (res.CPI() - hwC.CPI) / hwC.CPI * 100
	fmt.Printf("custom benchmark: %d dynamic instructions\n", tr.Len())
	fmt.Printf("reference board CPI: %.3f\n", hwC.CPI)
	fmt.Printf("untuned model CPI:   %.3f  (error %+.1f%%)\n", res.CPI(), errPct)
	fmt.Println()
	fmt.Println("To make this benchmark part of tuning, add it to the suite in")
	fmt.Println("internal/ubench and it will participate in every race: each")
	fmt.Println("irace instance is one benchmark, so new benchmarks sharpen the")
	fmt.Println("statistical elimination for the components they stress.")
}
