// tune-a53 demonstrates the core of the paper: recover undisclosed
// Cortex-A53 parameters by racing simulator configurations against
// reference-hardware measurements of the targeted micro-benchmark suite,
// then verify how many hidden parameters the tuner actually recovered.
package main

import (
	"fmt"
	"log"
	"sort"

	"racesim/internal/hw"
	"racesim/internal/sim"
	"racesim/internal/ubench"
	"racesim/internal/validate"
)

func main() {
	plat, err := hw.Firefly()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("measuring the 40 micro-benchmarks on the reference A53 (one-time)...")
	ms, err := validate.MeasureSuite(plat.A53, ubench.Options{Scale: 0.004})
	if err != nil {
		log.Fatal(err)
	}

	public := sim.PublicA53()
	before, err := validate.Errors(public, ms)
	if err != nil {
		log.Fatal(err)
	}
	worst, _, err := validate.MaxError(before)
	if err != nil {
		log.Fatal(err)
	}
	beforeMean, err := validate.MeanError(before)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("untuned model: mean CPI error %.1f%% (worst: %s at %.1f%%)\n\n",
		beforeMean*100, worst.Name, worst.Error*100)

	fmt.Println("racing configurations with irace (budget 2000)...")
	res, err := validate.Tune(public, ms, validate.TuneOptions{
		Budget: 2000,
		Seed:   42,
		Log:    func(f string, a ...any) { fmt.Printf("  "+f+"\n", a...) },
	})
	if err != nil {
		log.Fatal(err)
	}
	tunedMean, err := validate.MeanError(res.Errors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntuned model: mean CPI error %.1f%%\n", tunedMean*100)

	// Post-hoc: compare recovered parameters against the hidden truth.
	truth := sim.Extract(plat.A53.TrueConfig())
	tuned := sim.Extract(res.Tuned)
	var names []string
	for n := range truth {
		names = append(names, n)
	}
	sort.Strings(names)
	recovered := 0
	fmt.Println("\nparameter recovery (tuned vs hidden truth, mismatches shown):")
	for _, n := range names {
		if tuned[n] == truth[n] {
			recovered++
		} else {
			fmt.Printf("  %-28s tuned %-10s truth %s\n", n, tuned[n], truth[n])
		}
	}
	fmt.Printf("recovered %d/%d hidden parameters exactly\n", recovered, len(names))
	fmt.Println("\n(parameters that differ usually have negligible CPI impact on the")
	fmt.Println(" suite — exactly the specification-error blind spot Figs. 7-8 probe)")
}
