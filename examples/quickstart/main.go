// Quickstart: assemble a small program for the racesim ISA, record its
// trace with the functional emulator, and run it through both core models.
package main

import (
	"fmt"
	"log"

	"racesim/internal/asm"
	"racesim/internal/sim"
	"racesim/internal/trace"
)

const src = `
	.equ BUF, 0x40000
	.org 0x1000
	// Sum an array of 512 quads, then scale the running sum.
	la   x1, BUF
	movz x2, #512      // elements
	movz x3, #0        // sum
loop:
	ldrx x4, [x1, #0]
	add  x3, x3, x4
	addi x1, x1, #8
	subi x2, x2, #1
	cbnz x2, loop
	// A short floating-point tail.
	scvtf v1, x3
	movz x5, #3
	scvtf v2, x5
	fdiv v3, v1, v2
	fcvtzs x6, v3
	halt
`

func main() {
	prog, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Record("quickstart", prog, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d dynamic instructions\n\n", tr.Len())

	for _, cfg := range []sim.Config{sim.PublicA53(), sim.PublicA72()} {
		res, err := cfg.Run(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s (%-7s)  CPI %.3f  cycles %-6d  L1D miss %.1f%%  branch MPKI %.2f\n",
			cfg.Name, cfg.Kind, res.CPI(), res.Cycles,
			res.Mem.L1D.MissRate()*100, res.Branch.MPKI(res.Instructions))
	}
}
