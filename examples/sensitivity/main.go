// sensitivity reproduces the paper's Figures 7-8 in miniature: start from
// an accurate model and show how badly CPI error inflates when every
// parameter is allowed to drift a single step from its optimum.
package main

import (
	"fmt"
	"log"

	"racesim/internal/hw"
	"racesim/internal/perturb"
	"racesim/internal/workload"
)

func main() {
	plat, err := hw.Firefly()
	if err != nil {
		log.Fatal(err)
	}

	// Use the board's own configuration as the "perfectly tuned" model —
	// its only error against the board is measurement noise — so the
	// experiment isolates the cost of near-optimum specification errors.
	tuned := plat.A53.TrueConfig()

	fmt.Println("measuring SPEC-like workloads on the reference A53...")
	var ws []perturb.Workload
	for _, p := range workload.Profiles() {
		tr, err := workload.Generate(p, workload.Options{Events: 40_000})
		if err != nil {
			log.Fatal(err)
		}
		c, err := plat.A53.Measure(tr)
		if err != nil {
			log.Fatal(err)
		}
		ws = append(ws, perturb.Workload{Name: p.Name, Trace: tr, Counters: c})
	}

	res, err := perturb.WorstNearOptimum(tuned, ws, perturb.Options{
		Restarts: 2,
		Seed:     7,
		Log:      func(f string, a ...any) { fmt.Printf("  "+f+"\n", a...) },
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nworst one-step configuration deviates in %d parameters\n", res.Deviations)
	fmt.Printf("mean CPI error: %.1f%%\n\n", res.MeanError*100)
	for i, w := range ws {
		fmt.Printf("  %-10s %6.1f%%\n", w.Name, res.Errors[i]*100)
	}
	fmt.Println("\nEvery parameter is individually 'reasonable' (one step from truth),")
	fmt.Println("yet the compound model is badly wrong — the paper's argument for")
	fmt.Println("automated hardware validation.")
}
