package racesim

import (
	"fmt"
	"testing"

	"racesim/internal/sim"
	"racesim/internal/trace"
	"racesim/internal/ubench"
)

// Replay micro-benchmarks: the lane-batched path (sim.RunBatch) and the
// decode-once columnar path (Config.Run) against the legacy per-event
// decode oracle (runCursor in replay_parity_test.go), on a single trace
// and on the multi-config sweep that dominates tuning and perturbation
// runs. MB/s numbers read as simulated instructions per microsecond
// (1 "byte" = 1 instruction). Results are recorded in BENCH_replay.json.

func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	p, ok := ubench.ByName("MIP")
	if !ok {
		b.Fatal("missing MIP")
	}
	tr, err := p.Trace(ubench.Options{Scale: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// sweepConfigs builds distinct tuner-candidate-style variants of a preset,
// mirroring what one irace iteration replays over a single trace.
func sweepConfigs(base sim.Config) []sim.Config {
	lat := []int{2, 3, 4}
	l2 := []int{9, 12, 15, 18}
	out := make([]sim.Config, 0, len(lat)*len(l2))
	for _, l1 := range lat {
		for _, l := range l2 {
			cfg := base
			cfg.Mem.L1D.HitLatency = l1
			cfg.Mem.L2.HitLatency = l
			out = append(out, cfg)
		}
	}
	return out
}

// BenchmarkInOrderReplay measures single-trace decoded replay throughput
// on the in-order model.
func BenchmarkInOrderReplay(b *testing.B) {
	tr := benchTrace(b)
	cfg := sim.PublicA53()
	tr.Decoded(cfg.DecoderDepBug) // decode outside the measured region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tr.Len()))
}

// BenchmarkInOrderReplayCursor is the legacy-path baseline for
// BenchmarkInOrderReplay.
func BenchmarkInOrderReplayCursor(b *testing.B) {
	tr := benchTrace(b)
	cfg := sim.PublicA53()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runCursor(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tr.Len()))
}

// BenchmarkOOOReplay measures single-trace decoded replay throughput on
// the out-of-order model.
func BenchmarkOOOReplay(b *testing.B) {
	tr := benchTrace(b)
	cfg := sim.PublicA72()
	tr.Decoded(cfg.DecoderDepBug)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tr.Len()))
}

// BenchmarkOOOReplayCursor is the legacy-path baseline for
// BenchmarkOOOReplay.
func BenchmarkOOOReplayCursor(b *testing.B) {
	tr := benchTrace(b)
	cfg := sim.PublicA72()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runCursor(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tr.Len()))
}

// BenchmarkSweepDecodeOnce replays one trace under 12 configurations
// through the decode-once path: the static decode is computed once and
// shared by every configuration.
func BenchmarkSweepDecodeOnce(b *testing.B) {
	tr := benchTrace(b)
	configs := sweepConfigs(sim.PublicA53())
	tr.Decoded(configs[0].DecoderDepBug)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range configs {
			if _, err := cfg.Run(tr); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(tr.Len() * len(configs)))
}

// BenchmarkSweepPerConfigDecode is the seed path: every configuration
// re-decodes the trace through its own per-model decode cache.
func BenchmarkSweepPerConfigDecode(b *testing.B) {
	tr := benchTrace(b)
	configs := sweepConfigs(sim.PublicA53())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range configs {
			if _, err := runCursor(cfg, tr); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(tr.Len() * len(configs)))
}

// BenchmarkSweepBatched replays one trace under 12 configurations in a
// single chunked lane-major column walk (sim.RunBatch), sharing the
// decode and the behavior table. This is the acceptance benchmark for
// the batched-replay work: >= 3x instructions/sec over the per-config
// decode baseline recorded at the seed commit (see BENCH_replay.json).
func BenchmarkSweepBatched(b *testing.B) {
	tr := benchTrace(b)
	configs := sweepConfigs(sim.PublicA53())
	d := tr.Decoded(configs[0].DecoderDepBug)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunBatch(configs, d); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tr.Len() * len(configs)))
}

// BenchmarkSweepBatchedLanes measures how batched throughput scales with
// the lane count: the same 16 configurations replayed in chunks of 1, 2,
// 4, 8 and 16 lanes per walk.
func BenchmarkSweepBatchedLanes(b *testing.B) {
	tr := benchTrace(b)
	base := sweepConfigs(sim.PublicA53())
	configs := make([]sim.Config, 0, 16)
	for i := 0; len(configs) < 16; i++ {
		cfg := base[i%len(base)]
		cfg.MSHRs = 2 + i/len(base) // keep every config distinct
		configs = append(configs, cfg)
	}
	d := tr.Decoded(configs[0].DecoderDepBug)
	for _, lanes := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for lo := 0; lo < len(configs); lo += lanes {
					hi := lo + lanes
					if hi > len(configs) {
						hi = len(configs)
					}
					if _, err := sim.RunBatch(configs[lo:hi], d); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.SetBytes(int64(tr.Len() * len(configs)))
		})
	}
}
