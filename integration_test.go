package racesim

import (
	"path/filepath"
	"strings"
	"testing"

	"racesim/internal/asm"
	"racesim/internal/irace"
	"racesim/internal/isa"
	"racesim/internal/trace"
	"racesim/internal/ubench"
	"racesim/internal/validate"
	"racesim/internal/workload"
)

// TestEndToEndAssembleTraceSimulate walks the full front-end-to-back-end
// path: source text -> program -> emulated trace -> RIFT file -> reload ->
// both timing models.
func TestEndToEndAssembleTraceSimulate(t *testing.T) {
	prog, err := asm.Assemble(`
		.equ BUF, 0x30000
		.org 0x1000
		la x1, BUF
		la x9, 3000
	loop:
		ldrx x2, [x1, #0]
		addi x2, x2, #1
		strx x2, [x1, #0]
		addi x1, x1, #64
		andi x1, x1, #0xFFFF
		subi x9, x9, #1
		cbnz x9, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Record("e2e", prog, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "e2e.rift")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{PublicA53(), PublicA72()} {
		direct, err := cfg.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		reloaded, err := cfg.Run(loaded)
		if err != nil {
			t.Fatal(err)
		}
		if direct != reloaded {
			t.Errorf("%s: trace serialization changed the timing result", cfg.Name)
		}
	}
}

// TestEndToEndTinyValidation runs the whole methodology loop at the
// smallest possible scale through the public facade.
func TestEndToEndTinyValidation(t *testing.T) {
	plat, err := Firefly()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := MeasureSuite(plat.A53, BenchOptions{Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(PublicA53(), ms, TuneOptions{Budget: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before, err := validate.Errors(PublicA53(), ms)
	if err != nil {
		t.Fatal(err)
	}
	afterMean, err := validate.MeanError(res.Errors)
	if err != nil {
		t.Fatal(err)
	}
	beforeMean, err := validate.MeanError(before)
	if err != nil {
		t.Fatal(err)
	}
	if afterMean >= beforeMean {
		t.Errorf("facade tuning did not improve: %.3f -> %.3f", beforeMean, afterMean)
	}
}

// TestTunedConfigSurvivesJSON tunes, serializes, reloads, and confirms the
// reloaded model reproduces identical results.
func TestTunedConfigSurvivesJSON(t *testing.T) {
	plat, err := Firefly()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ubench.ByName("CCh")
	tr, err := b.Trace(ubench.Options{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	tuned := plat.A53.TrueConfig()
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := tuned.MarshalJSONFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tuned.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := loaded.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Error("JSON round trip changed simulation results")
	}
}

// TestDecoderBugOnlyAffectsTiming confirms the reproduced Capstone-style
// bug perturbs timing while leaving the functional trace identical.
func TestDecoderBugOnlyAffectsTiming(t *testing.T) {
	b, _ := ubench.ByName("EF")
	tr1, err := b.Trace(ubench.Options{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := b.Trace(ubench.Options{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Len() != tr2.Len() {
		t.Fatal("trace generation is not deterministic")
	}
	good := PublicA53()
	good.DecoderDepBug = false
	bad := PublicA53()
	bad.DecoderDepBug = true
	gres, err := good.Run(tr1)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := bad.Run(tr1)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Cycles == bres.Cycles {
		t.Error("decoder bug had no timing effect on an FP-chain benchmark")
	}
	if gres.Instructions != bres.Instructions {
		t.Error("decoder bug changed the instruction count")
	}
}

// TestWorkloadsAreDistinguishable checks that different Table II profiles
// produce measurably different behaviour on the same board.
func TestWorkloadsAreDistinguishable(t *testing.T) {
	plat, err := Firefly()
	if err != nil {
		t.Fatal(err)
	}
	cpis := map[string]float64{}
	for _, name := range []string{"mcf", "imagick", "deepsjeng"} {
		p, _ := workload.ByName(name)
		wtr, err := workload.Generate(p, workload.Options{Events: 40_000})
		if err != nil {
			t.Fatal(err)
		}
		c, err := plat.A53.Measure(wtr)
		if err != nil {
			t.Fatal(err)
		}
		cpis[name] = c.CPI
	}
	if cpis["mcf"] <= cpis["imagick"] {
		t.Errorf("mcf CPI %.2f should exceed imagick %.2f", cpis["mcf"], cpis["imagick"])
	}
}

// TestParamSpaceRoundTripsThroughDisassembler is a cross-module sanity
// check: every µbench program disassembles, and its listing mentions the
// mnemonics its category implies.
func TestSuiteDisassembles(t *testing.T) {
	for _, name := range []string{"MD", "CS1", "DP1d", "EM1"} {
		b, _ := ubench.ByName(name)
		prog, err := b.Program(ubench.Options{})
		if err != nil {
			t.Fatal(err)
		}
		listing, err := isa.DisassembleProgram(prog)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(listing) == 0 {
			t.Fatalf("%s: empty listing", name)
		}
	}
	b, _ := ubench.ByName("CS1")
	prog, _ := b.Program(ubench.Options{})
	listing, _ := isa.DisassembleProgram(prog)
	if !strings.Contains(listing, "br x") {
		t.Error("CS1 listing lacks its indirect branch")
	}
}

// TestAblationRacingBeatsNoElimination verifies the design-choice ablation
// from DESIGN.md: with elimination disabled, the same budget explores
// fewer configurations and lands on a worse result (or at best equal).
func TestAblationRacingBeatsNoElimination(t *testing.T) {
	plat, err := Firefly()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := MeasureSuite(plat.A53, BenchOptions{Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	eval := &validate.Evaluator{Base: PublicA53(), Ms: ms}
	space, err := SpaceFor(InOrder)
	if err != nil {
		t.Fatal(err)
	}
	run := func(disable bool) float64 {
		tu, err := irace.New(space, eval, irace.Options{
			Budget: 700, Seed: 5, DisableElimination: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tu.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.BestCost
	}
	with := run(false)
	without := run(true)
	t.Logf("ablation: racing %.3f vs no-elimination %.3f", with, without)
	if with > without*1.5 {
		t.Errorf("racing (%.3f) much worse than no-elimination (%.3f)", with, without)
	}
}
