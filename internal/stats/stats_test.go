package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, StdDev(xs), 2.13809, 1e-4, "stddev")
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{3, 1, 4, 1, 5})
	want := []float64{3, 1.5, 4, 1.5, 5}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("rank[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		approx(t, GammaP(1, x), 1-math.Exp(-x), 1e-10, "GammaP(1,x)")
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.2, 1, 3} {
		approx(t, GammaP(0.5, x), math.Erf(math.Sqrt(x)), 1e-10, "GammaP(0.5,x)")
	}
}

func TestChiSquareSFKnownValues(t *testing.T) {
	// Critical values: chi2(0.05, df) quantiles.
	approx(t, ChiSquareSF(3.841, 1), 0.05, 2e-3, "chi2 df=1")
	approx(t, ChiSquareSF(5.991, 2), 0.05, 2e-3, "chi2 df=2")
	approx(t, ChiSquareSF(16.919, 9), 0.05, 2e-3, "chi2 df=9")
	if ChiSquareSF(0, 3) != 1 {
		t.Error("SF(0) should be 1")
	}
}

func TestStudentTSFKnownValues(t *testing.T) {
	// Two-sided p for t=2.086, df=20 is 0.05 (critical value table).
	approx(t, StudentTSF(2.086, 20), 0.05, 2e-3, "t df=20")
	approx(t, StudentTSF(2.776, 4), 0.05, 2e-3, "t df=4")
	approx(t, StudentTSF(0, 10), 1.0, 1e-9, "t=0")
}

func TestNormalCDF(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-12, "Phi(0)")
	approx(t, NormalCDF(1.959964), 0.975, 1e-5, "Phi(1.96)")
	approx(t, NormalCDF(-1.959964), 0.025, 1e-5, "Phi(-1.96)")
}

func TestBetaIncBounds(t *testing.T) {
	if BetaInc(2, 3, 0) != 0 || BetaInc(2, 3, 1) != 1 {
		t.Error("BetaInc bounds wrong")
	}
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.37, 0.9} {
		approx(t, BetaInc(1, 1, x), x, 1e-10, "BetaInc(1,1,x)")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	approx(t, BetaInc(2.5, 3.5, 0.3), 1-BetaInc(3.5, 2.5, 0.7), 1e-10, "symmetry")
}

func TestFriedmanDetectsClearWinner(t *testing.T) {
	// Treatment 0 always best, treatment 2 always worst.
	var costs [][]float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 12; i++ {
		base := rng.Float64()
		costs = append(costs, []float64{base, base + 1, base + 2})
	}
	fr, err := Friedman(costs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fr.PValue >= 0.05 {
		t.Errorf("p = %g, want < 0.05 for a clear ranking", fr.PValue)
	}
	if fr.MeanRanks[0] >= fr.MeanRanks[1] || fr.MeanRanks[1] >= fr.MeanRanks[2] {
		t.Errorf("mean ranks not ordered: %v", fr.MeanRanks)
	}
}

func TestFriedmanNoDifference(t *testing.T) {
	// Exchangeable treatments: should rarely reject.
	rng := rand.New(rand.NewSource(7))
	rejections := 0
	for trial := 0; trial < 50; trial++ {
		var costs [][]float64
		for i := 0; i < 10; i++ {
			costs = append(costs, []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()})
		}
		fr, err := Friedman(costs, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if fr.PValue < 0.05 {
			rejections++
		}
	}
	if rejections > 8 { // ~5% expected, allow slack
		t.Errorf("rejected %d/50 null cases", rejections)
	}
}

func TestFriedmanErrors(t *testing.T) {
	if _, err := Friedman(nil, 0.05); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := Friedman([][]float64{{1}, {2}}, 0.05); err == nil {
		t.Error("single treatment accepted")
	}
	if _, err := Friedman([][]float64{{1, 2}, {1}}, 0.05); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestPairedT(t *testing.T) {
	a := []float64{5.1, 4.9, 5.3, 5.0, 5.2, 5.1, 4.8, 5.0}
	b := make([]float64, len(a))
	for i := range a {
		b[i] = a[i] + 1 // constant shift: hugely significant
	}
	_, p, err := PairedT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("p = %g for constant shift, want ~0", p)
	}
	_, p, err = PairedT(a, a)
	if err != nil || p != 1 {
		t.Errorf("identical samples: p = %g, err = %v; want 1, nil", p, err)
	}
	if _, _, err := PairedT(a, a[:3]); err == nil {
		t.Error("unequal lengths accepted")
	}
}

func TestWilcoxon(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = a[i] + 0.8 + 0.1*rng.NormFloat64() // shifted
	}
	_, p, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Errorf("p = %g for a strong shift, want < 0.01", p)
	}
	// Small samples: conservative.
	_, p, _ = WilcoxonSignedRank(a[:5], b[:5])
	if p != 1 {
		t.Errorf("small sample p = %g, want 1", p)
	}
}

// Property: GammaP is monotonically increasing in x and bounded in [0,1].
func TestGammaPMonotoneProperty(t *testing.T) {
	f := func(a8, x8 uint8) bool {
		a := 0.5 + float64(a8%40)/4
		x := float64(x8) / 8
		p1 := GammaP(a, x)
		p2 := GammaP(a, x+0.5)
		return p1 >= -1e-12 && p2 <= 1+1e-12 && p2 >= p1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: ranks are a permutation-weighted set summing to n(n+1)/2.
func TestRanksSumProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = float64(i)
			}
		}
		sum := 0.0
		for _, r := range Ranks(xs) {
			sum += r
		}
		n := float64(len(xs))
		return math.Abs(sum-n*(n+1)/2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFriedmanRejectsNaNAndBadAlpha(t *testing.T) {
	ok := [][]float64{{1, 2, 3}, {2, 1, 3}, {1, 3, 2}}
	if _, err := Friedman(ok, 0.05); err != nil {
		t.Fatalf("clean matrix rejected: %v", err)
	}
	bad := [][]float64{{1, 2, 3}, {2, math.NaN(), 3}, {1, 3, 2}}
	if _, err := Friedman(bad, 0.05); err == nil {
		t.Error("NaN cost accepted: mean ranks would be garbage")
	}
	// +Inf is a legitimate cost (invalid configurations lose every race)
	// and must still rank deterministically.
	inf := [][]float64{{1, 2, math.Inf(1)}, {2, 1, math.Inf(1)}, {1, 3, math.Inf(1)}}
	fr, err := Friedman(inf, 0.05)
	if err != nil {
		t.Fatalf("+Inf cost rejected: %v", err)
	}
	if fr.MeanRanks[2] != 3 {
		t.Errorf("Inf treatment mean rank %v, want 3 (always last)", fr.MeanRanks[2])
	}
	ragged := [][]float64{{1, 2, 3}, {2, 1}}
	if _, err := Friedman(ragged, 0.05); err == nil {
		t.Error("ragged matrix accepted")
	}
	for _, a := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := Friedman(ok, a); err == nil {
			t.Errorf("alpha %v accepted", a)
		}
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Standard two-sided critical-value tables: t(p, df).
	cases := []struct {
		p    float64
		df   int
		want float64
	}{
		{0.95, 1, 6.3138},
		{0.975, 1, 12.7062},
		{0.995, 1, 63.6567},
		{0.9995, 1, 636.6192}, // beyond the old fixed bracket of 100
		{0.975, 2, 4.3027},
		{0.975, 5, 2.5706},
		{0.975, 10, 2.2281},
		{0.975, 30, 2.0423},
		{0.95, 10, 1.8125},
		{0.99, 7, 2.9980},
	}
	for _, c := range cases {
		got := tQuantile(c.p, c.df)
		if math.Abs(got-c.want)/c.want > 1e-3 {
			t.Errorf("tQuantile(%v, %d) = %v, want %v", c.p, c.df, got, c.want)
		}
		// Symmetry: the lower-tail quantile is the negated upper tail,
		// not the old silent 0.
		if lo := tQuantile(1-c.p, c.df); math.Abs(lo+got) > 1e-9 {
			t.Errorf("tQuantile(%v, %d) = %v, want %v", 1-c.p, c.df, lo, -got)
		}
	}
	if tQuantile(0.5, 7) != 0 {
		t.Error("median quantile should be 0")
	}
	if !math.IsInf(tQuantile(1, 3), 1) || !math.IsInf(tQuantile(0, 3), -1) {
		t.Error("p=0/1 should return ∓Inf")
	}
	if !math.IsNaN(tQuantile(0.9, 0)) {
		t.Error("df<=0 should return NaN")
	}
}
