// Package stats provides the statistical machinery behind the iterated
// racing tuner: rank transforms, the Friedman test used to eliminate
// inferior configurations, paired t-tests and the Wilcoxon signed-rank
// test for post-hoc comparisons, and the special functions (incomplete
// gamma and beta) their p-values require. Implementations follow the
// standard series and continued-fraction expansions (Numerical Recipes
// conventions).
//
// The tuner's hot path is Friedman: given a cost matrix of instances ×
// alive candidates it ranks costs within each instance, computes the
// chi-squared statistic over mean ranks and, when the null hypothesis of
// equal candidates is rejected at the caller's alpha, supplies the
// critical rank-sum difference used to drop candidates that are
// statistically worse than the incumbent (see internal/irace). All
// functions are pure and deterministic: the same matrix always eliminates
// the same candidates, which keeps whole experiment runs reproducible
// byte for byte.
package stats
