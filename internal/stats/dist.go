package stats

import (
	"math"
)

const (
	maxIter = 300
	epsilon = 3e-14
)

// lnGamma returns the natural log of the gamma function.
func lnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// GammaP returns the regularized lower incomplete gamma P(a, x).
func GammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// gammaSeries evaluates P(a,x) by its series expansion.
func gammaSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsilon {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lnGamma(a))
}

// gammaCF evaluates Q(a,x) = 1 - P(a,x) by continued fraction.
func gammaCF(a, x float64) float64 {
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lnGamma(a)) * h
}

// ChiSquareSF returns the survival function (upper tail p-value) of the
// chi-squared distribution with df degrees of freedom.
func ChiSquareSF(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return 1 - GammaP(float64(df)/2, x/2)
}

// BetaInc returns the regularized incomplete beta function I_x(a, b).
func BetaInc(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	bt := math.Exp(lnGamma(a+b) - lnGamma(a) - lnGamma(b) +
		a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return bt * betaCF(a, b, x) / a
	}
	return 1 - bt*betaCF(b, a, 1-x)/b
}

// betaCF is the continued fraction for BetaInc.
func betaCF(a, b, x float64) float64 {
	const fpmin = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			break
		}
	}
	return h
}

// StudentTSF returns the two-sided p-value for a t statistic with df
// degrees of freedom.
func StudentTSF(t float64, df int) float64 {
	if df <= 0 {
		return 1
	}
	v := float64(df)
	return BetaInc(v/2, 0.5, v/(v+t*t))
}

// NormalCDF returns the standard normal CDF.
func NormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}
