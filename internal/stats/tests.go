package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Ranks assigns fractional ranks (1-based, ties get the average rank).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j+2) / 2 // mean of 1-based ranks i+1..j+1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// FriedmanResult is the outcome of a Friedman rank test.
type FriedmanResult struct {
	Statistic float64
	PValue    float64
	// MeanRanks has one entry per treatment (configuration), lower = better.
	MeanRanks []float64
	// CriticalDiff is the least significant rank-sum difference for the
	// post-hoc comparison against the best treatment at the given alpha.
	CriticalDiff float64
}

// Friedman runs the Friedman test on an n-blocks × k-treatments matrix of
// costs (blocks = benchmark instances, treatments = configurations). It
// needs n >= 2 blocks, k >= 2 treatments, alpha in (0, 1), and finite or
// +Inf costs: a NaN would make the rank permutation undefined (Ranks
// sorts with <, under which NaN is unordered), silently producing garbage
// mean ranks, so it is rejected explicitly instead.
func Friedman(costs [][]float64, alpha float64) (FriedmanResult, error) {
	n := len(costs)
	if n < 2 {
		return FriedmanResult{}, fmt.Errorf("stats: Friedman needs >= 2 blocks, got %d", n)
	}
	if !(alpha > 0 && alpha < 1) { // also rejects NaN
		return FriedmanResult{}, fmt.Errorf("stats: Friedman alpha %v outside (0, 1)", alpha)
	}
	k := len(costs[0])
	if k < 2 {
		return FriedmanResult{}, fmt.Errorf("stats: Friedman needs >= 2 treatments, got %d", k)
	}
	sumRanks := make([]float64, k)
	for i, row := range costs {
		if len(row) != k {
			return FriedmanResult{}, fmt.Errorf("stats: ragged cost matrix: block %d has %d treatments, want %d", i, len(row), k)
		}
		for j, v := range row {
			if math.IsNaN(v) {
				return FriedmanResult{}, fmt.Errorf("stats: Friedman cost is NaN at block %d, treatment %d", i, j)
			}
		}
		for j, r := range Ranks(row) {
			sumRanks[j] += r
		}
	}
	meanRanks := make([]float64, k)
	stat := 0.0
	for j, s := range sumRanks {
		meanRanks[j] = s / float64(n)
		d := s - float64(n)*float64(k+1)/2
		stat += d * d
	}
	stat *= 12.0 / (float64(n) * float64(k) * float64(k+1))
	p := ChiSquareSF(stat, k-1)

	// Post-hoc least significant difference on rank sums (Conover): uses
	// the t distribution with (n-1)(k-1) degrees of freedom.
	df := (n - 1) * (k - 1)
	sumSq := 0.0
	for _, row := range costs {
		for _, r := range Ranks(row) {
			sumSq += r * r
		}
	}
	a1 := sumSq
	c1 := float64(n) * float64(k) * float64(k+1) * float64(k+1) / 4
	denom := float64(df)
	var cd float64
	if a1 > c1 && denom > 0 {
		t := tQuantile(1-alpha/2, df)
		cd = t * math.Sqrt(2*float64(n)*(a1-c1)/denom*(1-stat/(float64(n)*float64(k-1))))
		if math.IsNaN(cd) || cd <= 0 {
			cd = t * math.Sqrt(2*float64(n)*(a1-c1)/denom)
		}
	}
	return FriedmanResult{Statistic: stat, PValue: p, MeanRanks: meanRanks, CriticalDiff: cd}, nil
}

// tQuantile returns the p-quantile of the t distribution with df degrees
// of freedom via bisection on StudentTSF. Lower-tail quantiles use the
// distribution's symmetry (the old code silently returned 0 for any
// p <= 0.5); the upper bracket grows geometrically until it encloses the
// quantile, since a fixed cap clips heavy-tailed cases such as df = 1
// with tiny alpha (t(0.9995, 1) ≈ 636.6 > 100).
func tQuantile(p float64, df int) float64 {
	switch {
	case df <= 0 || math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p == 0.5:
		return 0
	case p < 0.5:
		return -tQuantile(1-p, df)
	}
	target := 2 * (1 - p) // two-sided tail mass
	hi := 1.0
	for StudentTSF(hi, df) > target && hi < 1e15 {
		hi *= 2
	}
	lo := hi / 2
	if hi <= 1 {
		lo = 0
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTSF(mid, df) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom — the multiplier for mean-error confidence
// intervals (e.g. TQuantile(0.975, n-1) for a two-sided 95% CI).
func TQuantile(p float64, df int) float64 { return tQuantile(p, df) }

// PairedT runs a two-sided paired t-test on equal-length samples and
// returns the t statistic and p-value. Identical samples give p = 1.
func PairedT(a, b []float64) (tstat, p float64, err error) {
	if len(a) != len(b) || len(a) < 2 {
		return 0, 1, fmt.Errorf("stats: paired t-test needs equal samples of >= 2")
	}
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	m := Mean(d)
	sd := StdDev(d)
	if sd == 0 {
		if m == 0 {
			return 0, 1, nil
		}
		return math.Inf(sign(m)), 0, nil
	}
	t := m / (sd / math.Sqrt(float64(len(d))))
	return t, StudentTSF(t, len(d)-1), nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// WilcoxonSignedRank runs a two-sided Wilcoxon signed-rank test with the
// normal approximation (adequate for n >= 10; smaller samples return
// conservative p = 1).
func WilcoxonSignedRank(a, b []float64) (w, p float64, err error) {
	if len(a) != len(b) {
		return 0, 1, fmt.Errorf("stats: Wilcoxon needs equal-length samples")
	}
	var diffs []float64
	for i := range a {
		if d := a[i] - b[i]; d != 0 {
			diffs = append(diffs, d)
		}
	}
	n := len(diffs)
	if n < 10 {
		return 0, 1, nil
	}
	abs := make([]float64, n)
	for i, d := range diffs {
		abs[i] = math.Abs(d)
	}
	ranks := Ranks(abs)
	var wPlus, wMinus float64
	for i, d := range diffs {
		if d > 0 {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}
	w = math.Min(wPlus, wMinus)
	mean := float64(n*(n+1)) / 4
	sd := math.Sqrt(float64(n*(n+1)*(2*n+1)) / 24)
	z := (w - mean) / sd
	p = 2 * NormalCDF(z) // w <= mean so z <= 0
	if p > 1 {
		p = 1
	}
	return w, p, nil
}
