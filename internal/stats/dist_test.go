package stats

import (
	"math"
	"testing"
)

func TestNormalCDFSymmetry(t *testing.T) {
	if got := NormalCDF(0); got != 0.5 {
		t.Errorf("NormalCDF(0) = %v, want 0.5", got)
	}
	for _, z := range []float64{0.1, 0.5, 1, 1.96, 2.5, 4, 7} {
		lo, hi := NormalCDF(-z), NormalCDF(z)
		if s := lo + hi; math.Abs(s-1) > 1e-12 {
			t.Errorf("NormalCDF(%v) + NormalCDF(-%v) = %v, want 1", z, z, s)
		}
		if lo >= 0.5 || hi <= 0.5 {
			t.Errorf("NormalCDF not ordered around 0: F(-%v)=%v, F(%v)=%v", z, lo, z, hi)
		}
	}
	// Monotone non-decreasing across the useful range.
	prev := NormalCDF(-8)
	for z := -8.0; z <= 8; z += 0.25 {
		if v := NormalCDF(z); v < prev {
			t.Fatalf("NormalCDF decreasing at z=%v: %v < %v", z, v, prev)
		} else {
			prev = v
		}
	}
}

func TestBetaIncBoundsProperty(t *testing.T) {
	for _, ab := range [][2]float64{{0.5, 0.5}, {1, 1}, {2, 3}, {5, 1}, {10, 10}, {0.5, 8}} {
		a, b := ab[0], ab[1]
		if got := BetaInc(a, b, 0); got != 0 {
			t.Errorf("BetaInc(%v, %v, 0) = %v, want 0", a, b, got)
		}
		if got := BetaInc(a, b, 1); got != 1 {
			t.Errorf("BetaInc(%v, %v, 1) = %v, want 1", a, b, got)
		}
		// Reflection identity: I_x(a,b) = 1 - I_{1-x}(b,a).
		for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
			if d := BetaInc(a, b, x) + BetaInc(b, a, 1-x) - 1; math.Abs(d) > 1e-10 {
				t.Errorf("I_%v(%v,%v) + I_%v(%v,%v) - 1 = %v", x, a, b, 1-x, b, a, d)
			}
		}
		// Monotone non-decreasing in x.
		prev := 0.0
		for x := 0.0; x <= 1.0001; x += 0.05 {
			if v := BetaInc(a, b, x); v < prev {
				t.Fatalf("BetaInc(%v, %v, ·) decreasing at x=%v", a, b, x)
			} else {
				prev = v
			}
		}
	}
}

// TestChiSquareSFTableValues pins the survival function to the standard
// critical-value table: SF(critical value, df) must give back the
// table's tail probability.
func TestChiSquareSFTableValues(t *testing.T) {
	cases := []struct {
		x    float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{6.635, 1, 0.01},
		{5.991, 2, 0.05},
		{7.815, 3, 0.05},
		{11.070, 5, 0.05},
		{18.307, 10, 0.05},
		{23.209, 10, 0.01},
	}
	for _, c := range cases {
		if got := ChiSquareSF(c.x, c.df); math.Abs(got-c.want) > 5e-4 {
			t.Errorf("ChiSquareSF(%v, %d) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
	if got := ChiSquareSF(0, 3); got != 1 {
		t.Errorf("ChiSquareSF(0, 3) = %v, want 1", got)
	}
	if got := ChiSquareSF(-1, 3); got != 1 {
		t.Errorf("ChiSquareSF(-1, 3) = %v, want 1", got)
	}
}

// TestStudentTSFConvergesToNormal: for large df, the two-sided t-test
// p-value must match the normal tail 2(1 - Φ(t)).
func TestStudentTSFConvergesToNormal(t *testing.T) {
	const df = 10000
	for _, tv := range []float64{0.5, 1, 1.96, 2.5, 3.5} {
		got := StudentTSF(tv, df)
		want := 2 * (1 - NormalCDF(tv))
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("StudentTSF(%v, %d) = %v, normal limit %v", tv, df, got, want)
		}
	}
	// Heavier tails at small df: the t p-value dominates the normal one.
	if StudentTSF(2, 3) <= 2*(1-NormalCDF(2)) {
		t.Error("t distribution with df=3 should have heavier tails than the normal")
	}
	if got := StudentTSF(2, 0); got != 1 {
		t.Errorf("StudentTSF with df<=0 = %v, want neutral 1", got)
	}
}

func TestTQuantileRoundTrip(t *testing.T) {
	for _, df := range []int{1, 3, 10, 39, 10000} {
		for _, p := range []float64{0.6, 0.9, 0.975, 0.995} {
			q := TQuantile(p, df)
			if q <= 0 {
				t.Fatalf("TQuantile(%v, %d) = %v, want > 0", p, df, q)
			}
			// StudentTSF is the two-sided tail, so SF(q) = 2(1-p).
			if got, want := StudentTSF(q, df), 2*(1-p); math.Abs(got-want) > 1e-9 {
				t.Errorf("StudentTSF(TQuantile(%v, %d)) = %v, want %v", p, df, got, want)
			}
			if sym := TQuantile(1-p, df); math.Abs(sym+q) > 1e-9 {
				t.Errorf("TQuantile(%v, %d) = %v, want -%v (symmetry)", 1-p, df, sym, q)
			}
		}
		if TQuantile(0.5, df) != 0 {
			t.Errorf("TQuantile(0.5, %d) != 0", df)
		}
	}
	// Known value: t(0.975, 10000) is within a hair of the normal 1.96.
	if q := TQuantile(0.975, 10000); math.Abs(q-1.96) > 5e-3 {
		t.Errorf("TQuantile(0.975, 10000) = %v, want ~1.96", q)
	}
	// Known heavy-tail value: t(0.975, 1) = 12.706.
	if q := TQuantile(0.975, 1); math.Abs(q-12.706) > 1e-2 {
		t.Errorf("TQuantile(0.975, 1) = %v, want 12.706", q)
	}
}
