package cluster

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The completion journal makes a coordinator crash-resumable: every
// finished unit's artifact is appended (and fsynced) as one checksummed
// JSONL record, so a coordinator killed mid-sweep and restarted with
// -resume-journal replays the finished units from disk and re-dispatches
// only the unfinished ones — assembling output byte-identical to an
// uninterrupted run, because artifacts are position-addressed by global
// unit index and each record re-proves its own checksum on load.
//
// Format: line 1 is a header binding the journal to one sweep
// (fingerprint over the selection, sizing knobs and expanded unit IDs);
// every further line is one completion record. A torn tail — the record
// being written when the coordinator died — fails JSON decoding or its
// checksum and is discarded along with everything after it; resuming
// compacts the journal to the surviving prefix before appending.

const journalKind = "racesim-sweep-journal"

type journalHeader struct {
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
	Units       int    `json:"units"`
}

type journalRecord struct {
	Unit     int    `json:"unit"` // global expansion index
	ID       string `json:"id"`   // unit ID, for the human reading the file
	Artifact string `json:"artifact"`
	Sum      string `json:"sum"` // sha256(id + "\x00" + artifact)
}

func recordSum(id, artifact string) string {
	h := sha256.New()
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write([]byte(artifact))
	return hex.EncodeToString(h.Sum(nil))
}

// sweepFingerprint identifies a sweep: the selection, the sizing knobs
// forwarded to workers, and the expanded unit IDs in order. Two runs with
// equal fingerprints dispatch identical unit lists producing identical
// artifacts, which is what makes replaying journal records sound.
func sweepFingerprint(opts Options, unitIDs []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "scenario=%s\nscale=%g\nevents=%d\nbudget1=%d\nbudget2=%d\nseed=%d\n",
		opts.Scenario, opts.Scale, opts.Events, opts.Budget1, opts.Budget2, opts.Seed)
	for _, id := range unitIDs {
		fmt.Fprintf(h, "unit=%s\n", id)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// journal appends completion records durably.
type journal struct {
	f *os.File
}

// readJournal parses a journal file, verifying the header against the
// sweep fingerprint and each record against its checksum, and returns the
// recovered artifacts by unit index. Reading stops silently at the first
// undecodable or checksum-failing line (the torn tail of a crash); a
// missing file yields no artifacts. A journal written by a *different*
// sweep is an explicit error, never silently ignored: replaying its
// artifacts would corrupt the assembled output.
func readJournal(path, fingerprint string, units int) (map[int]string, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[int]string{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	if !sc.Scan() {
		return map[int]string{}, nil // empty file: nothing recovered
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Kind != journalKind {
		return nil, fmt.Errorf("cluster: %s is not a sweep journal", path)
	}
	if hdr.Fingerprint != fingerprint || hdr.Units != units {
		return nil, fmt.Errorf("cluster: journal %s was written by a different sweep (selection, sizing or unit list changed); delete it or drop -resume-journal", path)
	}
	out := map[int]string{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			break // torn tail
		}
		if rec.Unit < 0 || rec.Unit >= units || recordSum(rec.ID, rec.Artifact) != rec.Sum {
			break // torn or corrupted tail
		}
		out[rec.Unit] = rec.Artifact
	}
	return out, nil
}

// openJournal creates (or, with the recovered artifacts of a resume,
// compacts and re-creates) the journal and leaves it open for appending.
// Compaction rewrites header + surviving records to a temp file and
// renames it over the original, so a torn tail never sits beneath new
// appends.
func openJournal(path, fingerprint string, unitIDs []string, recovered map[int]string) (*journal, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-*")
	if err != nil {
		return nil, err
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(journalHeader{Kind: journalKind, Fingerprint: fingerprint, Units: len(unitIDs)}); err != nil {
		cleanup()
		return nil, err
	}
	for i, id := range unitIDs {
		artifact, ok := recovered[i]
		if !ok {
			continue
		}
		if err := enc.Encode(journalRecord{Unit: i, ID: id, Artifact: artifact, Sum: recordSum(id, artifact)}); err != nil {
			cleanup()
			return nil, err
		}
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f}, nil
}

// append records one completed unit and fsyncs, so a crash immediately
// after loses nothing (at worst the unit being appended becomes the
// discarded torn tail and re-runs on resume).
func (j *journal) append(unit int, id, artifact string) error {
	data, err := json.Marshal(journalRecord{Unit: unit, ID: id, Artifact: artifact, Sum: recordSum(id, artifact)})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}
