// Package cluster is the distributed sweep fabric: a coordinator that
// takes a scenario selection, expands it to the deterministic unit list
// (internal/scenario), and dispatches units across a pool of remote
// `racesim serve` workers over the /v1/jobs HTTP API.
//
// The design goals, in order:
//
//   - byte-exactness: every unit renders on exactly one worker and the
//     coordinator concatenates artifacts in global expansion order, so
//     the assembled output is byte-identical to a single-process
//     unsharded `racesim experiments` run — the same contract local
//     sharding already honors — regardless of worker count, scheduling
//     order, retries or mid-run worker loss;
//   - bounded in-flight windows: each worker holds at most Window units
//     at once (submitted or queued on its own bounded job queue), so a
//     slow worker backs pressure up to the coordinator instead of
//     hoarding the tail of the sweep;
//   - dependency-artifact affinity: units declare the shared preparation
//     artifacts they consume (e.g. "stages:a53"); the scheduler prefers
//     placing a unit on a worker that already built its artifacts, so
//     the worker's warm in-process cache is reused instead of re-derived;
//   - failure isolation: a unit that fails on a worker is retried with
//     exponential backoff on another worker (bounded by Retries); a
//     worker with DeadAfter consecutive failures is marked dead and
//     never assigned again. The sweep only fails when a unit exhausts
//     its attempts or no live workers remain;
//   - cache federation: the coordinator pre-seeds every worker from its
//     snapshot (CachePath) before the round, collects each worker's
//     checksummed snapshot delta at drain, merges them last-writer-wins
//     into one snapshot and persists it — so a re-run of an overlapping
//     selection is warm cluster-wide, not just per-process.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"racesim/internal/engine"
	"racesim/internal/scenario"
	"racesim/internal/simcache"
)

// Options configures one coordinated sweep.
type Options struct {
	// Workers are the base URLs of the serve workers (e.g.
	// "http://10.0.0.2:8080"). At least one must be reachable.
	Workers []string
	// Window bounds in-flight units per worker (default 2: one running,
	// one queued behind it so the worker never idles between units).
	Window int
	// Retries bounds how many times one unit is reassigned after a
	// failure before the sweep fails (default 3).
	Retries int
	// DeadAfter marks a worker dead after this many consecutive unit
	// failures (default 2).
	DeadAfter int
	// Backoff is the base delay before a failed unit is redispatched,
	// doubled per attempt (default 500ms).
	Backoff time.Duration
	// Poll is the job status polling interval (default 150ms).
	Poll time.Duration
	// CachePath, when set, federates the simulation cache: loaded and
	// pre-seeded to every worker before the round, worker deltas merged
	// and saved back after it.
	CachePath string

	// Scenario is the selection (comma-separated names/globs, "all" =
	// paper set) — the same selector `racesim experiments -scenario`
	// takes.
	Scenario string
	// Experiment options forwarded verbatim to every worker job; zero
	// values select the engine's documented defaults.
	Scale            float64
	Events           int
	Budget1, Budget2 int
	Seed             int64

	// Log receives coordinator progress lines; nil discards them.
	Log func(format string, args ...any)
}

// Report summarizes a completed sweep.
type Report struct {
	// Units is the number of units executed (== the expansion size).
	Units int
	// Completed counts units rendered per worker URL.
	Completed map[string]int
	// Reassigned counts unit dispatches that failed and were retried.
	Reassigned int
	// Dead lists workers marked dead during the round.
	Dead []string
	// Cache aggregates the per-worker shared-cache statistics deltas
	// across the round — the cluster-wide hit/miss picture.
	Cache simcache.Stats
	// MergedEntries is the federated snapshot size after merging worker
	// deltas; SnapshotRejected counts delta entries failing their
	// checksum.
	MergedEntries    int
	SnapshotRejected uint64
}

// workerState is the coordinator's view of one serve worker.
type workerState struct {
	url        string
	client     *engine.Client
	inflight   int
	artifacts  map[string]bool // dependency artifacts dispatched here
	dead       bool
	failStreak int
	completed  int
	before     engine.Health
	sampled    bool
}

// unitState tracks one unit through dispatch and retries.
type unitState struct {
	unit       scenario.Unit
	attempts   int
	lastWorker int
}

const (
	evDone = iota
	evFail
	evRequeue
)

type event struct {
	kind     int
	unitIdx  int
	worker   int
	artifact string
	err      error
}

// Run executes the sweep and returns the assembled artifact — the bytes
// a single-process `racesim experiments -scenario <selection>` run
// writes to stdout.
func Run(ctx context.Context, opts Options) (string, Report, error) {
	rep := Report{Completed: map[string]int{}}
	log := opts.Log
	if log == nil {
		log = func(string, ...any) {}
	}
	window := opts.Window
	if window <= 0 {
		window = 2
	}
	retries := opts.Retries
	if retries <= 0 {
		retries = 3
	}
	deadAfter := opts.DeadAfter
	if deadAfter <= 0 {
		deadAfter = 2
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 500 * time.Millisecond
	}
	if len(opts.Workers) == 0 {
		return "", rep, fmt.Errorf("cluster: no workers")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Expand the selection exactly as a worker will: the unit IDs the
	// coordinator dispatches name the same units in the worker's own
	// expansion of the same selection.
	selected, err := scenario.Select(scenario.Registry(), opts.Scenario)
	if err != nil {
		return "", rep, err
	}
	units, err := scenario.Expand(selected)
	if err != nil {
		return "", rep, err
	}
	rep.Units = len(units)

	workers := make([]*workerState, len(opts.Workers))
	alive := 0
	for i, url := range opts.Workers {
		w := &workerState{
			url:       strings.TrimRight(url, "/"),
			artifacts: map[string]bool{},
		}
		w.client = engine.NewClient(w.url)
		w.client.Log = log
		workers[i] = w
		h, err := w.client.Health(ctx)
		if err != nil {
			w.dead = true
			log("sweep: worker %s unreachable at start: %v", w.url, err)
			continue
		}
		w.before, w.sampled = h, true
		alive++
	}
	if alive == 0 {
		return "", rep, fmt.Errorf("cluster: none of the %d workers are reachable", len(workers))
	}
	log("sweep: %d units across %d workers (window %d)", len(units), alive, window)

	// Federation, inbound half: warm every worker from the coordinator's
	// snapshot so overlapping selections re-run at cluster-wide hits.
	fed := simcache.New()
	if opts.CachePath != "" {
		if err := simcache.ValidatePath(opts.CachePath); err != nil {
			return "", rep, err
		}
		n, rejected, err := fed.LoadChecked(opts.CachePath)
		if err != nil {
			return "", rep, err
		}
		if rejected > 0 {
			log("sweep: %s: rejected %d corrupted cache entries", opts.CachePath, rejected)
		}
		if n > 0 {
			log("sweep: cache: loaded %d entries from %s", n, opts.CachePath)
			data, err := fed.Marshal()
			if err != nil {
				return "", rep, err
			}
			for _, w := range workers {
				if w.dead {
					continue
				}
				if _, err := w.client.ImportSnapshot(ctx, data); err != nil {
					w.dead = true
					alive--
					log("sweep: worker %s failed pre-seed: %v", w.url, err)
					continue
				}
				// The import moved the worker's stats; resample the baseline.
				if h, err := w.client.Health(ctx); err == nil {
					w.before = h
				}
			}
			if alive == 0 {
				return "", rep, fmt.Errorf("cluster: every worker failed pre-seeding")
			}
			log("sweep: pre-seeded %d workers with %d entries", alive, n)
		}
	}

	ustates := make([]*unitState, len(units))
	pending := make([]int, len(units))
	for i, u := range units {
		ustates[i] = &unitState{unit: u, lastWorker: -1}
		pending[i] = i
	}
	results := make([]string, len(units))
	// Buffered past the worst case (one completion or requeue timer per
	// unit at a time) so goroutines abandoned by an early error return
	// never block on send.
	events := make(chan event, 2*len(units)+len(workers))
	outstanding := 0
	completed := 0

	aliveCount := func() int {
		n := 0
		for _, w := range workers {
			if !w.dead {
				n++
			}
		}
		return n
	}

	// pickUnit chooses the best pending unit for a worker: the one whose
	// dependency artifacts overlap most with what the worker has already
	// built (warm-context affinity), ties broken by lowest global index
	// (deterministic, keeps the output tail short). A retried unit avoids
	// the worker it just failed on while an alternative exists.
	pickUnit := func(wi int) int {
		w := workers[wi]
		best, bestScore := -1, -1
		for pi, ui := range pending {
			u := ustates[ui]
			if u.attempts > 0 && u.lastWorker == wi && aliveCount() > 1 {
				continue
			}
			score := 0
			for _, d := range u.unit.Deps {
				if w.artifacts[d] {
					score++
				}
			}
			if score > bestScore || (score == bestScore && best >= 0 && ui < pending[best]) {
				best, bestScore = pi, score
			}
		}
		return best
	}

	runUnit := func(wi, ui int) {
		w, u := workers[wi], ustates[ui]
		job := engine.Job{Kind: engine.KindExperiments, Experiments: &engine.ExperimentsJob{
			Scenario: opts.Scenario,
			Units:    u.unit.ID,
			Scale:    opts.Scale,
			Events:   opts.Events,
			Budget1:  opts.Budget1,
			Budget2:  opts.Budget2,
			Seed:     opts.Seed,
			Quiet:    true,
		}}
		id, err := w.client.Submit(ctx, job)
		if err != nil {
			events <- event{kind: evFail, unitIdx: ui, worker: wi, err: err}
			return
		}
		st, err := w.client.Wait(ctx, id, opts.Poll)
		if err != nil {
			events <- event{kind: evFail, unitIdx: ui, worker: wi, err: err}
			return
		}
		if st.Status != "done" || st.Result == nil {
			events <- event{kind: evFail, unitIdx: ui, worker: wi,
				err: fmt.Errorf("job %s %s: %s", id, st.Status, st.Error)}
			return
		}
		events <- event{kind: evDone, unitIdx: ui, worker: wi, artifact: st.Result.Artifact}
	}

	dispatch := func() {
		for {
			progressed := false
			for wi, w := range workers {
				if w.dead || w.inflight >= window || len(pending) == 0 {
					continue
				}
				pi := pickUnit(wi)
				if pi < 0 {
					continue
				}
				ui := pending[pi]
				pending = append(pending[:pi], pending[pi+1:]...)
				u := ustates[ui]
				w.inflight++
				for _, d := range u.unit.Deps {
					w.artifacts[d] = true
				}
				outstanding++
				log("sweep: [%d/%d] %s -> %s%s", u.unit.Index+1, len(units), u.unit.ID, w.url,
					map[bool]string{true: " (retry)", false: ""}[u.attempts > 0])
				go runUnit(wi, ui)
				progressed = true
			}
			if !progressed {
				return
			}
		}
	}

	dispatch()
	for completed < len(units) {
		if outstanding == 0 {
			return "", rep, fmt.Errorf("cluster: no live workers remain (%d of %d units unfinished)",
				len(units)-completed, len(units))
		}
		ev := <-events
		w := workers[ev.worker]
		switch ev.kind {
		case evDone:
			outstanding--
			w.inflight--
			w.failStreak = 0
			w.completed++
			rep.Completed[w.url]++
			results[ev.unitIdx] = ev.artifact
			completed++
		case evFail:
			outstanding--
			w.inflight--
			w.failStreak++
			if !w.dead && w.failStreak >= deadAfter {
				w.dead = true
				rep.Dead = append(rep.Dead, w.url)
				log("sweep: worker %s marked dead after %d consecutive failures", w.url, w.failStreak)
			}
			u := ustates[ev.unitIdx]
			u.attempts++
			u.lastWorker = ev.worker
			if u.attempts > retries {
				return "", rep, fmt.Errorf("cluster: unit %s failed %d times, last on %s: %w",
					u.unit.ID, u.attempts, w.url, ev.err)
			}
			rep.Reassigned++
			delay := backoff << (u.attempts - 1)
			log("sweep: unit %s failed on %s (attempt %d/%d): %v; redispatching in %v",
				u.unit.ID, w.url, u.attempts, retries+1, ev.err, delay)
			outstanding++ // the requeue timer keeps the loop alive
			ui := ev.unitIdx
			time.AfterFunc(delay, func() { events <- event{kind: evRequeue, unitIdx: ui} })
		case evRequeue:
			outstanding--
			pending = append(pending, ev.unitIdx)
		}
		dispatch()
	}

	// Federation, outbound half: collect every surviving worker's delta
	// (what it computed this round), merge checksummed last-writer-wins,
	// persist. Also aggregate the cache statistics deltas — the
	// cluster-wide effectiveness picture.
	rejectedBefore := fed.Stats().Rejected
	for _, w := range workers {
		if w.dead {
			continue
		}
		data, err := w.client.ExportSnapshot(ctx, true)
		if err != nil {
			log("sweep: worker %s: delta export failed: %v", w.url, err)
			continue
		}
		added, _, err := fed.LoadBytes(data)
		if err != nil {
			log("sweep: worker %s: delta merge failed: %v", w.url, err)
			continue
		}
		log("sweep: worker %s contributed %d cache entries", w.url, added)
		if w.sampled {
			if h, err := w.client.Health(ctx); err == nil {
				rep.Cache.Hits += h.Cache.Hits - w.before.Cache.Hits
				rep.Cache.Misses += h.Cache.Misses - w.before.Cache.Misses
				rep.Cache.Shared += h.Cache.Shared - w.before.Cache.Shared
				rep.Cache.Entries += h.Cache.Entries
			}
		}
	}
	rep.SnapshotRejected = fed.Stats().Rejected - rejectedBefore
	if rep.SnapshotRejected > 0 {
		log("sweep: rejected %d corrupted delta entries", rep.SnapshotRejected)
	}
	rep.MergedEntries = fed.Stats().Entries
	if opts.CachePath != "" {
		if err := fed.SaveFile(opts.CachePath); err != nil {
			return "", rep, fmt.Errorf("cluster: save federated snapshot %s: %w", opts.CachePath, err)
		}
		log("sweep: cache: saved %d federated entries to %s", rep.MergedEntries, opts.CachePath)
	}
	sort.Strings(rep.Dead)
	log("sweep: cluster cache: %d hits, %d misses, %d shared in-flight (%.1f%% hit rate)",
		rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Shared, rep.Cache.HitRate()*100)

	var b strings.Builder
	for _, r := range results {
		b.WriteString(r)
	}
	return b.String(), rep, nil
}
