// Package cluster is the distributed sweep fabric: a coordinator that
// takes a scenario selection, expands it to the deterministic unit list
// (internal/scenario), and dispatches units across a pool of remote
// `racesim serve` workers over the /v1/jobs HTTP API.
//
// The design goals, in order:
//
//   - byte-exactness: every unit renders on exactly one worker and the
//     coordinator concatenates artifacts in global expansion order, so
//     the assembled output is byte-identical to a single-process
//     unsharded `racesim experiments` run — the same contract local
//     sharding already honors — regardless of worker count, scheduling
//     order, retries or mid-run worker loss;
//   - bounded in-flight windows: each worker holds at most Window units
//     at once (submitted or queued on its own bounded job queue), so a
//     slow worker backs pressure up to the coordinator instead of
//     hoarding the tail of the sweep;
//   - dependency-artifact affinity: units declare the shared preparation
//     artifacts they consume (e.g. "stages:a53"); the scheduler prefers
//     placing a unit on a worker that already built its artifacts, so
//     the worker's warm in-process cache is reused instead of re-derived;
//   - failure isolation: a unit that fails on a worker is retried with
//     exponential backoff on another worker (bounded by Retries); a
//     worker with DeadAfter consecutive failures is quarantined — a
//     circuit breaker that stops dispatch while background health
//     probes (doubling delays, bounded by ProbeLimit) decide between
//     re-admission on probation and declaring it dead. The sweep only
//     fails when a unit exhausts its attempts or no live workers remain;
//   - crash resumability: with JournalPath every completed unit's
//     artifact is fsynced to a checksummed journal; a coordinator killed
//     mid-sweep restarts with ResumeJournal and re-dispatches only
//     unfinished units, assembling byte-identical output;
//   - cache federation: the coordinator pre-seeds every worker from its
//     snapshot (CachePath) before the round, collects each worker's
//     checksummed snapshot delta at drain, merges them last-writer-wins
//     into one snapshot and persists it — so a re-run of an overlapping
//     selection is warm cluster-wide, not just per-process.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"racesim/internal/engine"
	"racesim/internal/scenario"
	"racesim/internal/simcache"
	"racesim/internal/telemetry"
)

// Options configures one coordinated sweep.
type Options struct {
	// Workers are the base URLs of the serve workers (e.g.
	// "http://10.0.0.2:8080"). At least one must be reachable.
	Workers []string
	// Window bounds in-flight units per worker (default 2: one running,
	// one queued behind it so the worker never idles between units).
	Window int
	// Retries bounds how many times one unit is reassigned after a
	// failure before the sweep fails (default 3).
	Retries int
	// DeadAfter quarantines a worker after this many consecutive unit
	// failures (default 2). A quarantined worker receives no units while
	// a background prober re-checks its /healthz with doubling delays; a
	// passing probe re-admits it on probation (one more failure
	// re-quarantines), and a worker exhausting ProbeLimit probes is dead
	// for the rest of the sweep.
	DeadAfter int
	// ProbeLimit bounds health probes per quarantined worker across the
	// sweep before it is declared dead (default 5).
	ProbeLimit int
	// ProbeDelay is the first probe's delay, doubled per subsequent
	// probe up to a 30s cap (default 1s).
	ProbeDelay time.Duration
	// Backoff is the base delay before a failed unit is redispatched,
	// doubled per attempt (default 500ms).
	Backoff time.Duration
	// Poll is the job status polling interval (default 150ms).
	Poll time.Duration
	// CachePath, when set, federates the simulation cache: loaded and
	// pre-seeded to every worker before the round, worker deltas merged
	// and saved back after it.
	CachePath string
	// CacheServer, when set, is the base URL of a shared cache-server
	// node (`racesim serve -cache-server`). The coordinator pre-seeds it
	// like a worker and collects its delta at drain, but never dispatches
	// units to it; workers configured with -cache-upstream resolve misses
	// against it mid-run, so overlapping sweeps warm each other while
	// running instead of only through pre-seed/drain snapshots. The
	// snapshot federation above remains the fallback — a sweep without a
	// cache server (or with an unreachable one) behaves exactly as
	// before.
	CacheServer string
	// JournalPath, when set, journals every completed unit's artifact to
	// a checksummed JSONL file, fsynced per record. A coordinator killed
	// mid-sweep and restarted with ResumeJournal replays the journal and
	// re-dispatches only unfinished units; the assembled artifact is
	// byte-identical to an uninterrupted run.
	JournalPath string
	// ResumeJournal replays an existing journal at JournalPath before
	// dispatching. A journal written by a different sweep (selection,
	// sizing or unit list changed) is an explicit error.
	ResumeJournal bool
	// RequestTimeout bounds each worker HTTP request (default: the
	// engine.Client default, 60s).
	RequestTimeout time.Duration
	// Transport, when non-nil, wraps every worker client's HTTP
	// transport — the chaos injector's network attach point.
	Transport http.RoundTripper

	// Trace, when valid, parents one "unit" span per completed unit
	// under it; each dispatch attempt propagates a fresh span context to
	// its worker over X-Racesim-Trace, and the worker's own job/engine
	// spans come back inside the job result. Unit spans are recorded only
	// for the attempt that succeeded, so the flight recorder covers every
	// unit exactly once regardless of retries.
	Trace telemetry.SpanContext
	// Recorder receives the sweep's spans (the flight recorder); nil
	// discards them. Tracing requires both Trace and Recorder.
	Recorder *telemetry.Recorder
	// Metrics, when non-nil, receives the coordinator's scheduling
	// counters (racesim_sweep_*). Nil disables them.
	Metrics *telemetry.Registry

	// Scenario is the selection (comma-separated names/globs, "all" =
	// paper set) — the same selector `racesim experiments -scenario`
	// takes.
	Scenario string
	// Experiment options forwarded verbatim to every worker job; zero
	// values select the engine's documented defaults.
	Scale            float64
	Events           int
	Budget1, Budget2 int
	Seed             int64

	// Log receives coordinator progress lines; nil discards them.
	Log func(format string, args ...any)
}

// Report summarizes a completed sweep.
type Report struct {
	// Units is the number of units executed (== the expansion size).
	Units int
	// Completed counts units rendered per worker URL.
	Completed map[string]int
	// Reassigned counts unit dispatches that failed and were retried.
	Reassigned int
	// Dead lists workers marked dead during the round.
	Dead []string
	// Quarantined lists workers that entered quarantine at least once
	// (including those later re-admitted by a passing probe).
	Quarantined []string
	// Resumed counts units replayed from the journal instead of
	// dispatched.
	Resumed int
	// Cache aggregates the per-worker shared-cache statistics deltas
	// across the round — the cluster-wide hit/miss picture.
	Cache simcache.Stats
	// MergedEntries is the federated snapshot size after merging worker
	// deltas; SnapshotRejected counts delta entries failing their
	// checksum.
	MergedEntries    int
	SnapshotRejected uint64
	// UnitDurations holds the dispatch-to-completion wall time of every
	// unit executed this round (resumed units excluded), in completion
	// order — the input for end-of-sweep latency percentiles.
	UnitDurations []time.Duration
}

// workerState is the coordinator's view of one serve worker.
type workerState struct {
	url         string
	client      *engine.Client
	inflight    int
	artifacts   map[string]bool // dependency artifacts dispatched here
	dead        bool
	quarantined bool // circuit open: no dispatch until a probe passes
	probes      int  // health probes spent across the sweep
	failStreak  int
	completed   int
	before      engine.Health
	sampled     bool
}

// unitState tracks one unit through dispatch and retries.
type unitState struct {
	unit       scenario.Unit
	attempts   int
	lastWorker int
}

const (
	evDone = iota
	evFail
	evRequeue
	evProbeOK   // a quarantined worker answered a health probe
	evProbeDead // a quarantined worker exhausted its probe budget
)

type event struct {
	kind     int
	unitIdx  int
	worker   int
	artifact string
	err      error
	elapsed  time.Duration    // evDone: dispatch-to-completion wall time
	spans    []telemetry.Span // evDone: unit span + the worker's spans
}

// Run executes the sweep and returns the assembled artifact — the bytes
// a single-process `racesim experiments -scenario <selection>` run
// writes to stdout.
func Run(ctx context.Context, opts Options) (string, Report, error) {
	rep := Report{Completed: map[string]int{}}
	log := opts.Log
	if log == nil {
		log = func(string, ...any) {}
	}
	window := opts.Window
	if window <= 0 {
		window = 2
	}
	retries := opts.Retries
	if retries <= 0 {
		retries = 3
	}
	deadAfter := opts.DeadAfter
	if deadAfter <= 0 {
		deadAfter = 2
	}
	probeLimit := opts.ProbeLimit
	if probeLimit <= 0 {
		probeLimit = 5
	}
	probeDelay := opts.ProbeDelay
	if probeDelay <= 0 {
		probeDelay = time.Second
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 500 * time.Millisecond
	}
	if len(opts.Workers) == 0 {
		return "", rep, fmt.Errorf("cluster: no workers")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Scheduling counters; nil registry leaves every counter nil and inc
	// a no-op, so an unmetered sweep pays nothing.
	counter := func(name, help string) *telemetry.Counter {
		if opts.Metrics == nil {
			return nil
		}
		return opts.Metrics.Counter(name, help)
	}
	inc := func(c *telemetry.Counter) {
		if c != nil {
			c.Inc()
		}
	}
	var (
		mDispatched  = counter("racesim_sweep_dispatched_total", "Unit dispatches to workers, retries included.")
		mCompleted   = counter("racesim_sweep_units_completed_total", "Units that rendered successfully.")
		mReassigned  = counter("racesim_sweep_reassigned_total", "Unit dispatches that failed and were requeued.")
		mQuarantined = counter("racesim_sweep_quarantined_total", "Workers entering quarantine (circuit opened).")
		mDead        = counter("racesim_sweep_workers_dead_total", "Workers declared dead for the round.")
		mProbes      = counter("racesim_sweep_probes_total", "Health probes sent to quarantined workers.")
	)
	traced := opts.Recorder.Enabled() && opts.Trace.Valid()

	// Expand the selection exactly as a worker will: the unit IDs the
	// coordinator dispatches name the same units in the worker's own
	// expansion of the same selection.
	selected, err := scenario.Select(scenario.Registry(), opts.Scenario)
	if err != nil {
		return "", rep, err
	}
	units, err := scenario.Expand(selected)
	if err != nil {
		return "", rep, err
	}
	rep.Units = len(units)

	workers := make([]*workerState, len(opts.Workers))
	alive := 0
	for i, url := range opts.Workers {
		w := &workerState{
			url:       strings.TrimRight(url, "/"),
			artifacts: map[string]bool{},
		}
		w.client = engine.NewClient(w.url)
		w.client.Log = log
		w.client.Timeout = opts.RequestTimeout
		w.client.Transport = opts.Transport
		workers[i] = w
		// The startup health check retries a few times: a worker still
		// binding its listener — or a single chaos-dropped request — should
		// not cost the sweep a worker for the whole round.
		var h engine.Health
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if h, err = w.client.Health(ctx); err == nil {
				break
			}
			if ctx.Err() != nil {
				return "", rep, ctx.Err()
			}
			time.Sleep(backoff << attempt)
		}
		if err != nil {
			w.dead = true
			log("sweep: worker %s unreachable at start: %v", w.url, err)
			continue
		}
		w.before, w.sampled = h, true
		alive++
	}
	if alive == 0 {
		return "", rep, fmt.Errorf("cluster: none of the %d workers are reachable", len(workers))
	}
	log("sweep: %d units across %d workers (window %d)", len(units), alive, window)

	// Shared cache tier: the cache server is a snapshot-federation peer
	// (pre-seeded before the round, delta-collected at drain) but never
	// receives units — Submit on a -cache-server process answers 403.
	// Workers reach it mid-run through their own -cache-upstream wiring;
	// the coordinator only warms it and harvests what workers wrote back.
	var cacheSrv *engine.Client
	if opts.CacheServer != "" {
		cacheSrv = engine.NewClient(strings.TrimRight(opts.CacheServer, "/"))
		cacheSrv.Log = log
		cacheSrv.Timeout = opts.RequestTimeout
		cacheSrv.Transport = opts.Transport
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if _, err = cacheSrv.Health(ctx); err == nil {
				break
			}
			if ctx.Err() != nil {
				return "", rep, ctx.Err()
			}
			time.Sleep(backoff << attempt)
		}
		if err != nil {
			// The shared tier accelerates, it never gates: a sweep without
			// it still assembles byte-identical output, just colder.
			log("sweep: cache server %s unreachable: %v; continuing without the shared tier",
				opts.CacheServer, err)
			cacheSrv = nil
		}
	}

	// Federation, inbound half: warm every worker from the coordinator's
	// snapshot so overlapping selections re-run at cluster-wide hits.
	fed := simcache.New()
	if opts.CachePath != "" {
		if err := simcache.ValidatePath(opts.CachePath); err != nil {
			return "", rep, err
		}
		n, rejected, err := fed.LoadChecked(opts.CachePath)
		var stale *simcache.StaleFormatError
		if errors.As(err, &stale) {
			log("sweep: ignoring snapshot %s (format %d); starting cold", stale.Path, stale.Format)
			n, err = 0, nil
		}
		if err != nil {
			return "", rep, err
		}
		if rejected > 0 {
			log("sweep: %s: rejected %d corrupted cache entries", opts.CachePath, rejected)
		}
		if n > 0 {
			log("sweep: cache: loaded %d entries from %s", n, opts.CachePath)
			// Pre-seeding streams the snapshot — records are encoded into
			// the request body as the peer consumes it, so the coordinator
			// never buffers the whole snapshot — and retries transient
			// failures (a dropped or corrupted request is the client's
			// error, not the peer's); only a persistently failing import
			// costs a worker its seat.
			preseed := func(cl *engine.Client) error {
				var err error
				for attempt := 0; attempt < 3; attempt++ {
					pr, pw := io.Pipe()
					go func() { pw.CloseWithError(fed.WriteBinaryTo(pw, nil)) }()
					_, err = cl.ImportSnapshotFrom(ctx, pr)
					pr.Close()
					if err == nil {
						return nil
					}
					if cerr := ctx.Err(); cerr != nil {
						return cerr
					}
					time.Sleep(backoff << attempt)
				}
				return err
			}
			for _, w := range workers {
				if w.dead {
					continue
				}
				if err := preseed(w.client); err != nil {
					if ctx.Err() != nil {
						return "", rep, ctx.Err()
					}
					w.dead = true
					alive--
					log("sweep: worker %s failed pre-seed: %v", w.url, err)
					continue
				}
				// The import moved the worker's stats; resample the baseline.
				if h, err := w.client.Health(ctx); err == nil {
					w.before = h
				}
			}
			if alive == 0 {
				return "", rep, fmt.Errorf("cluster: every worker failed pre-seeding")
			}
			log("sweep: pre-seeded %d workers with %d entries", alive, n)
			if cacheSrv != nil {
				if err := preseed(cacheSrv); err != nil {
					if ctx.Err() != nil {
						return "", rep, ctx.Err()
					}
					log("sweep: cache server %s failed pre-seed: %v", opts.CacheServer, err)
				} else {
					log("sweep: pre-seeded cache server %s with %d entries", opts.CacheServer, n)
				}
			}
		}
	}

	ustates := make([]*unitState, len(units))
	results := make([]string, len(units))
	completed := 0

	// Crash-resume journal: replay recovered artifacts (they re-proved
	// their checksums on read), then journal every new completion.
	var jnl *journal
	recovered := map[int]string{}
	if opts.JournalPath != "" {
		unitIDs := make([]string, len(units))
		for i, u := range units {
			unitIDs[i] = u.ID
		}
		fp := sweepFingerprint(opts, unitIDs)
		if opts.ResumeJournal {
			if recovered, err = readJournal(opts.JournalPath, fp, len(units)); err != nil {
				return "", rep, err
			}
		}
		if jnl, err = openJournal(opts.JournalPath, fp, unitIDs, recovered); err != nil {
			return "", rep, err
		}
		defer jnl.close()
		for i, artifact := range recovered {
			results[i] = artifact
			completed++
		}
		rep.Resumed = len(recovered)
		if opts.ResumeJournal {
			log("sweep: journal %s: resumed %d of %d units", opts.JournalPath, rep.Resumed, len(units))
		}
	}

	var pending []int
	for i, u := range units {
		ustates[i] = &unitState{unit: u, lastWorker: -1}
		if _, done := recovered[i]; !done {
			pending = append(pending, i)
		}
	}
	// Buffered past the worst case (one completion, requeue timer or
	// probe per unit/worker at a time) so goroutines abandoned by an
	// early error return never block on send.
	events := make(chan event, 2*len(units)+2*len(workers))
	outstanding := 0

	aliveCount := func() int {
		n := 0
		for _, w := range workers {
			if !w.dead && !w.quarantined {
				n++
			}
		}
		return n
	}

	// sendEvent delivers ev without leaking the sending goroutine if the
	// run already returned (the deferred cancel fires on every exit path).
	sendEvent := func(ev event) {
		select {
		case events <- ev:
		case <-ctx.Done():
		}
	}

	// probe re-checks a quarantined worker's health off-loop with doubling
	// delays, charging one probe from the worker's budget per attempt. It
	// reports exactly one event; the outstanding slot it holds keeps the
	// main loop alive while every worker is quarantined.
	probe := func(wi, attempt int) {
		w := workers[wi]
		delay := probeDelay << attempt
		if delay > 30*time.Second {
			delay = 30 * time.Second
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return
		}
		if _, err := w.client.Health(ctx); err != nil {
			sendEvent(event{kind: evProbeDead, worker: wi, err: err})
			return
		}
		sendEvent(event{kind: evProbeOK, worker: wi})
	}

	// pickUnit chooses the best pending unit for a worker: the one whose
	// dependency artifacts overlap most with what the worker has already
	// built (warm-context affinity), ties broken by lowest global index
	// (deterministic, keeps the output tail short). A retried unit avoids
	// the worker it just failed on while an alternative exists.
	pickUnit := func(wi int) int {
		w := workers[wi]
		best, bestScore := -1, -1
		for pi, ui := range pending {
			u := ustates[ui]
			if u.attempts > 0 && u.lastWorker == wi && aliveCount() > 1 {
				continue
			}
			score := 0
			for _, d := range u.unit.Deps {
				if w.artifacts[d] {
					score++
				}
			}
			if score > bestScore || (score == bestScore && best >= 0 && ui < pending[best]) {
				best, bestScore = pi, score
			}
		}
		return best
	}

	runUnit := func(wi, ui int) {
		w, u := workers[wi], ustates[ui]
		job := engine.Job{Kind: engine.KindExperiments, Experiments: &engine.ExperimentsJob{
			Scenario: opts.Scenario,
			Units:    u.unit.ID,
			Scale:    opts.Scale,
			Events:   opts.Events,
			Budget1:  opts.Budget1,
			Budget2:  opts.Budget2,
			Seed:     opts.Seed,
			Quiet:    true,
		}}
		// Each dispatch attempt gets a fresh unit span; only the attempt
		// that completes records it, so retries never double-cover a unit
		// in the flight recorder.
		start := time.Now()
		jobCtx := ctx
		var unitSpan telemetry.Span
		if traced {
			unitSpan = telemetry.Span{
				Trace:  opts.Trace.Trace,
				ID:     telemetry.NewID(),
				Parent: opts.Trace.Span,
				Name:   "unit",
				Start:  start,
				Attrs: map[string]string{
					"unit":    u.unit.ID,
					"worker":  w.url,
					"attempt": fmt.Sprint(u.attempts + 1),
				},
			}
			jobCtx = telemetry.ContextWithSpan(ctx, unitSpan.Context())
		}
		id, err := w.client.Submit(jobCtx, job)
		if err != nil {
			sendEvent(event{kind: evFail, unitIdx: ui, worker: wi, err: err})
			return
		}
		// Watch streams the job's terminal state over SSE and falls back
		// to polling at opts.Poll if the stream breaks mid-run.
		st, err := w.client.Watch(ctx, id, opts.Poll)
		if err != nil {
			sendEvent(event{kind: evFail, unitIdx: ui, worker: wi, err: err})
			return
		}
		if st.Status != "done" || st.Result == nil {
			sendEvent(event{kind: evFail, unitIdx: ui, worker: wi,
				err: fmt.Errorf("job %s %s: %s", id, st.Status, st.Error)})
			return
		}
		ev := event{kind: evDone, unitIdx: ui, worker: wi,
			artifact: st.Result.Artifact, elapsed: time.Since(start)}
		if traced {
			unitSpan.DurationNS = ev.elapsed.Nanoseconds()
			ev.spans = append([]telemetry.Span{unitSpan}, st.Result.Spans...)
		}
		sendEvent(ev)
	}

	dispatch := func() {
		for {
			progressed := false
			for wi, w := range workers {
				if w.dead || w.quarantined || w.inflight >= window || len(pending) == 0 {
					continue
				}
				pi := pickUnit(wi)
				if pi < 0 {
					continue
				}
				ui := pending[pi]
				pending = append(pending[:pi], pending[pi+1:]...)
				u := ustates[ui]
				w.inflight++
				for _, d := range u.unit.Deps {
					w.artifacts[d] = true
				}
				outstanding++
				log("sweep: [%d/%d] %s -> %s%s", u.unit.Index+1, len(units), u.unit.ID, w.url,
					map[bool]string{true: " (retry)", false: ""}[u.attempts > 0])
				inc(mDispatched)
				go runUnit(wi, ui)
				progressed = true
			}
			if !progressed {
				return
			}
		}
	}

	dispatch()
	for completed < len(units) {
		if outstanding == 0 {
			return "", rep, fmt.Errorf("cluster: no live workers remain (%d of %d units unfinished)",
				len(units)-completed, len(units))
		}
		ev := <-events
		w := workers[ev.worker]
		switch ev.kind {
		case evDone:
			outstanding--
			w.inflight--
			w.failStreak = 0
			w.completed++
			rep.Completed[w.url]++
			results[ev.unitIdx] = ev.artifact
			completed++
			inc(mCompleted)
			rep.UnitDurations = append(rep.UnitDurations, ev.elapsed)
			opts.Recorder.Add(ev.spans...)
			if jnl != nil {
				// Journal before anything else can crash us: a unit recorded
				// here never re-runs on resume, one lost to a crash between
				// completion and this append merely re-runs.
				if err := jnl.append(ev.unitIdx, ustates[ev.unitIdx].unit.ID, ev.artifact); err != nil {
					return "", rep, fmt.Errorf("cluster: journal %s: %w", opts.JournalPath, err)
				}
			}
		case evFail:
			outstanding--
			w.inflight--
			w.failStreak++
			if !w.dead && !w.quarantined && w.failStreak >= deadAfter {
				// Open the circuit: stop feeding the worker, but probe its
				// health in the background — a worker that merely restarted
				// (or sat behind a burst of injected faults) re-admits
				// instead of shrinking the pool for the rest of the sweep.
				if w.probes >= probeLimit {
					w.dead = true
					rep.Dead = append(rep.Dead, w.url)
					inc(mDead)
					log("sweep: worker %s marked dead after %d consecutive failures (probe budget spent)",
						w.url, w.failStreak)
				} else {
					w.quarantined = true
					rep.Quarantined = appendOnce(rep.Quarantined, w.url)
					inc(mQuarantined)
					log("sweep: worker %s quarantined after %d consecutive failures; probing",
						w.url, w.failStreak)
					outstanding++ // the prober keeps the loop alive
					attempt := w.probes
					w.probes++
					inc(mProbes)
					wi := ev.worker
					go probe(wi, attempt)
				}
			}
			u := ustates[ev.unitIdx]
			u.attempts++
			u.lastWorker = ev.worker
			if u.attempts > retries {
				return "", rep, fmt.Errorf("cluster: unit %s failed %d times, last on %s: %w",
					u.unit.ID, u.attempts, w.url, ev.err)
			}
			rep.Reassigned++
			inc(mReassigned)
			delay := backoff << (u.attempts - 1)
			log("sweep: unit %s failed on %s (attempt %d/%d): %v; redispatching in %v",
				u.unit.ID, w.url, u.attempts, retries+1, ev.err, delay)
			outstanding++ // the requeue timer keeps the loop alive
			ui := ev.unitIdx
			time.AfterFunc(delay, func() { sendEvent(event{kind: evRequeue, unitIdx: ui}) })
		case evRequeue:
			outstanding--
			pending = append(pending, ev.unitIdx)
		case evProbeOK:
			outstanding--
			// Probation: one more failure re-quarantines immediately (the
			// streak restarts one short of the threshold), but a worker
			// that is actually healthy again rejoins at full capacity.
			w.quarantined = false
			w.failStreak = deadAfter - 1
			log("sweep: worker %s passed its health probe; re-admitted on probation", w.url)
		case evProbeDead:
			outstanding--
			if w.probes >= probeLimit {
				w.quarantined = false
				w.dead = true
				rep.Dead = append(rep.Dead, w.url)
				inc(mDead)
				log("sweep: worker %s failed its final health probe (%d/%d): %v; marked dead",
					w.url, w.probes, probeLimit, ev.err)
			} else {
				log("sweep: worker %s failed health probe %d/%d: %v; probing again",
					w.url, w.probes, probeLimit, ev.err)
				outstanding++
				attempt := w.probes
				w.probes++
				inc(mProbes)
				wi := ev.worker
				go probe(wi, attempt)
			}
		}
		dispatch()
	}

	// Federation, outbound half: collect every surviving worker's delta
	// (what it computed this round), merge checksummed last-writer-wins,
	// persist. Also aggregate the cache statistics deltas — the
	// cluster-wide effectiveness picture.
	rejectedBefore := fed.Stats().Rejected
	// Deltas stream straight from the peer's response body into the
	// federated cache: records are verified and merged one at a time, so
	// neither side buffers a whole snapshot.
	collect := func(cl *engine.Client) (int, error) {
		rc, err := cl.SnapshotReader(ctx, true)
		if err != nil {
			return 0, err
		}
		defer rc.Close()
		added, _, err := fed.LoadStream(rc)
		return added, err
	}
	for _, w := range workers {
		if w.dead {
			continue
		}
		added, err := collect(w.client)
		if err != nil {
			log("sweep: worker %s: delta collection failed: %v", w.url, err)
			continue
		}
		log("sweep: worker %s contributed %d cache entries", w.url, added)
		if w.sampled {
			if h, err := w.client.Health(ctx); err == nil {
				rep.Cache.Hits += h.Cache.Hits - w.before.Cache.Hits
				rep.Cache.Misses += h.Cache.Misses - w.before.Cache.Misses
				rep.Cache.Shared += h.Cache.Shared - w.before.Cache.Shared
				rep.Cache.RemoteHits += h.Cache.RemoteHits - w.before.Cache.RemoteHits
				rep.Cache.Entries += h.Cache.Entries
			}
		}
	}
	if cacheSrv != nil {
		// The cache server's delta is what workers wrote back mid-run —
		// entries the snapshot federation above may have missed if their
		// worker died before drain.
		if added, err := collect(cacheSrv); err != nil {
			log("sweep: cache server %s: delta collection failed: %v", opts.CacheServer, err)
		} else {
			log("sweep: cache server %s contributed %d cache entries", opts.CacheServer, added)
		}
	}
	rep.SnapshotRejected = fed.Stats().Rejected - rejectedBefore
	if rep.SnapshotRejected > 0 {
		log("sweep: rejected %d corrupted delta entries", rep.SnapshotRejected)
	}
	rep.MergedEntries = fed.Stats().Entries
	if opts.CachePath != "" {
		if err := fed.SaveFile(opts.CachePath); err != nil {
			return "", rep, fmt.Errorf("cluster: save federated snapshot %s: %w", opts.CachePath, err)
		}
		log("sweep: cache: saved %d federated entries to %s", rep.MergedEntries, opts.CachePath)
	}
	sort.Strings(rep.Dead)
	sort.Strings(rep.Quarantined)
	log("sweep: cluster cache: %d hits, %d misses, %d shared in-flight (%.1f%% hit rate)",
		rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Shared, rep.Cache.HitRate()*100)
	if opts.CacheServer != "" {
		log("sweep: shared cache tier: %d mid-run remote hits via %s",
			rep.Cache.RemoteHits, opts.CacheServer)
	}

	var b strings.Builder
	for _, r := range results {
		b.WriteString(r)
	}
	return b.String(), rep, nil
}

// appendOnce appends s to list unless already present (short lists only).
func appendOnce(list []string, s string) []string {
	for _, v := range list {
		if v == s {
			return list
		}
	}
	return append(list, s)
}
