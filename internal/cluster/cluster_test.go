package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"racesim/internal/chaos"
	"racesim/internal/cluster"
	"racesim/internal/engine"
	"racesim/internal/telemetry"
)

// tinyArgs are the seconds-scale sweep parameters CI's smoke jobs use.
const (
	tinyScale   = 0.002
	tinyEvents  = 4000
	tinyBudget  = 250
	tinySelect  = "table1,table2,fig2"
	tinyTimeout = 2 * time.Minute
)

// startWorker runs an in-process serve worker and returns its URL.
func startWorker(t *testing.T) (*engine.Server, *httptest.Server) {
	t.Helper()
	srv, err := engine.NewServer(engine.ServerOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), tinyTimeout)
		defer cancel()
		srv.Drain(ctx)
	})
	return srv, ts
}

// batchArtifact renders the selection in-process, unsharded — the bytes
// the sweep must reproduce.
func batchArtifact(t *testing.T, selection string) string {
	t.Helper()
	res, err := engine.Execute(engine.Job{Kind: engine.KindExperiments, Experiments: &engine.ExperimentsJob{
		Scenario: selection, Scale: tinyScale, Events: tinyEvents,
		Budget1: tinyBudget, Budget2: tinyBudget, Quiet: true,
	}}, engine.Options{Parallelism: 2, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Artifact
}

func tinyOptions(urls ...string) cluster.Options {
	return cluster.Options{
		Workers:  urls,
		Scenario: tinySelect,
		Scale:    tinyScale,
		Events:   tinyEvents,
		Budget1:  tinyBudget,
		Budget2:  tinyBudget,
		Poll:     20 * time.Millisecond,
		Backoff:  50 * time.Millisecond,
	}
}

func TestSweepByteIdenticalToSingleProcess(t *testing.T) {
	_, tsA := startWorker(t)
	_, tsB := startWorker(t)

	got, rep, err := cluster.Run(context.Background(), tinyOptions(tsA.URL, tsB.URL))
	if err != nil {
		t.Fatal(err)
	}
	want := batchArtifact(t, tinySelect)
	if got != want {
		t.Errorf("sweep output differs from single-process run:\nsweep:\n%s\nbatch:\n%s", got, want)
	}
	if rep.Units != 3 {
		t.Errorf("report units = %d, want 3", rep.Units)
	}
	total := 0
	for _, n := range rep.Completed {
		total += n
	}
	if total != 3 {
		t.Errorf("completed %d units across workers, want 3: %v", total, rep.Completed)
	}
	if rep.Cache.Misses == 0 {
		t.Error("cold sweep reported no cluster cache misses")
	}
}

// flakyProxy forwards to a real worker until killed, then refuses every
// request — a worker process dying mid-run, deterministically timed: it
// goes dark immediately after accepting its first job.
type flakyProxy struct {
	inner http.Handler
	posts atomic.Int32
	dead  atomic.Bool
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.dead.Load() {
		http.Error(w, "connection refused (simulated dead worker)", http.StatusBadGateway)
		return
	}
	f.inner.ServeHTTP(w, r)
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && f.posts.Add(1) == 1 {
		f.dead.Store(true)
	}
}

func TestSweepSurvivesWorkerKilledMidRun(t *testing.T) {
	_, tsA := startWorker(t)
	srvB, err := engine.NewServer(engine.ServerOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	proxy := &flakyProxy{inner: srvB.Handler()}
	tsB := httptest.NewServer(proxy)
	defer tsB.Close()
	defer srvB.Drain(context.Background())

	opts := tinyOptions(tsA.URL, tsB.URL)
	got, rep, err := cluster.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := batchArtifact(t, tinySelect); got != want {
		t.Errorf("sweep with a killed worker differs from single-process run:\nsweep:\n%s\nbatch:\n%s", got, want)
	}
	if rep.Reassigned == 0 {
		t.Error("killed worker's unit was never reassigned")
	}
	// Every unit ultimately rendered on the surviving worker.
	if n := rep.Completed[strings.TrimRight(tsA.URL, "/")]; n != rep.Units {
		t.Errorf("surviving worker rendered %d of %d units: %v", n, rep.Units, rep.Completed)
	}
}

func TestSweepFederationWarmRerun(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "federated.json")

	_, tsA := startWorker(t)
	_, tsB := startWorker(t)
	opts := tinyOptions(tsA.URL, tsB.URL)
	opts.CachePath = snap
	cold, repCold, err := cluster.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if repCold.MergedEntries == 0 {
		t.Fatal("cold round merged no cache entries")
	}

	// Fresh workers (cold processes), same snapshot: the pre-seed makes
	// the whole cluster warm — zero misses anywhere.
	_, tsC := startWorker(t)
	_, tsD := startWorker(t)
	opts2 := tinyOptions(tsC.URL, tsD.URL)
	opts2.CachePath = snap
	warm, repWarm, err := cluster.Run(context.Background(), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Error("warm sweep output differs from cold sweep output")
	}
	if repWarm.Cache.Misses != 0 {
		t.Errorf("warm cluster simulated %d units, want 0 (stats %+v)", repWarm.Cache.Misses, repWarm.Cache)
	}
	if repWarm.Cache.Hits == 0 {
		t.Error("warm cluster reported no hits")
	}
	if repWarm.MergedEntries < repCold.MergedEntries {
		t.Errorf("federated snapshot shrank: %d -> %d", repCold.MergedEntries, repWarm.MergedEntries)
	}
}

func TestSweepFailsWithoutLiveWorkers(t *testing.T) {
	if _, _, err := cluster.Run(context.Background(), cluster.Options{Scenario: "table1"}); err == nil {
		t.Error("no workers accepted")
	}
	// An address nothing listens on: reachability is checked up front.
	opts := tinyOptions("http://127.0.0.1:1")
	opts.Scenario = "table1"
	if _, _, err := cluster.Run(context.Background(), opts); err == nil {
		t.Error("unreachable worker pool accepted")
	}
	// A bad selection fails before any dispatch.
	_, ts := startWorker(t)
	opts = tinyOptions(ts.URL)
	opts.Scenario = "no-such-scenario"
	if _, _, err := cluster.Run(context.Background(), opts); err == nil {
		t.Error("bogus selection accepted")
	}
}

func TestSweepUnitExhaustionSurfacesError(t *testing.T) {
	// A worker whose jobs always fail (bad selection is caught locally,
	// so use a proxy that 500s every submission after health passes).
	srv, err := engine.NewServer(engine.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	defer srv.Drain(context.Background())

	opts := tinyOptions(ts.URL)
	opts.Scenario = "table1"
	opts.Retries = 1
	_, _, err = cluster.Run(context.Background(), opts)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Errorf("exhausted unit did not surface a failure: %v", err)
	}
}

// TestSweepJournalCrashResumeByteIdentical is the resume property test:
// a journaled sweep killed after any number of completed units and
// restarted with ResumeJournal re-dispatches only the unfinished units
// and assembles output byte-identical to the uninterrupted run. The
// "crash" is simulated by truncating the journal to its first k records
// (plus a torn half-record, the shape a real kill leaves behind).
func TestSweepJournalCrashResumeByteIdentical(t *testing.T) {
	_, tsA := startWorker(t)
	_, tsB := startWorker(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.journal")

	opts := tinyOptions(tsA.URL, tsB.URL)
	opts.JournalPath = journal
	want, rep, err := cluster.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 0 {
		t.Fatalf("first run resumed %d units from nowhere", rep.Resumed)
	}
	full, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(full), "\n"), "\n")
	header, records := lines[0], lines[1:]
	if len(records) != rep.Units {
		t.Fatalf("journal holds %d records, want %d", len(records), rep.Units)
	}

	for k := 0; k <= len(records); k++ {
		crashed := header + strings.Join(records[:k], "")
		if k < len(records) {
			// The torn tail of the append in flight when the crash hit.
			crashed += records[k][:len(records[k])/2]
		}
		if err := os.WriteFile(journal, []byte(crashed), 0o644); err != nil {
			t.Fatal(err)
		}
		ropts := tinyOptions(tsA.URL, tsB.URL)
		ropts.JournalPath = journal
		ropts.ResumeJournal = true
		got, rrep, err := cluster.Run(context.Background(), ropts)
		if err != nil {
			t.Fatalf("resume after %d completed units: %v", k, err)
		}
		if got != want {
			t.Errorf("resume after %d units differs from the uninterrupted run:\nresume:\n%s\nfull:\n%s", k, got, want)
		}
		if rrep.Resumed != k {
			t.Errorf("resume after %d units replayed %d", k, rrep.Resumed)
		}
		dispatched := 0
		for _, n := range rrep.Completed {
			dispatched += n
		}
		if dispatched != rep.Units-k {
			t.Errorf("resume after %d units dispatched %d, want %d", k, dispatched, rep.Units-k)
		}
	}
}

// TestSweepJournalRejectsForeignJournal: resuming against a journal from
// a different sweep must fail loudly before dispatching anything.
func TestSweepJournalRejectsForeignJournal(t *testing.T) {
	_, ts := startWorker(t)
	journal := filepath.Join(t.TempDir(), "sweep.journal")

	opts := tinyOptions(ts.URL)
	opts.Scenario = "table1"
	opts.JournalPath = journal
	if _, _, err := cluster.Run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	// Same journal, different selection: refuse, don't splice artifacts.
	opts2 := tinyOptions(ts.URL)
	opts2.Scenario = "table2"
	opts2.JournalPath = journal
	opts2.ResumeJournal = true
	if _, _, err := cluster.Run(context.Background(), opts2); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Errorf("foreign journal resume error = %v, want a different-sweep rejection", err)
	}
}

// brokenUntilProxy 500s job submissions until `heal` submissions have
// been refused, then behaves normally — a worker with a transient fault
// (full disk, OOM churn) that recovers while quarantined. Health checks
// pass throughout, so the prober re-admits it.
type brokenUntilProxy struct {
	inner    http.Handler
	refusals atomic.Int32
	heal     int32
}

func (b *brokenUntilProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
		if n := b.refusals.Load(); n < b.heal {
			b.refusals.Add(1)
			http.Error(w, "simulated transient fault", http.StatusInternalServerError)
			return
		}
	}
	b.inner.ServeHTTP(w, r)
}

func TestSweepQuarantinesAndReadmitsFlakyWorker(t *testing.T) {
	// The flaky worker is the ONLY worker: finishing the sweep at all
	// requires the full circuit-breaker cycle — failures open the circuit,
	// a passing probe re-admits, the healed worker renders everything.
	srvB, err := engine.NewServer(engine.ServerOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	proxy := &brokenUntilProxy{inner: srvB.Handler(), heal: 2}
	tsB := httptest.NewServer(proxy)
	defer tsB.Close()
	defer srvB.Drain(context.Background())

	opts := tinyOptions(tsB.URL)
	opts.DeadAfter = 2
	opts.ProbeDelay = 20 * time.Millisecond
	opts.Retries = 6
	got, rep, err := cluster.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := batchArtifact(t, tinySelect); got != want {
		t.Errorf("sweep with a flaky worker differs from single-process run:\nsweep:\n%s\nbatch:\n%s", got, want)
	}
	flaky := strings.TrimRight(tsB.URL, "/")
	var quarantined bool
	for _, url := range rep.Quarantined {
		if url == flaky {
			quarantined = true
		}
	}
	if !quarantined {
		t.Errorf("flaky worker never quarantined: %v", rep.Quarantined)
	}
	for _, url := range rep.Dead {
		if url == flaky {
			t.Errorf("healed worker declared dead: %v", rep.Dead)
		}
	}
}

func TestSweepQuarantinedWorkerDiesAfterProbeBudget(t *testing.T) {
	// A worker that goes completely dark (every request fails, probes
	// included) exhausts its probe budget and is declared dead; the sweep
	// still completes on the healthy worker.
	_, tsA := startWorker(t)
	srvB, err := engine.NewServer(engine.ServerOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	proxy := &flakyProxy{inner: srvB.Handler()}
	tsB := httptest.NewServer(proxy)
	defer tsB.Close()
	defer srvB.Drain(context.Background())

	opts := tinyOptions(tsA.URL, tsB.URL)
	opts.DeadAfter = 1
	opts.ProbeLimit = 2
	opts.ProbeDelay = 10 * time.Millisecond
	got, rep, err := cluster.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := batchArtifact(t, tinySelect); got != want {
		t.Errorf("sweep output differs after probe-exhausted death")
	}
	dark := strings.TrimRight(tsB.URL, "/")
	var died bool
	for _, url := range rep.Dead {
		if url == dark {
			died = true
		}
	}
	if !died {
		t.Errorf("dark worker not declared dead: dead=%v quarantined=%v", rep.Dead, rep.Quarantined)
	}
}

func TestSweepByteIdenticalUnderChaosTransport(t *testing.T) {
	// The tentpole property: with seeded network faults between the
	// coordinator and every worker, the assembled artifact is still
	// byte-identical to the fault-free run — faults cost retries, never
	// correctness.
	_, tsA := startWorker(t)
	_, tsB := startWorker(t)

	inj := chaos.New(chaos.Spec{Seed: 7, Drop: 0.04, Delay: 0.05, DelayMax: 10 * time.Millisecond, Fail: 0.03, Corrupt: 0.03})
	opts := tinyOptions(tsA.URL, tsB.URL)
	opts.Transport = inj.Transport(nil)
	opts.Retries = 8
	opts.DeadAfter = 4
	got, _, err := cluster.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := batchArtifact(t, tinySelect); got != want {
		t.Errorf("chaos sweep differs from fault-free run:\nchaos:\n%s\nclean:\n%s", got, want)
	}
	if inj.Counts() == (chaos.Counts{}) {
		t.Error("the chaos run injected nothing; the property was not exercised")
	}
}

// TestSweepCacheServerSharedTier proves the mid-run half of cache
// federation: workers configured with a cache upstream write results
// back to the shared tier while running, and a second sweep with cold
// local caches resolves its misses against that tier mid-run (counted
// as remote hits) — all while staying byte-identical to the unsharded
// single-process run.
func TestSweepCacheServerSharedTier(t *testing.T) {
	cacheSrv, err := engine.NewServer(engine.ServerOptions{CacheServer: true})
	if err != nil {
		t.Fatal(err)
	}
	tsCache := httptest.NewServer(cacheSrv.Handler())
	t.Cleanup(func() {
		tsCache.Close()
		ctx, cancel := context.WithTimeout(context.Background(), tinyTimeout)
		defer cancel()
		cacheSrv.Drain(ctx)
	})

	startUpstreamWorker := func() *httptest.Server {
		srv, err := engine.NewServer(engine.ServerOptions{Parallelism: 2, CacheUpstream: tsCache.URL})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), tinyTimeout)
			defer cancel()
			srv.Drain(ctx)
		})
		return ts
	}

	// The cache-server role must refuse units — the coordinator never
	// dispatches to it, and a stray client gets a clean error.
	if _, err := engine.NewClient(tsCache.URL).Submit(context.Background(), engine.Job{
		Kind: engine.KindExperiments,
		Experiments: &engine.ExperimentsJob{
			Scenario: tinySelect, Scale: tinyScale, Events: tinyEvents,
			Budget1: tinyBudget, Budget2: tinyBudget, Quiet: true,
		},
	}); err == nil {
		t.Fatal("cache-server accepted a job; want refusal")
	}

	want := batchArtifact(t, tinySelect)

	// Round 1: cold workers simulate everything and write back to the
	// shared tier as they go.
	tsA, tsB := startUpstreamWorker(), startUpstreamWorker()
	opts := tinyOptions(tsA.URL, tsB.URL)
	opts.CacheServer = tsCache.URL
	got, rep, err := cluster.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round-1 sweep output differs from single-process run")
	}
	if rep.Cache.Misses == 0 {
		t.Fatal("cold sweep reported no misses; shared tier cannot have been populated")
	}

	// Write-back is asynchronous; wait for the shared tier to go
	// non-empty and stable before the warm round.
	deadline := time.Now().Add(30 * time.Second)
	last := -1
	for {
		n := cacheSrv.Cache().Stats().Entries
		if n > 0 && n == last {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shared tier never stabilized (entries=%d)", n)
		}
		last = n
		time.Sleep(200 * time.Millisecond)
	}

	// Round 2: fresh workers with cold local caches. Every unit re-runs,
	// but misses resolve mid-run against the shared tier.
	tsC, tsD := startUpstreamWorker(), startUpstreamWorker()
	opts2 := tinyOptions(tsC.URL, tsD.URL)
	opts2.CacheServer = tsCache.URL
	got2, rep2, err := cluster.Run(context.Background(), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want {
		t.Errorf("round-2 sweep output differs from single-process run")
	}
	if rep2.Cache.RemoteHits == 0 {
		t.Error("warm round reported no mid-run remote hits from the shared tier")
	}
}

func TestSweepTracingCoversEveryUnitExactlyOnce(t *testing.T) {
	_, tsA := startWorker(t)
	_, tsB := startWorker(t)

	rec := telemetry.NewRecorder()
	root := telemetry.SpanContext{Trace: telemetry.NewID(), Span: telemetry.NewID()}
	reg := telemetry.NewRegistry()
	opts := tinyOptions(tsA.URL, tsB.URL)
	opts.Trace = root
	opts.Recorder = rec
	opts.Metrics = reg

	got, rep, err := cluster.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := batchArtifact(t, tinySelect); got != want {
		t.Error("traced sweep output differs from single-process run")
	}

	spans := rec.Spans()
	unitSpans := map[string]telemetry.Span{}
	byID := map[string]telemetry.Span{}
	for _, sp := range spans {
		if sp.Trace != root.Trace {
			t.Errorf("span %s/%s outside the sweep trace", sp.Name, sp.ID)
		}
		byID[sp.ID] = sp
		if sp.Name == "unit" {
			uid := sp.Attrs["unit"]
			if _, dup := unitSpans[uid]; dup {
				t.Errorf("unit %s covered twice in the flight recorder", uid)
			}
			unitSpans[uid] = sp
		}
	}
	if len(unitSpans) != rep.Units {
		t.Fatalf("flight recorder covers %d units, want %d: %v", len(unitSpans), rep.Units, unitSpans)
	}
	for uid, sp := range unitSpans {
		if sp.Parent != root.Span {
			t.Errorf("unit %s span not parented under the sweep root", uid)
		}
	}
	// Worker-side job spans must parent under some unit span — the
	// coordinator → worker hop survived the HTTP boundary.
	jobSpans := 0
	for _, sp := range spans {
		if sp.Name != "job" {
			continue
		}
		jobSpans++
		parent, ok := byID[sp.Parent]
		if !ok || parent.Name != "unit" {
			t.Errorf("job span %s not parented under a unit span (parent %q)", sp.ID, sp.Parent)
		}
	}
	if jobSpans != rep.Units {
		t.Errorf("%d job spans for %d units", jobSpans, rep.Units)
	}

	if len(rep.UnitDurations) != rep.Units {
		t.Errorf("%d unit durations for %d units", len(rep.UnitDurations), rep.Units)
	}
	for _, d := range rep.UnitDurations {
		if d <= 0 {
			t.Errorf("non-positive unit duration %v", d)
		}
	}

	// Scheduling counters: a clean sweep dispatches and completes every
	// unit, reassigns nothing.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"racesim_sweep_dispatched_total 3",
		"racesim_sweep_units_completed_total 3",
		"racesim_sweep_reassigned_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestSweepUntracedRecordsNothing(t *testing.T) {
	_, ts := startWorker(t)
	opts := tinyOptions(ts.URL)
	opts.Scenario = "table1"
	got, _, err := cluster.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := batchArtifact(t, "table1"); got != want {
		t.Error("untraced sweep output differs from single-process run")
	}
}
