package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"racesim/internal/cluster"
	"racesim/internal/engine"
)

// tinyArgs are the seconds-scale sweep parameters CI's smoke jobs use.
const (
	tinyScale   = 0.002
	tinyEvents  = 4000
	tinyBudget  = 250
	tinySelect  = "table1,table2,fig2"
	tinyTimeout = 2 * time.Minute
)

// startWorker runs an in-process serve worker and returns its URL.
func startWorker(t *testing.T) (*engine.Server, *httptest.Server) {
	t.Helper()
	srv, err := engine.NewServer(engine.ServerOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), tinyTimeout)
		defer cancel()
		srv.Drain(ctx)
	})
	return srv, ts
}

// batchArtifact renders the selection in-process, unsharded — the bytes
// the sweep must reproduce.
func batchArtifact(t *testing.T, selection string) string {
	t.Helper()
	res, err := engine.Execute(engine.Job{Kind: engine.KindExperiments, Experiments: &engine.ExperimentsJob{
		Scenario: selection, Scale: tinyScale, Events: tinyEvents,
		Budget1: tinyBudget, Budget2: tinyBudget, Quiet: true,
	}}, engine.Options{Parallelism: 2, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Artifact
}

func tinyOptions(urls ...string) cluster.Options {
	return cluster.Options{
		Workers:  urls,
		Scenario: tinySelect,
		Scale:    tinyScale,
		Events:   tinyEvents,
		Budget1:  tinyBudget,
		Budget2:  tinyBudget,
		Poll:     20 * time.Millisecond,
		Backoff:  50 * time.Millisecond,
	}
}

func TestSweepByteIdenticalToSingleProcess(t *testing.T) {
	_, tsA := startWorker(t)
	_, tsB := startWorker(t)

	got, rep, err := cluster.Run(context.Background(), tinyOptions(tsA.URL, tsB.URL))
	if err != nil {
		t.Fatal(err)
	}
	want := batchArtifact(t, tinySelect)
	if got != want {
		t.Errorf("sweep output differs from single-process run:\nsweep:\n%s\nbatch:\n%s", got, want)
	}
	if rep.Units != 3 {
		t.Errorf("report units = %d, want 3", rep.Units)
	}
	total := 0
	for _, n := range rep.Completed {
		total += n
	}
	if total != 3 {
		t.Errorf("completed %d units across workers, want 3: %v", total, rep.Completed)
	}
	if rep.Cache.Misses == 0 {
		t.Error("cold sweep reported no cluster cache misses")
	}
}

// flakyProxy forwards to a real worker until killed, then refuses every
// request — a worker process dying mid-run, deterministically timed: it
// goes dark immediately after accepting its first job.
type flakyProxy struct {
	inner http.Handler
	posts atomic.Int32
	dead  atomic.Bool
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.dead.Load() {
		http.Error(w, "connection refused (simulated dead worker)", http.StatusBadGateway)
		return
	}
	f.inner.ServeHTTP(w, r)
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && f.posts.Add(1) == 1 {
		f.dead.Store(true)
	}
}

func TestSweepSurvivesWorkerKilledMidRun(t *testing.T) {
	_, tsA := startWorker(t)
	srvB, err := engine.NewServer(engine.ServerOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	proxy := &flakyProxy{inner: srvB.Handler()}
	tsB := httptest.NewServer(proxy)
	defer tsB.Close()
	defer srvB.Drain(context.Background())

	opts := tinyOptions(tsA.URL, tsB.URL)
	got, rep, err := cluster.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := batchArtifact(t, tinySelect); got != want {
		t.Errorf("sweep with a killed worker differs from single-process run:\nsweep:\n%s\nbatch:\n%s", got, want)
	}
	if rep.Reassigned == 0 {
		t.Error("killed worker's unit was never reassigned")
	}
	// Every unit ultimately rendered on the surviving worker.
	if n := rep.Completed[strings.TrimRight(tsA.URL, "/")]; n != rep.Units {
		t.Errorf("surviving worker rendered %d of %d units: %v", n, rep.Units, rep.Completed)
	}
}

func TestSweepFederationWarmRerun(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "federated.json")

	_, tsA := startWorker(t)
	_, tsB := startWorker(t)
	opts := tinyOptions(tsA.URL, tsB.URL)
	opts.CachePath = snap
	cold, repCold, err := cluster.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if repCold.MergedEntries == 0 {
		t.Fatal("cold round merged no cache entries")
	}

	// Fresh workers (cold processes), same snapshot: the pre-seed makes
	// the whole cluster warm — zero misses anywhere.
	_, tsC := startWorker(t)
	_, tsD := startWorker(t)
	opts2 := tinyOptions(tsC.URL, tsD.URL)
	opts2.CachePath = snap
	warm, repWarm, err := cluster.Run(context.Background(), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Error("warm sweep output differs from cold sweep output")
	}
	if repWarm.Cache.Misses != 0 {
		t.Errorf("warm cluster simulated %d units, want 0 (stats %+v)", repWarm.Cache.Misses, repWarm.Cache)
	}
	if repWarm.Cache.Hits == 0 {
		t.Error("warm cluster reported no hits")
	}
	if repWarm.MergedEntries < repCold.MergedEntries {
		t.Errorf("federated snapshot shrank: %d -> %d", repCold.MergedEntries, repWarm.MergedEntries)
	}
}

func TestSweepFailsWithoutLiveWorkers(t *testing.T) {
	if _, _, err := cluster.Run(context.Background(), cluster.Options{Scenario: "table1"}); err == nil {
		t.Error("no workers accepted")
	}
	// An address nothing listens on: reachability is checked up front.
	opts := tinyOptions("http://127.0.0.1:1")
	opts.Scenario = "table1"
	if _, _, err := cluster.Run(context.Background(), opts); err == nil {
		t.Error("unreachable worker pool accepted")
	}
	// A bad selection fails before any dispatch.
	_, ts := startWorker(t)
	opts = tinyOptions(ts.URL)
	opts.Scenario = "no-such-scenario"
	if _, _, err := cluster.Run(context.Background(), opts); err == nil {
		t.Error("bogus selection accepted")
	}
}

func TestSweepUnitExhaustionSurfacesError(t *testing.T) {
	// A worker whose jobs always fail (bad selection is caught locally,
	// so use a proxy that 500s every submission after health passes).
	srv, err := engine.NewServer(engine.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	defer srv.Drain(context.Background())

	opts := tinyOptions(ts.URL)
	opts.Scenario = "table1"
	opts.Retries = 1
	_, _, err = cluster.Run(context.Background(), opts)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Errorf("exhausted unit did not surface a failure: %v", err)
	}
}
