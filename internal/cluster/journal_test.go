package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testUnits(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("scenario/unit=%d", i)
	}
	return ids
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	ids := testUnits(3)
	fp := sweepFingerprint(Options{Scenario: "table1", Seed: 7}, ids)

	jnl, err := openJournal(path, fp, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if err := jnl.append(i, id, fmt.Sprintf("artifact for %s\nwith newline\n", id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jnl.close(); err != nil {
		t.Fatal(err)
	}

	got, err := readJournal(path, fp, len(ids))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("recovered %d units, want 3", len(got))
	}
	for i, id := range ids {
		if want := fmt.Sprintf("artifact for %s\nwith newline\n", id); got[i] != want {
			t.Errorf("unit %d: %q, want %q", i, got[i], want)
		}
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	got, err := readJournal(filepath.Join(t.TempDir(), "absent"), "fp", 3)
	if err != nil || len(got) != 0 {
		t.Errorf("missing journal: %d units, err %v; want 0, nil", len(got), err)
	}
}

func TestJournalWrongSweepIsExplicitError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	ids := testUnits(2)
	fpA := sweepFingerprint(Options{Scenario: "table1", Seed: 1}, ids)
	fpB := sweepFingerprint(Options{Scenario: "table1", Seed: 2}, ids)
	if fpA == fpB {
		t.Fatal("distinct options share a fingerprint")
	}
	jnl, err := openJournal(path, fpA, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	jnl.append(0, ids[0], "a")
	jnl.close()
	if _, err := readJournal(path, fpB, len(ids)); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Errorf("foreign journal error = %v, want a different-sweep rejection", err)
	}
	// A file that is not a journal at all is rejected, not replayed.
	other := filepath.Join(t.TempDir(), "not-a-journal")
	os.WriteFile(other, []byte(`{"some":"json"}`+"\n"), 0o644)
	if _, err := readJournal(other, fpA, len(ids)); err == nil {
		t.Error("non-journal file accepted")
	}
}

// TestJournalTornAtEveryByte is the crash-point property: a journal
// truncated at any byte offset (the write that was in flight when the
// coordinator died) recovers a clean prefix of completed units — never an
// error, never a corrupted artifact, never a unit the full journal does
// not contain.
func TestJournalTornAtEveryByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")
	ids := testUnits(3)
	fp := sweepFingerprint(Options{Scenario: "fig2", Events: 4000}, ids)
	jnl, err := openJournal(path, fp, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{}
	for i, id := range ids {
		want[i] = fmt.Sprintf("unit %s rendered {\"nested\": %d}\n", id, i)
		if err := jnl.append(i, id, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	jnl.close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	headerLen := strings.IndexByte(string(full), '\n') + 1
	torn := filepath.Join(dir, "torn.journal")
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := readJournal(torn, fp, len(ids))
		if cut > 0 && cut < headerLen-1 {
			// A torn *header* (truncated before its closing brace) is an
			// unreadable journal — must refuse, not silently resume with
			// zero units against a mismatched sweep.
			if err == nil {
				t.Errorf("cut %d (mid-header): accepted with %d units", cut, len(got))
			}
			continue
		}
		if err != nil {
			t.Errorf("cut %d: %v", cut, err)
			continue
		}
		// Whatever survived is a correct subset...
		for i, a := range got {
			if a != want[i] {
				t.Errorf("cut %d: unit %d artifact corrupted: %q", cut, i, a)
			}
		}
		// ...and a dense prefix: record i survives only if i-1 did (appends
		// are ordered and reading stops at the tear).
		for i := 1; i < len(ids); i++ {
			if _, ok := got[i]; ok {
				if _, prev := got[i-1]; !prev {
					t.Errorf("cut %d: unit %d recovered without unit %d", cut, i, i-1)
				}
			}
		}
	}
}

// TestJournalCompactionClearsTornTail proves resuming rewrites the file:
// after openJournal with the recovered map, the journal on disk parses
// cleanly end-to-end (no garbage beneath later appends).
func TestJournalCompactionClearsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")
	ids := testUnits(3)
	fp := sweepFingerprint(Options{Scenario: "table2"}, ids)
	jnl, err := openJournal(path, fp, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	jnl.append(0, ids[0], "first")
	jnl.close()
	// Simulate a torn append: garbage half-record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"unit":1,"id":"scenario/unit=1","artifact":"tor`)
	f.Close()

	recovered, err := readJournal(path, fp, len(ids))
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d units past a torn tail, want 1", len(recovered))
	}
	jnl, err = openJournal(path, fp, ids, recovered)
	if err != nil {
		t.Fatal(err)
	}
	jnl.append(1, ids[1], "second")
	jnl.append(2, ids[2], "third")
	jnl.close()

	final, err := readJournal(path, fp, len(ids))
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 3 || final[0] != "first" || final[1] != "second" || final[2] != "third" {
		t.Errorf("post-compaction journal recovered %v", final)
	}
}

func TestFingerprintCoversSelectionSizingAndUnits(t *testing.T) {
	base := Options{Scenario: "all", Scale: 0.01, Events: 60000, Budget1: 2500, Budget2: 3500, Seed: 0}
	ids := testUnits(2)
	fp := sweepFingerprint(base, ids)
	for name, mutate := range map[string]func(*Options, *[]string){
		"scenario": func(o *Options, _ *[]string) { o.Scenario = "table1" },
		"scale":    func(o *Options, _ *[]string) { o.Scale = 0.02 },
		"events":   func(o *Options, _ *[]string) { o.Events = 1 },
		"budget1":  func(o *Options, _ *[]string) { o.Budget1 = 1 },
		"budget2":  func(o *Options, _ *[]string) { o.Budget2 = 1 },
		"seed":     func(o *Options, _ *[]string) { o.Seed = 9 },
		"units":    func(_ *Options, u *[]string) { *u = testUnits(3) },
	} {
		o, u := base, append([]string(nil), ids...)
		mutate(&o, &u)
		if sweepFingerprint(o, u) == fp {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
}
