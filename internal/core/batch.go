// Lane-batched replay: one walk over a decoded trace's columns steps a
// vector of per-config lanes. Lanes are fully independent — nothing in a
// lane reads another lane — so each lane's Result is identical to a
// sequential RunDecoded of its config by construction (the walk drives the
// same stepLane kernel with the same per-lane argument sequence).
//
// The walk is chunked lane-major: events are consumed in fixed-size column
// chunks, and within a chunk each lane replays all of the chunk's events
// before the next lane starts. Per-lane event order — the only order that
// matters, since lanes never interact — is preserved exactly. The chunk
// keeps the column slab (IDs, PCs, addresses, targets, taken bits) hot in
// the host cache across all lane passes, while each lane pass keeps that
// lane's model state (cache arrays, predictor tables) hot across thousands
// of consecutive steps instead of being evicted by the other lanes' state
// after every event, as a strict per-event lockstep walk would.
package core

import (
	"fmt"

	"racesim/internal/trace"
)

// batchChunk is the number of events a lane replays before the walk moves
// to the next lane. At ~29 bytes of column data per event a chunk is a
// ~120 KiB slab — comfortably L2-resident on anything this runs on — while
// being long enough that a lane's working set dominates its pass.
const batchChunk = 4096

// InOrderBatch replays one decoded trace through N in-order lanes in
// lockstep. Lane state is a dense slice (struct-of-lanes) so the walk
// touches contiguous memory when stepping the vector.
type InOrderBatch struct {
	st    []inOrderStatic
	lanes []inOrderLane
}

// NewInOrderBatch builds one lane per config; every config must be valid.
func NewInOrderBatch(cfgs []InOrderConfig) (*InOrderBatch, error) {
	b := &InOrderBatch{
		st:    make([]inOrderStatic, len(cfgs)),
		lanes: make([]inOrderLane, len(cfgs)),
	}
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		lane, err := newInOrderLane(cfg)
		if err != nil {
			return nil, err
		}
		b.st[i] = newInOrderStatic(cfg)
		b.lanes[i] = lane
	}
	return b, nil
}

// Lanes returns the lane count.
func (b *InOrderBatch) Lanes() int { return len(b.lanes) }

// RunDecoded walks d's columns once, stepping every lane per event, and
// returns one Result per lane (in constructor config order). behav must be
// the behavior table for d.Insts (nil: compiled here). Every lane's config
// must share d's decoder variant — a batch cannot mix DepBug settings with
// its trace.
func (b *InOrderBatch) RunDecoded(d *trace.Decoded, behav []Behavior) ([]Result, error) {
	for i := range b.st {
		if d.DepBug != b.st[i].depBug {
			return nil, fmt.Errorf("core: decoded trace uses DepBug=%v, lane %d configured with %v", d.DepBug, i, b.st[i].depBug)
		}
	}
	if behav == nil {
		behav = CompileBehaviors(d.Insts)
	}
	st, lanes := b.st, b.lanes
	ids, pcs, mems, tgts := d.IDs, d.PC, d.MemAddr, d.Target
	for s := 0; s < len(ids); s += batchChunk {
		e := min(s+batchChunk, len(ids))
		idsC, pcsC := ids[s:e], pcs[s:e]
		memsC, tgtsC := mems[s:e], tgts[s:e]
		// batchChunk is a multiple of 64, so chunk starts are word-aligned
		// in the taken bitset and each lane pass can shift through whole
		// words instead of re-extracting a bit per event.
		tkC := d.TakenBits[s>>6:]
		for l := range lanes {
			ln, stl := &lanes[l], &st[l]
			var tkWord uint64
			for i := range idsC {
				if i&63 == 0 {
					tkWord = tkC[i>>6]
				}
				ln.stepLane(stl, &behav[idsC[i]], pcsC[i], memsC[i], tgtsC[i], tkWord&1 != 0)
				tkWord >>= 1
			}
		}
	}
	if d.Err != nil {
		return nil, fmt.Errorf("core: %w", d.Err)
	}
	cc := classHistogram(ids, behav)
	out := make([]Result, len(lanes))
	for l := range lanes {
		addCounts(&lanes[l].res, uint64(len(ids)), &cc)
		out[l] = lanes[l].finish()
	}
	return out, nil
}

// OoOBatch replays one decoded trace through N out-of-order lanes; see
// InOrderBatch.
type OoOBatch struct {
	st    []oooStatic
	lanes []oooLane
}

// NewOoOBatch builds one lane per config; every config must be valid.
func NewOoOBatch(cfgs []OoOConfig) (*OoOBatch, error) {
	b := &OoOBatch{
		st:    make([]oooStatic, len(cfgs)),
		lanes: make([]oooLane, len(cfgs)),
	}
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		lane, err := newOoOLane(cfg)
		if err != nil {
			return nil, err
		}
		b.st[i] = newOoOStatic(cfg)
		b.lanes[i] = lane
	}
	return b, nil
}

// Lanes returns the lane count.
func (b *OoOBatch) Lanes() int { return len(b.lanes) }

// RunDecoded walks d's columns once, stepping every lane per event; see
// InOrderBatch.RunDecoded.
func (b *OoOBatch) RunDecoded(d *trace.Decoded, behav []Behavior) ([]Result, error) {
	for i := range b.st {
		if d.DepBug != b.st[i].depBug {
			return nil, fmt.Errorf("core: decoded trace uses DepBug=%v, lane %d configured with %v", d.DepBug, i, b.st[i].depBug)
		}
	}
	if behav == nil {
		behav = CompileBehaviors(d.Insts)
	}
	st, lanes := b.st, b.lanes
	ids, pcs, mems, tgts := d.IDs, d.PC, d.MemAddr, d.Target
	for s := 0; s < len(ids); s += batchChunk {
		e := min(s+batchChunk, len(ids))
		idsC, pcsC := ids[s:e], pcs[s:e]
		memsC, tgtsC := mems[s:e], tgts[s:e]
		// batchChunk is a multiple of 64, so chunk starts are word-aligned
		// in the taken bitset and each lane pass can shift through whole
		// words instead of re-extracting a bit per event.
		tkC := d.TakenBits[s>>6:]
		for l := range lanes {
			ln, stl := &lanes[l], &st[l]
			var tkWord uint64
			for i := range idsC {
				if i&63 == 0 {
					tkWord = tkC[i>>6]
				}
				ln.stepLane(stl, &behav[idsC[i]], pcsC[i], memsC[i], tgtsC[i], tkWord&1 != 0)
				tkWord >>= 1
			}
		}
	}
	if d.Err != nil {
		return nil, fmt.Errorf("core: %w", d.Err)
	}
	cc := classHistogram(ids, behav)
	out := make([]Result, len(lanes))
	for l := range lanes {
		addCounts(&lanes[l].res, uint64(len(ids)), &cc)
		out[l] = lanes[l].finish()
	}
	return out, nil
}
