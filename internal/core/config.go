// Package core implements the back-end timing models of racesim: an
// in-order core shaped after the Cortex-A53 and an out-of-order core shaped
// after the Cortex-A72, both driven by instruction traces. The models
// follow Sniper's philosophy — detailed cycle accounting over the dynamic
// instruction stream without simulating every structure every cycle — and
// include the contention model the paper adds for ARM cores: functional
// -unit pipes with issue rules, latencies and initiation intervals.
package core

import (
	"fmt"

	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/isa"
)

// LatencyConfig gives the execution latency in cycles for each instruction
// class, plus initiation intervals for the non-pipelined units.
type LatencyConfig struct {
	IntALU int
	IntMul int
	IntDiv int
	FPAdd  int
	FPMul  int
	FPDiv  int
	FPCvt  int
	SIMD   int

	// Initiation intervals: cycles between successive issues to the same
	// unit (1 = fully pipelined). Divide units are typically unpipelined.
	IntDivII int
	FPDivII  int
}

// Validate reports configuration errors.
func (c LatencyConfig) Validate() error {
	for _, v := range []struct {
		name string
		val  int
	}{
		{"IntALU", c.IntALU}, {"IntMul", c.IntMul}, {"IntDiv", c.IntDiv},
		{"FPAdd", c.FPAdd}, {"FPMul", c.FPMul}, {"FPDiv", c.FPDiv},
		{"FPCvt", c.FPCvt}, {"SIMD", c.SIMD},
		{"IntDivII", c.IntDivII}, {"FPDivII", c.FPDivII},
	} {
		if v.val <= 0 {
			return fmt.Errorf("core: latency %s = %d must be positive", v.name, v.val)
		}
	}
	return nil
}

// Latency returns the execution latency for a class (memory classes return
// 0: their latency comes from the hierarchy).
func (c LatencyConfig) Latency(cls isa.Class) int {
	switch cls {
	case isa.ClassIntAlu:
		return c.IntALU
	case isa.ClassIntMul:
		return c.IntMul
	case isa.ClassIntDiv:
		return c.IntDiv
	case isa.ClassFPAdd:
		return c.FPAdd
	case isa.ClassFPMul:
		return c.FPMul
	case isa.ClassFPDiv:
		return c.FPDiv
	case isa.ClassFPCvt:
		return c.FPCvt
	case isa.ClassSIMD:
		return c.SIMD
	case isa.ClassBranch, isa.ClassBranchInd, isa.ClassCall, isa.ClassRet:
		return 1
	default:
		return 1
	}
}

// PipesConfig sets how many execution pipes serve each class group — the
// contention model's structural resources.
type PipesConfig struct {
	IntALU int // simple integer pipes
	IntMul int // multiply pipes
	IntDiv int // divide units
	FP     int // FP/SIMD pipes (add/mul/cvt/simd)
	FPDiv  int // FP divide units
	Load   int // load ports
	Store  int // store ports
	Branch int // branch resolution pipes
}

// Validate reports configuration errors.
func (c PipesConfig) Validate() error {
	for _, v := range []struct {
		name string
		val  int
	}{
		{"IntALU", c.IntALU}, {"IntMul", c.IntMul}, {"IntDiv", c.IntDiv},
		{"FP", c.FP}, {"FPDiv", c.FPDiv},
		{"Load", c.Load}, {"Store", c.Store}, {"Branch", c.Branch},
	} {
		if v.val <= 0 || v.val > 8 {
			return fmt.Errorf("core: pipes %s = %d out of [1,8]", v.name, v.val)
		}
	}
	return nil
}

// FrontEndConfig describes fetch and branch-redirect behaviour.
type FrontEndConfig struct {
	// MispredictPenalty is the full pipeline restart cost in cycles
	// (roughly the front-end depth).
	MispredictPenalty int
	// BTBMissPenalty is the shorter refetch bubble when direction was
	// right but the target was not in the BTB.
	BTBMissPenalty int
	// FetchWidth is instructions fetched per cycle (bounds issue).
	FetchWidth int
}

// Validate reports configuration errors.
func (c FrontEndConfig) Validate() error {
	if c.MispredictPenalty < 1 || c.MispredictPenalty > 64 {
		return fmt.Errorf("core: MispredictPenalty = %d out of [1,64]", c.MispredictPenalty)
	}
	if c.BTBMissPenalty < 0 || c.BTBMissPenalty > 32 {
		return fmt.Errorf("core: BTBMissPenalty = %d out of [0,32]", c.BTBMissPenalty)
	}
	if c.FetchWidth < 1 || c.FetchWidth > 16 {
		return fmt.Errorf("core: FetchWidth = %d out of [1,16]", c.FetchWidth)
	}
	return nil
}

// InOrderConfig configures the in-order core model.
type InOrderConfig struct {
	// Width is the issue width (the A53 is dual-issue).
	Width int
	// DualIssueLoadStore permits a memory op to pair with an ALU op in
	// the same cycle; when false, memory ops issue alone.
	DualIssueLoadStore bool
	// MaxMemPerCycle bounds loads+stores issued per cycle.
	MaxMemPerCycle int
	// MaxBranchPerCycle bounds branches issued per cycle.
	MaxBranchPerCycle int
	// MSHRs bounds outstanding data-cache misses (hit-under-miss depth).
	MSHRs int
	// StoreBufferEntries is the store buffer depth; a full buffer stalls
	// stores.
	StoreBufferEntries int

	Lat      LatencyConfig
	Pipes    PipesConfig
	FrontEnd FrontEndConfig
	Branch   branch.Config
	Mem      cache.HierarchyConfig

	// DecoderDepBug enables the reproduced decoder-library dependency bug
	// on the timing path (Sec. IV-B).
	DecoderDepBug bool
}

// Validate reports configuration errors.
func (c InOrderConfig) Validate() error {
	if c.Width < 1 || c.Width > 4 {
		return fmt.Errorf("core: in-order width = %d out of [1,4]", c.Width)
	}
	if c.MaxMemPerCycle < 1 || c.MaxMemPerCycle > c.Width {
		return fmt.Errorf("core: MaxMemPerCycle = %d out of [1,width]", c.MaxMemPerCycle)
	}
	if c.MaxBranchPerCycle < 1 || c.MaxBranchPerCycle > c.Width {
		return fmt.Errorf("core: MaxBranchPerCycle = %d out of [1,width]", c.MaxBranchPerCycle)
	}
	if c.MSHRs < 1 || c.MSHRs > 32 {
		return fmt.Errorf("core: MSHRs = %d out of [1,32]", c.MSHRs)
	}
	if c.StoreBufferEntries < 1 || c.StoreBufferEntries > 64 {
		return fmt.Errorf("core: StoreBufferEntries = %d out of [1,64]", c.StoreBufferEntries)
	}
	if err := c.Lat.Validate(); err != nil {
		return err
	}
	if err := c.Pipes.Validate(); err != nil {
		return err
	}
	if err := c.FrontEnd.Validate(); err != nil {
		return err
	}
	if err := c.Branch.Validate(); err != nil {
		return err
	}
	return c.Mem.Validate()
}

// OoOConfig configures the out-of-order core model.
type OoOConfig struct {
	// DispatchWidth is instructions renamed/dispatched per cycle (the A72
	// is 3-wide).
	DispatchWidth int
	// RetireWidth is instructions retired per cycle.
	RetireWidth int
	// ROBEntries is the reorder buffer capacity.
	ROBEntries int
	// IQEntries is the unified issue-queue capacity (dispatch stalls when
	// full of non-issued instructions).
	IQEntries int
	// LQEntries / SQEntries are load/store queue capacities.
	LQEntries int
	SQEntries int
	// MSHRs bounds overlapped data-cache misses (memory-level
	// parallelism).
	MSHRs int

	Lat      LatencyConfig
	Pipes    PipesConfig
	FrontEnd FrontEndConfig
	Branch   branch.Config
	Mem      cache.HierarchyConfig

	// DecoderDepBug enables the reproduced decoder dependency bug.
	DecoderDepBug bool
}

// Validate reports configuration errors.
func (c OoOConfig) Validate() error {
	if c.DispatchWidth < 1 || c.DispatchWidth > 8 {
		return fmt.Errorf("core: DispatchWidth = %d out of [1,8]", c.DispatchWidth)
	}
	if c.RetireWidth < 1 || c.RetireWidth > 8 {
		return fmt.Errorf("core: RetireWidth = %d out of [1,8]", c.RetireWidth)
	}
	if c.ROBEntries < 8 || c.ROBEntries > 512 {
		return fmt.Errorf("core: ROBEntries = %d out of [8,512]", c.ROBEntries)
	}
	if c.IQEntries < 4 || c.IQEntries > 256 {
		return fmt.Errorf("core: IQEntries = %d out of [4,256]", c.IQEntries)
	}
	if c.LQEntries < 4 || c.LQEntries > 128 {
		return fmt.Errorf("core: LQEntries = %d out of [4,128]", c.LQEntries)
	}
	if c.SQEntries < 4 || c.SQEntries > 128 {
		return fmt.Errorf("core: SQEntries = %d out of [4,128]", c.SQEntries)
	}
	if c.MSHRs < 1 || c.MSHRs > 32 {
		return fmt.Errorf("core: MSHRs = %d out of [1,32]", c.MSHRs)
	}
	if err := c.Lat.Validate(); err != nil {
		return err
	}
	if err := c.Pipes.Validate(); err != nil {
		return err
	}
	if err := c.FrontEnd.Validate(); err != nil {
		return err
	}
	if err := c.Branch.Validate(); err != nil {
		return err
	}
	return c.Mem.Validate()
}
