package core

import "racesim/internal/isa"

// stepKind is the step kernel's dispatch, resolved once per unique static
// decode instead of once per dynamic instruction.
type stepKind uint8

const (
	stepOther stepKind = iota
	stepLoad
	stepStore
	stepBranch
)

// Behavior is the per-static-instruction recipe the replay kernels
// consume: the decoder's output reduced to exactly the fields the timing
// models read, with the class tests (load/store/branch dispatch) folded
// into Kind ahead of the hot loop. A Behavior is config-invariant — it
// depends only on the instruction word and the decoder variant — so one
// table compiled from a trace's unique static decodes is shared by every
// lane of a batched replay.
type Behavior struct {
	Cls  isa.Class
	Op   isa.Op
	kind stepKind
	nSrc uint8
	nDst uint8
	src  [3]isa.Reg
	dst  [2]isa.Reg
}

// behaviorOf compiles one static decode.
func behaviorOf(in *isa.Inst) Behavior {
	b := Behavior{Cls: in.Cls, Op: in.Op, nSrc: in.NSrc, nDst: in.NDst, src: in.Src, dst: in.Dst}
	switch {
	case in.Cls == isa.ClassLoad:
		b.kind = stepLoad
	case in.Cls == isa.ClassStore:
		b.kind = stepStore
	case in.Cls.IsBranch():
		b.kind = stepBranch
	}
	return b
}

// CompileBehaviors compiles the behavior table for a decoded trace's
// unique-static-decode table (trace.Decoded.Insts): entry i is the recipe
// for static id i. The table is immutable and safe to share across
// concurrent replays; sim memoizes it alongside the decode.
func CompileBehaviors(insts []isa.Inst) []Behavior {
	out := make([]Behavior, len(insts))
	for i := range insts {
		out[i] = behaviorOf(&insts[i])
	}
	return out
}

// latencyTable expands LatencyConfig into a by-class array so the step
// kernel indexes it instead of re-running the class switch (which copied
// the config by value) per dynamic instruction.
func latencyTable(lat LatencyConfig) [isa.NumClasses]uint64 {
	var t [isa.NumClasses]uint64
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		t[c] = uint64(lat.Latency(c))
	}
	return t
}

// classHistogram counts the dynamic instructions per class of a decoded
// walk. The counts depend only on the trace, never on the lane, so replay
// paths add them to Results in bulk — every lane of a batch gets the same
// histogram — instead of counting inside the step kernel.
func classHistogram(ids []uint32, behav []Behavior) [isa.NumClasses]uint64 {
	var cc [isa.NumClasses]uint64
	for _, id := range ids {
		cc[behav[id].Cls]++
	}
	return cc
}

// addCounts credits n dynamic instructions with class histogram cc to res.
func addCounts(res *Result, n uint64, cc *[isa.NumClasses]uint64) {
	res.Instructions += n
	for c := range cc {
		res.ClassCounts[c] += cc[c]
	}
}
