package core

import (
	"fmt"
	"math/bits"

	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/isa"
	"racesim/internal/trace"
)

// InOrder is the in-order core timing model (Cortex-A53 class): dual-issue
// with pairing rules, a register scoreboard, blocking-limited hit-under-miss
// data accesses, a draining store buffer, and a front-end redirected by the
// branch unit.
type InOrder struct {
	cfg  InOrderConfig
	dc   *decodeCache
	hier *cache.Hierarchy
	bu   *branch.Unit
	cont *contention

	regReady [isa.NumRegs]uint64
	cycle    uint64
	issued   int
	memOps   int
	branches int

	fetchAvail    uint64
	lastFetchLine uint64
	fetchLineBits uint

	mshr   seqRing // outstanding data-cache misses
	sb     seqRing // store buffer occupancy
	sbLast uint64  // last drain end (drains are serialized)

	endCycle uint64
	res      Result
}

// seqRing models a capacity-limited structure whose entries free at known
// times: entry n cannot be allocated before entry n-cap has freed.
type seqRing struct {
	done  []uint64
	count uint64
}

func newSeqRing(capacity int) seqRing { return seqRing{done: make([]uint64, capacity)} }

// wait returns how long an allocation at cycle t must stall for a slot.
func (r *seqRing) wait(t uint64) uint64 {
	if r.count < uint64(len(r.done)) {
		return 0
	}
	if prev := r.done[r.count%uint64(len(r.done))]; prev > t {
		return prev - t
	}
	return 0
}

// note records that the next allocated entry frees at done.
func (r *seqRing) note(done uint64) {
	r.done[r.count%uint64(len(r.done))] = done
	r.count++
}

// NewInOrder builds the model; cfg must be valid.
func NewInOrder(cfg InOrderConfig) (*InOrder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	bu, err := branch.NewUnit(cfg.Branch)
	if err != nil {
		return nil, err
	}
	return &InOrder{
		cfg:           cfg,
		dc:            newDecodeCache(cfg.DecoderDepBug),
		hier:          hier,
		bu:            bu,
		cont:          newContention(cfg.Pipes, cfg.Lat),
		mshr:          newSeqRing(cfg.MSHRs),
		sb:            newSeqRing(cfg.StoreBufferEntries),
		fetchLineBits: uint(bits.TrailingZeros(uint(cfg.Mem.L1I.LineSize))),
		lastFetchLine: ^uint64(0),
	}, nil
}

func (m *InOrder) advanceCycle(to uint64) {
	if to > m.cycle {
		m.cycle = to
		m.issued = 0
		m.memOps = 0
		m.branches = 0
	}
}

// slotFor finds the earliest cycle >= t with a free issue slot compatible
// with the instruction's class, honouring width and pairing rules, and
// consumes the slot.
func (m *InOrder) slotFor(cls isa.Class, t uint64) uint64 {
	isMem := cls.IsMem()
	isBr := cls.IsBranch()
	for {
		m.advanceCycle(t)
		switch {
		case m.issued >= m.cfg.Width:
			t = m.cycle + 1
			continue
		case isMem && m.memOps >= m.cfg.MaxMemPerCycle:
			t = m.cycle + 1
			continue
		case isMem && !m.cfg.DualIssueLoadStore && m.issued > 0:
			t = m.cycle + 1
			continue
		case isBr && m.branches >= m.cfg.MaxBranchPerCycle:
			t = m.cycle + 1
			continue
		}
		// Structural hazard on the functional unit.
		if at := m.cont.peek(cls, m.cycle); at > m.cycle {
			m.cont.stalls += at - m.cycle
			t = at
			continue
		}
		break
	}
	m.cont.reserve(cls, m.cycle)
	m.issued++
	if isMem {
		m.memOps++
		if !m.cfg.DualIssueLoadStore {
			m.issued = m.cfg.Width // memory op closes the issue group
		}
	}
	if isBr {
		m.branches++
	}
	return m.cycle
}

func (m *InOrder) retire(at uint64) {
	if at > m.endCycle {
		m.endCycle = at
	}
}

// Run implements Model.
func (m *InOrder) Run(src trace.Source) (Result, error) {
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		in, err := m.dc.decode(ev)
		if err != nil {
			return Result{}, fmt.Errorf("core: %w", err)
		}
		m.step(&in, ev.PC, ev.MemAddr, ev.Target, ev.Taken)
	}
	return m.finish(), nil
}

// RunDecoded implements Model.
func (m *InOrder) RunDecoded(d *trace.Decoded) (Result, error) {
	if d.DepBug != m.cfg.DecoderDepBug {
		return Result{}, fmt.Errorf("core: decoded trace uses DepBug=%v, model configured with %v", d.DepBug, m.cfg.DecoderDepBug)
	}
	insts, pcs, mems, tgts := d.Insts, d.PC, d.MemAddr, d.Target
	for i, id := range d.IDs {
		m.step(&insts[id], pcs[i], mems[i], tgts[i], d.Taken(i))
	}
	if d.Err != nil {
		return Result{}, fmt.Errorf("core: %w", d.Err)
	}
	return m.finish(), nil
}

func (m *InOrder) finish() Result {
	m.res.Cycles = m.endCycle
	if m.res.Cycles == 0 && m.res.Instructions > 0 {
		m.res.Cycles = m.res.Instructions
	}
	m.res.Branch = m.bu.Stats()
	m.res.Mem = m.hier.Stats()
	m.res.StallStruct += m.cont.stalls
	return m.res
}

// step advances the model by one dynamic instruction: st is the shared
// static decode (never mutated), the remaining arguments are the event's
// dynamic fields.
func (m *InOrder) step(st *isa.Inst, pc, memAddr, target uint64, taken bool) {
	m.res.Instructions++
	m.res.ClassCounts[st.Cls]++

	earliest := m.fetchAvail
	if m.cycle > earliest {
		earliest = m.cycle
	}

	// Instruction fetch: access the I-cache on each new line.
	line := pc >> m.fetchLineBits
	if line != m.lastFetchLine {
		fres := m.hier.Fetch(earliest, pc)
		base := uint64(m.cfg.Mem.L1I.HitLatency)
		if m.cfg.Mem.L1I.TagDataSerial {
			base++
		}
		if fres.Latency > base {
			stall := fres.Latency - base
			m.res.StallFrontEnd += stall
			earliest += stall
			m.fetchAvail = earliest
		}
		m.lastFetchLine = line
	}

	// Operand readiness (scoreboard).
	ready := earliest
	for _, r := range st.Srcs() {
		if m.regReady[r] > ready {
			ready = m.regReady[r]
		}
	}
	if ready > earliest {
		m.res.StallData += ready - earliest
	}

	issueAt := m.slotFor(st.Cls, ready)

	switch {
	case st.Cls == isa.ClassLoad:
		if !m.hier.L1D().Probe(memAddr) {
			// A miss needs an MSHR; a full file stalls the pipeline
			// (hit-under-miss is allowed, miss-under-full is not).
			if d := m.mshr.wait(issueAt); d > 0 {
				m.res.StallStruct += d
				issueAt += d
				m.advanceCycle(issueAt)
			}
		}
		res := m.hier.Load(issueAt, pc, memAddr)
		done := issueAt + res.Latency
		if res.Level > 1 {
			m.mshr.note(done)
		}
		for _, r := range st.Dsts() {
			m.regReady[r] = done
		}
		m.retire(done)

	case st.Cls == isa.ClassStore:
		// A full store buffer stalls the pipeline until a slot drains.
		if d := m.sb.wait(issueAt); d > 0 {
			m.res.StallStruct += d
			issueAt += d
			m.advanceCycle(issueAt)
		}
		start := issueAt
		if m.sbLast > start {
			start = m.sbLast
		}
		res := m.hier.Store(start, pc, memAddr)
		drain := start + res.Latency
		m.sbLast = drain
		m.sb.note(drain)
		// The store retires quickly; the drain happens in the background.
		m.retire(issueAt + 1)

	case st.Cls.IsBranch():
		resolve := issueAt + uint64(m.cfg.Lat.Latency(st.Cls))
		out := m.bu.AccessOutcome(st.Cls, st.Op, pc, target, taken)
		if out.Mispredict {
			pen := uint64(m.cfg.FrontEnd.MispredictPenalty)
			m.fetchAvail = resolve + pen
			m.res.StallFrontEnd += pen
		} else if out.TargetMiss {
			pen := uint64(m.cfg.FrontEnd.BTBMissPenalty)
			if m.fetchAvail < issueAt+pen {
				m.fetchAvail = issueAt + pen
			}
			m.res.StallFrontEnd += pen
		}
		for _, r := range st.Dsts() { // BL writes the link register
			m.regReady[r] = resolve
		}
		m.retire(resolve)

	default:
		done := issueAt + uint64(m.cfg.Lat.Latency(st.Cls))
		for _, r := range st.Dsts() {
			m.regReady[r] = done
		}
		m.retire(done)
	}
}
