package core

import (
	"fmt"
	"math/bits"

	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/isa"
	"racesim/internal/trace"
)

// inOrderStatic is the config-derived state of the in-order model that is
// never written during replay: issue rules, penalties and the by-class
// latency table. One value serves any number of replays of its config;
// lanes of a batch each carry their own (configs differ per lane) while
// sharing the decoded columns and behavior table.
type inOrderStatic struct {
	width       int
	dualIssueLS bool
	maxMem      int
	maxBr       int

	fetchLineBits uint
	fetchBase     uint64 // L1I hit latency incl. tag/data serialization
	mispredictPen uint64
	btbMissPen    uint64

	lat    [isa.NumClasses]uint64
	depBug bool
}

func newInOrderStatic(cfg InOrderConfig) inOrderStatic {
	base := uint64(cfg.Mem.L1I.HitLatency)
	if cfg.Mem.L1I.TagDataSerial {
		base++
	}
	return inOrderStatic{
		width:         cfg.Width,
		dualIssueLS:   cfg.DualIssueLoadStore,
		maxMem:        cfg.MaxMemPerCycle,
		maxBr:         cfg.MaxBranchPerCycle,
		fetchLineBits: uint(bits.TrailingZeros(uint(cfg.Mem.L1I.LineSize))),
		fetchBase:     base,
		mispredictPen: uint64(cfg.FrontEnd.MispredictPenalty),
		btbMissPen:    uint64(cfg.FrontEnd.BTBMissPenalty),
		lat:           latencyTable(cfg.Lat),
		depBug:        cfg.DecoderDepBug,
	}
}

// inOrderLane is the per-config mutable state of one in-order replay: the
// scoreboard, pipeline occupancy, cache hierarchy, branch unit and queue
// rings. A batch holds a dense slice of lanes and steps them in lockstep.
type inOrderLane struct {
	hier *cache.Hierarchy
	bu   *branch.Unit
	cont contention

	regReady [isa.NumRegs]uint64
	cycle    uint64
	issued   int
	memOps   int
	branches int

	fetchAvail    uint64
	lastFetchLine uint64

	mshr   seqRing // outstanding data-cache misses
	sb     seqRing // store buffer occupancy
	sbLast uint64  // last drain end (drains are serialized)

	endCycle uint64
	res      Result
}

func newInOrderLane(cfg InOrderConfig) (inOrderLane, error) {
	hier, err := cache.NewHierarchy(cfg.Mem)
	if err != nil {
		return inOrderLane{}, err
	}
	bu, err := branch.NewUnit(cfg.Branch)
	if err != nil {
		return inOrderLane{}, err
	}
	return inOrderLane{
		hier:          hier,
		bu:            bu,
		cont:          newContention(cfg.Pipes, cfg.Lat),
		mshr:          newSeqRing(cfg.MSHRs),
		sb:            newSeqRing(cfg.StoreBufferEntries),
		lastFetchLine: ^uint64(0),
	}, nil
}

// InOrder is the in-order core timing model (Cortex-A53 class): dual-issue
// with pairing rules, a register scoreboard, blocking-limited hit-under-miss
// data accesses, a draining store buffer, and a front-end redirected by the
// branch unit.
type InOrder struct {
	st   inOrderStatic
	lane inOrderLane
	dc   *decodeCache
}

// seqRing models a capacity-limited structure whose entries free at known
// times: entry n cannot be allocated before entry n-cap has freed. idx is
// the next slot and wraps explicitly (capacities are rarely powers of two,
// so a modulo here would cost a divide per allocation).
type seqRing struct {
	done []uint64
	idx  int
	full bool // count of allocations has reached capacity
}

func newSeqRing(capacity int) seqRing { return seqRing{done: make([]uint64, capacity)} }

// wait returns how long an allocation at cycle t must stall for a slot.
func (r *seqRing) wait(t uint64) uint64 {
	if !r.full {
		return 0
	}
	if prev := r.done[r.idx]; prev > t {
		return prev - t
	}
	return 0
}

// note records that the next allocated entry frees at done.
func (r *seqRing) note(done uint64) {
	r.done[r.idx] = done
	r.idx++
	if r.idx == len(r.done) {
		r.idx = 0
		r.full = true
	}
}

// NewInOrder builds the model; cfg must be valid.
func NewInOrder(cfg InOrderConfig) (*InOrder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lane, err := newInOrderLane(cfg)
	if err != nil {
		return nil, err
	}
	return &InOrder{
		st:   newInOrderStatic(cfg),
		lane: lane,
		dc:   newDecodeCache(cfg.DecoderDepBug),
	}, nil
}

func (ln *inOrderLane) advanceCycle(to uint64) {
	if to > ln.cycle {
		ln.cycle = to
		ln.issued = 0
		ln.memOps = 0
		ln.branches = 0
	}
}

// slotFor finds the earliest cycle >= t with a free issue slot compatible
// with the instruction's class, honouring width and pairing rules, and
// consumes the slot.
func (ln *inOrderLane) slotFor(st *inOrderStatic, b *Behavior, t uint64) uint64 {
	isMem := b.kind == stepLoad || b.kind == stepStore
	isBr := b.kind == stepBranch
	for {
		ln.advanceCycle(t)
		switch {
		case ln.issued >= st.width:
			t = ln.cycle + 1
			continue
		case isMem && ln.memOps >= st.maxMem:
			t = ln.cycle + 1
			continue
		case isMem && !st.dualIssueLS && ln.issued > 0:
			t = ln.cycle + 1
			continue
		case isBr && ln.branches >= st.maxBr:
			t = ln.cycle + 1
			continue
		}
		// Structural hazard on the functional unit: find the pipe that
		// frees earliest and, if it is already free, book it in place
		// (a separate reserve would rescan the same pipe group).
		if pipes := ln.cont.pipes[b.Cls]; len(pipes) != 0 {
			bp := bestPipe(pipes)
			if free := pipes[bp]; free > ln.cycle {
				ln.cont.stalls += free - ln.cycle
				t = free
				continue
			}
			pipes[bp] = ln.cycle + ln.cont.ii[b.Cls]
		}
		break
	}
	ln.issued++
	if isMem {
		ln.memOps++
		if !st.dualIssueLS {
			ln.issued = st.width // memory op closes the issue group
		}
	}
	if isBr {
		ln.branches++
	}
	return ln.cycle
}

func (ln *inOrderLane) retire(at uint64) {
	if at > ln.endCycle {
		ln.endCycle = at
	}
}

// Run implements Model.
func (m *InOrder) Run(src trace.Source) (Result, error) {
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		b, err := m.dc.decode(ev)
		if err != nil {
			return Result{}, fmt.Errorf("core: %w", err)
		}
		m.lane.res.Instructions++
		m.lane.res.ClassCounts[b.Cls]++
		m.lane.stepLane(&m.st, b, ev.PC, ev.MemAddr, ev.Target, ev.Taken)
	}
	return m.lane.finish(), nil
}

// RunDecoded implements Model.
func (m *InOrder) RunDecoded(d *trace.Decoded) (Result, error) {
	return m.RunDecodedBehaviors(d, nil)
}

// RunDecodedBehaviors is RunDecoded with a pre-compiled behavior table for
// d.Insts (nil: compiled here). Batch callers pass the memoized table so a
// single-lane run shares the batch path's compilation work.
func (m *InOrder) RunDecodedBehaviors(d *trace.Decoded, behav []Behavior) (Result, error) {
	if d.DepBug != m.st.depBug {
		return Result{}, fmt.Errorf("core: decoded trace uses DepBug=%v, model configured with %v", d.DepBug, m.st.depBug)
	}
	if behav == nil {
		behav = CompileBehaviors(d.Insts)
	}
	pcs, mems, tgts := d.PC, d.MemAddr, d.Target
	for i, id := range d.IDs {
		m.lane.stepLane(&m.st, &behav[id], pcs[i], mems[i], tgts[i], d.Taken(i))
	}
	if d.Err != nil {
		return Result{}, fmt.Errorf("core: %w", d.Err)
	}
	cc := classHistogram(d.IDs, behav)
	addCounts(&m.lane.res, uint64(len(d.IDs)), &cc)
	return m.lane.finish(), nil
}

func (ln *inOrderLane) finish() Result {
	ln.res.Cycles = ln.endCycle
	if ln.res.Cycles == 0 && ln.res.Instructions > 0 {
		ln.res.Cycles = ln.res.Instructions
	}
	ln.res.Branch = ln.bu.Stats()
	ln.res.Mem = ln.hier.Stats()
	ln.res.StallStruct += ln.cont.stalls
	return ln.res
}

// stepLane advances one lane by one dynamic instruction: st and b are the
// lane's config-derived static state and the instruction's shared behavior
// (both never mutated), the remaining arguments are the event's dynamic
// fields. It is the single step kernel: sequential replay, the per-event
// oracle and the batched walk all funnel through it, so their results are
// identical by construction. Instruction and class counts are NOT updated
// here — they are lane-invariant over a trace, so callers add them in bulk
// (see countEvents) instead of paying two read-modify-writes per step.
func (ln *inOrderLane) stepLane(st *inOrderStatic, b *Behavior, pc, memAddr, target uint64, taken bool) {
	earliest := ln.fetchAvail
	if ln.cycle > earliest {
		earliest = ln.cycle
	}

	// Instruction fetch: access the I-cache on each new line.
	line := pc >> st.fetchLineBits
	if line != ln.lastFetchLine {
		fres := ln.hier.Fetch(earliest, pc)
		if fres.Latency > st.fetchBase {
			stall := fres.Latency - st.fetchBase
			ln.res.StallFrontEnd += stall
			earliest += stall
			ln.fetchAvail = earliest
		}
		ln.lastFetchLine = line
	}

	// Operand readiness (scoreboard).
	ready := earliest
	for i := uint8(0); i < b.nSrc; i++ {
		if r := ln.regReady[b.src[i]]; r > ready {
			ready = r
		}
	}
	if ready > earliest {
		ln.res.StallData += ready - earliest
	}

	issueAt := ln.slotFor(st, b, ready)

	switch b.kind {
	case stepLoad:
		if !ln.hier.L1D().Probe(memAddr) {
			// A miss needs an MSHR; a full file stalls the pipeline
			// (hit-under-miss is allowed, miss-under-full is not).
			if d := ln.mshr.wait(issueAt); d > 0 {
				ln.res.StallStruct += d
				issueAt += d
				ln.advanceCycle(issueAt)
			}
		}
		res := ln.hier.Load(issueAt, pc, memAddr)
		done := issueAt + res.Latency
		if res.Level > 1 {
			ln.mshr.note(done)
		}
		for i := uint8(0); i < b.nDst; i++ {
			ln.regReady[b.dst[i]] = done
		}
		ln.retire(done)

	case stepStore:
		// A full store buffer stalls the pipeline until a slot drains.
		if d := ln.sb.wait(issueAt); d > 0 {
			ln.res.StallStruct += d
			issueAt += d
			ln.advanceCycle(issueAt)
		}
		start := issueAt
		if ln.sbLast > start {
			start = ln.sbLast
		}
		res := ln.hier.Store(start, pc, memAddr)
		drain := start + res.Latency
		ln.sbLast = drain
		ln.sb.note(drain)
		// The store retires quickly; the drain happens in the background.
		ln.retire(issueAt + 1)

	case stepBranch:
		resolve := issueAt + st.lat[b.Cls]
		out := ln.bu.AccessOutcome(b.Cls, b.Op, pc, target, taken)
		if out.Mispredict {
			ln.fetchAvail = resolve + st.mispredictPen
			ln.res.StallFrontEnd += st.mispredictPen
		} else if out.TargetMiss {
			if ln.fetchAvail < issueAt+st.btbMissPen {
				ln.fetchAvail = issueAt + st.btbMissPen
			}
			ln.res.StallFrontEnd += st.btbMissPen
		}
		for i := uint8(0); i < b.nDst; i++ { // BL writes the link register
			ln.regReady[b.dst[i]] = resolve
		}
		ln.retire(resolve)

	default:
		done := issueAt + st.lat[b.Cls]
		for i := uint8(0); i < b.nDst; i++ {
			ln.regReady[b.dst[i]] = done
		}
		ln.retire(done)
	}
}
