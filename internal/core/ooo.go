package core

import (
	"fmt"
	"math/bits"

	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/isa"
	"racesim/internal/trace"
)

// OoO is the out-of-order core timing model (Cortex-A72 class): wide
// dispatch into a reorder buffer, dataflow-limited issue over the pipe
// contention model, bounded issue queue, load/store queues, MSHR-limited
// memory-level parallelism, and in-order retirement. It is a one-pass
// window model in the spirit of Sniper's instruction-window-centric core.
type OoO struct {
	cfg  OoOConfig
	dc   *decodeCache
	hier *cache.Hierarchy
	bu   *branch.Unit
	cont *contention

	regReady [isa.NumRegs]uint64

	dispatchCycle uint64
	dispatched    int

	fetchAvail    uint64
	lastFetchLine uint64
	fetchLineBits uint

	rob    []uint64 // retire cycle by sequence number mod ROBEntries
	iq     []uint64 // issue cycle by sequence number mod IQEntries
	lq     []uint64
	sq     []uint64
	seq    uint64 // instruction sequence number
	loads  uint64
	stores uint64

	lastRetire   uint64
	retiredInCyc int

	mshr   seqRing
	sbLast uint64

	endCycle uint64
	res      Result
}

// NewOoO builds the model; cfg must be valid.
func NewOoO(cfg OoOConfig) (*OoO, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	bu, err := branch.NewUnit(cfg.Branch)
	if err != nil {
		return nil, err
	}
	return &OoO{
		cfg:           cfg,
		dc:            newDecodeCache(cfg.DecoderDepBug),
		hier:          hier,
		bu:            bu,
		cont:          newContention(cfg.Pipes, cfg.Lat),
		rob:           make([]uint64, cfg.ROBEntries),
		iq:            make([]uint64, cfg.IQEntries),
		lq:            make([]uint64, cfg.LQEntries),
		sq:            make([]uint64, cfg.SQEntries),
		mshr:          newSeqRing(cfg.MSHRs),
		fetchLineBits: uint(bits.TrailingZeros(uint(cfg.Mem.L1I.LineSize))),
		lastFetchLine: ^uint64(0),
	}, nil
}

// Run implements Model.
func (m *OoO) Run(src trace.Source) (Result, error) {
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		in, err := m.dc.decode(ev)
		if err != nil {
			return Result{}, fmt.Errorf("core: %w", err)
		}
		m.step(&in, ev.PC, ev.MemAddr, ev.Target, ev.Taken)
	}
	return m.finish(), nil
}

// RunDecoded implements Model.
func (m *OoO) RunDecoded(d *trace.Decoded) (Result, error) {
	if d.DepBug != m.cfg.DecoderDepBug {
		return Result{}, fmt.Errorf("core: decoded trace uses DepBug=%v, model configured with %v", d.DepBug, m.cfg.DecoderDepBug)
	}
	insts, pcs, mems, tgts := d.Insts, d.PC, d.MemAddr, d.Target
	for i, id := range d.IDs {
		m.step(&insts[id], pcs[i], mems[i], tgts[i], d.Taken(i))
	}
	if d.Err != nil {
		return Result{}, fmt.Errorf("core: %w", d.Err)
	}
	return m.finish(), nil
}

func (m *OoO) finish() Result {
	m.res.Cycles = m.endCycle
	if m.res.Cycles == 0 && m.res.Instructions > 0 {
		m.res.Cycles = m.res.Instructions
	}
	m.res.Branch = m.bu.Stats()
	m.res.Mem = m.hier.Stats()
	m.res.StallStruct += m.cont.stalls
	return m.res
}

// retireSlot assigns an in-order retirement cycle with RetireWidth slots
// per cycle.
func (m *OoO) retireSlot(complete uint64) uint64 {
	t := complete + 1
	if t < m.lastRetire {
		t = m.lastRetire
	}
	if t == m.lastRetire && m.retiredInCyc >= m.cfg.RetireWidth {
		t++
	}
	if t > m.lastRetire {
		m.lastRetire = t
		m.retiredInCyc = 0
	}
	m.retiredInCyc++
	if t > m.endCycle {
		m.endCycle = t
	}
	return t
}

// step advances the model by one dynamic instruction: st is the shared
// static decode (never mutated), the remaining arguments are the event's
// dynamic fields.
func (m *OoO) step(st *isa.Inst, pc, memAddr, target uint64, taken bool) {
	m.res.Instructions++
	m.res.ClassCounts[st.Cls]++
	seq := m.seq
	m.seq++

	// Window constraints: the ROB slot of (seq - ROBEntries) must have
	// retired; the IQ slot of (seq - IQEntries) must have issued.
	earliest := m.fetchAvail
	if r := m.rob[seq%uint64(len(m.rob))]; seq >= uint64(len(m.rob)) && r > earliest {
		m.res.StallStruct += r - earliest
		earliest = r
	}
	if q := m.iq[seq%uint64(len(m.iq))]; seq >= uint64(len(m.iq)) && q > earliest {
		m.res.StallStruct += q - earliest
		earliest = q
	}
	if st.Cls == isa.ClassLoad {
		if l := m.lq[m.loads%uint64(len(m.lq))]; m.loads >= uint64(len(m.lq)) && l > earliest {
			earliest = l
		}
	}
	if st.Cls == isa.ClassStore {
		if s := m.sq[m.stores%uint64(len(m.sq))]; m.stores >= uint64(len(m.sq)) && s > earliest {
			earliest = s
		}
	}

	// Instruction fetch.
	line := pc >> m.fetchLineBits
	if line != m.lastFetchLine {
		fres := m.hier.Fetch(earliest, pc)
		base := uint64(m.cfg.Mem.L1I.HitLatency)
		if m.cfg.Mem.L1I.TagDataSerial {
			base++
		}
		if fres.Latency > base {
			stall := fres.Latency - base
			m.res.StallFrontEnd += stall
			earliest += stall
			if earliest > m.fetchAvail {
				m.fetchAvail = earliest
			}
		}
		m.lastFetchLine = line
	}

	// Dispatch slot.
	if earliest > m.dispatchCycle {
		m.dispatchCycle = earliest
		m.dispatched = 0
	}
	if m.dispatched >= m.cfg.DispatchWidth {
		m.dispatchCycle++
		m.dispatched = 0
	}
	dispatchAt := m.dispatchCycle
	m.dispatched++

	// Dataflow: operands.
	ready := dispatchAt + 1 // one cycle from rename to earliest issue
	for _, r := range st.Srcs() {
		if m.regReady[r] > ready {
			ready = m.regReady[r]
		}
	}
	if ready > dispatchAt+1 {
		m.res.StallData += ready - dispatchAt - 1
	}

	issueAt := m.cont.issue(st.Cls, ready)
	m.iq[seq%uint64(len(m.iq))] = issueAt

	var complete uint64
	switch {
	case st.Cls == isa.ClassLoad:
		if !m.hier.L1D().Probe(memAddr) {
			// Misses need an MSHR: issue waits for a free one, which
			// bounds memory-level parallelism.
			if d := m.mshr.wait(issueAt); d > 0 {
				m.res.StallStruct += d
				issueAt += d
			}
		}
		res := m.hier.Load(issueAt, pc, memAddr)
		complete = issueAt + res.Latency
		if res.Level > 1 {
			m.mshr.note(complete)
		}
		m.lq[m.loads%uint64(len(m.lq))] = complete
		m.loads++

	case st.Cls == isa.ClassStore:
		// Stores commit at retirement; the drain is background but
		// serialized, and the SQ entry is held until drain completes.
		start := issueAt
		if m.sbLast > start {
			start = m.sbLast
		}
		res := m.hier.Store(start, pc, memAddr)
		drain := start + res.Latency
		m.sbLast = drain
		if res.Level > 1 {
			m.mshr.note(drain)
		}
		m.sq[m.stores%uint64(len(m.sq))] = drain
		m.stores++
		complete = issueAt + 1

	case st.Cls.IsBranch():
		complete = issueAt + uint64(m.cfg.Lat.Latency(st.Cls))
		out := m.bu.AccessOutcome(st.Cls, st.Op, pc, target, taken)
		if out.Mispredict {
			pen := uint64(m.cfg.FrontEnd.MispredictPenalty)
			if complete+pen > m.fetchAvail {
				m.fetchAvail = complete + pen
			}
			m.res.StallFrontEnd += pen
		} else if out.TargetMiss {
			pen := uint64(m.cfg.FrontEnd.BTBMissPenalty)
			if dispatchAt+pen > m.fetchAvail {
				m.fetchAvail = dispatchAt + pen
			}
			m.res.StallFrontEnd += pen
		}

	default:
		complete = issueAt + uint64(m.cfg.Lat.Latency(st.Cls))
	}

	for _, r := range st.Dsts() {
		m.regReady[r] = complete
	}
	m.rob[seq%uint64(len(m.rob))] = m.retireSlot(complete)
}
