package core

import (
	"fmt"
	"math/bits"

	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/isa"
	"racesim/internal/trace"
)

// oooStatic is the config-derived state of the out-of-order model that is
// never written during replay; see inOrderStatic.
type oooStatic struct {
	dispatchWidth int
	retireWidth   int

	fetchLineBits uint
	fetchBase     uint64
	mispredictPen uint64
	btbMissPen    uint64

	lat    [isa.NumClasses]uint64
	depBug bool
}

func newOoOStatic(cfg OoOConfig) oooStatic {
	base := uint64(cfg.Mem.L1I.HitLatency)
	if cfg.Mem.L1I.TagDataSerial {
		base++
	}
	return oooStatic{
		dispatchWidth: cfg.DispatchWidth,
		retireWidth:   cfg.RetireWidth,
		fetchLineBits: uint(bits.TrailingZeros(uint(cfg.Mem.L1I.LineSize))),
		fetchBase:     base,
		mispredictPen: uint64(cfg.FrontEnd.MispredictPenalty),
		btbMissPen:    uint64(cfg.FrontEnd.BTBMissPenalty),
		lat:           latencyTable(cfg.Lat),
		depBug:        cfg.DecoderDepBug,
	}
}

// oooLane is the per-config mutable state of one out-of-order replay.
type oooLane struct {
	hier *cache.Hierarchy
	bu   *branch.Unit
	cont contention

	regReady [isa.NumRegs]uint64

	dispatchCycle uint64
	dispatched    int

	fetchAvail    uint64
	lastFetchLine uint64

	rob    []uint64 // retire cycle by sequence number mod ROBEntries
	iq     []uint64 // issue cycle by sequence number mod IQEntries
	lq     []uint64
	sq     []uint64
	seq    uint64 // instruction sequence number
	loads  uint64
	stores uint64

	lastRetire   uint64
	retiredInCyc int

	mshr   seqRing
	sbLast uint64

	endCycle uint64
	res      Result
}

func newOoOLane(cfg OoOConfig) (oooLane, error) {
	hier, err := cache.NewHierarchy(cfg.Mem)
	if err != nil {
		return oooLane{}, err
	}
	bu, err := branch.NewUnit(cfg.Branch)
	if err != nil {
		return oooLane{}, err
	}
	return oooLane{
		hier:          hier,
		bu:            bu,
		cont:          newContention(cfg.Pipes, cfg.Lat),
		rob:           make([]uint64, cfg.ROBEntries),
		iq:            make([]uint64, cfg.IQEntries),
		lq:            make([]uint64, cfg.LQEntries),
		sq:            make([]uint64, cfg.SQEntries),
		mshr:          newSeqRing(cfg.MSHRs),
		lastFetchLine: ^uint64(0),
	}, nil
}

// OoO is the out-of-order core timing model (Cortex-A72 class): wide
// dispatch into a reorder buffer, dataflow-limited issue over the pipe
// contention model, bounded issue queue, load/store queues, MSHR-limited
// memory-level parallelism, and in-order retirement. It is a one-pass
// window model in the spirit of Sniper's instruction-window-centric core.
type OoO struct {
	st   oooStatic
	lane oooLane
	dc   *decodeCache
}

// NewOoO builds the model; cfg must be valid.
func NewOoO(cfg OoOConfig) (*OoO, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lane, err := newOoOLane(cfg)
	if err != nil {
		return nil, err
	}
	return &OoO{
		st:   newOoOStatic(cfg),
		lane: lane,
		dc:   newDecodeCache(cfg.DecoderDepBug),
	}, nil
}

// Run implements Model.
func (m *OoO) Run(src trace.Source) (Result, error) {
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		b, err := m.dc.decode(ev)
		if err != nil {
			return Result{}, fmt.Errorf("core: %w", err)
		}
		m.lane.res.Instructions++
		m.lane.res.ClassCounts[b.Cls]++
		m.lane.stepLane(&m.st, b, ev.PC, ev.MemAddr, ev.Target, ev.Taken)
	}
	return m.lane.finish(), nil
}

// RunDecoded implements Model.
func (m *OoO) RunDecoded(d *trace.Decoded) (Result, error) {
	return m.RunDecodedBehaviors(d, nil)
}

// RunDecodedBehaviors is RunDecoded with a pre-compiled behavior table for
// d.Insts (nil: compiled here).
func (m *OoO) RunDecodedBehaviors(d *trace.Decoded, behav []Behavior) (Result, error) {
	if d.DepBug != m.st.depBug {
		return Result{}, fmt.Errorf("core: decoded trace uses DepBug=%v, model configured with %v", d.DepBug, m.st.depBug)
	}
	if behav == nil {
		behav = CompileBehaviors(d.Insts)
	}
	pcs, mems, tgts := d.PC, d.MemAddr, d.Target
	for i, id := range d.IDs {
		m.lane.stepLane(&m.st, &behav[id], pcs[i], mems[i], tgts[i], d.Taken(i))
	}
	if d.Err != nil {
		return Result{}, fmt.Errorf("core: %w", d.Err)
	}
	cc := classHistogram(d.IDs, behav)
	addCounts(&m.lane.res, uint64(len(d.IDs)), &cc)
	return m.lane.finish(), nil
}

func (ln *oooLane) finish() Result {
	ln.res.Cycles = ln.endCycle
	if ln.res.Cycles == 0 && ln.res.Instructions > 0 {
		ln.res.Cycles = ln.res.Instructions
	}
	ln.res.Branch = ln.bu.Stats()
	ln.res.Mem = ln.hier.Stats()
	ln.res.StallStruct += ln.cont.stalls
	return ln.res
}

// retireSlot assigns an in-order retirement cycle with RetireWidth slots
// per cycle.
func (ln *oooLane) retireSlot(st *oooStatic, complete uint64) uint64 {
	t := complete + 1
	if t < ln.lastRetire {
		t = ln.lastRetire
	}
	if t == ln.lastRetire && ln.retiredInCyc >= st.retireWidth {
		t++
	}
	if t > ln.lastRetire {
		ln.lastRetire = t
		ln.retiredInCyc = 0
	}
	ln.retiredInCyc++
	if t > ln.endCycle {
		ln.endCycle = t
	}
	return t
}

// stepLane advances one lane by one dynamic instruction; see the in-order
// stepLane for the kernel contract.
func (ln *oooLane) stepLane(st *oooStatic, b *Behavior, pc, memAddr, target uint64, taken bool) {
	seq := ln.seq
	ln.seq++

	// Window constraints: the ROB slot of (seq - ROBEntries) must have
	// retired; the IQ slot of (seq - IQEntries) must have issued.
	earliest := ln.fetchAvail
	if r := ln.rob[seq%uint64(len(ln.rob))]; seq >= uint64(len(ln.rob)) && r > earliest {
		ln.res.StallStruct += r - earliest
		earliest = r
	}
	if q := ln.iq[seq%uint64(len(ln.iq))]; seq >= uint64(len(ln.iq)) && q > earliest {
		ln.res.StallStruct += q - earliest
		earliest = q
	}
	if b.kind == stepLoad {
		if l := ln.lq[ln.loads%uint64(len(ln.lq))]; ln.loads >= uint64(len(ln.lq)) && l > earliest {
			earliest = l
		}
	}
	if b.kind == stepStore {
		if s := ln.sq[ln.stores%uint64(len(ln.sq))]; ln.stores >= uint64(len(ln.sq)) && s > earliest {
			earliest = s
		}
	}

	// Instruction fetch.
	line := pc >> st.fetchLineBits
	if line != ln.lastFetchLine {
		fres := ln.hier.Fetch(earliest, pc)
		if fres.Latency > st.fetchBase {
			stall := fres.Latency - st.fetchBase
			ln.res.StallFrontEnd += stall
			earliest += stall
			if earliest > ln.fetchAvail {
				ln.fetchAvail = earliest
			}
		}
		ln.lastFetchLine = line
	}

	// Dispatch slot.
	if earliest > ln.dispatchCycle {
		ln.dispatchCycle = earliest
		ln.dispatched = 0
	}
	if ln.dispatched >= st.dispatchWidth {
		ln.dispatchCycle++
		ln.dispatched = 0
	}
	dispatchAt := ln.dispatchCycle
	ln.dispatched++

	// Dataflow: operands.
	ready := dispatchAt + 1 // one cycle from rename to earliest issue
	for i := uint8(0); i < b.nSrc; i++ {
		if r := ln.regReady[b.src[i]]; r > ready {
			ready = r
		}
	}
	if ready > dispatchAt+1 {
		ln.res.StallData += ready - dispatchAt - 1
	}

	issueAt := ln.cont.issue(b.Cls, ready)
	ln.iq[seq%uint64(len(ln.iq))] = issueAt

	var complete uint64
	switch b.kind {
	case stepLoad:
		if !ln.hier.L1D().Probe(memAddr) {
			// Misses need an MSHR: issue waits for a free one, which
			// bounds memory-level parallelism.
			if d := ln.mshr.wait(issueAt); d > 0 {
				ln.res.StallStruct += d
				issueAt += d
			}
		}
		res := ln.hier.Load(issueAt, pc, memAddr)
		complete = issueAt + res.Latency
		if res.Level > 1 {
			ln.mshr.note(complete)
		}
		ln.lq[ln.loads%uint64(len(ln.lq))] = complete
		ln.loads++

	case stepStore:
		// Stores commit at retirement; the drain is background but
		// serialized, and the SQ entry is held until drain completes.
		start := issueAt
		if ln.sbLast > start {
			start = ln.sbLast
		}
		res := ln.hier.Store(start, pc, memAddr)
		drain := start + res.Latency
		ln.sbLast = drain
		if res.Level > 1 {
			ln.mshr.note(drain)
		}
		ln.sq[ln.stores%uint64(len(ln.sq))] = drain
		ln.stores++
		complete = issueAt + 1

	case stepBranch:
		complete = issueAt + st.lat[b.Cls]
		out := ln.bu.AccessOutcome(b.Cls, b.Op, pc, target, taken)
		if out.Mispredict {
			if complete+st.mispredictPen > ln.fetchAvail {
				ln.fetchAvail = complete + st.mispredictPen
			}
			ln.res.StallFrontEnd += st.mispredictPen
		} else if out.TargetMiss {
			if dispatchAt+st.btbMissPen > ln.fetchAvail {
				ln.fetchAvail = dispatchAt + st.btbMissPen
			}
			ln.res.StallFrontEnd += st.btbMissPen
		}

	default:
		complete = issueAt + st.lat[b.Cls]
	}

	for i := uint8(0); i < b.nDst; i++ {
		ln.regReady[b.dst[i]] = complete
	}
	ln.rob[seq%uint64(len(ln.rob))] = ln.retireSlot(st, complete)
}
