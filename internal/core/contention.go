package core

import "racesim/internal/isa"

// contention tracks functional-unit pipe occupancy. Each class group owns a
// small array of pipes; an instruction issues on the pipe that frees
// earliest, at no earlier than its ready cycle, and occupies it for the
// class's initiation interval. The class-to-group mapping is resolved into
// per-class tables at construction so the hot path indexes instead of
// switching; classes outside every group (nop) get a nil pipe slice.
//
// contention is a value type embedded in per-lane state; its pipe slices
// are owned by exactly one lane and must not be shared by copying a lane
// after construction.
type contention struct {
	pipes [isa.NumClasses][]uint64
	ii    [isa.NumClasses]uint64

	// stalls counts cycles lost waiting for a structural resource.
	stalls uint64
}

func newContention(p PipesConfig, lat LatencyConfig) contention {
	var c contention
	group := func(n int, ii int, classes ...isa.Class) {
		pipes := make([]uint64, n)
		for _, cls := range classes {
			c.pipes[cls] = pipes
			c.ii[cls] = uint64(ii)
		}
	}
	group(p.IntALU, 1, isa.ClassIntAlu)
	group(p.IntMul, 1, isa.ClassIntMul)
	group(p.IntDiv, lat.IntDivII, isa.ClassIntDiv)
	group(p.FP, 1, isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPCvt, isa.ClassSIMD)
	group(p.FPDiv, lat.FPDivII, isa.ClassFPDiv)
	group(p.Load, 1, isa.ClassLoad)
	group(p.Store, 1, isa.ClassStore)
	group(p.Branch, 1, isa.ClassBranch, isa.ClassBranchInd, isa.ClassCall, isa.ClassRet)
	return c
}

func bestPipe(pipes []uint64) int {
	best := 0
	for i := 1; i < len(pipes); i++ {
		if pipes[i] < pipes[best] {
			best = i
		}
	}
	return best
}

// issue reserves a pipe for cls no earlier than ready and returns the
// actual issue cycle. The earliest-free pipe is found and booked in one
// scan (the in-order slotFor inlines the same logic so its retry loop can
// interleave with the issue-slot checks).
func (c *contention) issue(cls isa.Class, ready uint64) uint64 {
	pipes := c.pipes[cls]
	if len(pipes) == 0 {
		return ready
	}
	bp := bestPipe(pipes)
	at := ready
	if free := pipes[bp]; free > ready {
		c.stalls += free - ready
		at = free
	}
	pipes[bp] = at + c.ii[cls]
	return at
}
