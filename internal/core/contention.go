package core

import "racesim/internal/isa"

// contention tracks functional-unit pipe occupancy. Each class group owns a
// small array of pipes; an instruction issues on the pipe that frees
// earliest, at no earlier than its ready cycle, and occupies it for the
// class's initiation interval.
type contention struct {
	lat LatencyConfig

	intALU []uint64
	intMul []uint64
	intDiv []uint64
	fp     []uint64
	fpDiv  []uint64
	load   []uint64
	store  []uint64
	branch []uint64

	// stalls counts cycles lost waiting for a structural resource.
	stalls uint64
}

func newContention(p PipesConfig, lat LatencyConfig) *contention {
	return &contention{
		lat:    lat,
		intALU: make([]uint64, p.IntALU),
		intMul: make([]uint64, p.IntMul),
		intDiv: make([]uint64, p.IntDiv),
		fp:     make([]uint64, p.FP),
		fpDiv:  make([]uint64, p.FPDiv),
		load:   make([]uint64, p.Load),
		store:  make([]uint64, p.Store),
		branch: make([]uint64, p.Branch),
	}
}

func (c *contention) pipesFor(cls isa.Class) ([]uint64, int) {
	switch cls {
	case isa.ClassIntAlu:
		return c.intALU, 1
	case isa.ClassIntMul:
		return c.intMul, 1
	case isa.ClassIntDiv:
		return c.intDiv, c.lat.IntDivII
	case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPCvt, isa.ClassSIMD:
		return c.fp, 1
	case isa.ClassFPDiv:
		return c.fpDiv, c.lat.FPDivII
	case isa.ClassLoad:
		return c.load, 1
	case isa.ClassStore:
		return c.store, 1
	case isa.ClassBranch, isa.ClassBranchInd, isa.ClassCall, isa.ClassRet:
		return c.branch, 1
	default:
		return nil, 1
	}
}

func bestPipe(pipes []uint64) int {
	best := 0
	for i := 1; i < len(pipes); i++ {
		if pipes[i] < pipes[best] {
			best = i
		}
	}
	return best
}

// peek returns the earliest cycle >= ready at which cls could issue,
// without reserving anything.
func (c *contention) peek(cls isa.Class, ready uint64) uint64 {
	pipes, _ := c.pipesFor(cls)
	if len(pipes) == 0 {
		return ready
	}
	if free := pipes[bestPipe(pipes)]; free > ready {
		return free
	}
	return ready
}

// reserve books a pipe for cls at cycle at (callers obtain at via peek).
func (c *contention) reserve(cls isa.Class, at uint64) {
	pipes, ii := c.pipesFor(cls)
	if len(pipes) == 0 {
		return
	}
	pipes[bestPipe(pipes)] = at + uint64(ii)
}

// issue reserves a pipe for cls no earlier than ready and returns the
// actual issue cycle.
func (c *contention) issue(cls isa.Class, ready uint64) uint64 {
	at := c.peek(cls, ready)
	if at > ready {
		c.stalls += at - ready
	}
	c.reserve(cls, at)
	return at
}
