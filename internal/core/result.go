package core

import (
	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/isa"
	"racesim/internal/trace"
)

// Result is the outcome of running a trace through a timing model.
type Result struct {
	Instructions uint64
	Cycles       uint64
	Branch       branch.Stats
	Mem          cache.HierarchyStats
	ClassCounts  [isa.NumClasses]uint64

	// Stall breakdown (approximate attribution, in cycles).
	StallFrontEnd uint64 // branch redirects + I-cache
	StallData     uint64 // waiting on operands (incl. load misses)
	StallStruct   uint64 // functional-unit and queue contention
}

// CPI returns cycles per instruction.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Model runs traces under a timing configuration.
type Model interface {
	// Run replays src from its current position to the end and returns
	// the accumulated timing result, decoding each event as it goes.
	// Callers reset the source. It is the reference replay path; the
	// decoded path below is the fast one.
	Run(src trace.Source) (Result, error)
	// RunDecoded replays a pre-decoded trace: a linear walk over the
	// columnar form with no per-event decode, map lookup or isa.Inst
	// copy. The decoded trace's decoder variant must match the model's
	// DecoderDepBug setting. Both paths produce identical Results.
	RunDecoded(d *trace.Decoded) (Result, error)
}

// decodeCache memoizes static decode by instruction word — compiled
// straight to the Behavior the step kernel consumes — for the per-event
// oracle path (Model.Run), which re-decodes the same hot words millions of
// times.
type decodeCache struct {
	dec   isa.Decoder
	cache map[uint32]*Behavior
}

func newDecodeCache(depBug bool) *decodeCache {
	return &decodeCache{dec: isa.Decoder{DepBug: depBug}, cache: make(map[uint32]*Behavior, 1024)}
}

// decode returns the behavior for a trace event's instruction word.
func (d *decodeCache) decode(ev trace.Event) (*Behavior, error) {
	b, ok := d.cache[ev.Word]
	if !ok {
		in, err := d.dec.Decode(0, ev.Word)
		if err != nil {
			return nil, err
		}
		nb := behaviorOf(&in)
		b = &nb
		d.cache[ev.Word] = b
	}
	return b, nil
}
