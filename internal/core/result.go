package core

import (
	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/isa"
	"racesim/internal/trace"
)

// Result is the outcome of running a trace through a timing model.
type Result struct {
	Instructions uint64
	Cycles       uint64
	Branch       branch.Stats
	Mem          cache.HierarchyStats
	ClassCounts  [isa.NumClasses]uint64

	// Stall breakdown (approximate attribution, in cycles).
	StallFrontEnd uint64 // branch redirects + I-cache
	StallData     uint64 // waiting on operands (incl. load misses)
	StallStruct   uint64 // functional-unit and queue contention
}

// CPI returns cycles per instruction.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Model runs traces under a timing configuration.
type Model interface {
	// Run replays src from its current position to the end and returns
	// the accumulated timing result, decoding each event as it goes.
	// Callers reset the source. It is the reference replay path; the
	// decoded path below is the fast one.
	Run(src trace.Source) (Result, error)
	// RunDecoded replays a pre-decoded trace: a linear walk over the
	// columnar form with no per-event decode, map lookup or isa.Inst
	// copy. The decoded trace's decoder variant must match the model's
	// DecoderDepBug setting. Both paths produce identical Results.
	RunDecoded(d *trace.Decoded) (Result, error)
}

// decodeCache memoizes static decode by instruction word: trace replay
// re-decodes the same hot words millions of times.
type decodeCache struct {
	dec   isa.Decoder
	cache map[uint32]isa.Inst
}

func newDecodeCache(depBug bool) *decodeCache {
	return &decodeCache{dec: isa.Decoder{DepBug: depBug}, cache: make(map[uint32]isa.Inst, 1024)}
}

// decode returns the decoded instruction for a trace event with dynamic
// fields filled in.
func (d *decodeCache) decode(ev trace.Event) (isa.Inst, error) {
	in, ok := d.cache[ev.Word]
	if !ok {
		var err error
		in, err = d.dec.Decode(0, ev.Word)
		if err != nil {
			return isa.Inst{}, err
		}
		d.cache[ev.Word] = in
	}
	in.PC = ev.PC
	in.MemAddr = ev.MemAddr
	in.Taken = ev.Taken
	in.Target = ev.Target
	return in, nil
}
