package core

import (
	"fmt"
	"strings"
	"testing"

	"racesim/internal/asm"
	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/dram"
	"racesim/internal/prefetch"
	"racesim/internal/trace"
)

func testMem() cache.HierarchyConfig {
	l1 := cache.Config{
		Name: "l1d", SizeKB: 32, Assoc: 4, LineSize: 64,
		HitLatency: 3, Hash: cache.HashMask, Repl: cache.ReplLRU,
		MSHRs: 4, Ports: 1, WriteBack: true, WriteAllocate: true,
		Prefetch: prefetch.DefaultConfig(),
	}
	l1i := l1
	l1i.Name = "l1i"
	l1i.HitLatency = 1
	l2 := cache.Config{
		Name: "l2", SizeKB: 512, Assoc: 16, LineSize: 64,
		HitLatency: 12, Hash: cache.HashMask, Repl: cache.ReplLRU,
		MSHRs: 8, Ports: 1, WriteBack: true, WriteAllocate: true,
		Prefetch: prefetch.DefaultConfig(),
	}
	return cache.HierarchyConfig{
		L1I: l1i, L1D: l1, L2: l2, DRAM: dram.DefaultConfig(),
		ITLBEntries: 32, DTLBEntries: 32, TLBMissLatency: 20, PageBytes: 4096,
	}
}

func testLat() LatencyConfig {
	return LatencyConfig{
		IntALU: 1, IntMul: 3, IntDiv: 12, FPAdd: 4, FPMul: 4, FPDiv: 18,
		FPCvt: 3, SIMD: 3, IntDivII: 12, FPDivII: 18,
	}
}

func testPipes() PipesConfig {
	return PipesConfig{IntALU: 2, IntMul: 1, IntDiv: 1, FP: 1, FPDiv: 1, Load: 1, Store: 1, Branch: 1}
}

func inorderCfg() InOrderConfig {
	return InOrderConfig{
		Width: 2, DualIssueLoadStore: true, MaxMemPerCycle: 1, MaxBranchPerCycle: 1,
		MSHRs: 2, StoreBufferEntries: 4,
		Lat: testLat(), Pipes: testPipes(),
		FrontEnd: FrontEndConfig{MispredictPenalty: 8, BTBMissPenalty: 2, FetchWidth: 2},
		Branch:   branch.DefaultConfig(),
		Mem:      testMem(),
	}
}

func oooCfg() OoOConfig {
	return OoOConfig{
		DispatchWidth: 3, RetireWidth: 3, ROBEntries: 128, IQEntries: 64,
		LQEntries: 32, SQEntries: 32, MSHRs: 6,
		Lat: testLat(), Pipes: PipesConfig{IntALU: 2, IntMul: 1, IntDiv: 1, FP: 2, FPDiv: 1, Load: 1, Store: 1, Branch: 1},
		FrontEnd: FrontEndConfig{MispredictPenalty: 14, BTBMissPenalty: 3, FetchWidth: 3},
		Branch:   branch.DefaultConfig(),
		Mem:      testMem(),
	}
}

func record(t *testing.T, src string) *trace.Trace {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Record("test", p, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func runInOrder(t *testing.T, cfg InOrderConfig, tr *trace.Trace) Result {
	t.Helper()
	m, err := NewInOrder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(trace.NewCursor(tr))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runOoO(t *testing.T, cfg OoOConfig, tr *trace.Trace) Result {
	t.Helper()
	m, err := NewOoO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(trace.NewCursor(tr))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// independentALU builds a loop of independent integer ops.
func independentALU(iters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "movz x9, #%d\n", iters)
	b.WriteString("loop:\n")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&b, "addi x%d, x%d, #1\n", i%8+1, i%8+1)
	}
	b.WriteString("subi x9, x9, #1\ncbnz x9, loop\nhalt\n")
	return b.String()
}

// chainALU builds a serial dependency chain.
func chainALU(iters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "movz x9, #%d\n", iters)
	b.WriteString("loop:\n")
	for i := 0; i < 16; i++ {
		b.WriteString("addi x1, x1, #1\n")
	}
	b.WriteString("subi x9, x9, #1\ncbnz x9, loop\nhalt\n")
	return b.String()
}

func TestInOrderDualIssueThroughput(t *testing.T) {
	tr := record(t, independentALU(500))
	res := runInOrder(t, inorderCfg(), tr)
	cpi := res.CPI()
	// Independent single-cycle ops on a 2-wide core: CPI near 0.5-0.7
	// (loop overhead shares slots).
	if cpi < 0.45 || cpi > 0.85 {
		t.Errorf("independent ALU CPI = %.3f, want ~0.5-0.8", cpi)
	}
}

func TestInOrderDependencyChainSerializes(t *testing.T) {
	tr := record(t, chainALU(500))
	res := runInOrder(t, inorderCfg(), tr)
	cpi := res.CPI()
	// A 1-cycle chain bounds CPI near 1.0.
	if cpi < 0.9 || cpi > 1.3 {
		t.Errorf("chained ALU CPI = %.3f, want ~1.0", cpi)
	}
}

func TestInOrderWidthMatters(t *testing.T) {
	tr := record(t, independentALU(300))
	wide := runInOrder(t, inorderCfg(), tr)
	narrow := inorderCfg()
	narrow.Width = 1
	narrowRes := runInOrder(t, narrow, tr)
	if narrowRes.CPI() <= wide.CPI()*1.3 {
		t.Errorf("1-wide CPI %.3f should be well above 2-wide %.3f", narrowRes.CPI(), wide.CPI())
	}
}

func TestDivChainPaysInitiationInterval(t *testing.T) {
	src := `
		movz x9, #200
		movz x2, #7
	loop:
		sdiv x1, x1, x2
		sdiv x1, x1, x2
		sdiv x1, x1, x2
		sdiv x1, x1, x2
		subi x9, x9, #1
		cbnz x9, loop
		halt
	`
	tr := record(t, src)
	res := runInOrder(t, inorderCfg(), tr)
	// Two thirds of instructions are dependent 12-cycle divides.
	if cpi := res.CPI(); cpi < 6 {
		t.Errorf("divide chain CPI = %.2f, want > 6", cpi)
	}
}

func TestPointerChaseSeesL1Latency(t *testing.T) {
	// Build a pointer chain within one page, each node pointing to the
	// next; dependent loads expose the L1 hit latency.
	var b strings.Builder
	b.WriteString(`
		.equ CH, 0x40000
		.org 0x1000
		la x1, CH
		movz x9, #30000
	loop:
		ldrx x1, [x1, #0]
		subi x9, x9, #1
		cbnz x9, loop
		halt
	`)
	for i := 0; i < 64; i++ {
		next := 0x40000 + ((i+1)%64)*64
		fmt.Fprintf(&b, "\n.data CH+%d\n.quad %d\n", i*64, next)
	}
	tr := record(t, b.String())
	res := runInOrder(t, inorderCfg(), tr)
	// Each iteration: dependent load (3 cycles) dominates; 3 instructions
	// per iteration -> CPI >= 1.
	if cpi := res.CPI(); cpi < 1.0 || cpi > 2.5 {
		t.Errorf("L1 pointer chase CPI = %.2f, want in [1.0, 2.5]", cpi)
	}
	if res.Mem.L1D.MissRate() > 0.05 {
		t.Errorf("pointer chase in one page should hit L1, miss rate %.2f", res.Mem.L1D.MissRate())
	}
}

func TestMispredictPenaltyVisible(t *testing.T) {
	// Data-dependent unpredictable branches (LCG parity) vs biased ones.
	random := `
		movz x9, #3000
		movz x5, #12345
		movz x6, #1103
		movz x7, #2
	loop:
		mul x5, x5, x6
		addi x5, x5, #7
		lsri x4, x5, #9
		andi x4, x4, #1
		cbnz x4, skip
		addi x2, x2, #1
	skip:
		subi x9, x9, #1
		cbnz x9, loop
		halt
	`
	biased := strings.Replace(random, "andi x4, x4, #1", "andi x4, x4, #0", 1)
	trR := record(t, random)
	trB := record(t, biased)
	resR := runInOrder(t, inorderCfg(), trR)
	resB := runInOrder(t, inorderCfg(), trB)
	if resR.CPI() <= resB.CPI()*1.15 {
		t.Errorf("unpredictable branches CPI %.3f should exceed biased %.3f", resR.CPI(), resB.CPI())
	}
	if resR.Branch.Mispredicts() == 0 {
		t.Error("no mispredicts recorded for random branches")
	}
}

func TestBiggerMispredictPenaltyRaisesCPI(t *testing.T) {
	src := `
		movz x9, #2000
		movz x5, #12345
		movz x6, #1103
	loop:
		mul x5, x5, x6
		addi x5, x5, #7
		lsri x4, x5, #9
		andi x4, x4, #1
		cbnz x4, skip
		addi x2, x2, #1
	skip:
		subi x9, x9, #1
		cbnz x9, loop
		halt
	`
	tr := record(t, src)
	small := inorderCfg()
	small.FrontEnd.MispredictPenalty = 4
	big := inorderCfg()
	big.FrontEnd.MispredictPenalty = 24
	if a, b := runInOrder(t, small, tr).CPI(), runInOrder(t, big, tr).CPI(); b <= a {
		t.Errorf("penalty 24 CPI %.3f should exceed penalty 4 CPI %.3f", b, a)
	}
}

// strideMisses builds a loop streaming over a large array with one load
// per iteration, mostly independent -> exposes MLP differences.
func strideMisses() string {
	return `
		.equ BUF, 0x100000
		movz x9, #4000
		la x1, BUF
	loop:
		ldrx x2, [x1, #0]
		ldrx x3, [x1, #64]
		ldrx x4, [x1, #128]
		ldrx x5, [x1, #192]
		addi x1, x1, #256
		subi x9, x9, #1
		cbnz x9, loop
		halt
	`
}

func TestOoOHidesMissLatencyBetterThanInOrder(t *testing.T) {
	tr := record(t, strideMisses())
	ino := runInOrder(t, inorderCfg(), tr)
	ooo := runOoO(t, oooCfg(), tr)
	if ooo.CPI() >= ino.CPI() {
		t.Errorf("OoO CPI %.3f should beat in-order %.3f on independent misses", ooo.CPI(), ino.CPI())
	}
}

func TestOoOROBSizeMatters(t *testing.T) {
	tr := record(t, strideMisses())
	// Make MSHRs plentiful so the ROB window is the binding constraint on
	// memory-level parallelism.
	big := oooCfg()
	big.ROBEntries = 192
	big.MSHRs = 24
	small := oooCfg()
	small.ROBEntries = 16
	small.IQEntries = 8
	small.MSHRs = 24
	bigRes := runOoO(t, big, tr)
	smallRes := runOoO(t, small, tr)
	if smallRes.CPI() <= bigRes.CPI()*1.1 {
		t.Errorf("16-entry ROB CPI %.3f should be well above 192-entry %.3f", smallRes.CPI(), bigRes.CPI())
	}
}

func TestOoOMSHRLimitsMLP(t *testing.T) {
	tr := record(t, strideMisses())
	many := oooCfg()
	many.MSHRs = 8
	one := oooCfg()
	one.MSHRs = 1
	manyRes := runOoO(t, many, tr)
	oneRes := runOoO(t, one, tr)
	if oneRes.CPI() <= manyRes.CPI() {
		t.Errorf("1 MSHR CPI %.3f should exceed 8 MSHRs %.3f", oneRes.CPI(), manyRes.CPI())
	}
}

func TestDecoderDepBugSpeedsUpFPChains(t *testing.T) {
	src := `
		movz x9, #1000
		movz x2, #3
		scvtf v1, x2
		scvtf v2, x2
	loop:
		fmul v1, v1, v2
		fmul v1, v1, v2
		fmul v1, v1, v2
		fmul v1, v1, v2
		subi x9, x9, #1
		cbnz x9, loop
		halt
	`
	tr := record(t, src)
	good := inorderCfg()
	buggy := inorderCfg()
	buggy.DecoderDepBug = true
	goodRes := runInOrder(t, good, tr)
	buggyRes := runInOrder(t, buggy, tr)
	// fmul v1, v1, v2: the chain runs through operand 1, which the buggy
	// decoder keeps; but fcmp-style second operands vanish. Here the bug
	// drops v2 only, so timing stays chained. Use a chain through the
	// second operand instead.
	_ = goodRes
	_ = buggyRes
	src2 := strings.ReplaceAll(src, "fmul v1, v1, v2", "fmul v1, v2, v1")
	tr2 := record(t, src2)
	goodRes = runInOrder(t, good, tr2)
	m2, _ := NewInOrder(buggy)
	buggyRes, _ = m2.Run(trace.NewCursor(tr2))
	if buggyRes.CPI() >= goodRes.CPI() {
		t.Errorf("dep-bug CPI %.3f should be (wrongly) below correct %.3f", buggyRes.CPI(), goodRes.CPI())
	}
}

func TestRunDeterminism(t *testing.T) {
	tr := record(t, strideMisses())
	a := runInOrder(t, inorderCfg(), tr)
	b := runInOrder(t, inorderCfg(), tr)
	if a != b {
		t.Error("in-order model is not deterministic")
	}
	c := runOoO(t, oooCfg(), tr)
	d := runOoO(t, oooCfg(), tr)
	if c != d {
		t.Error("OoO model is not deterministic")
	}
}

func TestConfigValidationErrors(t *testing.T) {
	bad := inorderCfg()
	bad.Width = 9
	if _, err := NewInOrder(bad); err == nil {
		t.Error("width 9 accepted")
	}
	bad = inorderCfg()
	bad.Lat.IntDiv = 0
	if _, err := NewInOrder(bad); err == nil {
		t.Error("zero div latency accepted")
	}
	badO := oooCfg()
	badO.ROBEntries = 4
	if _, err := NewOoO(badO); err == nil {
		t.Error("ROB 4 accepted")
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	src := `
		.equ BUF, 0x200000
		movz x9, #3000
		la x1, BUF
	loop:
		strx x2, [x1, #0]
		strx x2, [x1, #64]
		strx x2, [x1, #128]
		strx x2, [x1, #192]
		addi x1, x1, #256
		subi x9, x9, #1
		cbnz x9, loop
		halt
	`
	tr := record(t, src)
	small := inorderCfg()
	small.StoreBufferEntries = 1
	big := inorderCfg()
	big.StoreBufferEntries = 32
	a := runInOrder(t, small, tr)
	b := runInOrder(t, big, tr)
	if a.CPI() <= b.CPI() {
		t.Errorf("1-entry store buffer CPI %.3f should exceed 32-entry %.3f", a.CPI(), b.CPI())
	}
}

func TestClassCountsMatchTrace(t *testing.T) {
	tr := record(t, strideMisses())
	res := runInOrder(t, inorderCfg(), tr)
	mix := tr.ClassMix()
	for cls, n := range mix {
		if res.ClassCounts[cls] != uint64(n) {
			t.Errorf("class %d count %d, trace has %d", cls, res.ClassCounts[cls], n)
		}
	}
	if res.Instructions != uint64(tr.Len()) {
		t.Errorf("instructions %d, trace %d", res.Instructions, tr.Len())
	}
}
