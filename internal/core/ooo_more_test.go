package core

import (
	"testing"

	"racesim/internal/trace"
)

func TestOoORetireWidthBoundsIPC(t *testing.T) {
	tr := record(t, independentALU(500))
	wide := oooCfg()
	wide.RetireWidth = 4
	wide.DispatchWidth = 4
	narrow := oooCfg()
	narrow.RetireWidth = 2
	narrow.DispatchWidth = 4
	w := runOoO(t, wide, tr)
	n := runOoO(t, narrow, tr)
	if n.CPI() <= w.CPI() {
		t.Errorf("retire width 2 CPI %.3f should exceed width 4 CPI %.3f", n.CPI(), w.CPI())
	}
	// IPC can never exceed the retire width.
	if w.IPC() > 4.01 {
		t.Errorf("IPC %.2f exceeds retire width", w.IPC())
	}
	if n.IPC() > 2.01 {
		t.Errorf("IPC %.2f exceeds retire width 2", n.IPC())
	}
}

func TestOoOLoadQueueBounds(t *testing.T) {
	tr := record(t, strideMisses())
	big := oooCfg()
	big.LQEntries = 64
	big.MSHRs = 24
	small := oooCfg()
	small.LQEntries = 4
	small.MSHRs = 24
	bigRes := runOoO(t, big, tr)
	smallRes := runOoO(t, small, tr)
	if smallRes.CPI() <= bigRes.CPI() {
		t.Errorf("4-entry LQ CPI %.3f should exceed 64-entry %.3f", smallRes.CPI(), bigRes.CPI())
	}
}

func TestOoOBranchRecoveryCost(t *testing.T) {
	src := `
		movz x9, #2000
		movz x5, #12345
		movz x6, #1103
	loop:
		mul x5, x5, x6
		addi x5, x5, #7
		lsri x4, x5, #9
		andi x4, x4, #1
		cbnz x4, skip
		addi x2, x2, #1
	skip:
		subi x9, x9, #1
		cbnz x9, loop
		halt
	`
	tr := record(t, src)
	small := oooCfg()
	small.FrontEnd.MispredictPenalty = 6
	big := oooCfg()
	big.FrontEnd.MispredictPenalty = 30
	if a, b := runOoO(t, small, tr).CPI(), runOoO(t, big, tr).CPI(); b <= a {
		t.Errorf("OoO penalty 30 CPI %.3f should exceed penalty 6 CPI %.3f", b, a)
	}
}

func TestOoOFasterThanInOrderOnMixedWorkload(t *testing.T) {
	// A realistic mix: loads + compute with moderate ILP. The OoO core
	// with bigger window should clearly win.
	src := `
		.equ BUF, 0x80000
		movz x9, #4000
		la x1, BUF
	loop:
		ldrx x2, [x1, #0]
		addi x3, x3, #1
		mul x4, x3, x2
		add x5, x5, x4
		ldrx x6, [x1, #64]
		add x7, x7, x6
		addi x1, x1, #128
		andi x1, x1, #0xFFFF
		subi x9, x9, #1
		cbnz x9, loop
		halt
	`
	tr := record(t, src)
	ino := runInOrder(t, inorderCfg(), tr)
	ooo := runOoO(t, oooCfg(), tr)
	if ooo.CPI() >= ino.CPI() {
		t.Errorf("OoO CPI %.3f should beat in-order %.3f on a mixed workload", ooo.CPI(), ino.CPI())
	}
}

func TestModelsAcceptEmptyTrace(t *testing.T) {
	empty := &trace.Trace{Name: "empty"}
	m, err := NewInOrder(inorderCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(trace.NewCursor(empty))
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 0 || res.Cycles != 0 {
		t.Errorf("empty trace produced %+v", res)
	}
	o, err := NewOoO(oooCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(trace.NewCursor(empty)); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidWordInTraceFails(t *testing.T) {
	bad := &trace.Trace{Name: "bad", Events: []trace.Event{{PC: 0x1000, Word: 0xFFFFFFFF}}}
	m, err := NewInOrder(inorderCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(trace.NewCursor(bad)); err == nil {
		t.Error("invalid word accepted by the timing model")
	}
}
