package validate

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"racesim/internal/hw"
	"racesim/internal/report"
	"racesim/internal/sim"
	"racesim/internal/ubench"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCollectSamplesShape(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := MeasureSuite(p.A53, ubench.Options{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	samples, plaus, err := CollectSamples(sim.PublicA53(), ms, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != len(ms) {
		t.Fatalf("%d samples for %d measurements", len(samples), len(ms))
	}
	for i, s := range samples {
		if s.Bench != ms[i].Bench.Name {
			t.Errorf("sample %d is %s, measurement is %s (order must be preserved)", i, s.Bench, ms[i].Bench.Name)
		}
		if s.SimCPI <= 0 || s.HWCPI <= 0 {
			t.Errorf("%s: nonpositive CPI sim=%v hw=%v", s.Bench, s.SimCPI, s.HWCPI)
		}
	}
	// The public preset is a physical machine: wrong, but never impossible.
	if len(plaus) != 0 {
		t.Errorf("public A53 flagged as nonphysical: %v", plaus)
	}
}

// TestReportRenderDeterministicAcrossParallelism is the golden test: the
// rendered ValidationReport for the untuned public A53 must be
// byte-identical whatever parallelism produced it, and must match the
// committed golden file (regenerate with -update after an intentional
// metric or format change).
func TestReportRenderDeterministicAcrossParallelism(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := MeasureSuiteParallel(p.A53, ubench.Options{Scale: 0.002}, 4)
	if err != nil {
		t.Fatal(err)
	}
	render := func(parallelism int) string {
		t.Helper()
		samples, plaus, err := CollectSamples(sim.PublicA53(), ms, nil, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		br, err := report.Build(p.A53.Name, string(sim.InOrder), "untuned", samples, plaus, report.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		return report.New(br).Render()
	}
	sequential := render(1)
	for _, par := range []int{2, 8} {
		if got := render(par); got != sequential {
			t.Fatalf("render differs between parallelism 1 and %d:\n%s\n--- vs ---\n%s", par, sequential, got)
		}
	}

	golden := filepath.Join("testdata", "report_a53.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(sequential), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if sequential != string(want) {
		t.Errorf("rendered report drifted from golden (run `go test ./internal/validate -run Deterministic -update` if intentional):\ngot:\n%s\nwant:\n%s", sequential, want)
	}
}
