package validate

import (
	"fmt"
	"math"

	"racesim/internal/par"
	"racesim/internal/plausibility"
	"racesim/internal/report"
	"racesim/internal/sim"
	"racesim/internal/simcache"
)

// CollectSamples evaluates cfg on every measurement and returns the raw
// report data: per-benchmark simulated-vs-hardware CPI samples in
// measurement order, plus any physical-plausibility violations observed
// on the configuration or the simulated results (one line per
// violation, "BENCH: invariant: detail", measurement order). The work
// runs through the optional shared simulation cache over a bounded
// worker pool; the output is identical for any parallelism.
func CollectSamples(cfg sim.Config, ms []Measurement, cache *simcache.Cache, parallelism int) ([]report.Sample, []string, error) {
	var plaus []string
	for _, v := range plausibility.CheckConfig(cfg) {
		plaus = append(plaus, "config: "+v.String())
	}
	samples := make([]report.Sample, len(ms))
	perBench := make([][]string, len(ms))
	err := par.ForEach(len(ms), parallelism, func(i int) error {
		m := ms[i]
		res, err := cache.Run(cfg, m.Trace)
		if err != nil {
			return err
		}
		if !(m.Counters.CPI > 0) || math.IsInf(m.Counters.CPI, 0) {
			return fmt.Errorf("validate: hardware CPI %v for %s is not positive and finite", m.Counters.CPI, m.Trace.Name)
		}
		samples[i] = report.Sample{
			Bench:    m.Bench.Name,
			Category: string(m.Bench.Category),
			SimCPI:   res.CPI(),
			HWCPI:    m.Counters.CPI,
		}
		for _, v := range plausibility.CheckResult(cfg, res) {
			perBench[i] = append(perBench[i], m.Bench.Name+": "+v.String())
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, vs := range perBench {
		plaus = append(plaus, vs...)
	}
	return samples, plaus, nil
}
