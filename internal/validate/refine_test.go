package validate

import (
	"testing"

	"racesim/internal/hw"
	"racesim/internal/sim"
	"racesim/internal/ubench"
)

func TestTriagePointsAtWorstCategory(t *testing.T) {
	es := []BenchError{
		{Name: "a", Category: ubench.CatControl, Error: 0.5},
		{Name: "b", Category: ubench.CatControl, Error: 0.7},
		{Name: "c", Category: ubench.CatMemory, Error: 0.1},
		{Name: "d", Category: ubench.CatExecution, Error: 0.2},
	}
	cat, e := Triage(es)
	if cat != ubench.CatControl {
		t.Errorf("triage picked %s, want control", cat)
	}
	if e != 0.6 {
		t.Errorf("triage mean = %v, want 0.6", e)
	}
}

func TestRefineComponentFocusesOnCategory(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	ms := measurements(t, p.A53)
	base := sim.PublicA53()
	base.DecoderDepBug = false // isolate specification errors

	before, err := Errors(base, ms)
	if err != nil {
		t.Fatal(err)
	}
	beforeCats := CategoryErrors(before)

	res, err := RefineComponent(base, ms, ubench.CatControl, TuneOptions{Budget: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	afterCats := CategoryErrors(res.Errors)
	t.Logf("control-category error: %.1f%% -> %.1f%%",
		beforeCats[ubench.CatControl]*100, afterCats[ubench.CatControl]*100)
	if afterCats[ubench.CatControl] >= beforeCats[ubench.CatControl] {
		t.Errorf("focused refinement did not reduce control error: %.3f -> %.3f",
			beforeCats[ubench.CatControl], afterCats[ubench.CatControl])
	}
	// Full-suite errors must be reported for regression checking.
	if len(res.Errors) != len(ms) {
		t.Errorf("refine reported %d errors, want full suite %d", len(res.Errors), len(ms))
	}
}

func TestRefineComponentNeedsEnoughBenches(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	ms := measurements(t, p.A53)[:1]
	if _, err := RefineComponent(sim.PublicA53(), ms, ubench.CatStore, TuneOptions{Budget: 100}); err == nil {
		t.Error("refine accepted a category with too few benchmarks")
	}
}
