package validate

import (
	"math"
	"testing"

	"racesim/internal/hw"
	"racesim/internal/irace"
	"racesim/internal/sim"
	"racesim/internal/ubench"
)

func measurements(t *testing.T, board *hw.Board) []Measurement {
	t.Helper()
	ms, err := MeasureSuite(board, ubench.Options{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestMeasureSuiteCoversAllBenches(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	ms := measurements(t, p.A53)
	if len(ms) != 40 {
		t.Fatalf("%d measurements, want 40", len(ms))
	}
	for _, m := range ms {
		if m.Counters.CPI <= 0 {
			t.Errorf("%s: zero CPI", m.Bench.Name)
		}
		if m.Trace.Len() == 0 {
			t.Errorf("%s: empty trace", m.Bench.Name)
		}
	}
}

func TestErrorsAndAggregates(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	ms := measurements(t, p.A53)
	es, err := Errors(sim.PublicA53(), ms)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := MeanError(es)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 0.10 {
		t.Errorf("untuned mean error %.1f%% too low to exercise the methodology", mean*100)
	}
	worst, ok, err := MaxError(es)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || worst.Error < mean {
		t.Errorf("worst error %v below mean %v", worst.Error, mean)
	}
	cats := CategoryErrors(es)
	if len(cats) != 5 {
		t.Errorf("category triage covers %d categories, want 5", len(cats))
	}
	t.Logf("untuned A53: mean %.1f%%, worst %s %.1f%%", mean*100, worst.Name, worst.Error*100)
}

func TestEvaluatorInvalidAssignmentLosesRaces(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	ms := measurements(t, p.A53)[:3]
	e := &Evaluator{Base: sim.PublicA53(), Ms: ms}
	bad := irace.Assignment{"l1d.hit_latency": "nonsense"}
	if c := e.Cost(bad, 0); !math.IsInf(c, 1) {
		t.Errorf("invalid assignment cost = %v, want +Inf", c)
	}
	good := sim.Extract(sim.PublicA53())
	if c := e.Cost(good, 0); math.IsInf(c, 1) || c < 0 {
		t.Errorf("valid assignment cost = %v", c)
	}
}

// TestCostBatchMatchesCost pins the BatchEvaluator contract on the real
// evaluator: element i of CostBatch is exactly Cost(as[i], instance),
// including the +Inf slots of invalid assignments mixed into the batch,
// and with the branch-MPKI weight exercising the full cost function.
func TestCostBatchMatchesCost(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	ms := measurements(t, p.A53)[:3]
	e := &Evaluator{Base: sim.PublicA53(), Ms: ms, Weights: CostWeights{BranchMPKI: 0.2}, Lanes: 2}

	base := sim.Extract(sim.PublicA53())
	varied := sim.Extract(sim.PublicA53())
	varied["l1d.hit_latency"] = "4"
	as := []irace.Assignment{
		base,
		{"l1d.hit_latency": "nonsense"}, // invalid: must stay +Inf
		varied,
	}
	for inst := range ms {
		batch := e.CostBatch(as, inst)
		if len(batch) != len(as) {
			t.Fatalf("instance %d: %d costs for %d assignments", inst, len(batch), len(as))
		}
		for i, a := range as {
			want := e.Cost(a, inst)
			if batch[i] != want && !(math.IsInf(batch[i], 1) && math.IsInf(want, 1)) {
				t.Errorf("instance %d assignment %d: CostBatch %v != Cost %v", inst, i, batch[i], want)
			}
		}
	}
}

func TestTuneReducesError(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	ms := measurements(t, p.A53)
	base := sim.PublicA53()
	before, err := Errors(base, ms)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(base, ms, TuneOptions{Budget: 900, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	after, err := MeanError(res.Errors)
	if err != nil {
		t.Fatal(err)
	}
	beforeMean, err := MeanError(before)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tune: %.1f%% -> %.1f%% (budget 900)", beforeMean*100, after*100)
	if after >= beforeMean {
		t.Errorf("tuning did not reduce mean error: %.3f -> %.3f", beforeMean, after)
	}
}

func TestSeedLatencies(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := SeedLatencies(sim.PublicA53(), p.A53)
	if err != nil {
		t.Fatal(err)
	}
	truth := p.A53.TrueConfig()
	if cfg.Mem.L1D.HitLatency != truth.Mem.L1D.HitLatency {
		t.Errorf("seeded L1 latency %d, truth %d", cfg.Mem.L1D.HitLatency, truth.Mem.L1D.HitLatency)
	}
	// L2 and DRAM should land within one step of truth.
	if d := cfg.Mem.L2.HitLatency - truth.Mem.L2.HitLatency; d < -3 || d > 6 {
		t.Errorf("seeded L2 latency %d, truth %d", cfg.Mem.L2.HitLatency, truth.Mem.L2.HitLatency)
	}
	if d := cfg.Mem.DRAM.LatencyCycles - truth.Mem.DRAM.LatencyCycles; d < -60 || d > 60 {
		t.Errorf("seeded DRAM latency %d, truth %d", cfg.Mem.DRAM.LatencyCycles, truth.Mem.DRAM.LatencyCycles)
	}
}

func TestPipelineStagedImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("staged pipeline is expensive")
	}
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	stages, err := Pipeline(p.A53, sim.PublicA53(), PipelineOptions{
		BudgetRound1: 800,
		BudgetRound2: 1000,
		Seed:         3,
		UbenchScale:  0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("%d stages, want 3", len(stages))
	}
	u, r1, fx := stages[0].MeanError, stages[1].MeanError, stages[2].MeanError
	t.Logf("pipeline: untuned %.1f%% -> round1 %.1f%% -> fixed %.1f%%", u*100, r1*100, fx*100)
	if r1 >= u {
		t.Errorf("round 1 (%.3f) did not improve on untuned (%.3f)", r1, u)
	}
	if fx >= r1 {
		t.Errorf("fixes+round 2 (%.3f) did not improve on round 1 (%.3f)", fx, r1)
	}
}
