package validate

import (
	"fmt"

	"racesim/internal/sim"
	"racesim/internal/ubench"
)

// RefineComponent is the methodology's step 5 follow-up: when the category
// triage points at one mismodeled component, run an extra tuning round
// whose instances are only that category's micro-benchmarks and whose cost
// function is weighted with the component-relevant counter (the paper's
// example: include branch misprediction rate when chasing the indirect
// branch model).
//
// The returned configuration is re-evaluated on the full suite so callers
// can verify the focused round did not regress other components.
func RefineComponent(base sim.Config, ms []Measurement, cat ubench.Category, opt TuneOptions) (*TuneResult, error) {
	var focused []Measurement
	for _, m := range ms {
		if m.Bench.Category == cat {
			focused = append(focused, m)
		}
	}
	if len(focused) < 2 {
		return nil, fmt.Errorf("validate: category %s has %d benchmarks; need >= 2 for racing", cat, len(focused))
	}
	if opt.Weights == (CostWeights{}) && cat == ubench.CatControl {
		opt.Weights = CostWeights{BranchMPKI: 0.5}
	}
	res, err := Tune(base, focused, opt)
	if err != nil {
		return nil, err
	}
	full, err := ErrorsWith(res.Tuned, ms, opt.Cache, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	res.Errors = full
	return res, nil
}

// Triage returns the category with the highest mean error — the candidate
// for RefineComponent.
func Triage(es []BenchError) (ubench.Category, float64) {
	cats := CategoryErrors(es)
	var worst ubench.Category
	worstE := -1.0
	for _, c := range ubench.Categories {
		if e, ok := cats[c]; ok && e > worstE {
			worst = c
			worstE = e
		}
	}
	return worst, worstE
}
