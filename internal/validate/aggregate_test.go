package validate

import (
	"math"
	"strings"
	"testing"

	"racesim/internal/ubench"
)

func TestAggregatesEmptySlice(t *testing.T) {
	mean, err := MeanError(nil)
	if err != nil || mean != 0 {
		t.Errorf("MeanError(nil) = %v, %v; want 0, nil", mean, err)
	}
	if _, ok, err := MaxError(nil); ok || err != nil {
		t.Errorf("MaxError(nil) ok=%v err=%v; want false, nil", ok, err)
	}
	if cats := CategoryErrors(nil); len(cats) != 0 {
		t.Errorf("CategoryErrors(nil) = %v, want empty", cats)
	}
	if cat, e := Triage(nil); cat != "" || e != -1 {
		t.Errorf("Triage(nil) = %q, %v; want \"\", -1", cat, e)
	}
}

func TestAggregatesSingleBenchCategories(t *testing.T) {
	es := []BenchError{
		{Name: "MD", Category: ubench.CatMemory, Error: 0.30},
		{Name: "CCh", Category: ubench.CatControl, Error: 0.10},
		{Name: "EI", Category: ubench.CatExecution, Error: 0.20},
	}
	cats := CategoryErrors(es)
	if len(cats) != 3 {
		t.Fatalf("%d categories, want 3", len(cats))
	}
	// One bench per category: the category mean IS the bench error.
	for _, e := range es {
		if cats[e.Category] != e.Error {
			t.Errorf("%s mean %v, want %v", e.Category, cats[e.Category], e.Error)
		}
	}
	cat, worst := Triage(es)
	if cat != ubench.CatMemory || worst != 0.30 {
		t.Errorf("Triage = %q, %v; want memory, 0.30", cat, worst)
	}
}

func TestAggregatesSurfaceNonFinite(t *testing.T) {
	for name, bad := range map[string]float64{
		"NaN": math.NaN(), "+Inf": math.Inf(1), "-Inf": math.Inf(-1),
	} {
		es := []BenchError{
			{Name: "MD", Category: ubench.CatMemory, Error: 0.1},
			{Name: "SB", Category: ubench.CatStore, Error: bad},
		}
		if _, err := MeanError(es); err == nil || !strings.Contains(err.Error(), "SB") {
			t.Errorf("%s: MeanError err = %v, want error naming SB", name, err)
		}
		if _, _, err := MaxError(es); err == nil || !strings.Contains(err.Error(), "SB") {
			t.Errorf("%s: MaxError err = %v, want error naming SB", name, err)
		}
	}
}

func TestAggregatesNaNFreeOnFiniteInput(t *testing.T) {
	es := []BenchError{
		{Name: "a", Category: ubench.CatMemory, Error: 0},
		{Name: "b", Category: ubench.CatMemory, Error: 0.5},
	}
	mean, err := MeanError(es)
	if err != nil || math.IsNaN(mean) {
		t.Errorf("MeanError = %v, %v", mean, err)
	}
	worst, ok, err := MaxError(es)
	if err != nil || !ok || worst.Name != "b" {
		t.Errorf("MaxError = %+v, %v, %v", worst, ok, err)
	}
	for c, v := range CategoryErrors(es) {
		if math.IsNaN(v) {
			t.Errorf("category %s mean is NaN", c)
		}
	}
}
