package validate

import (
	"context"
	"runtime"

	"racesim/internal/hw"
	"racesim/internal/sim"
	"racesim/internal/simcache"
	"racesim/internal/ubench"
)

// IndirectParams are the search-space knobs that only exist once the model
// supports indirect-branch prediction (the Sec. IV-B fix).
var IndirectParams = map[string]bool{
	"branch.indirect":         true,
	"branch.indirect_entries": true,
	"branch.indirect_history": true,
}

// PrefetchParams are the extended prefetcher options added in step 6
// ("we provide the tuning algorithm with further options ... including
// stride and GHB prefetching").
var PrefetchParams = map[string]bool{
	"l1d.prefetch.kind": true, "l1d.prefetch.degree": true,
	"l1d.prefetch.distance": true, "l1d.prefetch.table": true,
	"l1d.prefetch.on_hit": true,
	"l2.prefetch.kind":    true, "l2.prefetch.degree": true,
	"l2.prefetch.distance": true, "l2.prefetch.table": true,
	"l2.prefetch.on_hit": true,
}

func union(ms ...map[string]bool) map[string]bool {
	out := map[string]bool{}
	for _, m := range ms {
		for k, v := range m {
			if v {
				out[k] = true
			}
		}
	}
	return out
}

// StageResult captures one stage of the staged validation narrative.
type StageResult struct {
	Name      string
	Config    sim.Config
	Errors    []BenchError
	MeanError float64
	// Ms are the board measurements the stage's errors were evaluated
	// against (the raw or re-measured suite) — the input a statistical
	// ValidationReport needs beyond the scalar errors.
	Ms []Measurement
}

// PipelineOptions configures the full staged run.
type PipelineOptions struct {
	// BudgetRound1/BudgetRound2 are irace budgets for the two tuning
	// rounds.
	BudgetRound1 int
	BudgetRound2 int
	Seed         int64
	UbenchScale  float64
	// Cache, when non-nil, memoizes every simulation of the pipeline
	// (tuning races and per-stage error evaluations).
	Cache *simcache.Cache
	// Parallelism bounds concurrent simulations (<=0: GOMAXPROCS).
	Parallelism int
	// Lanes caps how many candidate configurations a tuning round replays
	// per lane-batched column walk (0: simcache.DefaultLanes).
	Lanes int
	// Context, when non-nil, cancels the pipeline: checked between stages
	// and threaded into the tuning rounds (which check per race step).
	Context context.Context
	Log     func(format string, args ...any)
}

// ctxErr is the pipeline's cancellation probe (nil Context never cancels).
func (o PipelineOptions) ctxErr() error {
	if o.Context == nil {
		return nil
	}
	return o.Context.Err()
}

func (o PipelineOptions) withDefaults() PipelineOptions {
	if o.BudgetRound1 <= 0 {
		o.BudgetRound1 = 3000
	}
	if o.BudgetRound2 <= 0 {
		o.BudgetRound2 = 4000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// Pipeline is the complete Figure 1 flow for one core. Stages:
//
//  1. "untuned"  — public best-guess model (steps 1–3), buggy decoder, no
//     indirect predictor, uninitialized arrays.
//  2. "round1"   — irace over the restricted space (no indirect knobs, no
//     extended prefetchers): specification errors shrink, component
//     errors remain (step 4 + first pass of step 5).
//  3. "fixed"    — abstraction fixes applied (decoder bug fixed, indirect
//     predictor available, arrays initialized, prefetcher options added,
//     lmbench-seeded latencies) and a second tuning round (steps 6 + 4).
//
// The returned stages carry per-benchmark errors evaluated against
// measurements taken with the stage's own benchmark options, mirroring how
// the paper re-measured after initializing the arrays.
func Pipeline(board *hw.Board, public sim.Config, opt PipelineOptions) ([]StageResult, error) {
	o := opt.withDefaults()

	// Stage 1: untuned public model on raw (uninitialized-array) traces.
	rawMs, err := MeasureSuiteParallel(board, ubench.Options{Scale: o.UbenchScale}, o.Parallelism)
	if err != nil {
		return nil, err
	}
	untunedErrs, err := ErrorsWith(public, rawMs, o.Cache, o.Parallelism)
	if err != nil {
		return nil, err
	}
	untunedMean, err := MeanError(untunedErrs)
	if err != nil {
		return nil, err
	}
	stages := []StageResult{{
		Name: "untuned", Config: public,
		Errors: untunedErrs, MeanError: untunedMean, Ms: rawMs,
	}}
	o.Log("validate: untuned mean CPI error %.1f%%", stages[0].MeanError*100)

	// Stage 2: first tuning round over the restricted space.
	if err := o.ctxErr(); err != nil {
		return nil, err
	}
	round1, err := Tune(public, rawMs, TuneOptions{
		Budget:        o.BudgetRound1,
		Seed:          o.Seed,
		ExcludeParams: union(IndirectParams, PrefetchParams),
		Cache:         o.Cache,
		Parallelism:   o.Parallelism,
		Lanes:         o.Lanes,
		Context:       o.Context,
		Log:           o.Log,
	})
	if err != nil {
		return nil, err
	}
	round1Mean, err := MeanError(round1.Errors)
	if err != nil {
		return nil, err
	}
	stages = append(stages, StageResult{
		Name: "round1", Config: round1.Tuned,
		Errors: round1.Errors, MeanError: round1Mean, Ms: rawMs,
	})
	o.Log("validate: round-1 tuned mean CPI error %.1f%%", stages[1].MeanError*100)

	// Stage 3: abstraction fixes + re-measured (initialized) suite +
	// full-space tuning round.
	if err := o.ctxErr(); err != nil {
		return nil, err
	}
	fixedBase := round1.Tuned
	fixedBase.DecoderDepBug = false
	fixedBase, err = SeedLatencies(fixedBase, board)
	if err != nil {
		return nil, err
	}
	initMs, err := MeasureSuiteParallel(board, ubench.Options{Scale: o.UbenchScale, InitArrays: true}, o.Parallelism)
	if err != nil {
		return nil, err
	}
	round2, err := Tune(fixedBase, initMs, TuneOptions{
		Budget:      o.BudgetRound2,
		Seed:        o.Seed + 1,
		Weights:     CostWeights{BranchMPKI: 0.2},
		Cache:       o.Cache,
		Parallelism: o.Parallelism,
		Lanes:       o.Lanes,
		Context:     o.Context,
		Log:         o.Log,
	})
	if err != nil {
		return nil, err
	}
	round2Mean, err := MeanError(round2.Errors)
	if err != nil {
		return nil, err
	}
	stages = append(stages, StageResult{
		Name: "fixed", Config: round2.Tuned,
		Errors: round2.Errors, MeanError: round2Mean, Ms: initMs,
	})
	o.Log("validate: final tuned mean CPI error %.1f%%", stages[2].MeanError*100)
	return stages, nil
}
