// Package validate orchestrates the paper's validation methodology
// (Fig. 1): measure the targeted micro-benchmarks on the reference board
// once, plug lmbench latency estimates into the model, race the unknown
// parameters with irace against the measurements, inspect the remaining
// per-component error, apply abstraction-error fixes (indirect predictor
// support, the decoder bug, array initialization, extra prefetcher
// options), and tune again.
package validate

import (
	"context"
	"fmt"
	"math"

	"racesim/internal/core"
	"racesim/internal/hw"
	"racesim/internal/irace"
	"racesim/internal/lmbench"
	"racesim/internal/par"
	"racesim/internal/sim"
	"racesim/internal/simcache"
	"racesim/internal/trace"
	"racesim/internal/ubench"
)

// Measurement pairs one tuning instance with its board counters.
type Measurement struct {
	Bench    ubench.Bench
	Trace    *trace.Trace
	Counters hw.Counters
}

// MeasureSuite records every micro-benchmark once and measures it on the
// board — the one-time data collection of methodology step 4.
func MeasureSuite(board *hw.Board, opts ubench.Options) ([]Measurement, error) {
	return MeasureSuiteParallel(board, opts, 1)
}

// MeasureSuiteParallel is MeasureSuite over a bounded worker pool. Trace
// generation and board measurement are both deterministic per benchmark,
// so the result is identical to the sequential path, in suite order.
func MeasureSuiteParallel(board *hw.Board, opts ubench.Options, parallelism int) ([]Measurement, error) {
	benches := ubench.Suite()
	out := make([]Measurement, len(benches))
	err := par.ForEach(len(benches), parallelism, func(i int) error {
		b := benches[i]
		tr, err := b.Trace(opts)
		if err != nil {
			return err
		}
		c, err := board.Measure(tr)
		if err != nil {
			return err
		}
		out[i] = Measurement{Bench: b, Trace: tr, Counters: c}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CPIError is the relative CPI prediction error of cfg on one measurement.
func CPIError(cfg sim.Config, m Measurement) (float64, error) {
	return cpiError(cfg, m, nil)
}

// cpiError is CPIError through an optional shared simulation cache — the
// single definition of the error metric and its zero-CPI guard.
func cpiError(cfg sim.Config, m Measurement, cache *simcache.Cache) (float64, error) {
	res, err := cache.Run(cfg, m.Trace)
	if err != nil {
		return 0, err
	}
	if m.Counters.CPI == 0 {
		return 0, fmt.Errorf("validate: zero hardware CPI for %s", m.Trace.Name)
	}
	return math.Abs(res.CPI()-m.Counters.CPI) / m.Counters.CPI, nil
}

// BenchError is a named per-benchmark error.
type BenchError struct {
	Name     string
	Category ubench.Category
	Error    float64
}

// Errors evaluates cfg against every measurement.
func Errors(cfg sim.Config, ms []Measurement) ([]BenchError, error) {
	return ErrorsWith(cfg, ms, nil, 1)
}

// ErrorsWith is Errors through an optional shared simulation cache and a
// bounded worker pool. Results are in measurement order, identical to the
// sequential path.
func ErrorsWith(cfg sim.Config, ms []Measurement, cache *simcache.Cache, parallelism int) ([]BenchError, error) {
	out := make([]BenchError, len(ms))
	err := par.ForEach(len(ms), parallelism, func(i int) error {
		m := ms[i]
		e, err := cpiError(cfg, m, cache)
		if err != nil {
			return err
		}
		out[i] = BenchError{Name: m.Bench.Name, Category: m.Bench.Category, Error: e}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// checkFinite rejects NaN/Inf per-benchmark errors. A non-finite error
// means a degenerate simulation (or measurement) upstream; averaging
// over it would silently poison every downstream summary and report, so
// it surfaces as an explicit error naming the benchmark instead.
func checkFinite(es []BenchError) error {
	for _, e := range es {
		if math.IsNaN(e.Error) || math.IsInf(e.Error, 0) {
			return fmt.Errorf("validate: non-finite error %v for benchmark %s (%s)", e.Error, e.Name, e.Category)
		}
	}
	return nil
}

// MeanError averages the per-benchmark errors (0 for an empty slice).
// Any NaN/Inf entry is an explicit error, never averaged over.
func MeanError(es []BenchError) (float64, error) {
	if err := checkFinite(es); err != nil {
		return 0, err
	}
	if len(es) == 0 {
		return 0, nil
	}
	s := 0.0
	for _, e := range es {
		s += e.Error
	}
	return s / float64(len(es)), nil
}

// MaxError returns the worst per-benchmark error; ok is false for an
// empty slice. Any NaN/Inf entry is an explicit error — under NaN the
// maximum is not even well-defined (every comparison is false).
func MaxError(es []BenchError) (worst BenchError, ok bool, err error) {
	if err := checkFinite(es); err != nil {
		return BenchError{}, false, err
	}
	if len(es) == 0 {
		return BenchError{}, false, nil
	}
	worst = es[0]
	for _, e := range es[1:] {
		if e.Error > worst.Error {
			worst = e
		}
	}
	return worst, true, nil
}

// CategoryErrors groups mean error per benchmark category — the step 5
// triage that points at the mismodeled component.
func CategoryErrors(es []BenchError) map[ubench.Category]float64 {
	sums := map[ubench.Category]float64{}
	counts := map[ubench.Category]int{}
	for _, e := range es {
		sums[e.Category] += e.Error
		counts[e.Category]++
	}
	out := map[ubench.Category]float64{}
	for c, s := range sums {
		out[c] = s / float64(counts[c])
	}
	return out
}

// CostWeights shapes the tuning cost function. The default is plain CPI
// error; adding branch weight implements the step 5 recommendation to
// include component metrics when chasing a specific model error.
type CostWeights struct {
	BranchMPKI float64
}

// Evaluator adapts the suite + board measurements to irace. When Cache is
// non-nil, simulation results are memoized across races, tuning rounds and
// (with disk persistence) whole processes: a configuration the survivor
// set already measured on an instance is never simulated again.
type Evaluator struct {
	Base    sim.Config
	Ms      []Measurement
	Weights CostWeights
	Cache   *simcache.Cache
	// Lanes caps how many candidate configurations one CostBatch call
	// replays per column walk (0: simcache.DefaultLanes).
	Lanes int
}

// NumInstances implements irace.Evaluator.
func (e *Evaluator) NumInstances() int { return len(e.Ms) }

// cost scores a simulated result against one measurement; Cost and
// CostBatch share it so both paths compute identical numbers.
func (e *Evaluator) cost(res core.Result, m Measurement) float64 {
	cost := math.Abs(res.CPI()-m.Counters.CPI) / m.Counters.CPI
	if e.Weights.BranchMPKI > 0 {
		simMPKI := res.Branch.MPKI(res.Instructions)
		den := m.Counters.BranchMPKI
		if den < 1 {
			den = 1
		}
		cost += e.Weights.BranchMPKI * math.Abs(simMPKI-m.Counters.BranchMPKI) / den
	}
	return cost
}

// Cost implements irace.Evaluator: the error of the configuration obtained
// by overlaying the assignment on the base model, on one benchmark.
func (e *Evaluator) Cost(a irace.Assignment, instance int) float64 {
	cfg, err := sim.Apply(e.Base, a)
	if err != nil {
		return math.Inf(1) // invalid combinations lose every race
	}
	m := e.Ms[instance]
	res, err := e.Cache.Run(cfg, m.Trace)
	if err != nil {
		return math.Inf(1)
	}
	return e.cost(res, m)
}

// CostBatch implements irace.BatchEvaluator: the candidates that survive
// overlay validation are submitted to the cache in one batch, so the
// misses replay in lane-batched column walks over the instance's trace.
// Element i is exactly Cost(as[i], instance).
func (e *Evaluator) CostBatch(as []irace.Assignment, instance int) []float64 {
	out := make([]float64, len(as))
	cfgs := make([]sim.Config, 0, len(as))
	idx := make([]int, 0, len(as))
	for i, a := range as {
		cfg, err := sim.Apply(e.Base, a)
		if err != nil {
			out[i] = math.Inf(1) // invalid combinations lose every race
			continue
		}
		cfgs = append(cfgs, cfg)
		idx = append(idx, i)
	}
	m := e.Ms[instance]
	rs, errs := e.Cache.RunBatch(cfgs, m.Trace, simcache.BatchOptions{Lanes: e.Lanes})
	for j, i := range idx {
		if errs[j] != nil {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = e.cost(rs[j], m)
	}
	return out
}

// TuneOptions configures one tuning round.
type TuneOptions struct {
	Budget  int
	Seed    int64
	Weights CostWeights
	// ExcludeParams removes parameters from the search space (e.g. the
	// indirect-predictor knobs before the model supports them).
	ExcludeParams map[string]bool
	// Cache, when non-nil, memoizes simulation results across the race
	// (and across callers sharing the same cache).
	Cache *simcache.Cache
	// Parallelism bounds concurrent simulations (<=0: GOMAXPROCS).
	Parallelism int
	// Lanes caps how many candidates a batched evaluation replays per
	// column walk (0: simcache.DefaultLanes).
	Lanes int
	// Context, when non-nil, cancels the tuning round between race steps.
	Context context.Context
	Log     func(format string, args ...any)
}

// TuneResult is the outcome of one tuning round.
type TuneResult struct {
	Tuned  sim.Config
	Irace  *irace.Result
	Errors []BenchError
}

// Tune runs one irace round against the measurements and returns the tuned
// configuration (methodology step 4).
func Tune(base sim.Config, ms []Measurement, opt TuneOptions) (*TuneResult, error) {
	defs := sim.Params(base.Kind)
	var params []irace.Param
	for _, d := range defs {
		if opt.ExcludeParams[d.Name] {
			continue
		}
		params = append(params, irace.Param{Name: d.Name, Values: d.Values, Ordered: d.Ordered})
	}
	space, err := irace.NewSpace(params)
	if err != nil {
		return nil, err
	}
	eval := &Evaluator{Base: base, Ms: ms, Weights: opt.Weights, Cache: opt.Cache, Lanes: opt.Lanes}
	tuner, err := irace.New(space, eval, irace.Options{
		Budget:      opt.Budget,
		Seed:        opt.Seed,
		Parallelism: opt.Parallelism,
		Context:     opt.Context,
		Log:         opt.Log,
	})
	if err != nil {
		return nil, err
	}
	res, err := tuner.Run()
	if err != nil {
		return nil, err
	}
	tuned, err := sim.Apply(base, res.Best)
	if err != nil {
		return nil, err
	}
	tuned.Name = base.Name + "-tuned"
	errs, err := ErrorsWith(tuned, ms, opt.Cache, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	return &TuneResult{Tuned: tuned, Irace: res, Errors: errs}, nil
}

// SeedLatencies plugs lmbench estimates into a base configuration
// (methodology step 2), snapping to the discrete candidate values.
func SeedLatencies(base sim.Config, board *hw.Board) (sim.Config, error) {
	est, err := lmbench.Estimate(board)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := base
	cfg.Mem.L1D.HitLatency = lmbench.Snap(est.L1Cycles, []int{2, 3, 4})
	// The L2 chase observes L1-miss + L2-hit time; subtract the L1 part.
	cfg.Mem.L2.HitLatency = lmbench.Snap(est.L2Cycles-cfg.Mem.L1D.HitLatency, []int{9, 12, 15, 18, 21})
	cfg.Mem.DRAM.LatencyCycles = lmbench.Snap(est.MemCycles, []int{140, 160, 180, 200, 220, 240})
	return cfg, nil
}
