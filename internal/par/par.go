// Package par is the one bounded-worker-pool helper shared by every layer
// that fans independent simulation work out across cores (the experiment
// runner, the validation suite, the perturbation study). Keeping the pool
// in one place keeps its semantics — deterministic error selection,
// bounded concurrency, fail-fast dispatch, no result reordering —
// identical everywhere.
package par

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0..n-1) with at most parallelism concurrent calls
// (<=1 means sequential) and returns the lowest-indexed error, so the
// reported failure is deterministic regardless of completion order.
//
// Dispatch is fail-fast: once any call has returned an error, no further
// indices are started (calls already in flight run to completion). That
// cannot change which error is reported: indices are dispatched in
// ascending order, so by the time index i fails every index below i has
// already been dispatched, and the lowest-indexed error among dispatched
// calls is the same as over all of them.
func ForEach(n, parallelism int, fn func(i int) error) error {
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if failed.Load() {
			// A unit in flight (or finished) has already failed: launching
			// the remaining thousands of simulations would only burn CPU on
			// results the caller will discard.
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			if errs[i] = fn(i); errs[i] != nil {
				failed.Store(true)
			}
			<-sem
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachCtx is ForEach with cancellation: a cancelled context stops
// dispatch (in-flight calls still run to completion) and, when no call
// failed on its own, reports ctx.Err(). A context error never masks a
// real failure — the lowest-indexed fn error still wins — so callers see
// the same deterministic error ForEach promises, plus context.Canceled /
// DeadlineExceeded when cancellation is the only thing that went wrong.
// A nil ctx behaves like ForEach.
func ForEachCtx(ctx context.Context, n, parallelism int, fn func(i int) error) error {
	if ctx == nil {
		return ForEach(n, parallelism, fn)
	}
	err := ForEach(n, parallelism, func(i int) error {
		if err := ctx.Err(); err != nil {
			// Report as fn's error so fail-fast dispatch stops the pool, but
			// the sentinel is ctx.Err() itself, so errors.Is matches.
			return err
		}
		return fn(i)
	})
	if err != nil {
		return err
	}
	return ctx.Err()
}
