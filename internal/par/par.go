// Package par is the one bounded-worker-pool helper shared by every layer
// that fans independent simulation work out across cores (the experiment
// runner, the validation suite, the perturbation study). Keeping the pool
// in one place keeps its semantics — deterministic error selection,
// bounded concurrency, no result reordering — identical everywhere.
package par

import "sync"

// ForEach runs fn(0..n-1) with at most parallelism concurrent calls
// (<=1 means sequential) and returns the lowest-indexed error, so the
// reported failure is deterministic regardless of completion order.
func ForEach(n, parallelism int, fn func(i int) error) error {
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
			<-sem
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
