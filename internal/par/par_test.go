package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAll(t *testing.T) {
	for _, parallelism := range []int{1, 2, 8, 100} {
		var ran atomic.Int32
		err := ForEach(50, parallelism, func(i int) error {
			ran.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		if got := ran.Load(); got != 50 {
			t.Errorf("parallelism %d: ran %d of 50", parallelism, got)
		}
	}
}

func TestForEachLowestIndexedError(t *testing.T) {
	// Two failures; the lower-indexed one must be reported for any pool
	// width, regardless of completion order.
	for _, parallelism := range []int{1, 2, 7} {
		err := ForEach(20, parallelism, func(i int) error {
			if i == 3 || i == 11 {
				return fmt.Errorf("unit %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "unit 3" {
			t.Errorf("parallelism %d: got %v, want unit 3", parallelism, err)
		}
	}
}

func TestForEachStopsDispatchAfterError(t *testing.T) {
	// A fast-failing early unit must prevent most of the remaining units
	// from ever starting: with parallelism 2 and unit 0 failing
	// immediately, dispatch may overshoot by the in-flight window but must
	// not walk all 10k indices.
	const n = 10_000
	var started atomic.Int32
	boom := errors.New("boom")
	err := ForEach(n, 2, func(i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		// Keep the other worker busy long enough for the failure flag to
		// be observed while it is still in flight.
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if got := started.Load(); got > 100 {
		t.Errorf("%d of %d units started after a fast failure; dispatch did not stop", got, n)
	}
}

func TestForEachCtxNilContextIsPlainForEach(t *testing.T) {
	var ran atomic.Int32
	if err := ForEachCtx(nil, 10, 4, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d of 10", ran.Load())
	}
}

func TestForEachCtxCancellationStopsDispatch(t *testing.T) {
	// Cancel mid-run: dispatch must stop within the in-flight window and
	// the context error must surface.
	const n = 10_000
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	err := ForEachCtx(ctx, n, 2, func(i int) error {
		if started.Add(1) == 1 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := started.Load(); got > 100 {
		t.Errorf("%d of %d units started after cancellation", got, n)
	}
}

func TestForEachCtxRealErrorWinsOverCancellation(t *testing.T) {
	// A unit failure that also triggers cancellation (the caller tearing
	// down) must surface the unit's own error, not the secondary ctx error.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := ForEachCtx(ctx, 50, 2, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("got %v, want the unit's own error", err)
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEachCtx(ctx, 100, 4, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > 8 {
		t.Errorf("%d units ran under a pre-cancelled context", got)
	}
}
