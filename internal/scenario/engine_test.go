package scenario

import (
	"path/filepath"
	"testing"
	"time"

	"racesim/internal/expt"
	"racesim/internal/simcache"
)

// tinyOpts keeps engine tests at seconds scale.
func tinyOpts() expt.Options {
	return expt.Options{
		UbenchScale:    0.001,
		WorkloadEvents: 4_000,
		BudgetRound1:   200,
		BudgetRound2:   200,
	}
}

// testUnits expands a cheap three-unit selection (table1, table2, fig2):
// enough to make 2- and 3-way shards non-trivial, no full pipelines.
func testUnits(t *testing.T) []Unit {
	t.Helper()
	specs, err := Select(Registry(), "table1,table2,fig2")
	if err != nil {
		t.Fatal(err)
	}
	units, err := Expand(specs)
	if err != nil {
		t.Fatal(err)
	}
	return units
}

// TestShardedOutputByteIdentical is the fleet contract: for any shard
// count n, concatenating the rendered outputs of shards 1..n — each run
// in its own engine, as separate processes would — reproduces the
// unsharded artifact byte for byte.
func TestShardedOutputByteIdentical(t *testing.T) {
	units := testUnits(t)
	full, err := Run(units, RunOptions{Expt: tinyOpts()})
	if err != nil {
		t.Fatal(err)
	}
	want := RenderAll(full)
	if want == "" {
		t.Fatal("unsharded run rendered nothing")
	}
	for n := 2; n <= 3; n++ {
		var merged string
		for i := 1; i <= n; i++ {
			res, err := Run(Shard(units, i, n), RunOptions{Expt: tinyOpts()})
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, n, err)
			}
			merged += RenderAll(res)
		}
		if merged != want {
			t.Errorf("n=%d: merged shard output differs from unsharded run", n)
		}
	}
}

// TestLaneBatchedOutputByteIdentical is the lane-batching contract at the
// rendered-artifact layer: running the same sweep with simulations
// lane-batched through shared column walks reproduces the sequential
// artifact byte for byte.
func TestLaneBatchedOutputByteIdentical(t *testing.T) {
	units := testUnits(t)
	seq, err := Run(units, RunOptions{Expt: tinyOpts()})
	if err != nil {
		t.Fatal(err)
	}
	want := RenderAll(seq)
	if want == "" {
		t.Fatal("sequential run rendered nothing")
	}
	lanedOpts := tinyOpts()
	lanedOpts.Lanes = 8
	laned, err := Run(units, RunOptions{Expt: lanedOpts})
	if err != nil {
		t.Fatal(err)
	}
	if got := RenderAll(laned); got != want {
		t.Error("lane-batched sweep output differs from sequential run")
	}
}

// TestResumeReplaysFromCheckpoint runs a sweep with a checkpoint, then
// re-runs it cold against the same checkpoint file: the replay must
// render identically and answer (nearly) every simulation from the cache.
func TestResumeReplaysFromCheckpoint(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "checkpoint.json")
	units := testUnits(t)

	first, err := Run(units, RunOptions{
		Expt:            tinyOpts(),
		CachePath:       ck,
		Checkpoint:      true,
		CheckpointEvery: time.Hour, // unit-boundary checkpoints only: deterministic
	})
	if err != nil {
		t.Fatal(err)
	}

	cache := simcache.New()
	o := tinyOpts()
	o.Cache = cache
	second, err := Run(units, RunOptions{
		Expt:            o,
		CachePath:       ck,
		Checkpoint:      true,
		CheckpointEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if RenderAll(first) != RenderAll(second) {
		t.Error("resumed run rendered different output")
	}
	st := cache.Stats()
	if st.Misses != 0 {
		t.Errorf("resumed run missed %d simulations (hits %d): checkpoint incomplete", st.Misses, st.Hits)
	}
	if st.HitRate() < 0.95 {
		t.Errorf("resumed run hit rate %.1f%%, want >= 95%%", st.HitRate()*100)
	}
}

// TestPartialCheckpointResume interrupts a sweep after its first unit (by
// running only shard 1/3) and then runs the full sweep against the same
// checkpoint: the completed unit's simulations must replay as hits, and
// the final output must match an uncheckpointed full run.
func TestPartialCheckpointResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "checkpoint.json")
	units := testUnits(t)

	if _, err := Run(Shard(units, 1, 3), RunOptions{
		Expt: tinyOpts(), CachePath: ck, Checkpoint: true, CheckpointEvery: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}

	full, err := Run(units, RunOptions{Expt: tinyOpts()})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(units, RunOptions{
		Expt: tinyOpts(), CachePath: ck, Checkpoint: true, CheckpointEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if RenderAll(full) != RenderAll(resumed) {
		t.Error("resumed full sweep rendered different output than a fresh one")
	}
}

// TestEmptyShardRuns confirms a shard with no units (more shards than
// units) is a clean no-op, so fleet schedulers need no special casing.
func TestEmptyShardRuns(t *testing.T) {
	units := testUnits(t)
	empty := Shard(units, 1, 7) // 3 units over 7 shards: shard 1 gets none
	if len(empty) != 0 {
		t.Fatalf("expected an empty shard, got %d units", len(empty))
	}
	res, err := Run(empty, RunOptions{Expt: tinyOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 || RenderAll(res) != "" {
		t.Errorf("empty shard produced %d results", len(res))
	}
}

// TestExtraScenarioKinds runs tiny budget-sweep and noise-sweep scenarios
// end to end: every sweep point renders one experiment and the reported
// evaluation spend respects the exact budget cap.
func TestExtraScenarioKinds(t *testing.T) {
	specs := []Spec{
		{Name: "bs", Kind: KindBudgetSweep, Core: "a53", Budgets: []int{60, 120}},
		{Name: "ns", Kind: KindNoiseSweep, Core: "a53", NoiseLevels: []float64{0, 0.02}, Budget: 60},
	}
	units, err := Expand(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 4 {
		t.Fatalf("expanded %d units, want 4", len(units))
	}
	res, err := Run(units, RunOptions{Expt: tinyOpts()})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Experiment.ID != units[i].ID {
			t.Errorf("result %d has ID %s, want %s", i, r.Experiment.ID, units[i].ID)
		}
		if r.Experiment.Body == "" || r.Experiment.Measured == "" {
			t.Errorf("unit %s rendered an empty experiment", units[i].ID)
		}
	}
}
