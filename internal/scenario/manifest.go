package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// manifestFormat is bumped whenever the Spec schema changes incompatibly;
// mismatched manifests are rejected with an error (unlike the simulation
// cache, a manifest is authored intent, so silently ignoring it would be
// wrong).
const manifestFormat = 1

// Manifest is the on-disk scenario set.
type Manifest struct {
	Format    int    `json:"format"`
	Scenarios []Spec `json:"scenarios"`
}

// LoadManifest reads and validates a scenario manifest.
func LoadManifest(path string) ([]Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("scenario: manifest %s: %w", path, err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("scenario: manifest %s: format %d, want %d", path, m.Format, manifestFormat)
	}
	if err := checkUnique(m.Scenarios); err != nil {
		return nil, fmt.Errorf("scenario: manifest %s: %w", path, err)
	}
	for _, s := range m.Scenarios {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: manifest %s: %w", path, err)
		}
	}
	return m.Scenarios, nil
}

// SaveManifest writes the specs as a manifest, atomically (temp file in
// the same directory, then rename). Saving the built-in Registry gives a
// starting point for hand-edited sweeps.
func SaveManifest(path string, specs []Spec) error {
	if err := checkUnique(specs); err != nil {
		return err
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(Manifest{Format: manifestFormat, Scenarios: specs}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
