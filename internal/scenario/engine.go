package scenario

import (
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"racesim/internal/expt"
	"racesim/internal/hw"
	"racesim/internal/sim"
	"racesim/internal/simcache"
	"racesim/internal/validate"
)

// Runtime is what a unit runs against: the shared experiment context
// (tuned models, measurements, worker pool, simulation cache) plus
// scenario-only state such as the re-noised boards of a noise sweep.
type Runtime struct {
	Ctx *expt.Context

	noisy map[string]*hw.Board
}

func newRuntime(ctx *expt.Context) *Runtime {
	return &Runtime{Ctx: ctx, noisy: map[string]*hw.Board{}}
}

// board returns the reference board for a validated core name.
func (rt *Runtime) board(core string) *hw.Board {
	if core == "a72" {
		return rt.Ctx.Platform().A72
	}
	return rt.Ctx.Platform().A53
}

// public returns the untuned public model preset for a core.
func (rt *Runtime) public(core string) sim.Config {
	if core == "a72" {
		return sim.PublicA72()
	}
	return sim.PublicA53()
}

// stages runs (or reuses) the full validation pipeline for a core.
func (rt *Runtime) stages(core string) ([]validate.StageResult, error) {
	if core == "a72" {
		return rt.Ctx.StagesA72()
	}
	return rt.Ctx.StagesA53()
}

// noisyBoard rebuilds a core's board over the same hidden ground truth
// with a different measurement-noise amplitude, memoized per (core,
// level). The level is part of the board name, so its deterministic
// pseudo-noise stream differs per level, as re-measuring on a different
// physical board would.
func (rt *Runtime) noisyBoard(core string, level float64) (*hw.Board, error) {
	key := fmt.Sprintf("%s|%g", core, level)
	if b, ok := rt.noisy[key]; ok {
		return b, nil
	}
	base := rt.board(core)
	truth := hw.TrueA53()
	if core == "a72" {
		truth = hw.TrueA72()
	}
	b, err := hw.NewBoard(fmt.Sprintf("%s-noise-%g", base.Name, level), base.FreqGHz, truth, level)
	if err != nil {
		return nil, err
	}
	rt.noisy[key] = b
	return b, nil
}

// RunOptions configures one sweep execution.
type RunOptions struct {
	// Expt sizes the underlying experiment context (budgets, seeds,
	// scale, parallelism, cache, log).
	Expt expt.Options
	// CachePath, when set, is the simcache snapshot backing the sweep:
	// loaded (if present) before the first unit and saved after the
	// last, so repeated sweeps are warm across processes.
	CachePath string
	// Checkpoint additionally saves the cache after *every* unit and on
	// a periodic background timer, making CachePath a resume checkpoint:
	// a sweep killed mid-run and restarted with the same CachePath
	// replays completed work at ~100% cache hits and continues the
	// interrupted unit from its last saved simulations.
	Checkpoint bool
	// CheckpointEvery is the background checkpoint period (default 10s);
	// only meaningful with Checkpoint. Unit boundaries always checkpoint
	// regardless.
	CheckpointEvery time.Duration
	// Log receives progress lines (never rendered output).
	Log func(format string, args ...any)
}

// UnitResult pairs a unit with its rendered experiment.
type UnitResult struct {
	Unit       Unit
	Experiment expt.Experiment
}

// Run executes the units in order against one shared runtime and returns
// their results in the same order. Rendered output depends only on the
// unit list and the experiment options — never on parallelism, cache
// warmth or checkpointing — which is what makes shard merging and resume
// byte-exact.
func Run(units []Unit, opts RunOptions) ([]UnitResult, error) {
	log := opts.Log
	if log == nil {
		log = func(string, ...any) {}
	}
	eo := opts.Expt
	if eo.Cache == nil && opts.CachePath != "" {
		eo.Cache = simcache.New()
	}
	if opts.CachePath != "" {
		n, rejected, err := eo.Cache.LoadChecked(opts.CachePath)
		var stale *simcache.StaleFormatError
		switch {
		case errors.As(err, &stale):
			log("scenario: ignoring snapshot %s (format %d); starting cold", stale.Path, stale.Format)
		case err != nil:
			return nil, err
		default:
			if rejected > 0 {
				log("scenario: %s: rejected %d corrupted cache entries", opts.CachePath, rejected)
			}
			log("scenario: cache: loaded %d entries from %s", n, opts.CachePath)
		}
	}
	ctx, err := expt.NewContext(eo)
	if err != nil {
		return nil, err
	}
	rt := newRuntime(ctx)
	cache := ctx.Runner().Cache()

	// Background checkpointing bounds how much simulation work a kill can
	// lose to one period, even inside a long unit (a validation pipeline
	// is minutes of tuning races behind a single unit), and a polite
	// interrupt (Ctrl-C, SIGTERM from a fleet scheduler) flushes a final
	// checkpoint before exiting, losing nothing completed. Both are
	// installed only here, *after* the load: a handler armed earlier
	// could overwrite a populated checkpoint with an empty cache.
	// SaveFile is atomic (temp file + rename) and the cache is
	// concurrency-safe, so the timer, the signal flush and unit-boundary
	// saves may race harmlessly.
	if opts.Checkpoint && opts.CachePath != "" {
		every := opts.CheckpointEvery
		if every <= 0 {
			every = 10 * time.Second
		}
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := cache.SaveFile(opts.CachePath); err != nil {
						log("scenario: background checkpoint %s: %v", opts.CachePath, err)
					}
				case <-sigCh:
					if err := cache.SaveFile(opts.CachePath); err != nil {
						fmt.Fprintln(os.Stderr, "scenario: interrupt checkpoint:", err)
					} else {
						fmt.Fprintf(os.Stderr, "scenario: interrupted; checkpointed %d entries to %s\n",
							cache.Stats().Entries, opts.CachePath)
					}
					os.Exit(130)
				case <-stop:
					return
				}
			}
		}()
		defer func() {
			signal.Stop(sigCh)
			close(stop)
			<-done
		}()
	}

	if len(units) > 0 {
		if arts := Artifacts(units); len(arts) > 0 {
			log("scenario: %d units, shared artifacts: %s", len(units), strings.Join(arts, " "))
		} else {
			log("scenario: %d units", len(units))
		}
	}
	results := make([]UnitResult, 0, len(units))
	for k, u := range units {
		// Cancellation boundary: a cancelled sweep stops before the next
		// unit (and the runner stops its in-flight batch via the same
		// context), leaving completed units checkpointed as usual.
		if cctx := opts.Expt.Context; cctx != nil && cctx.Err() != nil {
			return nil, cctx.Err()
		}
		log("scenario: [%d/%d] %s", k+1, len(units), u.ID)
		start := time.Now()
		e, err := u.Run(rt)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", u.ID, err)
		}
		e.Elapsed = time.Since(start)
		log("scenario: [%d/%d] %s done in %v", k+1, len(units), u.ID, e.Elapsed.Round(time.Millisecond))
		results = append(results, UnitResult{Unit: u, Experiment: e})
		if opts.Checkpoint && opts.CachePath != "" {
			if err := cache.SaveFile(opts.CachePath); err != nil {
				return nil, fmt.Errorf("scenario: checkpoint %s: %w", opts.CachePath, err)
			}
			log("scenario: checkpoint %s (%d entries)", opts.CachePath, cache.Stats().Entries)
		}
	}
	if opts.CachePath != "" && !opts.Checkpoint {
		if err := cache.SaveFile(opts.CachePath); err != nil {
			return nil, fmt.Errorf("scenario: save %s: %w", opts.CachePath, err)
		}
		log("scenario: cache: saved %d entries to %s", cache.Stats().Entries, opts.CachePath)
	}
	return results, nil
}

// RenderAll concatenates the rendered experiments in unit order — the
// sweep's artifact. Concatenating the RenderAll outputs of shards 1..n of
// the same unit list reproduces the unsharded artifact byte for byte.
func RenderAll(results []UnitResult) string {
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.Experiment.Render())
		b.WriteByte('\n')
	}
	return b.String()
}
