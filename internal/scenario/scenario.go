// Package scenario turns every experiment this repository can run into a
// declarative, manifest-driven unit of work. A scenario is a named spec —
// (board/platform × workload or micro-benchmark suite × tuner options ×
// analysis stage) — that expands into a deterministic, dependency-annotated
// list of runnable units. The expansion order is globally fixed, which is
// what makes fleet features sound:
//
//   - sharding: Shard(units, i, n) deterministically partitions the unit
//     list into contiguous blocks, so the concatenated outputs of shards
//     1/n..n/n are byte-identical to an unsharded run;
//   - resume: the engine checkpoints the shared simulation cache
//     (internal/simcache) after every unit, so a killed sweep restarted
//     with the same checkpoint replays at ~100% cache hits;
//   - manifests: scenario specs round-trip through JSON (LoadManifest /
//     SaveManifest), so adding a scenario to a sweep is data, not code.
//
// The registry covers the paper's own tables and figures (Table I/II,
// Fig. 2, Figs. 4–8, the staged-validation narrative) plus cross-product
// scenarios the paper's fixed pipeline cannot express: tune-on-one-core /
// validate-on-the-other transfer studies, tuner budget-sweep ablations,
// and measurement-noise sweeps.
package scenario

import (
	"fmt"
	"regexp"
	"sort"
)

// Kinds of analysis a scenario can request. The paper kinds map 1:1 onto
// expt.Context experiments; the extra kinds are implemented in extra.go.
const (
	KindTable1      = "table1"
	KindTable2      = "table2"
	KindFig2        = "fig2"
	KindFig4        = "fig4"
	KindFig5        = "fig5"
	KindFig6        = "fig6"
	KindFig7        = "fig7"
	KindFig8        = "fig8"
	KindStaged      = "staged"
	KindTransfer    = "transfer"     // tune on TuneCore, validate on EvalCore
	KindBudgetSweep = "budget-sweep" // one tuning round per Budgets entry
	KindNoiseSweep  = "noise-sweep"  // re-measure + tune per NoiseLevels entry
)

// paperKinds are the experiments of the paper itself, in paper order; the
// reserved scenario pattern "all" selects exactly these, so `-scenario all`
// output matches the classic `-run all` byte for byte.
var paperKinds = []string{
	KindTable1, KindTable2, KindFig2, KindFig4, KindFig5,
	KindFig6, KindFig7, KindFig8, KindStaged,
}

// Spec is one declarative scenario. Zero-valued fields inherit the sweep's
// global options (budgets, seed) at expansion time.
type Spec struct {
	// Name uniquely identifies the scenario; it is the `-scenario`
	// selector and the rendered experiment ID, so it is restricted to
	// glob-safe characters (lowercase letters, digits, ., -, _).
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Kind selects the analysis stage (one of the Kind* constants).
	Kind string `json:"kind"`
	// Core selects the board for single-board kinds: "a53" or "a72".
	Core string `json:"core,omitempty"`
	// TuneCore/EvalCore are the transfer kind's cross product: the model
	// is tuned against TuneCore's measurements and validated on
	// EvalCore's held-out workloads.
	TuneCore string `json:"tune_core,omitempty"`
	EvalCore string `json:"eval_core,omitempty"`
	// Budget overrides the irace budget for this scenario's tuning
	// rounds (0 inherits the sweep default).
	Budget int `json:"budget,omitempty"`
	// Budgets are the sweep points of a budget-sweep scenario, one unit
	// each.
	Budgets []int `json:"budgets,omitempty"`
	// NoiseLevels are the measurement-noise amplitudes of a noise-sweep
	// scenario, one unit each (relative, 0.01 = ±1%; max 0.2).
	NoiseLevels []float64 `json:"noise_levels,omitempty"`
	// SeedOffset decorrelates this scenario's tuner seed from the sweep
	// seed (unit seed = sweep seed + SeedOffset).
	SeedOffset int64 `json:"seed_offset,omitempty"`
}

var nameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]*$`)

func validCore(c string) bool { return c == "a53" || c == "a72" }

// Validate checks the spec is well-formed before expansion.
func (s Spec) Validate() error {
	if !nameRe.MatchString(s.Name) {
		return fmt.Errorf("scenario: invalid name %q (want [a-z0-9._-]+)", s.Name)
	}
	switch s.Kind {
	case KindTable1, KindTable2, KindFig2, KindFig4, KindFig5,
		KindFig6, KindFig7, KindFig8, KindStaged:
		// Analysis stage fully determined by the kind.
	case KindTransfer:
		if !validCore(s.TuneCore) || !validCore(s.EvalCore) {
			return fmt.Errorf("scenario %s: transfer needs tune_core and eval_core in {a53, a72}", s.Name)
		}
		if s.TuneCore == s.EvalCore {
			return fmt.Errorf("scenario %s: transfer with tune_core == eval_core is the plain validation pipeline", s.Name)
		}
	case KindBudgetSweep:
		if !validCore(s.Core) {
			return fmt.Errorf("scenario %s: budget-sweep needs core in {a53, a72}", s.Name)
		}
		if len(s.Budgets) == 0 {
			return fmt.Errorf("scenario %s: budget-sweep needs at least one budget", s.Name)
		}
		for _, b := range s.Budgets {
			if b <= 0 {
				return fmt.Errorf("scenario %s: non-positive budget %d", s.Name, b)
			}
		}
	case KindNoiseSweep:
		if !validCore(s.Core) {
			return fmt.Errorf("scenario %s: noise-sweep needs core in {a53, a72}", s.Name)
		}
		if len(s.NoiseLevels) == 0 {
			return fmt.Errorf("scenario %s: noise-sweep needs at least one noise level", s.Name)
		}
		for _, v := range s.NoiseLevels {
			if v < 0 || v > 0.2 {
				return fmt.Errorf("scenario %s: noise level %v outside [0, 0.2]", s.Name, v)
			}
		}
	default:
		return fmt.Errorf("scenario %s: unknown kind %q", s.Name, s.Kind)
	}
	if s.Budget < 0 {
		return fmt.Errorf("scenario %s: negative budget", s.Name)
	}
	return nil
}

// Registry returns the built-in scenarios: the paper set in paper order,
// then the cross-product extras. The slice is freshly allocated; callers
// may append or override (see Merge).
func Registry() []Spec {
	specs := []Spec{
		{Name: "table1", Kind: KindTable1, Description: "Table I: the micro-benchmark suite and dynamic instruction counts"},
		{Name: "table2", Kind: KindTable2, Description: "Table II: synthetic SPEC CPU2017 region workloads"},
		{Name: "fig2", Kind: KindFig2, Core: "a53", Description: "iterated-racing elimination dynamics on the A53"},
		{Name: "fig4", Kind: KindFig4, Core: "a53", Description: "micro-benchmark CPI error, untuned vs tuned (A53)"},
		{Name: "fig5", Kind: KindFig5, Core: "a53", Description: "SPEC CPI error of the tuned in-order model"},
		{Name: "fig6", Kind: KindFig6, Core: "a72", Description: "SPEC CPI error of the tuned out-of-order model"},
		{Name: "fig7", Kind: KindFig7, Core: "a53", Description: "close-to-optimum but inaccurate A53 model"},
		{Name: "fig8", Kind: KindFig8, Core: "a72", Description: "close-to-optimum but inaccurate A72 model"},
		{Name: "staged", Kind: KindStaged, Description: "mean error per validation stage (Sec. IV-B)"},
		{Name: "transfer-a53-to-a72", Kind: KindTransfer, TuneCore: "a53", EvalCore: "a72",
			Description: "model tuned on the A53, validated on the A72's held-out workloads"},
		{Name: "transfer-a72-to-a53", Kind: KindTransfer, TuneCore: "a72", EvalCore: "a53",
			Description: "model tuned on the A72, validated on the A53's held-out workloads"},
		{Name: "budget-sweep-a53", Kind: KindBudgetSweep, Core: "a53",
			Budgets:     []int{300, 600, 1200, 2400},
			Description: "tuned A53 suite error as a function of the racing budget"},
		{Name: "noise-sweep-a53", Kind: KindNoiseSweep, Core: "a53",
			NoiseLevels: []float64{0, 0.01, 0.03, 0.05}, Budget: 600, SeedOffset: 900,
			Description: "tuning robustness under increasing measurement noise"},
	}
	return specs
}

// Merge overlays extra specs (e.g. from a manifest) on base: a spec whose
// name already exists replaces it in place, new names append in order.
func Merge(base, extra []Spec) []Spec {
	out := append([]Spec(nil), base...)
	idx := map[string]int{}
	for i, s := range out {
		idx[s.Name] = i
	}
	for _, s := range extra {
		if i, ok := idx[s.Name]; ok {
			out[i] = s
			continue
		}
		idx[s.Name] = len(out)
		out = append(out, s)
	}
	return out
}

// checkUnique rejects duplicate scenario names.
func checkUnique(specs []Spec) error {
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			return fmt.Errorf("scenario: duplicate name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// PaperSet returns the names of the scenarios reproducing the paper's own
// evaluation, in paper order — what the reserved pattern "all" selects.
func PaperSet(specs []Spec) []string {
	inPaper := map[string]bool{}
	for _, k := range paperKinds {
		inPaper[k] = true
	}
	var names []string
	for _, s := range specs {
		if inPaper[s.Kind] {
			names = append(names, s.Name)
		}
	}
	// Paper order, not registry order, in case a manifest reordered them.
	kindPos := map[string]int{}
	for i, k := range paperKinds {
		kindPos[k] = i
	}
	byName := map[string]Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	sort.SliceStable(names, func(a, b int) bool {
		return kindPos[byName[names[a]].Kind] < kindPos[byName[names[b]].Kind]
	})
	return names
}
