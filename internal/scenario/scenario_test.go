package scenario

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"racesim/internal/expt"
)

func TestRegistryValidAndUnique(t *testing.T) {
	specs := Registry()
	if err := checkUnique(specs); err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("registry spec %s: %v", s.Name, err)
		}
	}
	if got := PaperSet(specs); !reflect.DeepEqual(got, expt.IDs()) {
		t.Errorf("paper set %v, want the expt experiment IDs %v", got, expt.IDs())
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Name: "", Kind: KindTable1},
		{Name: "Has Space", Kind: KindTable1},
		{Name: "x", Kind: "nope"},
		{Name: "x", Kind: KindTransfer, TuneCore: "a53", EvalCore: "a53"},
		{Name: "x", Kind: KindTransfer, TuneCore: "a53", EvalCore: "m1"},
		{Name: "x", Kind: KindBudgetSweep, Core: "a53"},
		{Name: "x", Kind: KindBudgetSweep, Core: "a53", Budgets: []int{100, 0}},
		{Name: "x", Kind: KindNoiseSweep, Core: "a53"},
		{Name: "x", Kind: KindNoiseSweep, Core: "a53", NoiseLevels: []float64{0.5}},
		{Name: "x", Kind: KindFig2, Budget: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
}

func TestExpandDeterministic(t *testing.T) {
	a, err := Expand(Registry())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(Registry())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("expansions differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Index != i || b[i].Index != i {
			t.Errorf("unit %d: %q/%d vs %q/%d", i, a[i].ID, a[i].Index, b[i].ID, b[i].Index)
		}
		if !reflect.DeepEqual(a[i].Deps, b[i].Deps) {
			t.Errorf("unit %s deps differ: %v vs %v", a[i].ID, a[i].Deps, b[i].Deps)
		}
	}
	// The paper scenarios expand to exactly the classic experiment list.
	for i, id := range expt.IDs() {
		if a[i].ID != id {
			t.Errorf("unit %d = %s, want %s", i, a[i].ID, id)
		}
	}
	if _, err := Expand([]Spec{{Name: "d", Kind: KindTable1}, {Name: "d", Kind: KindTable2}}); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestShardPartition(t *testing.T) {
	units, err := Expand(Registry())
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 5; n++ {
		var union []Unit
		for i := 1; i <= n; i++ {
			union = append(union, Shard(units, i, n)...)
		}
		if len(union) != len(units) {
			t.Fatalf("n=%d: union has %d units, want %d", n, len(union), len(units))
		}
		for k := range units {
			if union[k].ID != units[k].ID {
				t.Errorf("n=%d: unit %d = %s, want %s (order not preserved)", n, k, union[k].ID, units[k].ID)
			}
		}
	}
	// More shards than units: every unit still lands in exactly one shard.
	small := units[:3]
	var union []Unit
	for i := 1; i <= 7; i++ {
		union = append(union, Shard(small, i, 7)...)
	}
	if len(union) != len(small) {
		t.Errorf("oversharded union has %d units, want %d", len(union), len(small))
	}
}

func TestParseShard(t *testing.T) {
	if i, n, err := ParseShard(""); err != nil || i != 1 || n != 1 {
		t.Errorf("empty shard: %d/%d, %v", i, n, err)
	}
	if i, n, err := ParseShard("2/3"); err != nil || i != 2 || n != 3 {
		t.Errorf("2/3: %d/%d, %v", i, n, err)
	}
	// Invalid specs are rejected with a clear error, including trailing
	// garbage the historical Sscanf parser silently ignored ("1/2/3" used
	// to run shard 1/2).
	for _, s := range []string{
		"0/3", "4/3", "x/3", "3", "-1/2", "1/-2", "1/0",
		"1/2/3", "1/2x", "1x/2", " 1/2", "1/ 2", "/2", "1/", "/",
		"9999999999999999999999/2",
	} {
		if _, _, err := ParseShard(s); err == nil {
			t.Errorf("shard %q accepted", s)
		}
	}
}

// fakeUnits builds a synthetic unit list of the given size (no runners —
// these tests only exercise partitioning).
func fakeUnits(m int) []Unit {
	units := make([]Unit, m)
	for i := range units {
		units[i] = Unit{ID: "u" + string(rune('a'+i)), Index: i}
	}
	return units
}

func TestShardMoreShardsThanUnits(t *testing.T) {
	units := fakeUnits(3)
	for n := 4; n <= 10; n++ {
		seen := map[string]int{}
		for i := 1; i <= n; i++ {
			sh := Shard(units, i, n)
			if len(sh) > 1 {
				t.Errorf("n=%d shard %d has %d units, want <=1 when n > len", n, i, len(sh))
			}
			for _, u := range sh {
				seen[u.ID]++
			}
		}
		if len(seen) != len(units) {
			t.Errorf("n=%d: %d distinct units across shards, want %d", n, len(seen), len(units))
		}
		for id, c := range seen {
			if c != 1 {
				t.Errorf("n=%d: unit %s appears %d times", n, id, c)
			}
		}
	}
	// Degenerate inputs: an empty unit list shards into n empty shards.
	for i := 1; i <= 3; i++ {
		if sh := Shard(nil, i, 3); len(sh) != 0 {
			t.Errorf("empty list shard %d/3 has %d units", i, len(sh))
		}
	}
}

// TestShardConcatenationProperty is the fleet contract at the unit-list
// level: for every list size and shard count, concatenating shards
// 1..n reproduces the original list exactly — same units, same order,
// each shard contiguous. Rendered outputs concatenate byte-identically
// because RenderAll is a per-unit fold over this order (CI's smoke jobs
// check the rendered bytes end to end).
func TestShardConcatenationProperty(t *testing.T) {
	for m := 0; m <= 9; m++ {
		units := fakeUnits(m)
		for n := 1; n <= 12; n++ {
			var concat []Unit
			for i := 1; i <= n; i++ {
				sh := Shard(units, i, n)
				// Contiguity: each shard is a subslice starting where the
				// previous one ended.
				if len(sh) > 0 && sh[0].Index != len(concat) {
					t.Fatalf("m=%d n=%d shard %d starts at index %d, want %d",
						m, n, i, sh[0].Index, len(concat))
				}
				concat = append(concat, sh...)
			}
			if len(concat) != m {
				t.Fatalf("m=%d n=%d: concatenation has %d units", m, n, len(concat))
			}
			for k := range concat {
				if concat[k].ID != units[k].ID {
					t.Fatalf("m=%d n=%d: unit %d is %s, want %s", m, n, k, concat[k].ID, units[k].ID)
				}
			}
		}
	}
}

func TestFilterUnits(t *testing.T) {
	units, err := Expand(Registry())
	if err != nil {
		t.Fatal(err)
	}
	// Selection order does not matter; expansion order is preserved.
	got, err := FilterUnits(units, []string{"fig4", "table1", "budget-sweep-a53/budget=600"})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"table1", "fig4", "budget-sweep-a53/budget=600"}
	if len(got) != len(wantIDs) {
		t.Fatalf("filtered %d units, want %d", len(got), len(wantIDs))
	}
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Errorf("unit %d = %s, want %s", i, got[i].ID, id)
		}
	}
	if _, err := FilterUnits(units, []string{"table1", "no-such-unit"}); err == nil {
		t.Error("unknown unit id accepted")
	}
	if _, err := FilterUnits(units, []string{" ", ""}); err == nil {
		t.Error("empty unit selection accepted")
	}
}

func TestSelect(t *testing.T) {
	specs := Registry()
	all, err := Select(specs, "all")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(Names(all), expt.IDs()) {
		t.Errorf("'all' selected %v", Names(all))
	}
	tr, err := Select(specs, "transfer-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 {
		t.Errorf("transfer-* selected %v", Names(tr))
	}
	// Dedup: fig4 appears once even if matched twice.
	both, err := Select(specs, "fig4,all")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(both); n != len(expt.IDs()) {
		t.Errorf("fig4,all selected %d specs: %v", n, Names(both))
	}
	if both[0].Name != "fig4" {
		t.Errorf("pattern order not respected: first is %s", both[0].Name)
	}
	if _, err := Select(specs, "nope-*"); err == nil {
		t.Error("unmatched pattern accepted")
	}
	if _, err := Select(specs, ""); err == nil {
		t.Error("empty selection accepted")
	}
}

func TestMerge(t *testing.T) {
	base := Registry()
	override := Spec{Name: "fig2", Kind: KindFig2, Core: "a53", Description: "patched"}
	added := Spec{Name: "night-sweep", Kind: KindBudgetSweep, Core: "a72", Budgets: []int{100}}
	merged := Merge(base, []Spec{override, added})
	if len(merged) != len(base)+1 {
		t.Fatalf("merged %d specs, want %d", len(merged), len(base)+1)
	}
	for i, s := range merged[:len(base)] {
		if s.Name != base[i].Name {
			t.Errorf("merge reordered: %d = %s, want %s", i, s.Name, base[i].Name)
		}
	}
	if merged[2].Description != "patched" {
		t.Error("override did not replace in place")
	}
	if merged[len(merged)-1].Name != "night-sweep" {
		t.Error("new spec not appended")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.json")
	specs := Registry()
	if err := SaveManifest(path, specs); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, specs) {
		t.Errorf("round trip changed specs:\n%+v\nvs\n%+v", loaded, specs)
	}
	if err := SaveManifest(filepath.Join(dir, "bad.json"), []Spec{{Name: "x", Kind: "nope"}}); err == nil {
		t.Error("invalid spec saved")
	}
	if _, err := LoadManifest(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing manifest loaded")
	}
}

func TestArtifacts(t *testing.T) {
	units, err := Expand(Registry())
	if err != nil {
		t.Fatal(err)
	}
	arts := Artifacts(units)
	joined := strings.Join(arts, " ")
	for _, want := range []string{"stages:a53", "stages:a72", "spec:a53", "spec:a72", "measure:a53"} {
		if !strings.Contains(joined, want) {
			t.Errorf("artifacts %v missing %s", arts, want)
		}
	}
	for i := 1; i < len(arts); i++ {
		if arts[i-1] >= arts[i] {
			t.Errorf("artifacts not sorted: %v", arts)
		}
	}
}
