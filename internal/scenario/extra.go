package scenario

import (
	"fmt"

	"racesim/internal/expt"
	"racesim/internal/validate"
)

// transferUnit builds the cross-core transfer study: tune a model against
// one core's micro-benchmark measurements (reusing the full validation
// pipeline), then validate it on the *other* core's held-out SPEC
// workloads, next to the natively tuned model's error on the same
// workloads. The gap quantifies how much of the tuned accuracy is the
// methodology and how much is fitting one specific core.
func transferUnit(sp Spec) Unit {
	return Unit{
		ID:       sp.Name,
		Scenario: sp.Name,
		Step:     sp.Kind,
		Deps: []string{
			"stages:" + sp.TuneCore, "stages:" + sp.EvalCore, "spec:" + sp.EvalCore,
		},
		run: func(rt *Runtime) (expt.Experiment, error) {
			tuneStages, err := rt.stages(sp.TuneCore)
			if err != nil {
				return expt.Experiment{}, err
			}
			evalStages, err := rt.stages(sp.EvalCore)
			if err != nil {
				return expt.Experiment{}, err
			}
			transferred := tuneStages[len(tuneStages)-1].Config
			native := evalStages[len(evalStages)-1].Config
			ws, err := rt.Ctx.Spec(rt.board(sp.EvalCore))
			if err != nil {
				return expt.Experiment{}, err
			}
			errs, mean, worst, err := rt.Ctx.SpecErrors(transferred, ws)
			if err != nil {
				return expt.Experiment{}, err
			}
			_, nativeMean, _, err := rt.Ctx.SpecErrors(native, ws)
			if err != nil {
				return expt.Experiment{}, err
			}
			title := fmt.Sprintf("Transfer: %s-tuned model on %s workloads", sp.TuneCore, sp.EvalCore)
			t := &expt.Table{Title: title, Headers: []string{"bench", "CPI error", ""}}
			maxV := 0.0
			var names []string
			for _, w := range ws {
				names = append(names, w.Name)
				if errs[w.Name] > maxV {
					maxV = errs[w.Name]
				}
			}
			for _, n := range names {
				t.AddRow(n, expt.Pct(errs[n]), expt.Bar(errs[n], maxV, 40))
			}
			return expt.Experiment{
				ID:    sp.Name,
				Title: title,
				Paper: "beyond the paper: the pipeline tunes and validates one core at a time",
				Measured: fmt.Sprintf("transferred average %s, worst %s (natively tuned %s model: %s)",
					expt.Pct(mean), expt.Pct(worst), sp.EvalCore, expt.Pct(nativeMean)),
				Body: t.Render(),
			}, nil
		},
	}
}

// budgetSweepUnits expands a budget-sweep scenario into one tuning round
// per budget point, each reporting the exact evaluation spend (now capped
// at the budget by the irace accounting fix) and the resulting suite
// error — the ablation behind "how much racing buys at which budget".
func budgetSweepUnits(sp Spec) []Unit {
	units := make([]Unit, 0, len(sp.Budgets))
	for _, budget := range sp.Budgets {
		budget := budget
		units = append(units, Unit{
			ID:       fmt.Sprintf("%s/budget=%d", sp.Name, budget),
			Scenario: sp.Name,
			Step:     fmt.Sprintf("budget=%d", budget),
			Deps:     []string{"measure:" + sp.Core},
			run: func(rt *Runtime) (expt.Experiment, error) {
				ms, err := rt.Ctx.Measurements(rt.board(sp.Core))
				if err != nil {
					return expt.Experiment{}, err
				}
				o := rt.Ctx.Options()
				res, err := validate.Tune(rt.public(sp.Core), ms, validate.TuneOptions{
					Budget:      budget,
					Seed:        o.Seed + sp.SeedOffset,
					Cache:       rt.Ctx.Runner().Cache(),
					Parallelism: rt.Ctx.Runner().Parallelism(),
					Lanes:       rt.Ctx.Runner().Lanes(),
					Log:         o.Log,
				})
				if err != nil {
					return expt.Experiment{}, err
				}
				id := fmt.Sprintf("%s/budget=%d", sp.Name, budget)
				title := fmt.Sprintf("Budget sweep (%s): one racing round at budget %d", sp.Core, budget)
				t := &expt.Table{Title: title, Headers: []string{"metric", "value"}}
				t.AddRow("budget", fmt.Sprintf("%d", budget))
				t.AddRow("evaluations used", fmt.Sprintf("%d", res.Irace.Evaluations))
				t.AddRow("iterations", fmt.Sprintf("%d", len(res.Irace.Iterations)))
				t.AddRow("best race cost", fmt.Sprintf("%.4f", res.Irace.BestCost))
				mean, err := validate.MeanError(res.Errors)
				if err != nil {
					return expt.Experiment{}, err
				}
				t.AddRow("mean suite error", expt.Pct(mean))
				worst, _, err := validate.MaxError(res.Errors)
				if err != nil {
					return expt.Experiment{}, err
				}
				t.AddRow("worst bench", fmt.Sprintf("%s (%s)", worst.Name, expt.Pct(worst.Error)))
				return expt.Experiment{
					ID:    id,
					Title: title,
					Paper: "beyond the paper: the paper fixes the budget per round (up to 100k trials)",
					Measured: fmt.Sprintf("%d/%d evaluations, mean suite error %s",
						res.Irace.Evaluations, budget, expt.Pct(mean)),
					Body: t.Render(),
				}, nil
			},
		})
	}
	return units
}

// noiseSweepUnits expands a noise-sweep scenario into one
// measure-then-tune pass per noise amplitude: the board is rebuilt with
// the scenario's noise level over the same hidden ground truth, the suite
// is re-measured, and one tuning round runs against the noisier
// counters. Rising tuned error with rising noise bounds how much
// measurement quality the methodology needs.
func noiseSweepUnits(sp Spec) []Unit {
	units := make([]Unit, 0, len(sp.NoiseLevels))
	for li, level := range sp.NoiseLevels {
		li, level := li, level
		units = append(units, Unit{
			ID:       fmt.Sprintf("%s/noise=%g", sp.Name, level),
			Scenario: sp.Name,
			Step:     fmt.Sprintf("noise=%g", level),
			run: func(rt *Runtime) (expt.Experiment, error) {
				board, err := rt.noisyBoard(sp.Core, level)
				if err != nil {
					return expt.Experiment{}, err
				}
				o := rt.Ctx.Options()
				ms, err := rt.Ctx.Measurements(board)
				if err != nil {
					return expt.Experiment{}, err
				}
				public := rt.public(sp.Core)
				cache := rt.Ctx.Runner().Cache()
				par := rt.Ctx.Runner().Parallelism()
				untuned, err := validate.ErrorsWith(public, ms, cache, par)
				if err != nil {
					return expt.Experiment{}, err
				}
				budget := sp.Budget
				if budget <= 0 {
					budget = o.BudgetRound1
				}
				res, err := validate.Tune(public, ms, validate.TuneOptions{
					Budget:      budget,
					Seed:        o.Seed + sp.SeedOffset + int64(li),
					Cache:       cache,
					Parallelism: par,
					Lanes:       rt.Ctx.Runner().Lanes(),
					Log:         o.Log,
				})
				if err != nil {
					return expt.Experiment{}, err
				}
				id := fmt.Sprintf("%s/noise=%g", sp.Name, level)
				title := fmt.Sprintf("Noise sweep (%s): ±%.1f%% measurement noise", sp.Core, level*100)
				t := &expt.Table{Title: title, Headers: []string{"stage", "mean error", ""}}
				um, err := validate.MeanError(untuned)
				if err != nil {
					return expt.Experiment{}, err
				}
				tm, err := validate.MeanError(res.Errors)
				if err != nil {
					return expt.Experiment{}, err
				}
				maxV := um
				if tm > maxV {
					maxV = tm
				}
				t.AddRow("untuned", expt.Pct(um), expt.Bar(um, maxV, 40))
				t.AddRow("tuned", expt.Pct(tm), expt.Bar(tm, maxV, 40))
				return expt.Experiment{
					ID:    id,
					Title: title,
					Paper: "beyond the paper: the reference board measures with fixed ±1% noise",
					Measured: fmt.Sprintf("noise ±%.1f%%: untuned %s -> tuned %s (%d/%d evaluations)",
						level*100, expt.Pct(um), expt.Pct(tm), res.Irace.Evaluations, budget),
					Body: t.Render(),
				}, nil
			},
		})
	}
	return units
}
