package scenario

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"

	"racesim/internal/expt"
)

// Unit is one runnable step of a sweep: a scenario expands into one or
// more units (one per budget point, noise level, ...), each producing one
// rendered expt.Experiment. The expansion assigns every unit a global
// index; that fixed order is the contract behind sharding and output
// merging.
type Unit struct {
	// ID is "<scenario>" for single-unit scenarios and
	// "<scenario>/<step>" otherwise; it is also the rendered experiment
	// ID for non-paper kinds.
	ID       string
	Scenario string
	Step     string
	// Index is the unit's position in the full (unsharded) expansion.
	Index int
	// Deps names the shared preparation artifacts this unit consumes
	// (e.g. "stages:a53" — the A53 validation pipeline, "spec:a72" — the
	// A72 workload measurements). Units sharing an artifact within one
	// process reuse it through the expt.Context memoization; across
	// shards the simulation cache deduplicates the underlying work. The
	// artifact edges form the sweep's dependency DAG: artifacts are
	// always producible from scratch, so any contiguous shard of the
	// unit list is independently runnable.
	Deps []string

	run func(*Runtime) (expt.Experiment, error)
}

// Run executes the unit against a runtime.
func (u Unit) Run(rt *Runtime) (expt.Experiment, error) {
	if u.run == nil {
		return expt.Experiment{}, fmt.Errorf("scenario: unit %s has no runner", u.ID)
	}
	return u.run(rt)
}

// paperDeps maps each paper kind to the context artifacts it consumes.
var paperDeps = map[string][]string{
	KindTable1: nil,
	KindTable2: nil,
	KindFig2:   {"measure:a53"},
	KindFig4:   {"stages:a53"},
	KindFig5:   {"stages:a53", "spec:a53"},
	KindFig6:   {"stages:a72", "spec:a72"},
	KindFig7:   {"stages:a53", "spec:a53"},
	KindFig8:   {"stages:a72", "spec:a72"},
	KindStaged: {"stages:a53", "stages:a72"},
}

// Expand validates the specs and expands them into the deterministic unit
// list: specs in slice order, steps in declared order, global indices
// assigned sequentially.
func Expand(specs []Spec) ([]Unit, error) {
	if err := checkUnique(specs); err != nil {
		return nil, err
	}
	var units []Unit
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		us, err := expandSpec(sp)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	for i := range units {
		units[i].Index = i
	}
	return units, nil
}

func expandSpec(sp Spec) ([]Unit, error) {
	switch sp.Kind {
	case KindTransfer:
		return []Unit{transferUnit(sp)}, nil
	case KindBudgetSweep:
		return budgetSweepUnits(sp), nil
	case KindNoiseSweep:
		return noiseSweepUnits(sp), nil
	default: // paper kinds, validated by sp.Validate
		kind := sp.Kind
		return []Unit{{
			ID:       sp.Name,
			Scenario: sp.Name,
			Step:     kind,
			Deps:     append([]string(nil), paperDeps[kind]...),
			run: func(rt *Runtime) (expt.Experiment, error) {
				fn, ok := rt.Ctx.ByID(kind)
				if !ok {
					return expt.Experiment{}, fmt.Errorf("scenario: no experiment for kind %q", kind)
				}
				return fn()
			},
		}}, nil
	}
}

// Select resolves a comma-separated list of scenario names or globs
// (path.Match syntax) against the specs. The reserved pattern "all"
// selects the paper set in paper order. Matches keep pattern order first,
// then spec order, deduplicated; a pattern matching nothing is an error.
func Select(specs []Spec, patterns string) ([]Spec, error) {
	byName := map[string]Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	var out []Spec
	selected := map[string]bool{}
	add := func(name string) {
		if !selected[name] {
			selected[name] = true
			out = append(out, byName[name])
		}
	}
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		if pat == "all" {
			for _, name := range PaperSet(specs) {
				add(name)
			}
			continue
		}
		matched := false
		for _, s := range specs {
			ok, err := path.Match(pat, s.Name)
			if err != nil {
				return nil, fmt.Errorf("scenario: bad pattern %q: %w", pat, err)
			}
			if ok {
				matched = true
				add(s.Name)
			}
		}
		if !matched {
			return nil, fmt.Errorf("scenario: pattern %q matches no scenario (have: %s)",
				pat, strings.Join(Names(specs), ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: empty selection %q", patterns)
	}
	return out, nil
}

// Names lists the spec names in order.
func Names(specs []Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ParseShard parses an "i/n" shard selector (1-based). Anything but two
// positive decimal integers separated by exactly one slash is rejected —
// a mistyped selector must fail loudly, not silently run the wrong
// partition of a long sweep.
func ParseShard(s string) (i, n int, err error) {
	if s == "" {
		return 1, 1, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("scenario: shard %q: want i/n (e.g. 2/4)", s)
	}
	i, errI := strconv.Atoi(is)
	n, errN := strconv.Atoi(ns)
	if errI != nil || errN != nil {
		return 0, 0, fmt.Errorf("scenario: shard %q: i and n must be decimal integers", s)
	}
	if n < 1 || i < 1 {
		return 0, 0, fmt.Errorf("scenario: shard %d/%d: i and n are 1-based and positive", i, n)
	}
	if i > n {
		return 0, 0, fmt.Errorf("scenario: shard %d/%d: index exceeds shard count", i, n)
	}
	return i, n, nil
}

// Shard returns the i-th of n contiguous partitions of the unit list
// (1-based). The partition is deterministic and order-preserving: for any
// n, concatenating the outputs of shards 1..n reproduces the unsharded
// run byte for byte.
func Shard(units []Unit, i, n int) []Unit {
	if n <= 1 {
		return units
	}
	lo := (i - 1) * len(units) / n
	hi := i * len(units) / n
	return units[lo:hi]
}

// FilterUnits returns the units whose IDs are listed in ids, preserving
// expansion order (not ids order) so a filtered run renders a
// subsequence of the unsharded artifact. Every id must name a unit of
// the expansion exactly once; an unknown id is an error. This is the
// per-unit dispatch primitive of the distributed sweep coordinator: a
// worker job names the single unit it should run out of the same
// selection the coordinator expanded.
func FilterUnits(units []Unit, ids []string) ([]Unit, error) {
	want := map[string]bool{}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		want[id] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("scenario: empty unit selection")
	}
	var out []Unit
	for _, u := range units {
		if want[u.ID] {
			out = append(out, u)
			delete(want, u.ID)
		}
	}
	if len(want) > 0 {
		missing := make([]string, 0, len(want))
		for id := range want {
			missing = append(missing, id)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("scenario: unknown unit id(s) %s in this selection",
			strings.Join(missing, ", "))
	}
	return out, nil
}

// Artifacts returns the sorted union of the dependency artifacts the
// units consume — what a shard will have to prepare (or replay from the
// simulation cache).
func Artifacts(units []Unit) []string {
	seen := map[string]bool{}
	for _, u := range units {
		for _, d := range u.Deps {
			seen[d] = true
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
