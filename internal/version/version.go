// Package version exposes racesim's build identity: the release
// version, the Go toolchain that built the binary, and the VCS commit
// when the build embedded one. It feeds `racesim version`, the
// /healthz build block, and the racesim_build_info constant-label gauge
// on /metrics — so a scrape (or a fleet of worker scrapes) identifies
// exactly which build produced its series.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Release is the racesim release string. Overridable at link time:
//
//	go build -ldflags "-X racesim/internal/version.Release=v1.2.3"
//
// When the module is built with a real module version (a tagged
// install), that version wins over this default.
var Release = "v0.10.0-dev"

// Info is the build identity triple.
type Info struct {
	Version   string `json:"version"`    // release string (see Release)
	GoVersion string `json:"go_version"` // toolchain, e.g. "go1.24.0"
	Commit    string `json:"commit"`     // VCS revision, "unknown" when not embedded
}

// Get resolves the build identity from the linked Release string and
// the build info the toolchain embedded (module version, vcs.revision,
// vcs.modified).
func Get() Info {
	info := Info{Version: Release, GoVersion: runtime.Version(), Commit: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		info.Version = v
	}
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if len(s.Value) >= 12 {
				info.Commit = s.Value[:12]
			} else if s.Value != "" {
				info.Commit = s.Value
			}
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && info.Commit != "unknown" {
		info.Commit += "-dirty"
	}
	return info
}

// String renders the identity as one line, the `racesim version` output.
func (i Info) String() string {
	return fmt.Sprintf("racesim %s %s commit %s", i.Version, i.GoVersion, i.Commit)
}
