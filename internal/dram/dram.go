// Package dram models main memory as a fixed-latency, bandwidth-limited
// device with a single request queue, the terminal level of the cache
// hierarchy.
package dram

import "fmt"

// Config configures the memory model.
type Config struct {
	// LatencyCycles is the idle-system load-to-use latency, in core cycles.
	LatencyCycles int
	// BurstCycles is the channel occupancy per line transfer; back-to-back
	// requests closer together than this queue behind each other.
	BurstCycles int
	// QueueDepth bounds how far the queue may run ahead of the current
	// cycle; beyond it, extra requests stall for a full burst each.
	QueueDepth int
}

// DefaultConfig returns a plausible LPDDR-class memory.
func DefaultConfig() Config {
	return Config{LatencyCycles: 180, BurstCycles: 6, QueueDepth: 16}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LatencyCycles <= 0 {
		return fmt.Errorf("dram: LatencyCycles = %d", c.LatencyCycles)
	}
	if c.BurstCycles <= 0 {
		return fmt.Errorf("dram: BurstCycles = %d", c.BurstCycles)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("dram: QueueDepth = %d", c.QueueDepth)
	}
	return nil
}

// Stats counts memory traffic.
type Stats struct {
	Reads       uint64
	Writes      uint64
	QueuedTotal uint64 // cumulative queueing delay in cycles
}

// DRAM is the memory device. It is not safe for concurrent use; each
// simulated core owns its own hierarchy.
type DRAM struct {
	cfg       Config
	busyUntil uint64
	stats     Stats
}

// New builds a DRAM model; cfg must be valid.
func New(cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DRAM{cfg: cfg}, nil
}

// Access services one line request issued at cycle now and returns its
// total latency including queueing.
func (d *DRAM) Access(now uint64, write bool) uint64 {
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	// Bound the queue: if it is QueueDepth bursts ahead, collapse back.
	maxAhead := uint64(d.cfg.QueueDepth * d.cfg.BurstCycles)
	if start > now+maxAhead {
		start = now + maxAhead
	}
	d.busyUntil = start + uint64(d.cfg.BurstCycles)
	queued := start - now
	d.stats.QueuedTotal += queued
	return queued + uint64(d.cfg.LatencyCycles)
}

// Stats returns accumulated counters.
func (d *DRAM) Stats() Stats { return d.stats }
