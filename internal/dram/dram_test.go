package dram

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{LatencyCycles: 0, BurstCycles: 6, QueueDepth: 8},
		{LatencyCycles: 100, BurstCycles: 0, QueueDepth: 8},
		{LatencyCycles: 100, BurstCycles: 6, QueueDepth: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero config")
	}
}

func TestIdleLatency(t *testing.T) {
	d, err := New(Config{LatencyCycles: 150, BurstCycles: 4, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if lat := d.Access(1000, false); lat != 150 {
		t.Errorf("idle latency = %d, want 150", lat)
	}
	if lat := d.Access(5000, true); lat != 150 {
		t.Errorf("idle write latency = %d, want 150", lat)
	}
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBandwidthQueueing(t *testing.T) {
	cfg := Config{LatencyCycles: 100, BurstCycles: 10, QueueDepth: 4}
	d, _ := New(cfg)
	// Saturating requests at the same cycle: each queues a burst behind
	// the previous.
	lats := make([]uint64, 4)
	for i := range lats {
		lats[i] = d.Access(0, false)
	}
	for i := 1; i < len(lats); i++ {
		if lats[i] != lats[i-1]+uint64(cfg.BurstCycles) {
			t.Errorf("request %d latency %d, want %d", i, lats[i], lats[i-1]+uint64(cfg.BurstCycles))
		}
	}
}

// Property: latency is always at least the idle latency and bounded by the
// queue cap, and queueing statistics never decrease.
func TestLatencyBoundsProperty(t *testing.T) {
	cfg := DefaultConfig()
	d, _ := New(cfg)
	now := uint64(0)
	f := func(gap uint8, write bool) bool {
		now += uint64(gap)
		lat := d.Access(now, write)
		min := uint64(cfg.LatencyCycles)
		max := uint64(cfg.LatencyCycles + (cfg.QueueDepth+1)*cfg.BurstCycles)
		return lat >= min && lat <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
