package tracememo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"racesim/internal/trace"
)

func tinyTrace(name string, events int) *trace.Trace {
	t := &trace.Trace{Name: name}
	for i := 0; i < events; i++ {
		t.Events = append(t.Events, trace.Event{PC: uint64(i) * 4, Word: 0xd503201f})
	}
	return t
}

func TestGetMemoizesByKey(t *testing.T) {
	m := New(0, 0)
	calls := 0
	gen := func() (*trace.Trace, error) { calls++; return tinyTrace("a", 10), nil }

	first, err := m.Get("k", gen)
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.Get("k", gen)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("repeat Get returned a different trace pointer")
	}
	if calls != 1 {
		t.Errorf("generator ran %d times, want 1", calls)
	}
	if _, err := m.Get("other", gen); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("distinct key should generate: %d calls, want 2", calls)
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 hit, 2 misses, 2 entries", st)
	}
}

func TestNilMemoGenerates(t *testing.T) {
	var m *Memo
	tr, err := m.Get("k", func() (*trace.Trace, error) { return tinyTrace("a", 1), nil })
	if err != nil || tr == nil {
		t.Fatalf("nil memo Get = (%v, %v), want a generated trace", tr, err)
	}
	if st := m.Stats(); st != (Stats{}) {
		t.Errorf("nil memo stats = %+v, want zero", st)
	}
}

func TestErrorsAreNotStored(t *testing.T) {
	m := New(0, 0)
	boom := errors.New("boom")
	if _, err := m.Get("k", func() (*trace.Trace, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed generation must not poison the key: a retry generates.
	tr, err := m.Get("k", func() (*trace.Trace, error) { return tinyTrace("a", 1), nil })
	if err != nil || tr == nil {
		t.Fatalf("retry after error = (%v, %v), want success", tr, err)
	}
}

func TestBudgetEvictsLRU(t *testing.T) {
	// Budget fits roughly two 100-event traces.
	m := New(2*Size(tinyTrace("x", 100))+1, 0)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := m.Get(key, func() (*trace.Trace, error) { return tinyTrace(key, 100), nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Evicted == 0 {
		t.Fatalf("no evictions under budget pressure: %+v", st)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	// k0 was least recently used; k2 must have survived.
	regen := 0
	if _, err := m.Get("k2", func() (*trace.Trace, error) { regen++; return tinyTrace("k2", 100), nil }); err != nil {
		t.Fatal(err)
	}
	if regen != 0 {
		t.Error("most recent entry was evicted")
	}
}

func TestOversizeEntryStillServed(t *testing.T) {
	m := New(1, 0) // smaller than any trace
	tr, err := m.Get("big", func() (*trace.Trace, error) { return tinyTrace("big", 1000), nil })
	if err != nil || tr == nil {
		t.Fatalf("oversize Get = (%v, %v), want the trace", tr, err)
	}
	if st := m.Stats(); st.Entries != 1 {
		t.Errorf("the newest entry must survive eviction: %+v", st.Entries)
	}
}

// TestConcurrentGetSingleflight proves that concurrent Gets of one key
// generate exactly once and all receive the same trace. Run under -race
// in CI alongside the decoded-trace sharing tests.
func TestConcurrentGetSingleflight(t *testing.T) {
	m := New(0, 0)
	var calls atomic.Int32
	var wg sync.WaitGroup
	results := make([]*trace.Trace, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := m.Get("k", func() (*trace.Trace, error) {
				calls.Add(1)
				return tinyTrace("k", 50), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = tr
		}(i)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("generator ran %d times under concurrent Gets, want 1", n)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent Gets received different trace pointers")
		}
	}
}
