// Package tracememo memoizes generated traces — and, transitively, their
// decode-once columnar forms — across engine jobs.
//
// Trace generation (micro-benchmark emulation, workload synthesis) is
// deterministic in its parameters, so a serve worker executing the same
// job shape repeatedly re-derives byte-identical traces every time; in
// the warm-cache steady state that emulation dominates the job, not the
// simulations (those are cache hits). The memo keys a generated trace by
// its generation parameters and returns the shared *trace.Trace on
// repeat requests. Because trace.Trace memoizes its Decoded forms
// internally (sync.Once per decoder variant), holding the trace holds
// the decoded columns too: the second job skips generation *and* decode.
//
// Entries are evicted least-recently-used against a byte budget and,
// optionally, by age — a memoized trace is a pure function of its key,
// so age eviction exists only to bound memory held for job shapes that
// stopped arriving, never for correctness.
//
// A nil *Memo is valid and memoizes nothing (every Get generates), so
// batch callers that run one job per process pay zero overhead.
package tracememo

import (
	"container/list"
	"sync"
	"time"

	"racesim/internal/trace"
)

// eventFootprint approximates the resident bytes one dynamic trace event
// costs once warm: the Event itself (40 bytes) plus its share of up to
// two decoded variants (id + three dynamic columns + taken bit ≈ 36
// bytes each). Used for budget accounting only.
const eventFootprint = 40 + 2*36

// entryOverhead covers the per-entry bookkeeping (key, map slot, list
// element, decode tables) beyond the event columns.
const entryOverhead = 512

// Size estimates the resident bytes of a memoized trace.
func Size(t *trace.Trace) int64 {
	return int64(len(t.Events))*eventFootprint + entryOverhead
}

type mentry struct {
	key   string
	tr    *trace.Trace
	size  int64
	added time.Time
	elem  *list.Element
}

type flight struct {
	done chan struct{}
	tr   *trace.Trace
	err  error
}

// Stats reports memo effectiveness.
type Stats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Evicted uint64 `json:"evicted"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

// Memo is a budget-bounded, age-aware trace memoization table, safe for
// concurrent use. Concurrent Gets of the same key generate once: the
// first claims the key, the rest wait for its result.
type Memo struct {
	mu       sync.Mutex
	budget   int64         // bytes; <= 0 = unbounded
	maxAge   time.Duration // <= 0 = no age eviction
	used     int64
	entries  map[string]*mentry
	lru      *list.List // front = most recently used
	inflight map[string]*flight
	hits     uint64
	misses   uint64
	evicted  uint64
}

// New returns a memo bounded by budget bytes (<= 0: unbounded) and
// maxAge (<= 0: no age eviction).
func New(budget int64, maxAge time.Duration) *Memo {
	return &Memo{
		budget:   budget,
		maxAge:   maxAge,
		entries:  map[string]*mentry{},
		lru:      list.New(),
		inflight: map[string]*flight{},
	}
}

// Get returns the memoized trace for key, generating and storing it on
// first request. A generation error is returned but never stored, so a
// later Get retries. On a nil memo, Get just generates.
func (m *Memo) Get(key string, generate func() (*trace.Trace, error)) (*trace.Trace, error) {
	if m == nil {
		return generate()
	}
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		if m.maxAge > 0 && time.Since(e.added) > m.maxAge {
			m.removeLocked(e)
		} else {
			m.hits++
			m.lru.MoveToFront(e.elem)
			tr := e.tr
			m.mu.Unlock()
			return tr, nil
		}
	}
	if fl, ok := m.inflight[key]; ok {
		m.mu.Unlock()
		<-fl.done
		return fl.tr, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	m.inflight[key] = fl
	m.misses++
	m.mu.Unlock()

	tr, err := generate()
	fl.tr, fl.err = tr, err

	m.mu.Lock()
	delete(m.inflight, key)
	if err == nil && tr != nil {
		e := &mentry{key: key, tr: tr, size: Size(tr), added: time.Now()}
		e.elem = m.lru.PushFront(e)
		m.entries[key] = e
		m.used += e.size
		m.evictLocked()
	}
	m.mu.Unlock()
	close(fl.done)
	return tr, err
}

// evictLocked drops least-recently-used entries until within budget. The
// newest entry is never evicted — a single trace larger than the whole
// budget must still be servable to the job that generated it.
func (m *Memo) evictLocked() {
	if m.budget <= 0 {
		return
	}
	for m.used > m.budget && m.lru.Len() > 1 {
		e := m.lru.Back().Value.(*mentry)
		m.removeLocked(e)
		m.evicted++
	}
}

func (m *Memo) removeLocked(e *mentry) {
	m.lru.Remove(e.elem)
	delete(m.entries, e.key)
	m.used -= e.size
}

// Stats snapshots the memo counters.
func (m *Memo) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Hits:    m.hits,
		Misses:  m.misses,
		Evicted: m.evicted,
		Entries: len(m.entries),
		Bytes:   m.used,
	}
}
