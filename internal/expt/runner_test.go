package expt

import (
	"strings"
	"testing"

	"racesim/internal/sim"
	"racesim/internal/simcache"
	"racesim/internal/trace"
	"racesim/internal/ubench"
)

func testUnits(t *testing.T) []Unit {
	t.Helper()
	var units []Unit
	for _, name := range []string{"MD", "MC", "CS3", "ED1"} {
		b, ok := ubench.ByName(name)
		if !ok {
			t.Fatalf("unknown bench %s", name)
		}
		tr, err := b.Trace(ubench.Options{Scale: 0.002})
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []sim.Config{sim.PublicA53(), sim.PublicA72()} {
			units = append(units, Unit{Config: cfg, Trace: tr})
		}
	}
	return units
}

func TestRunAllParallelMatchesSequential(t *testing.T) {
	units := testUnits(t)

	seq, err := NewRunner(nil, 1).RunAll(units)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(simcache.New(), 8).RunAll(units)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(units) || len(par) != len(units) {
		t.Fatalf("result lengths %d/%d, want %d", len(seq), len(par), len(units))
	}
	for i := range units {
		if seq[i] != par[i] {
			t.Errorf("unit %d: parallel cached result differs from sequential uncached", i)
		}
		direct, err := units[i].Config.Run(units[i].Trace)
		if err != nil {
			t.Fatal(err)
		}
		if seq[i] != direct {
			t.Errorf("unit %d: runner result differs from direct simulation", i)
		}
	}
}

func TestRunAllDeduplicatesRepeats(t *testing.T) {
	units := testUnits(t)
	// Submit every unit twice; the cache must simulate each once.
	doubled := append(append([]Unit{}, units...), units...)
	cache := simcache.New()
	res, err := NewRunner(cache, 4).RunAll(doubled)
	if err != nil {
		t.Fatal(err)
	}
	for i := range units {
		if res[i] != res[i+len(units)] {
			t.Errorf("unit %d: repeat submission returned a different result", i)
		}
	}
	st := cache.Stats()
	if st.Misses != uint64(len(units)) {
		t.Errorf("misses = %d, want %d (one per distinct unit)", st.Misses, len(units))
	}
	if st.Hits+st.Shared != uint64(len(units)) {
		t.Errorf("hits %d + shared %d = %d, want %d", st.Hits, st.Shared, st.Hits+st.Shared, len(units))
	}
}

func TestRunAllLaneBatchedMatchesSequential(t *testing.T) {
	units := testUnits(t)
	// Vary the configurations so each trace group carries several distinct
	// lanes, not just the two presets.
	for i := range units {
		if units[i].Config.Kind == sim.InOrder {
			units[i].Config.Mem.L1D.HitLatency = 2 + i%3
		} else {
			units[i].Config.ROBEntries = 64 + 16*(i%4)
		}
	}

	seq, err := NewRunner(nil, 1).RunAll(units)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{2, 16} {
		cache := simcache.New()
		batched, err := NewRunner(cache, 4).WithLanes(lanes).RunAll(units)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		for i := range units {
			if seq[i] != batched[i] {
				t.Errorf("lanes=%d unit %d: batched result differs from sequential", lanes, i)
			}
		}
		if st := cache.Stats(); st.Misses != uint64(len(units)) {
			t.Errorf("lanes=%d: misses = %d, want %d", lanes, st.Misses, len(units))
		}
	}
}

func TestRunAllLaneBatchedReportsLowestIndexedError(t *testing.T) {
	units := testUnits(t)
	bad := units[3]
	bad.Config.Kind = "bogus"
	units[3] = bad
	units[5].Config.Kind = "bogus"

	_, err := NewRunner(simcache.New(), 4).WithLanes(8).RunAll(units)
	if err == nil {
		t.Fatal("want an error from the invalid units")
	}
	if !strings.Contains(err.Error(), "unit 3 ") {
		t.Errorf("error %q does not name the lowest-indexed failing unit", err)
	}
}

func TestWithLanesNoOpBelowTwo(t *testing.T) {
	r := NewRunner(nil, 1)
	if r.WithLanes(0) != r || r.WithLanes(1) != r {
		t.Error("WithLanes(<=1) should return the receiver unchanged")
	}
	if got := r.WithLanes(4).Lanes(); got != 4 {
		t.Errorf("Lanes() = %d, want 4", got)
	}
}

func TestMeasureAllMatchesSequential(t *testing.T) {
	ctx, err := NewContext(Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ubench.ByName("MD")
	tr1, err := b.Trace(ubench.Options{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := ubench.ByName("MC")
	tr2, err := b2.Trace(ubench.Options{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	board := ctx.Platform().A53
	par, err := NewRunner(nil, 4).MeasureAll(board, []*trace.Trace{tr1, tr2})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range []*trace.Trace{tr1, tr2} {
		direct, err := board.Measure(tr)
		if err != nil {
			t.Fatal(err)
		}
		if par[i] != direct {
			t.Errorf("trace %d: parallel measurement differs from direct", i)
		}
	}
}

// expOptions sizes a full All() run small enough for tests while still
// exercising both tuning pipelines, the spec workloads and the
// perturbation study.
func expOptions(parallelism int, cache *simcache.Cache) Options {
	return Options{
		UbenchScale:     0.001,
		WorkloadEvents:  2_000,
		BudgetRound1:    60,
		BudgetRound2:    60,
		PerturbRestarts: 1,
		Parallelism:     parallelism,
		Cache:           cache,
	}
}

func renderAll(t *testing.T, opts Options) string {
	t.Helper()
	ctx, err := NewContext(opts)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := ctx.All()
	if err != nil {
		t.Fatal(err)
	}
	var out string
	for _, e := range exps {
		out += e.Render()
	}
	return out
}

func TestAllParallelByteIdenticalToSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	seq := renderAll(t, expOptions(1, nil))
	par := renderAll(t, expOptions(8, simcache.New()))
	if seq != par {
		t.Errorf("parallel cached output differs from sequential uncached output:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

func TestAllWarmCacheMostlyHits(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	cache := simcache.New()
	first := renderAll(t, expOptions(4, cache))
	cold := cache.Stats()
	second := renderAll(t, expOptions(4, cache))
	warm := cache.Stats()
	if first != second {
		t.Error("warm-cache rerun changed the rendered output")
	}
	hits := warm.Hits - cold.Hits
	misses := warm.Misses - cold.Misses
	total := hits + misses + (warm.Shared - cold.Shared)
	if total == 0 {
		t.Fatal("second run performed no cache lookups")
	}
	rate := float64(hits+(warm.Shared-cold.Shared)) / float64(total)
	t.Logf("warm run: %d hits, %d misses (%.1f%% hit rate)", hits, misses, rate*100)
	if rate < 0.5 {
		t.Errorf("warm-cache hit rate %.1f%% < 50%%", rate*100)
	}
}
