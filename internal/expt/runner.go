package expt

import (
	"context"
	"fmt"
	"runtime"

	"racesim/internal/core"
	"racesim/internal/hw"
	"racesim/internal/par"
	"racesim/internal/sim"
	"racesim/internal/simcache"
	"racesim/internal/trace"
)

// Unit is one independent simulation: a configuration replaying one trace.
// Experiments decompose into slices of Units so the Runner can schedule
// them across workers and deduplicate repeats through the shared cache.
type Unit struct {
	Config sim.Config
	Trace  *trace.Trace
}

// Runner schedules simulation units on a bounded worker pool and memoizes
// results through an optional shared simcache.Cache. Results always come
// back in submission order, so output built from them is byte-identical
// regardless of parallelism or completion order.
type Runner struct {
	cache *simcache.Cache
	par   int
	lanes int             // >1: RunAll lane-batches units sharing a trace
	ctx   context.Context // nil: never cancelled
}

// NewRunner builds a runner. cache may be nil (no memoization);
// parallelism <= 0 selects GOMAXPROCS.
func NewRunner(cache *simcache.Cache, parallelism int) *Runner {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{cache: cache, par: parallelism}
}

// WithContext returns a copy of the runner whose pool checks ctx before
// dispatching each unit, so cancelling ctx stops a batch within one
// simulation. A nil ctx returns the receiver unchanged.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	if ctx == nil {
		return r
	}
	r2 := *r
	r2.ctx = ctx
	return &r2
}

// WithLanes returns a copy of the runner whose RunAll groups units sharing
// a trace and replays each group's cache misses through lane-batched
// column walks of up to lanes configurations (see simcache.RunBatch; lane
// results are identical to sequential runs). lanes <= 1 returns the
// receiver unchanged: every unit is scheduled individually.
func (r *Runner) WithLanes(lanes int) *Runner {
	if lanes <= 1 {
		return r
	}
	r2 := *r
	r2.lanes = lanes
	return &r2
}

// Cache exposes the shared result cache (possibly nil).
func (r *Runner) Cache() *simcache.Cache { return r.cache }

// Parallelism is the worker-pool width.
func (r *Runner) Parallelism() int { return r.par }

// Lanes is the lane-batch width RunAll uses for units sharing a trace
// (0 or 1: per-unit scheduling).
func (r *Runner) Lanes() int { return r.lanes }

// Run simulates one unit through the cache.
func (r *Runner) Run(cfg sim.Config, tr *trace.Trace) (core.Result, error) {
	return r.cache.Run(cfg, tr)
}

// forEach runs fn(0..n-1) on the worker pool and returns the error of the
// lowest-indexed failure (deterministic regardless of completion order).
// Under a context (WithContext) cancellation stops dispatch and reports
// ctx.Err().
func (r *Runner) forEach(n int, fn func(i int) error) error {
	return par.ForEachCtx(r.ctx, n, r.par, fn)
}

// RunAll simulates every unit, in parallel up to the pool width, and
// returns results aligned with the input slice. With WithLanes(>1), units
// sharing a trace are submitted together so their cache misses replay in
// lane-batched walks; results are identical either way.
func (r *Runner) RunAll(units []Unit) ([]core.Result, error) {
	if r.lanes > 1 {
		return r.runAllBatched(units)
	}
	out := make([]core.Result, len(units))
	err := r.forEach(len(units), func(i int) error {
		res, err := r.cache.Run(units[i].Config, units[i].Trace)
		if err != nil {
			return fmt.Errorf("unit %d (%s on %s): %w", i, units[i].Config.Name, units[i].Trace.Name, err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runAllBatched is RunAll's lane-batched schedule: one pool task per
// distinct trace, each submitting its units in one batch. The error
// reported is still the lowest-indexed unit's, so failures are
// deterministic regardless of which trace group finishes first.
func (r *Runner) runAllBatched(units []Unit) ([]core.Result, error) {
	out := make([]core.Result, len(units))
	groups := make(map[*trace.Trace][]int)
	var order []*trace.Trace
	for i, u := range units {
		if _, ok := groups[u.Trace]; !ok {
			order = append(order, u.Trace)
		}
		groups[u.Trace] = append(groups[u.Trace], i)
	}
	unitErrs := make([]error, len(units))
	err := r.forEach(len(order), func(g int) error {
		idxs := groups[order[g]]
		cfgs := make([]sim.Config, len(idxs))
		for j, i := range idxs {
			cfgs[j] = units[i].Config
		}
		rs, es := r.cache.RunBatch(cfgs, order[g], simcache.BatchOptions{Lanes: r.lanes})
		for j, i := range idxs {
			out[i] = rs[j]
			if es[j] != nil {
				unitErrs[i] = fmt.Errorf("unit %d (%s on %s): %w", i, units[i].Config.Name, units[i].Trace.Name, es[j])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, e := range unitErrs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}

// MeasureAll runs every trace on the board concurrently and returns the
// counters aligned with the input. Board measurements are deterministic
// (the pseudo-noise is a pure function of the trace identity), so the
// parallel path returns exactly what sequential measurement would.
func (r *Runner) MeasureAll(board *hw.Board, trs []*trace.Trace) ([]hw.Counters, error) {
	out := make([]hw.Counters, len(trs))
	err := r.forEach(len(trs), func(i int) error {
		c, err := board.Measure(trs[i])
		if err != nil {
			return err
		}
		out[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
