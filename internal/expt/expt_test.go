package expt

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"a", "bench"}}
	tb.AddRow("1", "longer-name")
	tb.AddRow("22", "x")
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "longer-name") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("render has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Errorf("Bar(5,10,10) = %q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != "##########" {
		t.Error("bar must clamp to width")
	}
	if Bar(-1, 10, 10) != "" {
		t.Error("negative values render empty")
	}
	if Bar(1, 0, 10) == strings.Repeat("#", 11) {
		t.Error("zero max must not explode")
	}
}

func TestTables(t *testing.T) {
	ctx, err := NewContext(Options{UbenchScale: 0.001, WorkloadEvents: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := ctx.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(t1.Body, "\n")) < 42 {
		t.Errorf("table1 too short:\n%s", t1.Body)
	}
	for _, name := range []string{"MC", "CS3", "STc", "ED1"} {
		if !strings.Contains(t1.Body, name) {
			t.Errorf("table1 missing %s", name)
		}
	}
	t2, err := ctx.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mcf", "povray", "xz", "psimplex.c"} {
		if !strings.Contains(t2.Body, name) {
			t.Errorf("table2 missing %s", name)
		}
	}
	if got := t2.Render(); !strings.Contains(got, "## table2") {
		t.Errorf("experiment render missing header:\n%s", got)
	}
}
