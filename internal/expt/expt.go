package expt

import (
	"context"
	"fmt"
	"sort"
	"time"

	"racesim/internal/hw"
	"racesim/internal/perturb"
	"racesim/internal/sim"
	"racesim/internal/simcache"
	"racesim/internal/trace"
	"racesim/internal/ubench"
	"racesim/internal/validate"
	"racesim/internal/workload"
)

// Options sizes the experiment runs. Zero values select modest defaults
// suitable for minutes-scale regeneration; the paper-scale knobs are
// documented in `racesim experiments` (docs/cli.md).
type Options struct {
	UbenchScale     float64
	WorkloadEvents  int
	BudgetRound1    int
	BudgetRound2    int
	PerturbRestarts int
	Seed            int64
	// Parallelism bounds concurrent simulation units across every
	// experiment (<=0: GOMAXPROCS). Output is byte-identical for any
	// value: simulation is deterministic and results are reassembled in
	// submission order.
	Parallelism int
	// Lanes, when > 1, lane-batches simulation units sharing a trace
	// through shared column walks (see Runner.WithLanes). Results are
	// identical to per-unit scheduling.
	Lanes int
	// Cache, when non-nil, memoizes simulation results across all
	// experiments (and across processes via simcache LoadFile/SaveFile).
	Cache *simcache.Cache
	// Context, when non-nil, cancels experiment execution: the Runner
	// checks it before dispatching each simulation unit and the tuning
	// pipelines check it per race step, so a cancelled sweep stops within
	// one simulation batch.
	Context context.Context
	Log     func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.WorkloadEvents <= 0 {
		o.WorkloadEvents = 60_000
	}
	if o.BudgetRound1 <= 0 {
		o.BudgetRound1 = 2500
	}
	if o.BudgetRound2 <= 0 {
		o.BudgetRound2 = 3500
	}
	if o.PerturbRestarts <= 0 {
		o.PerturbRestarts = 2
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// Context caches the expensive artifacts (boards, tuned models, workload
// measurements) across experiments and owns the Runner every experiment
// submits its simulation units to.
type Context struct {
	opts   Options
	plat   *hw.Platform
	runner *Runner

	a53Stages []validate.StageResult
	a72Stages []validate.StageResult

	specA53 []perturb.Workload
	specA72 []perturb.Workload

	ms map[*hw.Board][]validate.Measurement
}

// NewContext builds a context over the reference platform.
func NewContext(opts Options) (*Context, error) {
	plat, err := hw.Firefly()
	if err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	return &Context{
		opts: o, plat: plat,
		runner: NewRunner(o.Cache, o.Parallelism).WithContext(o.Context).WithLanes(o.Lanes),
		ms:     map[*hw.Board][]validate.Measurement{},
	}, nil
}

// Platform exposes the reference boards.
func (c *Context) Platform() *hw.Platform { return c.plat }

// Runner exposes the shared worker pool + cache.
func (c *Context) Runner() *Runner { return c.runner }

// Options exposes the sizing knobs the context was built with, so layered
// drivers (the scenario engine) can derive per-unit budgets and seeds from
// the same source of truth.
func (c *Context) Options() Options { return c.opts }

// Measurements lazily records and measures the micro-benchmark suite on a
// board, memoized by board identity (so re-noised or otherwise rebuilt
// boards never alias the reference ones): every consumer of the tuning
// instances (Fig2, budget sweeps, ad-hoc tuning rounds) shares one
// measurement pass per board.
func (c *Context) Measurements(board *hw.Board) ([]validate.Measurement, error) {
	if ms, ok := c.ms[board]; ok {
		return ms, nil
	}
	ms, err := validate.MeasureSuiteParallel(board, ubench.Options{Scale: c.opts.UbenchScale}, c.runner.Parallelism())
	if err != nil {
		return nil, err
	}
	c.ms[board] = ms
	return ms, nil
}

// StagesA53 lazily runs the full validation pipeline for the in-order core.
func (c *Context) StagesA53() ([]validate.StageResult, error) {
	if c.a53Stages != nil {
		return c.a53Stages, nil
	}
	st, err := validate.Pipeline(c.plat.A53, sim.PublicA53(), validate.PipelineOptions{
		BudgetRound1: c.opts.BudgetRound1,
		BudgetRound2: c.opts.BudgetRound2,
		Seed:         c.opts.Seed,
		UbenchScale:  c.opts.UbenchScale,
		Cache:        c.runner.Cache(),
		Parallelism:  c.runner.Parallelism(),
		Lanes:        c.runner.Lanes(),
		Context:      c.opts.Context,
		Log:          c.opts.Log,
	})
	if err != nil {
		return nil, err
	}
	c.a53Stages = st
	return st, nil
}

// StagesA72 lazily runs the pipeline for the out-of-order core.
func (c *Context) StagesA72() ([]validate.StageResult, error) {
	if c.a72Stages != nil {
		return c.a72Stages, nil
	}
	st, err := validate.Pipeline(c.plat.A72, sim.PublicA72(), validate.PipelineOptions{
		BudgetRound1: c.opts.BudgetRound1,
		BudgetRound2: c.opts.BudgetRound2,
		Seed:         c.opts.Seed + 100,
		UbenchScale:  c.opts.UbenchScale,
		Cache:        c.runner.Cache(),
		Parallelism:  c.runner.Parallelism(),
		Lanes:        c.runner.Lanes(),
		Context:      c.opts.Context,
		Log:          c.opts.Log,
	})
	if err != nil {
		return nil, err
	}
	c.a72Stages = st
	return st, nil
}

// Spec lazily generates and measures the Table II workloads on a board.
func (c *Context) Spec(board *hw.Board) ([]perturb.Workload, error) {
	cached := &c.specA53
	if board == c.plat.A72 {
		cached = &c.specA72
	}
	if *cached != nil {
		return *cached, nil
	}
	profiles := workload.Profiles()
	trs := make([]*trace.Trace, len(profiles))
	err := c.runner.forEach(len(profiles), func(i int) error {
		tr, err := workload.Generate(profiles[i], workload.Options{Events: c.opts.WorkloadEvents, Seed: c.opts.Seed})
		if err != nil {
			return err
		}
		trs[i] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	counters, err := c.runner.MeasureAll(board, trs)
	if err != nil {
		return nil, err
	}
	out := make([]perturb.Workload, len(profiles))
	for i, p := range profiles {
		out[i] = perturb.Workload{Name: p.Name, Trace: trs[i], Counters: counters[i]}
	}
	*cached = out
	return out, nil
}

// Table1 regenerates Table I: the micro-benchmark suite and its dynamic
// instruction counts (paper counts plus this build's scaled counts).
func (c *Context) Table1() (Experiment, error) {
	t := &Table{
		Title:   "Table I: micro-benchmarks and dynamic instruction counts",
		Headers: []string{"category", "bench", "paper insns", "scaled insns", "stresses"},
	}
	opts := ubench.Options{Scale: c.opts.UbenchScale}
	type row struct {
		cat   ubench.Category
		bench ubench.Bench
		insns int
	}
	var rows []row
	for _, cat := range ubench.Categories {
		for _, b := range ubench.ByCategory(cat) {
			rows = append(rows, row{cat: cat, bench: b})
		}
	}
	// Trace generation (emulation) dominates this table; fan it out and
	// assemble rows in suite order.
	err := c.runner.forEach(len(rows), func(i int) error {
		tr, err := rows[i].bench.Trace(opts)
		if err != nil {
			return err
		}
		rows[i].insns = tr.Len()
		return nil
	})
	if err != nil {
		return Experiment{}, err
	}
	for _, r := range rows {
		t.AddRow(string(r.cat), r.bench.Name, fmt.Sprintf("%d", r.bench.PaperInstructions),
			fmt.Sprintf("%d", r.insns), r.bench.Description)
	}
	return Experiment{
		ID:       "table1",
		Title:    "Micro-benchmark suite",
		Paper:    "40 micro-benchmarks in 5 categories, 4 K – 66 M dynamic instructions",
		Measured: fmt.Sprintf("%d benchmarks in %d categories, scaled traces per column 4", len(ubench.Suite()), len(ubench.Categories)),
		Body:     t.Render(),
	}, nil
}

// Table2 regenerates Table II: the SPEC CPU2017 workloads.
func (c *Context) Table2() (Experiment, error) {
	t := &Table{
		Title:   "Table II: SPEC CPU2017 region workloads",
		Headers: []string{"benchmark", "file", "line", "paper insns", "synthesized insns"},
	}
	profiles := workload.Profiles()
	lens := make([]int, len(profiles))
	err := c.runner.forEach(len(profiles), func(i int) error {
		tr, err := workload.Generate(profiles[i], workload.Options{Events: c.opts.WorkloadEvents, Seed: c.opts.Seed})
		if err != nil {
			return err
		}
		lens[i] = tr.Len()
		return nil
	})
	if err != nil {
		return Experiment{}, err
	}
	for i, p := range profiles {
		t.AddRow(p.Name, p.SourceFile, fmt.Sprintf("%d", p.Line),
			fmt.Sprintf("%d", p.PaperInstructions), fmt.Sprintf("%d", lens[i]))
	}
	return Experiment{
		ID:       "table2",
		Title:    "SPEC CPU2017 region workloads",
		Paper:    "11 C/C++ benchmarks, 443 M – 14.9 G instructions (train inputs)",
		Measured: "11 synthetic profiles with matching roles, scaled traces",
		Body:     t.Render(),
	}, nil
}

// Fig2 regenerates the racing-dynamics view: surviving configurations per
// benchmark instance during an irace run on the A53.
func (c *Context) Fig2() (Experiment, error) {
	ms, err := c.Measurements(c.plat.A53)
	if err != nil {
		return Experiment{}, err
	}
	res, err := validate.Tune(sim.PublicA53(), ms, validate.TuneOptions{
		Budget: c.opts.BudgetRound1, Seed: c.opts.Seed,
		Cache: c.runner.Cache(), Parallelism: c.runner.Parallelism(),
		Lanes:   c.runner.Lanes(),
		Context: c.opts.Context,
		Log:     c.opts.Log,
	})
	if err != nil {
		return Experiment{}, err
	}
	t := &Table{
		Title:   "Figure 2: iterated-racing elimination dynamics",
		Headers: []string{"iteration", "instance", "alive", ""},
	}
	maxAlive := 0
	for _, ev := range res.Irace.RaceTrace {
		if ev.Alive > maxAlive {
			maxAlive = ev.Alive
		}
	}
	for _, ev := range res.Irace.RaceTrace {
		t.AddRow(fmt.Sprintf("%d", ev.Iteration), fmt.Sprintf("%d", ev.Instance),
			fmt.Sprintf("%d", ev.Alive), Bar(float64(ev.Alive), float64(maxAlive), 40))
	}
	return Experiment{
		ID:       "fig2",
		Title:    "irace sampling / racing / elimination",
		Paper:    "candidates are eliminated as instances accumulate; survivors seed the next iteration",
		Measured: fmt.Sprintf("%d race events, final best cost %.3f", len(res.Irace.RaceTrace), res.Irace.BestCost),
		Body:     t.Render(),
	}, nil
}

// errTable renders per-benchmark error pairs.
func errTable(title string, names []string, a, b map[string]float64, labelA, labelB string) *Table {
	t := &Table{Title: title}
	if b == nil {
		t.Headers = []string{"bench", labelA, ""}
	} else {
		t.Headers = []string{"bench", labelA, labelB, ""}
	}
	maxV := 0.0
	for _, n := range names {
		if a[n] > maxV {
			maxV = a[n]
		}
		if b != nil && b[n] > maxV {
			maxV = b[n]
		}
	}
	for _, n := range names {
		if b == nil {
			t.AddRow(n, Pct(a[n]), Bar(a[n], maxV, 40))
		} else {
			t.AddRow(n, Pct(a[n]), Pct(b[n]), Bar(b[n], maxV, 40))
		}
	}
	return t
}

// Fig4 regenerates the before/after tuning micro-benchmark errors (A53).
func (c *Context) Fig4() (Experiment, error) {
	stages, err := c.StagesA53()
	if err != nil {
		return Experiment{}, err
	}
	untuned := map[string]float64{}
	tuned := map[string]float64{}
	var names []string
	for _, e := range stages[0].Errors {
		untuned[e.Name] = e.Error
		names = append(names, e.Name)
	}
	for _, e := range stages[len(stages)-1].Errors {
		tuned[e.Name] = e.Error
	}
	sort.Strings(names)
	t := errTable("Figure 4: A53 micro-benchmark CPI error, untuned vs tuned",
		names, untuned, tuned, "untuned", "tuned")
	worstU, _, err := validate.MaxError(stages[0].Errors)
	if err != nil {
		return Experiment{}, err
	}
	return Experiment{
		ID:    "fig4",
		Title: "Micro-benchmark CPI error before and after tuning (Cortex-A53 model)",
		Paper: "untuned ~50% average with a 5.6x outlier; tuned ~10% average",
		Measured: fmt.Sprintf("untuned %s average (worst %s %s); tuned %s average",
			Pct(stages[0].MeanError), worstU.Name, Pct(worstU.Error),
			Pct(stages[len(stages)-1].MeanError)),
		Body: t.Render(),
	}, nil
}

// SpecErrors evaluates a config on the Table II workloads: one simulation
// unit per workload, scheduled on the runner and deduplicated through the
// shared cache. It returns per-workload relative CPI errors, their mean
// and the worst case.
func (c *Context) SpecErrors(cfg sim.Config, ws []perturb.Workload) (map[string]float64, float64, float64, error) {
	units := make([]Unit, len(ws))
	for i, w := range ws {
		units[i] = Unit{Config: cfg, Trace: w.Trace}
	}
	results, err := c.runner.RunAll(units)
	if err != nil {
		return nil, 0, 0, err
	}
	out := map[string]float64{}
	total, worst := 0.0, 0.0
	for i, w := range ws {
		e := results[i].CPI() - w.Counters.CPI
		if e < 0 {
			e = -e
		}
		e /= w.Counters.CPI
		out[w.Name] = e
		total += e
		if e > worst {
			worst = e
		}
	}
	return out, total / float64(len(ws)), worst, nil
}

func (c *Context) specFigure(id, title, paperClaim string, board *hw.Board,
	stagesFn func() ([]validate.StageResult, error)) (Experiment, error) {
	stages, err := stagesFn()
	if err != nil {
		return Experiment{}, err
	}
	tuned := stages[len(stages)-1].Config
	ws, err := c.Spec(board)
	if err != nil {
		return Experiment{}, err
	}
	errs, mean, worst, err := c.SpecErrors(tuned, ws)
	if err != nil {
		return Experiment{}, err
	}
	// Context row: how the untuned public model fares on the same held-out
	// workloads (not in the paper's figure, but frames the improvement).
	_, untunedMean, _, err := c.SpecErrors(stages[0].Config, ws)
	if err != nil {
		return Experiment{}, err
	}
	var names []string
	for _, w := range ws {
		names = append(names, w.Name)
	}
	t := errTable(title, names, errs, nil, "CPI error", "")
	return Experiment{
		ID:    id,
		Title: title,
		Paper: paperClaim,
		Measured: fmt.Sprintf("average %s, worst %s (untuned model on the same workloads: %s)",
			Pct(mean), Pct(worst), Pct(untunedMean)),
		Body: t.Render(),
	}, nil
}

// Fig5 regenerates the tuned A53 SPEC errors.
func (c *Context) Fig5() (Experiment, error) {
	return c.specFigure("fig5",
		"Figure 5: SPEC CPI error, tuned in-order (A53) model",
		"7% average, at most 16%", c.plat.A53, c.StagesA53)
}

// Fig6 regenerates the tuned A72 SPEC errors.
func (c *Context) Fig6() (Experiment, error) {
	return c.specFigure("fig6",
		"Figure 6: SPEC CPI error, tuned out-of-order (A72) model",
		"15% average, outliers ~30% (prefetcher-dominated)", c.plat.A72, c.StagesA72)
}

func (c *Context) perturbFigure(id, title, paperClaim string, board *hw.Board,
	stagesFn func() ([]validate.StageResult, error)) (Experiment, error) {
	stages, err := stagesFn()
	if err != nil {
		return Experiment{}, err
	}
	tuned := stages[len(stages)-1].Config
	ws, err := c.Spec(board)
	if err != nil {
		return Experiment{}, err
	}
	_, tunedMean, _, err := c.SpecErrors(tuned, ws)
	if err != nil {
		return Experiment{}, err
	}
	res, err := perturb.WorstNearOptimum(tuned, ws, perturb.Options{
		Restarts: c.opts.PerturbRestarts, Seed: c.opts.Seed,
		Cache: c.runner.Cache(), Parallelism: c.runner.Parallelism(),
		Log: c.opts.Log,
	})
	if err != nil {
		return Experiment{}, err
	}
	errs := map[string]float64{}
	var names []string
	for i, w := range ws {
		errs[w.Name] = res.Errors[i]
		names = append(names, w.Name)
	}
	t := errTable(title, names, errs, nil, "CPI error", "")
	return Experiment{
		ID:    id,
		Title: title,
		Paper: paperClaim,
		Measured: fmt.Sprintf("tuned average %s -> worst one-step %s (%d parameters deviate)",
			Pct(tunedMean), Pct(res.MeanError), res.Deviations),
		Body: t.Render(),
	}, nil
}

// Fig7 regenerates the near-optimum worst case for the A53 model.
func (c *Context) Fig7() (Experiment, error) {
	return c.perturbFigure("fig7",
		"Figure 7: close-to-optimum but inaccurate A53 model",
		"average error grows 7% -> 34%, individual up to 67%", c.plat.A53, c.StagesA53)
}

// Fig8 regenerates the near-optimum worst case for the A72 model.
func (c *Context) Fig8() (Experiment, error) {
	return c.perturbFigure("fig8",
		"Figure 8: close-to-optimum but inaccurate A72 model",
		"average error grows 15% -> ~45%", c.plat.A72, c.StagesA72)
}

// Staged regenerates the Sec. IV-B narrative: error per validation stage.
func (c *Context) Staged() (Experiment, error) {
	a53, err := c.StagesA53()
	if err != nil {
		return Experiment{}, err
	}
	a72, err := c.StagesA72()
	if err != nil {
		return Experiment{}, err
	}
	t := &Table{
		Title:   "Staged validation: mean micro-benchmark CPI error per stage",
		Headers: []string{"stage", "A53", "A72"},
	}
	for i := range a53 {
		t.AddRow(a53[i].Name, Pct(a53[i].MeanError), Pct(a72[i].MeanError))
	}
	return Experiment{
		ID:    "staged",
		Title: "Validation stages (Sec. IV-B)",
		Paper: "untuned ~50% -> first tuning ~33% -> fixes + retuning ~10% (A53)",
		Measured: fmt.Sprintf("A53: %s -> %s -> %s",
			Pct(a53[0].MeanError), Pct(a53[1].MeanError), Pct(a53[2].MeanError)),
		Body: t.Render(),
	}, nil
}

// ByID returns the named experiment function, for driver binaries that run
// a single experiment.
func (c *Context) ByID(id string) (func() (Experiment, error), bool) {
	fns := map[string]func() (Experiment, error){
		"table1": c.Table1, "table2": c.Table2, "fig2": c.Fig2,
		"fig4": c.Fig4, "fig5": c.Fig5, "fig6": c.Fig6,
		"fig7": c.Fig7, "fig8": c.Fig8, "staged": c.Staged,
	}
	fn, ok := fns[id]
	return fn, ok
}

// IDs lists every experiment in paper order.
func IDs() []string {
	return []string{"table1", "table2", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "staged"}
}

// All runs every experiment in paper order. Experiments share the tuned
// models, workload measurements and the simulation cache, so later
// experiments are mostly cache hits; each Experiment records its own
// wall-clock time (which is reported, never rendered, keeping output
// byte-identical across parallelism settings).
func (c *Context) All() ([]Experiment, error) {
	var out []Experiment
	for _, id := range IDs() {
		fn, _ := c.ByID(id)
		c.opts.Log("expt: running %s", id)
		start := time.Now()
		e, err := fn()
		if err != nil {
			return nil, fmt.Errorf("expt %s: %w", id, err)
		}
		e.Elapsed = time.Since(start)
		c.opts.Log("expt: %-6s done in %v", id, e.Elapsed.Round(time.Millisecond))
		out = append(out, e)
	}
	return out, nil
}
