// Package expt regenerates every table and figure of the paper's
// evaluation: Table I (micro-benchmark suite), Table II (SPEC workloads),
// Figure 2 (racing dynamics), Figure 4 (micro-benchmark error before and
// after tuning), Figures 5–6 (SPEC CPI error of the tuned models), Figures
// 7–8 (close-to-optimum worst configurations), plus the staged-validation
// narrative of Sec. IV-B, each as an aligned text table with ASCII bars.
package expt

import (
	"fmt"
	"strings"
	"time"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Bar renders a proportional ASCII bar for a value against a maximum.
func Bar(value, max float64, width int) string {
	if max <= 0 {
		max = 1
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Experiment couples a regenerated artifact with the paper's claim, for
// EXPERIMENTS.md-style reporting.
type Experiment struct {
	ID       string // "table1", "fig4", ...
	Title    string
	Paper    string // what the paper reports
	Measured string // what this reproduction measures
	Body     string // rendered table/figure

	// Elapsed is the wall-clock time the experiment took. It is reported
	// by the drivers on stderr but deliberately excluded from Render, so
	// rendered output stays byte-identical across machines, parallelism
	// settings and cache warmth.
	Elapsed time.Duration
}

// Render formats the experiment as markdown-ish text.
func (e Experiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", e.ID, e.Title)
	fmt.Fprintf(&b, "Paper:    %s\n", e.Paper)
	fmt.Fprintf(&b, "Measured: %s\n\n", e.Measured)
	b.WriteString(e.Body)
	b.WriteByte('\n')
	return b.String()
}
