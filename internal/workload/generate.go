package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"racesim/internal/isa"
	"racesim/internal/trace"
)

// Options parameterizes trace synthesis.
type Options struct {
	// Events is the dynamic instruction target (default 150_000).
	Events int
	// Seed perturbs the generator (combined with the profile name).
	Seed int64
	// WSDivisor scales each profile's paper-scale working set down to
	// something a short trace can exercise, preserving the relative
	// footprint differences between benchmarks (default 32, minimum
	// effective working set 16 KB).
	WSDivisor int
}

const (
	codeBase = 0x10000
	dataBase = 0x2000000
	stubBase = 0x800000 // indirect-branch trampolines and functions
)

// synthInst is one static instruction plus its address-generation role.
type synthInst struct {
	word uint32
	cls  isa.Class
	// For loads/stores: which address stream drives it.
	stream int // index into streams; -1 random-chase; -2 hot stack
}

type block struct {
	pc    uint64
	insts []synthInst
	// terminator behaviour
	kind     termKind
	condWord uint32 // BCC word for conditional terminators
	target   uint64 // taken target
	stubs    []uint64
	callee   int // function index for calls
}

type termKind int

const (
	termCond termKind = iota // conditional skip of the next block
	termLoop                 // backward branch to block 0
	termCall                 // BL to a function, then fall through
	termInd                  // indirect branch through trampolines
)

type function struct {
	pc    uint64
	insts []synthInst
}

// generator holds the static image and dynamic state.
type generator struct {
	p      Profile
	rng    *rand.Rand
	blocks []block
	funcs  []function

	streamPtr []uint64 // per-stream next address
	chasePtr  uint64
	wsMask    uint64
	events    []trace.Event
	flagsSet  bool
	lastInd   map[int]int // per-indirect-block last trampoline index
}

// Generate synthesizes the trace for a profile.
func Generate(p Profile, o Options) (*trace.Trace, error) {
	if p.CodeBlocks < 2 {
		return nil, fmt.Errorf("workload %s: CodeBlocks = %d", p.Name, p.CodeBlocks)
	}
	n := o.Events
	if n <= 0 {
		n = 150_000
	}
	h := fnv.New64a()
	h.Write([]byte(p.Name))
	g := &generator{
		p:       p,
		rng:     rand.New(rand.NewSource(o.Seed ^ int64(h.Sum64()))),
		lastInd: make(map[int]int),
	}
	div := o.WSDivisor
	if div <= 0 {
		div = 32
	}
	ws := uint64(p.WorkingSetKB) * 1024 / uint64(div)
	if ws < 16*1024 {
		ws = 16 * 1024
	}
	// Round the working set mask down to a power of two.
	g.wsMask = 1
	for g.wsMask*2 <= ws {
		g.wsMask *= 2
	}
	g.wsMask--

	g.buildStatic()
	g.walk(n)
	// SPEC-class programs initialize their data structures before the
	// measured region, so zero-page hardware optimizations do not apply.
	return &trace.Trace{Name: p.Name, Events: g.events, WarmData: true}, nil
}

func (g *generator) reg(i int) isa.Reg  { return isa.X(1 + i%15) }
func (g *generator) vreg(i int) isa.Reg { return isa.V(1 + i%15) }

// pickCompute draws a compute instruction word per the profile mix.
func (g *generator) pickCompute(seq int, prevDst isa.Reg) (uint32, isa.Class, isa.Reg) {
	r := g.rng.Float64()
	dst := g.reg(seq * 3)
	src1 := g.reg(g.rng.Intn(15))
	if g.rng.Float64() < g.p.DepProb && prevDst != isa.RegNone && !prevDst.IsVec() {
		src1 = prevDst
	}
	src2 := g.reg(g.rng.Intn(15))
	switch {
	case r < g.p.FPFrac:
		vd, v1, v2 := g.vreg(seq*3), g.vreg(g.rng.Intn(15)), g.vreg(g.rng.Intn(15))
		if g.rng.Float64() < g.p.DepProb && prevDst.IsVec() {
			v1 = prevDst
		}
		ops := []isa.Op{isa.OpFADD, isa.OpFMUL, isa.OpFSUB, isa.OpFADD}
		op := ops[g.rng.Intn(len(ops))]
		if g.rng.Float64() < 0.05 {
			op = isa.OpFDIV
		}
		return isa.EncR(op, vd-isa.V0, v1-isa.V0, v2-isa.V0), isa.ClassOf(op), vd
	case r < g.p.FPFrac+g.p.SIMDFrac:
		vd, v1, v2 := g.vreg(seq*3), g.vreg(g.rng.Intn(15)), g.vreg(g.rng.Intn(15))
		op := isa.OpVADD
		if g.rng.Intn(2) == 0 {
			op = isa.OpVMUL
		}
		return isa.EncR(op, vd-isa.V0, v1-isa.V0, v2-isa.V0), isa.ClassSIMD, vd
	case r < g.p.FPFrac+g.p.SIMDFrac+g.p.MulFrac:
		return isa.EncR(isa.OpMUL, dst, src1, src2), isa.ClassIntMul, dst
	case r < g.p.FPFrac+g.p.SIMDFrac+g.p.MulFrac+g.p.DivFrac:
		return isa.EncR(isa.OpSDIV, dst, src1, src2), isa.ClassIntDiv, dst
	default:
		ops := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpEOR, isa.OpORR}
		op := ops[g.rng.Intn(len(ops))]
		return isa.EncR(op, dst, src1, src2), isa.ClassIntAlu, dst
	}
}

// buildStatic lays out blocks, functions and trampolines.
func (g *generator) buildStatic() {
	nStreams := 8
	g.streamPtr = make([]uint64, nStreams)
	for i := range g.streamPtr {
		g.streamPtr[i] = dataBase + uint64(i)*(g.wsMask+1)/uint64(nStreams)
	}
	g.chasePtr = dataBase

	// Functions.
	for f := 0; f < 4; f++ {
		fn := function{pc: stubBase + uint64(f)*0x100}
		prev := isa.RegNone
		for j := 0; j < 4; j++ {
			w, cls, dst := g.pickCompute(j, prev)
			fn.insts = append(fn.insts, synthInst{word: w, cls: cls})
			prev = dst
		}
		fn.insts = append(fn.insts, synthInst{word: isa.EncRET(), cls: isa.ClassRet})
		g.funcs = append(g.funcs, fn)
	}

	// Blocks.
	pc := uint64(codeBase)
	for i := 0; i < g.p.CodeBlocks; i++ {
		b := block{pc: pc}
		length := 6 + g.rng.Intn(9)
		prev := isa.RegNone
		for j := 0; j < length; j++ {
			r := g.rng.Float64()
			switch {
			case r < g.p.LoadFrac:
				dst := g.reg(j * 5)
				base := g.reg(g.rng.Intn(15))
				si := synthInst{word: isa.EncMem(isa.OpLDRX, dst, base, 0), cls: isa.ClassLoad}
				ar := g.rng.Float64()
				switch {
				case ar < g.p.StreamFrac:
					si.stream = g.rng.Intn(len(g.streamPtr))
				case ar < g.p.StreamFrac+g.p.ChaseFrac:
					si.stream = -1
				default:
					si.stream = -2
				}
				b.insts = append(b.insts, si)
				prev = dst
			case r < g.p.LoadFrac+g.p.StoreFrac:
				data := g.reg(g.rng.Intn(15))
				base := g.reg(g.rng.Intn(15))
				si := synthInst{word: isa.EncMem(isa.OpSTRX, data, base, 0), cls: isa.ClassStore}
				if g.rng.Float64() < g.p.StreamFrac {
					si.stream = g.rng.Intn(len(g.streamPtr))
				} else {
					si.stream = -2
				}
				b.insts = append(b.insts, si)
			default:
				w, cls, dst := g.pickCompute(j, prev)
				b.insts = append(b.insts, synthInst{word: w, cls: cls})
				prev = dst
			}
		}
		// Flag-setting compare before conditional terminators.
		b.insts = append(b.insts, synthInst{
			word: isa.EncI(isa.OpCMPI, 0, g.reg(g.rng.Intn(15)), 64), cls: isa.ClassIntAlu,
		})
		pc += uint64(len(b.insts)+1) * isa.InstSize // +1 for the terminator
		g.blocks = append(g.blocks, b)
	}

	// Terminators, now that every block address is known.
	tr := g.rng
	stubPC := uint64(stubBase + 0x1000)
	for i := range g.blocks {
		b := &g.blocks[i]
		termPC := b.pc + uint64(len(b.insts))*isa.InstSize
		nextPC := uint64(codeBase)
		if i+1 < len(g.blocks) {
			nextPC = g.blocks[i+1].pc
		}
		switch {
		case i == len(g.blocks)-1:
			b.kind = termLoop
			b.target = g.blocks[0].pc
			off := (int64(b.target) - int64(termPC)) / isa.InstSize
			b.condWord = isa.EncBCC(isa.CondNE, off)
		case tr.Float64() < g.p.CallFrac:
			b.kind = termCall
			b.callee = tr.Intn(len(g.funcs))
			b.target = g.funcs[b.callee].pc
			off := (int64(b.target) - int64(termPC)) / isa.InstSize
			b.condWord = isa.EncB(isa.OpBL, off)
		case tr.Float64() < g.p.IndirectFrac*3: // scaled: only block-ends branch
			b.kind = termInd
			b.condWord = isa.EncBR(isa.X(9))
			// Four trampolines, each an unconditional branch to next.
			for s := 0; s < 4; s++ {
				off := (int64(nextPC) - int64(stubPC)) / isa.InstSize
				b.stubs = append(b.stubs, stubPC)
				_ = off
				stubPC += 0x40
			}
			b.target = nextPC
		default:
			b.kind = termCond
			// Taken skips the following block.
			skipTo := uint64(codeBase)
			if i+2 < len(g.blocks) {
				skipTo = g.blocks[i+2].pc
			}
			b.target = skipTo
			off := (int64(skipTo) - int64(termPC)) / isa.InstSize
			b.condWord = isa.EncBCC(isa.CondLT, off)
		}
	}
}

func (g *generator) emit(pc uint64, si synthInst) {
	ev := trace.Event{PC: pc, Word: si.word}
	if si.cls.IsMem() {
		ev.MemAddr = g.address(si)
	}
	g.events = append(g.events, ev)
}

// address produces the dynamic effective address for a memory slot.
func (g *generator) address(si synthInst) uint64 {
	switch si.stream {
	case -1: // chase: dependent-random within the working set
		g.chasePtr = dataBase + (g.chasePtr*2862933555777941757+3037000493)&g.wsMask
		return g.chasePtr &^ 7
	case -2: // hot stack region
		return dataBase + uint64(g.rng.Intn(4096))&^7
	default:
		a := g.streamPtr[si.stream]
		g.streamPtr[si.stream] = dataBase + ((a + 64 - dataBase) & g.wsMask)
		return a &^ 7
	}
}

// walk runs the dynamic instruction stream until n events are emitted.
func (g *generator) walk(n int) {
	g.events = make([]trace.Event, 0, n+64)
	i := 0
	for len(g.events) < n {
		b := &g.blocks[i]
		for j, si := range b.insts {
			g.emit(b.pc+uint64(j)*isa.InstSize, si)
		}
		termPC := b.pc + uint64(len(b.insts))*isa.InstSize
		switch b.kind {
		case termLoop:
			g.events = append(g.events, trace.Event{
				PC: termPC, Word: b.condWord, Taken: true, Target: b.target,
			})
			i = 0
		case termCall:
			g.events = append(g.events, trace.Event{
				PC: termPC, Word: b.condWord, Taken: true, Target: b.target,
			})
			fn := g.funcs[b.callee]
			for j, si := range fn.insts {
				ev := trace.Event{PC: fn.pc + uint64(j)*isa.InstSize, Word: si.word}
				if si.cls == isa.ClassRet {
					ev.Taken = true
					ev.Target = termPC + isa.InstSize
				}
				g.events = append(g.events, ev)
			}
			i++
		case termInd:
			// Markov target choice: mostly repeat the previous target.
			last := g.lastInd[i]
			if g.rng.Float64() > 0.6 {
				last = g.rng.Intn(len(b.stubs))
				g.lastInd[i] = last
			}
			stub := b.stubs[last]
			g.events = append(g.events, trace.Event{
				PC: termPC, Word: b.condWord, Taken: true, Target: stub,
			})
			// The trampoline itself: unconditional branch to next block.
			off := (int64(b.target) - int64(stub)) / isa.InstSize
			g.events = append(g.events, trace.Event{
				PC: stub, Word: isa.EncB(isa.OpB, off), Taken: true, Target: b.target,
			})
			i++
		default: // termCond
			taken := false
			if g.rng.Float64() < g.p.BranchRandom {
				taken = g.rng.Intn(2) == 0
			} else {
				taken = g.rng.Float64() < 0.1 // biased not-taken
			}
			g.events = append(g.events, trace.Event{
				PC: termPC, Word: b.condWord, Taken: taken, Target: b.target,
			})
			if taken {
				i += 2
			} else {
				i++
			}
		}
		if i >= len(g.blocks) {
			i = 0
		}
	}
	g.events = g.events[:n]
}
