package workload

// Profile characterizes one synthetic benchmark.
type Profile struct {
	Name string
	// SourceFile and Line document the paper's Table II region anchors.
	SourceFile string
	Line       int
	// PaperInstructions is the dynamic count from Table II.
	PaperInstructions uint64

	// Memory behaviour.
	WorkingSetKB int
	StreamFrac   float64 // loads following PC-keyed strided streams
	ChaseFrac    float64 // loads at dependent-random addresses
	LoadFrac     float64 // fraction of instructions that load
	StoreFrac    float64

	// Control behaviour.
	BranchRandom float64 // probability a conditional outcome is random
	IndirectFrac float64 // fraction of blocks ending in indirect branches
	CallFrac     float64 // fraction of blocks ending in calls
	CodeBlocks   int     // hot-code size (i-cache pressure)

	// Compute behaviour.
	FPFrac   float64 // fraction of compute ops that are floating point
	SIMDFrac float64 // fraction of compute ops that are SIMD
	MulFrac  float64 // fraction of compute ops that multiply
	DivFrac  float64
	DepProb  float64 // probability an operand chains to a recent producer
}

// Profiles returns the Table II benchmarks in paper order.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "mcf", SourceFile: "psimplex.c", Line: 331, PaperInstructions: 12_000_000_000,
			WorkingSetKB: 16384, StreamFrac: 0.15, ChaseFrac: 0.70, LoadFrac: 0.34, StoreFrac: 0.09,
			BranchRandom: 0.25, IndirectFrac: 0.02, CallFrac: 0.06, CodeBlocks: 24,
			FPFrac: 0.02, SIMDFrac: 0.00, MulFrac: 0.04, DivFrac: 0.004, DepProb: 0.52,
		},
		{
			Name: "povray", SourceFile: "povray.cpp", Line: 258, PaperInstructions: 2_450_000_000,
			WorkingSetKB: 512, StreamFrac: 0.75, ChaseFrac: 0.05, LoadFrac: 0.30, StoreFrac: 0.12,
			BranchRandom: 0.10, IndirectFrac: 0.04, CallFrac: 0.13, CodeBlocks: 40,
			FPFrac: 0.38, SIMDFrac: 0.05, MulFrac: 0.10, DivFrac: 0.015, DepProb: 0.45,
		},
		{
			Name: "omnetpp", SourceFile: "simulator/cmdenv.cc", Line: 268, PaperInstructions: 10_800_000_000,
			WorkingSetKB: 8192, StreamFrac: 0.20, ChaseFrac: 0.55, LoadFrac: 0.32, StoreFrac: 0.14,
			BranchRandom: 0.20, IndirectFrac: 0.09, CallFrac: 0.11, CodeBlocks: 56,
			FPFrac: 0.03, SIMDFrac: 0.00, MulFrac: 0.03, DivFrac: 0.003, DepProb: 0.50,
		},
		{
			Name: "xalancbmk", SourceFile: "XalanExe.cpp", Line: 842, PaperInstructions: 443_000_000,
			WorkingSetKB: 4096, StreamFrac: 0.25, ChaseFrac: 0.45, LoadFrac: 0.31, StoreFrac: 0.10,
			BranchRandom: 0.15, IndirectFrac: 0.12, CallFrac: 0.12, CodeBlocks: 64,
			FPFrac: 0.01, SIMDFrac: 0.00, MulFrac: 0.03, DivFrac: 0.002, DepProb: 0.46,
		},
		{
			Name: "deepsjeng", SourceFile: "epd.cpp", Line: 365, PaperInstructions: 14_900_000_000,
			WorkingSetKB: 2048, StreamFrac: 0.30, ChaseFrac: 0.30, LoadFrac: 0.26, StoreFrac: 0.11,
			BranchRandom: 0.34, IndirectFrac: 0.04, CallFrac: 0.09, CodeBlocks: 32,
			FPFrac: 0.01, SIMDFrac: 0.00, MulFrac: 0.05, DivFrac: 0.004, DepProb: 0.55,
		},
		{
			Name: "x264", SourceFile: "x264_src/x264.c", Line: 173, PaperInstructions: 14_800_000_000,
			WorkingSetKB: 4096, StreamFrac: 0.85, ChaseFrac: 0.04, LoadFrac: 0.34, StoreFrac: 0.17,
			BranchRandom: 0.08, IndirectFrac: 0.02, CallFrac: 0.06, CodeBlocks: 28,
			FPFrac: 0.06, SIMDFrac: 0.30, MulFrac: 0.08, DivFrac: 0.003, DepProb: 0.38,
		},
		{
			Name: "nab", SourceFile: "nabmd.c", Line: 127, PaperInstructions: 14_200_000_000,
			WorkingSetKB: 1024, StreamFrac: 0.60, ChaseFrac: 0.10, LoadFrac: 0.30, StoreFrac: 0.12,
			BranchRandom: 0.10, IndirectFrac: 0.02, CallFrac: 0.07, CodeBlocks: 24,
			FPFrac: 0.42, SIMDFrac: 0.04, MulFrac: 0.12, DivFrac: 0.012, DepProb: 0.50,
		},
		{
			Name: "leela", SourceFile: "Leela.cpp", Line: 62, PaperInstructions: 10_300_000_000,
			WorkingSetKB: 512, StreamFrac: 0.35, ChaseFrac: 0.30, LoadFrac: 0.27, StoreFrac: 0.10,
			BranchRandom: 0.24, IndirectFrac: 0.05, CallFrac: 0.11, CodeBlocks: 36,
			FPFrac: 0.06, SIMDFrac: 0.00, MulFrac: 0.06, DivFrac: 0.006, DepProb: 0.50,
		},
		{
			Name: "imagick", SourceFile: "wang/mogrify.cpp", Line: 168, PaperInstructions: 13_400_000_000,
			WorkingSetKB: 2048, StreamFrac: 0.80, ChaseFrac: 0.04, LoadFrac: 0.31, StoreFrac: 0.14,
			BranchRandom: 0.05, IndirectFrac: 0.01, CallFrac: 0.05, CodeBlocks: 20,
			FPFrac: 0.45, SIMDFrac: 0.06, MulFrac: 0.14, DivFrac: 0.010, DepProb: 0.35,
		},
		{
			Name: "gcc", SourceFile: "toplev.c", Line: 2461, PaperInstructions: 9_000_000_000,
			WorkingSetKB: 8192, StreamFrac: 0.30, ChaseFrac: 0.40, LoadFrac: 0.29, StoreFrac: 0.14,
			BranchRandom: 0.20, IndirectFrac: 0.10, CallFrac: 0.13, CodeBlocks: 96,
			FPFrac: 0.01, SIMDFrac: 0.00, MulFrac: 0.03, DivFrac: 0.002, DepProb: 0.48,
		},
		{
			Name: "xz", SourceFile: "spec_xz.c", Line: 229, PaperInstructions: 10_800_000_000,
			WorkingSetKB: 16384, StreamFrac: 0.45, ChaseFrac: 0.35, LoadFrac: 0.30, StoreFrac: 0.12,
			BranchRandom: 0.17, IndirectFrac: 0.02, CallFrac: 0.05, CodeBlocks: 28,
			FPFrac: 0.00, SIMDFrac: 0.00, MulFrac: 0.05, DivFrac: 0.003, DepProb: 0.62,
		},
	}
}

// ByName returns the named profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
