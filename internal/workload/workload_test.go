package workload

import (
	"testing"

	"racesim/internal/hw"
	"racesim/internal/isa"
	"racesim/internal/sim"
)

func TestProfilesMatchTable2(t *testing.T) {
	ps := Profiles()
	if len(ps) != 11 {
		t.Fatalf("%d profiles, Table II lists 11", len(ps))
	}
	counts := map[string]uint64{
		"mcf": 12_000_000_000, "povray": 2_450_000_000, "omnetpp": 10_800_000_000,
		"xalancbmk": 443_000_000, "deepsjeng": 14_900_000_000, "x264": 14_800_000_000,
		"nab": 14_200_000_000, "leela": 10_300_000_000, "imagick": 13_400_000_000,
		"gcc": 9_000_000_000, "xz": 10_800_000_000,
	}
	for _, p := range ps {
		want, ok := counts[p.Name]
		if !ok {
			t.Errorf("unexpected profile %s", p.Name)
			continue
		}
		if p.PaperInstructions != want {
			t.Errorf("%s: paper count %d, want %d", p.Name, p.PaperInstructions, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("mcf")
	a, err := Generate(p, Options{Events: 20_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, Options{Events: 20_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("lengths differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGeneratedTracesAreWellFormed(t *testing.T) {
	var d isa.Decoder
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			tr, err := Generate(p, Options{Events: 30_000})
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() != 30_000 {
				t.Fatalf("got %d events", tr.Len())
			}
			wordAt := map[uint64]uint32{}
			for _, ev := range tr.Events {
				in, err := d.Decode(ev.PC, ev.Word)
				if err != nil {
					t.Fatalf("invalid word at %#x: %v", ev.PC, err)
				}
				if w, seen := wordAt[ev.PC]; seen && w != ev.Word {
					t.Fatalf("PC %#x has two different words (self-modifying code?)", ev.PC)
				}
				wordAt[ev.PC] = ev.Word
				if in.Cls.IsMem() && ev.MemAddr == 0 {
					t.Fatal("memory op without address")
				}
				if in.Cls.IsBranch() && ev.Taken && ev.Target == 0 {
					t.Fatal("taken branch without target")
				}
			}
		})
	}
}

func TestProfilesShapeClassMix(t *testing.T) {
	frac := func(name string, classes ...isa.Class) float64 {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		tr, err := Generate(p, Options{Events: 40_000})
		if err != nil {
			t.Fatal(err)
		}
		mix := tr.ClassMix()
		n := 0
		for _, c := range classes {
			n += mix[c]
		}
		return float64(n) / float64(tr.Len())
	}
	if f := frac("imagick", isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv); f < 0.10 {
		t.Errorf("imagick FP fraction %.2f too low", f)
	}
	if f := frac("mcf", isa.ClassFPAdd, isa.ClassFPMul); f > 0.05 {
		t.Errorf("mcf FP fraction %.2f too high", f)
	}
	if f := frac("mcf", isa.ClassLoad); f < 0.2 {
		t.Errorf("mcf load fraction %.2f too low", f)
	}
	if f := frac("x264", isa.ClassSIMD); f < 0.05 {
		t.Errorf("x264 SIMD fraction %.2f too low", f)
	}
	if f := frac("xalancbmk", isa.ClassBranchInd); f < 0.002 {
		t.Errorf("xalancbmk indirect fraction %.4f too low", f)
	}
}

func TestWorkloadsRunOnModelsAndBoards(t *testing.T) {
	plat, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mcf", "povray", "x264"} {
		p, _ := ByName(name)
		tr, err := Generate(p, Options{Events: 40_000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.PublicA53().Run(tr)
		if err != nil {
			t.Fatalf("%s on public A53: %v", name, err)
		}
		if res.CPI() <= 0.3 || res.CPI() > 100 {
			t.Errorf("%s: implausible CPI %.2f", name, res.CPI())
		}
		c, err := plat.A72.Measure(tr)
		if err != nil {
			t.Fatalf("%s on board: %v", name, err)
		}
		if c.CPI <= 0.2 || c.CPI > 100 {
			t.Errorf("%s: implausible board CPI %.2f", name, c.CPI)
		}
	}
}

func TestMemoryBoundVsComputeBoundOrdering(t *testing.T) {
	plat, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	cpi := func(name string) float64 {
		p, _ := ByName(name)
		tr, err := Generate(p, Options{Events: 60_000})
		if err != nil {
			t.Fatal(err)
		}
		c, err := plat.A53.Measure(tr)
		if err != nil {
			t.Fatal(err)
		}
		return c.CPI
	}
	if mcf, img := cpi("mcf"), cpi("imagick"); mcf <= img {
		t.Errorf("mcf CPI %.2f should exceed imagick %.2f (memory-bound vs compute)", mcf, img)
	}
}
