// Package workload synthesizes SPEC CPU2017-like instruction traces for
// the eleven benchmarks of the paper's Table II. Each Profile encodes the
// benchmark's published character — instruction mix, working-set size,
// streaming vs. pointer-chasing access, branch predictability, indirect
// control flow — and drives a deterministic generator that lays out a
// static code image and walks it dynamically.
//
// The traces play the role of the paper's SPEC region traces: held-out
// macro workloads that stress component interactions the tuning
// micro-benchmarks (internal/ubench) do not. They are never shown to the
// tuner; Figures 5–8 evaluate tuned and perturbed models against them.
// Generation is a pure function of (Profile, Options), so the same seed
// and event budget always produce the identical trace — a requirement for
// byte-identical experiment reruns and for simulation-cache hits across
// processes.
package workload
