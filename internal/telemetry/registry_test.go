package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestSnapshotDeterministicBytes: two registries populated in different
// orders with the same values must render byte-identical snapshots.
func TestSnapshotDeterministicBytes(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter("zz_total", "last family", L("kind", "b")).Add(3) },
			func() { r.Counter("zz_total", "last family", L("kind", "a")).Add(7) },
			func() { r.Gauge("aa_depth", "first family").Set(4.5) },
			func() {
				h := r.Histogram("mm_seconds", "middle family", []float64{0.1, 1, 10})
				h.Observe(0.05)
				h.Observe(5)
			},
		}
		for _, i := range order {
			ops[i]()
		}
		var b bytes.Buffer
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	if a != b {
		t.Fatalf("snapshot bytes depend on registration order:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	// Families must appear sorted by name.
	ia := strings.Index(a, "aa_depth")
	im := strings.Index(a, "mm_seconds")
	iz := strings.Index(a, "zz_total")
	if !(ia < im && im < iz) {
		t.Fatalf("families not sorted by name:\n%s", a)
	}
	// Samples within a family sorted by label signature.
	if strings.Index(a, `zz_total{kind="a"}`) > strings.Index(a, `zz_total{kind="b"}`) {
		t.Fatalf("samples not sorted by label signature:\n%s", a)
	}
}

func TestSnapshotIsValidPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("racesim_jobs_total", "jobs executed", L("kind", "run"), L("status", "done")).Add(12)
	r.Gauge("racesim_job_queue_depth", "queued jobs").Set(3)
	r.GaugeFunc("racesim_build_info", "build metadata",
		func() float64 { return 1 },
		L("version", "v0.10.0"), L("go", "go1.24.0"), L("commit", "deadbeef"))
	h := r.Histogram("racesim_job_run_seconds", "job run time", DurationBuckets, L("kind", "run"))
	for _, v := range []float64{0.0005, 0.001, 0.3, 2, 400} {
		h.Observe(v)
	}
	r.CounterFunc("racesim_chaos_faults_total", "fired faults",
		func() float64 { return 5 }, L("kind", "dropped"))
	// A label value exercising every escape.
	r.Gauge("racesim_escape", "escapes", L("v", "a\\b\"c\nd")).Set(1)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus(b.String()); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
}

// TestHistogramBucketBoundaries: observations landing exactly on a
// bucket's upper bound count into that bucket (le = less-or-equal),
// values past the last bound land in +Inf only, and the rendered
// buckets are cumulative.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{1, 1, 2, 3, 4, 4.000001, 100} {
		h.Observe(v)
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_bucket{le="1"} 2`,    // the two 1.0 observations: exactly on the bound
		`h_bucket{le="2"} 3`,    // + the 2.0 observation
		`h_bucket{le="4"} 5`,    // + 3.0 and 4.0
		`h_bucket{le="+Inf"} 7`, // + 4.000001 and 100
		`h_count 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count() = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 1+1+2+3+4+4.000001+100.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum() = %v, want %v", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{0.01, 0.1, 1, 10})
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile should be 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // all in the (0.01, 0.1] bucket
	}
	got := h.Quantile(0.5)
	if got < 0.01 || got > 0.1 {
		t.Errorf("p50 = %v, want within the holding bucket (0.01, 0.1]", got)
	}
	h.Observe(1e9) // one +Inf-bucket outlier: estimates clamp to last bound
	if got := h.Quantile(1); got != 10 {
		t.Errorf("p100 with +Inf mass = %v, want clamp to 10", got)
	}
}

// TestConcurrentInstruments hammers every instrument type from many
// goroutines while snapshotting — the -race contract. Counts are exact.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.5})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.9)
				if i%100 == 0 {
					var b bytes.Buffer
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

// TestSameInstrumentReturned: get-or-create semantics — the same
// name+labels yields the same instrument; different labels a sibling.
func TestSameInstrumentReturned(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("k", "1"))
	b := r.Counter("x_total", "", L("k", "1"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "", L("k", "2"))
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "")
}
