package telemetry

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceHeader is the HTTP header carrying a span context across
// process hops: "<trace-id>-<span-id>". The coordinator stamps it on
// every POST /v1/jobs; the worker parents its job span under it; the
// engine parents its spans under the worker's run span — so a sweep's
// flight recorder reconstructs the whole distributed run as one tree.
const TraceHeader = "X-Racesim-Trace"

// SpanContext identifies one span within one trace — the part of a span
// that crosses process boundaries. The zero value means "no trace".
type SpanContext struct {
	Trace string // 16 hex chars shared by every span of one run
	Span  string // 16 hex chars unique per span
}

// Valid reports whether the context carries a trace.
func (sc SpanContext) Valid() bool { return sc.Trace != "" && sc.Span != "" }

// Header renders the context in TraceHeader form.
func (sc SpanContext) Header() string {
	if !sc.Valid() {
		return ""
	}
	return sc.Trace + "-" + sc.Span
}

// ParseHeader decodes a TraceHeader value; malformed input returns the
// zero (invalid) context — tracing is best-effort, a bad header must
// never fail a job.
func ParseHeader(v string) SpanContext {
	trace, span, ok := strings.Cut(strings.TrimSpace(v), "-")
	if !ok || trace == "" || span == "" {
		return SpanContext{}
	}
	if !isHexID(trace) || !isHexID(span) {
		return SpanContext{}
	}
	return SpanContext{Trace: trace, Span: span}
}

func isHexID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// NewID returns a fresh random 16-hex-char identifier (trace or span).
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still a usable (if colliding) fallback.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Span is one timed operation in a trace. Spans are plain data: they
// marshal to one JSONL line in the flight recorder and travel between
// processes inside job results.
type Span struct {
	Trace  string    `json:"trace"`
	ID     string    `json:"id"`
	Parent string    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	// DurationNS is the span's wall-clock duration in nanoseconds.
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Context returns the span's own context (for parenting children).
func (s Span) Context() SpanContext { return SpanContext{Trace: s.Trace, Span: s.ID} }

// Recorder accumulates spans for one run — the flight recorder. A nil
// *Recorder is a valid no-op sink, so layers thread "maybe tracing"
// without branching.
type Recorder struct {
	mu    sync.Mutex
	spans []Span
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether spans are being collected.
func (r *Recorder) Enabled() bool { return r != nil }

// Add appends finished spans (local or collected from a remote
// process). Nil receiver discards.
func (r *Recorder) Add(spans ...Span) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, spans...)
	r.mu.Unlock()
}

// Spans snapshots the recorded spans in insertion order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// ActiveSpan is an in-progress span; End records it.
type ActiveSpan struct {
	rec   *Recorder
	span  Span
	start time.Time
}

// StartSpan opens a span under parent (zero parent = a root span with a
// fresh trace id) and returns it active. On a nil recorder the span is
// still timed and its context usable for propagation — it just never
// lands anywhere.
func (r *Recorder) StartSpan(name string, parent SpanContext, attrs map[string]string) *ActiveSpan {
	sp := Span{ID: NewID(), Name: name, Attrs: attrs}
	if parent.Valid() {
		sp.Trace = parent.Trace
		sp.Parent = parent.Span
	} else {
		sp.Trace = NewID()
	}
	now := time.Now()
	sp.Start = now
	return &ActiveSpan{rec: r, span: sp, start: now}
}

// Context returns the active span's context for parenting children and
// header propagation.
func (a *ActiveSpan) Context() SpanContext { return a.span.Context() }

// SetAttr sets one attribute on the span (last write wins).
func (a *ActiveSpan) SetAttr(key, value string) {
	if a.span.Attrs == nil {
		a.span.Attrs = map[string]string{}
	}
	a.span.Attrs[key] = value
}

// End stamps the duration and records the span.
func (a *ActiveSpan) End() {
	a.span.DurationNS = time.Since(a.start).Nanoseconds()
	a.rec.Add(a.span)
}

// WriteJSONL writes every recorded span as one JSON object per line —
// the flight-recorder file format (`racesim sweep -trace-out`). Spans
// are ordered by start time (ties broken by span id) so the file is
// deterministic for a given set of spans.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	spans := r.Spans()
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a flight-recorder file back into spans (tests, trace
// tooling). Blank lines are skipped; a malformed line is an error
// naming its line number.
func ReadJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var spans []Span
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var sp Span
		if err := json.Unmarshal([]byte(text), &sp); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

// ctxKey is the context key carrying a SpanContext across API layers
// (the engine client reads it to stamp TraceHeader on submissions).
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sc.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext extracts the span context from ctx (zero when absent).
func SpanFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// Percentiles returns the exact p-quantiles of ds (nearest-rank) in the
// order requested. Used for the sweep's end-of-run p50/p90/p99 unit
// latency summary, where the full sample set is in hand and a histogram
// estimate would be needlessly approximate. Empty input yields zeros.
func Percentiles(ds []time.Duration, ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(ds) == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		// Nearest-rank: ceil(p*n), 1-based.
		rank := int(p*float64(len(sorted)) + 0.9999999)
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		out[i] = sorted[rank-1]
	}
	return out
}
