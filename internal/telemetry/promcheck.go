package telemetry

import (
	"fmt"
	"regexp"
	"strings"
)

// promLine matches every legal non-comment line of the text exposition
// format: name{labels} value. A minimal validity check that every
// snapshot line parses.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// ValidatePrometheus checks text against the exposition format rules:
// every line is a comment or a parsable sample, every sample's family
// has a preceding TYPE line, histogram buckets are cumulative and end
// with +Inf. Shared with the engine's /metrics test via this package.
func ValidatePrometheus(text string) error {
	typed := map[string]string{}
	var lastBucketFamily string
	var lastCum uint64
	sawInf := true
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typed[parts[2]] = parts[3]
			continue
		case strings.HasPrefix(line, "# HELP "):
			continue
		case strings.HasPrefix(line, "#"):
			continue
		case strings.TrimSpace(line) == "":
			return fmt.Errorf("line %d: blank line inside exposition", ln+1)
		}
		if !promLine.MatchString(line) {
			return fmt.Errorf("line %d: unparsable sample: %q", ln+1, line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if k, ok := typed[strings.TrimSuffix(name, suffix)]; ok && k == "histogram" {
					base = strings.TrimSuffix(name, suffix)
				}
			}
		}
		if _, ok := typed[base]; !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE line", ln+1, name)
		}
		// Histogram bucket monotonicity + +Inf terminator.
		if strings.HasSuffix(name, "_bucket") && typed[base] == "histogram" {
			var cum uint64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &cum); err != nil {
				return fmt.Errorf("line %d: bucket value not an integer: %q", ln+1, line)
			}
			if base != lastBucketFamily {
				if !sawInf {
					return fmt.Errorf("histogram %q ended without a +Inf bucket", lastBucketFamily)
				}
				lastBucketFamily, lastCum, sawInf = base, 0, false
			}
			if cum < lastCum {
				return fmt.Errorf("line %d: bucket counts not cumulative: %q", ln+1, line)
			}
			lastCum = cum
			if strings.Contains(line, `le="+Inf"`) {
				sawInf = true
				lastBucketFamily, lastCum = "", 0
			}
		}
	}
	if !sawInf {
		return fmt.Errorf("histogram %q ended without a +Inf bucket", lastBucketFamily)
	}
	return nil
}
