// Package telemetry is the dependency-free observability fabric under
// every racesim layer: a metrics registry (counters, gauges and
// fixed-bucket histograms with a deterministic Prometheus text-format
// snapshot) and lightweight spans (trace-id/span-id with start/duration
// and attributes) propagated coordinator → worker → engine over the
// X-Racesim-Trace header and assembled into a flight-recorder JSONL.
//
// Design constraints, in order:
//
//   - zero dependencies: the package imports only the standard library,
//     so the simulation core and every fabric layer can instrument
//     without pulling a client library into the module;
//   - race-safe: instruments are lock-free (atomics) on the hot path and
//     the registry mutex is held only for instrument creation and
//     snapshotting, so instrumented code is safe (and cheap) under
//     `go test -race`;
//   - deterministic snapshots: two registries holding the same values
//     render byte-identical /metrics bodies — families sort by name,
//     samples by label signature — so snapshots diff cleanly in tests
//     and scrapes never reorder between polls;
//   - observation must not perturb: collectors (CounterFunc/GaugeFunc)
//     read existing Stats() snapshots at scrape time instead of
//     threading new counters through hot loops, so instrumenting a layer
//     cannot change its output or its timing contract.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key=value pair attached to an instrument.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Instrument kinds, in Prometheus exposition terms.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Counter is a monotonically increasing count, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error; they are ignored
// so a counter can never decrease).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observation counts per
// upper bound (cumulative in the rendered form, per Prometheus rules)
// plus a running sum and count. Buckets are immutable after creation.
type Histogram struct {
	bounds  []float64       // sorted upper bounds, +Inf excluded
	buckets []atomic.Uint64 // one per bound (non-cumulative internally)
	inf     atomic.Uint64   // observations above every bound
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v: sort.SearchFloat64s gives the first bound >= v
	// only for exact matches; use "v <= bound" semantics per Prometheus
	// (le = less-or-equal).
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	if i < len(h.bounds) {
		h.buckets[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// by linear interpolation inside the holding bucket — the usual
// Prometheus histogram_quantile estimate. It returns 0 before any
// observation; an estimate landing in the +Inf bucket clamps to the
// highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i, b := range h.bounds {
		n := h.buckets[i].Load()
		if n == 0 {
			lower = b
			continue
		}
		if float64(cum+n) >= rank {
			within := rank - float64(cum)
			return lower + (b-lower)*(within/float64(n))
		}
		cum += n
		lower = b
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// DurationBuckets is a general-purpose latency bucket ladder in seconds:
// 1ms to 5min, roughly geometric. Suitable for job wait/run times.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// instrument is one registered sample: an instrument kind, its labels,
// and a read function (or the concrete instrument for hot-path types).
type instrument struct {
	name   string
	kind   string
	labels []Label
	sig    string // canonical label signature, the sort key

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
	readFunc  func() float64 // CounterFunc / GaugeFunc collector
}

// family groups every sample sharing a metric name.
type family struct {
	name string
	help string
	kind string
	// samples keyed by label signature; creation-ordered irrelevant —
	// snapshots sort by signature.
	samples map[string]*instrument
}

// Registry holds instruments and renders deterministic snapshots. The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelSig renders labels canonically (sorted by key) for use as a map
// key and deterministic sort key. Duplicate keys are a programming
// error and panic.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			if ls[i-1].Key == l.Key {
				panic(fmt.Sprintf("telemetry: duplicate label key %q", l.Key))
			}
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(escapeLabel(l.Value))
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double-quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register get-or-creates the family and sample slot for (name, labels),
// panicking on a kind conflict — a programming error, not runtime input.
func (r *Registry) register(name, help, kind string, labels []Label) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, samples: map[string]*instrument{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	sig := labelSig(labels)
	if inst, ok := f.samples[sig]; ok {
		return inst
	}
	inst := &instrument{name: name, kind: kind, labels: append([]Label(nil), labels...), sig: sig}
	f.samples[sig] = inst
	return inst
}

// Counter get-or-creates a counter sample. Calling again with the same
// name and labels returns the same counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	inst := r.register(name, help, kindCounter, labels)
	if inst.counter == nil && inst.readFunc == nil {
		inst.counter = &Counter{}
	}
	return inst.counter
}

// Gauge get-or-creates a gauge sample.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	inst := r.register(name, help, kindGauge, labels)
	if inst.gauge == nil && inst.readFunc == nil {
		inst.gauge = &Gauge{}
	}
	return inst.gauge
}

// Histogram get-or-creates a fixed-bucket histogram sample. bounds are
// upper bounds in ascending order (+Inf is implicit); they must match
// on repeated registration of the same sample.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	inst := r.register(name, help, kindHistogram, labels)
	if inst.histogram == nil {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket bound", name))
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("telemetry: histogram %q bounds are not ascending", name))
		}
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.buckets = make([]atomic.Uint64, len(h.bounds))
		inst.histogram = h
	}
	return inst.histogram
}

// CounterFunc registers a collector rendered as a counter: fn is read
// at snapshot time. Use it to export an existing monotonic statistic
// (cache hits, fired faults) without double-counting state.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	inst := r.register(name, help, kindCounter, labels)
	inst.readFunc = fn
}

// GaugeFunc registers a collector rendered as a gauge (queue depth,
// occupancy) read at snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	inst := r.register(name, help, kindGauge, labels)
	inst.readFunc = fn
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trippable float, "+Inf"/"-Inf"/"NaN" spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders a full label set (base sample labels plus any
// extras, e.g. the histogram "le") in canonical sorted order.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). The output is deterministic: families sort by
// name, samples by canonical label signature — equal registry contents
// produce equal bytes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		sigs := make([]string, 0, len(f.samples))
		for sig := range f.samples {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			inst := f.samples[sig]
			switch {
			case inst.readFunc != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(inst.labels), formatValue(inst.readFunc()))
			case inst.counter != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(inst.labels), formatValue(float64(inst.counter.Value())))
			case inst.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(inst.labels), formatValue(inst.gauge.Value()))
			case inst.histogram != nil:
				h := inst.histogram
				// Cumulative bucket counts; read each bucket once so the
				// rendered buckets are internally consistent even while
				// observations continue. count is rendered from the bucket
				// total for the same reason (the atomic count may be ahead).
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.buckets[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						renderLabels(inst.labels, L("le", formatValue(bound))), cum)
				}
				cum += h.inf.Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					renderLabels(inst.labels, L("le", "+Inf")), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, renderLabels(inst.labels), formatValue(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, renderLabels(inst.labels), cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
