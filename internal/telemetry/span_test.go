package telemetry

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewID(), Span: NewID()}
	got := ParseHeader(sc.Header())
	if got != sc {
		t.Fatalf("round trip: %+v != %+v", got, sc)
	}
	for _, bad := range []string{"", "x", "abc-def", "not a header",
		"0123456789abcdef", "0123456789abcdef-short",
		"0123456789ABCDEF-0123456789abcdef", // upper-case hex is not ours
	} {
		if sc := ParseHeader(bad); sc.Valid() {
			t.Errorf("ParseHeader(%q) = %+v, want invalid", bad, sc)
		}
	}
	if (SpanContext{}).Header() != "" {
		t.Error("zero context should render an empty header")
	}
}

func TestSpanTreeAndJSONLRoundTrip(t *testing.T) {
	rec := NewRecorder()
	root := rec.StartSpan("sweep", SpanContext{}, map[string]string{"scenario": "all"})
	child := rec.StartSpan("unit", root.Context(), nil)
	child.SetAttr("unit", "fig4")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Insertion order: child ended first.
	if spans[0].Name != "unit" || spans[1].Name != "sweep" {
		t.Fatalf("unexpected span order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Trace != spans[1].Trace {
		t.Error("child span left the parent's trace")
	}
	if spans[0].Parent != spans[1].ID {
		t.Error("child span not parented to root")
	}
	if spans[0].DurationNS <= 0 {
		t.Error("child span has no duration")
	}

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip lost spans: %d", len(back))
	}
	// JSONL is start-time ordered: the root started first.
	if back[0].Name != "sweep" || back[1].Name != "unit" {
		t.Fatalf("JSONL not start-ordered: %q, %q", back[0].Name, back[1].Name)
	}
	if back[1].Attrs["unit"] != "fig4" {
		t.Errorf("attrs lost in round trip: %+v", back[1].Attrs)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var rec *Recorder
	if rec.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	sp := rec.StartSpan("x", SpanContext{}, nil)
	if !sp.Context().Valid() {
		t.Fatal("span context unusable on nil recorder")
	}
	sp.End() // must not panic
	rec.Add(Span{})
	if rec.Spans() != nil {
		t.Fatal("nil recorder recorded spans")
	}
}

func TestRecorderConcurrentAdd(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := rec.StartSpan("s", SpanContext{}, nil)
				sp.End()
				_ = rec.Spans()
			}
		}()
	}
	wg.Wait()
	if got := len(rec.Spans()); got != 8*200 {
		t.Fatalf("got %d spans, want %d", got, 8*200)
	}
}

func TestContextPropagation(t *testing.T) {
	sc := SpanContext{Trace: NewID(), Span: NewID()}
	ctx := ContextWithSpan(context.Background(), sc)
	if got := SpanFromContext(ctx); got != sc {
		t.Fatalf("context round trip: %+v", got)
	}
	if got := SpanFromContext(context.Background()); got.Valid() {
		t.Fatalf("empty context yielded %+v", got)
	}
	// Invalid contexts are not stored.
	ctx = ContextWithSpan(context.Background(), SpanContext{Trace: "x"})
	if got := SpanFromContext(ctx); got.Valid() {
		t.Fatalf("invalid context stored: %+v", got)
	}
}

func TestPercentiles(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	ps := Percentiles(ds, 0.5, 0.9, 0.99, 1)
	want := []time.Duration{50 * time.Millisecond, 90 * time.Millisecond, 99 * time.Millisecond, 100 * time.Millisecond}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("p[%d] = %v, want %v", i, ps[i], want[i])
		}
	}
	if got := Percentiles(nil, 0.5); got[0] != 0 {
		t.Errorf("empty input p50 = %v, want 0", got[0])
	}
	if got := Percentiles([]time.Duration{7}, 0, 0.5, 1); got[0] != 7 || got[2] != 7 {
		t.Errorf("single sample percentiles = %v", got)
	}
}
