package asm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"racesim/internal/isa"
)

// emit performs pass 2: encode instructions and build data segments.
func (a *assembler) emit(stmts []statement) (*isa.Program, error) {
	p := &isa.Program{Entry: a.org, Symbols: a.symbols}
	inData := false
	var dataCursor uint64
	segs := map[uint64][]byte{} // start address -> bytes (built sequentially)
	var segStart uint64
	pc := a.org

	appendData := func(b ...byte) {
		segs[segStart] = append(segs[segStart], b...)
		dataCursor += uint64(len(b))
	}

	for _, st := range stmts {
		switch {
		case st.label != "":
			continue
		case st.isDir:
			switch st.mnem {
			case ".org", ".equ":
				// handled in pass 1
			case ".data":
				v, _ := a.eval(st.args, st.line, 1)
				inData = true
				segStart = uint64(v[0])
				dataCursor = segStart
				if _, ok := segs[segStart]; !ok {
					segs[segStart] = nil
				}
			case ".quad":
				v, err := a.eval(st.args, st.line, 1)
				if err != nil {
					return nil, err
				}
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], uint64(v[0]))
				appendData(b[:]...)
			case ".word":
				v, err := a.eval(st.args, st.line, 1)
				if err != nil {
					return nil, err
				}
				var b [4]byte
				binary.LittleEndian.PutUint32(b[:], uint32(v[0]))
				appendData(b[:]...)
			case ".byte":
				v, err := a.eval(st.args, st.line, 1)
				if err != nil {
					return nil, err
				}
				appendData(byte(v[0]))
			case ".space":
				n, err := a.evalExpr(st.args[0], st.line)
				if err != nil {
					return nil, err
				}
				fill := byte(0)
				if len(st.args) == 2 {
					f, err := a.evalExpr(st.args[1], st.line)
					if err != nil {
						return nil, err
					}
					fill = byte(f)
				}
				appendData(make([]byte, n)...)
				if fill != 0 {
					seg := segs[segStart]
					for i := len(seg) - int(n); i < len(seg); i++ {
						seg[i] = fill
					}
				}
			}
		case st.isInst:
			if inData {
				return nil, &Error{st.line, "instruction inside .data section"}
			}
			words, err := a.encode(st, pc)
			if err != nil {
				return nil, err
			}
			p.Code = append(p.Code, words...)
			pc += uint64(len(words)) * isa.InstSize
		}
	}

	starts := make([]uint64, 0, len(segs))
	for s := range segs {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, s := range starts {
		if len(segs[s]) > 0 {
			p.Data = append(p.Data, isa.Segment{Addr: s, Data: segs[s]})
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("asm: internal encoding error: %w", err)
	}
	return p, nil
}

func (a *assembler) reg(s string, line int) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "xzr":
		return isa.XZR, nil
	case "lr":
		return isa.RegLink, nil
	}
	if len(s) >= 2 && (s[0] == 'x' || s[0] == 'v') {
		var n int
		if _, err := fmt.Sscanf(s[1:], "%d", &n); err == nil {
			if s[0] == 'x' && n >= 0 && n <= 30 {
				return isa.X(n), nil
			}
			if s[0] == 'v' && n >= 0 && n <= 31 {
				return isa.V(n), nil
			}
		}
	}
	return 0, &Error{line, fmt.Sprintf("invalid register %q", s)}
}

// vnum returns the 5-bit field index for a register (V regs use their lane
// number; the opcode disambiguates the bank).
func vnum(r isa.Reg) isa.Reg {
	if r.IsVec() {
		return r - isa.V0
	}
	return r
}

// memOperand parses "[xN]", "[xN, #off]" or "[xN, xM]".
func (a *assembler) memOperand(s string, line int) (base isa.Reg, off int64, idx isa.Reg, hasIdx bool, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, 0, false, &Error{line, fmt.Sprintf("invalid memory operand %q", s)}
	}
	inner := s[1 : len(s)-1]
	parts := strings.Split(inner, ",")
	base, err = a.reg(parts[0], line)
	if err != nil {
		return 0, 0, 0, false, err
	}
	if len(parts) == 1 {
		return base, 0, 0, false, nil
	}
	if len(parts) != 2 {
		return 0, 0, 0, false, &Error{line, fmt.Sprintf("invalid memory operand %q", s)}
	}
	second := strings.TrimSpace(parts[1])
	if strings.HasPrefix(second, "#") || second == "" || second[0] == '-' || (second[0] >= '0' && second[0] <= '9') {
		off, err = a.evalExpr(second, line)
		return base, off, 0, false, err
	}
	if r, rerr := a.reg(second, line); rerr == nil {
		return base, 0, r, true, nil
	}
	off, err = a.evalExpr(second, line)
	return base, off, 0, false, err
}

var condByName = map[string]isa.Cond{
	"eq": isa.CondEQ, "ne": isa.CondNE, "lt": isa.CondLT,
	"ge": isa.CondGE, "gt": isa.CondGT, "le": isa.CondLE, "al": isa.CondAL,
}

func (a *assembler) branchOffset(target string, pc uint64, line int) (int64, error) {
	v, err := a.evalExpr(target, line)
	if err != nil {
		return 0, err
	}
	delta := v - int64(pc)
	if delta%isa.InstSize != 0 {
		return 0, &Error{line, fmt.Sprintf("branch target %#x not word aligned from %#x", v, pc)}
	}
	return delta / isa.InstSize, nil
}

func (a *assembler) encode(st statement, pc uint64) ([]uint32, error) {
	mnem := st.mnem
	line := st.line
	need := func(n int) error {
		if len(st.args) != n {
			return &Error{line, fmt.Sprintf("%s wants %d operands, got %d", mnem, n, len(st.args))}
		}
		return nil
	}

	// Conditional branch aliases: b.eq etc.
	if strings.HasPrefix(mnem, "b.") {
		cond, ok := condByName[mnem[2:]]
		if !ok {
			return nil, &Error{line, fmt.Sprintf("unknown condition %q", mnem[2:])}
		}
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := a.branchOffset(st.args[0], pc, line)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.EncBCC(cond, off)}, nil
	}

	switch mnem {
	case "mov":
		if err := need(2); err != nil {
			return nil, err
		}
		if r, err := a.reg(st.args[1], line); err == nil {
			rd, err2 := a.reg(st.args[0], line)
			if err2 != nil {
				return nil, err2
			}
			if rd.IsVec() != r.IsVec() {
				return nil, &Error{line, "mov between register banks"}
			}
			if rd.IsVec() {
				return []uint32{isa.EncR(isa.OpFMOV, vnum(rd), vnum(r), 0)}, nil
			}
			return []uint32{isa.EncR(isa.OpORR, rd, r, isa.XZR)}, nil
		}
		rd, err := a.reg(st.args[0], line)
		if err != nil {
			return nil, err
		}
		v, err := a.evalExpr(st.args[1], line)
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 0xFFFF {
			return nil, &Error{line, fmt.Sprintf("mov immediate %d out of 16-bit range; use la or movz/movk", v)}
		}
		return []uint32{isa.EncMov(isa.OpMOVZ, rd, uint16(v), 0)}, nil

	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(st.args[0], line)
		if err != nil {
			return nil, err
		}
		v, err := a.evalExpr(st.args[1], line)
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 0xFFFFFFFF {
			return nil, &Error{line, fmt.Sprintf("la address %#x out of 32-bit range", v)}
		}
		return []uint32{
			isa.EncMov(isa.OpMOVZ, rd, uint16(v), 0),
			isa.EncMov(isa.OpMOVK, rd, uint16(v>>16), 1),
		}, nil

	case "movz", "movk":
		op := isa.OpMOVZ
		if mnem == "movk" {
			op = isa.OpMOVK
		}
		if len(st.args) != 2 && len(st.args) != 3 {
			return nil, &Error{line, mnem + " wants rd, #imm [, lsl #shift]"}
		}
		rd, err := a.reg(st.args[0], line)
		if err != nil {
			return nil, err
		}
		v, err := a.evalExpr(st.args[1], line)
		if err != nil {
			return nil, err
		}
		hw := 0
		if len(st.args) == 3 {
			sh := strings.ToLower(strings.ReplaceAll(st.args[2], " ", ""))
			sh = strings.TrimPrefix(sh, "lsl")
			shv, err := a.evalExpr(sh, line)
			if err != nil {
				return nil, err
			}
			if shv%16 != 0 || shv < 0 || shv > 48 {
				return nil, &Error{line, "shift must be 0/16/32/48"}
			}
			hw = int(shv / 16)
		}
		if v < 0 || v > 0xFFFF {
			return nil, &Error{line, fmt.Sprintf("%s immediate %d out of 16-bit range", mnem, v)}
		}
		return []uint32{isa.EncMov(op, rd, uint16(v), hw)}, nil

	case "b", "bl":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := a.branchOffset(st.args[0], pc, line)
		if err != nil {
			return nil, err
		}
		op := isa.OpB
		if mnem == "bl" {
			op = isa.OpBL
		}
		return []uint32{isa.EncB(op, off)}, nil

	case "cbz", "cbnz":
		if err := need(2); err != nil {
			return nil, err
		}
		rn, err := a.reg(st.args[0], line)
		if err != nil {
			return nil, err
		}
		off, err := a.branchOffset(st.args[1], pc, line)
		if err != nil {
			return nil, err
		}
		op := isa.OpCBZ
		if mnem == "cbnz" {
			op = isa.OpCBNZ
		}
		return []uint32{isa.EncCB(op, rn, off)}, nil

	case "br":
		if err := need(1); err != nil {
			return nil, err
		}
		rn, err := a.reg(st.args[0], line)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.EncBR(rn)}, nil

	case "ret":
		if err := need(0); err != nil {
			return nil, err
		}
		return []uint32{isa.EncRET()}, nil
	case "nop":
		return []uint32{isa.EncNOP()}, nil
	case "halt":
		return []uint32{isa.EncHALT()}, nil
	}

	op, ok := isa.OpByName[mnem]
	if !ok {
		return nil, &Error{line, fmt.Sprintf("unknown mnemonic %q", mnem)}
	}
	cls := isa.ClassOf(op)
	switch {
	case cls.IsMem():
		if op == isa.OpLDRXR || op == isa.OpSTRXR {
			if err := need(2); err != nil {
				return nil, err
			}
			rt, err := a.reg(st.args[0], line)
			if err != nil {
				return nil, err
			}
			base, _, idx, hasIdx, err := a.memOperand(st.args[1], line)
			if err != nil {
				return nil, err
			}
			if !hasIdx {
				return nil, &Error{line, mnem + " needs a register offset"}
			}
			return []uint32{isa.EncR(op, vnum(rt), base, idx)}, nil
		}
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := a.reg(st.args[0], line)
		if err != nil {
			return nil, err
		}
		base, off, _, hasIdx, err := a.memOperand(st.args[1], line)
		if err != nil {
			return nil, err
		}
		if hasIdx {
			return nil, &Error{line, mnem + " does not take a register offset (use " + mnem + "r)"}
		}
		return []uint32{isa.EncMem(op, vnum(rt), base, off)}, nil

	case op == isa.OpFSQRT || op == isa.OpFMOV || op == isa.OpFCVTZS || op == isa.OpSCVTF:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(st.args[0], line)
		if err != nil {
			return nil, err
		}
		rn, err := a.reg(st.args[1], line)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.EncR(op, vnum(rd), vnum(rn), 0)}, nil

	case op == isa.OpCMP || op == isa.OpFCMP:
		if err := need(2); err != nil {
			return nil, err
		}
		rn, err := a.reg(st.args[0], line)
		if err != nil {
			return nil, err
		}
		rm, err := a.reg(st.args[1], line)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.EncR(op, 0, vnum(rn), vnum(rm))}, nil

	case op == isa.OpCMPI:
		if err := need(2); err != nil {
			return nil, err
		}
		rn, err := a.reg(st.args[0], line)
		if err != nil {
			return nil, err
		}
		v, err := a.evalExpr(st.args[1], line)
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 0xFFFF {
			return nil, &Error{line, fmt.Sprintf("cmpi immediate %d out of range", v)}
		}
		return []uint32{isa.EncI(op, 0, rn, uint16(v))}, nil

	case op >= isa.OpADDI && op <= isa.OpLSRI:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.reg(st.args[0], line)
		if err != nil {
			return nil, err
		}
		rn, err := a.reg(st.args[1], line)
		if err != nil {
			return nil, err
		}
		v, err := a.evalExpr(st.args[2], line)
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 0xFFFF {
			return nil, &Error{line, fmt.Sprintf("%s immediate %d out of 16-bit range", mnem, v)}
		}
		return []uint32{isa.EncI(op, rd, rn, uint16(v))}, nil

	default: // three-register forms
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.reg(st.args[0], line)
		if err != nil {
			return nil, err
		}
		rn, err := a.reg(st.args[1], line)
		if err != nil {
			return nil, err
		}
		rm, err := a.reg(st.args[2], line)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.EncR(op, vnum(rd), vnum(rn), vnum(rm))}, nil
	}
}
