package asm

import (
	"strings"
	"testing"

	"racesim/internal/isa"
)

func TestAssembleBasicProgram(t *testing.T) {
	p, err := Assemble(`
		.org 0x1000
		start:
			movz x1, #10
			movz x2, #0
		loop:
			add x2, x2, x1
			subi x1, x1, #1
			cbnz x1, loop
			halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x1000 {
		t.Errorf("entry = %#x, want 0x1000", p.Entry)
	}
	if len(p.Code) != 6 {
		t.Fatalf("code words = %d, want 6", len(p.Code))
	}
	if got := p.Symbols["loop"]; got != 0x1008 {
		t.Errorf("loop = %#x, want 0x1008", got)
	}
	// cbnz at 0x1010 targets loop at 0x1008: word offset -2.
	var d isa.Decoder
	in, err := d.Decode(0x1010, p.Code[4])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.OpCBNZ || in.Imm != -2 {
		t.Errorf("cbnz decoded %v imm=%d, want imm=-2", in.Op, in.Imm)
	}
}

func TestAssembleDataSegments(t *testing.T) {
	p, err := Assemble(`
		.equ BASE, 0x20000
		.org 0x1000
			la x1, BASE
			ldrx x2, [x1, #8]
			halt
		.data BASE
			.quad 0x1122334455667788
			.quad 42
			.space 16, 0xAB
			.word 7
			.byte 1
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 1 {
		t.Fatalf("segments = %d, want 1", len(p.Data))
	}
	seg := p.Data[0]
	if seg.Addr != 0x20000 {
		t.Errorf("segment addr = %#x", seg.Addr)
	}
	if len(seg.Data) != 8+8+16+4+1 {
		t.Errorf("segment size = %d, want 37", len(seg.Data))
	}
	if seg.Data[0] != 0x88 || seg.Data[7] != 0x11 {
		t.Errorf("little-endian quad wrong: % x", seg.Data[:8])
	}
	if seg.Data[16] != 0xAB || seg.Data[31] != 0xAB {
		t.Errorf("space fill wrong: % x", seg.Data[16:32])
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p, err := Assemble(`
		ldrx x1, [x2]
		ldrx x1, [x2, #-16]
		ldrxr x1, [x2, x3]
		strw x4, [x5, #12]
		ldrv v1, [x2, #8]
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	var d isa.Decoder
	in, _ := d.Decode(0, p.Code[1])
	if in.Imm != -16 {
		t.Errorf("negative offset = %d", in.Imm)
	}
	in, _ = d.Decode(0, p.Code[2])
	if in.Op != isa.OpLDRXR || len(in.Srcs()) != 2 {
		t.Errorf("ldrxr decode: %v", in)
	}
	in, _ = d.Decode(0, p.Code[4])
	if in.Op != isa.OpLDRV || in.Dsts()[0] != isa.V(1) {
		t.Errorf("ldrv decode: %v", in)
	}
}

func TestAssembleCondBranches(t *testing.T) {
	p, err := Assemble(`
		top:
			cmp x1, x2
			b.ne top
			b.eq top
			b.lt top
			b.ge done
			b.gt done
			b.le done
		done:
			halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	var d isa.Decoder
	wantConds := []isa.Cond{isa.CondNE, isa.CondEQ, isa.CondLT, isa.CondGE, isa.CondGT, isa.CondLE}
	for i, wc := range wantConds {
		in, _ := d.Decode(0, p.Code[i+1])
		if in.Op != isa.OpBCC || in.Cond != wc {
			t.Errorf("branch %d: op %v cond %v, want bcc %v", i, in.Op, in.Cond, wc)
		}
	}
}

func TestAssemblePseudoOps(t *testing.T) {
	p, err := Assemble(`
		mov x1, x2
		mov x3, #99
		la x4, 0x12345678
		mov v1, v2
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	var d isa.Decoder
	in, _ := d.Decode(0, p.Code[0])
	if in.Op != isa.OpORR || in.Srcs()[0] != isa.X(2) {
		t.Errorf("mov reg: %v", in)
	}
	in, _ = d.Decode(0, p.Code[1])
	if in.Op != isa.OpMOVZ || in.Imm != 99 {
		t.Errorf("mov imm: %v", in)
	}
	in, _ = d.Decode(0, p.Code[2])
	if in.Op != isa.OpMOVZ || in.Imm != 0x5678 {
		t.Errorf("la low: %v imm=%#x", in.Op, in.Imm)
	}
	in, _ = d.Decode(0, p.Code[3])
	if in.Op != isa.OpMOVK || in.Imm != 0x1234<<16 {
		t.Errorf("la high: %v imm=%#x", in.Op, in.Imm)
	}
	in, _ = d.Decode(0, p.Code[4])
	if in.Op != isa.OpFMOV {
		t.Errorf("mov vec: %v", in.Op)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"bogus x1, x2", "unknown mnemonic"},
		{"add x1, x2", "wants 3 operands"},
		{"add x1, x2, x99", "invalid register"},
		{"addi x1, x2, #70000", "out of 16-bit range"},
		{"b nowhere", "undefined symbol"},
		{"x: halt\nx: halt", "duplicate label"},
		{".data 0x1000\nadd x1, x2, x3", "instruction inside .data"},
		{".bogus 1", "unknown directive"},
		{"ldrx x1, [x2, x3]", "does not take a register offset"},
		{"ldrxr x1, [x2, #8]", "needs a register offset"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Assemble(%q) error = %v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestAssembleEquArithmetic(t *testing.T) {
	p, err := Assemble(`
		.equ N, 64
		.equ STRIDE, 8
		movz x1, #N
		addi x2, x1, #N+STRIDE
		addi x3, x1, #N-8
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	var d isa.Decoder
	in, _ := d.Decode(0, p.Code[1])
	if in.Imm != 72 {
		t.Errorf("N+STRIDE = %d, want 72", in.Imm)
	}
	in, _ = d.Decode(0, p.Code[2])
	if in.Imm != 56 {
		t.Errorf("N-8 = %d, want 56", in.Imm)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("bogus")
}
