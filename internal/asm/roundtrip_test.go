package asm

import (
	"fmt"
	"strings"
	"testing"

	"racesim/internal/isa"
)

// TestDisassembleAssembleRoundTrip checks that a program's disassembly
// re-assembles to the identical words (the disassembler emits absolute hex
// branch targets, which the assembler evaluates back to the same offsets).
func TestDisassembleAssembleRoundTrip(t *testing.T) {
	src := `
		.org 0x1000
		start:
			movz x1, #10
			movz x2, #0
			la x3, 0x40000
		loop:
			ldrx x4, [x3, #0]
			add x2, x2, x4
			strx x2, [x3, #8]
			ldrxr x5, [x3, x2]
			cmp x2, x4
			b.lt skip
			addi x2, x2, #1
		skip:
			scvtf v1, x2
			fmul v2, v1, v1
			fcmp v2, v1
			subi x1, x1, #1
			cbnz x1, loop
			bl fn
			halt
		fn:
			nop
			ret
	`
	orig, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	listing, err := isa.DisassembleProgram(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild assembler source from the listing: strip addresses, keep
	// instruction text, restore the origin.
	var b strings.Builder
	fmt.Fprintf(&b, ".org %#x\n", orig.Entry)
	for _, line := range strings.Split(listing, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasSuffix(line, ":") {
			continue
		}
		// Lines look like "0x001000: add x1, x2, x3".
		_, inst, ok := strings.Cut(line, ": ")
		if !ok {
			t.Fatalf("unparseable listing line %q", line)
		}
		b.WriteString(inst)
		b.WriteByte('\n')
	}
	re, err := Assemble(b.String())
	if err != nil {
		t.Fatalf("reassembly failed: %v\nsource:\n%s", err, b.String())
	}
	if len(re.Code) != len(orig.Code) {
		t.Fatalf("reassembled %d words, want %d", len(re.Code), len(orig.Code))
	}
	for i := range orig.Code {
		if re.Code[i] != orig.Code[i] {
			origD, _ := isa.Disassemble(orig.Entry+uint64(4*i), orig.Code[i])
			reD, _ := isa.Disassemble(orig.Entry+uint64(4*i), re.Code[i])
			t.Errorf("word %d: %#x (%s) != %#x (%s)", i, re.Code[i], reD, orig.Code[i], origD)
		}
	}
}
