// Package asm implements a small two-pass assembler for the racesim ISA.
//
// Source syntax, one statement per line ("//" and ";" start comments):
//
//	.org  0x1000          set the code origin (entry point); must precede code
//	.equ  NAME, expr      define a constant
//	.data 0x80000         switch to a data segment at the given address
//	.quad expr            emit an 8-byte little-endian value (data mode)
//	.word expr            emit a 4-byte value (data mode)
//	.byte expr            emit a 1-byte value (data mode)
//	.space N [, fill]     emit N fill bytes (data mode)
//	label:                define a label at the current location
//
//	add   x1, x2, x3      integer R-type
//	addi  x1, x2, #42     integer immediate
//	movz  x1, #0xbeef     optionally: movz x1, #v, lsl #16/#32/#48
//	mov   x1, x2          pseudo: orr x1, x2, xzr
//	mov   x1, #imm        pseudo: movz
//	la    x1, label       pseudo: movz+movk, loads a 32-bit address
//	ldrx  x1, [x2, #8]    memory, immediate offset (offset optional)
//	ldrxr x1, [x2, x3]    memory, register offset
//	fadd  v1, v2, v3      floating point
//	b     label           direct branch; b.eq/b.ne/b.lt/b.ge/b.gt/b.le
//	cbz   x1, label       compare-and-branch
//	bl    label / br x1 / ret / nop / halt
//
// Immediates accept decimal, 0x hex, negative values, and .equ constants.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"racesim/internal/isa"
)

// Error describes an assembly error with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type statement struct {
	line   int
	label  string   // non-empty for label definitions
	mnem   string   // mnemonic or directive
	args   []string // raw operand strings
	isDir  bool
	isInst bool
}

// Assemble translates source text into an executable program.
func Assemble(src string) (*isa.Program, error) {
	a := &assembler{
		consts:  map[string]int64{},
		symbols: map[string]uint64{},
		org:     0x1000,
	}
	stmts, err := a.parse(src)
	if err != nil {
		return nil, err
	}
	if err := a.layout(stmts); err != nil {
		return nil, err
	}
	return a.emit(stmts)
}

// MustAssemble is Assemble that panics on error, for generators whose
// source is constructed programmatically and must be valid.
func MustAssemble(src string) *isa.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	consts  map[string]int64
	symbols map[string]uint64
	org     uint64
	orgSet  bool
}

func (a *assembler) parse(src string) ([]statement, error) {
	var stmts []statement
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		s := raw
		if j := strings.Index(s, "//"); j >= 0 {
			s = s[:j]
		}
		if j := strings.IndexByte(s, ';'); j >= 0 {
			s = s[:j]
		}
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		// Labels may share a line with an instruction: "loop: add x1, x1, x2".
		for {
			j := strings.IndexByte(s, ':')
			if j < 0 {
				break
			}
			name := strings.TrimSpace(s[:j])
			if !isIdent(name) {
				return nil, &Error{line, fmt.Sprintf("invalid label %q", name)}
			}
			stmts = append(stmts, statement{line: line, label: name})
			s = strings.TrimSpace(s[j+1:])
		}
		if s == "" {
			continue
		}
		mnem, rest, _ := strings.Cut(s, " ")
		mnem = strings.ToLower(strings.TrimSpace(mnem))
		var args []string
		rest = strings.TrimSpace(rest)
		if rest != "" {
			for _, p := range splitArgs(rest) {
				args = append(args, strings.TrimSpace(p))
			}
		}
		stmts = append(stmts, statement{
			line: line, mnem: mnem, args: args,
			isDir:  strings.HasPrefix(mnem, "."),
			isInst: !strings.HasPrefix(mnem, "."),
		})
	}
	return stmts, nil
}

// splitArgs splits on commas that are not inside brackets.
func splitArgs(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// instWords returns how many instruction words a mnemonic expands to.
func instWords(mnem string) int {
	if mnem == "la" {
		return 2 // movz + movk
	}
	return 1
}

// layout performs pass 1: assign addresses to labels.
func (a *assembler) layout(stmts []statement) error {
	inData := false
	var codeCursor, dataCursor uint64
	codeStarted := false
	for _, st := range stmts {
		switch {
		case st.label != "":
			addr := codeCursor
			if inData {
				addr = dataCursor
			} else {
				if !codeStarted {
					codeCursor = a.org
					addr = codeCursor
				}
			}
			if _, dup := a.symbols[st.label]; dup {
				return &Error{st.line, fmt.Sprintf("duplicate label %q", st.label)}
			}
			a.symbols[st.label] = addr
		case st.isDir:
			switch st.mnem {
			case ".org":
				if codeStarted {
					return &Error{st.line, ".org after code"}
				}
				v, err := a.eval(st.args, st.line, 1)
				if err != nil {
					return err
				}
				a.org = uint64(v[0])
				a.orgSet = true
			case ".equ":
				if len(st.args) != 2 || !isIdent(st.args[0]) {
					return &Error{st.line, ".equ NAME, value"}
				}
				v, err := a.evalExpr(st.args[1], st.line)
				if err != nil {
					return err
				}
				a.consts[st.args[0]] = v
			case ".data":
				v, err := a.eval(st.args, st.line, 1)
				if err != nil {
					return err
				}
				inData = true
				dataCursor = uint64(v[0])
			case ".quad":
				dataCursor += 8
			case ".word":
				dataCursor += 4
			case ".byte":
				dataCursor++
			case ".space":
				v, err := a.evalExpr(st.args[0], st.line)
				if err != nil {
					return err
				}
				dataCursor += uint64(v)
			default:
				return &Error{st.line, fmt.Sprintf("unknown directive %s", st.mnem)}
			}
		case st.isInst:
			if inData {
				return &Error{st.line, "instruction inside .data section"}
			}
			if !codeStarted {
				codeCursor = a.org
				codeStarted = true
			}
			codeCursor += uint64(instWords(st.mnem)) * isa.InstSize
		}
	}
	return nil
}

func (a *assembler) eval(args []string, line, want int) ([]int64, error) {
	if len(args) != want {
		return nil, &Error{line, fmt.Sprintf("want %d operands, got %d", want, len(args))}
	}
	out := make([]int64, len(args))
	for i, s := range args {
		v, err := a.evalExpr(s, line)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// evalExpr evaluates an immediate expression: a number, a constant, a
// label, or sums/differences of those ("#" prefixes are stripped).
func (a *assembler) evalExpr(s string, line int) (int64, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "#"))
	if s == "" {
		return 0, &Error{line, "empty expression"}
	}
	// Simple left-to-right +/- expression split.
	total := int64(0)
	sign := int64(1)
	term := strings.Builder{}
	flush := func() error {
		t := strings.TrimSpace(term.String())
		term.Reset()
		if t == "" {
			return &Error{line, fmt.Sprintf("bad expression %q", s)}
		}
		v, err := a.evalTerm(t, line)
		if err != nil {
			return err
		}
		total += sign * v
		return nil
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c == '+' || c == '-') && term.Len() > 0 {
			if err := flush(); err != nil {
				return 0, err
			}
			if c == '+' {
				sign = 1
			} else {
				sign = -1
			}
			continue
		}
		if c == '-' && term.Len() == 0 && i == 0 {
			sign = -1
			continue
		}
		term.WriteByte(c)
	}
	if err := flush(); err != nil {
		return 0, err
	}
	return total, nil
}

func (a *assembler) evalTerm(t string, line int) (int64, error) {
	if v, err := strconv.ParseInt(t, 0, 64); err == nil {
		return v, nil
	}
	if v, ok := a.consts[t]; ok {
		return v, nil
	}
	if v, ok := a.symbols[t]; ok {
		return int64(v), nil
	}
	return 0, &Error{line, fmt.Sprintf("undefined symbol %q", t)}
}
