package ubench

import (
	"testing"

	"racesim/internal/prefetch"
	"racesim/internal/sim"
)

// TestSuiteSeparatesPrefetcherKinds guards the property that made tuning
// generalize: the strided miss streams (MIM, MIM2) must distinguish a
// stride prefetcher from a next-line prefetcher, otherwise the tuner
// cannot recover the prefetcher kind and held-out workloads expose it.
func TestSuiteSeparatesPrefetcherKinds(t *testing.T) {
	run := func(name string, kind prefetch.Kind) float64 {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		tr, err := b.Trace(Options{Scale: 0.005, InitArrays: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.PublicA53()
		cfg.Mem.L1D.Prefetch = prefetch.Config{
			Kind: kind, Degree: 2, Distance: 2, TableEntries: 64, GHBEntries: 256,
		}
		if kind == prefetch.KindNone {
			cfg.Mem.L1D.Prefetch = prefetch.DefaultConfig()
		}
		res, err := cfg.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.CPI()
	}
	for _, name := range []string{"MIM", "MIM2"} {
		none := run(name, prefetch.KindNone)
		next := run(name, prefetch.KindNextLine)
		strd := run(name, prefetch.KindStride)
		t.Logf("%s: none %.2f, next_line %.2f, stride %.2f", name, none, next, strd)
		if strd >= none {
			t.Errorf("%s: stride prefetcher should help a strided stream (%.2f vs %.2f)", name, strd, none)
		}
		// The racing tuner only needs the kinds to be *distinguishable*
		// (on unit-stride streams they are CPI-identical, which is the
		// regression this test guards against).
		sep := (strd - next) / next
		if sep < 0 {
			sep = -sep
		}
		if sep < 0.10 {
			t.Errorf("%s: stride (%.2f) and next_line (%.2f) are indistinguishable (%.1f%% apart)",
				name, strd, next, sep*100)
		}
	}
}
