package ubench

import "fmt"

// Data-parallel, execution and store-intensive benchmarks (Table I).

func init() {
	register(Bench{
		Name: "DP1d", Category: CatDataParallel, PaperInstructions: 5_200_000,
		Description: "double-precision multiply-add streams over arrays",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ A, %#x\n.equ B, %#x\n", l1Buf, l1Buf+0x2000) +
				initRegion("A", 4096) + initRegion("B", 4096) +
				"la x20, A\nla x19, B\nmovz x21, #0\n"
			body := `add x22, x20, x21
add x23, x19, x21
ldrv v1, [x22, #0]
ldrv v2, [x23, #0]
fmul v3, v1, v2
fadd v4, v4, v3
strv v4, [x22, #0]
addi x21, x21, #8
andi x21, x21, #0xFF8
`
			return program(setup, body, 9, target)
		},
	})

	register(Bench{
		Name: "DP1f", Category: CatDataParallel, PaperInstructions: 5_200_000,
		Description: "single-precision style add/sub streams over arrays",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ A, %#x\n", l1Buf+0x4000) +
				initRegion("A", 4096) +
				"la x20, A\nmovz x21, #0\n"
			body := `add x22, x20, x21
ldrv v1, [x22, #0]
fadd v2, v2, v1
fsub v3, v2, v1
strv v3, [x22, #0]
addi x21, x21, #8
andi x21, x21, #0xFF8
`
			return program(setup, body, 8, target)
		},
	})

	register(Bench{
		Name: "DPcvt", Category: CatDataParallel, PaperInstructions: 36_700_000,
		Description: "int-float conversion chains",
		build: func(o Options, target uint64) string {
			setup := "movz x1, #100\n"
			body := `scvtf v1, x1
fcvtzs x2, v1
scvtf v2, x2
fcvtzs x1, v2
addi x1, x1, #1
`
			return program(setup, body, 5, target)
		},
	})

	register(Bench{
		Name: "DPT", Category: CatDataParallel, PaperInstructions: 542_000,
		Description: "triad with temporal reuse on a small buffer",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ A, %#x\n", l1Buf+0x6000) +
				initRegion("A", 2048) +
				"la x20, A\nmovz x21, #0\nmovz x3, #3\nscvtf v5, x3\n"
			body := `add x22, x20, x21
ldrv v1, [x22, #0]
fmul v2, v1, v5
fadd v3, v2, v1
strv v3, [x22, #0]
addi x21, x21, #8
andi x21, x21, #0x7F8
`
			return program(setup, body, 8, target)
		},
	})

	register(Bench{
		Name: "DPTd", Category: CatDataParallel, PaperInstructions: 1_180_000,
		Description: "triad with a loop-carried floating-point dependency",
		build: func(o Options, target uint64) string {
			setup := "movz x3, #3\nscvtf v5, x3\nmovz x4, #1\nscvtf v1, x4\n"
			body := `fmul v2, v1, v5
fadd v1, v2, v1
fdiv v1, v1, v5
`
			return program(setup, body, 3, target)
		},
	})

	register(Bench{
		Name: "ED1", Category: CatExecution, PaperInstructions: 164_000,
		Description: "serial integer dependency chain (each op depends on the last)",
		build: func(o Options, target uint64) string {
			body := `addi x1, x1, #1
addi x1, x1, #2
addi x1, x1, #3
addi x1, x1, #4
addi x1, x1, #5
addi x1, x1, #6
addi x1, x1, #7
addi x1, x1, #8
`
			return program("", body, 8, target)
		},
	})

	register(Bench{
		Name: "EF", Category: CatExecution, PaperInstructions: 451_000,
		Description: "dependent floating-point multiply/add/divide chain",
		build: func(o Options, target uint64) string {
			setup := "movz x3, #3\nscvtf v2, x3\nmovz x4, #7\nscvtf v1, x4\n"
			body := `fmul v1, v2, v1
fadd v1, v2, v1
fdiv v1, v1, v2
fadd v1, v2, v1
`
			return program(setup, body, 4, target)
		},
	})

	register(Bench{
		Name: "EI", Category: CatExecution, PaperInstructions: 5_240_000,
		Description: "independent integer operations (high ILP)",
		build: func(o Options, target uint64) string {
			body := `addi x1, x1, #1
addi x2, x2, #1
addi x3, x3, #1
addi x4, x4, #1
addi x5, x5, #1
addi x6, x6, #1
addi x7, x7, #1
addi x8, x8, #1
`
			return program("", body, 8, target)
		},
	})

	register(Bench{
		Name: "EM1", Category: CatExecution, PaperInstructions: 65_000,
		Description: "dependent integer multiply chain",
		build: func(o Options, target uint64) string {
			setup := "movz x1, #3\nmovz x2, #5\n"
			body := `mul x1, x1, x2
mul x1, x1, x2
mul x1, x1, x2
mul x1, x1, x2
`
			return program(setup, body, 4, target)
		},
	})

	register(Bench{
		Name: "EM5", Category: CatExecution, PaperInstructions: 328_000,
		Description: "five interleaved independent multiply chains",
		build: func(o Options, target uint64) string {
			setup := "movz x1, #3\nmovz x2, #3\nmovz x3, #3\nmovz x4, #3\nmovz x5, #3\nmovz x6, #5\n"
			body := `mul x1, x1, x6
mul x2, x2, x6
mul x3, x3, x6
mul x4, x4, x6
mul x5, x5, x6
`
			return program(setup, body, 5, target)
		},
	})

	register(Bench{
		Name: "STL2", Category: CatStore, PaperInstructions: 4_000,
		Description: "streaming stores over an L2-resident buffer",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", l2Buf) +
				fmt.Sprintf("la x20, BUF\nmovz x21, #0\nla x24, %d\nmovz x2, #3\n", 128*1024-1)
			body := `add x22, x20, x21
strx x2, [x22, #0]
strx x2, [x22, #64]
strx x2, [x22, #128]
strx x2, [x22, #192]
addi x21, x21, #256
and x21, x21, x24
`
			return program(setup, body, 7, target)
		},
	})

	register(Bench{
		Name: "STL2b", Category: CatStore, PaperInstructions: 1_120_000,
		Description: "stores alternating between two L2-resident regions",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUFA, %#x\n.equ BUFB, %#x\n", l2Buf, l2Buf+0x10000) +
				fmt.Sprintf("la x20, BUFA\nla x19, BUFB\nmovz x21, #0\nla x24, %d\nmovz x2, #3\n", 64*1024-1)
			body := `strxr x2, [x20, x21]
strxr x2, [x19, x21]
addi x21, x21, #64
and x21, x21, x24
`
			return program(setup, body, 4, target)
		},
	})

	register(Bench{
		Name: "STc", Category: CatStore, PaperInstructions: 400_000,
		Description: "store-to-load forwarding chains on one address",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", l1Buf+0xA000) +
				initRegion("BUF", 64) +
				"la x20, BUF\n"
			body := `strx x1, [x20, #0]
ldrx x1, [x20, #0]
addi x1, x1, #1
`
			return program(setup, body, 3, target)
		},
	})
}
