package ubench

import "fmt"

// Memory-hierarchy benchmarks (Table I, "Memory Hierarchy"). Buffer bases
// are spread out so benchmarks are self-contained.
const (
	l1Buf       = 0x0100000 // 8 KB region, L1-resident
	conflictBuf = 0x0200000 // 64 KB region for set-conflict strides
	l2Buf       = 0x0400000 // 128 KB region, L2-resident
	bigBuf      = 0x1000000 // 2 MB region, DRAM-resident
	bigBuf2     = 0x1800000 // second large region
)

func init() {
	register(Bench{
		Name: "MC", Category: CatMemory, PaperInstructions: 1_800_000,
		Description: "loads cycling 8 lines at the L1 set-conflict stride (conflict misses)",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", conflictBuf) +
				initRegion("BUF", 64*1024) +
				"la x20, BUF\nmovz x21, #0\n"
			body := `ldrxr x1, [x20, x21]
addi x21, x21, #8192
andi x21, x21, #0xFFFF
`
			return program(setup, body, 3, target)
		},
	})

	register(Bench{
		Name: "MCS", Category: CatMemory, PaperInstructions: 115_000,
		Description: "conflict-stride loads interleaved with stores",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", conflictBuf) +
				initRegion("BUF", 64*1024) +
				"la x20, BUF\nmovz x21, #0\nmovz x2, #7\n"
			body := `ldrxr x1, [x20, x21]
strxr x2, [x20, x21]
addi x21, x21, #8192
andi x21, x21, #0xFFFF
`
			return program(setup, body, 4, target)
		},
	})

	register(Bench{
		Name: "MD", Category: CatMemory, PaperInstructions: 33_000,
		Description: "dependent pointer chase inside the L1 data cache",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", l1Buf) +
				chainRegion("BUF", 8*1024, 64) +
				"la x20, BUF\n"
			body := `ldrx x20, [x20, #0]
ldrx x20, [x20, #0]
ldrx x20, [x20, #0]
ldrx x20, [x20, #0]
`
			return program(setup, body, 4, target)
		},
	})

	register(Bench{
		Name: "MI", Category: CatMemory, PaperInstructions: 22_000_000,
		Description: "independent loads over an L1-resident buffer",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", l1Buf) +
				initRegion("BUF", 8*1024) +
				"la x20, BUF\nmovz x21, #0\n"
			body := `add x22, x20, x21
ldrx x1, [x22, #0]
ldrx x2, [x22, #64]
ldrx x3, [x22, #128]
ldrx x4, [x22, #192]
addi x21, x21, #256
andi x21, x21, #0x1FFF
`
			return program(setup, body, 7, target)
		},
	})

	register(Bench{
		Name: "MIM", Category: CatMemory, PaperInstructions: 5_250_000,
		Description:        "independent strided loads missing to memory (uninitialized array)",
		ReadsUninitialized: true,
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", bigBuf)
			if o.InitArrays {
				setup += initRegion("BUF", 2*1024*1024)
			}
			setup += fmt.Sprintf("la x20, BUF\nmovz x21, #0\nla x24, %d\n", 2*1024*1024-1)
			// A two-line stride separates stride prefetchers (which learn
			// it) from plain next-line prefetching.
			body := `ldrxr x1, [x20, x21]
addi x21, x21, #128
and x21, x21, x24
`
			return program(setup, body, 3, target)
		},
	})

	register(Bench{
		Name: "MIM2", Category: CatMemory, PaperInstructions: 214_000,
		Description:        "two interleaved miss streams from distinct regions (uninitialized)",
		ReadsUninitialized: true,
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUFA, %#x\n.equ BUFB, %#x\n", bigBuf, bigBuf2)
			if o.InitArrays {
				setup += initRegion("BUFA", 1024*1024) + initRegion("BUFB", 1024*1024)
			}
			setup += fmt.Sprintf("la x20, BUFA\nla x19, BUFB\nmovz x21, #0\nla x24, %d\n", 1024*1024-1)
			// Three-line strides: learnable by a stride prefetcher, wasted
			// by a next-line prefetcher.
			body := `ldrxr x1, [x20, x21]
ldrxr x2, [x19, x21]
addi x21, x21, #192
and x21, x21, x24
`
			return program(setup, body, 4, target)
		},
	})

	register(Bench{
		Name: "MIP", Category: CatMemory, PaperInstructions: 66_000_000,
		Description: "sequential prefetch-friendly load stream over an L2-sized buffer",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", l2Buf) +
				initRegion("BUF", 128*1024) +
				fmt.Sprintf("la x20, BUF\nmovz x21, #0\nla x24, %d\n", 128*1024-1)
			body := `ldrxr x1, [x20, x21]
addi x21, x21, #64
and x21, x21, x24
`
			return program(setup, body, 3, target)
		},
	})

	register(Bench{
		Name: "ML2", Category: CatMemory, PaperInstructions: 131_000,
		Description: "dependent pointer chase resident in the L2 cache",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", l2Buf) +
				chainRegion("BUF", 128*1024, 256) +
				"la x20, BUF\n"
			body := `ldrx x20, [x20, #0]
ldrx x20, [x20, #0]
`
			if target < 24_000 {
				target = 24_000 // keep the timed loop well above init cost
			}
			return program(setup, body, 2, target)
		},
	})

	register(Bench{
		Name: "ML2_BWld", Category: CatMemory, PaperInstructions: 3_150_000,
		Description: "load bandwidth: four independent loads per iteration from L2",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", l2Buf) +
				initRegion("BUF", 128*1024) +
				fmt.Sprintf("la x20, BUF\nmovz x21, #0\nla x24, %d\n", 128*1024-1)
			body := `add x22, x20, x21
ldrx x1, [x22, #0]
ldrx x2, [x22, #64]
ldrx x3, [x22, #128]
ldrx x4, [x22, #192]
addi x21, x21, #256
and x21, x21, x24
`
			if target < 32_000 {
				target = 32_000
			}
			return program(setup, body, 7, target)
		},
	})

	register(Bench{
		Name: "ML2_BWldst", Category: CatMemory, PaperInstructions: 107_000,
		Description: "mixed load/store bandwidth on an L2-resident buffer",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", l2Buf) +
				initRegion("BUF", 128*1024) +
				fmt.Sprintf("la x20, BUF\nmovz x21, #0\nla x24, %d\n", 128*1024-1)
			body := `add x22, x20, x21
ldrx x1, [x22, #0]
strx x1, [x22, #64]
ldrx x2, [x22, #128]
strx x2, [x22, #192]
addi x21, x21, #256
and x21, x21, x24
`
			if target < 32_000 {
				target = 32_000
			}
			return program(setup, body, 7, target)
		},
	})

	register(Bench{
		Name: "ML2_BWst", Category: CatMemory, PaperInstructions: 8_400,
		Description: "store bandwidth: four stores per iteration into L2",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", l2Buf) +
				initRegion("BUF", 128*1024) +
				fmt.Sprintf("la x20, BUF\nmovz x21, #0\nla x24, %d\nmovz x2, #9\n", 128*1024-1)
			body := `add x22, x20, x21
strx x2, [x22, #0]
strx x2, [x22, #64]
strx x2, [x22, #128]
strx x2, [x22, #192]
addi x21, x21, #256
and x21, x21, x24
`
			if target < 32_000 {
				target = 32_000
			}
			return program(setup, body, 7, target)
		},
	})

	register(Bench{
		Name: "ML2_st", Category: CatMemory, PaperInstructions: 164_000,
		Description: "read-modify-write traffic over an L2-resident buffer",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", l2Buf) +
				initRegion("BUF", 128*1024) +
				fmt.Sprintf("la x20, BUF\nmovz x21, #0\nla x24, %d\n", 128*1024-1)
			body := `add x22, x20, x21
ldrx x1, [x22, #0]
addi x1, x1, #1
strx x1, [x22, #0]
addi x21, x21, #64
and x21, x21, x24
`
			if target < 32_000 {
				target = 32_000
			}
			return program(setup, body, 6, target)
		},
	})

	register(Bench{
		Name: "MM", Category: CatMemory, PaperInstructions: 1_050_000,
		Description: "dependent pointer chase through a memory-resident working set",
		build: func(o Options, target uint64) string {
			// A strided chase over 2 MB: every access misses both caches.
			setup := fmt.Sprintf(".equ BUF, %#x\n", bigBuf) +
				chainRegion("BUF", 2*1024*1024, 4096) +
				"la x20, BUF\n"
			body := `ldrx x20, [x20, #0]
`
			if target < 12_000 {
				target = 12_000
			}
			return program(setup, body, 1, target)
		},
	})

	register(Bench{
		Name: "MM_st", Category: CatMemory, PaperInstructions: 1_970_000,
		Description: "streaming stores over a memory-resident buffer",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", bigBuf) +
				fmt.Sprintf("la x20, BUF\nmovz x21, #0\nla x24, %d\nmovz x2, #5\n", 2*1024*1024-1)
			body := `strxr x2, [x20, x21]
addi x21, x21, #64
and x21, x21, x24
`
			return program(setup, body, 3, target)
		},
	})

	register(Bench{
		Name: "M_Dyn", Category: CatMemory, PaperInstructions: 1_500_000,
		Description:        "loads at pseudo-random addresses over a large buffer (uninitialized)",
		ReadsUninitialized: true,
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", bigBuf)
			if o.InitArrays {
				setup += initRegion("BUF", 1024*1024)
			}
			setup += fmt.Sprintf("la x20, BUF\nmovz x10, #12345\nmovz x11, #25173\nla x24, %d\n", 1024*1024-64)
			body := lcgStep("x10", "x11") + `and x21, x10, x24
ldrxr x1, [x20, x21]
`
			return program(setup, body, 4, target)
		},
	})
}
