package ubench

import "fmt"

// Control-flow benchmarks (Table I, "Control Flow"): easy and biased
// branches, random data-dependent flow, call/return chains, and the case
// statements whose indirect branches exposed the missing indirect-predictor
// model in the paper's validation (CS1, CS3).

func init() {
	register(Bench{
		Name: "CCa", Category: CatControl, PaperInstructions: 82_000,
		Description: "always-taken forward conditional branches",
		build: func(o Options, target uint64) string {
			setup := "movz x1, #0\n"
			body := `cmpi x1, #1
b.lt cca_t1
addi x2, x2, #1
cca_t1:
cmpi x1, #2
b.lt cca_t2
addi x2, x2, #1
cca_t2:
`
			return program(setup, body, 6, target)
		},
	})

	register(Bench{
		Name: "CCe", Category: CatControl, PaperInstructions: 657_000,
		Description: "easy periodic branch pattern (alternating taken/not-taken)",
		build: func(o Options, target uint64) string {
			setup := ""
			body := `andi x1, x28, #1
cbnz x1, cce_skip
addi x2, x2, #1
cce_skip:
addi x3, x3, #1
`
			return program(setup, body, 5, target)
		},
	})

	register(Bench{
		Name: "CCh", Category: CatControl, PaperInstructions: 2_600_000,
		Description: "hard-to-predict branches on pseudo-random data",
		build: func(o Options, target uint64) string {
			setup := "movz x10, #52361\nmovz x11, #25173\n"
			body := lcgStep("x10", "x11") + `lsri x1, x10, #9
andi x1, x1, #1
cbnz x1, cch_skip
addi x2, x2, #1
cch_skip:
`
			return program(setup, body, 6, target)
		},
	})

	register(Bench{
		Name: "CCh_st", Category: CatControl, PaperInstructions: 157_000,
		Description: "hard-to-predict branches with a store on one path",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", l1Buf) +
				initRegion("BUF", 4096) +
				"la x20, BUF\nmovz x10, #52361\nmovz x11, #25173\n"
			body := lcgStep("x10", "x11") + `lsri x1, x10, #9
andi x1, x1, #1
cbnz x1, cchst_skip
strx x10, [x20, #0]
cchst_skip:
addi x2, x2, #1
`
			return program(setup, body, 7, target)
		},
	})

	register(Bench{
		Name: "CCl", Category: CatControl, PaperInstructions: 1_380_000,
		Description: "short nested loops stressing loop-exit prediction",
		build: func(o Options, target uint64) string {
			setup := ""
			body := `movz x1, #4
ccl_inner:
addi x2, x2, #1
subi x1, x1, #1
cbnz x1, ccl_inner
`
			return program(setup, body, 13, target)
		},
	})

	register(Bench{
		Name: "CCm", Category: CatControl, PaperInstructions: 656_000,
		Description: "biased branches taken about 7 of 8 times",
		build: func(o Options, target uint64) string {
			setup := "movz x10, #52361\nmovz x11, #25173\n"
			body := lcgStep("x10", "x11") + `lsri x1, x10, #9
andi x1, x1, #7
cbnz x1, ccm_skip
addi x2, x2, #1
ccm_skip:
`
			return program(setup, body, 6, target)
		},
	})

	register(Bench{
		Name: "CF1", Category: CatControl, PaperInstructions: 1_270_000,
		Description: "dense call/return chains through small leaf functions",
		build: func(o Options, target uint64) string {
			// Functions are placed after the benchmark loop; program()
			// appends halt before these labels are emitted, so lay the
			// functions out via a jump-over pattern inside the body.
			setup := "b cf1_entry\n" +
				"cf1_fn1:\naddi x2, x2, #1\nret\n" +
				"cf1_fn2:\naddi x3, x3, #1\nret\n" +
				"cf1_entry:\n"
			body := `bl cf1_fn1
bl cf1_fn2
bl cf1_fn1
`
			return program(setup, body, 9, target)
		},
	})

	register(Bench{
		Name: "CRd", Category: CatControl, PaperInstructions: 599_000,
		Description: "branches depending on loaded pseudo-random data",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ BUF, %#x\n", l1Buf) +
				initRegion("BUF", 4096) +
				"la x20, BUF\nmovz x10, #52361\nmovz x11, #25173\n" +
				// Fill the table with random words.
				"la x26, 64\ncrd_fill:\n" + lcgStep("x10", "x11") +
				"andi x21, x10, #0xFC0\nstrxr x10, [x20, x21]\nsubi x26, x26, #1\ncbnz x26, crd_fill\n"
			body := lcgStep("x10", "x11") + `andi x21, x10, #0xFC0
ldrxr x1, [x20, x21]
andi x1, x1, #1
cbnz x1, crd_skip
addi x2, x2, #1
crd_skip:
`
			return program(setup, body, 8, target)
		},
	})

	register(Bench{
		Name: "CRf", Category: CatControl, PaperInstructions: 133_000,
		Description: "branches on floating-point comparisons of random values",
		build: func(o Options, target uint64) string {
			setup := "movz x10, #52361\nmovz x11, #25173\nmovz x3, #512\nscvtf v2, x3\n"
			body := lcgStep("x10", "x11") + `andi x1, x10, #1023
scvtf v1, x1
fcmp v1, v2
b.lt crf_skip
addi x2, x2, #1
crf_skip:
`
			return program(setup, body, 8, target)
		},
	})

	register(Bench{
		Name: "CRm", Category: CatControl, PaperInstructions: 399_000,
		Description: "two correlated random branches per iteration",
		build: func(o Options, target uint64) string {
			setup := "movz x10, #52361\nmovz x11, #25173\n"
			body := lcgStep("x10", "x11") + `lsri x1, x10, #9
andi x1, x1, #1
cbnz x1, crm_a
addi x2, x2, #1
crm_a:
cbz x1, crm_b
addi x3, x3, #1
crm_b:
`
			return program(setup, body, 8, target)
		},
	})

	register(Bench{
		Name: "CS1", Category: CatControl, PaperInstructions: 58_000,
		Description: "case statement: indirect branch through a 4-entry jump table",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ TAB, %#x\n", l1Buf+0x8000) +
				"movz x10, #52361\nmovz x11, #25173\nla x20, TAB\n"
			body := lcgStep("x10", "x11") + `lsri x1, x10, #9
andi x1, x1, #3
lsli x1, x1, #3
ldrxr x2, [x20, x1]
br x2
cs1_c0:
addi x2, x2, #1
b cs1_done
cs1_c1:
addi x3, x3, #1
b cs1_done
cs1_c2:
addi x4, x4, #1
b cs1_done
cs1_c3:
addi x5, x5, #1
cs1_done:
`
			src := program(setup, body, 10, target)
			src += `
.data TAB
.quad cs1_c0
.quad cs1_c1
.quad cs1_c2
.quad cs1_c3
`
			return src
		},
	})

	register(Bench{
		Name: "CS3", Category: CatControl, PaperInstructions: 34_500_000,
		Description: "case statement: indirect branch through a 16-entry jump table",
		build: func(o Options, target uint64) string {
			setup := fmt.Sprintf(".equ TAB, %#x\n", l1Buf+0x9000) +
				"movz x10, #52361\nmovz x11, #25173\nla x20, TAB\n"
			var body, data string
			body = lcgStep("x10", "x11") + `lsri x1, x10, #9
andi x1, x1, #15
lsli x1, x1, #3
ldrxr x2, [x20, x1]
br x2
`
			data = "\n.data TAB\n"
			for i := 0; i < 16; i++ {
				body += fmt.Sprintf("cs3_c%d:\naddi x%d, x%d, #1\nb cs3_done\n", i, 2+i%6, 2+i%6)
				data += fmt.Sprintf(".quad cs3_c%d\n", i)
			}
			body += "cs3_done:\n"
			return program(setup, body, 12, target) + data
		},
	})
}
