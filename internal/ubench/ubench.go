// Package ubench implements the 40 targeted micro-benchmarks of the
// paper's Table I (after the VerticalResearchGroup "microbench" suite) as
// parameterized assembly program generators for the racesim ISA. Each
// benchmark stresses one processor component — control flow, data-parallel
// floating point, execution dependencies, the memory hierarchy, or stores —
// so the tuner can attribute modeling error to individual components.
package ubench

import (
	"fmt"
	"sort"

	"racesim/internal/asm"
	"racesim/internal/isa"
	"racesim/internal/trace"
)

// Category groups benchmarks by the component they stress.
type Category string

// Benchmark categories from Table I.
const (
	CatMemory       Category = "memory"
	CatControl      Category = "control"
	CatDataParallel Category = "data_parallel"
	CatExecution    Category = "execution"
	CatStore        Category = "store"
)

// Categories lists all categories in presentation order.
var Categories = []Category{CatMemory, CatControl, CatDataParallel, CatExecution, CatStore}

// Options parameterizes program generation.
type Options struct {
	// Scale multiplies the paper's dynamic instruction count to size the
	// generated main loop; the default 0 means 1/100, clamped to
	// [MinInstructions, MaxInstructions].
	Scale float64
	// InitArrays writes every array before the timed loop — the fix the
	// paper applies after discovering the uninitialized-page effect.
	// Benchmarks that deliberately read uninitialized memory honour it.
	InitArrays bool
}

// Instruction-count clamps for generated benchmarks.
const (
	MinInstructions = 4_000
	MaxInstructions = 150_000
)

// Bench is one generated micro-benchmark.
type Bench struct {
	Name     string
	Category Category
	// PaperInstructions is the dynamic AArch64 instruction count reported
	// in Table I.
	PaperInstructions uint64
	// Description says which behaviour the benchmark isolates.
	Description string
	// ReadsUninitialized marks benchmarks that stream over never-written
	// memory (the zero-fill page effect of Sec. IV-B).
	ReadsUninitialized bool

	build func(o Options, target uint64) string
}

// Target returns the scaled dynamic instruction goal for the options.
func (b Bench) Target(o Options) uint64 {
	scale := o.Scale
	if scale <= 0 {
		scale = 0.01
	}
	t := uint64(float64(b.PaperInstructions) * scale)
	if t < MinInstructions {
		t = MinInstructions
	}
	if t > MaxInstructions {
		t = MaxInstructions
	}
	return t
}

// Program assembles the benchmark.
func (b Bench) Program(o Options) (*isa.Program, error) {
	src := b.build(o, b.Target(o))
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("ubench %s: %w", b.Name, err)
	}
	return p, nil
}

// Trace generates, runs and records the benchmark.
func (b Bench) Trace(o Options) (*trace.Trace, error) {
	p, err := b.Program(o)
	if err != nil {
		return nil, err
	}
	// Allow generous headroom over the target for setup/init loops.
	tr, err := trace.Record(b.Name, p, 4*b.Target(o)+1_000_000)
	if err != nil {
		return nil, fmt.Errorf("ubench %s: %w", b.Name, err)
	}
	return tr, nil
}

var suite []Bench
var byName = map[string]int{}

func register(b Bench) {
	if _, dup := byName[b.Name]; dup {
		panic("ubench: duplicate benchmark " + b.Name)
	}
	byName[b.Name] = len(suite)
	suite = append(suite, b)
}

// Suite returns all benchmarks in Table I order (memory, control,
// data-parallel, execution, store).
func Suite() []Bench {
	out := make([]Bench, len(suite))
	copy(out, suite)
	return out
}

// ByName looks a benchmark up by its Table I name.
func ByName(name string) (Bench, bool) {
	i, ok := byName[name]
	if !ok {
		return Bench{}, false
	}
	return suite[i], true
}

// ByCategory returns the benchmarks of one category, suite-ordered.
func ByCategory(cat Category) []Bench {
	var out []Bench
	for _, b := range suite {
		if b.Category == cat {
			out = append(out, b)
		}
	}
	return out
}

// Names returns all benchmark names, suite-ordered.
func Names() []string {
	out := make([]string, len(suite))
	for i, b := range suite {
		out[i] = b.Name
	}
	return out
}

// SortedNames returns all names alphabetically (for stable table output).
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}
