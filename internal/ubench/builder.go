package ubench

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// program stitches a standard benchmark skeleton: setup code, then a main
// loop whose body is repeated until the dynamic instruction target is met.
//
// Register conventions: x28 is the loop counter, x27/x26/x25 are init-loop
// scratch, x20..x24 benchmark bases, x1..x15 body scratch.
func program(setup, body string, perIter int, target uint64) string {
	iters := target / uint64(perIter+2) // +2: subi/cbnz loop overhead
	if iters < 8 {
		iters = 8
	}
	var b strings.Builder
	b.WriteString(".org 0x1000\n")
	b.WriteString(setup)
	fmt.Fprintf(&b, "la x28, %d\n", iters)
	b.WriteString("bench_loop:\n")
	b.WriteString(body)
	b.WriteString("subi x28, x28, #1\ncbnz x28, bench_loop\nhalt\n")
	return b.String()
}

// initSeq only keeps assembler labels unique within a program; label
// names never reach the encoded instructions, so an atomic counter keeps
// concurrent trace generation race-free without affecting determinism.
var initSeq atomic.Int64

// initRegion emits a store loop writing one word per line over
// [addr, addr+bytes), leaving x27/x26/x25 clobbered.
func initRegion(addr string, bytes int) string {
	label := fmt.Sprintf("init_%d", initSeq.Add(1))
	lines := bytes / 64
	return fmt.Sprintf(`la x27, %s
la x26, %d
movz x25, #1
%s:
strx x25, [x27, #0]
addi x27, x27, #64
subi x26, x26, #1
cbnz x26, %s
`, addr, lines, label, label)
}

// chainRegion emits a loop writing a sequential pointer chain with the
// given stride over [addr, addr+bytes): mem[addr+i*stride] = addr +
// ((i+1)*stride mod bytes).
func chainRegion(addr string, bytes, stride int) string {
	label := fmt.Sprintf("chain_%d", initSeq.Add(1))
	n := bytes / stride
	return fmt.Sprintf(`la x27, %s
la x26, %d
la x25, %s+%d
%s:
strx x25, [x27, #0]
addi x25, x25, #%d
addi x27, x27, #%d
subi x26, x26, #1
cbnz x26, %s
// last node points back to the head
la x27, %s+%d
la x25, %s
strx x25, [x27, #0]
`, addr, n-1, addr, stride, label, stride, stride, label, addr, (n-1)*stride, addr)
}

// lcgStep emits an LCG advance of reg using scratch, leaving a
// pseudo-random value in reg. Constants follow a 16-bit-friendly mixed
// congruential generator.
func lcgStep(reg, scratch string) string {
	return fmt.Sprintf(`mul %s, %s, %s
addi %s, %s, #12345
`, reg, reg, scratch, reg, reg)
}
