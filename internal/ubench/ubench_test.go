package ubench

import (
	"testing"

	"racesim/internal/isa"
)

func TestSuiteComplete(t *testing.T) {
	s := Suite()
	if len(s) != 40 {
		t.Fatalf("suite has %d benchmarks, Table I lists 40", len(s))
	}
	wantCounts := map[Category]int{
		CatMemory: 15, CatControl: 12, CatDataParallel: 5, CatExecution: 5, CatStore: 3,
	}
	got := map[Category]int{}
	for _, b := range s {
		got[b.Category]++
	}
	for cat, want := range wantCounts {
		if got[cat] != want {
			t.Errorf("category %s has %d benchmarks, want %d", cat, got[cat], want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"MC", "CS1", "DP1d", "ED1", "STc"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("benchmark %s missing", name)
		}
	}
	if _, ok := ByName("NOPE"); ok {
		t.Error("unknown name found")
	}
}

func TestAllBenchmarksAssembleAndRun(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			tr, err := b.Trace(Options{})
			if err != nil {
				t.Fatal(err)
			}
			target := b.Target(Options{})
			if uint64(tr.Len()) < target/2 {
				t.Errorf("trace has %d instructions, target %d", tr.Len(), target)
			}
			if uint64(tr.Len()) > 4*target+1_000_000 {
				t.Errorf("trace has %d instructions, way over target %d", tr.Len(), target)
			}
		})
	}
}

func TestCategoriesStressTheRightClasses(t *testing.T) {
	frac := func(name string, classes ...isa.Class) float64 {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		tr, err := b.Trace(Options{})
		if err != nil {
			t.Fatal(err)
		}
		mix := tr.ClassMix()
		n := 0
		for _, c := range classes {
			n += mix[c]
		}
		return float64(n) / float64(tr.Len())
	}
	if f := frac("MD", isa.ClassLoad); f < 0.4 {
		t.Errorf("MD load fraction %.2f, want heavy loads", f)
	}
	if f := frac("CCh", isa.ClassBranch); f < 0.2 {
		t.Errorf("CCh branch fraction %.2f, want branch-heavy", f)
	}
	if f := frac("CS1", isa.ClassBranchInd); f < 0.05 {
		t.Errorf("CS1 indirect fraction %.2f, want indirect branches", f)
	}
	if f := frac("DP1d", isa.ClassFPMul, isa.ClassFPAdd, isa.ClassSIMD); f < 0.15 {
		t.Errorf("DP1d FP fraction %.2f, want FP-heavy", f)
	}
	if f := frac("EM1", isa.ClassIntMul); f < 0.4 {
		t.Errorf("EM1 mul fraction %.2f, want mul-heavy", f)
	}
	if f := frac("STL2", isa.ClassStore); f < 0.25 {
		t.Errorf("STL2 store fraction %.2f, want store-heavy", f)
	}
	if f := frac("CF1", isa.ClassCall, isa.ClassRet); f < 0.3 {
		t.Errorf("CF1 call/ret fraction %.2f, want call-heavy", f)
	}
	if f := frac("DPcvt", isa.ClassFPCvt); f < 0.4 {
		t.Errorf("DPcvt cvt fraction %.2f, want conversion-heavy", f)
	}
}

func TestUninitializedFlagsAndInitArraysOption(t *testing.T) {
	flagged := 0
	for _, b := range Suite() {
		if b.ReadsUninitialized {
			flagged++
		}
	}
	if flagged < 2 || flagged > 5 {
		t.Errorf("%d benchmarks flagged uninitialized; the paper reports 'a couple'", flagged)
	}
	// With InitArrays, MIM's trace must gain store traffic (the init loop).
	b, _ := ByName("MIM")
	plain, err := b.Trace(Options{})
	if err != nil {
		t.Fatal(err)
	}
	inited, err := b.Trace(Options{InitArrays: true})
	if err != nil {
		t.Fatal(err)
	}
	if inited.ClassMix()[isa.ClassStore] <= plain.ClassMix()[isa.ClassStore] {
		t.Error("InitArrays did not add initialization stores")
	}
}

func TestScaleOption(t *testing.T) {
	b, _ := ByName("CCh")
	small := b.Target(Options{Scale: 0.001})
	big := b.Target(Options{Scale: 0.05})
	if small >= big {
		t.Errorf("scale option has no effect: %d vs %d", small, big)
	}
	if small < MinInstructions || big > MaxInstructions {
		t.Errorf("targets escape clamps: %d, %d", small, big)
	}
}

func TestPaperInstructionCountsMatchTable1(t *testing.T) {
	// Spot-check the dynamic instruction counts against Table I.
	want := map[string]uint64{
		"MC": 1_800_000, "MCS": 115_000, "MD": 33_000, "MI": 22_000_000,
		"MIP": 66_000_000, "ML2_BWst": 8_400, "CS3": 34_500_000,
		"DPcvt": 36_700_000, "EM1": 65_000, "STL2": 4_000,
	}
	for name, count := range want {
		b, ok := ByName(name)
		if !ok {
			t.Errorf("missing %s", name)
			continue
		}
		if b.PaperInstructions != count {
			t.Errorf("%s paper count = %d, want %d", name, b.PaperInstructions, count)
		}
	}
}
