package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"racesim/internal/expt"
	"racesim/internal/par"
	"racesim/internal/sim"
	"racesim/internal/simcache"
	"racesim/internal/trace"
	"racesim/internal/ubench"
	"racesim/internal/workload"
)

// expand resolves a comma-separated name list, where "all" selects every
// known name (in canonical order).
func expand(arg string, all []string) []string {
	if arg == "all" {
		return all
	}
	var out []string
	for _, n := range strings.Split(arg, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// gather resolves the job's trace selectors and generates the traces on
// the worker pool: emulation dominates batch startup. Generated traces
// (ubench emulation, workload synthesis) are deterministic in their
// parameters and memoized through e.memo when one is attached — the
// serve steady state re-runs the same job shapes, and a memo hit skips
// both emulation and decode (the trace carries its decoded forms).
// TracePath replays are not memoized: the file can change between jobs.
func (e *env) gather(j *RunJob, events int, scale float64) ([]*trace.Trace, error) {
	var producers []func() (*trace.Trace, error)
	if j.Ubench != "" {
		var names []string
		for _, b := range ubench.Suite() {
			names = append(names, b.Name)
		}
		for _, n := range expand(j.Ubench, names) {
			b, ok := ubench.ByName(n)
			if !ok {
				return nil, fmt.Errorf("unknown micro-benchmark %q (see racesim ubench -list)", n)
			}
			key := fmt.Sprintf("ubench\x00%s\x00scale=%g", b.Name, scale)
			producers = append(producers, func() (*trace.Trace, error) {
				return e.memo.Get(key, func() (*trace.Trace, error) {
					return b.Trace(ubench.Options{Scale: scale})
				})
			})
		}
	}
	if j.Workload != "" {
		var names []string
		for _, p := range workload.Profiles() {
			names = append(names, p.Name)
		}
		for _, n := range expand(j.Workload, names) {
			p, ok := workload.ByName(n)
			if !ok {
				return nil, fmt.Errorf("unknown workload %q", n)
			}
			key := fmt.Sprintf("workload\x00%s\x00events=%d\x00seed=%d", p.Name, events, j.Seed)
			producers = append(producers, func() (*trace.Trace, error) {
				return e.memo.Get(key, func() (*trace.Trace, error) {
					return workload.Generate(p, workload.Options{Events: events, Seed: j.Seed})
				})
			})
		}
	}
	if j.TracePath != "" {
		producers = append(producers, func() (*trace.Trace, error) {
			return trace.ReadFile(j.TracePath)
		})
	}
	if len(producers) == 0 {
		return nil, fmt.Errorf("one of ubench, workload or trace is required")
	}
	trs := make([]*trace.Trace, len(producers))
	err := par.ForEachCtx(e.ctx, len(producers), e.par, func(i int) error {
		tr, err := producers[i]()
		if err != nil {
			return err
		}
		trs[i] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return trs, nil
}

// resolveConfig picks the job's simulator configuration.
func resolveConfig(j *RunJob) (sim.Config, error) {
	switch {
	case j.ConfigPath != "" && len(j.ConfigJSON) > 0:
		return sim.Config{}, fmt.Errorf("config_path and config_json are mutually exclusive")
	case j.ConfigPath != "":
		return sim.LoadConfig(j.ConfigPath)
	case len(j.ConfigJSON) > 0:
		var cfg sim.Config
		if err := json.Unmarshal(j.ConfigJSON, &cfg); err != nil {
			return sim.Config{}, fmt.Errorf("config_json: %w", err)
		}
		if err := cfg.Validate(); err != nil {
			return sim.Config{}, fmt.Errorf("config_json: %w", err)
		}
		return cfg, nil
	case j.Preset == "" || j.Preset == "public-a53":
		return sim.PublicA53(), nil
	case j.Preset == "public-a72":
		return sim.PublicA72(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown preset %q", j.Preset)
	}
}

func (e *env) runJob(j *RunJob) error {
	if j == nil {
		j = &RunJob{}
	}
	events := j.Events
	if events == 0 {
		events = 100_000
	}
	scale := j.Scale
	if scale == 0 {
		scale = 0.01
	}
	cfg, err := resolveConfig(j)
	if err != nil {
		return err
	}

	trs, err := e.gather(j, events, scale)
	if err != nil {
		return err
	}

	if !e.shared && e.path != "" {
		if err := simcache.ValidatePath(e.path); err != nil {
			return err
		}
		// Checked load, like every other entry point: a poisoned snapshot
		// is silently re-simulated but must not be silently *unreported*.
		// (The historical racesim binary loaded unchecked; the quiet
		// success path is unchanged.)
		_, rejected, err := e.cache.LoadChecked(e.path)
		var stale *simcache.StaleFormatError
		if errors.As(err, &stale) {
			e.eprintf("racesim: ignoring snapshot %s (format %d); starting cold\n", stale.Path, stale.Format)
		} else if err != nil {
			return err
		}
		if rejected > 0 {
			e.eprintf("racesim: %s: rejected %d corrupted cache entries\n", e.path, rejected)
		}
	}
	runner := expt.NewRunner(e.cache, e.par).WithContext(e.ctx).WithLanes(e.lanes)
	units := make([]expt.Unit, len(trs))
	for i, tr := range trs {
		units[i] = expt.Unit{Config: cfg, Trace: tr}
	}
	results, err := runner.RunAll(units)
	if err != nil {
		return err
	}

	if len(trs) == 1 {
		tr, res := trs[0], results[0]
		e.printf("config:        %s (%s)\n", cfg.Name, cfg.Kind)
		e.printf("trace:         %s (%d instructions)\n", tr.Name, tr.Len())
		e.printf("cycles:        %d\n", res.Cycles)
		e.printf("CPI:           %.4f   (IPC %.4f)\n", res.CPI(), res.IPC())
		e.printf("branch MPKI:   %.2f   (mispredicts %d)\n",
			res.Branch.MPKI(res.Instructions), res.Branch.Mispredicts())
		e.printf("L1D miss rate: %.2f%%  L2 miss rate: %.2f%%\n",
			res.Mem.L1D.MissRate()*100, res.Mem.L2.MissRate()*100)
		e.printf("stalls:        front-end %d, data %d, structural %d cycles\n",
			res.StallFrontEnd, res.StallData, res.StallStruct)
	} else {
		t := &expt.Table{
			Title:   fmt.Sprintf("%s (%s): %d traces", cfg.Name, cfg.Kind, len(trs)),
			Headers: []string{"trace", "insns", "cycles", "CPI", "br MPKI", "L1D miss", "L2 miss"},
		}
		for i, tr := range trs {
			res := results[i]
			t.AddRow(tr.Name, fmt.Sprintf("%d", tr.Len()), fmt.Sprintf("%d", res.Cycles),
				fmt.Sprintf("%.4f", res.CPI()),
				fmt.Sprintf("%.2f", res.Branch.MPKI(res.Instructions)),
				fmt.Sprintf("%.2f%%", res.Mem.L1D.MissRate()*100),
				fmt.Sprintf("%.2f%%", res.Mem.L2.MissRate()*100))
		}
		e.printf("%s", t.Render())
	}

	if !e.shared && e.path != "" {
		st := e.cache.Stats()
		e.eprintf("cache: %d hits, %d misses (%.1f%% hit rate)\n",
			st.Hits, st.Misses, st.HitRate()*100)
		if err := e.cache.SaveFile(e.path); err != nil {
			return err
		}
	}
	return nil
}
