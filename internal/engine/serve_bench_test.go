package engine

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"racesim/internal/telemetry"
)

// BenchmarkServeJobRoundTrip is the serve load generator: one client
// driving warm jobs through the full HTTP lifecycle — POST /v1/jobs,
// SSE watch to the terminal state — against an in-process server, so
// the measured cost is the serving fabric itself (submission, queueing,
// worker dispatch, event streaming) on top of an all-hits simulation.
// Reports whole-path jobs/s plus p50/p90/p99 round-trip latency;
// recorded in BENCH_serve.json and gated in budgets/bench.json.
func BenchmarkServeJobRoundTrip(b *testing.B) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	c := NewClient(ts.URL)
	job := Job{Kind: KindRun, Run: &RunJob{Ubench: "MD,CS1,MIP", Scale: 0.002}}

	// Warm the shared cache and trace memo: steady state, like the
	// engine benches.
	id, err := c.Submit(ctx, job)
	if err != nil {
		b.Fatal(err)
	}
	if st, err := c.Watch(ctx, id, time.Millisecond); err != nil || st.Status != "done" {
		b.Fatalf("warm-up job: %v / %+v", err, st)
	}

	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		id, err := c.Submit(ctx, job)
		if err != nil {
			b.Fatal(err)
		}
		st, err := c.Watch(ctx, id, time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if st.Status != "done" {
			b.Fatalf("job %s: %+v", st.Status, st)
		}
		durs = append(durs, time.Since(start))
	}
	b.StopTimer()
	srv.Drain(ctx)

	p := telemetry.Percentiles(durs, 0.50, 0.90, 0.99)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(float64(p[0].Nanoseconds())/1e6, "p50_ms")
	b.ReportMetric(float64(p[1].Nanoseconds())/1e6, "p90_ms")
	b.ReportMetric(float64(p[2].Nanoseconds())/1e6, "p99_ms")
}
