package engine

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"racesim/internal/core"
	"racesim/internal/simcache"
)

// RemoteCache resolves simulation-cache misses against a shared cluster
// cache server (a `racesim serve -cache-server` process) and publishes
// locally computed results back to it — the mid-run half of cache
// federation that pre-seed/drain snapshots cannot provide. It implements
// simcache.Resolver:
//
//   - Lookup GETs /v1/cache/entry/{key} synchronously on a true miss.
//     The caller (simcache.Run) holds the key's singleflight claim, so
//     concurrent identical misses cost one round-trip, not N. A miss,
//     a timeout or an unreachable server all answer "not found" — the
//     shared tier accelerates, it never gates: the worker simulates and
//     moves on.
//   - Offer enqueues the entry on a bounded write-back buffer; a
//     background flusher PUTs entries without blocking the simulation
//     path. When the buffer is full the entry is dropped and counted —
//     losing a write-back costs a peer one redundant simulation, which
//     beats stalling this worker's run.
//
// Close flushes the buffer and stops the flusher; the serve drain path
// calls it so entries computed just before shutdown still reach the
// shared tier.
type RemoteCache struct {
	client *Client
	// LookupTimeout bounds one Lookup round-trip (default 5s): a shared
	// tier answering slower than that is worth less than simulating.
	LookupTimeout time.Duration

	ch      chan remoteEntry
	closeMu sync.RWMutex
	closed  bool
	once    sync.Once
	wg      sync.WaitGroup
	dropped atomic.Uint64
	offered atomic.Uint64
	flushed atomic.Uint64
	errs    atomic.Uint64
}

type remoteEntry struct {
	key string
	res core.Result
}

// writeBackDepth bounds the Offer buffer. At ~1 KiB per encoded entry
// the buffer tops out well under a megabyte.
const writeBackDepth = 256

// NewRemoteCache returns a resolver against a cache server base URL and
// starts its write-back flusher.
func NewRemoteCache(baseURL string) *RemoteCache {
	r := &RemoteCache{
		client: NewClient(baseURL),
		ch:     make(chan remoteEntry, writeBackDepth),
	}
	r.wg.Add(1)
	go r.flusher()
	return r
}

// Client exposes the underlying API client (tests, transport wiring).
func (r *RemoteCache) Client() *Client { return r.client }

func (r *RemoteCache) entryURL(key string) string {
	return r.client.BaseURL + "/v1/cache/entry/" + url.PathEscape(key)
}

// Lookup implements simcache.Resolver.
func (r *RemoteCache) Lookup(key string) (core.Result, bool) {
	timeout := r.LookupTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.entryURL(key), nil)
	if err != nil {
		return core.Result{}, false
	}
	resp, err := r.client.http().Do(req)
	if err != nil {
		r.errs.Add(1)
		return core.Result{}, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes))
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp.StatusCode != http.StatusNotFound {
			r.errs.Add(1)
		}
		return core.Result{}, false
	}
	gotKey, res, err := simcache.DecodeEntry(data)
	if err != nil || gotKey != key {
		// A corrupt or mismatched entry is treated as a miss: the worker
		// re-simulates the correct value rather than trusting the wire.
		r.errs.Add(1)
		return core.Result{}, false
	}
	return res, true
}

// Offer implements simcache.Resolver: non-blocking enqueue, drop+count
// when the write-back buffer is full or the resolver already closed (a
// job racing a drain must not panic on a closed channel).
func (r *RemoteCache) Offer(key string, res core.Result) {
	r.closeMu.RLock()
	defer r.closeMu.RUnlock()
	if r.closed {
		r.dropped.Add(1)
		return
	}
	select {
	case r.ch <- remoteEntry{key: key, res: res}:
		r.offered.Add(1)
	default:
		r.dropped.Add(1)
	}
}

func (r *RemoteCache) flusher() {
	defer r.wg.Done()
	for e := range r.ch {
		if err := r.put(e.key, e.res); err != nil {
			r.errs.Add(1)
			continue
		}
		r.flushed.Add(1)
	}
}

func (r *RemoteCache) put(key string, res core.Result) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	body := simcache.EncodeEntry(key, res)
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, r.entryURL(key), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.client.http().Do(req)
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return apiErrorOf(resp, data)
	}
	return nil
}

// Close flushes queued write-backs and stops the flusher. Later Offers
// become counted drops; later Lookups still work (read path is
// stateless).
func (r *RemoteCache) Close() {
	r.once.Do(func() {
		r.closeMu.Lock()
		r.closed = true
		close(r.ch)
		r.closeMu.Unlock()
	})
	r.wg.Wait()
}

// RemoteCacheStats reports the write-back side of the shared tier.
type RemoteCacheStats struct {
	Offered uint64 `json:"offered"` // entries enqueued for write-back
	Flushed uint64 `json:"flushed"` // entries successfully PUT upstream
	Dropped uint64 `json:"dropped"` // entries dropped on a full buffer
	Errors  uint64 `json:"errors"`  // failed lookups/write-backs (transport or decode)
}

// Stats snapshots the write-back counters.
func (r *RemoteCache) Stats() RemoteCacheStats {
	return RemoteCacheStats{
		Offered: r.offered.Load(),
		Flushed: r.flushed.Load(),
		Dropped: r.dropped.Load(),
		Errors:  r.errs.Load(),
	}
}

// maxEntryBytes bounds one cache-entry body in both directions; an
// encoded record is ~1 KiB, so a megabyte is generous headroom.
const maxEntryBytes = 1 << 20

// checkEntryKey verifies that the body's embedded key matches the URL
// path key on PUT — a mismatch means the body was built for a different
// entry and must not be stored under this key.
func checkEntryKey(pathKey, bodyKey string) error {
	if pathKey != bodyKey {
		return fmt.Errorf("engine: entry body key %q does not match path key %q", bodyKey, pathKey)
	}
	return nil
}
