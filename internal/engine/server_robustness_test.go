package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"racesim/internal/simcache"
)

func cancelJob(t *testing.T, ts *httptest.Server, id string) (status string, code int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return out.Status, resp.StatusCode
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		switch st.Status {
		case "done", "failed", "cancelled":
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

func TestServerSurvivesPanickingJob(t *testing.T) {
	// The first job's fault hook panics inside the engine; the pool must
	// record one failed job with its stack and keep serving. Without
	// recovery the single worker goroutine dies and the second job hangs
	// queued forever.
	var calls atomic.Int32
	srv, err := NewServer(ServerOptions{
		FaultHook: func(ctx context.Context) error {
			if calls.Add(1) == 1 {
				panic("injected: first job dies")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	id1, err := srv.Submit(Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}})
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitTerminal(t, ts, id1)
	if st1.Status != "failed" || !strings.Contains(st1.Error, "panicked") {
		t.Fatalf("panicking job: status %s, error %q; want failed with a panic error", st1.Status, st1.Error)
	}
	// The stack lands in the progress ring so GET /v1/jobs/{id} shows
	// where the job died.
	var sawStack bool
	for _, line := range st1.Progress {
		if strings.Contains(line, "goroutine") || strings.Contains(line, "panic:") {
			sawStack = true
		}
	}
	if !sawStack {
		t.Errorf("no stack in the progress ring: %v", st1.Progress)
	}

	id2, err := srv.Submit(Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}})
	if err != nil {
		t.Fatal(err)
	}
	if st2 := waitTerminal(t, ts, id2); st2.Status != "done" {
		t.Errorf("job after the panic: status %s, want done (worker pool did not survive)", st2.Status)
	}
}

func TestServerCancelRunningJobFreesSlot(t *testing.T) {
	// Block the single worker on a stalled fault hook, cancel the job over
	// HTTP, and prove the slot frees by running a second job to completion.
	started := make(chan struct{}, 1)
	var calls atomic.Int32
	srv, err := NewServer(ServerOptions{
		FaultHook: func(ctx context.Context) error {
			// Only the first job stalls; the follow-up job passes through.
			if calls.Add(1) != 1 {
				return nil
			}
			started <- struct{}{}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(30 * time.Second):
				return nil
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, err := srv.Submit(Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started")
	}
	status, code := cancelJob(t, ts, id)
	if code != http.StatusAccepted || status != "cancelling" {
		t.Fatalf("cancel running job: code %d status %q, want 202 cancelling", code, status)
	}
	st := waitTerminal(t, ts, id)
	if st.Status != "cancelled" {
		t.Fatalf("cancelled job settled as %s (%s)", st.Status, st.Error)
	}
	// Cancelling a terminal job is a conflict, not an idempotent no-op.
	if _, code := cancelJob(t, ts, id); code != http.StatusConflict {
		t.Errorf("cancel of finished job: code %d, want 409", code)
	}

	// The worker slot is free again: new work runs to completion.
	id2, err := srv.Submit(Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}})
	if err != nil {
		t.Fatal(err)
	}
	if st2 := waitTerminal(t, ts, id2); st2.Status != "done" {
		t.Errorf("job after cancellation: status %s, want done (slot never freed)", st2.Status)
	}
	srv.Drain(context.Background())
}

func TestServerCancelQueuedJobNeverRuns(t *testing.T) {
	// One worker pinned on a stalling job; a queued job cancelled before it
	// starts must flip to cancelled immediately and never execute.
	release := make(chan struct{})
	var ran atomic.Int32
	srv, err := NewServer(ServerOptions{
		FaultHook: func(ctx context.Context) error {
			if ran.Add(1) == 1 {
				select {
				case <-release:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	blocker, err := srv.Submit(Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Submit(Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}})
	if err != nil {
		t.Fatal(err)
	}
	status, code := cancelJob(t, ts, queued)
	if code != http.StatusAccepted || status != "cancelled" {
		t.Fatalf("cancel queued job: code %d status %q, want 202 cancelled", code, status)
	}
	close(release)
	if st := waitTerminal(t, ts, blocker); st.Status != "done" {
		t.Fatalf("blocker job: %s (%s)", st.Status, st.Error)
	}
	if st := getStatus(t, ts, queued); st.Status != "cancelled" {
		t.Errorf("queued job settled as %s after cancellation", st.Status)
	}
	if n := ran.Load(); n != 1 {
		t.Errorf("fault hook ran %d times; the cancelled queued job executed", n)
	}
	srv.Drain(context.Background())
}

func TestServerEnforcesJobDeadline(t *testing.T) {
	// A server-wide 50ms deadline against a hook stalled on its context:
	// the job must fail with a deadline error, not hang its worker.
	srv, err := NewServer(ServerOptions{
		JobTimeout: 50 * time.Millisecond,
		FaultHook: func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(30 * time.Second):
				return nil
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, err := srv.Submit(Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, ts, id)
	if st.Status != "failed" || !strings.Contains(st.Error, "deadline") {
		t.Errorf("timed-out job: status %s error %q, want failed with a deadline error", st.Status, st.Error)
	}
	srv.Drain(context.Background())
}

func TestJobOwnTimeoutValidatedAndEnforced(t *testing.T) {
	// Bad duration strings are rejected at submission.
	bad := Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}, Timeout: "fast"}
	if err := bad.Check(); err == nil {
		t.Error("unparseable job timeout accepted")
	}
	neg := Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}, Timeout: "-5s"}
	if err := neg.Check(); err == nil {
		t.Error("negative job timeout accepted")
	}

	// A job carrying its own timeout is bounded even on a server with no
	// JobTimeout configured.
	srv, err := NewServer(ServerOptions{
		FaultHook: func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(30 * time.Second):
				return nil
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id, err := srv.Submit(Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}, Timeout: "50ms"})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, ts, id)
	if st.Status != "failed" || !strings.Contains(st.Error, "deadline") {
		t.Errorf("job with own timeout: status %s error %q, want failed deadline", st.Status, st.Error)
	}
	srv.Drain(context.Background())
}

func TestServerRejectsCorruptSnapshotPost(t *testing.T) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	// Warm one entry so a wholesale-clobbering import would be observable.
	id, err := srv.Submit(Job{Kind: KindRun, Run: &RunJob{Ubench: "MD", Scale: 0.002}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, ts, id)
	before := srv.Cache().Stats().Entries
	if before == 0 {
		t.Fatal("warm-up job cached nothing")
	}

	for _, body := range []string{
		"not json at all",
		`{"format":1,"entries":[`, // truncated mid-stream
		"\x00\x00\x00\x00",
	} {
		resp, err := http.Post(ts.URL+"/v1/cache/snapshot", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("corrupt snapshot %q answered %d, want 400", body, resp.StatusCode)
		}
	}
	// The existing cache is untouched and the server still works.
	if after := srv.Cache().Stats().Entries; after != before {
		t.Errorf("corrupt imports changed the cache: %d -> %d entries", before, after)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after corrupt imports: %d", resp.StatusCode)
	}
}

func TestServerSnapshotHookPoisonsDelta(t *testing.T) {
	// A snapshot hook that mangles the outbound body must surface at the
	// importing side as rejected entries or a decode error — never as a
	// silent merge of altered results.
	srcSrv, err := NewServer(ServerOptions{
		// The production poisoner: breaks one entry's checksum, exactly
		// what `serve -chaos poison=N` arms.
		SnapshotHook: simcache.PoisonSnapshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	srcTS := httptest.NewServer(srcSrv.Handler())
	defer srcTS.Close()
	defer srcSrv.Drain(context.Background())

	id, err := srcSrv.Submit(Job{Kind: KindRun, Run: &RunJob{Ubench: "MD", Scale: 0.002}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, srcTS, id); st.Status != "done" {
		t.Fatalf("warm-up job: %s", st.Error)
	}
	srcEntries := srcSrv.Cache().Stats().Entries

	resp, err := http.Get(srcTS.URL + "/v1/cache/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	poisoned := new(bytes.Buffer)
	poisoned.ReadFrom(resp.Body)
	resp.Body.Close()

	dstSrv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dstTS := httptest.NewServer(dstSrv.Handler())
	defer dstTS.Close()
	defer dstSrv.Drain(context.Background())
	resp, err = http.Post(dstTS.URL+"/v1/cache/snapshot", "application/json", poisoned)
	if err != nil {
		t.Fatal(err)
	}
	var rep SnapshotReport
	decodeErr := json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poisoned import answered %d", resp.StatusCode)
	}
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	// PoisonSnapshot breaks exactly one entry's checksum: the import
	// rejects that entry, accepts the rest, and reports the rejection.
	if rep.Rejected != 1 {
		t.Errorf("import report %+v, want exactly 1 rejected entry", rep)
	}
	if n := dstSrv.Cache().Stats().Entries; n != srcEntries-1 {
		t.Errorf("destination cache has %d entries, want %d (all but the poisoned one)", n, srcEntries-1)
	}
}
