package engine

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"racesim/internal/report"
)

// impossibleBudget is an accuracy budget no model can meet — the
// injected out-of-tolerance configuration the CI accuracy gate must
// turn into a failing job.
const impossibleBudget = `{"boards": {"firefly-a53": {"suite": {"min_correlation": 0.999999, "max_mape": 0.000001}}}}`

func TestValidateJobGateFailsOnOutOfToleranceBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation pipeline")
	}
	dir := t.TempDir()
	res, err := Execute(Job{Kind: KindValidate, Validate: &ValidateJob{
		Core: "a53", Budget1: 200, Budget2: 200, Scale: 0.001, Quiet: true,
		Gate: true, BudgetJSON: json.RawMessage(impossibleBudget), ReportDir: dir,
	}}, Options{Capture: true})
	if err == nil {
		t.Fatal("gate passed an impossible budget; CI would never fail")
	}
	for _, want := range []string{"accuracy budget violated", "firefly-a53/suite", "correlation", "MAPE"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error missing %q:\n%v", want, err)
		}
	}

	// The gate fires last: the report artifact and history file are still
	// produced so CI logs show exactly what missed the budget.
	if len(res.Report) == 0 {
		t.Fatal("failed gate dropped the report from the result")
	}
	var rep report.ValidationReport
	if err := json.Unmarshal(res.Report, &rep); err != nil {
		t.Fatalf("result report does not parse: %v", err)
	}
	if rep.Pass {
		t.Error("report claims pass under an impossible budget")
	}
	disk, err := os.ReadFile(filepath.Join(dir, "validate-a53.json"))
	if err != nil {
		t.Fatalf("report history file missing: %v", err)
	}
	if string(disk) != string(res.Report) {
		t.Error("report history bytes differ from Result.Report")
	}
	if !strings.Contains(res.Artifact, "accuracy budget: FAIL") {
		t.Error("artifact missing the rendered FAIL verdict")
	}
	if len(res.TunedConfig) == 0 {
		t.Error("failed gate dropped the tuned config (artifacts must precede the gate)")
	}
}

func TestValidateJobGatePassesWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation pipeline")
	}
	// Loose-but-real bounds the tuned tiny-scale model comfortably meets.
	loose := `{"boards": {"firefly-a53": {"suite": {"min_correlation": 0.5, "max_mape": 0.60}}}}`
	res, err := Execute(Job{Kind: KindValidate, Validate: &ValidateJob{
		Core: "a53", Budget1: 200, Budget2: 200, Scale: 0.001, Quiet: true,
		Gate: true, BudgetJSON: json.RawMessage(loose),
	}}, Options{Capture: true})
	if err != nil {
		t.Fatalf("gate failed a budget the tuned model meets: %v", err)
	}
	var rep report.ValidationReport
	if err := json.Unmarshal(res.Report, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("report not passing: %s", res.Report)
	}
	if !strings.Contains(res.Artifact, "accuracy budget: PASS") {
		t.Error("artifact missing the rendered PASS verdict")
	}
}

func TestServerReportEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation pipeline")
	}
	srv, err := NewServer(ServerOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	id, code := postJob(t, ts, Job{Kind: KindValidate, Validate: &ValidateJob{
		Core: "a53", Budget1: 200, Budget2: 200, Scale: 0.001, Quiet: true, Report: true,
	}})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	st := waitDone(t, ts, id)
	if st.Status != "done" {
		t.Fatalf("validate job failed: %s", st.Error)
	}

	// The typed client fetches the report the job produced.
	data, err := NewClient(ts.URL).Report(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	var rep report.ValidationReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("served report does not parse: %v", err)
	}
	if rep.Version != report.Version || len(rep.Boards) != 1 || rep.Boards[0].Board != "firefly-a53" {
		t.Errorf("served report: version %d, boards %+v", rep.Version, rep.Boards)
	}
	if !rep.Pass {
		t.Error("unconstrained budget must pass")
	}

	// A job that produced no report answers 404 with a hint, not a 200
	// with an empty body.
	runID, _ := postJob(t, ts, Job{Kind: KindRun, Run: &RunJob{Ubench: "MD", Scale: 0.002}})
	waitDone(t, ts, runID)
	if _, err := NewClient(ts.URL).Report(context.Background(), runID); err == nil ||
		!strings.Contains(err.Error(), "no validation report") {
		t.Errorf("report for report-less job: %v", err)
	}
	if _, err := NewClient(ts.URL).Report(context.Background(), "nope"); err == nil {
		t.Error("report for unknown job must error")
	}
}

func TestServerRejectsPathValuedValidateFields(t *testing.T) {
	for name, job := range map[string]Job{
		"budget_path": {Kind: KindValidate, Validate: &ValidateJob{Core: "a53", BudgetPath: "/etc/x.json"}},
		"report_dir":  {Kind: KindValidate, Validate: &ValidateJob{Core: "a53", ReportDir: "/tmp/reports"}},
	} {
		if err := job.CheckServerSafe(); err == nil {
			t.Errorf("%s: path-valued field accepted over the unauthenticated API", name)
		}
	}
	// The inline form stays server-safe.
	ok := Job{Kind: KindValidate, Validate: &ValidateJob{Core: "a53", BudgetJSON: json.RawMessage(`{}`), Gate: true}}
	if err := ok.CheckServerSafe(); err != nil {
		t.Errorf("inline budget rejected: %v", err)
	}
}

func TestValidateJobRejectsConflictingBudgets(t *testing.T) {
	_, err := Execute(Job{Kind: KindValidate, Validate: &ValidateJob{
		Core: "a53", BudgetJSON: json.RawMessage(`{}`), BudgetPath: "x.json",
	}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "both") {
		t.Errorf("conflicting budget sources: %v", err)
	}
}

func TestValidateJobRejectsBadBudgetBeforeTuning(t *testing.T) {
	_, err := Execute(Job{Kind: KindValidate, Validate: &ValidateJob{
		Core: "a53", BudgetJSON: json.RawMessage(`{"boards": {"b": {"suite": {"max_mapee": 1}}}}`),
	}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("typoed budget must fail before tuning starts: %v", err)
	}
}
