package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// jobEvent is one item on a job's live event stream (GET
// /v1/jobs/{id}/events, Server-Sent Events):
//
//   - Kind "progress": Data is one completed progress-ring line;
//   - Kind "state": Data is the job's status JSON — byte-for-byte the
//     body a polled GET /v1/jobs/{id} would return at that moment.
//
// The stream's final event is always a terminal "state" event, so an
// SSE consumer ends up holding exactly the bytes a poller would.
type jobEvent struct {
	Kind     string
	Data     string
	Seq      int64 // progress events: the line's 1-based sequence number
	Terminal bool  // state events: done | failed | cancelled
}

// sseBuffer bounds each subscriber's channel. A consumer that falls
// further behind than this is dropped (its channel closed); the client
// contract is to fall back to polling, which cannot fall behind.
const sseBuffer = 256

// statusBody renders a JobStatus exactly as writeJSON serves it on GET
// /v1/jobs/{id}: two-space indent plus the json.Encoder trailing
// newline. SSE state events carry these bytes, which is what makes the
// stream's terminal event byte-identical to the polled body.
func statusBody(st JobStatus) string {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		// JobStatus is plain data; this cannot fail. Keep the stream alive
		// with an explicit error body rather than panicking a handler.
		return fmt.Sprintf("{\n  \"error\": %q\n}\n", err.Error())
	}
	return string(b) + "\n"
}

// subscribe registers a live-event consumer on the job. It returns the
// replay — every progress line already in the ring followed by the
// current state — plus the channel future events arrive on. replayedTo
// is the sequence number of the last replayed progress line; the
// consumer must skip channel progress events at or below it (a line can
// land in both the replay snapshot and the channel when a write races
// the subscription). ch is nil when the job is already terminal: the
// replay ends with the final state and there is nothing to stream.
// cancel must be called when the consumer goes away.
func (st *jobState) subscribe() (replay []jobEvent, replayedTo int64, ch chan jobEvent, cancel func()) {
	st.mu.Lock()
	lines, lastSeq := st.ring.LinesSeq()
	closed := st.subsClosed
	if !closed {
		ch = make(chan jobEvent, sseBuffer)
		if st.subs == nil {
			st.subs = map[chan jobEvent]struct{}{}
		}
		st.subs[ch] = struct{}{}
	}
	st.mu.Unlock()

	for i, line := range lines {
		replay = append(replay, jobEvent{
			Kind: "progress",
			Data: line,
			Seq:  lastSeq - int64(len(lines)-1-i),
		})
	}
	snap := st.snapshot(true)
	replay = append(replay, jobEvent{
		Kind:     "state",
		Data:     statusBody(snap),
		Terminal: terminalStatus(snap.Status),
	})
	cancel = func() {
		if ch == nil {
			return
		}
		st.mu.Lock()
		delete(st.subs, ch)
		st.mu.Unlock()
	}
	return replay, lastSeq, ch, cancel
}

func terminalStatus(status string) bool {
	switch status {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// notify fans ev out to every subscriber. A subscriber whose buffer is
// full is dropped — closed and removed — so one stalled consumer can
// never block the worker goroutine.
func (st *jobState) notify(ev jobEvent) {
	st.mu.Lock()
	for ch := range st.subs {
		select {
		case ch <- ev:
		default:
			delete(st.subs, ch)
			close(ch)
		}
	}
	st.mu.Unlock()
}

// notifyState snapshots the job and fans the state event out. terminal
// closes every subscriber channel after the event: the stream is over.
func (st *jobState) notifyState() {
	snap := st.snapshot(true)
	ev := jobEvent{Kind: "state", Data: statusBody(snap), Terminal: terminalStatus(snap.Status)}
	st.mu.Lock()
	for ch := range st.subs {
		select {
		case ch <- ev:
		default:
			delete(st.subs, ch)
			close(ch)
			continue
		}
		if ev.Terminal {
			close(ch)
		}
	}
	if ev.Terminal {
		st.subs = nil
		st.subsClosed = true
	}
	st.mu.Unlock()
}

// writeSSE frames one event on the wire. Multi-line data (the state
// JSON) is split across data: lines per the SSE spec; the client
// reconstructs the payload as join(lines, "\n") + "\n", which restores
// the exact bytes (every payload we emit ends in one newline).
func writeSSE(w io.Writer, ev jobEvent) {
	fmt.Fprintf(w, "event: %s\n", ev.Kind)
	for _, line := range strings.Split(strings.TrimSuffix(ev.Data, "\n"), "\n") {
		fmt.Fprintf(w, "data: %s\n", line)
	}
	io.WriteString(w, "\n")
}

// handleEvents implements GET /v1/jobs/{id}/events: a Server-Sent
// Events stream of the job's progress lines and state transitions. The
// stream replays everything retained so far (a late subscriber misses
// nothing the poll API still shows), then follows the job live and ends
// with a terminal state event whose data is byte-identical to the
// polled GET /v1/jobs/{id} body at that point.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{Error: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	s.sseStreams.Add(1)
	defer s.sseStreams.Add(-1)

	replay, replayedTo, ch, cancel := st.subscribe()
	defer cancel()
	emit := func(ev jobEvent) bool {
		writeSSE(w, ev)
		fl.Flush()
		return !(ev.Kind == "state" && ev.Terminal)
	}
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	if ch == nil {
		// Already terminal: the replay ended the stream above.
		return
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			if ev.Kind == "progress" && ev.Seq <= replayedTo {
				continue // already in the replay
			}
			if !emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
