package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tinyExperiments is a seconds-scale sweep job used throughout the server
// tests.
func tinyExperiments() Job {
	return Job{Kind: KindExperiments, Experiments: &ExperimentsJob{
		Scenario: "table1", Scale: 0.002, Events: 4000, Quiet: true,
	}}
}

func postJob(t *testing.T, ts *httptest.Server, job Job) (id string, code int) {
	t.Helper()
	body, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID, resp.StatusCode
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		switch st.Status {
		case "done", "failed":
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func TestServerJobLifecycleMatchesBatch(t *testing.T) {
	srv, err := NewServer(ServerOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	id, code := postJob(t, ts, tinyExperiments())
	if code != http.StatusAccepted || id == "" {
		t.Fatalf("submit: code %d id %q", code, id)
	}
	st := waitDone(t, ts, id)
	if st.Status != "done" {
		t.Fatalf("job failed: %s\n%s", st.Error, strings.Join(st.Progress, "\n"))
	}
	if st.Result == nil || st.Result.Artifact == "" {
		t.Fatal("done job carries no result artifact")
	}

	// The HTTP-submitted job renders the same bytes as the equivalent
	// batch invocation — the serve/batch equivalence contract.
	batch, err := Execute(tinyExperiments(), Options{Parallelism: 2, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Result.Artifact != batch.Artifact {
		t.Errorf("HTTP artifact differs from batch artifact:\nhttp:\n%s\nbatch:\n%s",
			st.Result.Artifact, batch.Artifact)
	}

	// The raw artifact endpoint serves the identical bytes as text/plain.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(raw) != st.Result.Artifact {
		t.Error("artifact endpoint bytes differ from the result")
	}

	// A repeated simulation job answers from the shared warm cache (table1
	// only generates traces, so use a run job for the cache assertion).
	runJob := Job{Kind: KindRun, Run: &RunJob{Ubench: "MD", Scale: 0.002}}
	idA, _ := postJob(t, ts, runJob)
	stA := waitDone(t, ts, idA)
	idB, _ := postJob(t, ts, runJob)
	stB := waitDone(t, ts, idB)
	if stA.Status != "done" || stB.Status != "done" {
		t.Fatalf("run jobs failed: %s / %s", stA.Error, stB.Error)
	}
	if stB.Result.Artifact != stA.Result.Artifact {
		t.Error("repeat run job artifact differs")
	}
	if hits := stB.Result.CacheStats.Hits; hits == 0 {
		t.Errorf("repeat run job saw no cache hits: %+v", stB.Result.CacheStats)
	}
}

func TestServerScenariosAndHealth(t *testing.T) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var infos []ScenarioInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	byName := map[string]ScenarioInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	if in, ok := byName["budget-sweep-a53"]; !ok || in.Units != 4 || in.Paper {
		t.Errorf("budget-sweep-a53 listing wrong: %+v (ok=%v)", in, ok)
	}
	if in, ok := byName["fig4"]; !ok || in.Units != 1 || !in.Paper {
		t.Errorf("fig4 listing wrong: %+v (ok=%v)", in, ok)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Workers != 1 {
		t.Errorf("health: %+v", health)
	}
}

func TestServerRejectsBadJobs(t *testing.T) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	if _, code := postJob(t, ts, Job{Kind: "bogus"}); code != http.StatusBadRequest {
		t.Errorf("bogus kind: code %d", code)
	}
	// Unknown fields are rejected, so schema typos fail loudly.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"run","run":{"ubenchh":"MD"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: code %d", resp.StatusCode)
	}
	// The HTTP API is unauthenticated: jobs naming server-side file paths
	// (reads or writes) must be refused at submission.
	for _, job := range []Job{
		{Kind: KindUbench, Ubench: &UbenchJob{Dump: "MD", DumpOut: "/tmp/x.rift"}},
		{Kind: KindValidate, Validate: &ValidateJob{OutPath: "/tmp/owned.json"}},
		{Kind: KindExperiments, Experiments: &ExperimentsJob{Scenario: "table1", OutPath: "/tmp/out.md"}},
		{Kind: KindExperiments, Experiments: &ExperimentsJob{Scenario: "table1", Resume: true}},
		{Kind: KindRun, Run: &RunJob{ConfigPath: "/etc/passwd", Ubench: "MD"}},
	} {
		if _, code := postJob(t, ts, job); code != http.StatusBadRequest {
			t.Errorf("server-side path job (%s) accepted with code %d, want 400", job.Kind, code)
		}
	}
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/artifact"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: code %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestServerDrain(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "serve-cache.json")
	srv, err := NewServer(ServerOptions{CachePath: cachePath, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A couple of queued jobs must complete before Drain returns.
	var ids []string
	for i := 0; i < 2; i++ {
		id, err := srv.Submit(Job{Kind: KindRun, Run: &RunJob{Ubench: "MD", Scale: 0.002}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if st := getStatus(t, ts, id); st.Status != "done" {
			t.Errorf("job %s not done after drain: %s", id, st.Status)
		}
	}
	// The warm cache was persisted...
	if stats := srv.Cache().Stats(); stats.Entries == 0 {
		t.Error("drain saved an empty cache")
	}
	reload, err := NewServer(ServerOptions{CachePath: cachePath})
	if err != nil {
		t.Fatal(err)
	}
	if n := reload.Cache().Stats().Entries; n == 0 {
		t.Error("snapshot did not reload on a fresh server")
	}
	reload.Drain(context.Background())

	// ...and new work is refused, both directly and over HTTP.
	if _, err := srv.Submit(tinyExperiments()); err == nil {
		t.Error("Submit accepted during drain")
	}
	if _, code := postJob(t, ts, tinyExperiments()); code != http.StatusServiceUnavailable {
		t.Errorf("POST during drain: code %d, want 503", code)
	}
	if err := srv.Drain(context.Background()); err == nil {
		t.Error("second Drain should fail")
	}
}

func TestServerFailedJobArtifactNotServedRaw(t *testing.T) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// An unknown benchmark fails after the engine has started writing
	// nothing — the artifact endpoint must refuse, not serve partial bytes
	// with a 200.
	id, err := srv.Submit(Job{Kind: KindRun, Run: &RunJob{Ubench: "NOPE"}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, ts, id)
	if st.Status != "failed" {
		t.Fatalf("job status %s, want failed", st.Status)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("failed job artifact answered %d, want 409", resp.StatusCode)
	}
	srv.Drain(context.Background())
}

func TestServerAbortedDrainStillCheckpoints(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "abort-cache.json")
	srv, err := NewServer(ServerOptions{CachePath: cachePath})
	if err != nil {
		t.Fatal(err)
	}
	// Keep the worker busy so the pre-cancelled context wins the select.
	if _, err := srv.Submit(tinyExperiments()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("aborted drain should report the context error")
	}
	// The snapshot was flushed anyway — nothing already computed is lost.
	if _, err := os.Stat(cachePath); err != nil {
		t.Errorf("aborted drain did not checkpoint: %v", err)
	}
}

func TestServerQueueBound(t *testing.T) {
	srv, err := NewServer(ServerOptions{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Block the single worker with a slow-ish job, then fill the queue.
	if _, err := srv.Submit(tinyExperiments()); err != nil {
		t.Fatal(err)
	}
	var sawFull bool
	for i := 0; i < 3; i++ {
		if _, err := srv.Submit(Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}}); err != nil {
			if !strings.Contains(err.Error(), "queue is full") {
				t.Fatalf("unexpected submit error: %v", err)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Error("queue never reported full at depth 1")
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestServerRetiresOldFinishedJobs(t *testing.T) {
	srv, err := NewServer(ServerOptions{KeepJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		id, err := srv.Submit(Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The oldest finished job is evicted; the two most recent survive.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job answered %d, want 404", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		if st := getStatus(t, ts, id); st.Status != "done" {
			t.Errorf("retained job %s: %s", id, st.Status)
		}
	}
	// The listing skips the evicted id instead of crashing on it.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing) != 2 {
		t.Errorf("listing has %d jobs, want 2", len(listing))
	}
}

func TestServerProgressRing(t *testing.T) {
	srv, err := NewServer(ServerOptions{KeepLog: 5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Non-quiet experiments jobs stream scenario progress on stderr, which
	// the server folds into the progress ring.
	job := tinyExperiments()
	job.Experiments.Quiet = false
	id, err := srv.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	srv.Drain(context.Background())
	st := getStatus(t, ts, id)
	if len(st.Progress) == 0 || len(st.Progress) > 5 {
		t.Fatalf("progress ring size %d, want 1..5: %v", len(st.Progress), st.Progress)
	}
	var sawScenario bool
	for _, line := range st.Progress {
		if strings.Contains(line, "cache:") || strings.Contains(line, "scenario:") || strings.Contains(line, "timing:") {
			sawScenario = true
		}
	}
	if !sawScenario {
		t.Errorf("progress lines look wrong: %v", st.Progress)
	}
}
