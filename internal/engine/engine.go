// Package engine owns the execution lifecycle every racesim entry point
// used to re-implement: resolve options (parallelism, cache path, pprof
// profiles, seed), open and persist the shared simulation cache, build the
// experiment/scenario machinery, execute one typed Job — a single-config
// run, the validation pipeline, an experiment/scenario sweep, or a
// micro-benchmark suite inspection — and return a structured Result with
// the rendered artifact.
//
// The `racesim` subcommands are each a flag parser in front of one
// Execute call, and the long-lived HTTP server (server.go) submits the
// same Job type from a worker pool over one warm cache, so batch and
// service execution share every byte of lifecycle code. Jobs stream their
// stdout/stderr exactly as the historical standalone binaries did —
// rendered artifacts on stdout, timing and cache statistics on stderr —
// which is what keeps sharded sweep outputs byte-identical across the
// refactor; Execute additionally captures both streams into the Result
// for callers (the server) that need them after the fact.
package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"racesim/internal/prof"
	"racesim/internal/simcache"
	"racesim/internal/telemetry"
	"racesim/internal/tracememo"
)

// Job kinds. Each selects exactly one of the Job's spec fields.
const (
	KindRun         = "run"         // simulate workloads on one configuration
	KindValidate    = "validate"    // the full Fig. 1 validation pipeline
	KindExperiments = "experiments" // paper tables/figures + scenario sweeps
	KindUbench      = "ubench"      // Table I suite inspection/comparison
)

// Job is one typed unit of work the engine can execute. Kind selects the
// spec; the matching pointer field carries the job's own knobs (the
// lifecycle knobs — parallelism, cache, profiles — live in Options, so a
// server can impose them fleet-wide). The zero value of every spec field
// selects the same default the corresponding subcommand flag documents.
type Job struct {
	Kind        string          `json:"kind"`
	Run         *RunJob         `json:"run,omitempty"`
	Validate    *ValidateJob    `json:"validate,omitempty"`
	Experiments *ExperimentsJob `json:"experiments,omitempty"`
	Ubench      *UbenchJob      `json:"ubench,omitempty"`
	// Timeout bounds the job's execution as a Go duration string ("90s").
	// The serve worker pool enforces it (alongside any server-wide
	// ServerOptions.JobTimeout; the smaller wins); a job past its deadline
	// is cancelled and fails with context.DeadlineExceeded. Empty means no
	// per-job bound.
	Timeout string `json:"timeout,omitempty"`
}

// RunJob simulates one or more traces on one configuration — the classic
// `racesim run` (née cmd/racesim) invocation.
type RunJob struct {
	// Preset names a built-in config ("public-a53", "public-a72");
	// ConfigPath loads a JSON config file instead, and ConfigJSON inlines
	// one (for HTTP clients with no shared filesystem). At most one of
	// ConfigPath/ConfigJSON; empty Preset defaults to public-a53.
	Preset     string          `json:"preset,omitempty"`
	ConfigPath string          `json:"config_path,omitempty"`
	ConfigJSON json.RawMessage `json:"config_json,omitempty"`
	// Ubench/Workload name traces to run: a single name, a comma-separated
	// list, or "all". TracePath replays a recorded RIFT file.
	Ubench    string  `json:"ubench,omitempty"`
	Workload  string  `json:"workload,omitempty"`
	TracePath string  `json:"trace_path,omitempty"`
	Events    int     `json:"events,omitempty"` // workload trace length (default 100000)
	Scale     float64 `json:"scale,omitempty"`  // micro-benchmark scale factor (default 0.01)
	Seed      int64   `json:"seed,omitempty"`   // workload generator seed
}

// ValidateJob runs the paper's full hardware-validation methodology for
// one core and reports the tuned configuration.
type ValidateJob struct {
	Core    string  `json:"core,omitempty"`    // "a53" (default) or "a72"
	Budget1 int     `json:"budget1,omitempty"` // irace budget, round 1 (default 3000)
	Budget2 int     `json:"budget2,omitempty"` // irace budget, round 2 (default 4000)
	Scale   float64 `json:"scale,omitempty"`   // micro-benchmark scale factor (default 0.01)
	Seed    int64   `json:"seed,omitempty"`
	// OutPath writes the tuned config JSON to a file; the Result carries
	// the same bytes in TunedConfig either way.
	OutPath string `json:"out_path,omitempty"`
	Quiet   bool   `json:"quiet,omitempty"` // suppress progress output
	// Report computes the typed statistical ValidationReport for the
	// final stage (correlation, RMSE, MAPE, confidence interval, p-value
	// and budget pass/fail per suite/category, plus plausibility
	// violations), appends its rendered text to the artifact and carries
	// the JSON in Result.Report (served at GET /v1/jobs/{id}/report).
	Report bool `json:"report,omitempty"`
	// BudgetPath loads accuracy tolerances from a budget file
	// (batch-only); BudgetJSON inlines the same JSON for HTTP clients.
	// At most one; empty means no tolerances (the report still carries
	// every metric and passes).
	BudgetPath string          `json:"budget_path,omitempty"`
	BudgetJSON json.RawMessage `json:"budget_json,omitempty"`
	// ReportDir persists the report JSON to <dir>/validate-<core>.json
	// (batch-only) — the diffable accuracy history across PRs.
	ReportDir string `json:"report_dir,omitempty"`
	// Gate makes a budget violation fail the job after all artifacts are
	// written — the CI accuracy gate. Implies Report.
	Gate bool `json:"gate,omitempty"`
}

// ExperimentsJob regenerates paper tables/figures and runs scenario
// sweeps through the scenario registry.
type ExperimentsJob struct {
	// Run and Scenario are the same selector (comma-separated names or
	// globs; "all" = the paper set); Run is the classic single-pattern
	// spelling. Setting both is an error; both empty selects "all".
	Run      string `json:"run,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	// ListScenarios renders the registry listing instead of running.
	ListScenarios bool `json:"list_scenarios,omitempty"`
	// Shard runs partition "i/n" of the expanded unit list.
	Shard string `json:"shard,omitempty"`
	// Units restricts the run to the named units of the expanded
	// selection (comma-separated unit IDs, e.g.
	// "fig4,budget-sweep-a53/budget=600"), preserving expansion order.
	// This is how the distributed sweep coordinator addresses one unit
	// per worker job. Incompatible with Shard.
	Units string `json:"units,omitempty"`
	// Resume checkpoints the simulation cache after every unit (implies a
	// default cache path when Options.CachePath is empty).
	Resume bool `json:"resume,omitempty"`
	// CheckpointEvery is the background checkpoint period under Resume, as
	// a Go duration string (default "10s").
	CheckpointEvery string `json:"checkpoint_every,omitempty"`
	// Manifest overlays scenarios from a JSON manifest on the registry;
	// SaveManifest writes the effective registry to a manifest and stops.
	Manifest     string  `json:"manifest,omitempty"`
	SaveManifest string  `json:"save_manifest,omitempty"`
	Scale        float64 `json:"scale,omitempty"`   // default 0.01
	Events       int     `json:"events,omitempty"`  // default 60000
	Budget1      int     `json:"budget1,omitempty"` // default 2500
	Budget2      int     `json:"budget2,omitempty"` // default 3500
	Seed         int64   `json:"seed,omitempty"`
	// OutPath additionally writes the rendered artifact to a file.
	OutPath string `json:"out_path,omitempty"`
	Quiet   bool   `json:"quiet,omitempty"`
}

// UbenchJob inspects the Table I micro-benchmark suite.
type UbenchJob struct {
	List bool `json:"list,omitempty"`
	// Dump records a benchmark's trace to DumpOut (default "bench.rift").
	Dump    string `json:"dump,omitempty"`
	DumpOut string `json:"dump_out,omitempty"`
	// Compare races a benchmark (or "all") between board and model.
	Compare string `json:"compare,omitempty"`
	// Disasm prints a benchmark's assembly listing.
	Disasm     string  `json:"disasm,omitempty"`
	Core       string  `json:"core,omitempty"`  // "a53" (default) or "a72"
	Scale      float64 `json:"scale,omitempty"` // default 0.01
	InitArrays bool    `json:"init_arrays,omitempty"`
}

// Options are the lifecycle knobs shared by every job kind — exactly the
// flags the four standalone binaries each used to re-implement.
type Options struct {
	// Parallelism bounds concurrent simulations (<=0: GOMAXPROCS). Output
	// is byte-identical for any value.
	Parallelism int
	// Lanes, when > 1, lane-batches simulations sharing a trace through
	// shared column walks (run/experiments/validate jobs; see
	// sim.RunBatch). Output is byte-identical for any value.
	Lanes int
	// CachePath names a JSON snapshot persisting the simulation cache
	// across runs: loaded before the job, saved after. Ignored when Cache
	// is set (the cache owner handles persistence).
	CachePath string
	// Cache, when non-nil, is a pre-opened cache shared across jobs (the
	// serve worker pool's warm cache). The engine then neither loads nor
	// saves snapshots per job.
	Cache *simcache.Cache
	// TraceMemo, when non-nil, memoizes generated traces (and their
	// decode-once forms) across jobs keyed by generation parameters —
	// the serve worker pool shares one so repeated job shapes skip
	// emulation and decode. Nil memoizes nothing.
	TraceMemo *tracememo.Memo
	// CPUProfile/MemProfile write pprof profiles around the job.
	CPUProfile, MemProfile string
	// Stdout/Stderr receive the job's streamed output; nil discards the
	// stream (unless Capture retains it).
	Stdout, Stderr io.Writer
	// Capture additionally retains both streams in the Result
	// (Artifact/Log) — what the server stores per job. Batch callers that
	// stream to the terminal and discard the Result leave it off, so a
	// long sweep's artifact is not duplicated in memory.
	Capture bool
	// FaultHook, when non-nil, runs at the start of every job inside the
	// panic-recovery scope. It exists for fault injection (internal/chaos
	// wires Injector.JobFault here): a hook that panics exercises the
	// recovery path, one that blocks on the context exercises deadlines
	// and cancellation, and one that returns an error fails the job. The
	// engine itself attaches no semantics to it.
	FaultHook func(ctx context.Context) error
	// Trace, when valid, is the parent span context of this execution
	// (the serve worker's run span). The engine then records an engine
	// span (with a simcache child carrying the job's cache activity) into
	// Result.Spans and threads the context through ctx, so a distributed
	// sweep's flight recorder sees coordinator → worker → engine →
	// simcache as one tree. Zero disables span recording entirely —
	// tracing is strictly additive and never changes job output.
	Trace telemetry.SpanContext
}

// PanicError wraps a panic recovered from job execution. Jobs run
// arbitrary simulation code on server worker goroutines; a panic there
// must fail the one job — with its stack preserved in the job log — not
// the process. errors.As-able so callers can distinguish "the job
// panicked" from ordinary failures.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // debug.Stack() captured at the recovery point
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: job panicked: %v", e.Value)
}

// Result is what a job execution produced.
type Result struct {
	Kind string `json:"kind"`
	// Artifact is every byte the job wrote to stdout — the rendered
	// tables/figures, batch summary rows, or registry listing. It is
	// byte-identical to the historical standalone binary's stdout.
	// Populated only under Options.Capture.
	Artifact string `json:"artifact"`
	// Log is every byte the job wrote to stderr (progress, timing, cache
	// statistics — never part of the artifact). Populated only under
	// Options.Capture.
	Log string `json:"log,omitempty"`
	// TunedConfig carries the tuned configuration JSON of a validate job.
	TunedConfig json.RawMessage `json:"tuned_config,omitempty"`
	// Report carries the ValidationReport JSON of a validate job run
	// with Report/Gate set (see internal/report for the schema).
	Report json.RawMessage `json:"report,omitempty"`
	// CacheStats snapshots the simulation cache after the job. Under a
	// shared cache the counters are cumulative across jobs.
	CacheStats simcache.Stats `json:"cache_stats"`
	Elapsed    time.Duration  `json:"elapsed_ns"`
	// Spans carries the execution's finished trace spans when
	// Options.Trace was set (worker job/queue/run spans plus the engine
	// and simcache spans recorded here). They travel back to the sweep
	// coordinator inside the job result and land in the flight recorder.
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// env threads the resolved lifecycle state through a job execution.
type env struct {
	ctx    context.Context
	par    int
	lanes  int
	cache  *simcache.Cache
	memo   *tracememo.Memo // nil: no trace memoization
	shared bool            // cache owned by the caller: skip snapshot load/save
	path   string

	out, errw      io.Writer
	outBuf, errBuf bytes.Buffer

	tunedConfig json.RawMessage
	report      json.RawMessage
}

func (e *env) printf(format string, args ...any) {
	fmt.Fprintf(e.out, format, args...)
}

func (e *env) eprintf(format string, args ...any) {
	fmt.Fprintf(e.errw, format, args...)
}

// tee resolves a job output stream: teed into buf when capturing,
// discarded when there is neither a stream writer nor a capture.
func tee(w io.Writer, buf *bytes.Buffer, capture bool) io.Writer {
	switch {
	case capture && w != nil:
		return io.MultiWriter(w, buf)
	case capture:
		return buf
	case w != nil:
		return w
	default:
		return io.Discard
	}
}

// Check verifies the job names exactly the spec its kind requires: any
// populated spec field must be the one matching Kind, so a mislabeled
// job fails loudly instead of silently running the kind's defaults.
func (j Job) Check() error {
	switch j.Kind {
	case KindRun, KindValidate, KindExperiments, KindUbench:
	case "":
		return fmt.Errorf("engine: job has no kind (want one of run, validate, experiments, ubench)")
	default:
		return fmt.Errorf("engine: unknown job kind %q (want one of run, validate, experiments, ubench)", j.Kind)
	}
	for _, spec := range []struct {
		kind string
		set  bool
	}{
		{KindRun, j.Run != nil},
		{KindValidate, j.Validate != nil},
		{KindExperiments, j.Experiments != nil},
		{KindUbench, j.Ubench != nil},
	} {
		if spec.set && spec.kind != j.Kind {
			return fmt.Errorf("engine: job kind %q carries a %q spec (want the %q spec or none)", j.Kind, spec.kind, j.Kind)
		}
	}
	if j.Timeout != "" {
		d, err := time.ParseDuration(j.Timeout)
		if err != nil {
			return fmt.Errorf("engine: job timeout: %v", err)
		}
		if d <= 0 {
			return fmt.Errorf("engine: job timeout %q is not positive", j.Timeout)
		}
	}
	return nil
}

// CheckServerSafe rejects jobs that would read or write the server
// host's filesystem. The HTTP API is unauthenticated, so path-valued
// fields are batch-only: a network client could otherwise write
// artifact/trace bytes to any server path (out_path, dump_out,
// save_manifest) or probe server files (config_path, manifest,
// trace_path). Inline equivalents exist where they matter — config_json
// inbound, the Result's artifact and tuned_config outbound. Resume
// checkpointing is likewise batch-only (server-side snapshot writes plus
// process-wide signal handling).
func (j Job) CheckServerSafe() error {
	var fields []string
	add := func(field, v string) {
		if v != "" {
			fields = append(fields, field)
		}
	}
	if j.Run != nil {
		add("run.config_path", j.Run.ConfigPath)
		add("run.trace_path", j.Run.TracePath)
	}
	if j.Validate != nil {
		add("validate.out_path", j.Validate.OutPath)
		add("validate.budget_path", j.Validate.BudgetPath)
		add("validate.report_dir", j.Validate.ReportDir)
	}
	if j.Experiments != nil {
		add("experiments.manifest", j.Experiments.Manifest)
		add("experiments.save_manifest", j.Experiments.SaveManifest)
		add("experiments.out_path", j.Experiments.OutPath)
		if j.Experiments.Resume {
			fields = append(fields, "experiments.resume")
		}
	}
	if j.Ubench != nil {
		add("ubench.dump", j.Ubench.Dump)
		add("ubench.dump_out", j.Ubench.DumpOut)
	}
	if len(fields) > 0 {
		return fmt.Errorf("engine: job touches server-side files via %s; these fields are batch-only (use inline fields like config_json, and read artifacts from the result)",
			strings.Join(fields, ", "))
	}
	return nil
}

// Execute runs one job under the resolved options and returns its result.
// On error the returned Result still carries whatever output the job
// produced before failing (it is never nil).
func Execute(job Job, opts Options) (*Result, error) {
	return ExecuteContext(context.Background(), job, opts)
}

// ExecuteContext is Execute with cancellation: when ctx is cancelled (a
// client DELETEd the job, a server-enforced deadline expired, the sweep
// was aborted), execution stops at the next unit/stage/iteration boundary
// and the job fails with ctx.Err(). Long-running simulation loops check
// the context between units — cancellation latency is bounded by one
// simulation batch, not the whole job. A panic anywhere inside job
// execution is recovered into a *PanicError instead of crashing the
// caller's goroutine; the Result still carries everything the job wrote
// before panicking.
func ExecuteContext(ctx context.Context, job Job, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Trace.Valid() {
		// Thread the trace through the execution context so deeper layers
		// (and FaultHook implementations) can read it.
		ctx = telemetry.ContextWithSpan(ctx, opts.Trace)
	}
	res := &Result{Kind: job.Kind}
	e := &env{
		ctx:    ctx,
		par:    opts.Parallelism,
		lanes:  opts.Lanes,
		cache:  opts.Cache,
		memo:   opts.TraceMemo,
		shared: opts.Cache != nil,
		path:   opts.CachePath,
	}
	if e.par <= 0 {
		e.par = runtime.GOMAXPROCS(0)
	}
	if e.cache == nil {
		e.cache = simcache.New()
	}
	e.out = tee(opts.Stdout, &e.outBuf, opts.Capture)
	e.errw = tee(opts.Stderr, &e.errBuf, opts.Capture)

	cacheBefore := e.cache.Stats()
	start := time.Now()
	err := job.Check()
	if err == nil {
		err = prof.Run(opts.CPUProfile, opts.MemProfile, func() (jobErr error) {
			defer func() {
				if r := recover(); r != nil {
					jobErr = &PanicError{Value: r, Stack: debug.Stack()}
				}
			}()
			if opts.FaultHook != nil {
				if err := opts.FaultHook(ctx); err != nil {
					return err
				}
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			switch job.Kind {
			case KindRun:
				return e.runJob(job.Run)
			case KindValidate:
				return e.validateJob(job.Validate)
			case KindExperiments:
				return e.experimentsJob(job.Experiments)
			case KindUbench:
				return e.ubenchJob(job.Ubench)
			}
			panic("unreachable: job validated")
		})
	}
	res.Artifact = e.outBuf.String()
	res.Log = e.errBuf.String()
	res.TunedConfig = e.tunedConfig
	res.Report = e.report
	res.CacheStats = e.cache.Stats()
	res.Elapsed = time.Since(start)
	if opts.Trace.Valid() {
		res.Spans = engineSpans(opts.Trace, job, start, res.Elapsed, cacheBefore, res.CacheStats, err)
	}
	return res, err
}

// engineSpans builds the engine-level span pair for one traced
// execution: an "engine" span under the caller's parent (the serve
// worker's run span) and a "simcache" child summarizing the cache
// activity observed across the job. Under a shared cache the deltas may
// include concurrent jobs' lookups — they are an activity summary, not
// an exact attribution (see docs/observability.md).
func engineSpans(parent telemetry.SpanContext, job Job, start time.Time, elapsed time.Duration, before, after simcache.Stats, err error) []telemetry.Span {
	eng := telemetry.Span{
		Trace:      parent.Trace,
		ID:         telemetry.NewID(),
		Parent:     parent.Span,
		Name:       "engine",
		Start:      start,
		DurationNS: elapsed.Nanoseconds(),
		Attrs:      map[string]string{"kind": job.Kind},
	}
	if err != nil {
		eng.Attrs["error"] = err.Error()
	}
	sc := telemetry.Span{
		Trace:      parent.Trace,
		ID:         telemetry.NewID(),
		Parent:     eng.ID,
		Name:       "simcache",
		Start:      start,
		DurationNS: elapsed.Nanoseconds(),
		Attrs: map[string]string{
			"hits":        fmt.Sprint(after.Hits - before.Hits),
			"misses":      fmt.Sprint(after.Misses - before.Misses),
			"shared":      fmt.Sprint(after.Shared - before.Shared),
			"remote_hits": fmt.Sprint(after.RemoteHits - before.RemoteHits),
			"entries":     fmt.Sprint(after.Entries),
		},
	}
	return []telemetry.Span{eng, sc}
}

// loadSnapshot opens the engine-level cache snapshot for jobs that manage
// it directly (run/validate/ubench; experiments delegates to the scenario
// engine, which owns checkpoint/resume semantics). prefix matches the
// historical binary's stderr prefix. logf receives the load notice —
// stdout for validate (as before), stderr otherwise.
func (e *env) loadSnapshot(prefix string, logf func(format string, args ...any)) error {
	if e.shared || e.path == "" {
		return nil
	}
	if err := simcache.ValidatePath(e.path); err != nil {
		return err
	}
	n, rejected, err := e.cache.LoadChecked(e.path)
	var stale *simcache.StaleFormatError
	if errors.As(err, &stale) {
		// A pre-migration snapshot starts the run cold, but never
		// silently: the operator pointed at a warm cache and should learn
		// why everything re-simulates.
		e.eprintf("%s: ignoring snapshot %s (format %d); starting cold\n", prefix, stale.Path, stale.Format)
		return nil
	}
	if err != nil {
		return err
	}
	if rejected > 0 {
		e.eprintf("%s: %s: rejected %d corrupted cache entries\n", prefix, e.path, rejected)
	}
	logf("cache: loaded %d entries from %s", n, e.path)
	return nil
}

// saveSnapshot persists the engine-level cache snapshot after a job.
func (e *env) saveSnapshot(logf func(format string, args ...any)) error {
	if e.shared || e.path == "" {
		return nil
	}
	if err := e.cache.SaveFile(e.path); err != nil {
		return err
	}
	logf("cache: saved %d entries to %s", e.cache.Stats().Entries, e.path)
	return nil
}
