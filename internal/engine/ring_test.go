package engine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestProgressRingPartialWrites is the regression test for the partial-
// write bug: a write that does not end in a newline used to be split
// into (wrong) lines immediately — "12" + "3 done\n" surfaced as "12"
// and "3 done". The ring must buffer the unterminated tail and join it
// with the next write.
func TestProgressRingPartialWrites(t *testing.T) {
	r := newProgressRing(10, nil)
	r.Write([]byte("12"))
	if lines := r.Lines(); len(lines) != 0 {
		t.Fatalf("partial write surfaced as lines: %v", lines)
	}
	r.Write([]byte("3 done\nnext "))
	if lines := r.Lines(); !reflect.DeepEqual(lines, []string{"123 done"}) {
		t.Fatalf("joined line wrong: %v", lines)
	}
	r.Write([]byte("line\n"))
	if lines := r.Lines(); !reflect.DeepEqual(lines, []string{"123 done", "next line"}) {
		t.Fatalf("second joined line wrong: %v", lines)
	}
}

func TestProgressRingFlushPromotesTail(t *testing.T) {
	r := newProgressRing(10, nil)
	r.Write([]byte("complete\nunterminated tail"))
	if lines := r.Lines(); !reflect.DeepEqual(lines, []string{"complete"}) {
		t.Fatalf("before flush: %v", lines)
	}
	r.Flush()
	if lines := r.Lines(); !reflect.DeepEqual(lines, []string{"complete", "unterminated tail"}) {
		t.Fatalf("after flush: %v", lines)
	}
	// Flush with nothing buffered is a no-op.
	r.Flush()
	if lines := r.Lines(); len(lines) != 2 {
		t.Fatalf("idempotent flush failed: %v", lines)
	}
}

func TestProgressRingKeepBoundAndSkipEmpty(t *testing.T) {
	r := newProgressRing(3, nil)
	r.Write([]byte("a\n\nb\n\r\nc\nd\ne\n"))
	// Empty lines (including a bare CRLF) are skipped; only the last 3
	// non-empty lines are retained.
	if lines := r.Lines(); !reflect.DeepEqual(lines, []string{"c", "d", "e"}) {
		t.Fatalf("ring contents: %v", lines)
	}
	if _, seq := r.LinesSeq(); seq != 5 {
		t.Fatalf("sequence = %d, want 5 lines ever", seq)
	}
}

func TestProgressRingEmitSequence(t *testing.T) {
	type emitted struct {
		line string
		seq  int64
	}
	var got []emitted
	r := newProgressRing(2, func(line string, seq int64) {
		got = append(got, emitted{line, seq})
	})
	r.Write([]byte("one\ntw"))
	r.Write([]byte("o\nthree"))
	r.Flush()
	want := []emitted{{"one", 1}, {"two", 2}, {"three", 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("emitted %v, want %v", got, want)
	}
	// The ring kept only the last 2, but sequence numbers kept counting.
	lines, seq := r.LinesSeq()
	if !reflect.DeepEqual(lines, []string{"two", "three"}) || seq != 3 {
		t.Fatalf("lines %v seq %d", lines, seq)
	}
}

func TestProgressRingConcurrentWriters(t *testing.T) {
	r := newProgressRing(64, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fmt.Fprintf(r, "w%d line %d\n", w, i)
				r.Lines()
			}
		}(w)
	}
	wg.Wait()
	if _, seq := r.LinesSeq(); seq != 8*50 {
		t.Fatalf("sequence = %d, want %d", seq, 8*50)
	}
}
