package engine

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"racesim/internal/telemetry"
)

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// hasSample reports whether the exposition contains a sample line for
// the given series prefix (name plus any label signature) with a
// nonzero value.
func hasNonzeroSample(text, prefix string) bool {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		if v := fields[len(fields)-1]; v != "0" && v != "0.000000" {
			return true
		}
	}
	return false
}

func TestMetricsEndpoint(t *testing.T) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	c := NewClient(ts.URL)
	// An experiments job (exercises the job counters) plus a run job
	// (actually simulates, so the cache counters move).
	for _, job := range []Job{
		tinyExperiments(),
		{Kind: KindRun, Run: &RunJob{Ubench: "MD", Scale: 0.002}},
	} {
		id, err := c.Submit(ctx, job)
		if err != nil {
			t.Fatal(err)
		}
		if st, err := c.Wait(ctx, id, 10*time.Millisecond); err != nil || st.Status != "done" {
			t.Fatalf("%s job: %v / %+v", job.Kind, err, st)
		}
	}

	text := scrape(t, ts)
	if err := telemetry.ValidatePrometheus(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}

	for _, want := range []string{
		`racesim_build_info{`,
		`racesim_jobs_submitted_total{kind="experiments"}`,
		`racesim_jobs_total{kind="experiments",status="done"}`,
		`racesim_job_run_seconds_bucket{kind="experiments",le="+Inf"}`,
		`racesim_job_wait_seconds_count{kind="experiments"}`,
		`racesim_cache_misses_total`,
		`racesim_cache_entries{tier="total"}`,
		`racesim_tracememo_entries`,
		`racesim_job_queue_depth`,
		`racesim_sse_streams`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing series %q", want)
		}
	}
	for _, nonzero := range []string{
		`racesim_build_info{`,
		`racesim_jobs_total{kind="experiments",status="done"}`,
		`racesim_jobs_submitted_total{kind="experiments"}`,
		`racesim_cache_misses_total`,
	} {
		if !hasNonzeroSample(text, nonzero) {
			t.Errorf("series %q is zero after a completed simulating job", nonzero)
		}
	}

	// Two scrapes must render identically when nothing changed in
	// between: deterministic ordering is part of the contract.
	if again := scrape(t, ts); again != text {
		t.Error("consecutive scrapes differ with no intervening activity")
	}
	srv.Drain(ctx)
}

func TestMetricsOnCacheServerRole(t *testing.T) {
	srv, err := NewServer(ServerOptions{CacheServer: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	text := scrape(t, ts)
	if err := telemetry.ValidatePrometheus(text); err != nil {
		t.Fatalf("cache-server exposition invalid: %v\n%s", err, text)
	}
	if !strings.Contains(text, `racesim_build_info{`) ||
		!strings.Contains(text, `racesim_cache_entries{tier="total"}`) {
		t.Errorf("cache-server scrape missing build/cache series:\n%s", text)
	}
	// No trace memo on a dedicated cache node — the series must be absent
	// rather than lying with zeros.
	if strings.Contains(text, "racesim_tracememo_") {
		t.Error("cache-server role exposes tracememo series without a memo")
	}
}

func TestHealthCarriesBuildInfo(t *testing.T) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	h, err := NewClient(ts.URL).Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Build.Version == "" || h.Build.GoVersion == "" || h.Build.Commit == "" {
		t.Errorf("healthz build info incomplete: %+v", h.Build)
	}
	srv.Drain(context.Background())
}
