package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"racesim/internal/scenario"
	"racesim/internal/simcache"
	"racesim/internal/telemetry"
	"racesim/internal/tracememo"
	"racesim/internal/version"
)

// ServerOptions configures a long-lived job server.
type ServerOptions struct {
	// Parallelism bounds concurrent simulations within one job (<=0:
	// GOMAXPROCS).
	Parallelism int
	// Lanes, when > 1, lane-batches simulations sharing a trace within
	// each job (see engine.Options.Lanes).
	Lanes int
	// Workers is the number of jobs executing concurrently (default 1 —
	// jobs already fan their simulation units across Parallelism cores).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; a full
	// queue answers 503 (default 64).
	QueueDepth int
	// CachePath, when set, warms the shared simulation cache from a
	// snapshot at startup and persists it on Drain, so a restarted server
	// answers repeated jobs from disk-warm state. A binary snapshot is
	// attached mmap-backed: startup parses only its index and records
	// materialize on first touch.
	CachePath string
	// CacheServer, when true, runs this process as a dedicated shared
	// cache node: the /v1/cache endpoints (snapshot pre-seed/delta plus
	// single-entry GET/PUT) are its whole job, and job submission is
	// refused so a sweep can never accidentally dispatch simulation work
	// to the cache tier.
	CacheServer bool
	// CacheUpstream, when set, is the base URL of a shared cache server.
	// True misses (memory and disk both cold) consult it before
	// simulating, and locally computed results are written back through a
	// bounded buffer — so overlapping sweeps on different workers warm
	// each other mid-run.
	CacheUpstream string
	// MemoryBudget, when > 0, bounds the in-memory result tier to roughly
	// this many bytes via LRU eviction (see simcache.SetMemoryBudget).
	MemoryBudget int64
	// KeepLog bounds the per-job progress ring (default 50 lines).
	KeepLog int
	// KeepJobs bounds how many finished jobs (with their full results) are
	// retained for GET /v1/jobs/{id}; beyond it the oldest finished job is
	// evicted and answers 404 (default 256). Queued and running jobs are
	// never evicted.
	KeepJobs int
	// JobTimeout is the server-enforced deadline on every job (0: none).
	// A job also carrying its own Job.Timeout runs under the smaller of
	// the two. A job past its deadline is cancelled (context threading
	// stops it within one simulation batch), fails with
	// context.DeadlineExceeded and releases its worker slot.
	JobTimeout time.Duration
	// FaultHook, when non-nil, is passed to every job execution
	// (Options.FaultHook) — the chaos injector's engine-level attach point.
	FaultHook func(ctx context.Context) error
	// SnapshotHook, when non-nil, may rewrite outbound GET
	// /v1/cache/snapshot bodies — the chaos injector's poisoned-delta
	// attach point. The checksummed snapshot format means a poisoned body
	// is rejected entry-by-entry (or wholesale) by the consumer, never
	// silently merged.
	SnapshotHook func(data []byte) ([]byte, error)
	// Log receives server lifecycle lines (startup, drain, job
	// transitions); nil discards them.
	Log func(format string, args ...any)
}

// JobStatus is the externally visible state of a submitted job.
type JobStatus struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	Status    string    `json:"status"` // queued | running | done | failed | cancelled
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	// Progress is the tail of the job's stderr stream (most recent last),
	// the live view of a running sweep.
	Progress []string `json:"progress,omitempty"`
	Error    string   `json:"error,omitempty"`
	// Result is set once Status is done or failed (a failed job still
	// carries whatever output it produced).
	Result *Result `json:"result,omitempty"`
}

// jobState is the server-side record behind a JobStatus.
type jobState struct {
	id  string
	job Job
	// ring is the job's stderr line buffer (see progressRing); it also
	// fans completed lines out to SSE subscribers. It has its own lock
	// and is written without holding mu.
	ring *progressRing
	// trace is the submitter's span context (X-Racesim-Trace), zero when
	// the job was submitted untraced.
	trace telemetry.SpanContext

	mu        sync.Mutex
	status    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       error
	result    *Result
	// cancelled is set by DELETE /v1/jobs/{id}; cancel (non-nil while the
	// job runs) aborts the execution context.
	cancelled bool
	cancel    context.CancelFunc
	// subs are the live SSE subscriber channels; subsClosed marks the
	// terminal state event as already fanned out (late subscribers get
	// the replay only).
	subs       map[chan jobEvent]struct{}
	subsClosed bool
}

func (st *jobState) snapshot(includeResult bool) JobStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := JobStatus{
		ID:        st.id,
		Kind:      st.job.Kind,
		Status:    st.status,
		Submitted: st.submitted,
		Started:   st.started,
		Finished:  st.finished,
		Progress:  st.ring.Lines(),
	}
	if st.err != nil {
		out.Error = st.err.Error()
	}
	if includeResult {
		out.Result = st.result
	}
	return out
}

// Server accepts jobs over HTTP and executes them on a bounded worker
// pool against one shared, process-lifetime simulation cache — the warm
// state a batch run rebuilds from disk every invocation.
type Server struct {
	opts   ServerOptions
	cache  *simcache.Cache
	memo   *tracememo.Memo // shared trace memo, nil under CacheServer
	remote *RemoteCache    // shared-tier resolver (CacheUpstream), or nil
	log    func(format string, args ...any)

	// metrics is the server's telemetry registry (GET /metrics); build is
	// the identity it reports there and on /healthz; sseStreams counts
	// open event streams.
	metrics    *telemetry.Registry
	build      version.Info
	sseStreams atomic.Int64

	mu       sync.Mutex
	jobs     map[string]*jobState
	order    []string
	done     []string // finished job ids, completion order (eviction queue)
	seq      int
	draining bool
	// seeded is the delta-export baseline: the cache keys present after
	// the last snapshot import (or the startup warm-up). GET
	// /v1/cache/snapshot?delta=1 exports only entries computed since, so
	// a sweep coordinator collecting worker deltas does not re-download
	// what it seeded. Replaced wholesale under mu, read-only afterwards.
	seeded map[string]bool

	queue chan *jobState
	wg    sync.WaitGroup
}

// NewServer builds a server, warms the shared cache from CachePath (if
// set) and starts the worker pool.
func NewServer(opts ServerOptions) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.KeepLog <= 0 {
		opts.KeepLog = 50
	}
	if opts.KeepJobs <= 0 {
		opts.KeepJobs = 256
	}
	log := opts.Log
	if log == nil {
		log = func(string, ...any) {}
	}
	s := &Server{
		opts:    opts,
		cache:   simcache.New(),
		log:     log,
		jobs:    map[string]*jobState{},
		queue:   make(chan *jobState, opts.QueueDepth),
		metrics: telemetry.NewRegistry(),
		build:   buildInfo,
	}
	if !opts.CacheServer {
		// One process-lifetime trace memo shared by every job: repeated
		// job shapes skip emulation and decode. The cache-server role
		// runs no jobs and needs none.
		s.memo = tracememo.New(opts.MemoryBudget/2, 0)
	}
	if opts.MemoryBudget > 0 {
		// Split the budget between the two byte-bounded tiers: results
		// (simcache) and generated traces (tracememo).
		s.cache.SetMemoryBudget(opts.MemoryBudget / 2)
		log("serve: memory budget %d MiB (results %d MiB, traces %d MiB)",
			opts.MemoryBudget>>20, (opts.MemoryBudget/2)>>20, (opts.MemoryBudget/2)>>20)
	}
	if opts.CacheUpstream != "" {
		s.remote = NewRemoteCache(opts.CacheUpstream)
		s.cache.SetRemote(s.remote)
		log("serve: shared cache tier at %s", opts.CacheUpstream)
	}
	if opts.CacheServer {
		log("serve: cache-server role: jobs refused, serving /v1/cache only")
	}
	if opts.CachePath != "" {
		if err := simcache.ValidatePath(opts.CachePath); err != nil {
			return nil, err
		}
		n, rejected, err := s.cache.LoadChecked(opts.CachePath)
		var stale *simcache.StaleFormatError
		switch {
		case errors.As(err, &stale):
			log("serve: ignoring snapshot %s (format %d); starting cold", stale.Path, stale.Format)
		case err != nil:
			return nil, err
		default:
			if rejected > 0 {
				log("serve: %s: rejected %d corrupted cache entries", opts.CachePath, rejected)
			}
			log("serve: cache: loaded %d entries from %s", n, opts.CachePath)
		}
	}
	s.resetSeedBaseline()
	s.registerMetrics()
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Cache exposes the shared warm cache (tests, drain-time stats).
func (s *Server) Cache() *simcache.Cache { return s.cache }

// QueueLen reports the number of queued-but-not-running jobs.
func (s *Server) QueueLen() int { return len(s.queue) }

func (s *Server) worker() {
	defer s.wg.Done()
	for st := range s.queue {
		st.mu.Lock()
		if st.cancelled {
			// Cancelled while still queued (the cancel handler already
			// marked it terminal); drain the slot without running anything.
			st.mu.Unlock()
			s.retire(st.id)
			s.log("serve: job %s (%s) cancelled before start", st.id, st.job.Kind)
			continue
		}
		timeout := s.effectiveTimeout(st.job)
		ctx, cancel := context.WithCancel(context.Background())
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(context.Background(), timeout)
		}
		st.cancel = cancel
		st.status = "running"
		st.started = time.Now()
		st.mu.Unlock()
		st.notifyState()
		s.log("serve: job %s (%s) running", st.id, st.job.Kind)

		// A traced job gets the worker-side span skeleton: a job span
		// parented under the submitter's context, with queue and run
		// children. The engine parents its own spans under the run span.
		opts := Options{
			Parallelism: s.opts.Parallelism,
			Lanes:       s.opts.Lanes,
			Cache:       s.cache,
			TraceMemo:   s.memo,
			Stderr:      st.ring, // live progress ring
			Capture:     true,    // the stored Result is the job's only output
			FaultHook:   s.opts.FaultHook,
		}
		var jobSpanID, queueSpanID, runSpanID string
		if st.trace.Valid() {
			jobSpanID, queueSpanID, runSpanID = telemetry.NewID(), telemetry.NewID(), telemetry.NewID()
			opts.Trace = telemetry.SpanContext{Trace: st.trace.Trace, Span: runSpanID}
		}

		// ExecuteContext recovers job panics into a *PanicError, so a
		// panicking simulation fails one job — with its stack preserved
		// below — instead of killing this worker goroutine (and, once every
		// worker died, silently wedging the whole queue).
		res, err := ExecuteContext(ctx, st.job, opts)
		cancel()

		var pe *PanicError
		if errors.As(err, &pe) {
			// The stack goes through the ring writer, so GET /v1/jobs/{id}
			// shows where the job died without the operator grepping server
			// logs.
			st.ring.Write([]byte(fmt.Sprintf("panic: %v\n%s", pe.Value, pe.Stack)))
		}
		// Promote any unterminated trailing output into the ring before the
		// terminal snapshot is taken.
		st.ring.Flush()
		st.mu.Lock()
		st.cancel = nil
		st.finished = time.Now()
		st.result = res
		st.err = err
		switch {
		case err == nil:
			st.status = "done"
		case st.cancelled && errors.Is(err, context.Canceled):
			st.status = "cancelled"
		case errors.Is(err, context.DeadlineExceeded):
			st.status = "failed"
			st.err = fmt.Errorf("job exceeded its %v deadline: %w", timeout, err)
		default:
			st.status = "failed"
		}
		kind, status := st.job.Kind, st.status
		wait := st.started.Sub(st.submitted)
		run := st.finished.Sub(st.started)
		if st.trace.Valid() {
			spans := []telemetry.Span{
				{
					Trace: st.trace.Trace, ID: jobSpanID, Parent: st.trace.Span,
					Name: "job", Start: st.submitted,
					DurationNS: st.finished.Sub(st.submitted).Nanoseconds(),
					Attrs:      map[string]string{"id": st.id, "kind": kind, "status": status},
				},
				{
					Trace: st.trace.Trace, ID: queueSpanID, Parent: jobSpanID,
					Name: "queue", Start: st.submitted,
					DurationNS: wait.Nanoseconds(),
				},
				{
					Trace: st.trace.Trace, ID: runSpanID, Parent: jobSpanID,
					Name: "run", Start: st.started,
					DurationNS: run.Nanoseconds(),
				},
			}
			res.Spans = append(spans, res.Spans...)
		}
		st.mu.Unlock()
		s.retire(st.id)
		s.jobCounters(kind, status, wait.Seconds(), run.Seconds())
		st.notifyState()
		s.log("serve: job %s (%s) %s in %v", st.id, st.job.Kind, status, res.Elapsed.Round(time.Millisecond))
	}
}

// effectiveTimeout resolves the deadline for one job: the smaller of the
// server-wide JobTimeout and the job's own Timeout (0 = unbounded). The
// job's duration string was validated at submit time.
func (s *Server) effectiveTimeout(job Job) time.Duration {
	timeout := s.opts.JobTimeout
	if job.Timeout != "" {
		if d, err := time.ParseDuration(job.Timeout); err == nil && d > 0 && (timeout == 0 || d < timeout) {
			timeout = d
		}
	}
	return timeout
}

// retire records a finished job and evicts the oldest finished jobs
// beyond KeepJobs, bounding what a long-lived server retains (every
// result holds a full artifact and captured log). In-flight jobs are
// untouched: only ids pushed here are ever evicted.
func (s *Server) retire(finishedID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = append(s.done, finishedID)
	for len(s.done) > s.opts.KeepJobs {
		old := s.done[0]
		s.done = s.done[1:]
		delete(s.jobs, old)
		// Prune the listing order too, or it grows with every job ever
		// submitted over the server's lifetime. After pruning, s.order is
		// bounded by queued+running+KeepJobs, so the scan is cheap.
		for i, id := range s.order {
			if id == old {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
}

func (st *jobState) statusString() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.status
}

// Submission failures that mean "retry later", not "bad job". The HTTP
// layer maps ErrQueueFull to 429 with a Retry-After header (transient
// back-pressure the Client resubmits through) and ErrDraining to 503
// (the server is going away for good).
var (
	ErrDraining  = errors.New("engine: server is draining")
	ErrQueueFull = errors.New("engine: job queue is full")
	// ErrCacheServer is a submission to a dedicated cache node: a
	// permanent refusal (HTTP 403), not back-pressure — the caller has
	// the wrong URL, not bad timing.
	ErrCacheServer = errors.New("engine: cache-server role does not accept jobs")
)

// Submit validates and enqueues a job, returning its ID. It fails with
// ErrDraining once Drain has started, ErrQueueFull beyond QueueDepth,
// and ErrCacheServer always on a dedicated cache node.
func (s *Server) Submit(job Job) (string, error) {
	return s.SubmitTraced(job, telemetry.SpanContext{})
}

// SubmitTraced is Submit carrying the submitter's span context (the
// X-Racesim-Trace header on POST /v1/jobs). A valid context makes the
// job record worker and engine spans into its Result; the zero context
// submits untraced.
func (s *Server) SubmitTraced(job Job, sc telemetry.SpanContext) (string, error) {
	if s.opts.CacheServer {
		return "", ErrCacheServer
	}
	if err := job.Check(); err != nil {
		return "", err
	}
	if err := job.CheckServerSafe(); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return "", ErrDraining
	}
	s.seq++
	st := &jobState{
		id:        fmt.Sprintf("job-%06d", s.seq),
		job:       job,
		status:    "queued",
		submitted: time.Now(),
		trace:     sc,
	}
	st.ring = newProgressRing(s.opts.KeepLog, func(line string, seq int64) {
		st.notify(jobEvent{Kind: "progress", Data: line, Seq: seq})
	})
	select {
	case s.queue <- st:
	default:
		s.seq--
		s.mu.Unlock()
		return "", fmt.Errorf("%w (%d pending)", ErrQueueFull, cap(s.queue))
	}
	s.jobs[st.id] = st
	s.order = append(s.order, st.id)
	s.mu.Unlock()
	s.metrics.Counter("racesim_jobs_submitted_total",
		"Jobs accepted onto the queue, by kind.",
		telemetry.L("kind", job.Kind)).Inc()
	s.log("serve: job %s (%s) queued", st.id, job.Kind)
	return st.id, nil
}

// Drain stops accepting new jobs, waits for queued and running jobs to
// finish (or ctx to expire), and persists the shared cache snapshot. It
// is the SIGTERM path of `racesim serve` and safe to call once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("engine: already draining")
	}
	s.draining = true
	s.mu.Unlock()
	close(s.queue)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		// Flush the shared-tier write-back buffer once the last job
		// finished offering: entries computed just before shutdown still
		// reach the cluster.
		if s.remote != nil {
			s.remote.Close()
			if st := s.remote.Stats(); st.Dropped > 0 {
				s.log("serve: shared cache tier: dropped %d write-backs on a full buffer", st.Dropped)
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Even an aborted or timed-out drain flushes the snapshot:
		// SaveFile is atomic and the cache concurrency-safe, so saving
		// while a job is still mid-flight loses nothing already computed —
		// the batch scenario engine checkpoints on SIGINT for the same
		// reason.
		if s.opts.CachePath != "" {
			if err := s.cache.SaveFile(s.opts.CachePath); err != nil {
				s.log("serve: drain-abort checkpoint %s: %v", s.opts.CachePath, err)
			} else {
				s.log("serve: drain aborted; checkpointed %d cache entries to %s",
					s.cache.Stats().Entries, s.opts.CachePath)
			}
		}
		return ctx.Err()
	}
	if s.opts.CachePath != "" {
		if err := s.cache.SaveFile(s.opts.CachePath); err != nil {
			return fmt.Errorf("engine: drain checkpoint %s: %w", s.opts.CachePath, err)
		}
		s.log("serve: drained; saved %d cache entries to %s", s.cache.Stats().Entries, s.opts.CachePath)
	} else {
		s.log("serve: drained")
	}
	return nil
}

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs              submit a Job (JSON body), 202 + {"id": ...}
//	GET  /v1/jobs              list job statuses (no results)
//	GET  /v1/jobs/{id}         one job's status, result included when done
//	GET  /v1/jobs/{id}/events  live job events (Server-Sent Events stream)
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET  /v1/jobs/{id}/artifact  the raw rendered artifact (text/plain)
//	GET  /v1/jobs/{id}/report  a validate job's ValidationReport (JSON)
//	GET  /v1/scenarios         the scenario registry with unit counts
//	GET  /v1/cache/snapshot    the shared cache as a binary snapshot (?delta=1)
//	POST /v1/cache/snapshot    merge a snapshot (pre-seed; either format)
//	GET  /v1/cache/entry/{key} one entry as a checksummed record (404 on miss)
//	PUT  /v1/cache/entry/{key} store one checksummed record (shared-tier write-back)
//	GET  /healthz              liveness + queue/cache statistics + build info
//	GET  /metrics              Prometheus text-format metrics (every role)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", s.handleArtifact)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/cache/snapshot", s.handleSnapshotGet)
	mux.HandleFunc("POST /v1/cache/snapshot", s.handleSnapshotPut)
	mux.HandleFunc("GET /v1/cache/entry/{key}", s.handleEntryGet)
	mux.HandleFunc("PUT /v1/cache/entry/{key}", s.handleEntryPut)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var job Job
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad job: %v", err)})
		return
	}
	id, err := s.SubmitTraced(job, telemetry.ParseHeader(r.Header.Get(telemetry.TraceHeader)))
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrQueueFull):
			// A full queue is back-pressure, not an outage: tell the client
			// when to come back. Job runtimes are seconds-to-minutes, so a
			// short hint keeps well-behaved clients from hammering the
			// endpoint without stalling them long past the next free slot.
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		case errors.Is(err, ErrDraining):
			code = http.StatusServiceUnavailable
		case errors.Is(err, ErrCacheServer):
			code = http.StatusForbidden
		}
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		URL    string `json:"url"`
	}{ID: id, Status: "queued", URL: "/v1/jobs/" + id})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	states := make([]*jobState, 0, len(s.order))
	for _, id := range s.order {
		// Submission order, minus evicted (retired) finished jobs.
		if st, ok := s.jobs[id]; ok {
			states = append(states, st)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(states))
	for _, st := range states {
		out = append(out, st.snapshot(false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(r *http.Request) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.jobs[r.PathValue("id")]
	return st, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st.snapshot(true))
}

// handleCancel implements DELETE /v1/jobs/{id}. A queued job flips to
// "cancelled" immediately (the worker drains and discards it); a running
// job has its context cancelled and reports "cancelling" until the
// execution unwinds to the next cancellation boundary, at which point the
// worker records "cancelled" and the slot is free. Cancelling a finished
// job is a conflict, not an idempotent no-op: the caller learns the job
// already ran to completion.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	st.mu.Lock()
	status := st.status
	switch status {
	case "queued":
		st.cancelled = true
		st.status = "cancelled"
		st.finished = time.Now()
		st.err = context.Canceled
		status = "cancelled"
	case "running":
		st.cancelled = true
		if st.cancel != nil {
			st.cancel()
		}
		status = "cancelling"
	default: // done | failed | cancelled
		st.mu.Unlock()
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("job is already %s", status)})
		return
	}
	st.mu.Unlock()
	if status == "cancelled" {
		// Cancelled while queued: that was the terminal transition — close
		// any event streams with the final state.
		st.notifyState()
	}
	s.log("serve: job %s (%s) cancel requested (%s)", st.id, st.job.Kind, status)
	writeJSON(w, http.StatusAccepted, struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}{ID: st.id, Status: status})
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	st.mu.Lock()
	status, result := st.status, st.result
	st.mu.Unlock()
	// Only a successful job's artifact is served raw: a failed job's
	// partial output would be indistinguishable from a complete one to a
	// curl|diff client. The partial artifact stays available in the status
	// endpoint's result, next to the error that explains it.
	if status != "done" || result == nil {
		writeJSON(w, http.StatusConflict, apiError{
			Error: fmt.Sprintf("job is %s; the artifact is served for successful jobs only (see GET /v1/jobs/%s)", status, st.id),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(result.Artifact))
}

// handleReport serves a finished validate job's ValidationReport JSON —
// the typed statistical accuracy artifact (see internal/report). Like
// the artifact endpoint it answers only for successful jobs, so a
// partial report can never be mistaken for a complete one; jobs
// submitted without validate.report carry no report and answer 404.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	st.mu.Lock()
	status, result := st.status, st.result
	st.mu.Unlock()
	if status != "done" || result == nil {
		writeJSON(w, http.StatusConflict, apiError{
			Error: fmt.Sprintf("job is %s; the report is served for successful jobs only (see GET /v1/jobs/%s)", status, st.id),
		})
		return
	}
	if len(result.Report) == 0 {
		writeJSON(w, http.StatusNotFound, apiError{
			Error: "job produced no validation report (submit a validate job with report=true)",
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(result.Report)
}

// ScenarioInfo is one row of GET /v1/scenarios.
type ScenarioInfo struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`
	Units       int    `json:"units"`
	Description string `json:"description,omitempty"`
	Paper       bool   `json:"paper"` // part of the reserved "all" selection
}

// Scenarios lists the built-in scenario registry with expanded unit
// counts — what an HTTP client needs to compose an experiments job.
func Scenarios() ([]ScenarioInfo, error) {
	specs := scenario.Registry()
	units, err := scenario.Expand(specs)
	if err != nil {
		return nil, err
	}
	perScenario := map[string]int{}
	for _, u := range units {
		perScenario[u.Scenario]++
	}
	paper := map[string]bool{}
	for _, name := range scenario.PaperSet(specs) {
		paper[name] = true
	}
	out := make([]ScenarioInfo, 0, len(specs))
	for _, sp := range specs {
		out = append(out, ScenarioInfo{
			Name:        sp.Name,
			Kind:        sp.Kind,
			Units:       perScenario[sp.Name],
			Description: sp.Description,
			Paper:       paper[sp.Name],
		})
	}
	return out, nil
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	infos, err := Scenarios()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, infos)
}

// Health is the GET /healthz response — liveness plus the queue and
// shared-cache statistics a sweep coordinator samples around a round to
// report cluster-wide cache effectiveness.
type Health struct {
	Status  string          `json:"status"` // ok | draining
	Queued  int             `json:"queued"`
	Jobs    int             `json:"jobs"`
	Workers int             `json:"workers"`
	Cache   simcache.Stats  `json:"cache"`
	Traces  tracememo.Stats `json:"traces"` // trace-memo effectiveness
	Build   version.Info    `json:"build"`  // which build answered
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	total := len(s.order)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Health{
		Status: map[bool]string{false: "ok", true: "draining"}[draining],
		Queued: len(s.queue), Jobs: total, Workers: s.opts.Workers,
		Cache: s.cache.Stats(), Traces: s.memo.Stats(),
		Build: s.build,
	})
}

// retryAfterSeconds is the Retry-After hint on queue-full 429 responses.
const retryAfterSeconds = 2

// SnapshotReport is the POST /v1/cache/snapshot response.
type SnapshotReport struct {
	Added    int    `json:"added"`    // new entries merged in
	Replaced int    `json:"replaced"` // entries overwritten (last-writer-wins)
	Rejected uint64 `json:"rejected"` // entries failing their checksum
	Entries  int    `json:"entries"`  // cache size after the import
}

// resetSeedBaseline records the current key set as "seeded": subsequent
// delta exports carry only entries computed after this point.
func (s *Server) resetSeedBaseline() {
	keys := s.cache.Keys()
	base := make(map[string]bool, len(keys))
	for _, k := range keys {
		base[k] = true
	}
	s.mu.Lock()
	s.seeded = base
	s.mu.Unlock()
}

// handleSnapshotGet serves the shared cache as a binary snapshot (the
// SaveFile format). ?delta=1 restricts it to entries computed since the
// last import/startup baseline — what this worker contributed. Records
// stream straight to the response: the serialized snapshot never exists
// in server memory. (The chaos SnapshotHook needs the whole body to
// mutate, so a hooked server falls back to the buffered path.)
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	var skip func(string) bool
	if q := r.URL.Query().Get("delta"); q != "" {
		delta, err := strconv.ParseBool(q)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("delta=%q: want a boolean", q)})
			return
		}
		if delta {
			s.mu.Lock()
			base := s.seeded // replaced wholesale, never mutated: safe to read
			s.mu.Unlock()
			skip = func(key string) bool { return base[key] }
		}
	}
	if s.opts.SnapshotHook != nil {
		data, err := s.cache.MarshalFiltered(skip)
		if err == nil {
			data, err = s.opts.SnapshotHook(data)
		}
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := s.cache.WriteBinaryTo(w, skip); err != nil {
		// Headers are gone; all we can do is log and cut the stream so
		// the client sees a truncated (salvageable, checksummed) body
		// rather than a silently short one.
		s.log("serve: cache: snapshot export failed mid-stream: %v", err)
	}
}

// handleSnapshotPut merges a posted snapshot into the shared cache
// (checksum-verified, last-writer-wins) and resets the delta baseline —
// the coordinator's pre-seed path that makes a fresh worker warm.
// Binary bodies merge record by record off the socket; the snapshot is
// never buffered whole.
func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	before := s.cache.Stats().Rejected
	added, replaced, err := s.cache.LoadStream(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	s.resetSeedBaseline()
	st := s.cache.Stats()
	s.log("serve: cache: imported snapshot (%d added, %d replaced, %d rejected)",
		added, replaced, st.Rejected-before)
	writeJSON(w, http.StatusOK, SnapshotReport{
		Added:    added,
		Replaced: replaced,
		Rejected: st.Rejected - before,
		Entries:  st.Entries,
	})
}

// handleEntryGet serves one cache entry as a self-contained checksummed
// record — the shared tier's single-record read path, what a worker's
// RemoteCache.Lookup hits on a true miss. Misses are 404; lookups here
// do not move the server's own hit/miss counters (Peek), so /healthz
// reflects the server's own workload, not its popularity as a tier.
func (s *Server) handleEntryGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	res, ok := s.cache.Peek(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such entry"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(simcache.EncodeEntry(key, res))
}

// handleEntryPut stores one checksum-verified record under its key —
// the write-back path of the shared tier. The body's embedded key must
// match the path key: a record is bound to its key by checksum, and
// storing it elsewhere would be exactly the corruption the checksum
// exists to stop.
func (s *Server) handleEntryPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEntryBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("entry body: %v", err)})
		return
	}
	bodyKey, res, err := simcache.DecodeEntry(data)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	if err := checkEntryKey(key, bodyKey); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	s.cache.Store(bodyKey, res)
	w.WriteHeader(http.StatusNoContent)
}

// maxSnapshotBytes bounds a posted cache snapshot (the job body bound is
// 1 MiB; snapshots are legitimately much larger).
const maxSnapshotBytes = 256 << 20
