package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"racesim/internal/simcache"
	"racesim/internal/telemetry"
)

func TestClientSubmitHonorsRetryAfter(t *testing.T) {
	// A worker that answers 429 + Retry-After twice before accepting: the
	// client must wait the hinted delay and resubmit, not fail.
	var posts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: "engine: job queue is full"})
			return
		}
		writeJSON(w, http.StatusAccepted, struct {
			ID string `json:"id"`
		}{ID: "job-000007"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Backoff = time.Millisecond
	id, err := c.Submit(context.Background(), Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}})
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-000007" {
		t.Errorf("id = %q", id)
	}
	if got := posts.Load(); got != 3 {
		t.Errorf("client posted %d times, want 3 (2 back-pressured + 1 accepted)", got)
	}

	// With retries exhausted, the back-pressure error surfaces.
	posts.Store(-100)
	c.Retries = 1
	if _, err := c.Submit(context.Background(), Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}}); err == nil {
		t.Error("endless 429 did not surface an error")
	}
}

func TestServerQueueFullAnswers429WithRetryAfter(t *testing.T) {
	// A server with no worker goroutines: the depth-1 queue fills on the
	// first submission and never drains, so the full-queue answer is
	// deterministic.
	srv := &Server{
		opts:    ServerOptions{QueueDepth: 1, KeepLog: 5, KeepJobs: 16},
		cache:   simcache.New(),
		log:     func(string, ...any) {},
		jobs:    map[string]*jobState{},
		queue:   make(chan *jobState, 1),
		metrics: telemetry.NewRegistry(),
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, code := postJob(t, ts, Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}}); code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	body, _ := json.Marshal(Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without a Retry-After header")
	}
}

func TestServerSnapshotFederation(t *testing.T) {
	// Worker A computes a result, exports its delta; worker B imports it
	// and answers the same job without a single miss — the cache
	// federation path the sweep coordinator drives between rounds.
	a, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	ca := NewClient(tsA.URL)
	ctx := context.Background()

	runJob := Job{Kind: KindRun, Run: &RunJob{Ubench: "MD", Scale: 0.002}}
	id, err := ca.Submit(ctx, runJob)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := ca.Wait(ctx, id, 10*time.Millisecond); err != nil || st.Status != "done" {
		t.Fatalf("run job: %v / %+v", err, st)
	}

	// With no startup warm-up the baseline is empty: the delta is the
	// full contribution.
	delta, err := ca.ExportSnapshot(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	check := simcache.New()
	added, _, err := check.LoadBytes(delta)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("delta snapshot is empty after a simulating job")
	}

	b, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	cb := NewClient(tsB.URL)

	rep, err := cb.ImportSnapshot(ctx, delta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != added || rep.Rejected != 0 {
		t.Errorf("import report %+v, want %d added, 0 rejected", rep, added)
	}
	// The import resets B's delta baseline: B has contributed nothing yet.
	bDelta, err := cb.ExportSnapshot(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	empty := simcache.New()
	if n, _, err := empty.LoadBytes(bDelta); err != nil || n != 0 {
		t.Errorf("pre-seeded worker's delta has %d entries (err %v), want 0", n, err)
	}

	before, err := cb.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	id, err = cb.Submit(ctx, runJob)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := cb.Wait(ctx, id, 10*time.Millisecond); err != nil || st.Status != "done" {
		t.Fatalf("warm run job: %v / %+v", err, st)
	}
	after, err := cb.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if miss := after.Cache.Misses - before.Cache.Misses; miss != 0 {
		t.Errorf("pre-seeded worker simulated %d units, want 0", miss)
	}
	if hits := after.Cache.Hits - before.Cache.Hits; hits == 0 {
		t.Error("pre-seeded worker reported no hits")
	}

	a.Drain(ctx)
	b.Drain(ctx)
}

func TestClientHealthDistinguishesUnreachableFromDraining(t *testing.T) {
	ctx := context.Background()
	// Nothing listening: a transport-level failure wrapped in
	// ErrUnreachable.
	gone := NewClient("http://127.0.0.1:1")
	gone.Timeout = 500 * time.Millisecond
	if _, err := gone.Health(ctx); !errors.Is(err, ErrUnreachable) {
		t.Errorf("dead endpoint Health error = %v, want ErrUnreachable", err)
	}

	// A draining server answers Health normally with Status "draining" —
	// reachable, just going away; no error, not ErrUnreachable.
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	h, err := NewClient(ts.URL).Health(ctx)
	if err != nil {
		t.Fatalf("draining server Health: %v", err)
	}
	if h.Status != "draining" {
		t.Errorf("draining server reports %q", h.Status)
	}
}

func TestClientCancelRoundTrip(t *testing.T) {
	// Queue a job behind a stalled one, cancel it through the typed
	// client, and observe Wait return the cancelled terminal state.
	release := make(chan struct{})
	var calls atomic.Int32
	srv, err := NewServer(ServerOptions{
		FaultHook: func(ctx context.Context) error {
			if calls.Add(1) == 1 {
				select {
				case <-release:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	c := NewClient(ts.URL)

	blocker, err := c.Submit(ctx, Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(ctx, Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}})
	if err != nil {
		t.Fatal(err)
	}
	status, err := c.Cancel(ctx, queued)
	if err != nil {
		t.Fatal(err)
	}
	if status != "cancelled" {
		t.Errorf("cancel of queued job reported %q, want cancelled", status)
	}
	if st, err := c.Wait(ctx, queued, 10*time.Millisecond); err != nil || st.Status != "cancelled" {
		t.Errorf("Wait on cancelled job: %v / %q", err, st.Status)
	}
	// Cancelling an unknown job is an error carrying the server's message.
	if _, err := c.Cancel(ctx, "job-999999"); err == nil {
		t.Error("cancel of unknown job succeeded")
	}
	close(release)
	if st, err := c.Wait(ctx, blocker, 10*time.Millisecond); err != nil || st.Status != "done" {
		t.Errorf("blocker after release: %v / %q", err, st.Status)
	}
	srv.Drain(ctx)
}
