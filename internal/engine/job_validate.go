package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"racesim/internal/hw"
	"racesim/internal/report"
	"racesim/internal/sim"
	"racesim/internal/ubench"
	"racesim/internal/validate"
)

func (e *env) validateJob(j *ValidateJob) error {
	if j == nil {
		j = &ValidateJob{}
	}
	budget1 := j.Budget1
	if budget1 == 0 {
		budget1 = 3000
	}
	budget2 := j.Budget2
	if budget2 == 0 {
		budget2 = 4000
	}
	scale := j.Scale
	if scale == 0 {
		scale = 0.01
	}

	plat, err := hw.Firefly()
	if err != nil {
		return err
	}
	board := plat.A53
	public := sim.PublicA53()
	coreName := "a53"
	switch j.Core {
	case "", "a53":
	case "a72":
		board = plat.A72
		public = sim.PublicA72()
		coreName = "a72"
	default:
		return fmt.Errorf("unknown core %q", j.Core)
	}
	// Resolve the accuracy budget up front so a bad budget file fails
	// before hours of tuning, not after.
	budget, err := resolveBudget(j)
	if err != nil {
		return err
	}

	// Progress goes to stdout, as the standalone validate binary always
	// printed it (the tuned-config table is the artifact either way).
	logf := func(format string, args ...any) {
		if !j.Quiet {
			e.printf(format+"\n", args...)
		}
	}
	if err := e.loadSnapshot("validate", logf); err != nil {
		return err
	}
	stages, err := validate.Pipeline(board, public, validate.PipelineOptions{
		BudgetRound1: budget1,
		BudgetRound2: budget2,
		Seed:         j.Seed,
		UbenchScale:  scale,
		Cache:        e.cache,
		Parallelism:  e.par,
		Lanes:        e.lanes,
		Context:      e.ctx,
		Log:          logf,
	})
	if err != nil {
		return err
	}

	e.printf("\n%-10s %-12s %-12s\n", "stage", "mean error", "worst bench")
	for _, s := range stages {
		worst, _, err := validate.MaxError(s.Errors)
		if err != nil {
			return err
		}
		e.printf("%-10s %-12s %s (%.1f%%)\n", s.Name,
			fmt.Sprintf("%.1f%%", s.MeanError*100), worst.Name, worst.Error*100)
	}
	final := stages[len(stages)-1]
	e.printf("\nper-category error of the final model:\n")
	// Canonical suite order: the historical binary ranged over the map,
	// making this block's line order random per run.
	cats := validate.CategoryErrors(final.Errors)
	for _, cat := range ubench.Categories {
		if ce, ok := cats[cat]; ok {
			e.printf("  %-14s %.1f%%\n", cat, ce*100)
		}
	}

	// The statistical accuracy report of the final model, judged against
	// the resolved budget. Rendered text joins the artifact; the JSON
	// rides in the Result (and the serve report endpoint) and optionally
	// persists to the diffable report history directory.
	var rep report.ValidationReport
	wantReport := j.Report || j.Gate
	if wantReport {
		samples, plaus, err := validate.CollectSamples(final.Config, final.Ms, e.cache, e.par)
		if err != nil {
			return err
		}
		br, err := report.Build(board.Name, string(final.Config.Kind), final.Name, samples, plaus, budget)
		if err != nil {
			return err
		}
		rep = report.New(br)
		e.printf("\n%s", rep.Render())
		data, err := rep.MarshalIndent()
		if err != nil {
			return err
		}
		e.report = data
		if j.ReportDir != "" {
			if err := os.MkdirAll(j.ReportDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(j.ReportDir, "validate-"+coreName+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			e.printf("\nwrote validation report to %s\n", path)
		}
	}

	st := e.cache.Stats()
	e.eprintf("cache: %d hits, %d misses, %d shared in-flight (%.1f%% hit rate), %d entries\n",
		st.Hits, st.Misses, st.Shared, st.HitRate()*100, st.Entries)
	if err := e.saveSnapshot(logf); err != nil {
		return err
	}

	// The tuned configuration always rides along in the Result (the HTTP
	// path has no shared filesystem); OutPath additionally writes the same
	// indented JSON to a file, as the standalone binary did.
	data, err := json.MarshalIndent(final.Config, "", "  ")
	if err != nil {
		return err
	}
	e.tunedConfig = append(data, '\n')
	if j.OutPath != "" {
		if err := final.Config.MarshalJSONFile(j.OutPath); err != nil {
			return err
		}
		e.printf("\nwrote tuned configuration to %s\n", j.OutPath)
	}
	// The gate fires last: every artifact (tuned config, report history,
	// cache snapshot) is already on disk when a violation fails the job,
	// so CI logs show exactly what missed the budget.
	if j.Gate {
		if err := rep.Err(); err != nil {
			return err
		}
	}
	return nil
}

// resolveBudget picks the job's accuracy budget: inline JSON wins, then
// a budget file, then the empty (unconstrained) budget.
func resolveBudget(j *ValidateJob) (report.Budget, error) {
	switch {
	case len(j.BudgetJSON) > 0 && j.BudgetPath != "":
		return report.Budget{}, fmt.Errorf("validate job sets both budget_json and budget_path")
	case len(j.BudgetJSON) > 0:
		return report.ParseBudget(j.BudgetJSON)
	case j.BudgetPath != "":
		return report.LoadBudget(j.BudgetPath)
	}
	return report.Budget{}, nil
}
