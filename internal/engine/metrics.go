package engine

import (
	"net/http"

	"racesim/internal/telemetry"
	"racesim/internal/version"
)

// Metrics exposes the server's telemetry registry so callers (the serve
// command, tests, the chaos injector wiring) can register additional
// collectors next to the built-in ones. The registry is served at GET
// /metrics on every role, including -cache-server.
func (s *Server) Metrics() *telemetry.Registry { return s.metrics }

// registerMetrics installs the server's built-in instruments. Hot-path
// state (cache, trace memo, queue) is exported through collectors that
// read the existing Stats() snapshots at scrape time — observation
// never adds work to the simulation path, which is what keeps job
// output byte-identical to an uninstrumented run. Per-job counters and
// latency histograms are created lazily by the worker loop (get-or-
// create by kind/status).
func (s *Server) registerMetrics() {
	r := s.metrics
	info := s.build
	r.GaugeFunc("racesim_build_info",
		"Build identity as constant labels; the value is always 1.",
		func() float64 { return 1 },
		telemetry.L("version", info.Version),
		telemetry.L("goversion", info.GoVersion),
		telemetry.L("commit", info.Commit))
	r.GaugeFunc("racesim_job_queue_depth",
		"Jobs queued but not yet running.",
		func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("racesim_workers",
		"Size of the job worker pool.",
		func() float64 { return float64(s.opts.Workers) })
	r.GaugeFunc("racesim_sse_streams",
		"Open /v1/jobs/{id}/events streams.",
		func() float64 { return float64(s.sseStreams.Load()) })

	cache := func(name, help string, read func() float64) {
		r.CounterFunc("racesim_cache_"+name, help, read)
	}
	cache("hits_total", "Cache lookups answered from memory or the disk tier.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	cache("misses_total", "Cache lookups that simulated.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	cache("shared_total", "Cache lookups that waited on an identical in-flight run.",
		func() float64 { return float64(s.cache.Stats().Shared) })
	cache("remote_hits_total", "Cache lookups answered by the shared remote tier.",
		func() float64 { return float64(s.cache.Stats().RemoteHits) })
	cache("rejected_total", "Persisted cache entries dropped by checksum mismatch.",
		func() float64 { return float64(s.cache.Stats().Rejected) })
	cache("evicted_total", "Cache entries dropped by the memory budget.",
		func() float64 { return float64(s.cache.Stats().Evicted) })
	r.GaugeFunc("racesim_cache_entries",
		"Distinct servable cache results, by tier.",
		func() float64 { return float64(s.cache.Stats().Entries) },
		telemetry.L("tier", "total"))
	r.GaugeFunc("racesim_cache_entries",
		"Distinct servable cache results, by tier.",
		func() float64 { return float64(s.cache.Stats().MemEntries) },
		telemetry.L("tier", "memory"))
	r.GaugeFunc("racesim_cache_entries",
		"Distinct servable cache results, by tier.",
		func() float64 { return float64(s.cache.Stats().DiskEntries) },
		telemetry.L("tier", "disk"))

	if s.memo != nil {
		r.CounterFunc("racesim_tracememo_hits_total",
			"Trace-memo lookups answered without re-emulation.",
			func() float64 { return float64(s.memo.Stats().Hits) })
		r.CounterFunc("racesim_tracememo_misses_total",
			"Trace-memo lookups that generated and decoded.",
			func() float64 { return float64(s.memo.Stats().Misses) })
		r.CounterFunc("racesim_tracememo_evicted_total",
			"Trace-memo entries dropped by the byte budget.",
			func() float64 { return float64(s.memo.Stats().Evicted) })
		r.GaugeFunc("racesim_tracememo_entries",
			"Memoized traces currently held.",
			func() float64 { return float64(s.memo.Stats().Entries) })
		r.GaugeFunc("racesim_tracememo_bytes",
			"Bytes held by the trace memo (occupancy against its budget).",
			func() float64 { return float64(s.memo.Stats().Bytes) })
	}
}

// jobCounters moves the per-job metrics after one job finished: the
// terminal counter plus the wait (queued → running) and run (running →
// terminal) latency histograms, labeled by job kind.
func (s *Server) jobCounters(kind, status string, wait, run float64) {
	s.metrics.Counter("racesim_jobs_total",
		"Jobs finished, by kind and terminal status.",
		telemetry.L("kind", kind), telemetry.L("status", status)).Inc()
	s.metrics.Histogram("racesim_job_wait_seconds",
		"Time jobs spent queued before a worker picked them up.",
		telemetry.DurationBuckets, telemetry.L("kind", kind)).Observe(wait)
	s.metrics.Histogram("racesim_job_run_seconds",
		"Time jobs spent executing.",
		telemetry.DurationBuckets, telemetry.L("kind", kind)).Observe(run)
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (version 0.0.4). Available on every role — a dedicated cache
// server exposes its cache counters here too.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// buildInfo is read once at server construction so every scrape and
// health response reports the same identity.
var buildInfo = version.Get()
