package engine

import (
	"testing"

	"racesim/internal/simcache"
	"racesim/internal/tracememo"
)

// BenchmarkEngineJobsWarmCache measures end-to-end engine job throughput
// (jobs/sec) in the serve steady state: a small micro-benchmark suite
// executed repeatedly against one shared warm cache and one shared trace
// memo — exactly what the serve worker pool holds — so every simulation
// is answered from memory, repeat traces skip emulation and decode, and
// the measured cost is the engine lifecycle itself — job normalization,
// runner dispatch, cache lookups and artifact rendering. Recorded in
// BENCH_engine.json.
func BenchmarkEngineJobsWarmCache(b *testing.B) {
	cache := simcache.New()
	memo := tracememo.New(0, 0)
	opts := Options{Cache: cache, TraceMemo: memo, Capture: true}
	job := Job{Kind: KindRun, Run: &RunJob{Ubench: "MD,CS1,MIP", Scale: 0.002}}
	res, err := Execute(job, opts)
	if err != nil {
		b.Fatal(err)
	}
	want := res.Artifact
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Execute(job, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Artifact != want {
			b.Fatal("artifact drifted across warm executions")
		}
	}
	b.StopTimer()
	if st := cache.Stats(); st.Misses != 3 {
		b.Fatalf("warm loop was not pure cache hits: %+v", st)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkEngineExperimentsWarmCache times a warm single-scenario sweep
// job (table2 — workload synthesis plus rendering, no tuner), the shape a
// serve worker executes between cache refreshes.
func BenchmarkEngineExperimentsWarmCache(b *testing.B) {
	cache := simcache.New()
	job := Job{Kind: KindExperiments, Experiments: &ExperimentsJob{
		Scenario: "table2", Scale: 0.002, Events: 4000, Quiet: true,
	}}
	if _, err := Execute(job, Options{Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(job, Options{Cache: cache}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}
