package engine

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"racesim/internal/telemetry"
)

// Client is a typed client for the serve HTTP API (see Server.Handler).
// It is what the distributed sweep coordinator (internal/cluster) speaks
// to every worker, and the reference implementation of the API's
// client-side contract: back-pressure (429 + Retry-After) is honored by
// waiting and resubmitting, transient poll failures are retried a
// bounded number of times, and every error carries the server's own
// error message when one was sent.
type Client struct {
	// BaseURL is the worker's root URL, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client (overrides Timeout and Transport).
	HTTP *http.Client
	// Timeout bounds each individual HTTP request when HTTP is nil
	// (default 60s; negative disables). A wedged worker then surfaces as
	// a request error the retry budget absorbs — or, once exhausted,
	// fails the unit — instead of hanging the caller forever. Polling
	// loops (Wait) still run as long as their context allows; the bound
	// is per request, never per job.
	Timeout time.Duration
	// Transport is the RoundTripper of the built-in client when HTTP is
	// nil (default http.DefaultTransport). The chaos injector's
	// Transport wrapper attaches here.
	Transport http.RoundTripper
	// Retries bounds back-pressure resubmissions in Submit and tolerated
	// consecutive poll failures in Wait (default 4).
	Retries int
	// Backoff is the base delay between retries, doubled per attempt,
	// when the server did not send a Retry-After hint (default 500ms).
	Backoff time.Duration
	// Log receives retry/back-pressure notices; nil discards them.
	Log func(format string, args ...any)

	buildOnce sync.Once
	built     *http.Client

	streamOnce sync.Once
	stream     *http.Client
}

// ErrUnreachable wraps transport-level failures of Health: the worker
// did not answer at all (connection refused, timeout, DNS), as opposed
// to answering that it is draining (a reachable server reports
// Status "draining" in the Health body with no error). Callers deciding
// between "worker is gone" and "worker is shutting down cleanly" match
// with errors.Is.
var ErrUnreachable = errors.New("engine: worker unreachable")

// NewClient returns a client for a worker base URL with default retry
// policy.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	c.buildOnce.Do(func() {
		timeout := c.Timeout
		if timeout == 0 {
			timeout = 60 * time.Second
		} else if timeout < 0 {
			timeout = 0
		}
		c.built = &http.Client{Timeout: timeout, Transport: c.Transport}
	})
	return c.built
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 4
}

func (c *Client) backoff(attempt int) time.Duration {
	base := c.Backoff
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	return base << attempt
}

func (c *Client) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// apiErrorOf extracts the server's error message from a non-2xx
// response, falling back to the status line.
func apiErrorOf(resp *http.Response, body []byte) error {
	var ae apiError
	if err := json.Unmarshal(body, &ae); err == nil && ae.Error != "" {
		return fmt.Errorf("%s: %s", resp.Request.URL.Path, ae.Error)
	}
	return fmt.Errorf("%s: %s", resp.Request.URL.Path, resp.Status)
}

// Submit posts a job and returns its server-assigned ID. A 429 answer
// (queue full) is back-pressure, not failure: Submit waits the server's
// Retry-After hint (or an exponential backoff when absent) and resubmits,
// up to Retries times.
func (c *Client) Submit(ctx context.Context, job Job) (string, error) {
	body, err := json.Marshal(job)
	if err != nil {
		return "", err
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		if sc := telemetry.SpanFromContext(ctx); sc.Valid() {
			// Propagate the caller's span so the worker parents its job
			// span under it — the coordinator → worker trace hop.
			req.Header.Set(telemetry.TraceHeader, sc.Header())
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return "", err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()

		if resp.StatusCode == http.StatusTooManyRequests && attempt < c.retries() {
			delay := c.backoff(attempt)
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
					delay = time.Duration(secs) * time.Second
				}
			}
			c.logf("client: %s: queue full, retrying in %v", c.BaseURL, delay)
			select {
			case <-time.After(delay):
				continue
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}
		if resp.StatusCode != http.StatusAccepted {
			return "", apiErrorOf(resp, data)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(data, &out); err != nil || out.ID == "" {
			return "", fmt.Errorf("submit: malformed response %q", data)
		}
		return out.ID, nil
	}
}

// getJSON fetches path and decodes the JSON body into v.
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErrorOf(resp, data)
	}
	return json.Unmarshal(data, v)
}

// Status fetches one job's status (result included once finished).
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, err
}

// Health fetches the worker's liveness and cache statistics. A
// transport-level failure (nothing answered) is wrapped in
// ErrUnreachable; a draining server answers normally with Status
// "draining" — the two are different conditions and callers (the
// cluster circuit breaker, probe re-admission) treat them differently.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return h, fmt.Errorf("%w: %s: %v", ErrUnreachable, c.BaseURL, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, apiErrorOf(resp, data)
	}
	return h, json.Unmarshal(data, &h)
}

// Cancel asks the worker to cancel a queued or running job (DELETE
// /v1/jobs/{id}). It returns the server's immediate view: "cancelled"
// for a job that never started, "cancelling" for one being unwound.
func (c *Client) Cancel(ctx context.Context, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", apiErrorOf(resp, data)
	}
	var out struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return "", fmt.Errorf("cancel %s: malformed response %q", id, data)
	}
	return out.Status, nil
}

// Wait polls a job until it reaches a terminal state (done, failed or
// cancelled), tolerating up to Retries consecutive poll failures (a
// worker restarting its network stack should not fail the unit; a
// worker that is gone should).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 150 * time.Millisecond
	}
	var failures int
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				return JobStatus{}, ctx.Err()
			}
			failures++
			if failures > c.retries() {
				return JobStatus{}, fmt.Errorf("job %s: %d consecutive poll failures: %w", id, failures, err)
			}
		} else {
			failures = 0
			switch st.Status {
			case "done", "failed", "cancelled":
				return st, nil
			}
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		}
	}
}

// streamHTTP is the client used for long-lived event streams: it shares
// the transport (so the chaos injector still intercepts) but carries no
// overall request timeout — an SSE stream legitimately outlives any
// per-request bound, and cancellation comes from the caller's context.
func (c *Client) streamHTTP() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	c.streamOnce.Do(func() {
		c.stream = &http.Client{Transport: c.Transport}
	})
	return c.stream
}

// Watch follows a job to its terminal state over the live event stream
// (GET /v1/jobs/{id}/events) and returns the final status — the same
// value Wait's last poll returns, since the stream's terminal event
// carries the polled body byte-for-byte. Any stream failure (transport
// error, truncation, a server without the endpoint) falls back to
// polling via Wait: streaming is an optimization, never a new failure
// mode — which is also what keeps distributed sweeps robust under
// chaos-injected connection drops.
func (c *Client) Watch(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	st, err := c.watchEvents(ctx, id)
	if err == nil {
		return st, nil
	}
	if ctx.Err() != nil {
		return JobStatus{}, ctx.Err()
	}
	c.logf("client: %s: job %s event stream failed (%v); falling back to polling", c.BaseURL, id, err)
	return c.Wait(ctx, id, poll)
}

// watchEvents consumes the SSE stream until a terminal state event.
func (c *Client) watchEvents(ctx context.Context, id string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return JobStatus{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.streamHTTP().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return JobStatus{}, apiErrorOf(resp, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return JobStatus{}, fmt.Errorf("job %s: events endpoint answered %q", id, ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20) // state events carry whole results
	var event string
	var data []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Event boundary: dispatch what we accumulated.
			if event == "state" && len(data) > 0 {
				// Reconstruct the exact polled body: the server split it on
				// newlines, and every body ends with exactly one newline.
				body := strings.Join(data, "\n") + "\n"
				var st JobStatus
				if err := json.Unmarshal([]byte(body), &st); err != nil {
					return JobStatus{}, fmt.Errorf("job %s: malformed state event: %w", id, err)
				}
				switch st.Status {
				case "done", "failed", "cancelled":
					return st, nil
				}
			}
			event, data = "", nil
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):])
		case strings.HasPrefix(line, ":"):
			// comment/keepalive
		}
	}
	if err := sc.Err(); err != nil {
		return JobStatus{}, err
	}
	return JobStatus{}, fmt.Errorf("job %s: event stream ended before a terminal state", id)
}

// Report fetches a finished validate job's ValidationReport JSON from
// GET /v1/jobs/{id}/report (the job must have been submitted with
// validate.report or validate.gate set).
func (c *Client) Report(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/report", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiErrorOf(resp, data)
	}
	return data, err
}

// ExportSnapshot downloads the worker's shared-cache snapshot; with
// delta, only entries computed since the last import (the worker's own
// contribution).
func (c *Client) ExportSnapshot(ctx context.Context, delta bool) ([]byte, error) {
	path := "/v1/cache/snapshot"
	if delta {
		path += "?delta=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiErrorOf(resp, data)
	}
	return data, err
}

// SnapshotReader opens the worker's shared-cache snapshot as a stream —
// the record-by-record alternative to ExportSnapshot for consumers that
// merge as they read (simcache.LoadStream) instead of buffering the
// whole snapshot. The caller must Close the reader.
func (c *Client) SnapshotReader(ctx context.Context, delta bool) (io.ReadCloser, error) {
	path := "/v1/cache/snapshot"
	if delta {
		path += "?delta=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, apiErrorOf(resp, data)
	}
	return resp.Body, nil
}

// ImportSnapshot merges snapshot bytes into the worker's shared cache
// (checksum-verified, last-writer-wins) and resets its delta baseline.
func (c *Client) ImportSnapshot(ctx context.Context, data []byte) (SnapshotReport, error) {
	return c.ImportSnapshotFrom(ctx, bytes.NewReader(data))
}

// ImportSnapshotFrom streams a snapshot body from r into the worker's
// shared cache — records flow from the source to the worker without the
// snapshot ever being buffered whole on the sending side.
func (c *Client) ImportSnapshotFrom(ctx context.Context, r io.Reader) (SnapshotReport, error) {
	var rep SnapshotReport
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/cache/snapshot", r)
	if err != nil {
		return rep, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return rep, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, apiErrorOf(resp, body)
	}
	return rep, json.Unmarshal(body, &rep)
}
