package engine

import (
	"strings"
	"sync"
)

// progressRing is the bounded per-job progress buffer behind
// JobStatus.Progress: an io.Writer that splits a stderr stream into
// lines and retains the most recent keep of them.
//
// Writers do not align writes to lines — fmt.Fprintf issues one write
// per call, but the scenario engine, the tuner and panic stacks all
// produce multi-part and partial writes. A write that does not end in
// a newline is buffered (not emitted, not dropped) until its line is
// completed by a later write, so "12" + "3 done\n" surfaces as the one
// line "123 done" — never as the two wrong lines "12" and "3 done".
type progressRing struct {
	mu      sync.Mutex
	keep    int
	lines   []string
	partial []byte
	// total counts lines ever appended — the monotonically increasing
	// sequence number SSE subscribers use to de-duplicate a line that
	// lands in both their replay snapshot and their live channel.
	total int64
	// emit, when non-nil, receives every completed line (with its
	// sequence number) after it enters the ring — the SSE fan-out hook.
	// Called without the ring lock held.
	emit func(line string, seq int64)
}

func newProgressRing(keep int, emit func(line string, seq int64)) *progressRing {
	if keep <= 0 {
		keep = 50
	}
	return &progressRing{keep: keep, emit: emit}
}

// Write implements io.Writer. Complete lines enter the ring (empty
// lines are skipped, matching the historical behavior); a trailing
// partial line is buffered for the next write.
func (r *progressRing) Write(p []byte) (int, error) {
	r.mu.Lock()
	buf := append(r.partial, p...)
	var completed []string
	for {
		i := indexByte(buf, '\n')
		if i < 0 {
			break
		}
		line := strings.TrimRight(string(buf[:i]), "\r")
		buf = buf[i+1:]
		if line == "" {
			continue
		}
		r.lines = append(r.lines, line)
		r.total++
		completed = append(completed, line)
	}
	// Keep the unterminated tail; copy so we never alias the caller's p.
	r.partial = append(r.partial[:0], buf...)
	if len(r.lines) > r.keep {
		r.lines = r.lines[len(r.lines)-r.keep:]
	}
	emit, seq := r.emit, r.total
	r.mu.Unlock()
	if emit != nil {
		for i, line := range completed {
			emit(line, seq-int64(len(completed)-1-i))
		}
	}
	return len(p), nil
}

// Flush promotes a buffered partial line into the ring — called once a
// job finishes, so final unterminated output (a progress spinner, a
// truncated panic line) is retained rather than silently lost.
func (r *progressRing) Flush() {
	r.mu.Lock()
	var line string
	if len(r.partial) > 0 {
		line = strings.TrimRight(string(r.partial), "\r")
		r.partial = r.partial[:0]
		if line != "" {
			r.lines = append(r.lines, line)
			r.total++
			if len(r.lines) > r.keep {
				r.lines = r.lines[len(r.lines)-r.keep:]
			}
		}
	}
	emit, seq := r.emit, r.total
	r.mu.Unlock()
	if emit != nil && line != "" {
		emit(line, seq)
	}
}

// Lines snapshots the retained lines, most recent last.
func (r *progressRing) Lines() []string {
	lines, _ := r.LinesSeq()
	return lines
}

// LinesSeq snapshots the retained lines plus the sequence number of the
// most recent one (0 before any line).
func (r *progressRing) LinesSeq() ([]string, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.lines...), r.total
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}
