package engine

import (
	"fmt"
	"os"
	"strings"
	"time"

	"racesim/internal/expt"
	"racesim/internal/scenario"
)

// defaultResumeCache is the checkpoint path Resume uses when no cache
// path was given; a resumable sweep needs a snapshot on disk by
// definition.
const defaultResumeCache = "simcache.json"

func (e *env) experimentsJob(j *ExperimentsJob) error {
	if j == nil {
		j = &ExperimentsJob{}
	}
	scale := j.Scale
	if scale == 0 {
		scale = 0.01
	}
	events := j.Events
	if events == 0 {
		events = 60_000
	}
	budget1 := j.Budget1
	if budget1 == 0 {
		budget1 = 2500
	}
	budget2 := j.Budget2
	if budget2 == 0 {
		budget2 = 3500
	}
	ckEvery := 10 * time.Second
	if j.CheckpointEvery != "" {
		d, err := time.ParseDuration(j.CheckpointEvery)
		if err != nil {
			return fmt.Errorf("checkpoint_every: %w", err)
		}
		ckEvery = d
	}
	logf := func(format string, args ...any) {
		if !j.Quiet {
			e.eprintf(format+"\n", args...)
		}
	}

	specs := scenario.Registry()
	if j.Manifest != "" {
		extra, err := scenario.LoadManifest(j.Manifest)
		if err != nil {
			return err
		}
		specs = scenario.Merge(specs, extra)
	}

	if j.SaveManifest != "" {
		if err := scenario.SaveManifest(j.SaveManifest, specs); err != nil {
			return err
		}
		e.eprintf("wrote %d scenarios to %s\n", len(specs), j.SaveManifest)
		return nil
	}
	if j.ListScenarios {
		return e.listScenarios(specs)
	}

	if j.Run != "" && j.Scenario != "" {
		return fmt.Errorf("cannot combine run and scenario; they are the same selector")
	}
	pattern := j.Scenario
	if pattern == "" {
		pattern = j.Run
	}
	if pattern == "" {
		pattern = "all"
	}
	selected, err := scenario.Select(specs, pattern)
	if err != nil {
		return err
	}
	units, err := scenario.Expand(selected)
	if err != nil {
		return err
	}
	total := len(units)
	if j.Units != "" {
		if j.Shard != "" {
			return fmt.Errorf("cannot combine units and shard; both partition the expansion")
		}
		units, err = scenario.FilterUnits(units, strings.Split(j.Units, ","))
		if err != nil {
			return err
		}
		logf("scenario: units %s: %d of %d units", j.Units, len(units), total)
	}
	si, sn, err := scenario.ParseShard(j.Shard)
	if err != nil {
		return err
	}
	units = scenario.Shard(units, si, sn)
	if sn > 1 {
		logf("scenario: shard %d/%d: %d of %d units", si, sn, len(units), total)
	}

	// The scenario engine owns snapshot load/save and checkpoint/resume
	// for sweeps, so an interrupted run restarted with the same flags
	// replays finished work from the cache. A server-owned shared cache is
	// persisted by the server instead, and per-job checkpointing (with its
	// process-wide signal handlers) is a batch-only feature.
	cachePath := e.path
	if e.shared {
		if j.Resume {
			return fmt.Errorf("resume checkpointing is not available on a shared-cache server")
		}
		cachePath = ""
	} else if j.Resume && cachePath == "" {
		cachePath = defaultResumeCache
		logf("scenario: -resume without -cache: checkpointing to %s", cachePath)
	}

	rejectedBefore := e.cache.Stats().Rejected
	results, err := scenario.Run(units, scenario.RunOptions{
		Expt: expt.Options{
			UbenchScale:    scale,
			WorkloadEvents: events,
			BudgetRound1:   budget1,
			BudgetRound2:   budget2,
			Seed:           j.Seed,
			Parallelism:    e.par,
			Lanes:          e.lanes,
			Cache:          e.cache,
			Context:        e.ctx,
			Log:            logf,
		},
		CachePath:       cachePath,
		Checkpoint:      j.Resume,
		CheckpointEvery: ckEvery,
		Log:             logf,
	})
	if err != nil {
		return err
	}
	// A corrupted checkpoint is worth a warning even when quiet: the
	// affected units were silently re-simulated. Compare against the
	// pre-job counter — on a shared cache the cumulative total includes
	// rejections from other loads (e.g. the server's startup warm-up),
	// which are not this job's news to report.
	if rej := e.cache.Stats().Rejected - rejectedBefore; rej > 0 {
		e.eprintf("experiments: %s: rejected %d corrupted cache entries\n", cachePath, rej)
	}

	rendered := scenario.RenderAll(results)
	e.printf("%s", rendered)
	if j.OutPath != "" {
		if err := os.WriteFile(j.OutPath, []byte(rendered), 0o644); err != nil {
			return err
		}
		e.eprintf("wrote %s\n", j.OutPath)
	}

	// Wall-clock and cache effectiveness on stderr, never in the artifact.
	for _, r := range results {
		e.eprintf("timing: %-6s %v\n", r.Unit.ID, r.Experiment.Elapsed.Round(time.Millisecond))
	}
	st := e.cache.Stats()
	e.eprintf("cache: %d hits, %d misses, %d shared in-flight (%.1f%% hit rate), %d entries\n",
		st.Hits, st.Misses, st.Shared, st.HitRate()*100, st.Entries)
	return nil
}

func (e *env) listScenarios(specs []scenario.Spec) error {
	units, err := scenario.Expand(specs)
	if err != nil {
		return err
	}
	perScenario := map[string]int{}
	for _, u := range units {
		perScenario[u.Scenario]++
	}
	e.printf("%-22s %-14s %5s  %s\n", "scenario", "kind", "units", "description")
	for _, s := range specs {
		e.printf("%-22s %-14s %5d  %s\n", s.Name, s.Kind, perScenario[s.Name], s.Description)
	}
	e.printf("\n%d scenarios, %d units; 'all' selects the paper set (%s)\n",
		len(specs), len(units), strings.Join(scenario.PaperSet(specs), ", "))
	return nil
}
