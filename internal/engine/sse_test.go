package engine

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"racesim/internal/telemetry"
)

// sseEvent is a decoded test-side Server-Sent Event.
type sseEvent struct {
	kind string
	data string // reconstructed payload: join(data lines, "\n") + "\n"
}

// readSSE consumes an event stream to EOF (the server closes it after
// the terminal state event).
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	var events []sseEvent
	var kind string
	var data []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if kind != "" {
				events = append(events, sseEvent{kind: kind, data: strings.Join(data, "\n") + "\n"})
			}
			kind, data = "", nil
		case strings.HasPrefix(line, "event: "):
			kind = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading event stream: %v", err)
	}
	return events
}

// TestServerEventsStreamMatchesPolled is the SSE contract test: the
// stream's terminal state event must be byte-for-byte the body a polled
// GET /v1/jobs/{id} returns, and the progress events must agree with
// the polled progress ring.
func TestServerEventsStreamMatchesPolled(t *testing.T) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	job := tinyExperiments()
	job.Experiments.Quiet = false // stream scenario progress into the ring
	id, err := srv.Submit(job)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("Content-Type = %q", got)
	}
	events := readSSE(t, resp.Body)
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	final := events[len(events)-1]
	if final.kind != "state" {
		t.Fatalf("stream did not end with a state event: %+v", final)
	}

	// Byte-for-byte: the terminal event's payload vs the polled body.
	get, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	polled, err := io.ReadAll(get.Body)
	get.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if final.data != string(polled) {
		t.Errorf("terminal SSE state != polled body\n--- sse ---\n%s\n--- polled ---\n%s", final.data, polled)
	}

	// The progress events, in order, must end with exactly the polled
	// ring contents (the ring keeps the most recent lines; the stream saw
	// every line since it subscribed at submission).
	var progress []string
	for _, ev := range events {
		if ev.kind == "progress" {
			progress = append(progress, strings.TrimSuffix(ev.data, "\n"))
		}
	}
	st := getStatus(t, ts, id)
	if st.Status != "done" {
		t.Fatalf("job %s: %+v", st.Status, st)
	}
	if len(st.Progress) == 0 || len(progress) < len(st.Progress) {
		t.Fatalf("progress: stream %d lines, polled %d", len(progress), len(st.Progress))
	}
	tail := progress[len(progress)-len(st.Progress):]
	for i := range tail {
		if tail[i] != st.Progress[i] {
			t.Fatalf("stream progress diverges from polled ring at %d: %q != %q\nstream: %v\npolled: %v",
				i, tail[i], st.Progress[i], progress, st.Progress)
		}
	}
}

// TestServerEventsAfterCompletion: subscribing to a finished job replays
// the retained lines and the terminal state, then ends immediately.
func TestServerEventsAfterCompletion(t *testing.T) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, err := srv.Submit(tinyExperiments())
	if err != nil {
		t.Fatal(err)
	}
	srv.Drain(context.Background())

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	if len(events) == 0 || events[len(events)-1].kind != "state" {
		t.Fatalf("late subscription events: %+v", events)
	}
	get, _ := http.Get(ts.URL + "/v1/jobs/" + id)
	polled, _ := io.ReadAll(get.Body)
	get.Body.Close()
	if events[len(events)-1].data != string(polled) {
		t.Error("late subscription terminal state != polled body")
	}
}

// TestClientWatch: the SSE watcher returns the same terminal status the
// poller does, and falls back to polling when the stream is broken.
func TestClientWatch(t *testing.T) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	c := NewClient(ts.URL)
	id, err := c.Submit(ctx, tinyExperiments())
	if err != nil {
		t.Fatal(err)
	}
	watched, err := c.Watch(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if watched.Status != "done" || watched.Result == nil {
		t.Fatalf("watched: %+v", watched)
	}
	polled, err := c.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if watched.ID != polled.ID || watched.Status != polled.Status ||
		watched.Result.Artifact != polled.Result.Artifact {
		t.Error("watched status diverges from polled status")
	}
}

func TestClientWatchFallsBackToPolling(t *testing.T) {
	// A server without the events endpoint (e.g. an older build): Watch
	// must degrade to Wait transparently.
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inner := srv.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	mux.Handle("/", inner)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	ctx := context.Background()

	c := NewClient(ts.URL)
	id, err := c.Submit(ctx, tinyExperiments())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Watch(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "done" {
		t.Fatalf("fallback watch: %+v", st)
	}
}

// TestTraceHeaderProducesSpans: a job submitted with X-Racesim-Trace
// returns worker and engine spans forming one tree under the
// submitter's span.
func TestTraceHeaderProducesSpans(t *testing.T) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	parent := telemetry.SpanContext{Trace: telemetry.NewID(), Span: telemetry.NewID()}
	c := NewClient(ts.URL)
	id, err := c.Submit(telemetry.ContextWithSpan(ctx, parent), tinyExperiments())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Watch(ctx, id, 10*time.Millisecond)
	if err != nil || st.Status != "done" {
		t.Fatalf("job: %v / %+v", err, st.Status)
	}
	spans := st.Result.Spans
	byName := map[string]telemetry.Span{}
	for _, sp := range spans {
		if sp.Trace != parent.Trace {
			t.Errorf("span %s left the trace: %q", sp.Name, sp.Trace)
		}
		byName[sp.Name] = sp
	}
	for _, name := range []string{"job", "queue", "run", "engine", "simcache"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing span %q in %v", name, spans)
		}
	}
	if byName["job"].Parent != parent.Span {
		t.Error("job span not parented under the submitted context")
	}
	if byName["queue"].Parent != byName["job"].ID || byName["run"].Parent != byName["job"].ID {
		t.Error("queue/run spans not parented under the job span")
	}
	if byName["engine"].Parent != byName["run"].ID {
		t.Error("engine span not parented under the run span")
	}
	if byName["simcache"].Parent != byName["engine"].ID {
		t.Error("simcache span not parented under the engine span")
	}
	if byName["job"].Attrs["status"] != "done" || byName["job"].Attrs["id"] != id {
		t.Errorf("job span attrs: %v", byName["job"].Attrs)
	}

	// An untraced submission must carry no spans at all.
	id2, err := c.Submit(ctx, tinyExperiments())
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Watch(ctx, id2, 10*time.Millisecond)
	if err != nil || st2.Status != "done" {
		t.Fatalf("untraced job: %v / %+v", err, st2.Status)
	}
	if len(st2.Result.Spans) != 0 {
		t.Errorf("untraced job produced spans: %v", st2.Result.Spans)
	}
}
