package engine

import (
	"fmt"
	"math"

	"racesim/internal/hw"
	"racesim/internal/isa"
	"racesim/internal/par"
	"racesim/internal/sim"
	"racesim/internal/ubench"
)

func (e *env) ubenchJob(j *UbenchJob) error {
	if j == nil {
		j = &UbenchJob{}
	}
	scale := j.Scale
	if scale == 0 {
		scale = 0.01
	}
	dumpOut := j.DumpOut
	if dumpOut == "" {
		dumpOut = "bench.rift"
	}
	opts := ubench.Options{Scale: scale, InitArrays: j.InitArrays}
	switch {
	case j.Disasm != "":
		b, ok := ubench.ByName(j.Disasm)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", j.Disasm)
		}
		prog, err := b.Program(opts)
		if err != nil {
			return err
		}
		listing, err := isa.DisassembleProgram(prog)
		if err != nil {
			return err
		}
		e.printf("%s", listing)
		return nil

	case j.List:
		e.printf("%-14s %-12s %12s  %s\n", "bench", "category", "paper insns", "description")
		for _, b := range ubench.Suite() {
			e.printf("%-14s %-12s %12d  %s\n", b.Name, b.Category, b.PaperInstructions, b.Description)
		}
		return nil

	case j.Dump != "":
		b, ok := ubench.ByName(j.Dump)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", j.Dump)
		}
		tr, err := b.Trace(opts)
		if err != nil {
			return err
		}
		if err := tr.WriteFile(dumpOut); err != nil {
			return err
		}
		e.printf("wrote %s: %d instructions\n", dumpOut, tr.Len())
		return nil

	case j.Compare != "":
		plat, err := hw.Firefly()
		if err != nil {
			return err
		}
		board := plat.A53
		cfg := sim.PublicA53()
		switch j.Core {
		case "", "a53":
		case "a72":
			board = plat.A72
			cfg = sim.PublicA72()
		default:
			// The historical binary silently fell back to the A53 here; a
			// typo'd core must not return plausible wrong-core numbers.
			return fmt.Errorf("unknown core %q", j.Core)
		}
		if err := e.loadSnapshot("ubench", func(format string, args ...any) {
			e.eprintf(format+"\n", args...)
		}); err != nil {
			return err
		}
		if j.Compare == "all" {
			err = e.compareSuite(board, cfg, opts)
		} else {
			err = e.compareOne(j.Compare, board, cfg, opts)
		}
		if err != nil {
			return err
		}
		return e.saveSnapshot(func(format string, args ...any) {
			e.eprintf(format+"\n", args...)
		})
	}
	return fmt.Errorf("one of list, dump, compare or disasm is required")
}

func (e *env) compareOne(name string, board *hw.Board, cfg sim.Config, opts ubench.Options) error {
	b, ok := ubench.ByName(name)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", name)
	}
	tr, err := b.Trace(opts)
	if err != nil {
		return err
	}
	cnt, err := board.Measure(tr)
	if err != nil {
		return err
	}
	res, err := e.cache.Run(cfg, tr)
	if err != nil {
		return err
	}
	errPct := (res.CPI() - cnt.CPI) / cnt.CPI * 100
	e.printf("benchmark:     %s (%d instructions)\n", b.Name, tr.Len())
	e.printf("board CPI:     %.4f (%s)\n", cnt.CPI, board.Name)
	e.printf("model CPI:     %.4f (%s)\n", res.CPI(), cfg.Name)
	e.printf("CPI error:     %+.1f%%\n", errPct)
	e.printf("board brMPKI:  %.2f   model brMPKI: %.2f\n",
		cnt.BranchMPKI, res.Branch.MPKI(res.Instructions))
	return nil
}

// compareSuite runs every benchmark through board and model on a bounded
// worker pool. Rows are assembled in suite order, so the output is
// identical for any parallelism and cache warmth.
func (e *env) compareSuite(board *hw.Board, cfg sim.Config, opts ubench.Options) error {
	benches := ubench.Suite()
	type row struct {
		boardCPI, modelCPI, errPct float64
		insns                      int
	}
	rows := make([]row, len(benches))
	err := par.ForEach(len(benches), e.par, func(i int) error {
		tr, err := benches[i].Trace(opts)
		if err != nil {
			return err
		}
		cnt, err := board.Measure(tr)
		if err != nil {
			return err
		}
		res, err := e.cache.Run(cfg, tr)
		if err != nil {
			return err
		}
		rows[i] = row{
			boardCPI: cnt.CPI,
			modelCPI: res.CPI(),
			errPct:   (res.CPI() - cnt.CPI) / cnt.CPI * 100,
			insns:    tr.Len(),
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.printf("%-14s %10s %10s %10s %8s\n", "bench", "insns", "board CPI", "model CPI", "error")
	mean := 0.0
	for i, b := range benches {
		r := rows[i]
		e.printf("%-14s %10d %10.4f %10.4f %+7.1f%%\n", b.Name, r.insns, r.boardCPI, r.modelCPI, r.errPct)
		mean += math.Abs(r.errPct)
	}
	e.printf("\nmean |CPI error| over %d benchmarks: %.1f%% (%s vs %s)\n",
		len(benches), mean/float64(len(benches)), board.Name, cfg.Name)
	return nil
}
