package engine

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"racesim/internal/sim"
	"racesim/internal/simcache"
)

func TestJobCheck(t *testing.T) {
	cases := []struct {
		name string
		job  Job
		ok   bool
	}{
		{"run", Job{Kind: KindRun, Run: &RunJob{Ubench: "MD"}}, true},
		{"no kind", Job{}, false},
		{"unknown kind", Job{Kind: "tune"}, false},
		{"two specs", Job{Kind: KindRun, Run: &RunJob{}, Ubench: &UbenchJob{}}, false},
		{"kind without spec", Job{Kind: KindUbench}, true}, // spec is optional; defaults apply
		// A spec that does not match the kind must fail loudly: otherwise
		// the mislabeled spec is silently ignored and the kind runs on its
		// zero-value defaults (for experiments, the full paper sweep).
		{"mislabeled spec", Job{Kind: KindExperiments, Run: &RunJob{Ubench: "MD"}}, false},
		{"mislabeled spec 2", Job{Kind: KindRun, Validate: &ValidateJob{}}, false},
	}
	for _, tc := range cases {
		if err := tc.job.Check(); (err == nil) != tc.ok {
			t.Errorf("%s: Check() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestRunJobSingleTrace(t *testing.T) {
	job := Job{Kind: KindRun, Run: &RunJob{Ubench: "MD", Scale: 0.002}}
	res, err := Execute(job, Options{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"config:        public-a53", "cycles:", "CPI:", "L1D miss rate:"} {
		if !strings.Contains(res.Artifact, want) {
			t.Errorf("artifact missing %q:\n%s", want, res.Artifact)
		}
	}
	if res.Kind != KindRun {
		t.Errorf("result kind %q", res.Kind)
	}
}

func TestRunJobBatchDeterministicAcrossCacheWarmth(t *testing.T) {
	cache := simcache.New()
	job := Job{Kind: KindRun, Run: &RunJob{Ubench: "MD,CS1,MIP", Scale: 0.002}}
	cold, err := Execute(job, Options{Cache: cache, Parallelism: 3, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Execute(job, Options{Cache: cache, Parallelism: 1, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Artifact != warm.Artifact {
		t.Errorf("artifact changed with cache warmth/parallelism:\ncold:\n%s\nwarm:\n%s", cold.Artifact, warm.Artifact)
	}
	st := warm.CacheStats
	if st.Misses != 3 || st.Hits < 3 {
		t.Errorf("warm rerun should be pure hits: %+v", st)
	}
}

func TestRunJobLanesOutputIdentical(t *testing.T) {
	job := Job{Kind: KindRun, Run: &RunJob{Ubench: "MD,CS1,MIP", Scale: 0.002}}
	plain, err := Execute(job, Options{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	laned, err := Execute(job, Options{Lanes: 8, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Artifact != laned.Artifact {
		t.Errorf("artifact changed under -lanes:\nplain:\n%s\nlaned:\n%s", plain.Artifact, laned.Artifact)
	}
}

func TestRunJobInlineConfigJSON(t *testing.T) {
	cfg := sim.PublicA72()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(Job{Kind: KindRun, Run: &RunJob{ConfigJSON: data, Ubench: "MD", Scale: 0.002}}, Options{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Artifact, cfg.Name) {
		t.Errorf("artifact does not name the inline config %q:\n%s", cfg.Name, res.Artifact)
	}
	// A config that fails validation is rejected before simulating.
	bad := cfg
	bad.Kind = "neither-core-kind"
	data, _ = json.Marshal(bad)
	if _, err := Execute(Job{Kind: KindRun, Run: &RunJob{ConfigJSON: data, Ubench: "MD"}}, Options{}); err == nil {
		t.Error("invalid inline config accepted")
	}
}

func TestRunJobSnapshotLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	job := Job{Kind: KindRun, Run: &RunJob{Ubench: "MD", Scale: 0.002}}
	if _, err := Execute(job, Options{CachePath: path}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	res, err := Execute(job, Options{CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if st := res.CacheStats; st.Hits != 1 || st.Misses != 0 {
		t.Errorf("second run should answer from the snapshot: %+v", st)
	}
}

func TestExperimentsJobMatchesListing(t *testing.T) {
	res, err := Execute(Job{Kind: KindExperiments, Experiments: &ExperimentsJob{ListScenarios: true}}, Options{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig8", "transfer-a53-to-a72", "'all' selects the paper set"} {
		if !strings.Contains(res.Artifact, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestExperimentsJobArtifact(t *testing.T) {
	job := Job{Kind: KindExperiments, Experiments: &ExperimentsJob{
		Scenario: "table1,table2", Scale: 0.002, Events: 4000, Quiet: true,
	}}
	a, err := Execute(job, Options{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Artifact, "## table1 — Micro-benchmark suite") ||
		!strings.Contains(a.Artifact, "## table2 — SPEC CPU2017 region workloads") {
		t.Fatalf("unexpected artifact:\n%s", a.Artifact)
	}
	// Same job on a different engine invocation renders identical bytes.
	b, err := Execute(job, Options{Parallelism: 2, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Artifact != b.Artifact {
		t.Error("experiments artifact differs across engine invocations")
	}
}

func TestExperimentsJobRejectsResumeOnSharedCache(t *testing.T) {
	_, err := Execute(
		Job{Kind: KindExperiments, Experiments: &ExperimentsJob{Scenario: "table1", Resume: true}},
		Options{Cache: simcache.New()})
	if err == nil || !strings.Contains(err.Error(), "shared-cache") {
		t.Errorf("want shared-cache resume rejection, got %v", err)
	}
}

func TestExperimentsJobSelectorConflict(t *testing.T) {
	_, err := Execute(Job{Kind: KindExperiments, Experiments: &ExperimentsJob{Run: "fig4", Scenario: "fig5"}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "same selector") {
		t.Errorf("want selector-conflict error, got %v", err)
	}
}

func TestUbenchJobList(t *testing.T) {
	res, err := Execute(Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}}, Options{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Artifact, "MD") || !strings.Contains(res.Artifact, "category") {
		t.Errorf("suite listing looks wrong:\n%s", res.Artifact)
	}
}

func TestUbenchJobRequiresAction(t *testing.T) {
	if _, err := Execute(Job{Kind: KindUbench}, Options{}); err == nil {
		t.Error("ubench job without an action should fail")
	}
}

func TestUbenchJobRejectsUnknownCore(t *testing.T) {
	_, err := Execute(Job{Kind: KindUbench, Ubench: &UbenchJob{Compare: "MD", Core: "a57"}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown core") {
		t.Errorf("typo'd core must error, not silently compare against the A53: %v", err)
	}
}

func TestValidateJobTunedConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation pipeline")
	}
	out := filepath.Join(t.TempDir(), "tuned.json")
	res, err := Execute(Job{Kind: KindValidate, Validate: &ValidateJob{
		Core: "a53", Budget1: 200, Budget2: 200, Scale: 0.001, Quiet: true, OutPath: out,
	}}, Options{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TunedConfig) == 0 {
		t.Fatal("validate result carries no tuned config")
	}
	var cfg sim.Config
	if err := json.Unmarshal(res.TunedConfig, &cfg); err != nil {
		t.Fatalf("tuned config does not parse: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("tuned config invalid: %v", err)
	}
	// OutPath wrote the identical bytes.
	disk, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(disk) != string(res.TunedConfig) {
		t.Error("OutPath bytes differ from Result.TunedConfig")
	}
	if !strings.Contains(res.Artifact, "per-category error of the final model") {
		t.Errorf("artifact missing the stage report:\n%s", res.Artifact)
	}
}

func TestExecuteContextCancelsMidSweep(t *testing.T) {
	// Cancel shortly after a multi-unit sweep starts: execution must stop
	// at the next unit/stage boundary with the context's error, well
	// before the sweep could have finished.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ExecuteContext(ctx, Job{Kind: KindExperiments, Experiments: &ExperimentsJob{
		Scenario: "table1,table2,fig2", Scale: 0.002, Events: 4000,
		Budget1: 250, Budget2: 250, Quiet: true,
	}}, Options{Parallelism: 2, Capture: true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled sweep error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v; context is not threaded into the sweep", elapsed)
	}
}

func TestExecutePreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ExecuteContext(ctx, Job{Kind: KindUbench, Ubench: &UbenchJob{List: true}}, Options{Capture: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled job error = %v, want context.Canceled", err)
	}
	if res.Artifact != "" {
		t.Errorf("pre-cancelled job produced output: %q", res.Artifact)
	}
}
