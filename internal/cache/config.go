// Package cache implements the set-associative cache levels and the
// multi-level hierarchy of the racesim memory subsystem: configurable index
// hashing (mask, XOR-fold, Mersenne-prime modulo), replacement policies,
// victim caching, serial/parallel tag-data access, port bandwidth, MSHRs,
// data prefetching, TLBs, and the zero-fill page optimization that the
// paper observed on real hardware for uninitialized arrays.
package cache

import (
	"fmt"

	"racesim/internal/prefetch"
)

// HashKind selects the set index function.
type HashKind string

// Index hash kinds (cf. Kharbutli et al. on prime-modulo indexing).
const (
	HashMask     HashKind = "mask"     // low bits of the block address
	HashXor      HashKind = "xor"      // XOR-folded block address
	HashMersenne HashKind = "mersenne" // block mod (2^k - 1)
)

// HashKinds lists all index hash kinds.
var HashKinds = []HashKind{HashMask, HashXor, HashMersenne}

// ReplKind selects the replacement policy.
type ReplKind string

// Replacement policies.
const (
	ReplLRU    ReplKind = "lru"
	ReplPLRU   ReplKind = "plru" // tree pseudo-LRU
	ReplRandom ReplKind = "random"
)

// ReplKinds lists all replacement policies.
var ReplKinds = []ReplKind{ReplLRU, ReplPLRU, ReplRandom}

// Config describes one cache level.
type Config struct {
	Name     string
	SizeKB   int
	Assoc    int
	LineSize int

	// HitLatency is the load-to-use latency of a hit, in cycles.
	HitLatency int
	// TagDataSerial adds one cycle to every hit (tags probed before data,
	// the low-power option on little cores).
	TagDataSerial bool

	Hash HashKind
	Repl ReplKind

	// MSHRs bounds the number of overlapping outstanding misses the level
	// supports; the out-of-order core uses it to cap memory-level
	// parallelism.
	MSHRs int
	// Ports is the number of accesses accepted per cycle.
	Ports int

	// WriteBack selects write-back (true) or write-through (false).
	WriteBack bool
	// WriteAllocate allocates lines on store misses.
	WriteAllocate bool

	// VictimEntries adds a small fully-associative victim buffer (0 = off).
	VictimEntries int

	Prefetch prefetch.Config
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeKB <= 0 {
		return fmt.Errorf("cache %s: SizeKB = %d", c.Name, c.SizeKB)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: LineSize %d must be a power of two", c.Name, c.LineSize)
	}
	lines := c.SizeKB * 1024 / c.LineSize
	if c.Assoc <= 0 || lines%c.Assoc != 0 {
		return fmt.Errorf("cache %s: %d lines not divisible by assoc %d", c.Name, lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets must be a power of two", c.Name, sets)
	}
	if c.HitLatency <= 0 {
		return fmt.Errorf("cache %s: HitLatency = %d", c.Name, c.HitLatency)
	}
	switch c.Hash {
	case HashMask, HashXor, HashMersenne:
	default:
		return fmt.Errorf("cache %s: unknown hash %q", c.Name, c.Hash)
	}
	switch c.Repl {
	case ReplLRU, ReplRandom:
	case ReplPLRU:
		if c.Assoc&(c.Assoc-1) != 0 {
			return fmt.Errorf("cache %s: PLRU needs power-of-two assoc, got %d", c.Name, c.Assoc)
		}
	default:
		return fmt.Errorf("cache %s: unknown replacement %q", c.Name, c.Repl)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cache %s: MSHRs = %d", c.Name, c.MSHRs)
	}
	if c.Ports <= 0 {
		return fmt.Errorf("cache %s: Ports = %d", c.Name, c.Ports)
	}
	if c.VictimEntries < 0 {
		return fmt.Errorf("cache %s: VictimEntries = %d", c.Name, c.VictimEntries)
	}
	if err := c.Prefetch.Validate(); err != nil {
		return fmt.Errorf("cache %s: %w", c.Name, err)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeKB * 1024 / c.LineSize / c.Assoc }
