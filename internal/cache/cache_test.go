package cache

import (
	"testing"
	"testing/quick"

	"racesim/internal/dram"
	"racesim/internal/prefetch"
)

// fixedBackend returns a constant latency, for testing a level in
// isolation.
type fixedBackend struct {
	lat   uint64
	calls int
}

func (f *fixedBackend) BackAccess(now uint64, pc, addr uint64, write, pf bool) AccessResult {
	f.calls++
	return AccessResult{Latency: f.lat, Level: 3}
}

func l1Config() Config {
	return Config{
		Name: "l1d", SizeKB: 32, Assoc: 4, LineSize: 64,
		HitLatency: 3, Hash: HashMask, Repl: ReplLRU,
		MSHRs: 4, Ports: 1, WriteBack: true, WriteAllocate: true,
		Prefetch: prefetch.DefaultConfig(),
	}
}

func mkLevel(t *testing.T, cfg Config, back Backend) *Level {
	t.Helper()
	l, err := NewLevel(cfg, 1, back)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestConfigValidate(t *testing.T) {
	if err := l1Config().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := l1Config()
	bad.LineSize = 48
	if bad.Validate() == nil {
		t.Error("non-power-of-two line size accepted")
	}
	bad = l1Config()
	bad.Assoc = 7 // 512 lines not divisible by 7
	if bad.Validate() == nil {
		t.Error("bad associativity accepted")
	}
	bad = l1Config()
	bad.Repl = ReplPLRU
	bad.Assoc = 4
	if err := bad.Validate(); err != nil {
		t.Errorf("PLRU with power-of-two assoc rejected: %v", err)
	}
	bad.Assoc = 8 // 512 lines / 8 = 64 sets: fine
	if err := bad.Validate(); err != nil {
		t.Errorf("PLRU assoc 8 rejected: %v", err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	back := &fixedBackend{lat: 100}
	l := mkLevel(t, l1Config(), back)
	r1 := l.Access(0, 0x100, 0x4000, false)
	if r1.Level != 3 || r1.Latency != 103 {
		t.Errorf("first access: %+v, want miss with latency 103", r1)
	}
	r2 := l.Access(10, 0x100, 0x4000, false)
	if r2.Level != 1 || r2.Latency != 3 {
		t.Errorf("second access: %+v, want L1 hit latency 3", r2)
	}
	s := l.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTagDataSerialAddsCycle(t *testing.T) {
	cfg := l1Config()
	cfg.TagDataSerial = true
	l := mkLevel(t, cfg, &fixedBackend{lat: 100})
	l.Access(0, 0, 0x4000, false)
	r := l.Access(10, 0, 0x4000, false)
	if r.Latency != 4 {
		t.Errorf("serial hit latency = %d, want 4", r.Latency)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := l1Config()
	cfg.SizeKB = 1 // 16 lines, 4 ways, 4 sets
	l := mkLevel(t, cfg, &fixedBackend{lat: 100})
	// Fill set 0 (addresses with identical index bits), then one more.
	setStride := uint64(4 * 64) // sets * line
	for i := 0; i < 5; i++ {
		l.Access(uint64(i), 0, uint64(i)*setStride, false)
	}
	// First line must have been evicted (LRU).
	r := l.Access(10, 0, 0, false)
	if r.Level != 3 {
		t.Error("LRU victim still resident after overfill")
	}
	// Line 2 was more recently used than lines 0 and 1: still resident.
	r = l.Access(11, 0, 2*setStride, false)
	if r.Level != 1 {
		t.Error("recently used line evicted")
	}
}

func TestWriteBackGeneratesWriteback(t *testing.T) {
	cfg := l1Config()
	cfg.SizeKB = 1
	back := &fixedBackend{lat: 100}
	l := mkLevel(t, cfg, back)
	setStride := uint64(4 * 64)
	l.Access(0, 0, 0, true) // dirty line
	for i := 1; i <= 4; i++ {
		l.Access(uint64(i), 0, uint64(i)*setStride, false) // evict it
	}
	if wb := l.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
}

func TestWriteThroughForwardsStores(t *testing.T) {
	cfg := l1Config()
	cfg.WriteBack = false
	back := &fixedBackend{lat: 100}
	l := mkLevel(t, cfg, back)
	l.Access(0, 0, 0x4000, false) // fill
	calls := back.calls
	l.Access(1, 0, 0x4000, true) // store hit: must forward
	if back.calls != calls+1 {
		t.Error("write-through store hit did not forward to backend")
	}
	if l.Stats().Writebacks != 0 {
		t.Error("write-through should not count writebacks")
	}
}

func TestNoWriteAllocate(t *testing.T) {
	cfg := l1Config()
	cfg.WriteBack = false
	cfg.WriteAllocate = false
	l := mkLevel(t, cfg, &fixedBackend{lat: 100})
	l.Access(0, 0, 0x4000, true) // store miss: no allocation
	r := l.Access(1, 0, 0x4000, false)
	if r.Level != 3 {
		t.Error("store miss allocated a line despite no-write-allocate")
	}
}

func TestVictimCacheCatchesConflicts(t *testing.T) {
	cfg := l1Config()
	cfg.SizeKB = 1 // 16 lines
	cfg.Assoc = 1  // direct-mapped, 16 sets: conflict-prone
	cfg.VictimEntries = 4
	l := mkLevel(t, cfg, &fixedBackend{lat: 100})
	setStride := uint64(16 * 64)
	// Two conflicting lines ping-pong: victim cache should catch them.
	for i := 0; i < 20; i++ {
		l.Access(uint64(i), 0, uint64(i%2)*setStride, false)
	}
	s := l.Stats()
	if s.VictimHits == 0 {
		t.Errorf("victim cache never hit: %+v", s)
	}
	// Without the victim cache, every access after warmup misses.
	cfg.VictimEntries = 0
	l2 := mkLevel(t, cfg, &fixedBackend{lat: 100})
	for i := 0; i < 20; i++ {
		l2.Access(uint64(i), 0, uint64(i%2)*setStride, false)
	}
	if l2.Stats().Misses <= s.Misses {
		t.Errorf("victim cache did not reduce misses: %d vs %d", s.Misses, l2.Stats().Misses)
	}
}

func TestHashKindsChangeConflictBehaviour(t *testing.T) {
	// Addresses striding by exactly sets*linesize conflict under mask
	// hashing but spread out under xor hashing.
	run := func(h HashKind) uint64 {
		cfg := l1Config()
		cfg.SizeKB = 4 // 64 lines, 4 ways, 16 sets
		cfg.Hash = h
		l := mkLevel(t, cfg, &fixedBackend{lat: 100})
		stride := uint64(16 * 64)
		for r := 0; r < 4; r++ {
			for i := 0; i < 8; i++ { // 8 lines, same mask set
				l.Access(uint64(r*8+i), 0, uint64(i)*stride, false)
			}
		}
		return l.Stats().Misses
	}
	maskMiss := run(HashMask)
	xorMiss := run(HashXor)
	if xorMiss >= maskMiss {
		t.Errorf("xor hashing (%d misses) should beat mask (%d) on power-of-two strides", xorMiss, maskMiss)
	}
	mers := run(HashMersenne)
	if mers >= maskMiss {
		t.Errorf("mersenne hashing (%d misses) should beat mask (%d) on power-of-two strides", mers, maskMiss)
	}
}

func TestReplacementPolicies(t *testing.T) {
	for _, repl := range ReplKinds {
		cfg := l1Config()
		cfg.Repl = repl
		l := mkLevel(t, cfg, &fixedBackend{lat: 100})
		for i := 0; i < 1000; i++ {
			l.Access(uint64(i), 0, uint64(i%8)*64, false)
		}
		s := l.Stats()
		if s.Hits < 900 {
			t.Errorf("%s: %d hits of 1000 on a tiny working set", repl, s.Hits)
		}
	}
}

func TestPrefetcherReducesStreamMisses(t *testing.T) {
	run := func(pf prefetch.Config) Stats {
		cfg := l1Config()
		cfg.Prefetch = pf
		l := mkLevel(t, cfg, &fixedBackend{lat: 100})
		for i := 0; i < 512; i++ {
			l.Access(uint64(i), 0x100, uint64(0x10000+i*64), false)
		}
		return l.Stats()
	}
	off := run(prefetch.DefaultConfig())
	on := run(prefetch.Config{Kind: prefetch.KindStride, Degree: 2, Distance: 4, TableEntries: 64})
	if on.Misses >= off.Misses {
		t.Errorf("stride prefetcher did not reduce misses: %d vs %d", on.Misses, off.Misses)
	}
	if on.PrefetchIssued == 0 || on.PrefetchUseful == 0 {
		t.Errorf("prefetch stats empty: %+v", on)
	}
}

func TestPortContention(t *testing.T) {
	cfg := l1Config()
	cfg.Ports = 1
	l := mkLevel(t, cfg, &fixedBackend{lat: 100})
	l.Access(5, 0, 0x4000, false)
	l.Access(6, 0, 0x4040, false)
	// Two accesses in the same cycle: the second pays a port stall.
	a := l.Access(7, 0, 0x4000, false)
	b := l.Access(7, 0, 0x4040, false)
	if b.Latency != a.Latency+1 {
		t.Errorf("same-cycle second access latency %d, want %d", b.Latency, a.Latency+1)
	}
	if l.Stats().PortStalls == 0 {
		t.Error("port stalls not counted")
	}
}

func TestHierarchyEndToEnd(t *testing.T) {
	h := mkHierarchy(t, false)
	// Cold load goes to memory.
	r := h.Load(0, 0x100, 0x40000)
	if r.Level != 3 {
		t.Errorf("cold load level = %d, want 3", r.Level)
	}
	// Immediate reload hits L1.
	r = h.Load(1, 0x100, 0x40000)
	if r.Level != 1 {
		t.Errorf("warm load level = %d, want 1", r.Level)
	}
	// A line evicted from L1 but present in L2 hits L2.
	s := h.Stats()
	if s.L1D.Accesses == 0 || s.L2.Accesses == 0 || s.DRAM.Reads == 0 {
		t.Errorf("stats not flowing: %+v", s)
	}
}

func mkHierarchy(t *testing.T, zeroFill bool) *Hierarchy {
	t.Helper()
	l2 := Config{
		Name: "l2", SizeKB: 512, Assoc: 16, LineSize: 64,
		HitLatency: 12, Hash: HashMask, Repl: ReplLRU,
		MSHRs: 8, Ports: 1, WriteBack: true, WriteAllocate: true,
		Prefetch: prefetch.DefaultConfig(),
	}
	l1i := l1Config()
	l1i.Name = "l1i"
	cfg := HierarchyConfig{
		L1I: l1i, L1D: l1Config(), L2: l2, DRAM: dram.DefaultConfig(),
		ITLBEntries: 16, DTLBEntries: 16, TLBMissLatency: 20, PageBytes: 4096,
		ZeroFillOpt: zeroFill, ZeroFillLatency: 48,
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestL2CatchesL1Evictions(t *testing.T) {
	h := mkHierarchy(t, false)
	// Touch 1024 distinct lines (64KB, exceeds 32KB L1 but fits 512KB L2).
	for i := 0; i < 1024; i++ {
		h.Load(uint64(i), 0x100, uint64(0x100000+i*64))
	}
	// Re-touch the first line: L1 evicted it, L2 still has it.
	r := h.Load(5000, 0x100, 0x100000)
	if r.Level != 2 {
		t.Errorf("re-touch level = %d, want 2 (L2 hit)", r.Level)
	}
}

func TestTLBMissAddsLatency(t *testing.T) {
	h := mkHierarchy(t, false)
	r1 := h.Load(0, 0x100, 0x40000) // cold: TLB miss too
	h.Load(1, 0x100, 0x40000)
	// New page, line in L2? No - different address. Compare same access
	// warm vs cold TLB by touching many pages to evict the first.
	if r1.Latency == 0 {
		t.Fatal("zero latency")
	}
	s := h.Stats()
	if s.DTLBMiss == 0 {
		t.Error("no DTLB misses recorded")
	}
}

func TestZeroFillOptimization(t *testing.T) {
	// Sequential cold reads over an untouched (uninitialized) buffer: with
	// the optimization, later pages are serviced without DRAM latency.
	run := func(zf bool) uint64 {
		h := mkHierarchy(t, zf)
		var total uint64
		for i := 0; i < 512; i++ {
			total += h.Load(uint64(i*10), 0x100, uint64(0x200000+i*64)).Latency
		}
		return total
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Errorf("zero-fill did not reduce cold-read cost: %d vs %d", with, without)
	}
}

func TestFetchUsesICache(t *testing.T) {
	h := mkHierarchy(t, false)
	h.Fetch(0, 0x1000)
	r := h.Fetch(1, 0x1000)
	if r.Level != 1 {
		t.Errorf("warm fetch level = %d, want 1", r.Level)
	}
	if h.Stats().L1I.Accesses != 2 {
		t.Errorf("L1I accesses = %d, want 2", h.Stats().L1I.Accesses)
	}
}

// Property: any sequence of accesses keeps at most one copy of a block per
// set and the recency stamps stay a strict order over the valid ways (LRU
// invariant: every valid way carries a distinct nonzero stamp no newer
// than the level's tick, and invalid ways are unstamped).
func TestLRUPermutationInvariant(t *testing.T) {
	cfg := l1Config()
	cfg.SizeKB = 1
	l := mkLevel(t, cfg, &fixedBackend{lat: 50})
	f := func(addrs []uint16) bool {
		for i, a := range addrs {
			l.Access(uint64(i), 0, uint64(a)*8, i%3 == 0)
		}
		for set := 0; set < l.sets; set++ {
			seen := map[uint64]bool{}
			for w := 0; w < l.assoc; w++ {
				st := l.lru[set*l.assoc+w]
				if !l.lines[set*l.assoc+w].valid() {
					if st != 0 {
						return false
					}
					continue
				}
				if st == 0 || st > l.lruTick || seen[st] {
					return false
				}
				seen[st] = true
			}
			// No duplicate tags among valid ways.
			tags := map[uint64]bool{}
			for w := 0; w < l.assoc; w++ {
				ln := l.lines[set*l.assoc+w]
				if ln.valid() {
					if tags[ln.tag()] {
						return false
					}
					tags[ln.tag()] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDRAMQueueing(t *testing.T) {
	d, err := dram.New(dram.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := d.Access(100, false)
	second := d.Access(100, false) // same cycle: queues behind the first
	if second <= first {
		t.Errorf("second access latency %d should exceed first %d", second, first)
	}
	// Far apart: no queueing.
	third := d.Access(10000, false)
	if third != first {
		t.Errorf("idle access latency %d, want %d", third, first)
	}
	if d.Stats().Reads != 3 {
		t.Errorf("reads = %d", d.Stats().Reads)
	}
}

func TestDRAMQueueBound(t *testing.T) {
	cfg := dram.DefaultConfig()
	d, _ := dram.New(cfg)
	var maxLat uint64
	for i := 0; i < 1000; i++ {
		if l := d.Access(0, false); l > maxLat {
			maxLat = l
		}
	}
	bound := uint64(cfg.LatencyCycles + (cfg.QueueDepth+1)*cfg.BurstCycles)
	if maxLat > bound {
		t.Errorf("queueing latency %d exceeded bound %d", maxLat, bound)
	}
}
