package cache

import (
	"fmt"

	"racesim/internal/dram"
)

// HierarchyConfig describes a two-level cache hierarchy with TLBs and main
// memory, matching the Cortex-A53/A72 organisation (private L1I/L1D,
// unified L2, DRAM).
type HierarchyConfig struct {
	L1I  Config
	L1D  Config
	L2   Config
	DRAM dram.Config

	ITLBEntries    int
	DTLBEntries    int
	TLBMissLatency int
	PageBytes      int

	// ZeroFillOpt models the hardware behaviour the paper observed on
	// uninitialized arrays: once a zero page has been touched, further
	// cold misses to it are satisfied without a memory round trip.
	ZeroFillOpt     bool
	ZeroFillLatency int
}

// Validate reports configuration errors.
func (c HierarchyConfig) Validate() error {
	if err := c.L1I.Validate(); err != nil {
		return err
	}
	if err := c.L1D.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.ITLBEntries <= 0 || c.DTLBEntries <= 0 {
		return fmt.Errorf("cache: TLB entries must be positive (%d, %d)", c.ITLBEntries, c.DTLBEntries)
	}
	if c.TLBMissLatency < 0 {
		return fmt.Errorf("cache: TLBMissLatency = %d", c.TLBMissLatency)
	}
	if c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("cache: PageBytes %d must be a power of two", c.PageBytes)
	}
	if c.ZeroFillOpt && c.ZeroFillLatency <= 0 {
		return fmt.Errorf("cache: ZeroFillLatency = %d with ZeroFillOpt on", c.ZeroFillLatency)
	}
	return nil
}

// tlb is a small fully-associative TLB with LRU replacement.
type tlb struct {
	pages  []uint64
	lru    []uint8
	last   uint64 // most recently accessed page (biased); 0 before first access
	misses uint64
	hits   uint64
}

func newTLB(entries int) *tlb {
	t := &tlb{pages: make([]uint64, entries), lru: make([]uint8, entries)}
	for i := range t.lru {
		t.lru[i] = uint8(i)
	}
	return t
}

func (t *tlb) access(page uint64) bool {
	page++ // bias so page 0 is distinguishable from empty slots
	// Repeat access to the last page: it is resident (every access makes
	// its page resident) and already MRU, so the scan and the LRU update
	// are both no-ops.
	if page == t.last {
		t.hits++
		return true
	}
	t.last = page
	for i := range t.pages {
		if t.pages[i] == page {
			t.touch(i)
			t.hits++
			return true
		}
	}
	t.misses++
	victim := 0
	for i := range t.pages {
		if t.pages[i] == 0 {
			victim = i
			break
		}
		if t.lru[i] > t.lru[victim] {
			victim = i
		}
	}
	t.pages[victim] = page
	t.touch(victim)
	return false
}

func (t *tlb) touch(i int) {
	old := t.lru[i]
	if old == 0 {
		return // already MRU
	}
	for j := range t.lru {
		if t.lru[j] < old {
			t.lru[j]++
		}
	}
	t.lru[i] = 0
}

// dramBackend adapts the DRAM model to the Backend interface and applies
// the zero-fill page optimization: a page that has only ever been read is
// an OS zero page, and after its first touch the hardware satisfies
// further cold reads without a memory round trip. Writing a page gives it
// real contents and permanently disqualifies it.
type dramBackend struct {
	mem       *dram.DRAM
	cfg       *HierarchyConfig
	pageShift uint
	written   *pageSet
	zeroSeen  *pageSet
	zeroFills uint64
}

func (b *dramBackend) BackAccess(now uint64, pc, addr uint64, write, pf bool) AccessResult {
	page := addr >> b.pageShift
	if write {
		b.written.Add(page)
		return AccessResult{Latency: b.mem.Access(now, true), Level: 3}
	}
	if b.cfg.ZeroFillOpt && !b.written.Contains(page) {
		if b.zeroSeen.Contains(page) {
			b.zeroFills++
			return AccessResult{Latency: uint64(b.cfg.ZeroFillLatency), Level: 3}
		}
		b.zeroSeen.Add(page)
	}
	return AccessResult{Latency: b.mem.Access(now, false), Level: 3}
}

// HierarchyStats aggregates statistics across the hierarchy.
type HierarchyStats struct {
	L1I       Stats
	L1D       Stats
	L2        Stats
	DRAM      dram.Stats
	ITLBMiss  uint64
	DTLBMiss  uint64
	ZeroFills uint64
}

// Hierarchy is a complete memory subsystem for one core.
type Hierarchy struct {
	cfg       HierarchyConfig
	l1i       *Level
	l1d       *Level
	l2        *Level
	mem       *dramBackend
	itlb      *tlb
	dtlb      *tlb
	pageShift uint
}

// NewHierarchy builds the hierarchy; cfg must be valid.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mem, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift < cfg.PageBytes {
		shift++
	}
	h := &Hierarchy{cfg: cfg, pageShift: shift}
	h.mem = &dramBackend{
		mem: mem, cfg: &h.cfg, pageShift: shift,
		written: newPageSet(), zeroSeen: newPageSet(),
	}
	h.l2, err = NewLevel(cfg.L2, 2, h.mem)
	if err != nil {
		return nil, err
	}
	h.l1d, err = NewLevel(cfg.L1D, 1, h.l2)
	if err != nil {
		return nil, err
	}
	h.l1i, err = NewLevel(cfg.L1I, 1, h.l2)
	if err != nil {
		return nil, err
	}
	h.itlb = newTLB(cfg.ITLBEntries)
	h.dtlb = newTLB(cfg.DTLBEntries)
	return h, nil
}

// Load services a data load at cycle now.
func (h *Hierarchy) Load(now uint64, pc, addr uint64) AccessResult {
	res := h.l1d.Access(now, pc, addr, false)
	if !h.dtlb.access(addr >> h.pageShift) {
		res.Latency += uint64(h.cfg.TLBMissLatency)
	}
	return res
}

// Store services a data store at cycle now. Store latency is the time to
// own the line; commit happens through the store buffer in the core model.
func (h *Hierarchy) Store(now uint64, pc, addr uint64) AccessResult {
	res := h.l1d.Access(now, pc, addr, true)
	if !h.dtlb.access(addr >> h.pageShift) {
		res.Latency += uint64(h.cfg.TLBMissLatency)
	}
	return res
}

// Fetch services an instruction fetch for the line containing pc.
func (h *Hierarchy) Fetch(now uint64, pc uint64) AccessResult {
	res := h.l1i.Access(now, pc, pc, false)
	if !h.itlb.access(pc >> h.pageShift) {
		res.Latency += uint64(h.cfg.TLBMissLatency)
	}
	return res
}

// L1D exposes the data cache level (for MSHR-aware core models).
func (h *Hierarchy) L1D() *Level { return h.l1d }

// Stats returns aggregated statistics.
func (h *Hierarchy) Stats() HierarchyStats {
	return HierarchyStats{
		L1I:       h.l1i.Stats(),
		L1D:       h.l1d.Stats(),
		L2:        h.l2.Stats(),
		DRAM:      h.mem.mem.Stats(),
		ITLBMiss:  h.itlb.misses,
		DTLBMiss:  h.dtlb.misses,
		ZeroFills: h.mem.zeroFills,
	}
}
