package cache

// pageSetChunkPages is the number of page-granular bits per chunk:
// 64 words x 64 bits = 4096 pages, i.e. 16 MiB of address space at 4 KiB
// pages per map entry.
const pageSetChunkPages = 4096

type pageSetChunk [pageSetChunkPages / 64]uint64

// pageSet is a sparse set of page numbers stored as chunked bitsets. The
// replay hot path touches the same few chunks over and over, so the last
// chunk is cached to skip the map on consecutive hits; memory is one bit
// per page within any 16 MiB region ever touched, instead of one
// map[uint64]bool entry per page.
type pageSet struct {
	lastKey uint64
	last    *pageSetChunk
	chunks  map[uint64]*pageSetChunk
}

func newPageSet() *pageSet {
	return &pageSet{lastKey: ^uint64(0), chunks: make(map[uint64]*pageSetChunk, 4)}
}

// Contains reports whether page is in the set.
func (s *pageSet) Contains(page uint64) bool {
	key := page / pageSetChunkPages
	c := s.last
	if key != s.lastKey {
		c = s.chunks[key]
		if c == nil {
			return false
		}
		s.lastKey, s.last = key, c
	}
	bit := page % pageSetChunkPages
	return c[bit/64]>>(bit%64)&1 != 0
}

// Add inserts page into the set.
func (s *pageSet) Add(page uint64) {
	key := page / pageSetChunkPages
	c := s.last
	if key != s.lastKey {
		c = s.chunks[key]
		if c == nil {
			c = new(pageSetChunk)
			s.chunks[key] = c
		}
		s.lastKey, s.last = key, c
	}
	bit := page % pageSetChunkPages
	c[bit/64] |= 1 << (bit % 64)
}
