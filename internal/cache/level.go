package cache

import (
	"fmt"
	"math/bits"

	"racesim/internal/prefetch"
)

// AccessResult reports how an access was serviced.
type AccessResult struct {
	// Latency is the total load-to-use latency in cycles.
	Latency uint64
	// Level is the hierarchy level that supplied the data: 1 for an L1
	// hit, 2 for L2, 3 for memory (0 is returned for pure write-through
	// stores that complete in a store buffer).
	Level int
}

// Backend services the misses of a Level: the next cache level or memory.
type Backend interface {
	// BackAccess services a line request. now is the issue cycle, pc the
	// requesting instruction, write whether the line will be written, pf
	// whether this is a prefetch (prefetches must not recursively train
	// prefetchers).
	BackAccess(now uint64, pc, addr uint64, write, pf bool) AccessResult
}

// Stats counts per-level events.
type Stats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	Reads          uint64
	Writes         uint64
	Evictions      uint64
	Writebacks     uint64
	VictimHits     uint64
	PrefetchIssued uint64
	PrefetchUseful uint64
	PortStalls     uint64 // cycles lost to port contention
}

// MissRate returns misses/accesses.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MPKI returns misses per kilo-instruction.
func (s *Stats) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) / float64(instructions) * 1000
}

// line packs one cache line into a single word: the block address
// (addr >> lineBits) in the low 61 bits, valid/dirty/prefetched flags in
// the top three. Physical block addresses never approach 61 bits, and the
// packing halves the tag-array footprint — under lane-batched replay a
// dozen simulated hierarchies compete for the host cache, so tag scans are
// bandwidth-bound. A hit test is one masked compare (flags stripped, valid
// required), not separate flag and tag loads.
type line uint64

const (
	lineValid      line = 1 << 63
	lineDirty      line = 1 << 62
	linePrefetched line = 1 << 61
	lineFlagMask        = lineDirty | linePrefetched
	lineTagMask         = linePrefetched - 1
)

func (ln line) valid() bool      { return ln&lineValid != 0 }
func (ln line) dirty() bool      { return ln&lineDirty != 0 }
func (ln line) prefetched() bool { return ln&linePrefetched != 0 }
func (ln line) tag() uint64      { return uint64(ln & lineTagMask) }

// matches reports a hit for block: valid with the same tag, any flags.
func (ln line) matches(block uint64) bool {
	return ln&^lineFlagMask == line(block)|lineValid
}

func newLine(block uint64, dirty, prefetched bool) line {
	ln := line(block) | lineValid
	if dirty {
		ln |= lineDirty
	}
	if prefetched {
		ln |= linePrefetched
	}
	return ln
}

// Level is one set-associative cache level.
type Level struct {
	cfg      Config
	levelID  int
	sets     int
	setMask  uint64 // sets-1 (sets are validated powers of two)
	assoc    int
	lineBits uint
	hitLat   uint64 // HitLatency plus the TagDataSerial extra cycle

	// Last-hit hint: lookup checks lines[lastIdx] first when the block
	// matches. Self-validating (the line's tag and valid bit are
	// re-checked), so it never needs invalidation and never changes
	// results — it only skips the way scan for repeat accesses.
	lastBlock uint64
	lastIdx   int32
	lastSet   int32
	lastWay   int32
	lines    []line
	lru      []uint64 // access stamp per way (max = MRU; see touch)
	lruTick  uint64
	fill     []uint16 // valid lines per set (monotone: lines never invalidate)
	plru     []uint32
	rng      uint64

	victim     []line
	victimLRU  []uint8
	pf         prefetch.Prefetcher
	pfNone     bool // disabled prefetcher: skip training entirely
	next       Backend
	stats      Stats
	portCycle  uint64
	portsUsed  int
	inPrefetch bool // reentrancy guard
}

// NewLevel builds a cache level; cfg must be valid. levelID is its depth
// (1 = closest to the core).
func NewLevel(cfg Config, levelID int, next Backend) (*Level, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("cache %s: nil backend", cfg.Name)
	}
	pf, err := prefetch.New(cfg.Prefetch, cfg.LineSize)
	if err != nil {
		return nil, err
	}
	l := &Level{
		cfg:      cfg,
		levelID:  levelID,
		sets:     cfg.Sets(),
		setMask:  uint64(cfg.Sets() - 1),
		assoc:    cfg.Assoc,
		hitLat:   uint64(cfg.HitLatency),
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		lines:    make([]line, cfg.Sets()*cfg.Assoc),
		lru:      make([]uint64, cfg.Sets()*cfg.Assoc),
		fill:     make([]uint16, cfg.Sets()),
		plru:     make([]uint32, cfg.Sets()),
		rng:      0x9E3779B97F4A7C15,
		victim:   make([]line, cfg.VictimEntries),
		pf:       pf,
		pfNone:   cfg.Prefetch.Kind == prefetch.KindNone,
		next:     next,
	}
	if cfg.TagDataSerial {
		l.hitLat++
	}
	if cfg.VictimEntries > 0 {
		l.victimLRU = make([]uint8, cfg.VictimEntries)
		for i := range l.victimLRU {
			l.victimLRU[i] = uint8(i)
		}
	}
	return l, nil
}

// Stats returns accumulated counters.
func (l *Level) Stats() Stats { return l.stats }

// Config returns the level's configuration.
func (l *Level) Config() Config { return l.cfg }

func (l *Level) block(addr uint64) uint64 { return addr >> l.lineBits }

// index computes the set index for a block address per the configured hash.
func (l *Level) index(block uint64) int {
	switch l.cfg.Hash {
	case HashXor:
		b := uint(bits.TrailingZeros(uint(l.sets)))
		return int((block ^ block>>b ^ block>>(2*b)) & l.setMask)
	case HashMersenne:
		m := uint64(l.sets - 1)
		if m == 0 {
			return 0
		}
		return int(block % m) // one set is sacrificed, as in prime-modulo schemes
	default:
		return int(block & l.setMask)
	}
}

func (l *Level) xorshift() uint64 {
	l.rng ^= l.rng << 13
	l.rng ^= l.rng >> 7
	l.rng ^= l.rng << 17
	return l.rng
}

func (l *Level) touch(set, way int) {
	switch l.cfg.Repl {
	case ReplPLRU:
		// Tree PLRU: flip internal nodes along the path away from `way`.
		node := 1
		lo, hi := 0, l.assoc
		treeBits := l.plru[set]
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if way < mid {
				treeBits |= 1 << uint(node) // point away (right)
				node = node * 2
				hi = mid
			} else {
				treeBits &^= 1 << uint(node) // point away (left)
				node = node*2 + 1
				lo = mid
			}
		}
		l.plru[set] = treeBits
	case ReplRandom:
		// no state
	default: // LRU
		// Timestamp LRU: a per-level tick orders accesses totally, so the
		// least-recently-used way is the minimum stamp. Replacement
		// decisions are identical to rank-based LRU (both evict by recency
		// order) but touching is a single store instead of an aging loop.
		l.lruTick++
		l.lru[set*l.assoc+way] = l.lruTick
	}
}

func (l *Level) victimWay(set int) int {
	base := set * l.assoc
	// Main-array lines are never invalidated (only victim-buffer entries
	// are), so sets fill monotonically: once full, skip the invalid scan.
	if int(l.fill[set]) < l.assoc {
		for w := 0; w < l.assoc; w++ {
			if !l.lines[base+w].valid() {
				return w
			}
		}
	}
	switch l.cfg.Repl {
	case ReplPLRU:
		node := 1
		lo, hi := 0, l.assoc
		treeBits := l.plru[set]
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if treeBits&(1<<uint(node)) != 0 {
				node = node*2 + 1
				lo = mid
			} else {
				node = node * 2
				hi = mid
			}
		}
		return lo
	case ReplRandom:
		return int(l.xorshift() % uint64(l.assoc))
	default:
		victim := 0
		for w := 1; w < l.assoc; w++ {
			if l.lru[base+w] < l.lru[base+victim] {
				victim = w
			}
		}
		return victim
	}
}

func (l *Level) lookup(block uint64) (set, way int, ok bool) {
	if block == l.lastBlock && l.lines[l.lastIdx].matches(block) {
		return int(l.lastSet), int(l.lastWay), true
	}
	set = l.index(block)
	base := set * l.assoc
	for w := 0; w < l.assoc; w++ {
		if l.lines[base+w].matches(block) {
			l.lastBlock, l.lastIdx = block, int32(base+w)
			l.lastSet, l.lastWay = int32(set), int32(w)
			return set, w, true
		}
	}
	return set, -1, false
}

// victimLookup checks the victim buffer; on hit the entry is removed and
// returned for reinsertion into the main array.
func (l *Level) victimLookup(block uint64) (line, bool) {
	for i := range l.victim {
		if l.victim[i].matches(block) {
			ln := l.victim[i]
			l.victim[i] &^= lineValid
			return ln, true
		}
	}
	return 0, false
}

func (l *Level) victimInsert(ln line) {
	if len(l.victim) == 0 || !ln.valid() {
		return
	}
	oldest := 0
	for i := range l.victim {
		if !l.victim[i].valid() {
			oldest = i
			break
		}
		if l.victimLRU[i] > l.victimLRU[oldest] {
			oldest = i
		}
	}
	l.victim[oldest] = ln
	old := l.victimLRU[oldest]
	for i := range l.victimLRU {
		if l.victimLRU[i] < old {
			l.victimLRU[i]++
		}
	}
	l.victimLRU[oldest] = 0
}

// portDelay models access-port bandwidth: the (Ports+1)-th access in the
// same cycle slips to the next cycle.
func (l *Level) portDelay(now uint64) uint64 {
	if now != l.portCycle {
		l.portCycle = now
		l.portsUsed = 0
	}
	l.portsUsed++
	if l.portsUsed <= l.cfg.Ports {
		return 0
	}
	d := uint64((l.portsUsed - 1) / l.cfg.Ports)
	l.stats.PortStalls += d
	return d
}

// insert places a block, evicting as needed, and returns eviction cost
// bookkeeping (writebacks are counted, not charged to the demand access).
func (l *Level) insert(now uint64, pc uint64, block uint64, dirty, prefetched bool) {
	set := l.index(block)
	way := l.victimWay(set)
	base := set * l.assoc
	old := l.lines[base+way]
	if old.valid() {
		l.stats.Evictions++
		if old.dirty() && l.cfg.WriteBack {
			l.stats.Writebacks++
			l.next.BackAccess(now, pc, old.tag()<<l.lineBits, true, true)
		}
		l.victimInsert(old)
	} else {
		l.fill[set]++
	}
	l.lines[base+way] = newLine(block, dirty, prefetched)
	l.lastBlock, l.lastIdx = block, int32(base+way)
	l.lastSet, l.lastWay = int32(set), int32(way)
	l.touch(set, way)
}

// Probe reports whether addr would hit in this level (including its victim
// buffer) without changing any observable state (no LRU update, no stats;
// only the self-validating lookup hint may move).
func (l *Level) Probe(addr uint64) bool {
	block := l.block(addr)
	if _, _, ok := l.lookup(block); ok {
		return true
	}
	for i := range l.victim {
		if l.victim[i].matches(block) {
			return true
		}
	}
	return false
}

// Access services a demand access and returns its latency and source level.
func (l *Level) Access(now uint64, pc, addr uint64, write bool) AccessResult {
	return l.access(now, pc, addr, write, false)
}

// BackAccess implements Backend so levels can stack.
func (l *Level) BackAccess(now uint64, pc, addr uint64, write, pf bool) AccessResult {
	return l.access(now, pc, addr, write, pf)
}

func (l *Level) access(now uint64, pc, addr uint64, write, pf bool) AccessResult {
	block := l.block(addr)
	l.stats.Accesses++
	if write {
		l.stats.Writes++
	} else {
		l.stats.Reads++
	}
	lat := l.hitLat + l.portDelay(now)

	set, way, hit := l.lookup(block)
	if hit {
		l.stats.Hits++
		base := set * l.assoc
		ln := &l.lines[base+way]
		if ln.prefetched() {
			l.stats.PrefetchUseful++
			*ln &^= linePrefetched
		}
		if write {
			if l.cfg.WriteBack {
				*ln |= lineDirty
			} else {
				l.next.BackAccess(now+lat, pc, addr, true, true) // write-through traffic
			}
		}
		l.touch(set, way)
		if !pf {
			l.runPrefetcher(now, pc, block, false)
		}
		return AccessResult{Latency: lat, Level: l.levelID}
	}

	// Victim buffer probe.
	if ln, ok := l.victimLookup(block); ok {
		l.stats.Hits++
		l.stats.VictimHits++
		lat++ // extra cycle for the side buffer
		dirty := ln.dirty()
		if write {
			dirty = dirty || l.cfg.WriteBack
			if !l.cfg.WriteBack {
				l.next.BackAccess(now+lat, pc, addr, true, true)
			}
		}
		l.insert(now, pc, block, dirty, false)
		if !pf {
			l.runPrefetcher(now, pc, block, false)
		}
		return AccessResult{Latency: lat, Level: l.levelID}
	}

	// Miss.
	l.stats.Misses++
	allocate := !write || l.cfg.WriteAllocate
	res := l.next.BackAccess(now+lat, pc, addr, write && !allocate, pf)
	total := lat + res.Latency
	if allocate {
		l.insert(now, pc, block, write && l.cfg.WriteBack, pf)
		if write && !l.cfg.WriteBack {
			l.next.BackAccess(now+total, pc, addr, true, true)
		}
	}
	if !pf {
		l.runPrefetcher(now, pc, block, true)
	}
	return AccessResult{Latency: total, Level: res.Level}
}

// runPrefetcher trains the prefetcher on a demand access and issues any
// requested prefetches into this level.
func (l *Level) runPrefetcher(now uint64, pc, block uint64, miss bool) {
	if l.pfNone || l.inPrefetch {
		return
	}
	targets := l.pf.Observe(pc, block<<l.lineBits, miss)
	if len(targets) == 0 {
		return
	}
	l.inPrefetch = true
	defer func() { l.inPrefetch = false }()
	for _, t := range targets {
		tb := l.block(t)
		if _, _, ok := l.lookup(tb); ok {
			continue
		}
		l.stats.PrefetchIssued++
		l.next.BackAccess(now, pc, t, false, true)
		l.insert(now, pc, tb, false, true)
	}
}
