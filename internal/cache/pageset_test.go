package cache

import "testing"

func TestPageSet(t *testing.T) {
	s := newPageSet()
	// Pages spanning several chunks, including chunk boundaries and page 0.
	pages := []uint64{0, 1, 63, 64, pageSetChunkPages - 1, pageSetChunkPages,
		3 * pageSetChunkPages, 1 << 40}
	for _, p := range pages {
		if s.Contains(p) {
			t.Fatalf("page %d present before Add", p)
		}
	}
	for _, p := range pages {
		s.Add(p)
	}
	for _, p := range pages {
		if !s.Contains(p) {
			t.Fatalf("page %d missing after Add", p)
		}
	}
	// Neighbours of added pages stay absent (bit granularity, and the
	// cached-last-chunk fast path must not leak across chunks).
	for _, p := range []uint64{2, 62, 65, pageSetChunkPages + 1, 2 * pageSetChunkPages, 1<<40 + 1} {
		if s.Contains(p) {
			t.Fatalf("page %d unexpectedly present", p)
		}
	}
	// Re-adding is idempotent.
	s.Add(64)
	if !s.Contains(64) {
		t.Fatal("page 64 lost after re-add")
	}
}
