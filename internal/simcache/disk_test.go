package simcache

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"racesim/internal/sim"
)

// seededSnapshot simulates one unit and saves a snapshot, returning its
// path and the pristine bytes.
func seededSnapshot(t *testing.T) (string, []byte) {
	t.Helper()
	c := New()
	if _, err := c.Run(sim.PublicA53(), testTrace(t, "MD")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// seededJSONSnapshot is seededSnapshot in the legacy JSON format.
func seededJSONSnapshot(t *testing.T) (string, []byte) {
	t.Helper()
	c := New()
	if _, err := c.Run(sim.PublicA53(), testTrace(t, "MD")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := c.SaveFileJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestLoadFileStaleFormatIsTypedCondition(t *testing.T) {
	// Binary snapshot from a future format generation: bump the version
	// word in the header.
	path, data := seededSnapshot(t)
	future := append([]byte(nil), data...)
	future[4], future[5], future[6], future[7] = 99, 0, 0, 0
	if err := os.WriteFile(path, future, 0o644); err != nil {
		t.Fatal(err)
	}
	c := New()
	n, err := c.LoadFile(path)
	var stale *StaleFormatError
	if !errors.As(err, &stale) {
		t.Fatalf("stale binary snapshot load error = %v, want a *StaleFormatError", err)
	}
	if stale.Path != path || stale.Format != 99 {
		t.Errorf("stale error carries %q format %d, want %q format 99", stale.Path, stale.Format, path)
	}
	if n != 0 || c.Stats().Entries != 0 {
		t.Errorf("stale snapshot loaded %d entries (%d cached); must start cold", n, c.Stats().Entries)
	}
	// LoadChecked surfaces the same typed condition for drivers.
	if _, _, err := c.LoadChecked(path); !errors.As(err, &stale) {
		t.Errorf("LoadChecked stale error = %v, want *StaleFormatError", err)
	}

	// Same condition for a legacy JSON snapshot declaring a future format.
	jpath, jdata := seededJSONSnapshot(t)
	var f file
	if err := json.Unmarshal(jdata, &f); err != nil {
		t.Fatal(err)
	}
	f.Format = 99
	rewritten, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, rewritten, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New().LoadFile(jpath); !errors.As(err, &stale) {
		t.Errorf("stale JSON snapshot load error = %v, want *StaleFormatError", err)
	}
}

func TestLoadFileTruncatedSnapshotErrors(t *testing.T) {
	// A truncated legacy JSON snapshot is unparseable and errors, naming
	// the file. (Truncated *binary* snapshots salvage instead — see
	// adversity_test.go.)
	path, data := seededJSONSnapshot(t)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	c := New()
	if _, err := c.LoadFile(path); err == nil {
		t.Error("truncated snapshot loaded without error")
	} else if !strings.Contains(err.Error(), path) {
		t.Errorf("truncation error does not name the file: %v", err)
	}
	if c.Stats().Entries != 0 {
		t.Error("truncated snapshot leaked entries into the cache")
	}
}

func TestLoadFileGarbageSnapshotErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("\x00\x01 not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New()
	if _, err := c.LoadFile(path); err == nil {
		t.Error("garbage snapshot loaded without error")
	}
}

func TestLoadFileCorruptedEntryRejectedCounted(t *testing.T) {
	// JSON snapshots verify eagerly: the poisoned entry is rejected and
	// counted at load time.
	jpath, jdata := seededJSONSnapshot(t)
	poisoned, err := PoisonSnapshot(jdata)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, poisoned, 0o644); err != nil {
		t.Fatal(err)
	}
	c := New()
	accepted, rejected, err := c.LoadChecked(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if rejected != 1 {
		t.Errorf("LoadChecked reported %d rejected, want 1", rejected)
	}
	if accepted != 0 {
		t.Errorf("the poisoned entry was accepted (%d)", accepted)
	}

	// Binary snapshots verify lazily: attach indexes the record, and the
	// corruption surfaces as a rejection (plus a re-simulation) on first
	// touch.
	bpath, bdata := seededSnapshot(t)
	bpoisoned, err := PoisonSnapshot(bdata)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bpath, bpoisoned, 0o644); err != nil {
		t.Fatal(err)
	}
	cb := New()
	if _, _, err := cb.LoadChecked(bpath); err != nil {
		t.Fatal(err)
	}
	want, err := sim.PublicA53().Run(testTrace(t, "MD"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := cb.Run(sim.PublicA53(), testTrace(t, "MD"))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("poisoned record served a wrong result instead of re-simulating")
	}
	if st := cb.Stats(); st.Rejected != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats after touching poisoned record = %+v, want 1 rejected, 1 miss", st)
	}
}

func TestSaveFileReplacesAtomically(t *testing.T) {
	// Two saves to the same path leave exactly the newest snapshot and no
	// temp-file litter (the crash-safety half — fsync before rename — is
	// not observable in-process, but litter and torn writes are).
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	c := New()
	if _, err := c.Run(sim.PublicA53(), testTrace(t, "MD")); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(sim.PublicA72(), testTrace(t, "MD")); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "snap.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory after two saves: %v, want only snap.json", names)
	}
	reload := New()
	if n, err := reload.LoadFile(path); err != nil || n != 2 {
		t.Errorf("reload: %d entries, err %v; want 2, nil", n, err)
	}
}
