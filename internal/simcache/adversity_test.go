package simcache

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"racesim/internal/sim"
	"racesim/internal/trace"
)

// Adversity coverage for the binary mmap read path: every way a
// checkpoint can be damaged — truncated mid-record, a flipped byte
// inside one record, a torn index tail — must degrade to serving
// exactly the records that still prove their checksums, never to a
// failed open or a wrong result.

// seededBinarySnapshot simulates the named units and saves a binary
// snapshot, returning its path, its bytes, and the cache that wrote it.
func seededBinarySnapshot(t *testing.T, names ...string) (string, []byte, *Cache) {
	t.Helper()
	c := New()
	for _, name := range names {
		if _, err := c.Run(sim.PublicA53(), testTrace(t, name)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data, c
}

// indexOffOf reads the record-region end out of the footer.
func indexOffOf(t *testing.T, data []byte) int {
	t.Helper()
	if len(data) < headerSize+footerSize {
		t.Fatal("snapshot too small")
	}
	return int(binary.LittleEndian.Uint64(data[len(data)-footerSize:]))
}

func TestMappedTruncatedFileSalvages(t *testing.T) {
	path, data, _ := seededBinarySnapshot(t, "MD", "CS1", "MIP")
	// Cut mid-way through the last record: the index and footer are gone
	// and the final record is structurally broken.
	if err := os.WriteFile(path, data[:indexOffOf(t, data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("truncated snapshot failed to open: %v", err)
	}
	defer m.Close()
	if !m.Salvaged() {
		t.Error("truncated snapshot did not report salvage")
	}
	if m.Count() != 2 {
		t.Fatalf("salvaged %d records, want the 2 intact ones", m.Count())
	}
	m.RangeKeys(func(key string, _ int) bool {
		if _, err := m.Get(key); err != nil {
			t.Errorf("salvaged record %q failed to decode: %v", key, err)
		}
		return true
	})

	// The cache-level load path serves the survivors and re-simulates
	// the lost record.
	c := New()
	if _, _, err := c.LoadChecked(path); err != nil {
		t.Fatalf("LoadChecked on truncated snapshot: %v", err)
	}
	if got := c.Stats().Entries; got != 2 {
		t.Errorf("cache entries = %d, want 2", got)
	}
}

func TestMappedFlippedRecordByteRejectsOnlyThatRecord(t *testing.T) {
	path, data, src := seededBinarySnapshot(t, "MD", "CS1", "MIP")
	poisoned, err := PoisonSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, poisoned, 0o644); err != nil {
		t.Fatal(err)
	}

	// The index is intact, so the open is a clean O(index) one — the
	// flipped byte surfaces lazily, on the first Get of that record.
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("poisoned snapshot failed to open: %v", err)
	}
	defer m.Close()
	if m.Salvaged() {
		t.Error("intact index should not trigger salvage")
	}
	bad := 0
	m.RangeKeys(func(key string, _ int) bool {
		if _, err := m.Get(key); err != nil {
			bad++
		} else if !m.Has(key) {
			t.Errorf("Has(%q) = false for a servable record", key)
		}
		return true
	})
	if bad != 1 {
		t.Fatalf("%d records rejected, want exactly the flipped one", bad)
	}

	// Through the cache: the poisoned record re-simulates (one miss, one
	// rejection), the other two hit disk, and every result matches the
	// pristine cache.
	c := New()
	if _, _, err := c.LoadChecked(path); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"MD", "CS1", "MIP"} {
		tr := testTrace(t, name)
		got, err := c.Run(sim.PublicA53(), tr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := src.Run(sim.PublicA53(), tr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: result diverged after poisoning", name)
		}
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Rejected != 1 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss, 1 rejected", st)
	}
}

func TestMappedTornIndexTailSalvages(t *testing.T) {
	path, data, _ := seededBinarySnapshot(t, "MD", "CS1", "MIP")
	// Tear bytes off the end: the records are all intact, but the footer
	// (and part of the index) is gone — the crash window of a writer
	// that died between the record flush and the rename.
	if err := os.WriteFile(path, data[:len(data)-footerSize-5], 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("torn-index snapshot failed to open: %v", err)
	}
	defer m.Close()
	if !m.Salvaged() {
		t.Error("torn index did not report salvage")
	}
	if m.Count() != 3 {
		t.Fatalf("salvaged %d records, want all 3 (records were intact)", m.Count())
	}
	m.RangeKeys(func(key string, _ int) bool {
		if _, err := m.Get(key); err != nil {
			t.Errorf("record %q failed after index tear: %v", key, err)
		}
		return true
	})
}

// TestMappedConcurrentReaders hammers one mapped snapshot — and the
// cache in front of it — from many goroutines. Run under -race in CI:
// the mmap read path and the lazy memory materialization it feeds must
// be data-race free.
func TestMappedConcurrentReaders(t *testing.T) {
	path, _, src := seededBinarySnapshot(t, "MD", "CS1", "MIP")
	c := New()
	if _, _, err := c.LoadChecked(path); err != nil {
		t.Fatal(err)
	}
	names := []string{"MD", "CS1", "MIP"}
	traces := map[string]*trace.Trace{}
	want := map[string]uint64{}
	for _, name := range names {
		traces[name] = testTrace(t, name)
		res, err := src.Run(sim.PublicA53(), traces[name])
		if err != nil {
			t.Fatal(err)
		}
		want[name] = res.Cycles
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, name := range names {
					res, err := c.Run(sim.PublicA53(), traces[name])
					if err != nil {
						t.Error(err)
						return
					}
					if res.Cycles != want[name] {
						t.Errorf("%s: cycles %d, want %d", name, res.Cycles, want[name])
						return
					}
				}
				// Raw mapped reads race the cache's materializing lookups.
				if m := c.Disk(); m != nil {
					m.RangeKeys(func(key string, _ int) bool {
						_, _ = m.Get(key)
						return true
					})
				}
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Misses != 0 {
		t.Errorf("concurrent warm reads missed: %+v", st)
	}
}
