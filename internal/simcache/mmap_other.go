//go:build !unix

package simcache

import "os"

// Non-unix fallback: read the file into the heap. Semantics match the
// mmap path exactly; only cold-open cost differs.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, false, err
	}
	return buf, false, nil
}

func unmapFile(data []byte, mapped bool) error {
	return nil
}
