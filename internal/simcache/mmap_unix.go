//go:build unix

package simcache

import (
	"os"
	"syscall"
)

// mapFile maps a file read-only. On mmap failure (exotic filesystems,
// resource limits) it falls back to reading the file into the heap —
// callers never see the difference beyond cold-open cost. The returned
// bool reports whether unmapFile must munmap.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err == nil {
		return data, true, nil
	}
	buf := make([]byte, size)
	if _, rerr := f.ReadAt(buf, 0); rerr != nil {
		return nil, false, rerr
	}
	return buf, false, nil
}

func unmapFile(data []byte, mapped bool) error {
	if !mapped {
		return nil
	}
	return syscall.Munmap(data)
}
