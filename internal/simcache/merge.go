package simcache

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file is the federation surface of the cache: snapshots as bytes
// (instead of files) plus a checksum-verified merge. The distributed
// sweep coordinator (internal/cluster) ships snapshots between workers
// over HTTP — pre-seeding a round, collecting per-worker deltas at drain
// — and `racesim cache merge` joins operator-held snapshot files. Every
// entry crossing a cache boundary re-proves its key-binding checksum, so
// a corrupted worker snapshot cannot poison the federated cache.
//
// Snapshots marshal in the binary format; every loader sniffs and also
// accepts the legacy JSON format, so merges may mix generations freely
// (LWW semantics are per-record and format-blind).

// Keys returns every key the cache can serve — materialized entries
// merged with the attached disk tier's index — sorted. The sorted order
// is the snapshot serialization order, so two caches with equal Keys()
// and equal entries marshal to identical bytes.
func (c *Cache) Keys() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	keys := make([]string, 0, len(c.entries))
	seen := make(map[string]bool, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
		seen[k] = true
	}
	disk := c.disk
	c.mu.Unlock()
	disk.RangeKeys(func(key string, _ int) bool {
		if !seen[key] {
			keys = append(keys, key)
		}
		return true
	})
	sort.Strings(keys)
	return keys
}

// Marshal serializes every stored result in the binary snapshot
// format — the same bytes SaveFile writes.
func (c *Cache) Marshal() ([]byte, error) {
	return c.MarshalFiltered(nil)
}

// MarshalFiltered serializes the snapshot, omitting keys for which skip
// returns true. A nil skip keeps everything. This is the delta-export
// primitive: a serve worker marshals with skip = "key was pre-seeded or
// on disk", so the coordinator receives only what the worker computed
// itself. Prefer WriteBinaryTo when a writer is available — it streams
// records instead of buffering the snapshot.
func (c *Cache) MarshalFiltered(skip func(key string) bool) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.WriteBinaryTo(&buf, skip); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// MarshalLegacyJSON serializes the snapshot in the legacy
// checksummed-JSON format — byte-identical to what pre-binary SaveFile
// wrote, for `racesim cache convert` round-trips. (Not named
// MarshalJSON: that would make *Cache a json.Marshaler and hijack any
// incidental json.Marshal of a struct embedding one.)
func (c *Cache) MarshalLegacyJSON() ([]byte, error) {
	if c == nil {
		return json.Marshal(file{Format: fileFormat})
	}
	src := c.entrySource(nil)
	f := file{Format: fileFormat, Entries: make([]entry, 0, len(src.keys))}
	for _, k := range src.keys {
		res, ok := src.fetch(k)
		if !ok {
			continue
		}
		sum, err := checksum(k, res)
		if err != nil {
			return nil, fmt.Errorf("simcache: %w", err)
		}
		f.Entries = append(f.Entries, entry{Key: k, Result: res, Sum: sum})
	}
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// LoadBytes merges snapshot bytes — either format, sniffed — into the
// cache with checksum verification and last-writer-wins semantics: an
// incoming entry that passes its checksum replaces a stored entry under
// the same key (the federation contract — for a deterministic simulator
// both sides hold the same result, so the overwrite is a no-op in
// value). Entries failing the checksum are dropped and counted in
// Stats.Rejected. A snapshot in an unknown format is an error: unlike a
// stale disk checkpoint, bytes handed to LoadBytes were produced by a
// peer that should speak a known format.
func (c *Cache) LoadBytes(data []byte) (added, replaced int, err error) {
	if c == nil {
		return 0, 0, fmt.Errorf("simcache: LoadBytes on a nil cache")
	}
	if IsBinarySnapshot(data) {
		return c.readBinaryStream(bytes.NewReader(data))
	}
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, 0, fmt.Errorf("simcache: snapshot: %w", err)
	}
	if f.Format != fileFormat {
		return 0, 0, fmt.Errorf("simcache: snapshot format %d, want %d", f.Format, fileFormat)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range f.Entries {
		sum, err := checksum(e.Key, e.Result)
		if err != nil || sum != e.Sum {
			c.rejected++
			continue
		}
		if c.insertLocked(e.Key, e.Result) {
			replaced++
		} else {
			added++
		}
	}
	return added, replaced, nil
}

// LoadStream merges a snapshot from r — either format, sniffed — with
// LoadBytes semantics, but without ever buffering the whole snapshot
// for the binary format: records are verified and merged one at a time.
// (The legacy JSON format has no streaming decoder; it buffers.)
func (c *Cache) LoadStream(r io.Reader) (added, replaced int, err error) {
	if c == nil {
		return 0, 0, fmt.Errorf("simcache: LoadStream on a nil cache")
	}
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(4)
	if err == nil && IsBinarySnapshot(magic) {
		return c.readBinaryStream(br)
	}
	data, rerr := io.ReadAll(br)
	if rerr != nil {
		return 0, 0, rerr
	}
	return c.LoadBytes(data)
}

// PoisonSnapshot returns a copy of snapshot bytes (either format) with
// one entry's checksum corrupted — a snapshot that parses cleanly but
// must lose exactly one entry to checksum rejection on load. It exists
// for the chaos injector and for tests proving that every snapshot
// consumer (LoadFile, LoadBytes, POST /v1/cache/snapshot) actually
// verifies checksums; an empty snapshot cannot be poisoned and errors.
func PoisonSnapshot(data []byte) ([]byte, error) {
	if IsBinarySnapshot(data) {
		return poisonBinary(data)
	}
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("simcache: poison: %w", err)
	}
	if len(f.Entries) == 0 {
		return nil, fmt.Errorf("simcache: poison: snapshot has no entries")
	}
	e := &f.Entries[len(f.Entries)/2]
	sum := []byte(e.Sum)
	// Flip one hex digit; the checksum is hex so '0' <-> 'f' always
	// changes the value.
	if sum[0] == 'f' {
		sum[0] = '0'
	} else {
		sum[0] = 'f'
	}
	e.Sum = string(sum)
	out, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// poisonBinary flips the last checksum byte of the middle record. The
// index still locates the record; its key-binding checksum no longer
// proves, so loaders reject exactly that record.
func poisonBinary(data []byte) ([]byte, error) {
	if len(data) < headerSize+footerSize {
		return nil, fmt.Errorf("simcache: poison: snapshot too small")
	}
	ftr := data[len(data)-footerSize:]
	if [4]byte(ftr[28:32]) != footerMagic {
		return nil, fmt.Errorf("simcache: poison: bad footer")
	}
	indexOff := binary.LittleEndian.Uint64(ftr[0:8])
	count := binary.LittleEndian.Uint64(ftr[8:16])
	if count == 0 {
		return nil, fmt.Errorf("simcache: poison: snapshot has no entries")
	}
	if indexOff < headerSize || indexOff+1+count*indexEntrySize > uint64(len(data)) {
		return nil, fmt.Errorf("simcache: poison: bad index bounds")
	}
	// Index entries are hash-sorted, not offset-sorted; the "middle"
	// record here is by index order, which is as good as any.
	p := indexOff + 1 + (count/2)*indexEntrySize
	off := binary.LittleEndian.Uint64(data[p+8 : p+16])
	size := binary.LittleEndian.Uint32(data[p+16 : p+20])
	if off+uint64(size) > indexOff || size < 9 {
		return nil, fmt.Errorf("simcache: poison: bad record bounds")
	}
	out := bytes.Clone(data)
	out[off+uint64(size)-1] ^= 0xff // last byte of the record's sum
	return out, nil
}

// Merge merges every entry of other into c, last-writer-wins on
// identical keys. The entries round-trip through the checksummed
// snapshot format, so the same verification that guards disk and
// network snapshots guards in-memory merges.
func (c *Cache) Merge(other *Cache) (added, replaced int, err error) {
	if c == nil {
		return 0, 0, fmt.Errorf("simcache: Merge into a nil cache")
	}
	if other == nil {
		return 0, 0, nil
	}
	data, err := other.Marshal()
	if err != nil {
		return 0, 0, err
	}
	return c.LoadBytes(data)
}
