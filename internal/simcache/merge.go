package simcache

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file is the federation surface of the cache: snapshots as bytes
// (instead of files) plus a checksum-verified merge. The distributed
// sweep coordinator (internal/cluster) ships snapshots between workers
// over HTTP — pre-seeding a round, collecting per-worker deltas at drain
// — and `racesim cache merge` joins operator-held snapshot files. Every
// entry crossing a cache boundary re-proves its key-binding checksum, so
// a corrupted worker snapshot cannot poison the federated cache.

// Keys returns the stored entry keys, sorted. The sorted order is the
// snapshot serialization order, so two caches with equal Keys() and
// equal entries marshal to identical bytes.
func (c *Cache) Keys() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Marshal serializes every stored result in the checksummed snapshot
// format — the same bytes SaveFile writes.
func (c *Cache) Marshal() ([]byte, error) {
	return c.MarshalFiltered(nil)
}

// MarshalFiltered serializes the snapshot, omitting keys for which skip
// returns true. A nil skip keeps everything. This is the delta-export
// primitive: a serve worker marshals with skip = "key was pre-seeded",
// so the coordinator receives only what the worker computed itself.
func (c *Cache) MarshalFiltered(skip func(key string) bool) ([]byte, error) {
	if c == nil {
		return json.Marshal(file{Format: fileFormat})
	}
	c.mu.Lock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		if skip != nil && skip(k) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f := file{Format: fileFormat, Entries: make([]entry, 0, len(keys))}
	var sumErr error
	for _, k := range keys {
		res := c.entries[k]
		sum, err := checksum(k, res)
		if err != nil {
			sumErr = err
			break
		}
		f.Entries = append(f.Entries, entry{Key: k, Result: res, Sum: sum})
	}
	c.mu.Unlock()
	if sumErr != nil {
		return nil, fmt.Errorf("simcache: %w", sumErr)
	}
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// LoadBytes merges snapshot bytes into the cache with checksum
// verification and last-writer-wins semantics: an incoming entry that
// passes its checksum replaces a stored entry under the same key (the
// federation contract — for a deterministic simulator both sides hold
// the same result, so the overwrite is a no-op in value). Entries
// failing the checksum are dropped and counted in Stats.Rejected. A
// snapshot in an unknown format is an error: unlike a stale disk
// checkpoint, bytes handed to LoadBytes were produced by a peer that
// should speak the current format.
func (c *Cache) LoadBytes(data []byte) (added, replaced int, err error) {
	if c == nil {
		return 0, 0, fmt.Errorf("simcache: LoadBytes on a nil cache")
	}
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, 0, fmt.Errorf("simcache: snapshot: %w", err)
	}
	if f.Format != fileFormat {
		return 0, 0, fmt.Errorf("simcache: snapshot format %d, want %d", f.Format, fileFormat)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range f.Entries {
		sum, err := checksum(e.Key, e.Result)
		if err != nil || sum != e.Sum {
			c.rejected++
			continue
		}
		if _, ok := c.entries[e.Key]; ok {
			replaced++
		} else {
			added++
		}
		c.entries[e.Key] = e.Result
	}
	return added, replaced, nil
}

// PoisonSnapshot returns a copy of snapshot bytes with one entry's
// checksum corrupted — a snapshot that parses cleanly but must lose
// exactly one entry to checksum rejection on load. It exists for the
// chaos injector and for tests proving that every snapshot consumer
// (LoadFile, LoadBytes, POST /v1/cache/snapshot) actually verifies
// checksums; an empty snapshot cannot be poisoned and errors.
func PoisonSnapshot(data []byte) ([]byte, error) {
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("simcache: poison: %w", err)
	}
	if len(f.Entries) == 0 {
		return nil, fmt.Errorf("simcache: poison: snapshot has no entries")
	}
	e := &f.Entries[len(f.Entries)/2]
	sum := []byte(e.Sum)
	// Flip one hex digit; the checksum is hex so '0' <-> 'f' always
	// changes the value.
	if sum[0] == 'f' {
		sum[0] = '0'
	} else {
		sum[0] = 'f'
	}
	e.Sum = string(sum)
	out, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Merge merges every entry of other into c, last-writer-wins on
// identical keys. The entries round-trip through the checksummed
// snapshot format, so the same verification that guards disk and
// network snapshots guards in-memory merges.
func (c *Cache) Merge(other *Cache) (added, replaced int, err error) {
	if c == nil {
		return 0, 0, fmt.Errorf("simcache: Merge into a nil cache")
	}
	if other == nil {
		return 0, 0, nil
	}
	data, err := other.Marshal()
	if err != nil {
		return 0, 0, err
	}
	return c.LoadBytes(data)
}
