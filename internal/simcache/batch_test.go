package simcache

import (
	"reflect"
	"testing"

	"racesim/internal/sim"
)

// batchConfigs is a mixed submission: both core kinds and both decoder
// variants (the presets ship with the decoder bug on), so RunBatch must
// split it across distinct column walks.
func batchConfigs() []sim.Config {
	a53fix := sim.PublicA53()
	a53fix.DecoderDepBug = false
	a72fix := sim.PublicA72()
	a72fix.DecoderDepBug = false
	return []sim.Config{sim.PublicA53(), a53fix, sim.PublicA72(), a72fix}
}

func TestRunBatchMatchesRun(t *testing.T) {
	tr := testTrace(t, "MD")
	cfgs := batchConfigs()

	c := New()
	rs, errs := c.RunBatch(cfgs, tr, BatchOptions{Lanes: 2})
	for i, cfg := range cfgs {
		if errs[i] != nil {
			t.Fatalf("config %d: %v", i, errs[i])
		}
		want, err := cfg.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, rs[i]) {
			t.Errorf("config %d (%s depbug=%v): batched result differs from sequential",
				i, cfg.Kind, cfg.DecoderDepBug)
		}
	}
	if st := c.Stats(); st.Misses != uint64(len(cfgs)) || st.Hits != 0 {
		t.Errorf("fresh batch: stats %+v, want %d misses and no hits", st, len(cfgs))
	}
}

func TestRunBatchHitsAndIntraBatchDuplicates(t *testing.T) {
	tr := testTrace(t, "MC")
	base := batchConfigs()

	c := New()
	// Warm one configuration through the sequential path.
	warm, err := c.Run(base[0], tr)
	if err != nil {
		t.Fatal(err)
	}

	// Submit it again alongside fresh work and an intra-batch duplicate.
	cfgs := []sim.Config{base[0], base[2], base[2], base[1]}
	rs, errs := c.RunBatch(cfgs, tr, BatchOptions{})
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("config %d: %v", i, errs[i])
		}
	}
	if !reflect.DeepEqual(rs[0], warm) {
		t.Error("stored entry changed through the batch path")
	}
	if !reflect.DeepEqual(rs[1], rs[2]) {
		t.Error("intra-batch duplicate slots disagree")
	}
	st := c.Stats()
	// base[0] hits, base[2] misses once (its duplicate waits on the
	// in-flight slot), base[1] misses.
	if st.Hits != 1 || st.Misses != 3 || st.Shared != 1 {
		t.Errorf("stats %+v, want 1 hit, 3 misses (1 warm + 2 batch), 1 shared", st)
	}
}

func TestRunBatchNilCache(t *testing.T) {
	tr := testTrace(t, "MD")
	cfgs := batchConfigs()
	var c *Cache
	rs, errs := c.RunBatch(cfgs, tr, BatchOptions{Lanes: 3})
	for i, cfg := range cfgs {
		if errs[i] != nil {
			t.Fatalf("config %d: %v", i, errs[i])
		}
		want, err := cfg.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, rs[i]) {
			t.Errorf("config %d: nil-cache batched result differs from sequential", i)
		}
	}
}

func TestRunBatchInvalidConfigPoisonsOnlyItsSlot(t *testing.T) {
	tr := testTrace(t, "MD")
	bad := sim.PublicA53()
	bad.Kind = "bogus"
	cfgs := []sim.Config{sim.PublicA53(), bad, sim.PublicA72()}

	c := New()
	rs, errs := c.RunBatch(cfgs, tr, BatchOptions{Lanes: 4})
	if errs[1] == nil {
		t.Fatal("invalid configuration did not error")
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("config %d poisoned by its neighbour: %v", i, errs[i])
		}
		want, err := cfgs[i].Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, rs[i]) {
			t.Errorf("config %d: fallback result differs from sequential", i)
		}
	}
	// The healthy slots must be stored despite the failed walk.
	if _, err := c.Run(cfgs[0], tr); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("healthy batch slot was not memoized: %+v", st)
	}
}

func TestRunBatchEmpty(t *testing.T) {
	c := New()
	rs, errs := c.RunBatch(nil, testTrace(t, "MD"), BatchOptions{})
	if len(rs) != 0 || len(errs) != 0 {
		t.Errorf("empty batch returned %d results, %d errors", len(rs), len(errs))
	}
}
