package simcache

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"racesim/internal/core"
)

// Mapped is the mmap-backed read path over a binary snapshot: Open maps
// the file and parses only the fixed-width index, so cold start is
// O(index) — a process sweeping 12 configs against a 10k-entry cache
// never decodes the other entries. Lookups binary-search the index,
// verify the candidate record's stored key (hash collisions are legal),
// and materialize a core.Result only on Get; the per-record checksum is
// re-proved at that moment, so a flipped byte on disk rejects exactly
// the record it hit.
//
// A Mapped is immutable after Open and safe for concurrent readers
// without locking — every method reads the mapping and the index, never
// writes. SaveFile renaming a new snapshot over the mapped path is also
// safe: the old inode stays mapped until Close.
type Mapped struct {
	path    string
	data    []byte
	mapped  bool // munmap needed on Close
	version uint32
	index   []idxEntry // sorted by (hash, offset)
	salvage bool       // index was rebuilt by a record scan
}

// OpenMapped maps the binary snapshot at path. A file whose footer or
// index is damaged (torn tail, truncation) is salvaged by a sequential
// record scan that stops at the first corrupt record — the snapshot
// yields every record written before the damage. A file that is not a
// binary snapshot at all returns an error; callers sniff the format
// first.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := int(info.Size())
	if size < headerSize {
		return nil, fmt.Errorf("simcache: %s: too small for a binary snapshot (%d bytes)", path, size)
	}
	data, mapped, err := mapFile(f, size)
	if err != nil {
		return nil, err
	}
	m := &Mapped{path: path, data: data, mapped: mapped}
	if !IsBinarySnapshot(data) {
		m.Close()
		return nil, fmt.Errorf("simcache: %s: not a binary snapshot", path)
	}
	m.version = binary.LittleEndian.Uint32(data[4:8])
	if m.version != binVersion {
		v := m.version
		m.Close()
		return nil, &StaleFormatError{Path: path, Format: int(v)}
	}
	if !m.loadIndex() {
		m.salvage = true
		m.index = salvageScan(data)
	}
	return m, nil
}

// loadIndex parses the footer and index, verifying the index checksum
// and that every entry points inside the record region. Any failure
// reports false and the caller falls back to a salvage scan.
func (m *Mapped) loadIndex() bool {
	data := m.data
	if len(data) < headerSize+footerSize {
		return false
	}
	ftr := data[len(data)-footerSize:]
	if [4]byte(ftr[28:32]) != footerMagic {
		return false
	}
	indexOff := binary.LittleEndian.Uint64(ftr[0:8])
	count := binary.LittleEndian.Uint64(ftr[8:16])
	indexEnd := uint64(len(data) - footerSize)
	if indexOff < headerSize || indexOff >= indexEnd {
		return false
	}
	if indexEnd-indexOff != 1+count*indexEntrySize {
		return false
	}
	if data[indexOff] != indexMarker {
		return false
	}
	sum := sha256.Sum256(data[indexOff:indexEnd])
	if [8]byte(ftr[16:24]) != [8]byte(sum[:8]) {
		return false
	}
	index := make([]idxEntry, count)
	p := indexOff + 1
	for i := range index {
		index[i].hash = binary.LittleEndian.Uint64(data[p : p+8])
		index[i].off = binary.LittleEndian.Uint64(data[p+8 : p+16])
		index[i].size = binary.LittleEndian.Uint32(data[p+16 : p+20])
		e := &index[i]
		if e.off < headerSize || e.off+uint64(e.size) > indexOff {
			return false
		}
		if i > 0 && (index[i-1].hash > e.hash ||
			(index[i-1].hash == e.hash && index[i-1].off > e.off)) {
			return false
		}
		p += indexEntrySize
	}
	m.index = index
	return true
}

// salvageScan rebuilds an index by walking records from the header
// forward, stopping at the first byte that does not parse as a record —
// the recovery path for truncated files and torn index tails. Checksum
// verification stays lazy (Get), matching the indexed path.
func salvageScan(data []byte) []idxEntry {
	var index []idxEntry
	off := headerSize
	for off < len(data) && data[off] == recordMarker {
		r, err := parseRecord(data[off:])
		if err != nil {
			break
		}
		index = append(index, idxEntry{hash: keyHash(r.key), off: uint64(off), size: uint32(r.size)})
		off += r.size
	}
	sort.Slice(index, func(i, j int) bool {
		if index[i].hash != index[j].hash {
			return index[i].hash < index[j].hash
		}
		return index[i].off < index[j].off
	})
	return index
}

// find locates the record for key, parsing only same-hash candidates.
func (m *Mapped) find(key string) (record, bool) {
	h := keyHash(key)
	i := sort.Search(len(m.index), func(i int) bool { return m.index[i].hash >= h })
	for ; i < len(m.index) && m.index[i].hash == h; i++ {
		e := m.index[i]
		r, err := parseRecord(m.data[e.off : e.off+uint64(e.size)])
		if err != nil {
			continue
		}
		if r.key == key {
			return r, true
		}
	}
	return record{}, false
}

// Has reports whether a record for key exists, without decoding or
// checksum-verifying it.
func (m *Mapped) Has(key string) bool {
	if m == nil {
		return false
	}
	_, ok := m.find(key)
	return ok
}

// Get materializes the result for key, verifying the record's checksum.
// A missing key and a corrupt record are both errors; callers that care
// about the difference use Has first.
func (m *Mapped) Get(key string) (core.Result, error) {
	if m == nil {
		return core.Result{}, fmt.Errorf("simcache: no mapped snapshot")
	}
	r, ok := m.find(key)
	if !ok {
		return core.Result{}, fmt.Errorf("simcache: %s: no record for key", m.path)
	}
	return r.decode()
}

// RangeKeys calls f for every indexed record's key and encoded size,
// in index (hash) order, until f returns false. Keys are parsed but
// results are not decoded.
func (m *Mapped) RangeKeys(f func(key string, size int) bool) {
	if m == nil {
		return
	}
	for _, e := range m.index {
		r, err := parseRecord(m.data[e.off : e.off+uint64(e.size)])
		if err != nil {
			continue
		}
		if !f(r.key, r.size) {
			return
		}
	}
}

// Count returns the number of indexed records.
func (m *Mapped) Count() int {
	if m == nil {
		return 0
	}
	return len(m.index)
}

// Version returns the snapshot's format version.
func (m *Mapped) Version() uint32 {
	if m == nil {
		return 0
	}
	return m.version
}

// IndexBytes returns the on-disk size of the index section.
func (m *Mapped) IndexBytes() int {
	if m == nil {
		return 0
	}
	return 1 + len(m.index)*indexEntrySize
}

// SizeBytes returns the mapped file size.
func (m *Mapped) SizeBytes() int {
	if m == nil {
		return 0
	}
	return len(m.data)
}

// Salvaged reports whether the index was rebuilt by a record scan
// because the footer or index section was damaged.
func (m *Mapped) Salvaged() bool {
	return m != nil && m.salvage
}

// Path returns the snapshot path this mapping was opened from.
func (m *Mapped) Path() string {
	if m == nil {
		return ""
	}
	return m.path
}

// Close unmaps the file. The Mapped must not be used afterwards.
func (m *Mapped) Close() error {
	if m == nil || m.data == nil {
		return nil
	}
	data, mapped := m.data, m.mapped
	m.data, m.index = nil, nil
	return unmapFile(data, mapped)
}
