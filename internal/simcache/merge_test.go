package simcache

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"racesim/internal/sim"
)

// populate runs a couple of distinct units so the cache has entries.
func populate(t *testing.T, c *Cache, names ...string) {
	t.Helper()
	for _, name := range names {
		if _, err := c.Run(sim.PublicA53(), testTrace(t, name)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMarshalLoadBytesRoundTrip(t *testing.T) {
	src := New()
	populate(t, src, "MD", "CS1")
	data, err := src.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	dst := New()
	added, replaced, err := dst.LoadBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 || replaced != 0 {
		t.Errorf("added %d replaced %d, want 2/0", added, replaced)
	}
	// A second load of the same bytes replaces in place (last-writer-wins).
	added, replaced, err = dst.LoadBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || replaced != 2 {
		t.Errorf("re-load: added %d replaced %d, want 0/2", added, replaced)
	}
	if dst.Stats().Entries != 2 {
		t.Errorf("entries = %d, want 2", dst.Stats().Entries)
	}

	// Marshal is deterministic: equal caches serialize to equal bytes.
	again, err := dst.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("round-tripped cache marshals to different bytes")
	}
}

func TestLoadBytesRejectsCorruption(t *testing.T) {
	src := New()
	res, err := src.Run(sim.PublicA53(), testTrace(t, "MD"))
	if err != nil {
		t.Fatal(err)
	}

	// Binary snapshot poisoned in transit: the record's key-binding
	// checksum no longer proves, so the merge drops exactly that record.
	data, err := src.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := PoisonSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	dst := New()
	added, _, err := dst.LoadBytes(poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Errorf("poisoned entry accepted (added %d)", added)
	}
	if st := dst.Stats(); st.Rejected != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 rejected, 0 entries", st)
	}

	// Legacy JSON snapshot with the cycle count flipped but the checksum
	// left stale, as corruption in transit would. The snapshot stays
	// valid JSON; only the entry's key binding is broken.
	jdata, err := src.MarshalLegacyJSON()
	if err != nil {
		t.Fatal(err)
	}
	old := `"Cycles": ` + strconv.FormatUint(res.Cycles, 10)
	mutated := strings.Replace(string(jdata), old, `"Cycles": `+strconv.FormatUint(res.Cycles+1, 10), 1)
	if mutated == string(jdata) {
		t.Fatalf("could not find %q in snapshot to poison", old)
	}
	if added, _, err := dst.LoadBytes([]byte(mutated)); err != nil || added != 0 {
		t.Errorf("poisoned JSON entry: added %d err %v, want 0, nil", added, err)
	}
	if st := dst.Stats(); st.Rejected != 2 {
		t.Errorf("rejected = %d, want 2", st.Rejected)
	}

	// Garbage and wrong-format snapshots are hard errors, not silent colds:
	// federation peers must speak a known format.
	if _, _, err := dst.LoadBytes([]byte("not json")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, _, err := dst.LoadBytes([]byte(`{"format": 999, "entries": []}`)); err == nil {
		t.Error("future-format snapshot accepted")
	}
}

func TestMergeLastWriterWins(t *testing.T) {
	a, b := New(), New()
	populate(t, a, "MD")
	populate(t, b, "MD", "CS1")

	added, replaced, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || replaced != 1 {
		t.Errorf("merge: added %d replaced %d, want 1/1", added, replaced)
	}
	if a.Stats().Entries != 2 {
		t.Errorf("entries = %d, want 2", a.Stats().Entries)
	}
	// Merging a nil or empty cache is a no-op.
	if added, replaced, err := a.Merge(nil); err != nil || added+replaced != 0 {
		t.Errorf("nil merge: %d/%d, %v", added, replaced, err)
	}
	if added, replaced, err := a.Merge(New()); err != nil || added+replaced != 0 {
		t.Errorf("empty merge: %d/%d, %v", added, replaced, err)
	}
}

func TestMarshalFilteredDelta(t *testing.T) {
	c := New()
	populate(t, c, "MD")
	baseline := map[string]bool{}
	for _, k := range c.Keys() {
		baseline[k] = true
	}
	populate(t, c, "CS1")

	delta, err := c.MarshalFiltered(func(key string) bool { return baseline[key] })
	if err != nil {
		t.Fatal(err)
	}
	dst := New()
	added, _, err := dst.LoadBytes(delta)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Errorf("delta carried %d entries, want exactly the post-baseline 1", added)
	}
	for _, k := range dst.Keys() {
		if baseline[k] {
			t.Errorf("delta leaked baseline key %s", k)
		}
	}
}

// TestMergeMixedFormats proves merge is format-blind: a cache holding
// entries loaded from a legacy JSON snapshot and one holding entries
// from a binary snapshot merge with the same last-writer-wins semantics
// as same-format merges, and the merged cache marshals identically to a
// cache built directly from the union.
func TestMergeMixedFormats(t *testing.T) {
	jsonSide := New()
	populate(t, jsonSide, "MD", "CS1")
	binSide := New()
	populate(t, binSide, "CS1", "MIP") // CS1 overlaps: exercised as LWW replace

	jsonBytes, err := jsonSide.MarshalLegacyJSON()
	if err != nil {
		t.Fatal(err)
	}
	binBytes, err := binSide.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	merged := New()
	if added, replaced, err := merged.LoadBytes(jsonBytes); err != nil || added != 2 || replaced != 0 {
		t.Fatalf("json load = (%d, %d, %v), want (2, 0, nil)", added, replaced, err)
	}
	if added, replaced, err := merged.LoadBytes(binBytes); err != nil || added != 1 || replaced != 1 {
		t.Fatalf("binary load = (%d, %d, %v), want (1, 1, nil)", added, replaced, err)
	}
	if got := merged.Stats().Entries; got != 3 {
		t.Errorf("merged entries = %d, want 3", got)
	}
	if got := merged.Stats().Rejected; got != 0 {
		t.Errorf("mixed merge rejected %d entries, want 0", got)
	}

	// The union built in one cache marshals to the same bytes.
	direct := New()
	populate(t, direct, "MD", "CS1", "MIP")
	wantBytes, err := direct.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := merged.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Error("mixed-format merge marshals differently from a directly built cache")
	}
}
