package simcache

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"racesim/internal/sim"
)

// populate runs a couple of distinct units so the cache has entries.
func populate(t *testing.T, c *Cache, names ...string) {
	t.Helper()
	for _, name := range names {
		if _, err := c.Run(sim.PublicA53(), testTrace(t, name)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMarshalLoadBytesRoundTrip(t *testing.T) {
	src := New()
	populate(t, src, "MD", "CS1")
	data, err := src.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	dst := New()
	added, replaced, err := dst.LoadBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 || replaced != 0 {
		t.Errorf("added %d replaced %d, want 2/0", added, replaced)
	}
	// A second load of the same bytes replaces in place (last-writer-wins).
	added, replaced, err = dst.LoadBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || replaced != 2 {
		t.Errorf("re-load: added %d replaced %d, want 0/2", added, replaced)
	}
	if dst.Stats().Entries != 2 {
		t.Errorf("entries = %d, want 2", dst.Stats().Entries)
	}

	// Marshal is deterministic: equal caches serialize to equal bytes.
	again, err := dst.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("round-tripped cache marshals to different bytes")
	}
}

func TestLoadBytesRejectsCorruption(t *testing.T) {
	src := New()
	res, err := src.Run(sim.PublicA53(), testTrace(t, "MD"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := src.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Flip the cycle count without refreshing the checksum, as corruption
	// in transit would. The snapshot stays valid JSON; only the entry's
	// key binding is broken.
	old := `"Cycles": ` + strconv.FormatUint(res.Cycles, 10)
	mutated := strings.Replace(string(data), old, `"Cycles": `+strconv.FormatUint(res.Cycles+1, 10), 1)
	if mutated == string(data) {
		t.Fatalf("could not find %q in snapshot to poison", old)
	}
	dst := New()
	added, _, err := dst.LoadBytes([]byte(mutated))
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Errorf("poisoned entry accepted (added %d)", added)
	}
	if st := dst.Stats(); st.Rejected != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 rejected, 0 entries", st)
	}

	// Garbage and wrong-format snapshots are hard errors, not silent colds:
	// federation peers must speak the current format.
	if _, _, err := dst.LoadBytes([]byte("not json")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, _, err := dst.LoadBytes([]byte(`{"format": 999, "entries": []}`)); err == nil {
		t.Error("future-format snapshot accepted")
	}
}

func TestMergeLastWriterWins(t *testing.T) {
	a, b := New(), New()
	populate(t, a, "MD")
	populate(t, b, "MD", "CS1")

	added, replaced, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || replaced != 1 {
		t.Errorf("merge: added %d replaced %d, want 1/1", added, replaced)
	}
	if a.Stats().Entries != 2 {
		t.Errorf("entries = %d, want 2", a.Stats().Entries)
	}
	// Merging a nil or empty cache is a no-op.
	if added, replaced, err := a.Merge(nil); err != nil || added+replaced != 0 {
		t.Errorf("nil merge: %d/%d, %v", added, replaced, err)
	}
	if added, replaced, err := a.Merge(New()); err != nil || added+replaced != 0 {
		t.Errorf("empty merge: %d/%d, %v", added, replaced, err)
	}
}

func TestMarshalFilteredDelta(t *testing.T) {
	c := New()
	populate(t, c, "MD")
	baseline := map[string]bool{}
	for _, k := range c.Keys() {
		baseline[k] = true
	}
	populate(t, c, "CS1")

	delta, err := c.MarshalFiltered(func(key string) bool { return baseline[key] })
	if err != nil {
		t.Fatal(err)
	}
	dst := New()
	added, _, err := dst.LoadBytes(delta)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Errorf("delta carried %d entries, want exactly the post-baseline 1", added)
	}
	for _, k := range dst.Keys() {
		if baseline[k] {
			t.Errorf("delta leaked baseline key %s", k)
		}
	}
}
