package simcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"

	"racesim/internal/core"
)

// fileFormat is bumped whenever the on-disk schema or the meaning of keys
// changes (e.g. a new tunable parameter alters config fingerprints only
// implicitly, but a Result field rename would not); mismatched snapshots
// are ignored wholesale.
const fileFormat = 1

// entry is one persisted simulation result. Sum binds the result to its
// key: sha256(key + canonical JSON of result). An entry whose checksum
// does not match — disk corruption, hand edits, or a Result schema drift —
// is rejected on load.
type entry struct {
	Key    string      `json:"key"`
	Result core.Result `json:"result"`
	Sum    string      `json:"sum"`
}

type file struct {
	Format  int     `json:"format"`
	Entries []entry `json:"entries"`
}

// checksum computes the key-binding digest of a stored result.
func checksum(key string, res core.Result) (string, error) {
	data, err := json.Marshal(res)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(key))
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ValidatePath reports whether path could plausibly be written by
// SaveFile: its parent must be an existing directory. Drivers call this
// before a long run so a typo'd -cache path fails up front instead of
// after the work is done.
func ValidatePath(path string) error {
	dir := filepath.Dir(path)
	info, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("simcache: cache directory %s: %w", dir, err)
	}
	if !info.IsDir() {
		return fmt.Errorf("simcache: cache directory %s is not a directory", dir)
	}
	return nil
}

// LoadChecked is the driver-facing load path shared by every binary:
// validate that path is plausibly writable (so a typo'd cache flag fails
// before hours of work, not after), merge the snapshot, and report both
// accepted and checksum-rejected entry counts so callers can warn about
// corruption without re-deriving it from Stats.
func (c *Cache) LoadChecked(path string) (accepted int, rejected uint64, err error) {
	if err := ValidatePath(path); err != nil {
		return 0, 0, err
	}
	before := c.Stats().Rejected
	n, err := c.LoadFile(path)
	if err != nil {
		return 0, 0, err
	}
	return n, c.Stats().Rejected - before, nil
}

// StaleFormatError reports a snapshot written in a different on-disk
// format generation. Loading one starts cold (the entries are never
// mis-read), but silently would look identical to "no snapshot": drivers
// are expected to detect it with errors.As and log that the snapshot was
// ignored, so an operator pointing a warm run at a pre-migration cache
// learns why every unit re-simulated.
type StaleFormatError struct {
	Path   string // the snapshot file
	Format int    // the format it declares
}

func (e *StaleFormatError) Error() string {
	return fmt.Sprintf("simcache: %s: snapshot format %d (current %d); ignoring it and starting cold",
		e.Path, e.Format, fileFormat)
}

// LoadFile merges a snapshot written by SaveFile into the cache. A missing
// file is not an error (first run is simply cold); a snapshot in a stale
// format loads nothing and returns a *StaleFormatError the caller can
// log or ignore. Entries failing the checksum are dropped and counted in
// Stats.Rejected; the number of accepted entries is returned.
func (c *Cache) LoadFile(path string) (int, error) {
	if c == nil {
		return 0, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("simcache: %s: %w", path, err)
	}
	if f.Format != fileFormat {
		// Stale schema: never mis-read the entries, but tell the caller
		// the snapshot was skipped instead of silently starting cold.
		return 0, &StaleFormatError{Path: path, Format: f.Format}
	}
	accepted := 0
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range f.Entries {
		sum, err := checksum(e.Key, e.Result)
		if err != nil || sum != e.Sum {
			c.rejected++
			continue
		}
		if _, ok := c.entries[e.Key]; !ok {
			c.entries[e.Key] = e.Result
			accepted++
		}
	}
	return accepted, nil
}

// SaveFile writes every stored result to path as checksummed JSON,
// atomically and durably: the temp file is fsynced before the rename and
// the parent directory after it, so a machine crash at any point leaves
// either the previous snapshot or the complete new one — never an empty
// or truncated file that a rename of unflushed data could persist.
func (c *Cache) SaveFile(path string) error {
	if c == nil {
		return nil
	}
	data, err := c.Marshal()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".simcache-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Some filesystems refuse to fsync directories; that is not a
// data-loss path (the rename itself is still atomic), so those errors
// are swallowed.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
