package simcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"

	"racesim/internal/core"
)

// fileFormat is the legacy checksummed-JSON snapshot generation; binary
// snapshots (binVersion) supersede it. SaveFile writes binary; loaders
// sniff and accept both, so pre-migration snapshots stay warm and
// `racesim cache convert` moves between them.
const fileFormat = 1

// entry is one persisted simulation result in the JSON format. Sum
// binds the result to its key: sha256(key + canonical JSON of result).
// An entry whose checksum does not match — disk corruption, hand edits,
// or a Result schema drift — is rejected on load.
type entry struct {
	Key    string      `json:"key"`
	Result core.Result `json:"result"`
	Sum    string      `json:"sum"`
}

type file struct {
	Format  int     `json:"format"`
	Entries []entry `json:"entries"`
}

// checksum computes the key-binding digest of a JSON-stored result.
func checksum(key string, res core.Result) (string, error) {
	data, err := json.Marshal(res)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(key))
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ValidatePath reports whether path could plausibly be written by
// SaveFile: its parent must be an existing directory. Drivers call this
// before a long run so a typo'd -cache path fails up front instead of
// after the work is done.
func ValidatePath(path string) error {
	dir := filepath.Dir(path)
	info, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("simcache: cache directory %s: %w", dir, err)
	}
	if !info.IsDir() {
		return fmt.Errorf("simcache: cache directory %s is not a directory", dir)
	}
	return nil
}

// LoadChecked is the driver-facing load path shared by every binary:
// validate that path is plausibly writable (so a typo'd cache flag fails
// before hours of work, not after), attach or merge the snapshot, and
// report both accepted and checksum-rejected entry counts so callers can
// warn about corruption without re-deriving it from Stats.
func (c *Cache) LoadChecked(path string) (accepted int, rejected uint64, err error) {
	if err := ValidatePath(path); err != nil {
		return 0, 0, err
	}
	before := c.Stats().Rejected
	n, err := c.LoadFile(path)
	if err != nil {
		return 0, 0, err
	}
	return n, c.Stats().Rejected - before, nil
}

// StaleFormatError reports a snapshot written in a different on-disk
// format generation. Loading one starts cold (the entries are never
// mis-read), but silently would look identical to "no snapshot": drivers
// are expected to detect it with errors.As and log that the snapshot was
// ignored, so an operator pointing a warm run at a pre-migration cache
// learns why every unit re-simulated.
type StaleFormatError struct {
	Path   string // the snapshot file
	Format int    // the format it declares
}

func (e *StaleFormatError) Error() string {
	return fmt.Sprintf("simcache: %s: snapshot format %d (current %d); ignoring it and starting cold",
		e.Path, e.Format, fileFormat)
}

// LoadFile loads a snapshot written by SaveFile into the cache, sniffing
// the format. A binary snapshot is attached as the mmap-backed disk
// tier — cold start parses only the index; records materialize on first
// touch — unless a tier is already attached, in which case its records
// stream-merge into memory. A legacy JSON snapshot is decoded and merged
// entry by entry. A missing file is not an error (first run is simply
// cold); a snapshot in a stale format loads nothing and returns a
// *StaleFormatError the caller can log or ignore. Entries failing the
// checksum are dropped and counted in Stats.Rejected (lazily, for the
// attached tier); the number of loaded entries is returned.
func (c *Cache) LoadFile(path string) (int, error) {
	if c == nil {
		return 0, nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var magic [4]byte
	n, _ := f.ReadAt(magic[:], 0)
	f.Close()
	if n == 4 && IsBinarySnapshot(magic[:]) {
		return c.loadBinaryFile(path)
	}
	return c.loadJSONFile(path)
}

// loadBinaryFile attaches (or merges) a binary snapshot.
func (c *Cache) loadBinaryFile(path string) (int, error) {
	m, err := OpenMapped(path)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	if c.disk == nil {
		c.disk = m
		c.shadowed = 0
		for k := range c.entries {
			if m.Has(k) {
				c.shadowed++
			}
		}
		n := m.Count()
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()
	// A disk tier is already attached: materialize this snapshot's
	// records into memory instead (checksum-verified record by record).
	defer m.Close()
	added, replaced := 0, 0
	m.RangeKeys(func(key string, _ int) bool {
		res, err := m.Get(key)
		if err != nil {
			c.countRejected()
			return true
		}
		if c.Store(key, res) {
			replaced++
		} else {
			added++
		}
		return true
	})
	return added + replaced, nil
}

// loadJSONFile merges a legacy JSON snapshot.
func (c *Cache) loadJSONFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("simcache: %s: %w", path, err)
	}
	if f.Format != fileFormat {
		// Stale schema: never mis-read the entries, but tell the caller
		// the snapshot was skipped instead of silently starting cold.
		return 0, &StaleFormatError{Path: path, Format: f.Format}
	}
	accepted := 0
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range f.Entries {
		sum, err := checksum(e.Key, e.Result)
		if err != nil || sum != e.Sum {
			c.rejected++
			continue
		}
		if _, ok := c.entries[e.Key]; !ok {
			c.insertLocked(e.Key, e.Result)
			accepted++
		}
	}
	return accepted, nil
}

// SaveFile streams every stored result (memory merged with the attached
// disk tier) to path in the binary snapshot format, atomically and
// durably: records stream to a temp file — the full snapshot never
// exists in memory — which is fsynced before the rename and the parent
// directory after it, so a machine crash at any point leaves either the
// previous snapshot or the complete new one. Renaming over a currently
// mapped snapshot is safe: the old inode stays mapped until Close.
func (c *Cache) SaveFile(path string) error {
	if c == nil {
		return nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".simcache-*")
	if err != nil {
		return err
	}
	if err := c.WriteBinaryTo(tmp, nil); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(filepath.Dir(path))
}

// SaveFileJSON writes the snapshot in the legacy checksummed-JSON
// format with the same atomicity and durability as SaveFile. It exists
// for `racesim cache convert` and for operators pinned to the readable
// format.
func (c *Cache) SaveFileJSON(path string) error {
	if c == nil {
		return nil
	}
	data, err := c.MarshalLegacyJSON()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".simcache-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Some filesystems refuse to fsync directories; that is not a
// data-loss path (the rename itself is still atomic), so those errors
// are swallowed.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
