package simcache

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"racesim/internal/core"
)

// Storage-tier benchmarks: cold open and lookup latency of the binary
// mmap-backed snapshot versus the legacy whole-file JSON decode, over a
// fixture big enough (10k entries) that the asymptotic difference —
// O(index) versus O(file) — dominates constant factors. The entries are
// fabricated (no simulation), so CI's 1-iteration bench smoke stays
// cheap. Recorded in BENCH_cache.json.

const fixtureEntries = 10_000

func fixtureKey(i int) string {
	// The "hex64:hex64" shape of real config-fingerprint:trace-digest
	// keys, so records use the packed 64-byte key form.
	return fmt.Sprintf("%064x:%064x", uint64(i), uint64(i)*2654435761)
}

func fixtureResult(i int) core.Result {
	var r core.Result
	r.Cycles = uint64(i)*97 + 13
	r.Instructions = uint64(i)*31 + 7
	r.StallData = uint64(i) % 1000
	return r
}

// buildFixture fabricates an n-entry cache and saves it in both
// formats, returning the two snapshot paths.
func buildFixture(b *testing.B, n int) (binPath, jsonPath string) {
	b.Helper()
	c := New()
	for i := 0; i < n; i++ {
		c.Store(fixtureKey(i), fixtureResult(i))
	}
	dir := b.TempDir()
	binPath = filepath.Join(dir, "snap.bin")
	jsonPath = filepath.Join(dir, "snap.json")
	if err := c.SaveFile(binPath); err != nil {
		b.Fatal(err)
	}
	if err := c.SaveFileJSON(jsonPath); err != nil {
		b.Fatal(err)
	}
	return binPath, jsonPath
}

func fileBytesPerEntry(b *testing.B, path string, entries int) float64 {
	b.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	return float64(fi.Size()) / float64(entries)
}

// BenchmarkSnapshotColdOpenMmap is the serve/sweep restart path: map
// the snapshot, parse only the index, resolve one lookup. Cost is
// O(index), independent of record bytes.
func BenchmarkSnapshotColdOpenMmap(b *testing.B) {
	binPath, _ := buildFixture(b, fixtureEntries)
	probe := fixtureKey(fixtureEntries / 2)
	want := fixtureResult(fixtureEntries / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := OpenMapped(binPath)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Get(probe)
		if err != nil {
			b.Fatal(err)
		}
		if res != want {
			b.Fatal("probe decoded wrong result")
		}
		m.Close()
	}
	b.StopTimer()
	b.ReportMetric(fileBytesPerEntry(b, binPath, fixtureEntries), "bytes_per_entry")
}

// BenchmarkSnapshotColdOpenJSON is the same restart against the legacy
// format: decode and checksum-verify every entry before the first
// lookup can be answered. Cost is O(file).
func BenchmarkSnapshotColdOpenJSON(b *testing.B) {
	_, jsonPath := buildFixture(b, fixtureEntries)
	probe := fixtureKey(fixtureEntries / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New()
		if _, _, err := c.LoadChecked(jsonPath); err != nil {
			b.Fatal(err)
		}
		if _, ok := c.Peek(probe); !ok {
			b.Fatal("probe missing after load")
		}
	}
	b.StopTimer()
	b.ReportMetric(fileBytesPerEntry(b, jsonPath, fixtureEntries), "bytes_per_entry")
}

// BenchmarkMappedLookup is the steady-state miss-check latency against
// an open mapped snapshot: hash, binary-search the index, verify the
// key, decode and checksum the record.
func BenchmarkMappedLookup(b *testing.B) {
	binPath, _ := buildFixture(b, fixtureEntries)
	m, err := OpenMapped(binPath)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Get(fixtureKey(i % fixtureEntries)); err != nil {
			b.Fatal(err)
		}
	}
}
