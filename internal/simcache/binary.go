package simcache

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"reflect"
	"sort"

	"racesim/internal/core"
)

// The binary columnar snapshot format. The JSON snapshot (format 1)
// decodes the whole file into memory before the first lookup; this
// format is built for the opposite access pattern — open in O(index),
// touch only the records a run actually asks for:
//
//	header   magic "RSCB" | version u32 | reserved u64          (16 B)
//	records  marker 'R' | keyform u8 | keylen uvarint |
//	         reslen uvarint | key bytes | result varints |
//	         sum [8]B  (truncated sha256 over key+result bytes)
//	index    marker 'I' | count*20 B: keyhash u64 | off u64 | len u32
//	         (sorted by keyhash, ties by offset)
//	footer   indexOff u64 | count u64 | indexSum [8]B |
//	         reserved u32 | magic "rscE"                        (32 B)
//
// Records are written sorted by key, so two caches holding equal
// entries serialize to identical bytes (the same determinism contract
// the JSON snapshot honors). The index is fixed-width and hash-sorted
// for binary search; the footer places it so a writer can stream
// records without knowing the total up front. Every record carries its
// own checksum binding result bytes to the key: one flipped byte
// rejects one record, never the file.
//
// Typical cache keys are "hex64:hex64" (config fingerprint x trace
// digest); keyform 1 packs those into 64 raw bytes. Results are flat
// trees of uint64 counters and encode as varints — field names never
// hit the disk, which is where the ~6x bytes/entry win over JSON
// comes from.

const (
	binVersion = 1

	keyformRaw    = 0 // key stored as its literal string bytes
	keyformHexHex = 1 // "hex64:hex64" packed into 64 raw bytes

	recordMarker = byte('R')
	indexMarker  = byte('I')

	headerSize    = 16
	footerSize    = 32
	indexEntrySize = 20
)

var (
	binMagic    = [4]byte{'R', 'S', 'C', 'B'}
	footerMagic = [4]byte{'r', 's', 'c', 'E'}
)

// IsBinarySnapshot reports whether data begins with the binary snapshot
// magic — the format sniff shared by every loader (disk snapshots,
// snapshot HTTP bodies, operator files).
func IsBinarySnapshot(data []byte) bool {
	return len(data) >= 4 && data[0] == binMagic[0] && data[1] == binMagic[1] &&
		data[2] == binMagic[2] && data[3] == binMagic[3]
}

// resultFields walks a core.Result as a flat sequence of uint64 fields
// in declaration order (nested structs and arrays depth-first). The
// walk is reflective so a Result schema change cannot silently skew the
// codec: a new field changes the field count, and mismatched counts
// reject the record like any other corruption.
func resultFields(v reflect.Value, f func(reflect.Value)) {
	switch v.Kind() {
	case reflect.Uint64:
		f(v)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			resultFields(v.Field(i), f)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			resultFields(v.Index(i), f)
		}
	default:
		panic(fmt.Sprintf("simcache: core.Result holds a %s field; the binary codec handles uint64 trees only", v.Kind()))
	}
}

// numResultFields is computed once; every record's field count must
// match it exactly.
var numResultFields = func() int {
	n := 0
	resultFields(reflect.ValueOf(core.Result{}), func(reflect.Value) { n++ })
	return n
}()

// appendResult encodes a result as a varint field-count followed by one
// varint per uint64 field.
func appendResult(buf []byte, res *core.Result) []byte {
	buf = binary.AppendUvarint(buf, uint64(numResultFields))
	resultFields(reflect.ValueOf(res).Elem(), func(v reflect.Value) {
		buf = binary.AppendUvarint(buf, v.Uint())
	})
	return buf
}

// decodeResult decodes appendResult's payload.
func decodeResult(data []byte) (core.Result, error) {
	var res core.Result
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return res, fmt.Errorf("simcache: result payload: bad field count")
	}
	if int(n) != numResultFields {
		return res, fmt.Errorf("simcache: result payload has %d fields, want %d", n, numResultFields)
	}
	data = data[used:]
	var derr error
	resultFields(reflect.ValueOf(&res).Elem(), func(v reflect.Value) {
		if derr != nil {
			return
		}
		x, used := binary.Uvarint(data)
		if used <= 0 {
			derr = fmt.Errorf("simcache: result payload: truncated varint")
			return
		}
		data = data[used:]
		v.SetUint(x)
	})
	if derr != nil {
		return core.Result{}, derr
	}
	if len(data) != 0 {
		return core.Result{}, fmt.Errorf("simcache: result payload: %d trailing bytes", len(data))
	}
	return res, nil
}

// packKey compresses a key for storage: "hex64:hex64" keys (the shape
// every real cache key has) pack to 64 raw bytes.
func packKey(key string) (form byte, payload []byte) {
	if len(key) == 129 && key[64] == ':' {
		fp, err1 := hex.DecodeString(key[:64])
		dg, err2 := hex.DecodeString(key[65:])
		if err1 == nil && err2 == nil {
			return keyformHexHex, append(fp, dg...)
		}
	}
	return keyformRaw, []byte(key)
}

// unpackKey inverts packKey.
func unpackKey(form byte, payload []byte) (string, error) {
	switch form {
	case keyformRaw:
		return string(payload), nil
	case keyformHexHex:
		if len(payload) != 64 {
			return "", fmt.Errorf("simcache: packed key payload is %d bytes, want 64", len(payload))
		}
		return hex.EncodeToString(payload[:32]) + ":" + hex.EncodeToString(payload[32:]), nil
	default:
		return "", fmt.Errorf("simcache: unknown key form %d", form)
	}
}

// recordSum is the per-record checksum: the first 8 bytes of
// sha256(canonical key || result payload). Binding the canonical string
// key (not the packed payload) means both key forms of the same key
// verify identically.
func recordSum(key string, resultPayload []byte) [8]byte {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write(resultPayload)
	var sum [8]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// keyHash is the index hash: FNV-1a over the canonical key string.
// Collisions are legal — lookups verify the record's stored key.
func keyHash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// appendRecord encodes one record (marker through checksum).
func appendRecord(buf []byte, key string, res *core.Result) []byte {
	form, payload := packKey(key)
	resBytes := appendResult(nil, res)
	buf = append(buf, recordMarker, form)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = binary.AppendUvarint(buf, uint64(len(resBytes)))
	buf = append(buf, payload...)
	buf = append(buf, resBytes...)
	sum := recordSum(key, resBytes)
	return append(buf, sum[:]...)
}

// record is one parsed (not yet verified) record.
type record struct {
	key      string
	resBytes []byte // aliases the input buffer
	sum      [8]byte
	size     int // total encoded bytes incl. marker
}

// parseRecord parses the record at data[0:]; data may extend past the
// record. It verifies structure only — checksum verification is the
// caller's (lazy) job.
func parseRecord(data []byte) (record, error) {
	var r record
	if len(data) < 2 || data[0] != recordMarker {
		return r, fmt.Errorf("simcache: not a record at this offset")
	}
	form := data[1]
	p := 2
	keyLen, used := binary.Uvarint(data[p:])
	if used <= 0 {
		return r, fmt.Errorf("simcache: record: bad key length")
	}
	p += used
	resLen, used := binary.Uvarint(data[p:])
	if used <= 0 {
		return r, fmt.Errorf("simcache: record: bad result length")
	}
	p += used
	if keyLen > uint64(len(data)) || resLen > uint64(len(data)) ||
		uint64(p)+keyLen+resLen+8 > uint64(len(data)) {
		return r, fmt.Errorf("simcache: record overruns the file")
	}
	key, err := unpackKey(form, data[p:p+int(keyLen)])
	if err != nil {
		return r, err
	}
	p += int(keyLen)
	r.key = key
	r.resBytes = data[p : p+int(resLen)]
	p += int(resLen)
	copy(r.sum[:], data[p:p+8])
	r.size = p + 8
	return r, nil
}

// verify re-proves the record's key-binding checksum.
func (r *record) verify() bool {
	return recordSum(r.key, r.resBytes) == r.sum
}

// decode materializes the record's result, verifying the checksum.
func (r *record) decode() (core.Result, error) {
	if !r.verify() {
		return core.Result{}, fmt.Errorf("simcache: record %q failed its checksum", r.key)
	}
	return decodeResult(r.resBytes)
}

// EncodeEntry encodes one (key, result) pair as a self-contained
// checksummed record — the wire format of the cluster cache tier's
// GET/PUT /v1/cache/entry/{key} bodies, identical to a snapshot record.
func EncodeEntry(key string, res core.Result) []byte {
	return appendRecord(nil, key, &res)
}

// DecodeEntry decodes EncodeEntry's bytes, verifying the record's
// key-binding checksum. Trailing bytes are an error: an entry body is
// exactly one record.
func DecodeEntry(data []byte) (string, core.Result, error) {
	r, err := parseRecord(data)
	if err != nil {
		return "", core.Result{}, err
	}
	if r.size != len(data) {
		return "", core.Result{}, fmt.Errorf("simcache: entry has %d trailing bytes", len(data)-r.size)
	}
	res, err := r.decode()
	if err != nil {
		return "", core.Result{}, err
	}
	return r.key, res, nil
}

// idxEntry is one fixed-width index entry.
type idxEntry struct {
	hash uint64
	off  uint64
	size uint32
}

// binaryEntrySource yields (key, result) pairs in sorted-key order for
// the binary writer — the merge of the in-memory entries and an
// attached disk tier.
type binaryEntrySource struct {
	keys  []string
	fetch func(key string) (core.Result, bool)
}

// WriteBinaryTo streams the cache (in-memory entries merged with any
// attached disk tier, minus keys for which skip returns true) to w in
// the binary snapshot format. Records stream one at a time — the full
// serialized snapshot never exists in memory; only the fixed-width
// index (20 bytes/entry) accumulates until the end.
func (c *Cache) WriteBinaryTo(w io.Writer, skip func(key string) bool) error {
	src := c.entrySource(skip)
	return writeBinary(w, src)
}

func writeBinary(w io.Writer, src binaryEntrySource) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [headerSize]byte
	copy(hdr[:4], binMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], binVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	off := uint64(headerSize)
	index := make([]idxEntry, 0, len(src.keys))
	var buf []byte
	for _, key := range src.keys {
		res, ok := src.fetch(key)
		if !ok {
			// Evicted between key enumeration and fetch, with no disk copy
			// to fall back on: the snapshot simply omits it.
			continue
		}
		buf = appendRecord(buf[:0], key, &res)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		index = append(index, idxEntry{hash: keyHash(key), off: off, size: uint32(len(buf))})
		off += uint64(len(buf))
	}
	sort.Slice(index, func(i, j int) bool {
		if index[i].hash != index[j].hash {
			return index[i].hash < index[j].hash
		}
		return index[i].off < index[j].off
	})
	indexOff := off
	ih := sha256.New()
	var ebuf [indexEntrySize]byte
	ih.Write([]byte{indexMarker})
	if err := bw.WriteByte(indexMarker); err != nil {
		return err
	}
	for _, e := range index {
		binary.LittleEndian.PutUint64(ebuf[0:8], e.hash)
		binary.LittleEndian.PutUint64(ebuf[8:16], e.off)
		binary.LittleEndian.PutUint32(ebuf[16:20], e.size)
		ih.Write(ebuf[:])
		if _, err := bw.Write(ebuf[:]); err != nil {
			return err
		}
	}
	var ftr [footerSize]byte
	binary.LittleEndian.PutUint64(ftr[0:8], indexOff)
	binary.LittleEndian.PutUint64(ftr[8:16], uint64(len(index)))
	copy(ftr[16:24], ih.Sum(nil)[:8])
	copy(ftr[28:32], footerMagic[:])
	if _, err := bw.Write(ftr[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// entrySource enumerates the cache's full key set (memory merged with
// the attached disk tier, skip applied) in sorted order with a fetch
// function resolving each key at write time. Holding c.mu only during
// enumeration and per-key fetch keeps long streaming writes from
// blocking concurrent simulations.
func (c *Cache) entrySource(skip func(key string) bool) binaryEntrySource {
	if c == nil {
		return binaryEntrySource{fetch: func(string) (core.Result, bool) { return core.Result{}, false }}
	}
	seen := map[string]bool{}
	var keys []string
	c.mu.Lock()
	for k := range c.entries {
		if skip != nil && skip(k) {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
	}
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		disk.RangeKeys(func(key string, _ int) bool {
			if !seen[key] && (skip == nil || !skip(key)) {
				keys = append(keys, key)
			}
			return true
		})
	}
	sort.Strings(keys)
	return binaryEntrySource{
		keys: keys,
		fetch: func(key string) (core.Result, bool) {
			c.mu.Lock()
			if ce, ok := c.entries[key]; ok {
				res := ce.res
				c.mu.Unlock()
				return res, true
			}
			c.mu.Unlock()
			if disk != nil {
				if res, err := disk.Get(key); err == nil {
					return res, true
				}
			}
			return core.Result{}, false
		},
	}
}

// readBinaryStream merges a binary snapshot from r into the cache
// record by record, never buffering the whole snapshot: each record is
// length-prefixed, so the reader pulls exactly one record at a time,
// verifies its checksum and merges it (last-writer-wins). The trailing
// index and footer are drained and discarded — a streamed merge needs
// no random access. Returns added/replaced counts like LoadBytes.
func (c *Cache) readBinaryStream(r io.Reader) (added, replaced int, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("simcache: binary snapshot header: %w", err)
	}
	if !IsBinarySnapshot(hdr[:]) {
		return 0, 0, fmt.Errorf("simcache: binary snapshot: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != binVersion {
		return 0, 0, fmt.Errorf("simcache: binary snapshot version %d, want %d", v, binVersion)
	}
	var buf []byte
	for {
		marker, err := br.ReadByte()
		if err == io.EOF {
			// A record stream with no index section (a streamed delta may
			// legally end after its records — see writeBinary callers that
			// stream to sockets); treat clean EOF as end of records.
			return added, replaced, nil
		}
		if err != nil {
			return added, replaced, err
		}
		if marker == indexMarker {
			// Drain the index + footer; a streaming merge has no use for
			// them and the source may be a socket.
			if _, err := io.Copy(io.Discard, br); err != nil {
				return added, replaced, err
			}
			return added, replaced, nil
		}
		if marker != recordMarker {
			return added, replaced, fmt.Errorf("simcache: binary snapshot: unexpected marker 0x%02x", marker)
		}
		form, err := br.ReadByte()
		if err != nil {
			return added, replaced, err
		}
		keyLen, err := binary.ReadUvarint(br)
		if err != nil {
			return added, replaced, err
		}
		resLen, err := binary.ReadUvarint(br)
		if err != nil {
			return added, replaced, err
		}
		if keyLen > 1<<20 || resLen > 1<<24 {
			return added, replaced, fmt.Errorf("simcache: binary snapshot: implausible record sizes (%d, %d)", keyLen, resLen)
		}
		need := int(keyLen) + int(resLen) + 8
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		if _, err := io.ReadFull(br, buf); err != nil {
			return added, replaced, err
		}
		key, err := unpackKey(form, buf[:keyLen])
		if err != nil {
			c.countRejected()
			continue
		}
		resBytes := buf[keyLen : keyLen+uint64(resLen)]
		var sum [8]byte
		copy(sum[:], buf[need-8:])
		if recordSum(key, resBytes) != sum {
			c.countRejected()
			continue
		}
		res, err := decodeResult(resBytes)
		if err != nil {
			c.countRejected()
			continue
		}
		if c.Store(key, res) {
			replaced++
		} else {
			added++
		}
	}
}

func (c *Cache) countRejected() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}
