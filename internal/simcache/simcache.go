// Package simcache memoizes simulation results across experiments and
// tuning races. A single (sim.Config, trace) pair is simulated at most
// once per cache: the key is the configuration's canonical-JSON
// fingerprint joined with the trace content digest, so any code path that
// re-evaluates a configuration the survivor set already measured — the
// experiment runner, the irace evaluator, the perturbation study — gets
// the stored core.Result back instead of re-running the timing model.
//
// The cache is safe for concurrent use and deduplicates in-flight work:
// when two workers ask for the same unit simultaneously, one simulates and
// the other blocks on the first result (singleflight). An optional
// JSON-on-disk snapshot (LoadFile/SaveFile) makes repeated `racesim
// experiments` runs warm across processes — and a `racesim serve` process
// holds one cache hot across every job it executes, no snapshot reload
// between requests; every persisted entry carries a checksum
// binding it to its key, so a corrupted or hand-edited entry is rejected
// on load rather than silently poisoning experiments.
//
// All methods are nil-receiver safe: a nil *Cache simply simulates every
// request, which lets callers thread "maybe a cache" through options
// structs without branching at each call site.
package simcache

import (
	"sync"

	"racesim/internal/core"
	"racesim/internal/sim"
	"racesim/internal/trace"
)

// Key identifies one simulation unit: a configuration fingerprint plus a
// trace content digest.
func Key(cfg sim.Config, tr *trace.Trace) string {
	return cfg.Fingerprint() + ":" + tr.Digest()
}

// Stats is a point-in-time snapshot of cache effectiveness. The JSON
// field names are part of the serve HTTP API (job results, /healthz).
type Stats struct {
	Hits     uint64 `json:"hits"`     // Run calls answered from memory
	Misses   uint64 `json:"misses"`   // Run calls that simulated
	Shared   uint64 `json:"shared"`   // Run calls that waited on an identical in-flight run
	Entries  int    `json:"entries"`  // distinct results currently stored
	Rejected uint64 `json:"rejected"` // persisted entries dropped by checksum mismatch
}

// HitRate returns (hits+shared)/(hits+misses+shared) — waiting on an
// identical in-flight run counts as a hit — or 0 before any lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Shared
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// inflight tracks one simulation in progress so duplicates can wait on it.
type inflight struct {
	done chan struct{}
	res  core.Result
	err  error
}

// Cache memoizes core.Results by simulation-unit key.
type Cache struct {
	mu       sync.Mutex
	entries  map[string]core.Result
	running  map[string]*inflight
	hits     uint64
	misses   uint64
	shared   uint64
	rejected uint64
}

// New returns an empty in-memory cache.
func New() *Cache {
	return &Cache{
		entries: make(map[string]core.Result),
		running: make(map[string]*inflight),
	}
}

// Run returns the memoized result for (cfg, tr), simulating on first use.
// A nil receiver runs the simulation directly.
func (c *Cache) Run(cfg sim.Config, tr *trace.Trace) (core.Result, error) {
	if c == nil {
		return cfg.Run(tr)
	}
	key := Key(cfg, tr)

	c.mu.Lock()
	if res, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return res, nil
	}
	if fl, ok := c.running[key]; ok {
		c.shared++
		c.mu.Unlock()
		<-fl.done
		return fl.res, fl.err
	}
	fl := &inflight{done: make(chan struct{})}
	c.running[key] = fl
	c.misses++
	c.mu.Unlock()

	fl.res, fl.err = cfg.Run(tr)

	c.mu.Lock()
	if fl.err == nil {
		c.entries[key] = fl.res
	}
	delete(c.running, key)
	c.mu.Unlock()
	close(fl.done)
	return fl.res, fl.err
}

// Get looks up a stored result without simulating.
func (c *Cache) Get(cfg sim.Config, tr *trace.Trace) (core.Result, bool) {
	if c == nil {
		return core.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.entries[Key(cfg, tr)]
	return res, ok
}

// Stats snapshots the counters. Safe on a nil receiver.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:     c.hits,
		Misses:   c.misses,
		Shared:   c.shared,
		Entries:  len(c.entries),
		Rejected: c.rejected,
	}
}
