// Package simcache memoizes simulation results across experiments and
// tuning races. A single (sim.Config, trace) pair is simulated at most
// once per cache: the key is the configuration's canonical-JSON
// fingerprint joined with the trace content digest, so any code path that
// re-evaluates a configuration the survivor set already measured — the
// experiment runner, the irace evaluator, the perturbation study — gets
// the stored core.Result back instead of re-running the timing model.
//
// The cache is a storage tier with up to three levels, consulted in
// order:
//
//   - memory: materialized results under an LRU with an optional byte
//     budget (SetMemoryBudget), so a long-lived serve process stays
//     bounded;
//   - disk: an mmap-backed binary snapshot attached by LoadFile/
//     LoadChecked — lookups resolve through its index and decode one
//     record on first touch, never the whole file (disk hits count as
//     hits);
//   - remote: an optional shared tier (SetRemote) queried on true
//     misses before simulating, with results offered back
//     asynchronously (remote hits are counted separately — they cost a
//     round-trip, not a simulation).
//
// The cache is safe for concurrent use and deduplicates in-flight work:
// when two workers ask for the same unit simultaneously, one resolves
// (disk, remote, or simulate) and the other blocks on the first result
// (singleflight). Every persisted entry carries a checksum binding it
// to its key, so a corrupted or hand-edited record is rejected on first
// touch rather than silently poisoning experiments.
//
// All methods are nil-receiver safe: a nil *Cache simply simulates every
// request, which lets callers thread "maybe a cache" through options
// structs without branching at each call site.
package simcache

import (
	"container/list"
	"reflect"
	"sync"

	"racesim/internal/core"
	"racesim/internal/sim"
	"racesim/internal/trace"
)

// Key identifies one simulation unit: a configuration fingerprint plus a
// trace content digest.
func Key(cfg sim.Config, tr *trace.Trace) string {
	return cfg.Fingerprint() + ":" + tr.Digest()
}

// Stats is a point-in-time snapshot of cache effectiveness. The JSON
// field names are part of the serve HTTP API (job results, /healthz).
type Stats struct {
	Hits        uint64 `json:"hits"`         // Run calls answered from memory or the attached disk tier
	Misses      uint64 `json:"misses"`       // Run calls that simulated
	Shared      uint64 `json:"shared"`       // Run calls that waited on an identical in-flight run
	RemoteHits  uint64 `json:"remote_hits"`  // Run calls answered by the shared remote tier
	Entries     int    `json:"entries"`      // distinct servable results (memory + unshadowed disk records)
	MemEntries  int    `json:"mem_entries"`  // results materialized in memory
	DiskEntries int    `json:"disk_entries"` // records indexed in the attached disk tier
	Rejected    uint64 `json:"rejected"`     // persisted entries dropped by checksum mismatch
	Evicted     uint64 `json:"evicted"`      // entries dropped by the memory budget
}

// HitRate returns the fraction of lookups that avoided simulating —
// memory/disk hits, shared in-flight waits, and remote-tier hits — or 0
// before any lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Shared + s.RemoteHits
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared+s.RemoteHits) / float64(total)
}

// Resolver is a shared remote cache tier. Lookup is synchronous and
// consulted on a true miss (memory and disk both cold) before
// simulating; Offer asynchronously publishes a locally computed result
// so other workers' Lookups can hit it mid-run. Implementations must be
// safe for concurrent use.
type Resolver interface {
	Lookup(key string) (core.Result, bool)
	Offer(key string, res core.Result)
}

// inflight tracks one resolution in progress so duplicates can wait on it.
type inflight struct {
	done chan struct{}
	res  core.Result
	err  error
}

// centry is one materialized result plus its LRU position.
type centry struct {
	res  core.Result
	elem *list.Element // value is the key string
}

// resultMemSize is the in-memory footprint of one core.Result (all
// uint64 fields, no pointers), computed once.
var resultMemSize = int64(reflect.TypeOf(core.Result{}).Size())

// entryMemSize estimates the memory held by one cache entry: the
// result, the key string, and map/list bookkeeping overhead.
func entryMemSize(key string) int64 {
	const overhead = 128
	return resultMemSize + int64(len(key)) + overhead
}

// Cache memoizes core.Results by simulation-unit key.
type Cache struct {
	mu       sync.Mutex
	entries  map[string]*centry
	lru      *list.List // front = most recent
	budget   int64      // max memory bytes; 0 = unlimited
	memUsed  int64
	disk     *Mapped  // attached binary snapshot, or nil
	shadowed int      // memory keys that also exist on disk (for Entries)
	remote   Resolver // shared cluster tier, or nil
	running  map[string]*inflight
	hits     uint64
	misses   uint64
	shared   uint64
	remoteHt uint64
	rejected uint64
	evicted  uint64
}

// New returns an empty in-memory cache.
func New() *Cache {
	return &Cache{
		entries: make(map[string]*centry),
		lru:     list.New(),
		running: make(map[string]*inflight),
	}
}

// SetMemoryBudget bounds the materialized (in-memory) tier to roughly
// budget bytes; least-recently-used entries are evicted past it. An
// evicted entry that the disk or remote tier also holds costs a
// re-materialization on next touch; one held nowhere else is lost from
// future snapshots. Zero means unlimited (the default).
func (c *Cache) SetMemoryBudget(budget int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.budget = budget
	c.evictLocked()
	c.mu.Unlock()
}

// SetRemote attaches a shared remote tier consulted on true misses.
func (c *Cache) SetRemote(r Resolver) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.remote = r
	c.mu.Unlock()
}

// OnDisk reports whether the attached disk tier indexes key (without
// decoding or verifying the record). False when no tier is attached.
func (c *Cache) OnDisk(key string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	disk := c.disk
	c.mu.Unlock()
	return disk.Has(key)
}

// insertLocked stores res under key (last-writer-wins) and applies the
// memory budget. Caller holds c.mu.
func (c *Cache) insertLocked(key string, res core.Result) (replaced bool) {
	if ce, ok := c.entries[key]; ok {
		ce.res = res
		c.lru.MoveToFront(ce.elem)
		return true
	}
	ce := &centry{res: res, elem: c.lru.PushFront(key)}
	c.entries[key] = ce
	c.memUsed += entryMemSize(key)
	if c.disk.Has(key) {
		c.shadowed++
	}
	c.evictLocked()
	return false
}

// evictLocked drops LRU entries until the memory budget is met,
// preferring entries the disk tier can re-materialize. Caller holds
// c.mu.
func (c *Cache) evictLocked() {
	if c.budget <= 0 || c.memUsed <= c.budget {
		return
	}
	// First pass: evict disk-backed entries (lossless — the record is
	// still on disk). Second pass: evict anything; the budget is a hard
	// bound.
	for pass := 0; pass < 2 && c.memUsed > c.budget; pass++ {
		var next *list.Element
		for e := c.lru.Back(); e != nil && c.memUsed > c.budget; e = next {
			next = e.Prev()
			key := e.Value.(string)
			if pass == 0 && !c.disk.Has(key) {
				continue
			}
			c.lru.Remove(e)
			delete(c.entries, key)
			c.memUsed -= entryMemSize(key)
			if c.disk.Has(key) {
				c.shadowed--
			}
			c.evicted++
		}
	}
}

// touchLocked records a hit on key's entry. Caller holds c.mu.
func (c *Cache) touchLocked(ce *centry) {
	c.lru.MoveToFront(ce.elem)
}

// Store inserts a result under key with last-writer-wins semantics,
// reporting whether an existing entry was replaced. It is the merge
// primitive used by snapshot loading and the remote tier's PUT handler;
// it does not touch the hit/miss counters.
func (c *Cache) Store(key string, res core.Result) (replaced bool) {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.insertLocked(key, res)
}

// Run returns the memoized result for (cfg, tr), resolving through the
// tiers — memory, attached disk snapshot, shared remote tier — and
// simulating only when all are cold. A nil receiver runs the simulation
// directly.
func (c *Cache) Run(cfg sim.Config, tr *trace.Trace) (core.Result, error) {
	if c == nil {
		return cfg.Run(tr)
	}
	key := Key(cfg, tr)

	c.mu.Lock()
	if ce, ok := c.entries[key]; ok {
		c.hits++
		c.touchLocked(ce)
		res := ce.res
		c.mu.Unlock()
		return res, nil
	}
	if fl, ok := c.running[key]; ok {
		c.shared++
		c.mu.Unlock()
		<-fl.done
		return fl.res, fl.err
	}
	fl := &inflight{done: make(chan struct{})}
	c.running[key] = fl
	disk, remote := c.disk, c.remote
	c.mu.Unlock()

	// Owner path: disk tier, then remote tier, then simulate. The
	// inflight claim means concurrent identical requests wait on this
	// resolution whichever tier answers it.
	if disk.Has(key) {
		if res, err := disk.Get(key); err == nil {
			c.finish(key, fl, res, nil, &c.hits)
			return res, nil
		}
		// The record is present but corrupt: reject it and fall through
		// to the remaining tiers.
		c.countRejected()
	}
	if remote != nil {
		if res, ok := remote.Lookup(key); ok {
			c.finish(key, fl, res, nil, &c.remoteHt)
			return res, nil
		}
	}

	res, err := cfg.Run(tr)
	c.finish(key, fl, res, err, &c.misses)
	if err == nil && remote != nil {
		remote.Offer(key, res)
	}
	return res, err
}

// finish resolves an inflight claim: bump the tier's counter, store the
// result, release waiters.
func (c *Cache) finish(key string, fl *inflight, res core.Result, err error, counter *uint64) {
	fl.res, fl.err = res, err
	c.mu.Lock()
	*counter++
	if err == nil {
		c.insertLocked(key, res)
	}
	delete(c.running, key)
	c.mu.Unlock()
	close(fl.done)
}

// Get looks up a stored result without simulating or touching the
// remote tier; a disk-tier record is materialized (and counts as a
// normal entry) on success.
func (c *Cache) Get(cfg sim.Config, tr *trace.Trace) (core.Result, bool) {
	if c == nil {
		return core.Result{}, false
	}
	key := Key(cfg, tr)
	c.mu.Lock()
	if ce, ok := c.entries[key]; ok {
		c.touchLocked(ce)
		res := ce.res
		c.mu.Unlock()
		return res, true
	}
	disk := c.disk
	c.mu.Unlock()
	if disk.Has(key) {
		if res, err := disk.Get(key); err == nil {
			c.Store(key, res)
			return res, true
		}
		c.countRejected()
	}
	return core.Result{}, false
}

// Peek looks up key across the memory and disk tiers without touching
// the remote tier or the hit/miss counters — the cache-server side of a
// GET /v1/cache/entry/{key}: a server answering peers must not inflate
// its own effectiveness stats or chain lookups to further upstreams.
func (c *Cache) Peek(key string) (core.Result, bool) {
	if c == nil {
		return core.Result{}, false
	}
	c.mu.Lock()
	if ce, ok := c.entries[key]; ok {
		c.touchLocked(ce)
		res := ce.res
		c.mu.Unlock()
		return res, true
	}
	disk := c.disk
	c.mu.Unlock()
	if disk.Has(key) {
		if res, err := disk.Get(key); err == nil {
			c.Store(key, res)
			return res, true
		}
		c.countRejected()
	}
	return core.Result{}, false
}

// Stats snapshots the counters. Safe on a nil receiver.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Shared:      c.shared,
		RemoteHits:  c.remoteHt,
		Entries:     len(c.entries) + c.disk.Count() - c.shadowed,
		MemEntries:  len(c.entries),
		DiskEntries: c.disk.Count(),
		Rejected:    c.rejected,
		Evicted:     c.evicted,
	}
}

// Disk returns the attached mmap-backed snapshot tier, or nil.
func (c *Cache) Disk() *Mapped {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

// Close detaches and unmaps the disk tier, if any. The cache itself
// remains usable (memory tier only).
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	disk := c.disk
	c.disk = nil
	c.shadowed = 0
	c.mu.Unlock()
	return disk.Close()
}
