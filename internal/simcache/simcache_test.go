package simcache

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"racesim/internal/sim"
	"racesim/internal/trace"
	"racesim/internal/ubench"
)

func testTrace(t *testing.T, name string) *trace.Trace {
	t.Helper()
	b, ok := ubench.ByName(name)
	if !ok {
		t.Fatalf("unknown bench %s", name)
	}
	tr, err := b.Trace(ubench.Options{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestHitMissAccounting(t *testing.T) {
	c := New()
	cfg := sim.PublicA53()
	tr := testTrace(t, "MD")

	direct, err := cfg.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if first != direct || second != direct {
		t.Error("cached results differ from direct simulation")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 entry", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}

	// A different configuration of the same trace is a distinct unit.
	other := sim.PublicA72()
	if _, err := c.Run(other, tr); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats after second config = %+v, want 2 misses, 2 entries", st)
	}
}

func TestFingerprintIgnoresName(t *testing.T) {
	a := sim.PublicA53()
	b := sim.PublicA53()
	b.Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("cosmetic rename changed the fingerprint")
	}
	b.MSHRs++
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("parameter change did not change the fingerprint")
	}
}

func TestConcurrentDuplicatesSimulateOnce(t *testing.T) {
	c := New()
	cfg := sim.PublicA53()
	tr := testTrace(t, "MD")

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Run(cfg, tr); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("%d misses for %d identical concurrent units, want exactly 1 simulation", st.Misses, n)
	}
	if st.Hits+st.Shared != n-1 {
		t.Errorf("hits %d + shared %d != %d", st.Hits, st.Shared, n-1)
	}
}

func TestNilCachePassesThrough(t *testing.T) {
	var c *Cache
	cfg := sim.PublicA53()
	tr := testTrace(t, "MD")
	res, err := c.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := cfg.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res != direct {
		t.Error("nil cache altered the result")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	cfg := sim.PublicA53()
	tr := testTrace(t, "MD")
	path := filepath.Join(t.TempDir(), "cache.json")

	c1 := New()
	want, err := c1.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	c2 := New()
	n, err := c2.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d entries, want 1", n)
	}
	got, ok := c2.Get(cfg, tr)
	if !ok || got != want {
		t.Error("reloaded entry does not match the original result")
	}
	if _, err := c2.Run(cfg, tr); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("warm run stats = %+v, want pure hit", st)
	}
}

func TestLoadMissingFileIsCold(t *testing.T) {
	c := New()
	n, err := c.LoadFile(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || n != 0 {
		t.Errorf("missing file: n=%d err=%v, want 0, nil", n, err)
	}
}

func TestPoisonedEntryRejectedByChecksum(t *testing.T) {
	cfg := sim.PublicA53()
	tr := testTrace(t, "MD")
	path := filepath.Join(t.TempDir(), "cache.json")

	c1 := New()
	res, err := c1.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// The legacy JSON format verifies eagerly at load; the binary
	// format's lazy equivalent is covered in disk_test.go and
	// adversity_test.go.
	if err := c1.SaveFileJSON(path); err != nil {
		t.Fatal(err)
	}

	// Poison the stored result: flip the cycle count without refreshing
	// the checksum, as disk corruption or a hand edit would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	old := `"Cycles": ` + strconv.FormatUint(res.Cycles, 10)
	poisoned := strings.Replace(string(data), old, `"Cycles": `+strconv.FormatUint(res.Cycles+1, 10), 1)
	if poisoned == string(data) {
		t.Fatalf("could not find %q in snapshot to poison", old)
	}
	if err := os.WriteFile(path, []byte(poisoned), 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := New()
	n, err := c2.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("accepted %d poisoned entries, want 0", n)
	}
	if st := c2.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	if _, ok := c2.Get(cfg, tr); ok {
		t.Error("poisoned entry is servable from the cache")
	}
	// The unit re-simulates to the correct value instead.
	again, err := c2.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if again != res {
		t.Error("re-simulated result differs from the original")
	}
}
