package simcache

import (
	"racesim/internal/core"
	"racesim/internal/sim"
	"racesim/internal/trace"
)

// DefaultLanes is the miss-chunk width RunBatch uses when BatchOptions
// leaves Lanes at zero. Wider chunks amortize the column walk over more
// configurations but make each simulated hierarchy compete with more
// neighbours for the host cache; 16 is comfortably past the point where
// the walk's fixed costs stop mattering.
const DefaultLanes = 16

// BatchOptions shapes a batched submission.
type BatchOptions struct {
	// Lanes caps how many cache-missing configurations are replayed per
	// column walk (sim.RunBatch call). 0 means DefaultLanes.
	Lanes int
}

// RunBatch returns the memoized result for every (cfgs[i], tr), replaying
// the cache misses in lane batches: one walk over the trace's decoded
// columns serves up to Lanes missing configurations at once. Results and
// errors align with cfgs.
//
// Per-configuration semantics are exactly Run's: stored entries are
// returned from memory, submissions identical to an in-flight run (from
// this batch or a concurrent worker) wait for it, and fresh work fills the
// cache for everyone else. Lane batching changes only how the misses are
// replayed — a lane's result is identical to a sequential run, so the
// cache never sees batched and sequential entries diverge. If a batch walk
// fails (for example one configuration is invalid), its configurations
// fall back to individual runs so an error poisons only its own slot.
//
// A nil receiver batches the replays without memoizing anything.
func (c *Cache) RunBatch(cfgs []sim.Config, tr *trace.Trace, opt BatchOptions) ([]core.Result, []error) {
	n := len(cfgs)
	out := make([]core.Result, n)
	errs := make([]error, n)
	if n == 0 {
		return out, errs
	}

	if c == nil {
		c.runMisses(allIndices(n), cfgs, tr, opt, out, errs)
		return out, errs
	}

	// Classify every slot under one lock pass: already stored, in flight
	// elsewhere (including earlier duplicates in this very batch), or ours
	// to resolve.
	keys := make([]string, n)
	flights := make([]*inflight, n)
	var own, waits []int
	c.mu.Lock()
	for i, cfg := range cfgs {
		keys[i] = Key(cfg, tr)
		if ce, ok := c.entries[keys[i]]; ok {
			c.hits++
			c.touchLocked(ce)
			out[i] = ce.res
			continue
		}
		if fl, ok := c.running[keys[i]]; ok {
			c.shared++
			flights[i] = fl
			waits = append(waits, i)
			continue
		}
		fl := &inflight{done: make(chan struct{})}
		c.running[keys[i]] = fl
		flights[i] = fl
		own = append(own, i)
	}
	disk, remote := c.disk, c.remote
	c.mu.Unlock()

	// Resolve owned slots through the cheaper tiers before burning lanes
	// on them: the disk tier decodes one record per hit, the remote tier
	// costs a round-trip. Only what every tier misses is simulated.
	const (
		kindMiss = iota // simulated (or failed)
		kindDisk
		kindRemote
	)
	kind := make([]int, n)
	var toSim []int
	for _, i := range own {
		if disk.Has(keys[i]) {
			if res, err := disk.Get(keys[i]); err == nil {
				out[i], kind[i] = res, kindDisk
				continue
			}
			c.countRejected()
		}
		if remote != nil {
			if res, ok := remote.Lookup(keys[i]); ok {
				out[i], kind[i] = res, kindRemote
				continue
			}
		}
		toSim = append(toSim, i)
	}

	c.runMisses(toSim, cfgs, tr, opt, out, errs)

	c.mu.Lock()
	for _, i := range own {
		flights[i].res, flights[i].err = out[i], errs[i]
		switch kind[i] {
		case kindDisk:
			c.hits++
		case kindRemote:
			c.remoteHt++
		default:
			c.misses++
		}
		if errs[i] == nil {
			c.insertLocked(keys[i], out[i])
		}
		delete(c.running, keys[i])
	}
	c.mu.Unlock()
	for _, i := range own {
		close(flights[i].done)
	}
	if remote != nil {
		for _, i := range toSim {
			if errs[i] == nil {
				remote.Offer(keys[i], out[i])
			}
		}
	}

	// Waiting last cannot deadlock on duplicates within this batch: their
	// owning slots were simulated and closed above.
	for _, i := range waits {
		fl := flights[i]
		<-fl.done
		out[i], errs[i] = fl.res, fl.err
	}
	return out, errs
}

// runMisses replays the configurations at idxs in lane batches, writing
// into out/errs. Misses are grouped by decoder variant first (a decoded
// trace serves one variant) and then chunked to the lane width.
func (c *Cache) runMisses(idxs []int, cfgs []sim.Config, tr *trace.Trace, opt BatchOptions, out []core.Result, errs []error) {
	if len(idxs) == 0 {
		return
	}
	lanes := opt.Lanes
	if lanes <= 0 {
		lanes = DefaultLanes
	}
	var variants [2][]int
	for _, i := range idxs {
		v := 0
		if cfgs[i].DecoderDepBug {
			v = 1
		}
		variants[v] = append(variants[v], i)
	}
	for _, group := range variants {
		for s := 0; s < len(group); s += lanes {
			chunk := group[s:min(s+lanes, len(group))]
			batch := make([]sim.Config, len(chunk))
			for j, i := range chunk {
				batch[j] = cfgs[i]
			}
			rs, err := sim.RunBatchTrace(batch, tr)
			if err != nil {
				for _, i := range chunk {
					out[i], errs[i] = cfgs[i].Run(tr)
				}
				continue
			}
			for j, i := range chunk {
				out[i] = rs[j]
			}
		}
	}
}

func allIndices(n int) []int {
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	return idxs
}
