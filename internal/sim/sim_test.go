package sim

import (
	"path/filepath"
	"testing"

	"racesim/internal/irace"
	"racesim/internal/ubench"
)

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{PublicA53(), PublicA72()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := PublicA53()
	path := filepath.Join(t.TempDir(), "a53.json")
	if err := cfg.MarshalJSONFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Error("config did not round-trip through JSON")
	}
}

func TestParamSpaceSize(t *testing.T) {
	for _, kind := range []CoreKind{InOrder, OutOfOrder} {
		defs := Params(kind)
		// The paper identifies 64 parameters that need tuning; our space
		// should be in that neighbourhood.
		if len(defs) < 55 || len(defs) > 75 {
			t.Errorf("%s: %d tunable parameters, want ~64", kind, len(defs))
		}
		names := map[string]bool{}
		for _, d := range defs {
			if names[d.Name] {
				t.Errorf("%s: duplicate parameter %s", kind, d.Name)
			}
			names[d.Name] = true
			if len(d.Values) < 2 {
				t.Errorf("%s: parameter %s has %d values", kind, d.Name, len(d.Values))
			}
		}
	}
}

func TestSpaceBuilds(t *testing.T) {
	for _, kind := range []CoreKind{InOrder, OutOfOrder} {
		if _, err := Space(kind); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestExtractApplyRoundTrip(t *testing.T) {
	base := PublicA53()
	a := Extract(base)
	// Every extracted value must be among the candidates (the presets
	// must start inside the search space).
	space, _ := Space(InOrder)
	if err := space.Validate(a); err != nil {
		t.Fatalf("preset outside search space: %v", err)
	}
	got, err := Apply(base, a)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Error("Extract/Apply did not round-trip")
	}
}

func TestApplyChangesConfig(t *testing.T) {
	base := PublicA53()
	a := irace.Assignment{"branch.kind": "gshare", "l2.hit_latency": "12", "branch.indirect": "true"}
	got, err := Apply(base, a)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Branch.Kind) != "gshare" || got.Mem.L2.HitLatency != 12 || !got.Branch.IndirectEnabled {
		t.Errorf("apply failed: %+v", got.Branch)
	}
	if _, err := Apply(base, irace.Assignment{"l2.hit_latency": "banana"}); err == nil {
		t.Error("bad value accepted")
	}
}

func TestRunBothKindsOnMicrobenchmark(t *testing.T) {
	b, _ := ubench.ByName("ED1")
	tr, err := b.Trace(ubench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{PublicA53(), PublicA72()} {
		res, err := cfg.Run(tr)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.Instructions != uint64(tr.Len()) || res.CPI() <= 0 {
			t.Errorf("%s: bad result %+v", cfg.Name, res)
		}
	}
	// The out-of-order core must beat the in-order core on a serial-ILP
	// mix? No: ED1 is a pure chain, so they should be comparable; check
	// EI (high ILP) instead for the expected ordering.
	bi, _ := ubench.ByName("EI")
	tri, err := bi.Trace(ubench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inoRes, err := PublicA53().Run(tri)
	if err != nil {
		t.Fatal(err)
	}
	oooRes, err := PublicA72().Run(tri)
	if err != nil {
		t.Fatal(err)
	}
	if oooRes.CPI() >= inoRes.CPI() {
		t.Errorf("OoO CPI %.3f should beat in-order %.3f on high-ILP code", oooRes.CPI(), inoRes.CPI())
	}
}
