package sim

import (
	mathrand "math/rand"
	"testing"

	"racesim/internal/irace"
)

// TestEveryParamValueApplies exhaustively applies every candidate value of
// every tunable parameter to the matching preset and re-validates: no
// combination of a single parameter change may produce an invalid model,
// and Get must read back exactly what Set wrote.
func TestEveryParamValueApplies(t *testing.T) {
	cases := []struct {
		kind CoreKind
		base Config
	}{
		{InOrder, PublicA53()},
		{OutOfOrder, PublicA72()},
	}
	for _, c := range cases {
		for _, d := range Params(c.kind) {
			for _, v := range d.Values {
				cfg := c.base
				if err := d.Set(&cfg, v); err != nil {
					t.Errorf("%s/%s=%s: set failed: %v", c.kind, d.Name, v, err)
					continue
				}
				if got := d.Get(&cfg); got != v {
					t.Errorf("%s/%s: wrote %q, read %q", c.kind, d.Name, v, got)
				}
				if err := cfg.Validate(); err != nil {
					t.Errorf("%s/%s=%s: invalid model: %v", c.kind, d.Name, v, err)
				}
			}
			// Setting garbage must fail and leave a copy untouched.
			cfg := c.base
			if err := d.Set(&cfg, "zzz-not-a-value"); err == nil && len(d.Values) > 0 {
				// Choice params reject unknown values; int/bool params
				// reject unparseable ones. "zzz" is neither.
				t.Errorf("%s/%s: garbage value accepted", c.kind, d.Name)
			}
		}
	}
}

// TestRandomAssignmentsAlwaysValid samples many random full assignments
// and checks Apply yields a runnable configuration for each: the tuner
// must never be able to construct an invalid model from the space.
func TestRandomAssignmentsAlwaysValid(t *testing.T) {
	for _, kind := range []CoreKind{InOrder, OutOfOrder} {
		space, err := Space(kind)
		if err != nil {
			t.Fatal(err)
		}
		base := PublicA53()
		if kind == OutOfOrder {
			base = PublicA72()
		}
		rng := newTestRand(99)
		for i := 0; i < 200; i++ {
			a := irace.SampleUniform(space, rng)
			cfg, err := Apply(base, a)
			if err != nil {
				t.Fatalf("%s: random assignment invalid: %v\n%v", kind, err, a)
			}
			if _, err := cfg.Model(); err != nil {
				t.Fatalf("%s: model build failed: %v", kind, err)
			}
		}
	}
}

// newTestRand avoids importing math/rand at every call site.
func newTestRand(seed int64) *mathrand.Rand { return mathrand.New(mathrand.NewSource(seed)) }
