package sim

import (
	"fmt"
	"strconv"

	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/irace"
	"racesim/internal/prefetch"
)

// ParamDef is one tunable simulator parameter: its candidate values, how to
// read it from a Config and how to write it back. The set of ParamDefs is
// the "list of unknown parameters" of methodology step 3 — everything the
// reference manuals do not disclose.
type ParamDef struct {
	Name    string
	Values  []string
	Ordered bool
	Get     func(*Config) string
	Set     func(*Config, string) error
}

func itoa(v int) string { return strconv.Itoa(v) }

func ints(vs ...int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = itoa(v)
	}
	return out
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

func intParam(name string, get func(*Config) *int, vs ...int) ParamDef {
	return ParamDef{
		Name: name, Values: ints(vs...), Ordered: true,
		Get: func(c *Config) string { return itoa(*get(c)) },
		Set: func(c *Config, s string) error {
			v, err := strconv.Atoi(s)
			if err != nil {
				return fmt.Errorf("sim: %s: %w", name, err)
			}
			*get(c) = v
			return nil
		},
	}
}

func boolParam(name string, get func(*Config) *bool) ParamDef {
	return ParamDef{
		Name: name, Values: []string{"false", "true"},
		Get: func(c *Config) string { return boolStr(*get(c)) },
		Set: func(c *Config, s string) error {
			switch s {
			case "true":
				*get(c) = true
			case "false":
				*get(c) = false
			default:
				return fmt.Errorf("sim: %s: bad bool %q", name, s)
			}
			return nil
		},
	}
}

func choiceParam(name string, values []string, get func(*Config) string, set func(*Config, string)) ParamDef {
	return ParamDef{
		Name: name, Values: values,
		Get: func(c *Config) string { return get(c) },
		Set: func(c *Config, s string) error {
			for _, v := range values {
				if v == s {
					set(c, s)
					return nil
				}
			}
			return fmt.Errorf("sim: %s: bad value %q", name, s)
		},
	}
}

func prefetchParams(prefix string, get func(*Config) *prefetch.Config, kinds []string, degrees, distances, tables []int) []ParamDef {
	return []ParamDef{
		choiceParam(prefix+".kind", kinds,
			func(c *Config) string { return string(get(c).Kind) },
			func(c *Config, s string) { get(c).Kind = prefetch.Kind(s) }),
		intParam(prefix+".degree", func(c *Config) *int { return &get(c).Degree }, degrees...),
		intParam(prefix+".distance", func(c *Config) *int { return &get(c).Distance }, distances...),
		intParam(prefix+".table", func(c *Config) *int { return &get(c).TableEntries }, tables...),
		boolParam(prefix+".on_hit", func(c *Config) *bool { return &get(c).OnHit }),
	}
}

func cacheParams(prefix string, get func(*Config) *cache.Config, hitLats ...int) []ParamDef {
	return []ParamDef{
		intParam(prefix+".hit_latency", func(c *Config) *int { return &get(c).HitLatency }, hitLats...),
		boolParam(prefix+".tag_data_serial", func(c *Config) *bool { return &get(c).TagDataSerial }),
		choiceParam(prefix+".hash", []string{"mask", "xor", "mersenne"},
			func(c *Config) string { return string(get(c).Hash) },
			func(c *Config, s string) { get(c).Hash = cache.HashKind(s) }),
		choiceParam(prefix+".repl", []string{"lru", "plru", "random"},
			func(c *Config) string { return string(get(c).Repl) },
			func(c *Config, s string) { get(c).Repl = cache.ReplKind(s) }),
		intParam(prefix+".ports", func(c *Config) *int { return &get(c).Ports }, 1, 2),
	}
}

// Params returns the tunable parameter definitions for a core kind.
func Params(kind CoreKind) []ParamDef {
	var defs []ParamDef
	add := func(ps ...ParamDef) { defs = append(defs, ps...) }

	// Branch prediction unit: entirely undisclosed.
	add(choiceParam("branch.kind",
		[]string{"static", "bimodal", "gshare", "tournament"},
		func(c *Config) string { return string(c.Branch.Kind) },
		func(c *Config, s string) { c.Branch.Kind = branch.Kind(s) }))
	add(intParam("branch.bimodal_entries", func(c *Config) *int { return &c.Branch.BimodalEntries }, 512, 1024, 2048, 4096, 8192))
	add(intParam("branch.gshare_entries", func(c *Config) *int { return &c.Branch.GShareEntries }, 512, 1024, 2048, 4096, 8192))
	add(intParam("branch.history_bits", func(c *Config) *int { return &c.Branch.HistoryBits }, 4, 6, 8, 10, 12))
	add(intParam("branch.chooser_entries", func(c *Config) *int { return &c.Branch.ChooserEntries }, 512, 1024, 2048, 4096))
	add(intParam("branch.btb_entries", func(c *Config) *int { return &c.Branch.BTBEntries }, 64, 128, 256, 512, 1024))
	add(intParam("branch.btb_assoc", func(c *Config) *int { return &c.Branch.BTBAssoc }, 1, 2, 4))
	add(intParam("branch.ras_entries", func(c *Config) *int { return &c.Branch.RASEntries }, 4, 8, 16, 32))
	add(boolParam("branch.indirect", func(c *Config) *bool { return &c.Branch.IndirectEnabled }))
	add(intParam("branch.indirect_entries", func(c *Config) *int { return &c.Branch.IndirectEntries }, 128, 256, 512, 1024))
	add(intParam("branch.indirect_history", func(c *Config) *int { return &c.Branch.IndirectHistory }, 2, 4, 8))
	add(intParam("frontend.mispredict_penalty", func(c *Config) *int { return &c.FrontEnd.MispredictPenalty }, 6, 8, 10, 12, 14, 16, 18))
	add(intParam("frontend.btb_miss_penalty", func(c *Config) *int { return &c.FrontEnd.BTBMissPenalty }, 0, 1, 2, 3, 4))

	// L1 data cache.
	add(cacheParams("l1d", func(c *Config) *cache.Config { return &c.Mem.L1D }, 2, 3, 4)...)
	add(intParam("l1d.victim_entries", func(c *Config) *int { return &c.Mem.L1D.VictimEntries }, 0, 2, 4, 8))
	add(prefetchParams("l1d.prefetch", func(c *Config) *prefetch.Config { return &c.Mem.L1D.Prefetch },
		[]string{"none", "next_line", "stride", "ghb"}, []int{1, 2, 4}, []int{1, 2, 4, 8}, []int{16, 32, 64, 128})...)

	// L1 instruction cache.
	add(intParam("l1i.hit_latency", func(c *Config) *int { return &c.Mem.L1I.HitLatency }, 1, 2, 3))
	add(boolParam("l1i.tag_data_serial", func(c *Config) *bool { return &c.Mem.L1I.TagDataSerial }))
	add(choiceParam("l1i.prefetch.kind", []string{"none", "next_line"},
		func(c *Config) string { return string(c.Mem.L1I.Prefetch.Kind) },
		func(c *Config, s string) { c.Mem.L1I.Prefetch.Kind = prefetch.Kind(s) }))
	add(intParam("l1i.prefetch.degree", func(c *Config) *int { return &c.Mem.L1I.Prefetch.Degree }, 1, 2))

	// L2 cache.
	add(cacheParams("l2", func(c *Config) *cache.Config { return &c.Mem.L2 }, 9, 12, 15, 18, 21)...)
	add(intParam("l2.mshrs", func(c *Config) *int { return &c.Mem.L2.MSHRs }, 4, 8, 12, 16))
	add(intParam("l2.victim_entries", func(c *Config) *int { return &c.Mem.L2.VictimEntries }, 0, 4, 8))
	add(prefetchParams("l2.prefetch", func(c *Config) *prefetch.Config { return &c.Mem.L2.Prefetch },
		[]string{"none", "next_line", "stride", "ghb"}, []int{1, 2, 4, 8}, []int{1, 2, 4, 8, 16}, []int{32, 64, 128, 256})...)

	// TLBs and paging.
	add(intParam("tlb.itlb_entries", func(c *Config) *int { return &c.Mem.ITLBEntries }, 16, 32, 48, 64))
	add(intParam("tlb.dtlb_entries", func(c *Config) *int { return &c.Mem.DTLBEntries }, 16, 32, 48, 64))
	add(intParam("tlb.miss_latency", func(c *Config) *int { return &c.Mem.TLBMissLatency }, 10, 20, 30, 40))

	// Main memory organisation.
	add(intParam("dram.latency", func(c *Config) *int { return &c.Mem.DRAM.LatencyCycles }, 140, 160, 180, 200, 220, 240))
	add(intParam("dram.burst", func(c *Config) *int { return &c.Mem.DRAM.BurstCycles }, 4, 6, 8, 12))
	add(intParam("dram.queue_depth", func(c *Config) *int { return &c.Mem.DRAM.QueueDepth }, 8, 16, 32))

	// Execution latencies and initiation intervals.
	add(intParam("lat.int_mul", func(c *Config) *int { return &c.Lat.IntMul }, 2, 3, 4, 5))
	add(intParam("lat.int_div", func(c *Config) *int { return &c.Lat.IntDiv }, 8, 10, 12, 16, 20))
	add(intParam("lat.int_div_ii", func(c *Config) *int { return &c.Lat.IntDivII }, 1, 4, 8, 12, 16, 20))
	add(intParam("lat.fp_add", func(c *Config) *int { return &c.Lat.FPAdd }, 3, 4, 5, 6))
	add(intParam("lat.fp_mul", func(c *Config) *int { return &c.Lat.FPMul }, 3, 4, 5, 6))
	add(intParam("lat.fp_div", func(c *Config) *int { return &c.Lat.FPDiv }, 10, 14, 18, 22, 26))
	add(intParam("lat.fp_div_ii", func(c *Config) *int { return &c.Lat.FPDivII }, 1, 4, 10, 18, 26))
	add(intParam("lat.fp_cvt", func(c *Config) *int { return &c.Lat.FPCvt }, 2, 3, 4, 5))
	add(intParam("lat.simd", func(c *Config) *int { return &c.Lat.SIMD }, 2, 3, 4, 5))

	// Pipe counts (contention model structure).
	add(intParam("pipes.int_alu", func(c *Config) *int { return &c.Pipes.IntALU }, 1, 2, 3))
	add(intParam("pipes.fp", func(c *Config) *int { return &c.Pipes.FP }, 1, 2, 3))

	// Core-structure parameters differ per kind.
	if kind == InOrder {
		add(intParam("l1d.mshrs", func(c *Config) *int { return &c.MSHRs }, 1, 2, 3, 4, 6))
		add(boolParam("core.dual_issue_ls", func(c *Config) *bool { return &c.DualIssueLoadStore }))
		add(intParam("core.max_mem_per_cycle", func(c *Config) *int { return &c.MaxMemPerCycle }, 1, 2))
		add(intParam("core.store_buffer", func(c *Config) *int { return &c.StoreBufferEntries }, 2, 4, 6, 8, 12))
	} else {
		add(intParam("l1d.mshrs", func(c *Config) *int { return &c.MSHRs }, 2, 4, 6, 8, 12, 16))
		add(intParam("core.rob", func(c *Config) *int { return &c.ROBEntries }, 64, 96, 128, 160, 192))
		add(intParam("core.iq", func(c *Config) *int { return &c.IQEntries }, 16, 24, 32, 48, 64))
		add(intParam("core.lq", func(c *Config) *int { return &c.LQEntries }, 8, 16, 24, 32))
		add(intParam("core.sq", func(c *Config) *int { return &c.SQEntries }, 8, 16, 24, 32))
		add(intParam("core.retire_width", func(c *Config) *int { return &c.RetireWidth }, 2, 3, 4))
		add(intParam("pipes.load", func(c *Config) *int { return &c.Pipes.Load }, 1, 2))
		add(intParam("pipes.store", func(c *Config) *int { return &c.Pipes.Store }, 1, 2))
	}
	return defs
}

// Space builds the irace search space for a core kind.
func Space(kind CoreKind) (*irace.Space, error) {
	defs := Params(kind)
	params := make([]irace.Param, len(defs))
	for i, d := range defs {
		params[i] = irace.Param{Name: d.Name, Values: d.Values, Ordered: d.Ordered}
	}
	return irace.NewSpace(params)
}

// Apply overlays an assignment of tunable parameters onto a base
// configuration and returns the result.
func Apply(base Config, a irace.Assignment) (Config, error) {
	cfg := base
	for _, d := range Params(base.Kind) {
		v, ok := a[d.Name]
		if !ok {
			continue
		}
		if err := d.Set(&cfg, v); err != nil {
			return Config{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Extract reads the current values of every tunable parameter from cfg as
// an assignment (used to express ground truths and perturbation baselines).
func Extract(cfg Config) irace.Assignment {
	a := irace.Assignment{}
	for _, d := range Params(cfg.Kind) {
		a[d.Name] = d.Get(&cfg)
	}
	return a
}
