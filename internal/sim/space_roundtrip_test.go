package sim

import (
	"testing"

	"racesim/internal/irace"
)

// The tunable-parameter space is defined twice per parameter — a Get that
// reads a Config and a Set that writes one. Nothing ties the two to the
// same field, so a copy-paste slip (Set writing L1D, Get reading L2)
// would silently corrupt every tuning race. These tests pin the contract:
// writing any candidate value and reading it back is the identity, for
// every parameter and every value in the space, on both core kinds.
func roundTripCases(t *testing.T) []struct {
	name string
	kind CoreKind
	base Config
} {
	t.Helper()
	return []struct {
		name string
		kind CoreKind
		base Config
	}{
		{"inorder", InOrder, PublicA53()},
		{"ooo", OutOfOrder, PublicA72()},
	}
}

func TestParamGetSetRoundTrip(t *testing.T) {
	for _, tc := range roundTripCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			for _, d := range Params(tc.kind) {
				for _, v := range d.Values {
					cfg := tc.base
					if err := d.Set(&cfg, v); err != nil {
						t.Errorf("param %s: Set(%q): %v", d.Name, v, err)
						continue
					}
					if got := d.Get(&cfg); got != v {
						t.Errorf("param %s: Set(%q) reads back %q — Get/Set drift", d.Name, v, got)
					}
				}
				// A value outside the candidate list must be rejected, not
				// silently coerced.
				cfg := tc.base
				if err := d.Set(&cfg, "definitely-not-a-value"); err == nil {
					t.Errorf("param %s: accepted an out-of-space value", d.Name)
				}
			}
		})
	}
}

func TestExtractApplyRoundTripOverSpace(t *testing.T) {
	for _, tc := range roundTripCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			defs := Params(tc.kind)
			space, err := Space(tc.kind)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := len(space.Params), len(defs); got != want {
				t.Fatalf("Space has %d params, Params has %d", got, want)
			}

			// Corner assignments exercise every parameter simultaneously:
			// all-first, all-last and all-middle candidate values. These are
			// in-space configurations, exactly what the irace sampler feeds
			// through Apply during a race, so they must validate and survive
			// the Extract round trip unchanged.
			picks := map[string]func(vs []string) string{
				"first":  func(vs []string) string { return vs[0] },
				"last":   func(vs []string) string { return vs[len(vs)-1] },
				"middle": func(vs []string) string { return vs[len(vs)/2] },
			}
			for pname, pick := range picks {
				a := irace.Assignment{}
				for _, d := range defs {
					a[d.Name] = pick(d.Values)
				}
				cfg, err := Apply(tc.base, a)
				if err != nil {
					t.Fatalf("%s corner: Apply: %v", pname, err)
				}
				got := Extract(cfg)
				if len(got) != len(a) {
					t.Fatalf("%s corner: Extract returned %d params, want %d", pname, len(got), len(a))
				}
				for name, want := range a {
					if got[name] != want {
						t.Errorf("%s corner: param %s: applied %q, extracted %q", pname, name, want, got[name])
					}
				}
			}

			// Extract of an untouched base must itself round-trip: applying
			// it back is the identity on every tunable parameter.
			base := Extract(tc.base)
			cfg, err := Apply(tc.base, base)
			if err != nil {
				t.Fatalf("identity Apply: %v", err)
			}
			again := Extract(cfg)
			for name, want := range base {
				if again[name] != want {
					t.Errorf("identity: param %s drifted %q -> %q", name, want, again[name])
				}
			}
		})
	}
}
