package sim

import (
	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/core"
	"racesim/internal/dram"
	"racesim/internal/prefetch"
)

// The public presets encode steps 1–3 of the validation methodology: every
// parameter that the technical reference manuals disclose (cache geometry,
// issue width, write policies) is set accordingly; everything else is a
// best-effort guess that the tuner is expected to correct. The deliberate
// guesses that turn out wrong against the reference boards (see
// internal/hw) are what the paper calls specification errors.

func l1i(sizeKB, assoc int) cache.Config {
	return cache.Config{
		Name: "l1i", SizeKB: sizeKB, Assoc: assoc, LineSize: 64,
		HitLatency: 1, Hash: cache.HashMask, Repl: cache.ReplLRU,
		MSHRs: 2, Ports: 1, WriteBack: false, WriteAllocate: false,
		Prefetch: prefetch.Config{Kind: prefetch.KindNextLine, Degree: 1, Distance: 1, TableEntries: 16, GHBEntries: 16},
	}
}

func l1d() cache.Config {
	return cache.Config{
		Name: "l1d", SizeKB: 32, Assoc: 4, LineSize: 64,
		HitLatency: 3, Hash: cache.HashMask, Repl: cache.ReplLRU,
		MSHRs: 2, Ports: 1, WriteBack: true, WriteAllocate: true,
		Prefetch: prefetch.DefaultConfig(),
	}
}

func l2(sizeKB int) cache.Config {
	return cache.Config{
		Name: "l2", SizeKB: sizeKB, Assoc: 16, LineSize: 64,
		HitLatency: 15, Hash: cache.HashMask, Repl: cache.ReplLRU,
		MSHRs: 8, Ports: 1, WriteBack: true, WriteAllocate: true,
		Prefetch: prefetch.DefaultConfig(),
	}
}

// PublicA53 returns the untuned in-order model built from public
// information plus best guesses (methodology steps 1–3).
func PublicA53() Config {
	return Config{
		Name: "public-a53",
		Kind: InOrder,

		Width:              2, // disclosed: dual-issue
		DualIssueLoadStore: true,
		MaxMemPerCycle:     1,
		MaxBranchPerCycle:  1,
		StoreBufferEntries: 4,

		// Out-of-order fields are irrelevant for the in-order model but
		// kept valid so the config round-trips.
		DispatchWidth: 2, RetireWidth: 2, ROBEntries: 32, IQEntries: 16,
		LQEntries: 8, SQEntries: 8,

		MSHRs: 2,
		Lat: core.LatencyConfig{
			IntALU: 1, IntMul: 3, IntDiv: 8, FPAdd: 4, FPMul: 4, FPDiv: 10,
			FPCvt: 3, SIMD: 3,
			// Best guess: divides assumed fully pipelined — a plausible
			// but wrong assumption (imbalanced-pipeline hazard).
			IntDivII: 1, FPDivII: 1,
		},
		Pipes: core.PipesConfig{
			IntALU: 2, IntMul: 1, IntDiv: 1, FP: 1, FPDiv: 1, Load: 1, Store: 1, Branch: 1,
		},
		FrontEnd: core.FrontEndConfig{MispredictPenalty: 6, BTBMissPenalty: 1, FetchWidth: 2},
		Branch: branch.Config{
			Kind:            branch.KindBimodal,
			BimodalEntries:  1024,
			GShareEntries:   1024,
			HistoryBits:     6,
			ChooserEntries:  1024,
			BTBEntries:      128,
			BTBAssoc:        1,
			RASEntries:      4,
			IndirectEnabled: false, // abstraction gap: no indirect predictor yet
			IndirectEntries: 256,
			IndirectHistory: 4,
		},
		Mem: cache.HierarchyConfig{
			L1I:         l1i(32, 2), // disclosed geometry
			L1D:         l1d(),
			L2:          l2(512), // disclosed: 512 KB shared L2
			DRAM:        dram.Config{LatencyCycles: 140, BurstCycles: 4, QueueDepth: 16},
			ITLBEntries: 16, DTLBEntries: 16, TLBMissLatency: 30,
			PageBytes: 4096,
			// Abstraction gap: the zero-fill page optimization is not in
			// the public model at all.
			ZeroFillOpt: false, ZeroFillLatency: 48,
		},
		// The decoder library ships with the dependency-extraction bug;
		// the validation process discovers and fixes it (Sec. IV-B).
		DecoderDepBug: true,
	}
}

// PublicA72 returns the untuned out-of-order model built from public
// information plus best guesses.
func PublicA72() Config {
	return Config{
		Name: "public-a72",
		Kind: OutOfOrder,

		Width:              3,
		DualIssueLoadStore: true,
		MaxMemPerCycle:     2,
		MaxBranchPerCycle:  1,
		StoreBufferEntries: 8,

		DispatchWidth: 3, // disclosed: 3-wide dispatch
		RetireWidth:   3,
		ROBEntries:    64, // guess; real window believed deeper
		IQEntries:     16,
		LQEntries:     16,
		SQEntries:     16,

		MSHRs: 4,
		Lat: core.LatencyConfig{
			IntALU: 1, IntMul: 4, IntDiv: 8, FPAdd: 4, FPMul: 4, FPDiv: 10,
			FPCvt: 3, SIMD: 3,
			IntDivII: 1, FPDivII: 1, // same optimistic pipelining guess
		},
		Pipes: core.PipesConfig{
			IntALU: 2, IntMul: 1, IntDiv: 1, FP: 2, FPDiv: 1, Load: 1, Store: 1, Branch: 1,
		},
		FrontEnd: core.FrontEndConfig{MispredictPenalty: 10, BTBMissPenalty: 2, FetchWidth: 3},
		Branch: branch.Config{
			Kind:            branch.KindBimodal,
			BimodalEntries:  2048,
			GShareEntries:   2048,
			HistoryBits:     8,
			ChooserEntries:  2048,
			BTBEntries:      256,
			BTBAssoc:        2,
			RASEntries:      8,
			IndirectEnabled: false,
			IndirectEntries: 256,
			IndirectHistory: 4,
		},
		Mem: cache.HierarchyConfig{
			L1I:         l1i(48, 3), // disclosed: 48 KB L1I
			L1D:         l1d(),
			L2:          l2(1024), // disclosed: 1 MB shared L2
			DRAM:        dram.Config{LatencyCycles: 140, BurstCycles: 4, QueueDepth: 16},
			ITLBEntries: 32, DTLBEntries: 32, TLBMissLatency: 30,
			PageBytes:   4096,
			ZeroFillOpt: false, ZeroFillLatency: 48,
		},
		DecoderDepBug: true,
	}
}
