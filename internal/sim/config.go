// Package sim is the simulator façade: a single flat configuration that
// covers both core types (in-order Cortex-A53 class and out-of-order
// Cortex-A72 class), JSON (de)serialization for config files, best-guess
// public presets corresponding to steps 1–3 of the paper's methodology, and
// the space of undisclosed parameters handed to the tuner (step 4).
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/core"
	"racesim/internal/trace"
)

// CoreKind selects the back-end timing model.
type CoreKind string

// Core kinds.
const (
	InOrder    CoreKind = "inorder"
	OutOfOrder CoreKind = "ooo"
)

// Config fully describes a simulated core and its memory subsystem.
type Config struct {
	Name string   `json:"name"`
	Kind CoreKind `json:"kind"`

	// In-order parameters.
	Width              int  `json:"width"`
	DualIssueLoadStore bool `json:"dual_issue_load_store"`
	MaxMemPerCycle     int  `json:"max_mem_per_cycle"`
	MaxBranchPerCycle  int  `json:"max_branch_per_cycle"`
	StoreBufferEntries int  `json:"store_buffer_entries"`

	// Out-of-order parameters.
	DispatchWidth int `json:"dispatch_width"`
	RetireWidth   int `json:"retire_width"`
	ROBEntries    int `json:"rob_entries"`
	IQEntries     int `json:"iq_entries"`
	LQEntries     int `json:"lq_entries"`
	SQEntries     int `json:"sq_entries"`

	// Shared.
	MSHRs    int                   `json:"mshrs"`
	Lat      core.LatencyConfig    `json:"latencies"`
	Pipes    core.PipesConfig      `json:"pipes"`
	FrontEnd core.FrontEndConfig   `json:"front_end"`
	Branch   branch.Config         `json:"branch"`
	Mem      cache.HierarchyConfig `json:"mem"`

	// DecoderDepBug reproduces the decoder-library dependency bug.
	DecoderDepBug bool `json:"decoder_dep_bug"`
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Kind {
	case InOrder:
		return c.inOrder().Validate()
	case OutOfOrder:
		return c.ooo().Validate()
	default:
		return fmt.Errorf("sim: unknown core kind %q", c.Kind)
	}
}

func (c Config) inOrder() core.InOrderConfig {
	return core.InOrderConfig{
		Width:              c.Width,
		DualIssueLoadStore: c.DualIssueLoadStore,
		MaxMemPerCycle:     c.MaxMemPerCycle,
		MaxBranchPerCycle:  c.MaxBranchPerCycle,
		MSHRs:              c.MSHRs,
		StoreBufferEntries: c.StoreBufferEntries,
		Lat:                c.Lat,
		Pipes:              c.Pipes,
		FrontEnd:           c.FrontEnd,
		Branch:             c.Branch,
		Mem:                c.Mem,
		DecoderDepBug:      c.DecoderDepBug,
	}
}

func (c Config) ooo() core.OoOConfig {
	return core.OoOConfig{
		DispatchWidth: c.DispatchWidth,
		RetireWidth:   c.RetireWidth,
		ROBEntries:    c.ROBEntries,
		IQEntries:     c.IQEntries,
		LQEntries:     c.LQEntries,
		SQEntries:     c.SQEntries,
		MSHRs:         c.MSHRs,
		Lat:           c.Lat,
		Pipes:         c.Pipes,
		FrontEnd:      c.FrontEnd,
		Branch:        c.Branch,
		Mem:           c.Mem,
		DecoderDepBug: c.DecoderDepBug,
	}
}

// Model builds a fresh timing model from the configuration.
func (c Config) Model() (core.Model, error) {
	switch c.Kind {
	case InOrder:
		return core.NewInOrder(c.inOrder())
	case OutOfOrder:
		return core.NewOoO(c.ooo())
	default:
		return nil, fmt.Errorf("sim: unknown core kind %q", c.Kind)
	}
}

// Run replays a trace on a fresh model instance through the decode-once
// path: the trace's static decode is computed at most once per decoder
// variant (memoized on tr, see trace.Decoded) and shared immutably by
// every configuration — tuner candidates, validation stages, perturbation
// sweeps — that replays the same trace. Traces that declare WarmData (the
// program initialized its memory before the region, as SPEC workloads do)
// disable the zero-fill page optimization for the run: that hardware
// behaviour only exists for never-written pages.
func (c Config) Run(tr *trace.Trace) (core.Result, error) {
	return c.RunDecoded(tr.Decoded(c.DecoderDepBug))
}

// RunDecoded replays a pre-decoded trace on a fresh model instance. The
// decoded variant must match the configuration's DecoderDepBug setting
// (Run picks the right one automatically). It is a single-lane RunBatch,
// so sequential and batched replay share one maintained hot path (the
// per-lane step kernel) and one memoized behavior table per decode.
func (c Config) RunDecoded(d *trace.Decoded) (core.Result, error) {
	rs, err := RunBatch([]Config{c}, d)
	if err != nil {
		return core.Result{}, err
	}
	return rs[0], nil
}

// Fingerprint returns a stable hex digest of the configuration's canonical
// JSON form. Two configurations that simulate identically (same kind and
// parameter values, regardless of Name) share a fingerprint; it is the
// config half of the simulation-cache key (see internal/simcache).
func (c Config) Fingerprint() string {
	canon := c
	canon.Name = "" // cosmetic only: tuned copies must hit the same entry
	data, err := json.Marshal(canon)
	if err != nil {
		// Config is a tree of plain value fields; Marshal cannot fail on
		// it. Guard anyway so a future field type cannot poison the cache
		// with colliding keys.
		panic(fmt.Sprintf("sim: fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// MarshalJSONFile writes the configuration to path as indented JSON.
func (c Config) MarshalJSONFile(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadConfig reads a configuration from a JSON file and validates it.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("sim: %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, fmt.Errorf("sim: %s: %w", path, err)
	}
	return c, nil
}
