package sim

import (
	"fmt"
	"sync"

	"racesim/internal/core"
	"racesim/internal/trace"
)

// behaviorTables memoizes the compiled behavior table per decoded trace.
// A *trace.Decoded is immutable and itself memoized on its Trace (one
// instance per decoder variant), so the pointer is a stable key; like the
// decode it caches for, an entry lives as long as the process (traces are
// few and long-lived in every racesim workload).
var behaviorTables sync.Map // *trace.Decoded -> []core.Behavior

// Behaviors returns the memoized behavior table for a decoded trace,
// compiling it on first use. The table is immutable and share-safe.
func Behaviors(d *trace.Decoded) []core.Behavior {
	if v, ok := behaviorTables.Load(d); ok {
		return v.([]core.Behavior)
	}
	v, _ := behaviorTables.LoadOrStore(d, core.CompileBehaviors(d.Insts))
	return v.([]core.Behavior)
}

// RunBatch replays one decoded trace under every configuration in a
// single walk over the columns, stepping a vector of per-config lanes in
// lockstep, and returns results aligned with configs. Lanes are fully
// independent, so out[i] is exactly what configs[i].RunDecoded(d) returns
// — batching changes throughput, never results. Configs may mix core
// kinds (each kind walks once); every config must share d's decoder
// variant. Traces that declare WarmData disable the zero-fill page
// optimization per lane, as in the sequential path.
func RunBatch(configs []Config, d *trace.Decoded) ([]core.Result, error) {
	if len(configs) == 0 {
		return nil, nil
	}
	behav := Behaviors(d)
	out := make([]core.Result, len(configs))

	var inIdx, oooIdx []int
	var inCfgs []core.InOrderConfig
	var oooCfgs []core.OoOConfig
	for i, c := range configs {
		if d.WarmData {
			c.Mem.ZeroFillOpt = false
		}
		switch c.Kind {
		case InOrder:
			inIdx = append(inIdx, i)
			inCfgs = append(inCfgs, c.inOrder())
		case OutOfOrder:
			oooIdx = append(oooIdx, i)
			oooCfgs = append(oooCfgs, c.ooo())
		default:
			return nil, fmt.Errorf("sim: unknown core kind %q", c.Kind)
		}
	}
	if len(inCfgs) > 0 {
		b, err := core.NewInOrderBatch(inCfgs)
		if err != nil {
			return nil, err
		}
		rs, err := b.RunDecoded(d, behav)
		if err != nil {
			return nil, err
		}
		for j, i := range inIdx {
			out[i] = rs[j]
		}
	}
	if len(oooCfgs) > 0 {
		b, err := core.NewOoOBatch(oooCfgs)
		if err != nil {
			return nil, err
		}
		rs, err := b.RunDecoded(d, behav)
		if err != nil {
			return nil, err
		}
		for j, i := range oooIdx {
			out[i] = rs[j]
		}
	}
	return out, nil
}

// RunBatchTrace is RunBatch over a raw trace: all configs must share a
// decoder variant (they are replayed against one decode).
func RunBatchTrace(configs []Config, tr *trace.Trace) ([]core.Result, error) {
	if len(configs) == 0 {
		return nil, nil
	}
	depBug := configs[0].DecoderDepBug
	for _, c := range configs[1:] {
		if c.DecoderDepBug != depBug {
			return nil, fmt.Errorf("sim: batch mixes decoder variants (DepBug true and false)")
		}
	}
	return RunBatch(configs, tr.Decoded(depBug))
}
