package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"racesim/internal/emu"
	"racesim/internal/isa"
)

// Event is one dynamic instruction: the fetched word plus its dynamic
// outcome (effective address, branch direction and target).
type Event struct {
	PC      uint64
	Word    uint32
	MemAddr uint64
	Target  uint64
	Taken   bool
}

// FromInst converts a retired instruction from the emulator into an Event.
func FromInst(in isa.Inst) Event {
	return Event{PC: in.PC, Word: in.Word, MemAddr: in.MemAddr, Target: in.Target, Taken: in.Taken}
}

// Trace is an in-memory recording of a single-threaded execution.
type Trace struct {
	Name   string
	Events []Event
	// WarmData records that the traced program initialized its data
	// before the captured region (as SPEC workloads do). Hardware page
	// optimizations for never-written (zero) pages do not apply to such
	// traces; see cache.HierarchyConfig.ZeroFillOpt.
	WarmData bool

	digestOnce sync.Once
	digest     string

	// Memoized decode-once forms, one per decoder variant (correct,
	// DepBug); see Decoded.
	decodedOnce [2]sync.Once
	decoded     [2]*Decoded
}

// Len returns the number of dynamic instructions in the trace.
func (t *Trace) Len() int { return len(t.Events) }

// Digest returns a stable hex identity of the trace content: every dynamic
// event plus the WarmData flag (which changes timing), excluding the
// cosmetic Name so identically generated traces share simulation-cache
// entries. The digest is computed once and memoized; callers must not
// mutate Events after the first call.
func (t *Trace) Digest() string {
	t.digestOnce.Do(func() {
		h := sha256.New()
		var buf [29]byte
		if t.WarmData {
			buf[0] = 1
		}
		h.Write(buf[:1])
		for _, ev := range t.Events {
			binary.LittleEndian.PutUint64(buf[0:], ev.PC)
			binary.LittleEndian.PutUint32(buf[8:], ev.Word)
			binary.LittleEndian.PutUint64(buf[12:], ev.MemAddr)
			binary.LittleEndian.PutUint64(buf[20:], ev.Target)
			buf[28] = 0
			if ev.Taken {
				buf[28] = 1
			}
			h.Write(buf[:])
		}
		t.digest = hex.EncodeToString(h.Sum(nil))
	})
	return t.digest
}

// Source yields events in program order. Implementations must allow Reset
// so one recording can drive many timing-model configurations.
type Source interface {
	// Next returns the next event. ok is false at end of trace.
	Next() (ev Event, ok bool)
	// Reset rewinds the source to the beginning.
	Reset()
	// Len returns the total number of events.
	Len() int
}

// Cursor is a Source over an in-memory Trace.
type Cursor struct {
	t   *Trace
	pos int
}

// NewCursor returns a Source reading t from the beginning.
func NewCursor(t *Trace) *Cursor { return &Cursor{t: t} }

// Next implements Source.
func (c *Cursor) Next() (Event, bool) {
	if c.pos >= len(c.t.Events) {
		return Event{}, false
	}
	ev := c.t.Events[c.pos]
	c.pos++
	return ev, true
}

// Reset implements Source.
func (c *Cursor) Reset() { c.pos = 0 }

// Len implements Source.
func (c *Cursor) Len() int { return len(c.t.Events) }

// Record executes prog on the functional emulator for at most maxInst
// instructions and returns the recorded trace. A program that exhausts the
// budget (rather than halting) still yields a valid trace.
func Record(name string, prog *isa.Program, maxInst uint64) (*Trace, error) {
	m := emu.New(prog)
	t := &Trace{Name: name, Events: make([]Event, 0, 1024)}
	err := m.Run(maxInst, func(in isa.Inst) {
		t.Events = append(t.Events, FromInst(in))
	})
	if err != nil && err != emu.ErrMaxInstructions {
		return nil, err
	}
	return t, nil
}

// ClassMix counts dynamic instructions per timing class, using a correct
// decoder. Invalid words are counted under ClassNop.
func (t *Trace) ClassMix() [isa.NumClasses]int {
	var mix [isa.NumClasses]int
	var d isa.Decoder
	for _, ev := range t.Events {
		in, err := d.Decode(ev.PC, ev.Word)
		if err != nil {
			mix[isa.ClassNop]++
			continue
		}
		mix[in.Cls]++
	}
	return mix
}
