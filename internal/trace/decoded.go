package trace

import (
	"racesim/internal/isa"
)

// Decoded is a trace in decode-once, struct-of-arrays form: the static
// decode of every distinct instruction word is computed exactly once and
// stored in a small id-indexed table, while the dynamic per-event fields
// live in parallel columns. Replaying a decoded trace is a linear array
// walk — no per-event decoder call, no per-event map lookup, and no
// per-event isa.Inst materialization — which is what makes sweeping
// hundreds of configurations over the same trace cheap (the decode is
// config-invariant; only the DepBug decoder defect changes it).
//
// A Decoded is immutable after construction and safe to share across any
// number of concurrent replays. Obtain one via Trace.Decoded, which
// memoizes per (trace, DepBug) variant.
type Decoded struct {
	// Name and WarmData mirror the source trace (see Trace).
	Name     string
	WarmData bool
	// DepBug records which decoder variant produced Insts.
	DepBug bool

	// IDs holds one entry per dynamic instruction: an index into Insts.
	IDs []uint32
	// Insts is the table of unique static decodes. Dynamic fields
	// (PC, MemAddr, Target, Taken) are zero; replay reads them from the
	// columns below.
	Insts []isa.Inst

	// Dynamic columns, parallel to IDs.
	PC      []uint64
	MemAddr []uint64
	Target  []uint64
	// TakenBits packs the per-event branch outcome as a bitset;
	// use Taken(i).
	TakenBits []uint64

	// Err is the decode error of the first undecodable event, if any.
	// The columns then cover only the events before it, matching the
	// legacy path, which replays up to the failing event and stops.
	Err error
}

// Len returns the number of decoded dynamic instructions.
func (d *Decoded) Len() int { return len(d.IDs) }

// Taken reports the branch outcome of event i.
func (d *Decoded) Taken(i int) bool {
	return d.TakenBits[i>>6]>>(uint(i)&63)&1 != 0
}

// Inst returns the shared static decode of event i. Callers must not
// mutate the result.
func (d *Decoded) Inst(i int) *isa.Inst { return &d.Insts[d.IDs[i]] }

// decodeTrace builds the columnar form of t under the given decoder
// variant.
func decodeTrace(t *Trace, depBug bool) *Decoded {
	dec := isa.Decoder{DepBug: depBug}
	n := len(t.Events)
	d := &Decoded{
		Name:      t.Name,
		WarmData:  t.WarmData,
		DepBug:    depBug,
		IDs:       make([]uint32, 0, n),
		PC:        make([]uint64, 0, n),
		MemAddr:   make([]uint64, 0, n),
		Target:    make([]uint64, 0, n),
		TakenBits: make([]uint64, (n+63)/64),
	}
	ids := make(map[uint32]uint32, 256)
	for i := range t.Events {
		ev := &t.Events[i]
		id, ok := ids[ev.Word]
		if !ok {
			// PC 0 matches the legacy per-word decode cache, so error
			// text (and hence observable behaviour) is identical.
			in, err := dec.Decode(0, ev.Word)
			if err != nil {
				d.Err = err
				break
			}
			id = uint32(len(d.Insts))
			d.Insts = append(d.Insts, in)
			ids[ev.Word] = id
		}
		d.IDs = append(d.IDs, id)
		d.PC = append(d.PC, ev.PC)
		d.MemAddr = append(d.MemAddr, ev.MemAddr)
		d.Target = append(d.Target, ev.Target)
		if ev.Taken {
			d.TakenBits[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return d
}

// Decoded returns the decode-once columnar form of the trace for the given
// decoder variant, computed on first use and memoized (like Digest). All
// callers — concurrent tuner workers, validation stages, perturbation
// sweeps — share one immutable instance per variant; callers must not
// mutate Events after the first call.
func (t *Trace) Decoded(depBug bool) *Decoded {
	i := 0
	if depBug {
		i = 1
	}
	t.decodedOnce[i].Do(func() {
		t.decoded[i] = decodeTrace(t, depBug)
	})
	return t.decoded[i]
}
