package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"racesim/internal/isa"
)

// Binary format ("RIFT"):
//
//	magic   "RIFT"
//	version uvarint (currently 2)
//	flags   uvarint (bit0 = warm data)
//	name    uvarint length + bytes
//	count   uvarint (number of events)
//	events  count records, each:
//	  flags  byte      bit0 = has memory address, bit1 = branch taken,
//	                   bit2 = has branch target
//	  pc     svarint   delta from previous PC + 4 (0 for straight-line code)
//	  word   uvarint
//	  mem    svarint   delta from previous memory address (if bit0)
//	  target svarint   delta from own PC (if bit2)
//
// Deltas keep straight-line code and strided access patterns to a couple of
// bytes per instruction.

const magic = "RIFT"
const version = 2

// ErrFormat is returned when a stream is not a valid trace file.
var ErrFormat = errors.New("trace: invalid file format")

// Writer streams events to an io.Writer in RIFT format.
type Writer struct {
	w       *bufio.Writer
	prevPC  uint64
	prevMem uint64
	buf     [2 * binary.MaxVarintLen64]byte
}

// WriteTo serialises t to w.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.WriteString(magic); err != nil {
		return cw.n, err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(version); err != nil {
		return cw.n, err
	}
	var flags uint64
	if t.WarmData {
		flags |= 1
	}
	if err := put(flags); err != nil {
		return cw.n, err
	}
	if err := put(uint64(len(t.Name))); err != nil {
		return cw.n, err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return cw.n, err
	}
	if err := put(uint64(len(t.Events))); err != nil {
		return cw.n, err
	}
	wr := Writer{w: bw}
	for _, ev := range t.Events {
		if err := wr.writeEvent(ev); err != nil {
			return cw.n, err
		}
	}
	err := bw.Flush()
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (w *Writer) writeEvent(ev Event) error {
	var flags byte
	var dec isa.Decoder
	in, err := dec.Decode(ev.PC, ev.Word)
	hasMem := err == nil && in.Cls.IsMem()
	isBranch := err == nil && in.Cls.IsBranch()
	if hasMem {
		flags |= 1
	}
	if ev.Taken {
		flags |= 2
	}
	if isBranch {
		flags |= 4
	}
	if err := w.w.WriteByte(flags); err != nil {
		return err
	}
	n := binary.PutVarint(w.buf[:], int64(ev.PC)-int64(w.prevPC+isa.InstSize))
	w.prevPC = ev.PC
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return err
	}
	n = binary.PutUvarint(w.buf[:], uint64(ev.Word))
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return err
	}
	if hasMem {
		n = binary.PutVarint(w.buf[:], int64(ev.MemAddr)-int64(w.prevMem))
		w.prevMem = ev.MemAddr
		if _, err := w.w.Write(w.buf[:n]); err != nil {
			return err
		}
	}
	if isBranch {
		n = binary.PutVarint(w.buf[:], int64(ev.Target)-int64(ev.PC))
		if _, err := w.w.Write(w.buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrom parses a RIFT stream.
func ReadFrom(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil || string(head) != magic {
		return nil, ErrFormat
	}
	v, err := binary.ReadUvarint(br)
	if err != nil || v != version {
		return nil, fmt.Errorf("%w: version %d", ErrFormat, v)
	}
	flags, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, ErrFormat
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen > 1<<20 {
		return nil, ErrFormat
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, ErrFormat
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, ErrFormat
	}
	t := &Trace{Name: string(name), WarmData: flags&1 != 0, Events: make([]Event, 0, count)}
	var prevPC, prevMem uint64
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at event %d", ErrFormat, i)
		}
		dpc, err := binary.ReadVarint(br)
		if err != nil {
			return nil, ErrFormat
		}
		pc := uint64(int64(prevPC+isa.InstSize) + dpc)
		prevPC = pc
		word, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, ErrFormat
		}
		ev := Event{PC: pc, Word: uint32(word), Taken: flags&2 != 0}
		if flags&1 != 0 {
			dm, err := binary.ReadVarint(br)
			if err != nil {
				return nil, ErrFormat
			}
			ev.MemAddr = uint64(int64(prevMem) + dm)
			prevMem = ev.MemAddr
		}
		if flags&4 != 0 {
			dt, err := binary.ReadVarint(br)
			if err != nil {
				return nil, ErrFormat
			}
			ev.Target = uint64(int64(pc) + dt)
		}
		t.Events = append(t.Events, ev)
	}
	return t, nil
}

// WriteFile serialises t to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a trace from path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
