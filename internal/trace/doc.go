// Package trace implements the racesim instruction trace format (RIFT),
// a stand-in for Sniper's SIFT: a compact binary stream of dynamic
// instruction events recorded once by the front-end (the functional
// emulator) and replayed many times by the timing back-end.
//
// Each Event carries the raw instruction word rather than decoded
// operands: the back-end decodes words itself (through isa.Decoder), so
// decoder behaviour — including the reproduced dependency-extraction bug
// — affects timing exactly as it did in the paper's Capstone-based
// front-end.
//
// A Trace also carries two pieces of replay-relevant identity. WarmData
// marks traces whose program initialized memory before the captured
// region (as SPEC workloads do), which disables the hardware's zero-fill
// page optimization for the run. Digest is a memoized content hash over
// every event plus the WarmData flag; together with a configuration
// fingerprint it keys the simulation cache (internal/simcache), so
// identical replays are recognized no matter how the trace was produced
// or what it was named.
package trace
