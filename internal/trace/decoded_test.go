package trace

import (
	"sync"
	"testing"

	"racesim/internal/isa"
)

func decodedTestTrace(t *testing.T) *Trace {
	t.Helper()
	add := isa.EncR(isa.OpADD, isa.X(1), isa.X(2), isa.X(3))
	ldr := isa.EncMem(isa.OpLDRX, isa.X(4), isa.X(5), 8)
	return &Trace{Name: "decoded-test", Events: []Event{
		{PC: 0x1000, Word: add},
		{PC: 0x1004, Word: ldr, MemAddr: 0x8000},
		{PC: 0x1008, Word: add},
		{PC: 0x100c, Word: ldr, MemAddr: 0x8040},
	}}
}

func TestDecodedDeduplicatesStaticDecodes(t *testing.T) {
	tr := decodedTestTrace(t)
	d := tr.Decoded(false)
	if d.Err != nil {
		t.Fatal(d.Err)
	}
	if d.Len() != tr.Len() {
		t.Fatalf("Len = %d, want %d", d.Len(), tr.Len())
	}
	if len(d.Insts) != 2 {
		t.Fatalf("unique static decodes = %d, want 2 (ADD, LDRX)", len(d.Insts))
	}
	if d.IDs[0] != d.IDs[2] || d.IDs[1] != d.IDs[3] {
		t.Fatalf("repeated words must share ids: %v", d.IDs)
	}
	for i, ev := range tr.Events {
		if d.PC[i] != ev.PC || d.MemAddr[i] != ev.MemAddr || d.Target[i] != ev.Target || d.Taken(i) != ev.Taken {
			t.Fatalf("dynamic column mismatch at event %d", i)
		}
		if d.Inst(i).Op != isa.OpADD && d.Inst(i).Op != isa.OpLDRX {
			t.Fatalf("unexpected op at event %d: %v", i, d.Inst(i).Op)
		}
	}
	// Static table entries carry no dynamic state.
	for _, in := range d.Insts {
		if in.MemAddr != 0 || in.Taken || in.Target != 0 {
			t.Fatalf("static decode carries dynamic fields: %+v", in)
		}
	}
}

func TestDecodedMemoizedPerVariant(t *testing.T) {
	// FP register numbers encode as raw indices in the register fields.
	fadd := isa.EncR(isa.OpFADD, isa.Reg(1), isa.Reg(2), isa.Reg(3))
	tr := &Trace{Name: "variants", Events: []Event{{PC: 0x2000, Word: fadd}}}
	correct := tr.Decoded(false)
	buggy := tr.Decoded(true)
	if correct == buggy {
		t.Fatal("variants must decode separately")
	}
	if tr.Decoded(false) != correct || tr.Decoded(true) != buggy {
		t.Fatal("Decoded must memoize per variant")
	}
	if got := correct.Insts[0].NSrc; got != 2 {
		t.Fatalf("correct decode NSrc = %d, want 2", got)
	}
	if got := buggy.Insts[0].NSrc; got != 1 {
		t.Fatalf("DepBug decode NSrc = %d, want 1 (dropped second FP source)", got)
	}
}

func TestDecodedInvalidWordStopsAtFirstFailure(t *testing.T) {
	tr := decodedTestTrace(t)
	tr.Events = append(tr.Events, Event{PC: 0x1010, Word: ^uint32(0)})
	tr.Events = append(tr.Events, Event{PC: 0x1014, Word: tr.Events[0].Word})
	d := tr.Decoded(false)
	if d.Err == nil {
		t.Fatal("want decode error")
	}
	if d.Len() != 4 {
		t.Fatalf("decoded prefix = %d events, want 4 (up to the invalid word)", d.Len())
	}
}

func TestDecodedConcurrentAccess(t *testing.T) {
	tr := decodedTestTrace(t)
	var wg sync.WaitGroup
	got := make([]*Decoded, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = tr.Decoded(i%2 == 0)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if got[i] != tr.Decoded(i%2 == 0) {
			t.Fatalf("goroutine %d observed a different instance", i)
		}
	}
}
