package trace

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"racesim/internal/asm"
	"racesim/internal/isa"
)

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	p, err := asm.Assemble(`
		.equ BUF, 0x40000
		la x1, BUF
		movz x2, #16
		movz x3, #0
	loop:
		ldrx x4, [x1, #0]
		add x3, x3, x4
		strx x3, [x1, #128]
		addi x1, x1, #8
		subi x2, x2, #1
		cbnz x2, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record("sample", p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRecordProducesDynamicStream(t *testing.T) {
	tr := sampleTrace(t)
	if tr.Len() != 4+16*6 { // la expands to two instructions
		t.Errorf("trace length = %d, want %d", tr.Len(), 4+16*6)
	}
	mix := tr.ClassMix()
	if mix[isa.ClassLoad] != 16 || mix[isa.ClassStore] != 16 {
		t.Errorf("loads=%d stores=%d, want 16 each", mix[isa.ClassLoad], mix[isa.ClassStore])
	}
	if mix[isa.ClassBranch] != 16 {
		t.Errorf("branches=%d, want 16", mix[isa.ClassBranch])
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name {
		t.Errorf("name = %q, want %q", got.Name, tr.Name)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestCompression(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()) / float64(tr.Len())
	if perEvent > 8 {
		t.Errorf("%.1f bytes/event; delta+varint encoding should stay under 8", perEvent)
	}
}

func TestFileRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	path := filepath.Join(t.TempDir(), "sample.rift")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Errorf("len = %d, want %d", got.Len(), tr.Len())
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, []byte("x"), []byte("NOPE"), []byte("RIFT\xFF")} {
		if _, err := ReadFrom(bytes.NewReader(b)); err == nil {
			t.Errorf("ReadFrom(%q) succeeded, want error", b)
		}
	}
	// Truncated valid prefix.
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrom(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestCursor(t *testing.T) {
	tr := sampleTrace(t)
	c := NewCursor(tr)
	if c.Len() != tr.Len() {
		t.Errorf("cursor len = %d", c.Len())
	}
	n := 0
	for {
		_, ok := c.Next()
		if !ok {
			break
		}
		n++
	}
	if n != tr.Len() {
		t.Errorf("iterated %d, want %d", n, tr.Len())
	}
	c.Reset()
	ev, ok := c.Next()
	if !ok || ev != tr.Events[0] {
		t.Error("Reset did not rewind cursor")
	}
}

// Property: arbitrary well-formed event sequences round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "prop"}
		pc := uint64(0x1000)
		for i := 0; i < 200; i++ {
			var ev Event
			ev.PC = pc
			switch r.Intn(4) {
			case 0:
				ev.Word = isa.EncR(isa.OpADD, isa.X(r.Intn(31)), isa.X(r.Intn(31)), isa.X(r.Intn(31)))
			case 1:
				ev.Word = isa.EncMem(isa.OpLDRX, isa.X(1), isa.X(2), int64(r.Intn(4096)))
				ev.MemAddr = uint64(r.Int63n(1 << 40))
			case 2:
				ev.Word = isa.EncB(isa.OpB, int64(r.Intn(100)-50))
				ev.Taken = true
				ev.Target = uint64(int64(pc) + int64(r.Intn(100)-50)*4)
			default:
				ev.Word = isa.EncNOP()
			}
			tr.Events = append(tr.Events, ev)
			if ev.Taken {
				pc = ev.Target
			} else {
				pc += 4
			}
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadFrom(&buf)
		if err != nil || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestWarmDataFlagRoundTrips(t *testing.T) {
	tr := sampleTrace(t)
	tr.WarmData = true
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.WarmData {
		t.Error("WarmData flag lost in serialization")
	}
	tr.WarmData = false
	buf.Reset()
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.WarmData {
		t.Error("WarmData flag appeared from nowhere")
	}
}
