// Package emu implements the functional emulator for the racesim ISA. It
// plays the role of the paper's dynamic binary instrumentation front-end
// (DynamoRIO): it executes a program architecturally and hands every
// retired instruction — with its effective address and branch outcome — to
// a tracer hook, from which SIFT-style traces are recorded.
//
// The emulator always decodes correctly; decoder defects only ever affect
// the timing side (see isa.Decoder.DepBug).
package emu

import (
	"errors"
	"fmt"
	"math"

	"racesim/internal/isa"
)

// ErrMaxInstructions is returned by Run when the instruction budget is
// exhausted before the program halts.
var ErrMaxInstructions = errors.New("emu: instruction budget exhausted")

const pageBits = 12
const pageSize = 1 << pageBits

// Tracer receives every retired instruction in program order.
type Tracer func(isa.Inst)

// Machine is the architectural state of one hardware thread.
type Machine struct {
	prog       *isa.Program
	regs       [32]uint64 // X0..X30; index 31 is the zero register
	vregs      [32]uint64 // V0..V31 as raw float64 bits
	n, z, c, v bool       // NZCV flags
	mem        map[uint64][]byte
	pc         uint64
	icount     uint64
	dec        isa.Decoder
}

// New creates a machine loaded with prog: PC at the entry point, data
// segments copied into memory, registers zeroed.
func New(prog *isa.Program) *Machine {
	m := &Machine{prog: prog, mem: make(map[uint64][]byte), pc: prog.Entry}
	for _, seg := range prog.Data {
		// Copy whole pages at a time: one page lookup per page touched
		// instead of one per byte.
		addr, data := seg.Addr, seg.Data
		for len(data) > 0 {
			n := copy(m.page(addr)[addr&(pageSize-1):], data)
			addr += uint64(n)
			data = data[n:]
		}
	}
	return m
}

// PC returns the current program counter.
func (m *Machine) PC() uint64 { return m.pc }

// ICount returns the number of retired instructions.
func (m *Machine) ICount() uint64 { return m.icount }

// Reg returns the value of general-purpose register r.
func (m *Machine) Reg(r isa.Reg) uint64 {
	if r == isa.XZR {
		return 0
	}
	return m.regs[r]
}

// SetReg sets general-purpose register r.
func (m *Machine) SetReg(r isa.Reg, v uint64) {
	if r != isa.XZR {
		m.regs[r] = v
	}
}

// VReg returns FP register r (an isa.V index) as a float64.
func (m *Machine) VReg(r isa.Reg) float64 {
	return math.Float64frombits(m.vregs[r-isa.V0])
}

// SetVReg sets FP register r to the float64 v.
func (m *Machine) SetVReg(r isa.Reg, v float64) {
	m.vregs[r-isa.V0] = math.Float64bits(v)
}

func (m *Machine) page(addr uint64) []byte {
	base := addr >> pageBits
	p, ok := m.mem[base]
	if !ok {
		p = make([]byte, pageSize)
		m.mem[base] = p
	}
	return p
}

func (m *Machine) loadByte(addr uint64) byte {
	if p, ok := m.mem[addr>>pageBits]; ok {
		return p[addr&(pageSize-1)]
	}
	return 0
}

func (m *Machine) storeByte(addr uint64, b byte) {
	m.page(addr)[addr&(pageSize-1)] = b
}

// Load reads size bytes little-endian at addr.
func (m *Machine) Load(addr uint64, size uint8) uint64 {
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(m.loadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Store writes the low size bytes of v little-endian at addr.
func (m *Machine) Store(addr uint64, size uint8, v uint64) {
	for i := uint8(0); i < size; i++ {
		m.storeByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// Run executes until HALT, an error, or maxInst retired instructions. The
// tracer (may be nil) sees every retired instruction. Run returns
// ErrMaxInstructions if the budget ran out.
func (m *Machine) Run(maxInst uint64, tracer Tracer) error {
	for m.icount < maxInst {
		word, err := m.prog.FetchWord(m.pc)
		if err != nil {
			return err
		}
		in, err := m.dec.Decode(m.pc, word)
		if err != nil {
			return err
		}
		if in.Op == isa.OpHALT {
			return nil
		}
		if err := m.exec(&in); err != nil {
			return err
		}
		m.icount++
		if tracer != nil {
			tracer(in)
		}
		m.pc = in.NextPC()
	}
	return ErrMaxInstructions
}

func (m *Machine) setAddFlags(a, b, r uint64) {
	m.n = int64(r) < 0
	m.z = r == 0
	m.c = r < a // carry out for addition
	m.v = (int64(a) >= 0) == (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
}

func (m *Machine) setSubFlags(a, b uint64) {
	r := a - b
	m.n = int64(r) < 0
	m.z = r == 0
	m.c = a >= b
	m.v = (int64(a) >= 0) != (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
}

func (m *Machine) condHolds(c isa.Cond) bool {
	switch c {
	case isa.CondEQ:
		return m.z
	case isa.CondNE:
		return !m.z
	case isa.CondLT:
		return m.n != m.v
	case isa.CondGE:
		return m.n == m.v
	case isa.CondGT:
		return !m.z && m.n == m.v
	case isa.CondLE:
		return m.z || m.n != m.v
	case isa.CondAL:
		return true
	}
	return false
}

func (m *Machine) exec(in *isa.Inst) error {
	word := in.Word
	rd := isa.Reg(word >> 21 & 0x1F)
	rn := isa.Reg(word >> 16 & 0x1F)
	rm := isa.Reg(word >> 11 & 0x1F)

	switch in.Op {
	case isa.OpADD:
		m.SetReg(rd, m.Reg(rn)+m.Reg(rm))
	case isa.OpSUB:
		m.SetReg(rd, m.Reg(rn)-m.Reg(rm))
	case isa.OpAND:
		m.SetReg(rd, m.Reg(rn)&m.Reg(rm))
	case isa.OpORR:
		m.SetReg(rd, m.Reg(rn)|m.Reg(rm))
	case isa.OpEOR:
		m.SetReg(rd, m.Reg(rn)^m.Reg(rm))
	case isa.OpLSL:
		m.SetReg(rd, m.Reg(rn)<<(m.Reg(rm)&63))
	case isa.OpLSR:
		m.SetReg(rd, m.Reg(rn)>>(m.Reg(rm)&63))
	case isa.OpMUL:
		m.SetReg(rd, m.Reg(rn)*m.Reg(rm))
	case isa.OpSDIV:
		d := int64(m.Reg(rm))
		if d == 0 {
			m.SetReg(rd, 0) // AArch64 semantics: divide by zero yields zero
		} else {
			m.SetReg(rd, uint64(int64(m.Reg(rn))/d))
		}
	case isa.OpCMP:
		m.setSubFlags(m.Reg(rn), m.Reg(rm))

	case isa.OpADDI:
		m.SetReg(rd, m.Reg(rn)+uint64(in.Imm))
	case isa.OpSUBI:
		m.SetReg(rd, m.Reg(rn)-uint64(in.Imm))
	case isa.OpANDI:
		m.SetReg(rd, m.Reg(rn)&uint64(in.Imm))
	case isa.OpORRI:
		m.SetReg(rd, m.Reg(rn)|uint64(in.Imm))
	case isa.OpEORI:
		m.SetReg(rd, m.Reg(rn)^uint64(in.Imm))
	case isa.OpLSLI:
		m.SetReg(rd, m.Reg(rn)<<(uint64(in.Imm)&63))
	case isa.OpLSRI:
		m.SetReg(rd, m.Reg(rn)>>(uint64(in.Imm)&63))
	case isa.OpCMPI:
		m.setSubFlags(m.Reg(rn), uint64(in.Imm))
	case isa.OpMOVZ:
		m.SetReg(rd, uint64(in.Imm))
	case isa.OpMOVK:
		hw := word >> 16 & 0x3
		mask := uint64(0xFFFF) << (16 * hw)
		m.SetReg(rd, m.Reg(rd)&^mask|uint64(in.Imm))

	case isa.OpFADD:
		m.SetVReg(isa.V0+rd, m.VReg(isa.V0+rn)+m.VReg(isa.V0+rm))
	case isa.OpFSUB:
		m.SetVReg(isa.V0+rd, m.VReg(isa.V0+rn)-m.VReg(isa.V0+rm))
	case isa.OpFMUL:
		m.SetVReg(isa.V0+rd, m.VReg(isa.V0+rn)*m.VReg(isa.V0+rm))
	case isa.OpFDIV:
		m.SetVReg(isa.V0+rd, m.VReg(isa.V0+rn)/m.VReg(isa.V0+rm))
	case isa.OpFSQRT:
		m.SetVReg(isa.V0+rd, math.Sqrt(m.VReg(isa.V0+rn)))
	case isa.OpFMOV:
		m.vregs[rd] = m.vregs[rn]
	case isa.OpFCMP:
		a, b := m.VReg(isa.V0+rn), m.VReg(isa.V0+rm)
		m.z = a == b
		m.n = a < b
		m.c = a >= b
		m.v = math.IsNaN(a) || math.IsNaN(b)
	case isa.OpFCVTZS:
		m.SetReg(rd, uint64(int64(m.VReg(isa.V0+rn))))
	case isa.OpSCVTF:
		m.SetVReg(isa.V0+rd, float64(int64(m.Reg(rn))))

	case isa.OpVADD: // two 32-bit lanes
		a, b := m.vregs[rn], m.vregs[rm]
		lo := uint64(uint32(a) + uint32(b))
		hi := uint64(uint32(a>>32)+uint32(b>>32)) << 32
		m.vregs[rd] = hi | lo
	case isa.OpVMUL:
		a, b := m.vregs[rn], m.vregs[rm]
		lo := uint64(uint32(a) * uint32(b))
		hi := uint64(uint32(a>>32)*uint32(b>>32)) << 32
		m.vregs[rd] = hi | lo

	case isa.OpLDRB, isa.OpLDRW, isa.OpLDRX:
		in.MemAddr = m.Reg(rn) + uint64(in.Imm)
		m.SetReg(rd, m.Load(in.MemAddr, in.MemSize))
	case isa.OpLDRV:
		in.MemAddr = m.Reg(rn) + uint64(in.Imm)
		m.vregs[rd] = m.Load(in.MemAddr, 8)
	case isa.OpLDRXR:
		in.MemAddr = m.Reg(rn) + m.Reg(rm)
		m.SetReg(rd, m.Load(in.MemAddr, 8))
	case isa.OpSTRB, isa.OpSTRW, isa.OpSTRX:
		in.MemAddr = m.Reg(rn) + uint64(in.Imm)
		m.Store(in.MemAddr, in.MemSize, m.Reg(rd))
	case isa.OpSTRV:
		in.MemAddr = m.Reg(rn) + uint64(in.Imm)
		m.Store(in.MemAddr, 8, m.vregs[rd])
	case isa.OpSTRXR:
		in.MemAddr = m.Reg(rn) + m.Reg(rm)
		m.Store(in.MemAddr, 8, m.Reg(rd))

	case isa.OpB:
		in.Taken = true
		in.Target, _ = in.StaticTarget()
	case isa.OpBL:
		in.Taken = true
		in.Target, _ = in.StaticTarget()
		m.SetReg(isa.RegLink, in.PC+isa.InstSize)
	case isa.OpBCC:
		in.Taken = m.condHolds(in.Cond)
		in.Target, _ = in.StaticTarget()
	case isa.OpCBZ:
		in.Taken = m.Reg(rd) == 0
		in.Target, _ = in.StaticTarget()
	case isa.OpCBNZ:
		in.Taken = m.Reg(rd) != 0
		in.Target, _ = in.StaticTarget()
	case isa.OpBR:
		in.Taken = true
		in.Target = m.Reg(rd)
	case isa.OpRET:
		in.Taken = true
		in.Target = m.Reg(isa.RegLink)

	case isa.OpNOP:
		// nothing
	default:
		return fmt.Errorf("emu: unimplemented opcode %v at %#x", in.Op, in.PC)
	}
	return nil
}
