package emu

import (
	"testing"

	"racesim/internal/isa"
)

func TestShiftSemantics(t *testing.T) {
	m, _ := run(t, `
		movz x1, #1
		movz x2, #63
		lsl x3, x1, x2     // 1 << 63
		lsr x4, x3, x2     // back to 1
		movz x5, #64
		lsl x6, x1, x5     // shift amount masked to 0
		lsli x7, x1, #4
		lsri x8, x7, #3
		halt
	`)
	if got := m.Reg(isa.X(3)); got != 1<<63 {
		t.Errorf("lsl 63 = %#x", got)
	}
	if got := m.Reg(isa.X(4)); got != 1 {
		t.Errorf("lsr back = %d", got)
	}
	if got := m.Reg(isa.X(6)); got != 1 {
		t.Errorf("shift by 64 should mask to 0, got %#x", got)
	}
	if got := m.Reg(isa.X(7)); got != 16 {
		t.Errorf("lsli = %d", got)
	}
	if got := m.Reg(isa.X(8)); got != 2 {
		t.Errorf("lsri = %d", got)
	}
}

func TestBitwiseImmediates(t *testing.T) {
	m, _ := run(t, `
		movz x1, #0xFF0F
		andi x2, x1, #0x00FF
		orri x3, x1, #0x00F0
		eori x4, x1, #0xFFFF
		halt
	`)
	if got := m.Reg(isa.X(2)); got != 0x0F {
		t.Errorf("andi = %#x", got)
	}
	if got := m.Reg(isa.X(3)); got != 0xFFFF {
		t.Errorf("orri = %#x", got)
	}
	if got := m.Reg(isa.X(4)); got != 0x00F0 {
		t.Errorf("eori = %#x", got)
	}
}

func TestNarrowLoadsZeroExtend(t *testing.T) {
	m, _ := run(t, `
		.equ BUF, 0x40000
		la x1, BUF
		movz x2, #0xFFFF
		movk x2, #0xFFFF, lsl #16
		strx x2, [x1, #0]
		ldrb x3, [x1, #0]
		ldrw x4, [x1, #0]
		halt
	`)
	if got := m.Reg(isa.X(3)); got != 0xFF {
		t.Errorf("ldrb = %#x, want 0xFF", got)
	}
	if got := m.Reg(isa.X(4)); got != 0xFFFFFFFF {
		t.Errorf("ldrw = %#x, want 0xFFFFFFFF", got)
	}
}

func TestNegativeMemOffsets(t *testing.T) {
	m, _ := run(t, `
		.equ BUF, 0x40100
		la x1, BUF
		movz x2, #77
		strx x2, [x1, #-8]
		ldrx x3, [x1, #-8]
		halt
	`)
	if got := m.Reg(isa.X(3)); got != 77 {
		t.Errorf("negative offset round trip = %d", got)
	}
}

func TestFCVTZSNegative(t *testing.T) {
	m, _ := run(t, `
		movz x1, #0
		subi x1, x1, #5   // -5
		scvtf v1, x1
		fcvtzs x2, v1
		halt
	`)
	if got := int64(m.Reg(isa.X(2))); got != -5 {
		t.Errorf("fcvtzs(-5.0) = %d", got)
	}
}

func TestVMULLanes(t *testing.T) {
	m, _ := run(t, `
		.equ BUF, 0x40200
		la x1, BUF
		ldrv v1, [x1, #0]
		ldrv v2, [x1, #8]
		vmul v3, v1, v2
		strv v3, [x1, #16]
		halt
		.data BUF
		.word 6
		.word 7
		.word 3
		.word 5
	`)
	got := m.Load(0x40210, 8)
	if uint32(got) != 18 || uint32(got>>32) != 35 {
		t.Errorf("vmul lanes = [%d,%d], want [18,35]", uint32(got), uint32(got>>32))
	}
}

func TestBranchConditionMatrix(t *testing.T) {
	// For (a, b) pairs, check every condition fires exactly as signed
	// comparison dictates.
	cases := []struct {
		a, b int64
	}{{1, 2}, {2, 1}, {3, 3}, {-4, 2}, {2, -4}, {-1, -1}, {-5, -2}}
	for _, c := range cases {
		m, _ := run(t, buildCondProbe(c.a, c.b))
		bits := m.Reg(isa.X(15))
		check := func(bit uint, want bool, name string) {
			got := bits&(1<<bit) != 0
			if got != want {
				t.Errorf("(%d,%d) %s = %v, want %v", c.a, c.b, name, got, want)
			}
		}
		check(0, c.a == c.b, "eq")
		check(1, c.a != c.b, "ne")
		check(2, c.a < c.b, "lt")
		check(3, c.a >= c.b, "ge")
		check(4, c.a > c.b, "gt")
		check(5, c.a <= c.b, "le")
	}
}

func buildCondProbe(a, b int64) string {
	// Loads a and b (possibly negative) and sets one bit in x15 per
	// condition that evaluates true.
	mk := func(v int64, reg string) string {
		if v >= 0 {
			return "movz " + reg + ", #" + itoa(v) + "\n"
		}
		return "movz " + reg + ", #0\nsubi " + reg + ", " + reg + ", #" + itoa(-v) + "\n"
	}
	src := mk(a, "x1") + mk(b, "x2") + "movz x15, #0\ncmp x1, x2\n"
	conds := []string{"eq", "ne", "lt", "ge", "gt", "le"}
	for i, c := range conds {
		src += "b." + c + " yes" + itoa(int64(i)) + "\n"
		src += "b no" + itoa(int64(i)) + "\n"
		src += "yes" + itoa(int64(i)) + ":\n"
		src += "orri x15, x15, #" + itoa(1<<i) + "\n"
		src += "no" + itoa(int64(i)) + ":\n"
	}
	return src + "halt\n"
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
