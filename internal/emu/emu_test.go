package emu

import (
	"errors"
	"testing"

	"racesim/internal/asm"
	"racesim/internal/isa"
)

func run(t *testing.T, src string) (*Machine, []isa.Inst) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	var tr []isa.Inst
	if err := m.Run(1_000_000, func(in isa.Inst) { tr = append(tr, in) }); err != nil {
		t.Fatal(err)
	}
	return m, tr
}

func TestArithmeticLoop(t *testing.T) {
	m, tr := run(t, `
		movz x1, #10
		movz x2, #0
	loop:
		add x2, x2, x1
		subi x1, x1, #1
		cbnz x1, loop
		halt
	`)
	if got := m.Reg(isa.X(2)); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if len(tr) != 2+3*10 {
		t.Errorf("trace length = %d, want 32", len(tr))
	}
}

func TestFlagsAndConditions(t *testing.T) {
	m, _ := run(t, `
		movz x1, #5
		movz x2, #7
		movz x9, #0
		cmp x1, x2
		b.lt less
		movz x9, #1
	less:
		cmp x2, x1
		b.le wrong
		addi x9, x9, #100
	wrong:
		halt
	`)
	if got := m.Reg(isa.X(9)); got != 100 {
		t.Errorf("x9 = %d, want 100 (lt taken, le not taken)", got)
	}
}

func TestSignedCompare(t *testing.T) {
	// -1 < 1 signed.
	m, _ := run(t, `
		movz x1, #0
		subi x1, x1, #1   // x1 = -1
		movz x2, #1
		movz x9, #0
		cmp x1, x2
		b.ge done
		movz x9, #42
	done:
		halt
	`)
	if got := m.Reg(isa.X(9)); got != 42 {
		t.Errorf("x9 = %d, want 42 (signed -1 < 1)", got)
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m, tr := run(t, `
		.equ BUF, 0x40000
		la x1, BUF
		movz x2, #0xABC
		strx x2, [x1, #16]
		ldrx x3, [x1, #16]
		strw x2, [x1, #32]
		ldrw x4, [x1, #32]
		strb x2, [x1, #40]
		ldrb x5, [x1, #40]
		halt
	`)
	if m.Reg(isa.X(3)) != 0xABC {
		t.Errorf("x3 = %#x", m.Reg(isa.X(3)))
	}
	if m.Reg(isa.X(4)) != 0xABC {
		t.Errorf("x4 = %#x", m.Reg(isa.X(4)))
	}
	if m.Reg(isa.X(5)) != 0xBC {
		t.Errorf("x5 = %#x, want 0xBC (byte)", m.Reg(isa.X(5)))
	}
	// Effective addresses recorded in the trace.
	var addrs []uint64
	for _, in := range tr {
		if in.Cls.IsMem() {
			addrs = append(addrs, in.MemAddr)
		}
	}
	want := []uint64{0x40010, 0x40010, 0x40020, 0x40020, 0x40028, 0x40028}
	if len(addrs) != len(want) {
		t.Fatalf("mem ops = %d, want %d", len(addrs), len(want))
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("addr[%d] = %#x, want %#x", i, addrs[i], want[i])
		}
	}
}

func TestInitializedData(t *testing.T) {
	m, _ := run(t, `
		.equ TAB, 0x50000
		la x1, TAB
		ldrx x2, [x1, #0]
		ldrx x3, [x1, #8]
		halt
		.data TAB
		.quad 1234
		.quad 5678
	`)
	if m.Reg(isa.X(2)) != 1234 || m.Reg(isa.X(3)) != 5678 {
		t.Errorf("loaded %d, %d; want 1234, 5678", m.Reg(isa.X(2)), m.Reg(isa.X(3)))
	}
}

func TestUninitializedMemoryReadsZero(t *testing.T) {
	m, _ := run(t, `
		la x1, 0x90000
		ldrx x2, [x1, #0]
		halt
	`)
	if m.Reg(isa.X(2)) != 0 {
		t.Errorf("uninitialized load = %#x, want 0", m.Reg(isa.X(2)))
	}
}

func TestFloatingPoint(t *testing.T) {
	m, _ := run(t, `
		movz x1, #3
		movz x2, #4
		scvtf v1, x1
		scvtf v2, x2
		fmul v3, v1, v2    // 12
		fadd v4, v3, v1    // 15
		fdiv v5, v4, v1    // 5
		fsqrt v6, v5       // sqrt(5)
		fcvtzs x3, v4      // 15
		fsub v7, v4, v3    // 3
		fcmp v7, v1        // equal
		movz x9, #0
		b.ne done
		movz x9, #1
	done:
		halt
	`)
	if got := m.Reg(isa.X(3)); got != 15 {
		t.Errorf("fcvtzs = %d, want 15", got)
	}
	if got := m.VReg(isa.V(5)); got != 5 {
		t.Errorf("fdiv = %v, want 5", got)
	}
	if got := m.Reg(isa.X(9)); got != 1 {
		t.Errorf("fcmp equality branch failed, x9 = %d", got)
	}
}

func TestCallReturn(t *testing.T) {
	m, tr := run(t, `
		movz x1, #1
		bl fn
		addi x1, x1, #100
		halt
	fn:
		addi x1, x1, #10
		ret
	`)
	if got := m.Reg(isa.X(1)); got != 111 {
		t.Errorf("x1 = %d, want 111", got)
	}
	var sawCall, sawRet bool
	for _, in := range tr {
		if in.Cls == isa.ClassCall && in.Taken {
			sawCall = true
		}
		if in.Cls == isa.ClassRet && in.Taken {
			sawRet = true
			if in.Target != 0x1008 {
				t.Errorf("ret target = %#x, want 0x1008", in.Target)
			}
		}
	}
	if !sawCall || !sawRet {
		t.Error("call/ret not observed in trace")
	}
}

func TestIndirectBranch(t *testing.T) {
	m, tr := run(t, `
		la x5, case1
		br x5
		movz x9, #1   // skipped
	case1:
		movz x9, #7
		halt
	`)
	if got := m.Reg(isa.X(9)); got != 7 {
		t.Errorf("x9 = %d, want 7", got)
	}
	found := false
	for _, in := range tr {
		if in.Cls == isa.ClassBranchInd {
			found = true
			if !in.Taken {
				t.Error("br should be taken")
			}
		}
	}
	if !found {
		t.Error("no indirect branch in trace")
	}
}

func TestDivideByZero(t *testing.T) {
	m, _ := run(t, `
		movz x1, #10
		movz x2, #0
		sdiv x3, x1, x2
		halt
	`)
	if got := m.Reg(isa.X(3)); got != 0 {
		t.Errorf("div by zero = %d, want 0 (AArch64 semantics)", got)
	}
}

func TestMovzMovkComposition(t *testing.T) {
	m, _ := run(t, `
		movz x1, #0x1111
		movk x1, #0x2222, lsl #16
		movk x1, #0x3333, lsl #32
		movk x1, #0x4444, lsl #48
		halt
	`)
	if got := m.Reg(isa.X(1)); got != 0x4444333322221111 {
		t.Errorf("x1 = %#x", got)
	}
}

func TestInstructionBudget(t *testing.T) {
	p := asm.MustAssemble(`
	spin:
		b spin
	`)
	m := New(p)
	err := m.Run(100, nil)
	if !errors.Is(err, ErrMaxInstructions) {
		t.Errorf("err = %v, want ErrMaxInstructions", err)
	}
	if m.ICount() != 100 {
		t.Errorf("icount = %d, want 100", m.ICount())
	}
}

func TestPCOutOfRange(t *testing.T) {
	p := asm.MustAssemble(`nop`) // runs off the end of code
	m := New(p)
	if err := m.Run(10, nil); err == nil {
		t.Error("expected fetch error running past code end")
	}
}

func TestSIMDLanes(t *testing.T) {
	m, _ := run(t, `
		.equ BUF, 0x60000
		la x1, BUF
		ldrv v1, [x1, #0]
		ldrv v2, [x1, #8]
		vadd v3, v1, v2
		vmul v4, v1, v2
		strv v3, [x1, #16]
		halt
		.data BUF
		.word 3
		.word 5
		.word 10
		.word 20
	`)
	// lanes: v1 = [3,5], v2 = [10,20] -> add [13,25], mul [30,100]
	got := m.Load(0x60010, 8)
	if uint32(got) != 13 || uint32(got>>32) != 25 {
		t.Errorf("vadd lanes = [%d,%d], want [13,25]", uint32(got), uint32(got>>32))
	}
}
