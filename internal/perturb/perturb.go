package perturb

import (
	"math"
	"math/rand"

	"racesim/internal/hw"
	"racesim/internal/irace"
	"racesim/internal/par"
	"racesim/internal/sim"
	"racesim/internal/simcache"
	"racesim/internal/trace"
)

// Workload pairs an evaluation trace with its board measurement.
type Workload struct {
	Name     string
	Trace    *trace.Trace
	Counters hw.Counters
}

// Options tunes the search.
type Options struct {
	// Restarts is the number of random single-step starting points
	// (besides the optimum itself).
	Restarts int
	// MaxPasses bounds coordinate-ascent sweeps per restart.
	MaxPasses int
	Seed      int64
	// Cache, when non-nil, memoizes simulation results; the ascent
	// re-visits many configurations (the optimum value of each parameter,
	// repeatedly), so sharing the experiment-wide cache pays directly.
	Cache *simcache.Cache
	// Parallelism bounds concurrent workload simulations per evaluated
	// configuration (<=1: sequential).
	Parallelism int
	Log         func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Restarts <= 0 {
		o.Restarts = 2
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 2
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// Result is the worst near-optimum configuration found.
type Result struct {
	Config sim.Config
	// Errors per workload, aligned with the input slice.
	Errors    []float64
	MeanError float64
	// Deviations counts parameters that differ from the optimum.
	Deviations int
}

// meanError evaluates a configuration against all workloads, in parallel
// up to o.Parallelism, memoizing through o.Cache when set.
func meanError(cfg sim.Config, ws []Workload, o Options) ([]float64, float64, error) {
	errs := make([]float64, len(ws))
	err := par.ForEach(len(ws), o.Parallelism, func(i int) error {
		res, err := o.Cache.Run(cfg, ws[i].Trace)
		if err != nil {
			return err
		}
		errs[i] = math.Abs(res.CPI()-ws[i].Counters.CPI) / ws[i].Counters.CPI
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	total := 0.0
	for _, e := range errs {
		total += e
	}
	return errs, total / float64(len(ws)), nil
}

// neighbors returns the value strings one step away for an ordered
// parameter (or nothing for categorical parameters, which the study keeps
// at their optimum).
func neighbors(d sim.ParamDef, current string) []string {
	if !d.Ordered {
		return nil
	}
	idx := -1
	for i, v := range d.Values {
		if v == current {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	var out []string
	if idx > 0 {
		out = append(out, d.Values[idx-1])
	}
	if idx+1 < len(d.Values) {
		out = append(out, d.Values[idx+1])
	}
	return out
}

// WorstNearOptimum searches for the worst configuration within one step of
// the tuned optimum, evaluated on the given workloads.
func WorstNearOptimum(tuned sim.Config, ws []Workload, opt Options) (*Result, error) {
	o := opt.withDefaults()
	defs := sim.Params(tuned.Kind)
	optimum := sim.Extract(tuned)
	rng := rand.New(rand.NewSource(o.Seed))

	apply := func(a irace.Assignment) (sim.Config, bool) {
		cfg, err := sim.Apply(tuned, a)
		if err != nil {
			return sim.Config{}, false
		}
		return cfg, true
	}

	evaluate := func(a irace.Assignment) (float64, bool) {
		cfg, ok := apply(a)
		if !ok {
			return 0, false
		}
		_, m, err := meanError(cfg, ws, o)
		if err != nil {
			return 0, false
		}
		return m, true
	}

	best := optimum.Clone()
	bestErr, ok := evaluate(best)
	if !ok {
		_, m, err := meanError(tuned, ws, o)
		if err != nil {
			return nil, err
		}
		bestErr = m
	}

	start := func(r int) irace.Assignment {
		a := optimum.Clone()
		if r == 0 {
			return a
		}
		// Random single-step start: perturb each ordered param with
		// probability 1/2.
		for _, d := range defs {
			ns := neighbors(d, a[d.Name])
			if len(ns) == 0 || rng.Intn(2) == 0 {
				continue
			}
			a[d.Name] = ns[rng.Intn(len(ns))]
		}
		return a
	}

	for r := 0; r <= o.Restarts; r++ {
		cur := start(r)
		curErr, ok := evaluate(cur)
		if !ok {
			continue
		}
		for pass := 0; pass < o.MaxPasses; pass++ {
			improved := false
			for _, d := range defs {
				// Candidate values: optimum value and its one-step
				// neighbours (the current value is among them).
				cands := append([]string{optimum[d.Name]}, neighbors(d, optimum[d.Name])...)
				bestVal := cur[d.Name]
				for _, v := range cands {
					if v == cur[d.Name] {
						continue
					}
					trial := cur.Clone()
					trial[d.Name] = v
					e, ok := evaluate(trial)
					if ok && e > curErr {
						curErr = e
						bestVal = v
						improved = true
					}
				}
				cur[d.Name] = bestVal
			}
			if !improved {
				break
			}
		}
		o.Log("perturb: restart %d reached mean error %.1f%%", r, curErr*100)
		if curErr > bestErr {
			bestErr = curErr
			best = cur.Clone()
		}
	}

	worstCfg, ok := apply(best)
	if !ok {
		worstCfg = tuned
	}
	worstCfg.Name = tuned.Name + "-worst1step"
	errs, mean, err := meanError(worstCfg, ws, o)
	if err != nil {
		return nil, err
	}
	dev := 0
	for _, d := range defs {
		if best[d.Name] != optimum[d.Name] {
			dev++
		}
	}
	return &Result{Config: worstCfg, Errors: errs, MeanError: mean, Deviations: dev}, nil
}
