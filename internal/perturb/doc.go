// Package perturb implements the paper's "impact of modeling errors"
// study (Figs. 7–8): starting from the tuned optimum, find the
// configuration that maximizes CPI error while every ordered parameter
// stays within a single step of its optimal value. The paper's exhaustive
// search over all single-step deviations is intractable verbatim (3^64
// combinations), so we use greedy coordinate ascent with random restarts,
// which finds the same kind of worst case: many individually-reasonable
// one-step mistakes compounding into a badly imbalanced model.
//
// The search evaluates thousands of near-identical configurations on the
// same workloads, so it accepts a shared simulation cache
// (Options.Cache): revisited (configuration, workload) pairs — the
// optimum value of each parameter, repeatedly — are answered from memory,
// and a bounded worker pool (Options.Parallelism) fans the per-workload
// simulations of each candidate out across cores. Both knobs change only
// wall-clock time, never the result.
package perturb
