package perturb

import (
	"testing"

	"racesim/internal/hw"
	"racesim/internal/sim"
	"racesim/internal/workload"
)

func workloads(t *testing.T, board *hw.Board, n int) []Workload {
	t.Helper()
	var out []Workload
	for _, p := range workload.Profiles()[:n] {
		tr, err := workload.Generate(p, workload.Options{Events: 20_000})
		if err != nil {
			t.Fatal(err)
		}
		c, err := board.Measure(tr)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Workload{Name: p.Name, Trace: tr, Counters: c})
	}
	return out
}

func TestWorstNearOptimumInflatesError(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	// Use the ground truth as the "tuned optimum": its own error is just
	// the measurement noise, so single-step deviations must hurt.
	tuned := p.A53.TrueConfig()
	ws := workloads(t, p.A53, 4)
	_, optErr, err := meanError(tuned, ws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := WorstNearOptimum(tuned, ws, Options{Restarts: 1, MaxPasses: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("optimum error %.1f%% -> worst one-step %.1f%% (%d deviations)",
		optErr*100, res.MeanError*100, res.Deviations)
	if res.MeanError <= optErr*2 {
		t.Errorf("one-step worst case %.3f should be well above optimum %.3f", res.MeanError, optErr)
	}
	if res.Deviations == 0 {
		t.Error("worst configuration deviates in zero parameters")
	}
	if len(res.Errors) != len(ws) {
		t.Errorf("%d per-workload errors, want %d", len(res.Errors), len(ws))
	}
}

func TestNeighborsRespectBounds(t *testing.T) {
	defs := sim.Params(sim.InOrder)
	for _, d := range defs {
		if !d.Ordered || len(d.Values) < 2 {
			continue
		}
		if ns := neighbors(d, d.Values[0]); len(ns) != 1 || ns[0] != d.Values[1] {
			t.Errorf("%s: neighbors at low edge = %v", d.Name, ns)
		}
		last := len(d.Values) - 1
		if ns := neighbors(d, d.Values[last]); len(ns) != 1 || ns[0] != d.Values[last-1] {
			t.Errorf("%s: neighbors at high edge = %v", d.Name, ns)
		}
		if len(d.Values) > 2 {
			if ns := neighbors(d, d.Values[1]); len(ns) != 2 {
				t.Errorf("%s: interior neighbors = %v", d.Name, ns)
			}
		}
	}
}
