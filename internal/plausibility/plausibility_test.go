package plausibility

import (
	"testing"

	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/core"
	"racesim/internal/hw"
	"racesim/internal/prefetch"
	"racesim/internal/sim"
	"racesim/internal/ubench"
)

// registeredConfigs is every core/board configuration the repo ships:
// the two public presets and the two hidden reference-board truths. A
// new kind added here gets the physical-bound sweep for free.
func registeredConfigs(t *testing.T) map[string]sim.Config {
	t.Helper()
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]sim.Config{
		"public-a53": sim.PublicA53(),
		"public-a72": sim.PublicA72(),
		"true-a53":   p.A53.TrueConfig(),
		"true-a72":   p.A72.TrueConfig(),
	}
}

func TestRegisteredConfigsArePhysical(t *testing.T) {
	for name, cfg := range registeredConfigs(t) {
		if vs := CheckConfig(cfg); len(vs) != 0 {
			t.Errorf("%s: config violates physical bounds: %v", name, vs)
		}
		if w := IssueWidth(cfg); w <= 0 {
			t.Errorf("%s: issue width %d", name, w)
		}
	}
}

// TestSimulatedSuiteIsPhysical runs the whole Table I suite through
// every registered configuration and asserts no benchmark produces a
// nonphysical result: IPC bounded by issue width, miss counts bounded
// by accesses, mispredicts bounded by branches.
func TestSimulatedSuiteIsPhysical(t *testing.T) {
	for name, cfg := range registeredConfigs(t) {
		for _, b := range ubench.Suite() {
			tr, err := b.Trace(ubench.Options{Scale: 0.002})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, b.Name, err)
			}
			res, err := cfg.Run(tr)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, b.Name, err)
			}
			if vs := CheckResult(cfg, res); len(vs) != 0 {
				t.Errorf("%s/%s: nonphysical result: %v", name, b.Name, vs)
			}
		}
	}
}

// TestL1DMissesMonotonicWithCacheSize grows the L1D at a fixed set
// count (so each larger cache strictly contains the smaller one's
// content under LRU — the inclusion property) with prefetching off, and
// asserts the miss count never increases with size.
func TestL1DMissesMonotonicWithCacheSize(t *testing.T) {
	b, ok := ubench.ByName("MD")
	if !ok {
		t.Fatal("bench MD not registered")
	}
	tr, err := b.Trace(ubench.Options{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// 64B lines: (16KB, 2-way), (32KB, 4-way), (64KB, 8-way) all index
	// into 128 sets.
	geoms := []struct{ sizeKB, assoc int }{{16, 2}, {32, 4}, {64, 8}}
	var prev uint64
	for i, g := range geoms {
		cfg := sim.PublicA53()
		cfg.Mem.L1D.SizeKB = g.sizeKB
		cfg.Mem.L1D.Assoc = g.assoc
		cfg.Mem.L1D.Repl = cache.ReplLRU
		cfg.Mem.L1D.Prefetch = prefetch.Config{Kind: prefetch.KindNone, Degree: 1, Distance: 1, TableEntries: 16, GHBEntries: 16}
		res, err := cfg.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		misses := res.Mem.L1D.Misses
		t.Logf("%dKB/%d-way: %d L1D misses", g.sizeKB, g.assoc, misses)
		if i > 0 && misses > prev {
			t.Errorf("L1D misses increased with cache size: %d (%dKB) > %d (%dKB)",
				misses, g.sizeKB, prev, geoms[i-1].sizeKB)
		}
		prev = misses
	}
}

func TestCheckConfigFlagsInjectedViolations(t *testing.T) {
	cfg := sim.PublicA53()
	cfg.Lat.FPDiv = -1
	cfg.Mem.L1D.HitLatency = -3
	vs := CheckConfig(cfg)
	if len(vs) != 2 {
		t.Fatalf("%d violations, want 2: %v", len(vs), vs)
	}
	// Deterministic order: the fixed sweep lists lat.fp_div before l1d.hit.
	if vs[0].Invariant != "latency>=0" || vs[0].Detail != "lat.fp_div = -1 cycles" {
		t.Errorf("violation 0 = %v", vs[0])
	}
	if vs[1].Detail != "l1d.hit = -3 cycles" {
		t.Errorf("violation 1 = %v", vs[1])
	}

	cfg = sim.PublicA53()
	cfg.Width = 0
	cfg.Kind = sim.InOrder
	if vs := CheckConfig(cfg); len(vs) != 1 || vs[0].Invariant != "width>0" {
		t.Errorf("zero-width core: %v", vs)
	}
}

func TestCheckResultFlagsInjectedViolations(t *testing.T) {
	cfg := sim.PublicA53() // in-order, width 2
	base := core.Result{Instructions: 1000, Cycles: 600}

	if vs := CheckResult(cfg, base); len(vs) != 0 {
		t.Errorf("IPC 1.67 on a dual-issue core flagged: %v", vs)
	}

	fast := base
	fast.Cycles = 400 // IPC 2.5 > width 2
	if vs := CheckResult(cfg, fast); len(vs) != 1 || vs[0].Invariant != "ipc<=width" {
		t.Errorf("superscalar-impossible IPC: %v", vs)
	}

	zero := base
	zero.Cycles = 0
	if vs := CheckResult(cfg, zero); len(vs) != 1 || vs[0].Invariant != "cycles>0" {
		t.Errorf("zero cycles: %v", vs)
	}

	leaky := base
	leaky.Mem.L1D = cache.Stats{Accesses: 100, Hits: 80, Misses: 30}
	if vs := CheckResult(cfg, leaky); len(vs) != 1 || vs[0].Invariant != "misses<=accesses" {
		t.Errorf("hits+misses > accesses: %v", vs)
	}

	wild := base
	wild.Branch = branch.Stats{Branches: 10, DirectionMiss: 11}
	if vs := CheckResult(cfg, wild); len(vs) != 1 || vs[0].Invariant != "mispredicts<=branches" {
		t.Errorf("mispredicts > branches: %v", vs)
	}

	// An empty result (no instructions) is vacuously physical.
	if vs := CheckResult(cfg, core.Result{}); len(vs) != 0 {
		t.Errorf("empty result flagged: %v", vs)
	}
}

func TestCheckStringsStable(t *testing.T) {
	cfg := sim.PublicA53()
	res := core.Result{Instructions: 1000, Cycles: 400}
	ss := CheckStrings(cfg, res)
	if len(ss) != 1 {
		t.Fatalf("%d strings, want 1", len(ss))
	}
	want := "ipc<=width: IPC 2.500 exceeds issue width 2 (CPI 0.400 < 0.500)"
	if ss[0] != want {
		t.Errorf("rendered violation %q, want %q", ss[0], want)
	}
	if CheckStrings(cfg, core.Result{Instructions: 1000, Cycles: 600}) != nil {
		t.Error("clean result must render to nil, not an empty slice")
	}
}
