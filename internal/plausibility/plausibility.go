// Package plausibility asserts physical bounds on simulator
// configurations and results: a simulated core, whatever its parameters,
// cannot retire more instructions per cycle than its issue width, see
// more cache misses than accesses, or take negative time to do anything.
//
// The checks run two ways. The test suite sweeps every registered
// core/board kind through them, so a new scenario dimension (a prefetch
// variant, a DVFS point, an imported trace) cannot silently go
// nonphysical; and validate's report collection runs them on every
// simulated benchmark, so a ValidationReport carries any violation next
// to the accuracy statistics it would otherwise quietly distort.
package plausibility

import (
	"fmt"

	"racesim/internal/cache"
	"racesim/internal/core"
	"racesim/internal/sim"
)

// Violation is one broken physical invariant.
type Violation struct {
	// Invariant is the short stable name of the rule (e.g. "ipc<=width").
	Invariant string
	// Detail states the observed values that break it.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

func violation(out []Violation, invariant, format string, args ...any) []Violation {
	return append(out, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// IssueWidth returns the configuration's sustained-IPC bound: the issue
// width of an in-order core, the narrower of dispatch and retire width
// of an out-of-order core (0 when the configuration declares neither).
func IssueWidth(cfg sim.Config) int {
	switch cfg.Kind {
	case sim.InOrder:
		return cfg.Width
	case sim.OutOfOrder:
		w := cfg.DispatchWidth
		if cfg.RetireWidth > 0 && (w <= 0 || cfg.RetireWidth < w) {
			w = cfg.RetireWidth
		}
		return w
	}
	return 0
}

// CheckConfig verifies the static physical bounds of a configuration:
// no negative latency anywhere in the machine. Config.Validate already
// rejects most degenerate values; this is the belt-and-braces sweep a
// future scenario dimension cannot dodge by adding a field Validate
// forgot.
func CheckConfig(cfg sim.Config) []Violation {
	var out []Violation
	lat := map[string]int{
		"lat.int_alu": cfg.Lat.IntALU, "lat.int_mul": cfg.Lat.IntMul,
		"lat.int_div": cfg.Lat.IntDiv, "lat.fp_add": cfg.Lat.FPAdd,
		"lat.fp_mul": cfg.Lat.FPMul, "lat.fp_div": cfg.Lat.FPDiv,
		"lat.fp_cvt": cfg.Lat.FPCvt, "lat.simd": cfg.Lat.SIMD,
		"lat.int_div_ii": cfg.Lat.IntDivII, "lat.fp_div_ii": cfg.Lat.FPDivII,
		"l1i.hit":             cfg.Mem.L1I.HitLatency,
		"l1d.hit":             cfg.Mem.L1D.HitLatency,
		"l2.hit":              cfg.Mem.L2.HitLatency,
		"dram.latency":        cfg.Mem.DRAM.LatencyCycles,
		"dram.burst":          cfg.Mem.DRAM.BurstCycles,
		"tlb.miss":            cfg.Mem.TLBMissLatency,
		"frontend.mispredict": cfg.FrontEnd.MispredictPenalty,
		"frontend.btb_miss":   cfg.FrontEnd.BTBMissPenalty,
		"mem.zero_fill":       cfg.Mem.ZeroFillLatency,
	}
	// Deterministic order for stable reports.
	for _, name := range []string{
		"lat.int_alu", "lat.int_mul", "lat.int_div", "lat.fp_add",
		"lat.fp_mul", "lat.fp_div", "lat.fp_cvt", "lat.simd",
		"lat.int_div_ii", "lat.fp_div_ii",
		"l1i.hit", "l1d.hit", "l2.hit", "dram.latency", "dram.burst",
		"tlb.miss", "frontend.mispredict", "frontend.btb_miss",
		"mem.zero_fill",
	} {
		if lat[name] < 0 {
			out = violation(out, "latency>=0", "%s = %d cycles", name, lat[name])
		}
	}
	if w := IssueWidth(cfg); w <= 0 {
		out = violation(out, "width>0", "core kind %s declares issue width %d", cfg.Kind, w)
	}
	return out
}

// CheckResult verifies a simulation result against the physical bounds
// of its configuration (static bounds are CheckConfig's job, kept
// separate so per-benchmark sweeps do not repeat them):
//
//   - cycles > 0 whenever instructions retired, and CPI >= 1/width
//     (equivalently IPC <= issue width): no core finishes faster than
//     its narrowest pipeline stage allows;
//   - per cache level, hits + misses account for at most the accesses
//     seen, so miss rates stay in [0, 1];
//   - branch mispredictions cannot exceed branches seen.
func CheckResult(cfg sim.Config, res core.Result) []Violation {
	var out []Violation
	if res.Instructions == 0 {
		return out
	}
	if res.Cycles == 0 {
		return violation(out, "cycles>0", "%d instructions retired in 0 cycles", res.Instructions)
	}
	if w := IssueWidth(cfg); w > 0 {
		ipc := res.IPC()
		if ipc > float64(w) {
			out = violation(out, "ipc<=width", "IPC %.3f exceeds issue width %d (CPI %.3f < %.3f)",
				ipc, w, res.CPI(), 1/float64(w))
		}
	}
	for _, lvl := range []struct {
		name string
		s    cache.Stats
	}{{"l1i", res.Mem.L1I}, {"l1d", res.Mem.L1D}, {"l2", res.Mem.L2}} {
		if lvl.s.Hits+lvl.s.Misses > lvl.s.Accesses {
			out = violation(out, "misses<=accesses", "%s: %d hits + %d misses > %d accesses",
				lvl.name, lvl.s.Hits, lvl.s.Misses, lvl.s.Accesses)
		}
	}
	if res.Branch.Mispredicts() > res.Branch.Branches+res.Branch.Indirect+res.Branch.Returns {
		out = violation(out, "mispredicts<=branches", "%d mispredicts > %d branches",
			res.Branch.Mispredicts(), res.Branch.Branches+res.Branch.Indirect+res.Branch.Returns)
	}
	return out
}

// CheckStrings is CheckResult rendered to stable strings — the form a
// ValidationReport embeds.
func CheckStrings(cfg sim.Config, res core.Result) []string {
	vs := CheckResult(cfg, res)
	if len(vs) == 0 {
		return nil
	}
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}
