// Package hw is the stand-in for the paper's real hardware: a Firefly
// RK3399-like reference board whose Cortex-A53 and Cortex-A72 cores are
// instances of the same timing-model family, but with a hidden ground-truth
// configuration (secret values for every parameter the public presets can
// only guess), micro-architectural behaviours the public model initially
// lacks (indirect-branch prediction, the zero-fill page optimization, an
// undisclosed spatial prefetcher on the A72), and deterministic
// pseudo-measurement noise.
//
// The only sanctioned way to observe a board is the perf-like counter API
// (Measure); the tuner never sees the configuration. TrueConfig is exported
// solely so experiments can verify parameter recovery after the fact, which
// a real lab would do by consulting the vendor.
package hw

import (
	"fmt"
	"hash/fnv"

	"racesim/internal/branch"
	"racesim/internal/cache"
	"racesim/internal/core"
	"racesim/internal/dram"
	"racesim/internal/prefetch"
	"racesim/internal/sim"
	"racesim/internal/trace"
)

// Counters is the set of performance counters the board exposes, mirroring
// what Linux perf provides on ARM cores.
type Counters struct {
	Instructions uint64
	Cycles       uint64
	CPI          float64
	BranchMPKI   float64
	L1DMPKI      float64
	L2MPKI       float64
	L1IMPKI      float64
}

// Board is one core of the reference platform.
type Board struct {
	Name    string
	FreqGHz float64

	cfg   sim.Config
	noise float64 // relative measurement-noise amplitude
}

// NewBoard wraps a configuration as a measurable board. noise is the
// relative amplitude of the deterministic pseudo-noise (0.01 = ±1%).
func NewBoard(name string, freqGHz float64, cfg sim.Config, noise float64) (*Board, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("hw: %w", err)
	}
	if noise < 0 || noise > 0.2 {
		return nil, fmt.Errorf("hw: noise %v out of [0, 0.2]", noise)
	}
	return &Board{Name: name, FreqGHz: freqGHz, cfg: cfg, noise: noise}, nil
}

// noiseFactor derives a deterministic factor in [1-noise, 1+noise] from
// the trace identity, so repeated measurements are stable but different
// workloads see different "runs".
func (b *Board) noiseFactor(tr *trace.Trace) float64 {
	if b.noise == 0 {
		return 1
	}
	h := fnv.New64a()
	h.Write([]byte(b.Name))
	h.Write([]byte(tr.Name))
	var lenBytes [8]byte
	n := uint64(tr.Len())
	for i := range lenBytes {
		lenBytes[i] = byte(n >> (8 * i))
	}
	h.Write(lenBytes[:])
	u := float64(h.Sum64()%2_000_001)/1_000_000 - 1 // [-1, 1]
	return 1 + b.noise*u
}

// Measure runs tr on the board and returns its performance counters.
func (b *Board) Measure(tr *trace.Trace) (Counters, error) {
	res, err := b.cfg.Run(tr)
	if err != nil {
		return Counters{}, fmt.Errorf("hw: %s: %w", b.Name, err)
	}
	f := b.noiseFactor(tr)
	cycles := uint64(float64(res.Cycles) * f)
	if cycles == 0 {
		cycles = 1
	}
	c := Counters{
		Instructions: res.Instructions,
		Cycles:       cycles,
		BranchMPKI:   res.Branch.MPKI(res.Instructions),
		L1DMPKI:      res.Mem.L1D.MPKI(res.Instructions),
		L2MPKI:       res.Mem.L2.MPKI(res.Instructions),
		L1IMPKI:      res.Mem.L1I.MPKI(res.Instructions),
	}
	if res.Instructions > 0 {
		c.CPI = float64(cycles) / float64(res.Instructions)
	}
	return c, nil
}

// TrueConfig exposes the hidden configuration for post-hoc verification in
// experiments. Tuning code must never call this.
func (b *Board) TrueConfig() sim.Config { return b.cfg }

// TrueA53 is the hidden ground truth for the board's in-order core. Every
// tunable value lies inside the search space of sim.Params(InOrder); the
// abstraction-level quirks (zero-fill, correct decoder) do not.
func TrueA53() sim.Config {
	cfg := sim.PublicA53()
	cfg.Name = "firefly-a53"
	cfg.DecoderDepBug = false

	cfg.Branch = branch.Config{
		Kind:            branch.KindGShare,
		BimodalEntries:  4096,
		GShareEntries:   4096,
		HistoryBits:     8,
		ChooserEntries:  2048,
		BTBEntries:      256,
		BTBAssoc:        2,
		RASEntries:      8,
		IndirectEnabled: true,
		IndirectEntries: 256,
		IndirectHistory: 4,
	}
	cfg.FrontEnd = core.FrontEndConfig{MispredictPenalty: 10, BTBMissPenalty: 2, FetchWidth: 2}

	cfg.Lat = core.LatencyConfig{
		IntALU: 1, IntMul: 3, IntDiv: 12, FPAdd: 4, FPMul: 4, FPDiv: 18,
		FPCvt: 3, SIMD: 3,
		IntDivII: 12, FPDivII: 18, // divides are not pipelined
	}
	cfg.Pipes = core.PipesConfig{
		IntALU: 2, IntMul: 1, IntDiv: 1, FP: 1, FPDiv: 1, Load: 1, Store: 1, Branch: 1,
	}
	cfg.MSHRs = 3
	cfg.StoreBufferEntries = 6
	cfg.DualIssueLoadStore = true
	cfg.MaxMemPerCycle = 1

	cfg.Mem.L1D.HitLatency = 3
	cfg.Mem.L1D.Repl = cache.ReplPLRU
	cfg.Mem.L1D.Prefetch = prefetch.Config{
		Kind: prefetch.KindStride, Degree: 2, Distance: 2, TableEntries: 32, GHBEntries: 256,
	}
	cfg.Mem.L1I.HitLatency = 1
	cfg.Mem.L1I.Prefetch = prefetch.Config{Kind: prefetch.KindNextLine, Degree: 1, Distance: 1, TableEntries: 16, GHBEntries: 16}

	cfg.Mem.L2.HitLatency = 12
	cfg.Mem.L2.TagDataSerial = true
	cfg.Mem.L2.Repl = cache.ReplLRU
	cfg.Mem.L2.MSHRs = 8
	cfg.Mem.L2.Prefetch = prefetch.DefaultConfig()

	cfg.Mem.ITLBEntries = 32
	cfg.Mem.DTLBEntries = 32
	cfg.Mem.TLBMissLatency = 20
	cfg.Mem.DRAM = dram.Config{LatencyCycles: 180, BurstCycles: 6, QueueDepth: 16}

	// Hardware behaviours outside the public model (abstraction gaps).
	cfg.Mem.ZeroFillOpt = true
	cfg.Mem.ZeroFillLatency = 48
	return cfg
}

// TrueA72 is the hidden ground truth for the board's out-of-order core.
// Its L2 uses the undisclosed spatial prefetcher, which the tuner's space
// cannot express — the source of the paper's residual A72 error.
func TrueA72() sim.Config {
	cfg := sim.PublicA72()
	cfg.Name = "firefly-a72"
	cfg.DecoderDepBug = false

	cfg.Branch = branch.Config{
		Kind:            branch.KindTournament,
		BimodalEntries:  4096,
		GShareEntries:   4096,
		HistoryBits:     10,
		ChooserEntries:  2048,
		BTBEntries:      512,
		BTBAssoc:        2,
		RASEntries:      16,
		IndirectEnabled: true,
		IndirectEntries: 512,
		IndirectHistory: 8,
	}
	cfg.FrontEnd = core.FrontEndConfig{MispredictPenalty: 14, BTBMissPenalty: 2, FetchWidth: 3}

	cfg.Lat = core.LatencyConfig{
		IntALU: 1, IntMul: 3, IntDiv: 10, FPAdd: 4, FPMul: 4, FPDiv: 14,
		FPCvt: 3, SIMD: 3,
		IntDivII: 8, FPDivII: 10,
	}
	cfg.Pipes = core.PipesConfig{
		IntALU: 2, IntMul: 1, IntDiv: 1, FP: 2, FPDiv: 1, Load: 1, Store: 1, Branch: 1,
	}
	cfg.MSHRs = 6
	cfg.ROBEntries = 128
	cfg.IQEntries = 48
	cfg.LQEntries = 16
	cfg.SQEntries = 16
	cfg.RetireWidth = 3

	cfg.Mem.L1D.HitLatency = 4
	cfg.Mem.L1D.Ports = 2
	cfg.Mem.L1D.Prefetch = prefetch.Config{
		Kind: prefetch.KindStride, Degree: 2, Distance: 4, TableEntries: 64, GHBEntries: 256,
	}
	cfg.Mem.L1I.HitLatency = 1
	cfg.Mem.L1I.Prefetch = prefetch.Config{Kind: prefetch.KindNextLine, Degree: 2, Distance: 1, TableEntries: 16, GHBEntries: 16}

	cfg.Mem.L2.HitLatency = 18
	cfg.Mem.L2.Hash = cache.HashXor
	cfg.Mem.L2.Repl = cache.ReplPLRU
	cfg.Mem.L2.MSHRs = 12
	// The abstraction gap: an aggressive spatial prefetcher that the
	// public model cannot configure (prefetch.KindSpatial is not offered
	// to the tuner).
	cfg.Mem.L2.Prefetch = prefetch.Config{
		Kind: prefetch.KindSpatial, Degree: 4, Distance: 1, TableEntries: 64, GHBEntries: 256,
	}

	cfg.Mem.ITLBEntries = 48
	cfg.Mem.DTLBEntries = 48
	cfg.Mem.TLBMissLatency = 20
	cfg.Mem.DRAM = dram.Config{LatencyCycles: 180, BurstCycles: 6, QueueDepth: 16}

	cfg.Mem.ZeroFillOpt = true
	cfg.Mem.ZeroFillLatency = 48
	return cfg
}

// Platform is the full Firefly RK3399-like board: one A53-class core and
// one A72-class core.
type Platform struct {
	A53 *Board
	A72 *Board
}

// Firefly returns the reference platform with the paper's clock speeds and
// ±1% measurement noise.
func Firefly() (*Platform, error) {
	a53, err := NewBoard("firefly-a53", 1.51, TrueA53(), 0.01)
	if err != nil {
		return nil, err
	}
	a72, err := NewBoard("firefly-a72", 1.99, TrueA72(), 0.01)
	if err != nil {
		return nil, err
	}
	return &Platform{A53: a53, A72: a72}, nil
}
