package hw

import (
	"testing"

	"racesim/internal/prefetch"
	"racesim/internal/sim"
	"racesim/internal/trace"
	"racesim/internal/ubench"
)

func TestTrueConfigsValidate(t *testing.T) {
	for _, cfg := range []sim.Config{TrueA53(), TrueA72()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestTrueTunablesInsideSearchSpace(t *testing.T) {
	// Every tunable of the ground truth must be a value the tuner could
	// select — except the deliberate abstraction gaps.
	for _, cfg := range []sim.Config{TrueA53(), TrueA72()} {
		space, err := sim.Space(cfg.Kind)
		if err != nil {
			t.Fatal(err)
		}
		a := sim.Extract(cfg)
		err = space.Validate(a)
		if cfg.Kind == sim.InOrder {
			if err != nil {
				t.Errorf("%s: ground truth outside space: %v", cfg.Name, err)
			}
		} else {
			// The A72's spatial L2 prefetcher is intentionally outside.
			if err == nil {
				t.Errorf("%s: expected the spatial prefetcher to be outside the space", cfg.Name)
			}
			a["l2.prefetch.kind"] = "stride"
			if err := space.Validate(a); err != nil {
				t.Errorf("%s: after masking the prefetcher, still outside: %v", cfg.Name, err)
			}
		}
	}
}

func TestAbstractionGapsPresent(t *testing.T) {
	a53, a72 := TrueA53(), TrueA72()
	if !a53.Mem.ZeroFillOpt || !a72.Mem.ZeroFillOpt {
		t.Error("boards must implement the zero-fill page optimization")
	}
	if a53.DecoderDepBug || a72.DecoderDepBug {
		t.Error("boards must decode correctly")
	}
	if a72.Mem.L2.Prefetch.Kind != prefetch.KindSpatial {
		t.Error("A72 must use the undisclosed spatial prefetcher")
	}
	pub53, pub72 := sim.PublicA53(), sim.PublicA72()
	if pub53.Mem.ZeroFillOpt || pub72.Mem.ZeroFillOpt {
		t.Error("public models must not know about zero-fill")
	}
	if !pub53.DecoderDepBug || !pub72.DecoderDepBug {
		t.Error("public models start with the decoder bug")
	}
}

func TestMeasureDeterministicWithNoise(t *testing.T) {
	p, err := Firefly()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ubench.ByName("ED1")
	tr, err := b.Trace(ubench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := p.A53.Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.A53.Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("repeated measurement differs (noise must be deterministic)")
	}
	if c1.CPI <= 0 || c1.Instructions == 0 {
		t.Errorf("bad counters: %+v", c1)
	}
	// Noise must actually perturb relative to the noiseless run.
	noiseless, err := NewBoard("x", 1.5, TrueA53(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := noiseless.Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Cycles == c3.Cycles {
		t.Log("noise happened to round to zero for this trace (acceptable)")
	}
	ratio := float64(c1.Cycles) / float64(c3.Cycles)
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("noise ratio %v outside ±1%%+rounding", ratio)
	}
}

func TestPublicModelsDivergeFromBoards(t *testing.T) {
	// The whole premise: best-guess models mispredict the boards. Check a
	// healthy average CPI error across a few microbenchmarks.
	p, err := Firefly()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		board  *Board
		public sim.Config
	}{
		{p.A53, sim.PublicA53()},
		{p.A72, sim.PublicA72()},
	}
	for _, c := range cases {
		var totalErr float64
		n := 0
		for _, name := range []string{"ED1", "EF", "CCh", "MD", "CS1", "MIM"} {
			b, _ := ubench.ByName(name)
			tr, err := b.Trace(ubench.Options{})
			if err != nil {
				t.Fatal(err)
			}
			hwC, err := c.board.Measure(tr)
			if err != nil {
				t.Fatal(err)
			}
			simR, err := c.public.Run(tr)
			if err != nil {
				t.Fatal(err)
			}
			e := (simR.CPI() - hwC.CPI) / hwC.CPI
			if e < 0 {
				e = -e
			}
			totalErr += e
			n++
		}
		avg := totalErr / float64(n)
		if avg < 0.10 {
			t.Errorf("%s: untuned average CPI error %.1f%% suspiciously low; the boards must diverge from the public model", c.board.Name, avg*100)
		}
		t.Logf("%s: untuned average CPI error over probe benches: %.1f%%", c.board.Name, avg*100)
	}
}

func TestBadBoardConfigs(t *testing.T) {
	bad := sim.PublicA53()
	bad.Width = 0
	if _, err := NewBoard("x", 1, bad, 0.01); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewBoard("x", 1, sim.PublicA53(), 0.5); err == nil {
		t.Error("absurd noise accepted")
	}
}

func TestWarmDataDisablesZeroFillOnBoard(t *testing.T) {
	// A cold-read stream measured with and without the WarmData
	// declaration: the board's zero-fill optimization must only apply to
	// the cold (uninitialized) variant.
	b, _ := ubench.ByName("MIM")
	tr, err := b.Trace(ubench.Options{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Firefly()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.A53.Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	warm := &trace.Trace{Name: tr.Name, Events: tr.Events, WarmData: true}
	warmC, err := p.A53.Measure(warm)
	if err != nil {
		t.Fatal(err)
	}
	if warmC.CPI <= cold.CPI {
		t.Errorf("warm-data CPI %.2f should exceed zero-filled cold CPI %.2f", warmC.CPI, cold.CPI)
	}
}
