package prefetch

import (
	"testing"
)

func mk(t *testing.T, cfg Config) Prefetcher {
	t.Helper()
	p, err := New(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Kind: "warp", Degree: 1, Distance: 1},
		{Kind: KindStride, Degree: 1, Distance: 1, TableEntries: 100},
		{Kind: KindNextLine, Degree: 0, Distance: 1},
		{Kind: KindNextLine, Degree: 1, Distance: 0},
		{Kind: KindGHB, Degree: 1, Distance: 1, TableEntries: 64, GHBEntries: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted, want error", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestNone(t *testing.T) {
	p := mk(t, DefaultConfig())
	if got := p.Observe(0x100, 0x4000, true); got != nil {
		t.Errorf("none prefetcher issued %v", got)
	}
}

func TestNextLine(t *testing.T) {
	cfg := Config{Kind: KindNextLine, Degree: 2, Distance: 1}
	p := mk(t, cfg)
	got := p.Observe(0x100, 0x4000, true)
	want := []uint64{0x4040, 0x4080}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("next-line = %#v, want %#v", got, want)
	}
	if got := p.Observe(0x100, 0x4000, false); got != nil {
		t.Errorf("next-line fired on hit without OnHit: %v", got)
	}
	cfg.OnHit = true
	p = mk(t, cfg)
	if got := p.Observe(0x100, 0x4000, false); len(got) != 2 {
		t.Errorf("next-line with OnHit should fire on hits, got %v", got)
	}
}

func TestStrideDetectsConstantStride(t *testing.T) {
	cfg := Config{Kind: KindStride, Degree: 1, Distance: 2, TableEntries: 64}
	p := mk(t, cfg)
	pc := uint64(0x1000)
	var fired []uint64
	// Stream with stride 128 (two lines).
	for i := 0; i < 8; i++ {
		addr := uint64(0x8000 + i*128)
		fired = append(fired, p.Observe(pc, addr, true)...)
	}
	if len(fired) == 0 {
		t.Fatal("stride prefetcher never fired on a constant-stride stream")
	}
	// Targets must be stride*distance ahead.
	last := fired[len(fired)-1]
	if (last-0x8000)%128 != 0 {
		t.Errorf("prefetch target %#x not on the stride lattice", last)
	}
	// Different PC must not be confused.
	if got := p.Observe(0x2000, 0x9000, true); got != nil {
		t.Errorf("fresh PC fired immediately: %v", got)
	}
}

func TestStrideIgnoresRandomStream(t *testing.T) {
	cfg := Config{Kind: KindStride, Degree: 1, Distance: 1, TableEntries: 64}
	p := mk(t, cfg)
	addrs := []uint64{0x1000, 0x9340, 0x2280, 0xF000, 0x3340, 0xB000, 0x60C0}
	n := 0
	for _, a := range addrs {
		n += len(p.Observe(0x500, a, true))
	}
	if n != 0 {
		t.Errorf("stride prefetcher fired %d times on a random stream", n)
	}
}

func TestGHBDeltaCorrelation(t *testing.T) {
	cfg := Config{Kind: KindGHB, Degree: 2, Distance: 1, TableEntries: 64, GHBEntries: 128}
	p := mk(t, cfg)
	var fired []uint64
	for i := 0; i < 10; i++ {
		addr := uint64(0x10000 + i*192) // delta = 3 lines
		fired = append(fired, p.Observe(0x700, addr, true)...)
	}
	if len(fired) == 0 {
		t.Fatal("GHB never fired on a constant-delta stream")
	}
	for _, a := range fired {
		if (a-0x10000)%192 != 0 {
			t.Errorf("GHB target %#x off the delta lattice", a)
		}
	}
}

func TestSpatialStaysInRegion(t *testing.T) {
	cfg := Config{Kind: KindSpatial, Degree: 4, Distance: 1}
	p := mk(t, cfg)
	p.Observe(0, 0x40000, true)
	fired := p.Observe(0, 0x40080, true)
	if len(fired) == 0 {
		t.Fatal("spatial prefetcher did not fire on second regional miss")
	}
	for _, a := range fired {
		if a>>12 != 0x40 {
			t.Errorf("spatial prefetch %#x escaped the 4KB region", a)
		}
	}
}

func TestSpatialExcludedFromTunerKinds(t *testing.T) {
	for _, k := range Kinds {
		if k == KindSpatial {
			t.Error("spatial prefetcher must not be offered to the tuner")
		}
	}
}

func TestPrefetcherNeverReturnsZeroAddress(t *testing.T) {
	cfgs := []Config{
		{Kind: KindStride, Degree: 4, Distance: 8, TableEntries: 16},
		{Kind: KindGHB, Degree: 4, Distance: 8, TableEntries: 16, GHBEntries: 32},
	}
	for _, cfg := range cfgs {
		p := mk(t, cfg)
		// Descending stream near zero: candidate targets would underflow.
		for i := 10; i >= 0; i-- {
			for _, a := range p.Observe(0x100, uint64(i*64), true) {
				if a == 0 || int64(a) < 0 {
					t.Errorf("%s produced non-positive address %#x", cfg.Kind, a)
				}
			}
		}
	}
}
