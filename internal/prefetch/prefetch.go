// Package prefetch implements the data prefetchers offered to the tuning
// algorithm: next-line, PC-indexed stride (Fu et al., MICRO 1992) and
// global history buffer (Nesbit & Smith, HPCA 2004) prefetching, plus the
// aggressive "spatial" prefetcher that the reference A72 board uses and the
// public model can only approximate — the deliberate abstraction gap behind
// the paper's remaining out-of-order model error (povray/x264 outliers).
package prefetch

import "fmt"

// Kind selects a prefetcher implementation.
type Kind string

// Prefetcher kinds.
const (
	KindNone     Kind = "none"
	KindNextLine Kind = "next_line"
	KindStride   Kind = "stride"
	KindGHB      Kind = "ghb"
	KindSpatial  Kind = "spatial"
)

// Kinds lists the prefetcher kinds exposed to the tuner. KindSpatial is
// intentionally excluded: it models undisclosed hardware behaviour.
var Kinds = []Kind{KindNone, KindNextLine, KindStride, KindGHB}

// Config configures a prefetcher instance.
type Config struct {
	Kind         Kind
	Degree       int  // lines fetched per trigger
	Distance     int  // lines ahead of the demand stream
	TableEntries int  // stride table / GHB index table entries (power of two)
	GHBEntries   int  // global history buffer depth
	OnHit        bool // also train/trigger on cache hits (incl. prefetched lines)
}

// DefaultConfig returns a disabled prefetcher.
func DefaultConfig() Config {
	return Config{Kind: KindNone, Degree: 1, Distance: 1, TableEntries: 64, GHBEntries: 256}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Kind {
	case KindNone:
		return nil
	case KindNextLine, KindStride, KindGHB, KindSpatial:
	default:
		return fmt.Errorf("prefetch: unknown kind %q", c.Kind)
	}
	if c.Degree < 1 || c.Degree > 16 {
		return fmt.Errorf("prefetch: degree %d out of [1,16]", c.Degree)
	}
	if c.Distance < 1 || c.Distance > 64 {
		return fmt.Errorf("prefetch: distance %d out of [1,64]", c.Distance)
	}
	if c.Kind == KindStride || c.Kind == KindGHB {
		if c.TableEntries <= 0 || c.TableEntries&(c.TableEntries-1) != 0 {
			return fmt.Errorf("prefetch: TableEntries %d must be a power of two", c.TableEntries)
		}
	}
	if c.Kind == KindGHB && c.GHBEntries <= 0 {
		return fmt.Errorf("prefetch: GHBEntries %d invalid", c.GHBEntries)
	}
	return nil
}

// Prefetcher observes demand accesses and proposes line addresses to
// prefetch. Addresses are line-aligned.
type Prefetcher interface {
	// Observe is called for each demand access with the line-aligned
	// address, the PC of the load/store, and whether the access missed.
	// It returns line addresses to prefetch (possibly none).
	Observe(pc, lineAddr uint64, miss bool) []uint64
}

// New builds a prefetcher; cfg must be valid. lineSize is in bytes.
func New(cfg Config, lineSize int) (Prefetcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ls := uint64(lineSize)
	switch cfg.Kind {
	case KindNone:
		return nonePf{}, nil
	case KindNextLine:
		return &nextLine{cfg: cfg, line: ls}, nil
	case KindStride:
		return newStride(cfg, ls), nil
	case KindGHB:
		return newGHB(cfg, ls), nil
	case KindSpatial:
		return newSpatial(cfg, ls), nil
	}
	return nil, fmt.Errorf("prefetch: unreachable kind %q", cfg.Kind)
}

type nonePf struct{}

func (nonePf) Observe(_, _ uint64, _ bool) []uint64 { return nil }

// nextLine prefetches the next Degree lines after each trigger.
type nextLine struct {
	cfg  Config
	line uint64
}

func (p *nextLine) Observe(_, lineAddr uint64, miss bool) []uint64 {
	if !miss && !p.cfg.OnHit {
		return nil
	}
	out := make([]uint64, 0, p.cfg.Degree)
	for d := 1; d <= p.cfg.Degree; d++ {
		out = append(out, lineAddr+uint64(p.cfg.Distance+d-1)*p.line)
	}
	return out
}

// stride is a PC-indexed stride prefetcher: a reference prediction table
// keyed by load PC tracking last address, stride, and a 2-bit confidence.
type stride struct {
	cfg  Config
	line uint64
	mask uint64
	tags []uint64
	last []uint64
	strd []int64
	conf []uint8
}

func newStride(cfg Config, line uint64) *stride {
	n := cfg.TableEntries
	return &stride{
		cfg: cfg, line: line, mask: uint64(n - 1),
		tags: make([]uint64, n), last: make([]uint64, n),
		strd: make([]int64, n), conf: make([]uint8, n),
	}
}

func (p *stride) Observe(pc, lineAddr uint64, miss bool) []uint64 {
	if !miss && !p.cfg.OnHit {
		return nil
	}
	i := (pc >> 2) & p.mask
	if p.tags[i] != pc {
		p.tags[i] = pc
		p.last[i] = lineAddr
		p.strd[i] = 0
		p.conf[i] = 0
		return nil
	}
	s := int64(lineAddr) - int64(p.last[i])
	p.last[i] = lineAddr
	if s == 0 {
		return nil
	}
	if s == p.strd[i] {
		if p.conf[i] < 3 {
			p.conf[i]++
		}
	} else {
		p.strd[i] = s
		if p.conf[i] > 0 {
			p.conf[i]--
		}
		return nil
	}
	if p.conf[i] < 2 {
		return nil
	}
	out := make([]uint64, 0, p.cfg.Degree)
	for d := 0; d < p.cfg.Degree; d++ {
		a := int64(lineAddr) + s*int64(p.cfg.Distance+d)
		if a > 0 {
			out = append(out, uint64(a))
		}
	}
	return out
}

// ghb is a global history buffer prefetcher (G/DC: global miss history,
// delta-correlation localized by PC index table).
type ghb struct {
	cfg     Config
	line    uint64
	mask    uint64
	index   []int // PC hash -> most recent GHB slot (-1 none)
	bufAddr []uint64
	bufPrev []int // previous slot for same PC chain (-1 none)
	head    int
	filled  bool
}

func newGHB(cfg Config, line uint64) *ghb {
	g := &ghb{
		cfg: cfg, line: line, mask: uint64(cfg.TableEntries - 1),
		index:   make([]int, cfg.TableEntries),
		bufAddr: make([]uint64, cfg.GHBEntries),
		bufPrev: make([]int, cfg.GHBEntries),
	}
	for i := range g.index {
		g.index[i] = -1
	}
	for i := range g.bufPrev {
		g.bufPrev[i] = -1
	}
	return g
}

// chain walks the per-PC linked list through the GHB, newest first,
// returning up to n line addresses.
func (g *ghb) chain(slot, n int) []uint64 {
	var out []uint64
	age := 0
	for slot >= 0 && len(out) < n && age < g.cfg.GHBEntries {
		out = append(out, g.bufAddr[slot])
		slot = g.bufPrev[slot]
		age++
	}
	return out
}

func (g *ghb) Observe(pc, lineAddr uint64, miss bool) []uint64 {
	if !miss && !g.cfg.OnHit {
		return nil
	}
	i := (pc >> 2) & g.mask
	prev := g.index[i]
	slot := g.head
	g.head = (g.head + 1) % g.cfg.GHBEntries
	g.bufAddr[slot] = lineAddr
	// Invalidate index entries that pointed at the overwritten slot by
	// bounding chain walks with an age check (see chain).
	g.bufPrev[slot] = prev
	g.index[i] = slot

	hist := g.chain(slot, 3)
	if len(hist) < 3 {
		return nil
	}
	d1 := int64(hist[0]) - int64(hist[1])
	d2 := int64(hist[1]) - int64(hist[2])
	if d1 != d2 || d1 == 0 {
		return nil
	}
	out := make([]uint64, 0, g.cfg.Degree)
	for d := 0; d < g.cfg.Degree; d++ {
		a := int64(lineAddr) + d1*int64(g.cfg.Distance+d)
		if a > 0 {
			out = append(out, uint64(a))
		}
	}
	return out
}

// spatial models an undisclosed region-based prefetcher: on two misses
// within the same 4 KB region it fetches the region's subsequent lines
// aggressively. It stands in for the real A72's prefetch behaviour that the
// public model cannot exactly reproduce.
type spatial struct {
	cfg    Config
	line   uint64
	recent map[uint64]uint64 // region -> last line seen in region
}

func newSpatial(cfg Config, line uint64) *spatial {
	return &spatial{cfg: cfg, line: line, recent: make(map[uint64]uint64)}
}

func (p *spatial) Observe(_, lineAddr uint64, miss bool) []uint64 {
	if !miss && !p.cfg.OnHit {
		return nil
	}
	region := lineAddr >> 12
	last, seen := p.recent[region]
	p.recent[region] = lineAddr
	if len(p.recent) > 1024 { // bound state
		for k := range p.recent {
			delete(p.recent, k)
			if len(p.recent) <= 512 {
				break
			}
		}
	}
	if !seen || last == lineAddr {
		return nil
	}
	dir := int64(p.line)
	if lineAddr < last {
		dir = -dir
	}
	out := make([]uint64, 0, p.cfg.Degree*2)
	for d := 1; d <= p.cfg.Degree*2; d++ {
		a := int64(lineAddr) + dir*int64(d)
		if a > 0 && uint64(a)>>12 == region {
			out = append(out, uint64(a))
		}
	}
	return out
}
