package isa

import "fmt"

// Segment is a contiguous range of initialized data memory.
type Segment struct {
	Addr uint64
	Data []byte
}

// Program is an executable image: code at Entry plus optional initialized
// data segments. It is produced by the assembler and by the
// micro-benchmark generators, and consumed by the functional emulator.
type Program struct {
	Entry uint64    // address of the first instruction
	Code  []uint32  // instruction words, laid out from Entry
	Data  []Segment // initialized data
	// Symbols maps label names to addresses, for diagnostics.
	Symbols map[string]uint64
}

// CodeEnd returns the first address past the code.
func (p *Program) CodeEnd() uint64 { return p.Entry + uint64(len(p.Code))*InstSize }

// FetchWord returns the instruction word at pc.
func (p *Program) FetchWord(pc uint64) (uint32, error) {
	if pc < p.Entry || pc >= p.CodeEnd() || (pc-p.Entry)%InstSize != 0 {
		return 0, fmt.Errorf("isa: PC %#x outside code [%#x, %#x)", pc, p.Entry, p.CodeEnd())
	}
	return p.Code[(pc-p.Entry)/InstSize], nil
}

// Validate decodes every word in the program, returning the first error.
func (p *Program) Validate() error {
	var d Decoder
	for i, w := range p.Code {
		if _, err := d.Decode(p.Entry+uint64(i)*InstSize, w); err != nil {
			return fmt.Errorf("isa: word %d: %w", i, err)
		}
	}
	return nil
}
