package isa

import "fmt"

// Op is an opcode in the 6-bit opcode space of the encoding.
type Op uint8

// Opcodes. The encoding groups are documented in encode.go.
const (
	// Integer register-register (R-type): rd, rn, rm.
	OpADD Op = iota
	OpSUB
	OpAND
	OpORR
	OpEOR
	OpLSL
	OpLSR
	OpMUL
	OpSDIV
	OpCMP // flags <- rn - rm

	// Integer register-immediate (I-type): rd, rn, imm16.
	OpADDI
	OpSUBI
	OpANDI
	OpORRI
	OpEORI
	OpLSLI
	OpLSRI
	OpCMPI // flags <- rn - imm
	OpMOVZ // rd <- imm16 << (16*hw)
	OpMOVK // rd[16*hw+:16] <- imm16

	// Floating point (F-type): vd, vn, vm (or two-operand).
	OpFADD
	OpFSUB
	OpFMUL
	OpFDIV
	OpFSQRT // vd, vn
	OpFCMP  // flags <- compare vn, vm
	OpFMOV  // vd <- vn
	OpFCVTZS
	OpSCVTF

	// SIMD (treated as one 64-bit lane pair for functional purposes).
	OpVADD
	OpVMUL

	// Memory (M-type): rt, [rn, #imm13] or rt, [rn, rm].
	OpLDRB
	OpLDRW
	OpLDRX
	OpSTRB
	OpSTRW
	OpSTRX
	OpLDRXR // register offset
	OpSTRXR
	OpLDRV // vt, [rn, #imm13]
	OpSTRV

	// Control flow.
	OpB    // imm26 word offset
	OpBL   // imm26 word offset, writes link register
	OpBCC  // cond, imm22 word offset
	OpCBZ  // rn, imm21 word offset
	OpCBNZ // rn, imm21 word offset
	OpBR   // rn (indirect)
	OpRET  // returns to link register

	// Miscellaneous.
	OpNOP
	OpHALT

	NumOps
)

var opNames = [NumOps]string{
	"add", "sub", "and", "orr", "eor", "lsl", "lsr", "mul", "sdiv", "cmp",
	"addi", "subi", "andi", "orri", "eori", "lsli", "lsri", "cmpi", "movz", "movk",
	"fadd", "fsub", "fmul", "fdiv", "fsqrt", "fcmp", "fmov", "fcvtzs", "scvtf",
	"vadd", "vmul",
	"ldrb", "ldrw", "ldrx", "strb", "strw", "strx", "ldrxr", "strxr", "ldrv", "strv",
	"b", "bl", "bcc", "cbz", "cbnz", "br", "ret",
	"nop", "halt",
}

// String returns the assembler mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// OpByName maps assembler mnemonics to opcodes.
var OpByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); op < NumOps; op++ {
		m[op.String()] = op
	}
	return m
}()

// ClassOf returns the timing class of an opcode.
func ClassOf(op Op) Class {
	switch op {
	case OpMUL:
		return ClassIntMul
	case OpSDIV:
		return ClassIntDiv
	case OpFADD, OpFSUB, OpFCMP, OpFMOV:
		return ClassFPAdd
	case OpFMUL:
		return ClassFPMul
	case OpFDIV, OpFSQRT:
		return ClassFPDiv
	case OpFCVTZS, OpSCVTF:
		return ClassFPCvt
	case OpVADD, OpVMUL:
		return ClassSIMD
	case OpLDRB, OpLDRW, OpLDRX, OpLDRXR, OpLDRV:
		return ClassLoad
	case OpSTRB, OpSTRW, OpSTRX, OpSTRXR, OpSTRV:
		return ClassStore
	case OpB, OpBCC, OpCBZ, OpCBNZ:
		return ClassBranch
	case OpBR:
		return ClassBranchInd
	case OpBL:
		return ClassCall
	case OpRET:
		return ClassRet
	case OpNOP, OpHALT:
		return ClassNop
	default:
		return ClassIntAlu
	}
}

// MemSizeOf returns the access size in bytes for memory opcodes, or 0.
func MemSizeOf(op Op) uint8 {
	switch op {
	case OpLDRB, OpSTRB:
		return 1
	case OpLDRW, OpSTRW:
		return 4
	case OpLDRX, OpSTRX, OpLDRXR, OpSTRXR, OpLDRV, OpSTRV:
		return 8
	}
	return 0
}
