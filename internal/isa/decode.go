package isa

import "fmt"

// Inst is a decoded instruction. Static fields come from the decoder;
// dynamic fields (MemAddr, Taken, Target) are filled in by the functional
// emulator or the trace reader.
type Inst struct {
	PC   uint64
	Word uint32
	Op   Op
	Cls  Class

	// Register dependencies. Only the first NDst/NSrc entries are valid.
	Dst  [2]Reg
	Src  [3]Reg
	NDst uint8
	NSrc uint8

	Imm     int64 // immediate or branch word offset
	Cond    Cond  // for BCC
	MemSize uint8 // bytes, for memory ops

	// Dynamic information.
	MemAddr uint64 // effective address for memory ops
	Taken   bool   // branch outcome
	Target  uint64 // branch target (next PC if taken)
}

// Dsts returns the valid destination registers.
func (i *Inst) Dsts() []Reg { return i.Dst[:i.NDst] }

// Srcs returns the valid source registers.
func (i *Inst) Srcs() []Reg { return i.Src[:i.NSrc] }

// NextPC returns the address of the next instruction given the dynamic
// outcome recorded in the Inst.
func (i *Inst) NextPC() uint64 {
	if i.Cls.IsBranch() && i.Taken {
		return i.Target
	}
	return i.PC + InstSize
}

// String formats the instruction for debugging.
func (i *Inst) String() string {
	return fmt.Sprintf("%#x: %s dst=%v src=%v imm=%d", i.PC, i.Op, i.Dsts(), i.Srcs(), i.Imm)
}

// Decoder decodes encoded instruction words. The zero value is a correct
// decoder.
//
// DepBug reproduces the decoder-library defect discussed in the paper
// (Sec. IV-B): when set, the decoder drops the second source operand of
// three-operand floating-point instructions, so the timing models miss
// inter-instruction dependencies on FP chains. The functional emulator
// always uses a correct decoder; the bug only distorts timing, exactly as a
// disassembler bug in a trace-driven simulator would.
type Decoder struct {
	DepBug bool
}

func (in *Inst) addDst(r Reg) {
	if r == XZR || r == RegNone {
		return
	}
	in.Dst[in.NDst] = r
	in.NDst++
}

func (in *Inst) addSrc(r Reg) {
	if r == XZR || r == RegNone {
		return
	}
	in.Src[in.NSrc] = r
	in.NSrc++
}

// Decode decodes the instruction word at pc.
func (d Decoder) Decode(pc uint64, word uint32) (Inst, error) {
	op := Op(word >> opShift)
	if op >= NumOps {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d at %#x", uint8(op), pc)
	}
	in := Inst{PC: pc, Word: word, Op: op, Cls: ClassOf(op), MemSize: MemSizeOf(op)}
	rd := Reg(word >> rdShift & regMask)
	rn := Reg(word >> rnShift & regMask)
	rm := Reg(word >> rmShift & regMask)

	switch op {
	case OpADD, OpSUB, OpAND, OpORR, OpEOR, OpLSL, OpLSR, OpMUL, OpSDIV:
		in.addDst(rd)
		in.addSrc(rn)
		in.addSrc(rm)
	case OpCMP:
		in.addDst(RegFlags)
		in.addSrc(rn)
		in.addSrc(rm)
	case OpADDI, OpSUBI, OpANDI, OpORRI, OpEORI, OpLSLI, OpLSRI:
		in.addDst(rd)
		in.addSrc(rn)
		in.Imm = int64(word & imm16M)
	case OpCMPI:
		in.addDst(RegFlags)
		in.addSrc(rn)
		in.Imm = int64(word & imm16M)
	case OpMOVZ:
		in.addDst(rd)
		in.Imm = int64(word&imm16M) << (16 * (word >> hwShift & hwMask))
	case OpMOVK:
		in.addDst(rd)
		in.addSrc(rd) // read-modify-write of a halfword
		in.Imm = int64(word&imm16M) << (16 * (word >> hwShift & hwMask))
	case OpFADD, OpFSUB, OpFMUL, OpFDIV, OpVADD, OpVMUL:
		in.addDst(V0 + rd)
		in.addSrc(V0 + rn)
		if !d.DepBug {
			in.addSrc(V0 + rm)
		}
	case OpFSQRT, OpFMOV:
		in.addDst(V0 + rd)
		in.addSrc(V0 + rn)
	case OpFCMP:
		in.addDst(RegFlags)
		in.addSrc(V0 + rn)
		if !d.DepBug {
			in.addSrc(V0 + rm)
		}
	case OpFCVTZS:
		in.addDst(rd)
		in.addSrc(V0 + rn)
	case OpSCVTF:
		in.addDst(V0 + rd)
		in.addSrc(rn)
	case OpLDRB, OpLDRW, OpLDRX:
		in.addDst(rd)
		in.addSrc(rn)
		in.Imm = signExtend(word&imm13M, 13)
	case OpLDRV:
		in.addDst(V0 + rd)
		in.addSrc(rn)
		in.Imm = signExtend(word&imm13M, 13)
	case OpSTRB, OpSTRW, OpSTRX:
		in.addSrc(rd) // store data
		in.addSrc(rn) // base address
		in.Imm = signExtend(word&imm13M, 13)
	case OpSTRV:
		in.addSrc(V0 + rd)
		in.addSrc(rn)
		in.Imm = signExtend(word&imm13M, 13)
	case OpLDRXR:
		in.addDst(rd)
		in.addSrc(rn)
		in.addSrc(rm)
	case OpSTRXR:
		in.addSrc(rd)
		in.addSrc(rn)
		in.addSrc(rm)
	case OpB:
		in.Imm = signExtend(word&imm26M, 26)
	case OpBL:
		in.addDst(RegLink)
		in.Imm = signExtend(word&imm26M, 26)
	case OpBCC:
		in.addSrc(RegFlags)
		in.Cond = Cond(word >> condSh & condMask)
		in.Imm = signExtend(word&imm22M, 22)
	case OpCBZ, OpCBNZ:
		in.addSrc(rd) // register in the rd field position
		in.Imm = signExtend(word&imm21M, 21)
	case OpBR:
		in.addSrc(rd)
	case OpRET:
		in.addSrc(RegLink)
	case OpNOP, OpHALT:
		// no operands
	default:
		return Inst{}, fmt.Errorf("isa: unhandled opcode %v at %#x", op, pc)
	}
	return in, nil
}

// StaticTarget returns the statically known target of a direct branch, or
// (0, false) for indirect branches and non-branches.
func (in *Inst) StaticTarget() (uint64, bool) {
	switch in.Op {
	case OpB, OpBL, OpBCC, OpCBZ, OpCBNZ:
		return uint64(int64(in.PC) + in.Imm*InstSize), true
	}
	return 0, false
}
