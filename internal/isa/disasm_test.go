package isa

import (
	"strings"
	"testing"
)

func TestDisassembleForms(t *testing.T) {
	cases := []struct {
		word uint32
		pc   uint64
		want string
	}{
		{EncR(OpADD, X(1), X(2), X(3)), 0, "add x1, x2, x3"},
		{EncR(OpCMP, 0, X(4), X(5)), 0, "cmp x4, x5"},
		{EncI(OpADDI, X(1), X(2), 42), 0, "addi x1, x2, #42"},
		{EncI(OpCMPI, 0, X(3), 7), 0, "cmpi x3, #7"},
		{EncMov(OpMOVZ, X(1), 99, 0), 0, "movz x1, #99"},
		{EncMov(OpMOVK, X(1), 0xBEEF, 2), 0, "movk x1, #48879, lsl #32"},
		{EncR(OpFMUL, 1, 2, 3), 0, "fmul v1, v2, v3"},
		{EncR(OpFSQRT, 1, 2, 0), 0, "fsqrt v1, v2"},
		{EncR(OpFCMP, 0, 1, 2), 0, "fcmp v1, v2"},
		{EncR(OpFCVTZS, X(1), 2, 0), 0, "fcvtzs x1, v2"},
		{EncR(OpSCVTF, 1, X(2), 0), 0, "scvtf v1, x2"},
		{EncMem(OpLDRX, X(1), X(2), -16), 0, "ldrx x1, [x2, #-16]"},
		{EncMem(OpSTRW, X(7), X(8), 12), 0, "strw x7, [x8, #12]"},
		{EncMem(OpLDRV, 3, X(2), 8), 0, "ldrv v3, [x2, #8]"},
		{EncR(OpLDRXR, X(1), X(2), X(3)), 0, "ldrxr x1, [x2, x3]"},
		{EncB(OpB, 4), 0x1000, "b 0x1010"},
		{EncB(OpBL, -4), 0x1000, "bl 0xff0"},
		{EncBCC(CondNE, 2), 0x1000, "b.ne 0x1008"},
		{EncCB(OpCBNZ, X(9), -1), 0x1000, "cbnz x9, 0xffc"},
		{EncBR(X(17)), 0, "br x17"},
		{EncRET(), 0, "ret"},
		{EncNOP(), 0, "nop"},
		{EncHALT(), 0, "halt"},
	}
	for _, c := range cases {
		got, err := Disassemble(c.pc, c.word)
		if err != nil {
			t.Errorf("Disassemble(%#x): %v", c.word, err)
			continue
		}
		if got != c.want {
			t.Errorf("Disassemble(%#x) = %q, want %q", c.word, got, c.want)
		}
	}
}

func TestDisassembleProgramListsLabels(t *testing.T) {
	p := &Program{
		Entry:   0x1000,
		Code:    []uint32{EncNOP(), EncR(OpADD, X(1), X(1), X(2)), EncHALT()},
		Symbols: map[string]uint64{"start": 0x1000, "body": 0x1004},
	}
	out, err := DisassembleProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"start:", "body:", "add x1, x1, x2", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestDisassembleInvalidWord(t *testing.T) {
	if _, err := Disassemble(0, uint32(NumOps)<<26); err == nil {
		t.Error("invalid word disassembled without error")
	}
}

// Property: every encodable instruction disassembles without error and
// non-branch forms contain their mnemonic.
func TestDisassembleCoversAllOpcodes(t *testing.T) {
	words := []uint32{}
	for op := Op(0); op < NumOps; op++ {
		switch op {
		case OpB, OpBL:
			words = append(words, EncB(op, 1))
		case OpBCC:
			words = append(words, EncBCC(CondEQ, 1))
		case OpCBZ, OpCBNZ:
			words = append(words, EncCB(op, X(1), 1))
		case OpBR:
			words = append(words, EncBR(X(1)))
		case OpRET:
			words = append(words, EncRET())
		case OpMOVZ, OpMOVK:
			words = append(words, EncMov(op, X(1), 5, 1))
		case OpLDRB, OpLDRW, OpLDRX, OpSTRB, OpSTRW, OpSTRX, OpLDRV, OpSTRV:
			words = append(words, EncMem(op, X(1), X(2), 8))
		case OpADDI, OpSUBI, OpANDI, OpORRI, OpEORI, OpLSLI, OpLSRI, OpCMPI:
			words = append(words, EncI(op, X(1), X(2), 3))
		default:
			words = append(words, EncR(op, X(1), X(2), X(3)))
		}
	}
	for _, w := range words {
		if _, err := Disassemble(0x1000, w); err != nil {
			t.Errorf("word %#x: %v", w, err)
		}
	}
}
