package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders the instruction word at pc as assembler text that
// the asm package can parse back (modulo label names: branch targets are
// rendered as absolute hex addresses, which the assembler accepts).
func Disassemble(pc uint64, word uint32) (string, error) {
	var d Decoder
	in, err := d.Decode(pc, word)
	if err != nil {
		return "", err
	}
	return in.Disassemble(), nil
}

// Disassemble renders a decoded instruction as assembler text.
func (in *Inst) Disassemble() string {
	rd := Reg(in.Word >> rdShift & regMask)
	rn := Reg(in.Word >> rnShift & regMask)
	rm := Reg(in.Word >> rmShift & regMask)
	v := func(r Reg) string { return (V0 + r).String() }

	switch in.Op {
	case OpADD, OpSUB, OpAND, OpORR, OpEOR, OpLSL, OpLSR, OpMUL, OpSDIV:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, rd, rn, rm)
	case OpCMP:
		return fmt.Sprintf("cmp %s, %s", rn, rm)
	case OpADDI, OpSUBI, OpANDI, OpORRI, OpEORI, OpLSLI, OpLSRI:
		return fmt.Sprintf("%s %s, %s, #%d", in.Op, rd, rn, in.Imm)
	case OpCMPI:
		return fmt.Sprintf("cmpi %s, #%d", rn, in.Imm)
	case OpMOVZ, OpMOVK:
		hw := in.Word >> hwShift & hwMask
		base := uint64(in.Imm) >> (16 * hw)
		if hw == 0 {
			return fmt.Sprintf("%s %s, #%d", in.Op, rd, base)
		}
		return fmt.Sprintf("%s %s, #%d, lsl #%d", in.Op, rd, base, 16*hw)
	case OpFADD, OpFSUB, OpFMUL, OpFDIV, OpVADD, OpVMUL:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, v(rd), v(rn), v(rm))
	case OpFSQRT, OpFMOV:
		return fmt.Sprintf("%s %s, %s", in.Op, v(rd), v(rn))
	case OpFCMP:
		return fmt.Sprintf("fcmp %s, %s", v(rn), v(rm))
	case OpFCVTZS:
		return fmt.Sprintf("fcvtzs %s, %s", rd, v(rn))
	case OpSCVTF:
		return fmt.Sprintf("scvtf %s, %s", v(rd), rn)
	case OpLDRB, OpLDRW, OpLDRX, OpSTRB, OpSTRW, OpSTRX:
		return fmt.Sprintf("%s %s, [%s, #%d]", in.Op, rd, rn, in.Imm)
	case OpLDRV, OpSTRV:
		return fmt.Sprintf("%s %s, [%s, #%d]", in.Op, v(rd), rn, in.Imm)
	case OpLDRXR, OpSTRXR:
		return fmt.Sprintf("%s %s, [%s, %s]", in.Op, rd, rn, rm)
	case OpB, OpBL:
		tgt, _ := in.StaticTarget()
		return fmt.Sprintf("%s %#x", in.Op, tgt)
	case OpBCC:
		tgt, _ := in.StaticTarget()
		return fmt.Sprintf("b.%s %#x", in.Cond, tgt)
	case OpCBZ, OpCBNZ:
		tgt, _ := in.StaticTarget()
		return fmt.Sprintf("%s %s, %#x", in.Op, rd, tgt)
	case OpBR:
		return fmt.Sprintf("br %s", rd)
	case OpRET:
		return "ret"
	case OpNOP:
		return "nop"
	case OpHALT:
		return "halt"
	}
	return fmt.Sprintf("?%#08x", in.Word)
}

// DisassembleProgram renders a whole program listing with addresses.
func DisassembleProgram(p *Program) (string, error) {
	var b strings.Builder
	var d Decoder
	// Invert the symbol table for label annotations.
	labels := map[uint64]string{}
	for name, addr := range p.Symbols {
		labels[addr] = name
	}
	for i, w := range p.Code {
		pc := p.Entry + uint64(i)*InstSize
		if name, ok := labels[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		in, err := d.Decode(pc, w)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %#08x: %s\n", pc, in.Disassemble())
	}
	return b.String(), nil
}
