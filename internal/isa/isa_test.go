package isa

import (
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{X(0), "x0"}, {X(30), "x30"}, {XZR, "xzr"},
		{V(0), "v0"}, {V(31), "v31"}, {RegFlags, "nzcv"}, {RegNone, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegConstructorsPanic(t *testing.T) {
	for _, f := range []func(){func() { X(32) }, func() { V(-1) }, func() { V(32) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register")
				}
			}()
			f()
		}()
	}
}

func TestClassOfCoversAllOps(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		c := ClassOf(op)
		if c >= NumClasses {
			t.Errorf("ClassOf(%v) = %v out of range", op, c)
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	if len(OpByName) != int(NumOps) {
		t.Fatalf("OpByName has %d entries, want %d", len(OpByName), NumOps)
	}
	for op := Op(0); op < NumOps; op++ {
		if got := OpByName[op.String()]; got != op {
			t.Errorf("OpByName[%q] = %v, want %v", op.String(), got, op)
		}
	}
}

func TestDecodeRType(t *testing.T) {
	var d Decoder
	w := EncR(OpADD, X(3), X(4), X(5))
	in, err := d.Decode(0x1000, w)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != OpADD || in.Cls != ClassIntAlu {
		t.Errorf("got op %v class %v", in.Op, in.Cls)
	}
	if len(in.Dsts()) != 1 || in.Dsts()[0] != X(3) {
		t.Errorf("dsts = %v, want [x3]", in.Dsts())
	}
	if len(in.Srcs()) != 2 || in.Srcs()[0] != X(4) || in.Srcs()[1] != X(5) {
		t.Errorf("srcs = %v, want [x4 x5]", in.Srcs())
	}
}

func TestDecodeZeroRegisterSuppressed(t *testing.T) {
	var d Decoder
	in, err := d.Decode(0, EncR(OpADD, XZR, X(1), XZR))
	if err != nil {
		t.Fatal(err)
	}
	if in.NDst != 0 {
		t.Errorf("write to xzr should produce no destinations, got %v", in.Dsts())
	}
	if len(in.Srcs()) != 1 || in.Srcs()[0] != X(1) {
		t.Errorf("srcs = %v, want [x1]", in.Srcs())
	}
}

func TestDecodeImmediates(t *testing.T) {
	var d Decoder
	in, err := d.Decode(0, EncI(OpADDI, X(1), X(2), 4095))
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != 4095 {
		t.Errorf("imm = %d, want 4095", in.Imm)
	}
	in, err = d.Decode(0, EncMov(OpMOVZ, X(1), 0xBEEF, 2))
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != int64(0xBEEF)<<32 {
		t.Errorf("movz imm = %#x, want %#x", in.Imm, int64(0xBEEF)<<32)
	}
	if in.NSrc != 0 {
		t.Errorf("movz should have no sources, got %v", in.Srcs())
	}
	in, err = d.Decode(0, EncMov(OpMOVK, X(1), 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if in.NSrc != 1 || in.Src[0] != X(1) {
		t.Errorf("movk should read its destination, got %v", in.Srcs())
	}
}

func TestDecodeMemOffsets(t *testing.T) {
	var d Decoder
	for _, off := range []int64{-4096, -1, 0, 1, 4095} {
		in, err := d.Decode(0, EncMem(OpLDRX, X(1), X(2), off))
		if err != nil {
			t.Fatal(err)
		}
		if in.Imm != off {
			t.Errorf("offset %d decoded as %d", off, in.Imm)
		}
		if in.MemSize != 8 {
			t.Errorf("ldrx size = %d, want 8", in.MemSize)
		}
	}
	in, _ := d.Decode(0, EncMem(OpSTRW, X(7), X(2), 16))
	if in.NDst != 0 {
		t.Errorf("store has destinations: %v", in.Dsts())
	}
	if len(in.Srcs()) != 2 {
		t.Errorf("store srcs = %v, want data+base", in.Srcs())
	}
}

func TestDecodeBranches(t *testing.T) {
	var d Decoder
	in, err := d.Decode(0x100, EncB(OpB, -4))
	if err != nil {
		t.Fatal(err)
	}
	tgt, ok := in.StaticTarget()
	if !ok || tgt != 0x100-16 {
		t.Errorf("B target = %#x ok=%v, want %#x", tgt, ok, 0x100-16)
	}
	in, _ = d.Decode(0x100, EncBCC(CondNE, 8))
	if in.Cond != CondNE {
		t.Errorf("cond = %v, want ne", in.Cond)
	}
	if in.NSrc != 1 || in.Src[0] != RegFlags {
		t.Errorf("bcc should read flags, got %v", in.Srcs())
	}
	in, _ = d.Decode(0x100, EncCB(OpCBNZ, X(9), -1))
	if len(in.Srcs()) != 1 || in.Srcs()[0] != X(9) {
		t.Errorf("cbnz srcs = %v, want [x9]", in.Srcs())
	}
	in, _ = d.Decode(0x100, EncBR(X(17)))
	if in.Cls != ClassBranchInd {
		t.Errorf("br class = %v, want branch_ind", in.Cls)
	}
	in, _ = d.Decode(0x100, EncRET())
	if in.Cls != ClassRet || in.Srcs()[0] != RegLink {
		t.Errorf("ret decode wrong: %v", in)
	}
	in, _ = d.Decode(0x100, EncB(OpBL, 4))
	if in.Dsts()[0] != RegLink {
		t.Errorf("bl should write link register, got %v", in.Dsts())
	}
}

func TestDecoderDepBug(t *testing.T) {
	good := Decoder{}
	bad := Decoder{DepBug: true}
	w := EncR(OpFMUL, V(1), V(2), V(3))
	gi, _ := good.Decode(0, w)
	bi, _ := bad.Decode(0, w)
	if len(gi.Srcs()) != 2 {
		t.Fatalf("correct decoder: %v srcs, want 2", gi.Srcs())
	}
	if len(bi.Srcs()) != 1 {
		t.Fatalf("buggy decoder: %v srcs, want 1 (dropped second operand)", bi.Srcs())
	}
	// Integer ops must be unaffected by the FP dependency bug.
	w = EncR(OpADD, X(1), X(2), X(3))
	bi, _ = bad.Decode(0, w)
	if len(bi.Srcs()) != 2 {
		t.Errorf("buggy decoder altered integer op srcs: %v", bi.Srcs())
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	var d Decoder
	if _, err := d.Decode(0, uint32(NumOps)<<26); err == nil {
		t.Error("expected error for invalid opcode")
	}
}

// Property: every encodable branch offset round-trips through the decoder.
func TestBranchOffsetRoundTripProperty(t *testing.T) {
	var d Decoder
	f := func(off int32) bool {
		w := int64(off) % (1 << 20) // keep within CBZ's signed 21-bit field
		in, err := d.Decode(0x4000, EncCB(OpCBZ, X(1), w))
		return err == nil && in.Imm == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: decoding never yields more than the declared operand bounds and
// never emits XZR or RegNone as an operand.
func TestDecodeOperandInvariantsProperty(t *testing.T) {
	var d Decoder
	f := func(word uint32) bool {
		in, err := d.Decode(0, word)
		if err != nil {
			return true // invalid opcodes are allowed to fail
		}
		if in.NDst > 2 || in.NSrc > 3 {
			return false
		}
		for _, r := range in.Dsts() {
			if r == XZR || r == RegNone || int(r) >= NumRegs {
				return false
			}
		}
		for _, r := range in.Srcs() {
			if r == XZR || r == RegNone || int(r) >= NumRegs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestProgramFetchAndValidate(t *testing.T) {
	p := &Program{
		Entry: 0x1000,
		Code:  []uint32{EncNOP(), EncR(OpADD, X(1), X(2), X(3)), EncHALT()},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.FetchWord(0x1004); err != nil {
		t.Error(err)
	}
	for _, pc := range []uint64{0xFFF, 0x1001, 0x100C} {
		if _, err := p.FetchWord(pc); err == nil {
			t.Errorf("FetchWord(%#x) should fail", pc)
		}
	}
	if p.CodeEnd() != 0x100C {
		t.Errorf("CodeEnd = %#x, want 0x100c", p.CodeEnd())
	}
}

func TestNextPC(t *testing.T) {
	in := Inst{PC: 0x100, Cls: ClassBranch, Taken: true, Target: 0x80}
	if in.NextPC() != 0x80 {
		t.Errorf("taken branch NextPC = %#x", in.NextPC())
	}
	in.Taken = false
	if in.NextPC() != 0x104 {
		t.Errorf("not-taken branch NextPC = %#x", in.NextPC())
	}
}
