// Package isa defines the AArch64-like instruction set used throughout
// racesim: register model, instruction classes, a 32-bit binary encoding,
// and a decoder that extracts the register dependencies the timing models
// consume.
//
// The ISA is a RISC subset shaped after AArch64: 31 general-purpose 64-bit
// registers plus a zero register, 32 floating-point/SIMD registers, NZCV
// condition flags, fixed 4-byte instructions, and the usual classes of
// integer, floating-point, SIMD, memory and control-flow operations. It is
// the substitute for real AArch64 binaries in the paper's front-end
// (DynamoRIO + Capstone): micro-benchmarks are assembled to this encoding,
// executed by the functional emulator, and decoded again on the timing
// side, exercising the same encode -> trace -> decode pipeline.
package isa

import "fmt"

// Reg identifies an architectural register.
//
// General-purpose registers are X0..X30 (0..30); XZR (31) reads as zero and
// discards writes. Floating-point/SIMD registers V0..V31 occupy 32..63.
// RegFlags (64) models the NZCV condition flags as a single register so the
// timing models can track flag dependencies. RegLink is an alias for X30.
type Reg uint8

// Register space layout.
const (
	// X0 is the first general-purpose register; X0+i is Xi for i in 0..30.
	X0 Reg = 0
	// XZR is the zero register: reads as zero, writes are discarded.
	XZR Reg = 31
	// V0 is the first FP/SIMD register; V0+i is Vi for i in 0..31.
	V0 Reg = 32
	// RegFlags models the NZCV condition flags as one renameable register.
	RegFlags Reg = 64
	// RegLink is the link register (X30) written by BL and read by RET.
	RegLink Reg = 30
	// NumRegs is the size of the architectural register space.
	NumRegs = 65
	// RegNone marks an unused register slot in a decoded instruction.
	RegNone Reg = 0xFF
)

// X returns the general-purpose register Xn.
func X(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("isa: X%d out of range", n))
	}
	return Reg(n)
}

// V returns the FP/SIMD register Vn.
func V(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("isa: V%d out of range", n))
	}
	return V0 + Reg(n)
}

// IsVec reports whether r is an FP/SIMD register.
func (r Reg) IsVec() bool { return r >= V0 && r < V0+32 }

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch {
	case r == XZR:
		return "xzr"
	case r == RegFlags:
		return "nzcv"
	case r == RegNone:
		return "-"
	case r < 31:
		return fmt.Sprintf("x%d", r)
	case r.IsVec():
		return fmt.Sprintf("v%d", r-V0)
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Class is the timing class of an instruction. The back-end contention
// models map classes onto functional units; latencies and issue rules are
// configured per class.
type Class uint8

// Instruction classes.
const (
	ClassIntAlu    Class = iota // integer add/sub/logic/shift/compare/move
	ClassIntMul                 // integer multiply, multiply-accumulate
	ClassIntDiv                 // integer divide
	ClassFPAdd                  // FP add/sub/compare/move
	ClassFPMul                  // FP multiply, fused multiply-add
	ClassFPDiv                  // FP divide, square root
	ClassFPCvt                  // int<->FP conversions
	ClassSIMD                   // vector integer/FP operations
	ClassLoad                   // memory loads
	ClassStore                  // memory stores
	ClassBranch                 // direct branches (conditional and unconditional)
	ClassBranchInd              // indirect branches (BR)
	ClassCall                   // direct calls (BL)
	ClassRet                    // function returns (RET)
	ClassNop                    // no-operation, HALT
	NumClasses
)

var classNames = [NumClasses]string{
	"int_alu", "int_mul", "int_div",
	"fp_add", "fp_mul", "fp_div", "fp_cvt", "simd",
	"load", "store",
	"branch", "branch_ind", "call", "ret", "nop",
}

// String returns the lowercase name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class?%d", uint8(c))
}

// IsBranch reports whether the class transfers control.
func (c Class) IsBranch() bool {
	switch c {
	case ClassBranch, ClassBranchInd, ClassCall, ClassRet:
		return true
	}
	return false
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// Cond is a condition code for conditional branches, a subset of the
// AArch64 condition field.
type Cond uint8

// Condition codes.
const (
	CondEQ Cond = iota // Z set
	CondNE             // Z clear
	CondLT             // N != V (signed less than)
	CondGE             // N == V (signed greater or equal)
	CondGT             // Z clear and N == V
	CondLE             // Z set or N != V
	CondAL             // always
	NumConds
)

var condNames = [NumConds]string{"eq", "ne", "lt", "ge", "gt", "le", "al"}

// String returns the assembler suffix of the condition.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond?%d", uint8(c))
}
