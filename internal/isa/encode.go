package isa

import "fmt"

// Binary encoding. Every instruction is one little-endian 32-bit word:
//
//	bits [31:26] opcode
//
// with the remaining 26 bits laid out per group:
//
//	R-type   rd[25:21] rn[20:16] rm[15:11]
//	I-type   rd[25:21] rn[20:16] imm16[15:0]        (MOVZ/MOVK: hw[17:16]*)
//	F-type   vd[25:21] vn[20:16] vm[15:11]          (register fields index V regs)
//	M-type   rt[25:21] rn[20:16] simm13[12:0]       (LDRXR/STRXR: rm[15:11])
//	B/BL     simm26[25:0]                           (word offset)
//	BCC      cond[25:22] simm22[21:0]               (word offset)
//	CBZ/CBNZ rn[25:21]   simm21[20:0]               (word offset)
//	BR/RET   rn[25:21]
//
// (*) MOVZ/MOVK place imm16 in [15:0] and the 2-bit halfword selector in
// [17:16]; they have no rn field.
//
// Branch offsets are relative to the branch's own PC, counted in 4-byte
// words, as in AArch64.

// InstSize is the size of every instruction in bytes.
const InstSize = 4

const (
	opShift  = 26
	rdShift  = 21
	rnShift  = 16
	rmShift  = 11
	regMask  = 0x1F
	imm16M   = 0xFFFF
	imm13M   = 0x1FFF
	imm21M   = 0x1FFFFF
	imm22M   = 0x3FFFFF
	imm26M   = 0x3FFFFFF
	hwShift  = 16
	hwMask   = 0x3
	condSh   = 22
	condMask = 0xF
)

func signExtend(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

func fitsSigned(v int64, bits uint) bool {
	min := int64(-1) << (bits - 1)
	max := -min - 1
	return v >= min && v <= max
}

// EncR encodes a register-register instruction (integer R-type, F-type,
// SIMD, or register-offset memory ops).
func EncR(op Op, rd, rn, rm Reg) uint32 {
	return uint32(op)<<opShift |
		uint32(rd&regMask)<<rdShift |
		uint32(rn&regMask)<<rnShift |
		uint32(rm&regMask)<<rmShift
}

// EncI encodes an integer register-immediate instruction. imm must fit in
// 16 unsigned bits.
func EncI(op Op, rd, rn Reg, imm uint16) uint32 {
	return uint32(op)<<opShift |
		uint32(rd&regMask)<<rdShift |
		uint32(rn&regMask)<<rnShift |
		uint32(imm)
}

// EncMov encodes MOVZ/MOVK with a halfword selector hw in 0..3.
func EncMov(op Op, rd Reg, imm uint16, hw int) uint32 {
	if op != OpMOVZ && op != OpMOVK {
		panic("isa: EncMov requires MOVZ or MOVK")
	}
	if hw < 0 || hw > 3 {
		panic(fmt.Sprintf("isa: MOV halfword selector %d out of range", hw))
	}
	return uint32(op)<<opShift |
		uint32(rd&regMask)<<rdShift |
		uint32(hw)<<hwShift |
		uint32(imm)
}

// EncMem encodes an immediate-offset memory instruction. off must fit in a
// signed 13-bit field.
func EncMem(op Op, rt, rn Reg, off int64) uint32 {
	if !fitsSigned(off, 13) {
		panic(fmt.Sprintf("isa: memory offset %d out of 13-bit range", off))
	}
	return uint32(op)<<opShift |
		uint32(rt&regMask)<<rdShift |
		uint32(rn&regMask)<<rnShift |
		uint32(off)&imm13M
}

// EncB encodes B/BL with a signed word offset relative to the branch PC.
func EncB(op Op, wordOff int64) uint32 {
	if !fitsSigned(wordOff, 26) {
		panic(fmt.Sprintf("isa: branch offset %d out of 26-bit range", wordOff))
	}
	return uint32(op)<<opShift | uint32(wordOff)&imm26M
}

// EncBCC encodes a conditional branch with a signed word offset.
func EncBCC(cond Cond, wordOff int64) uint32 {
	if !fitsSigned(wordOff, 22) {
		panic(fmt.Sprintf("isa: bcc offset %d out of 22-bit range", wordOff))
	}
	return uint32(OpBCC)<<opShift |
		uint32(cond&condMask)<<condSh |
		uint32(wordOff)&imm22M
}

// EncCB encodes CBZ/CBNZ with a signed word offset.
func EncCB(op Op, rn Reg, wordOff int64) uint32 {
	if !fitsSigned(wordOff, 21) {
		panic(fmt.Sprintf("isa: cbz offset %d out of 21-bit range", wordOff))
	}
	return uint32(op)<<opShift |
		uint32(rn&regMask)<<rdShift |
		uint32(wordOff)&imm21M
}

// EncBR encodes BR (indirect branch through rn).
func EncBR(rn Reg) uint32 {
	return uint32(OpBR)<<opShift | uint32(rn&regMask)<<rdShift
}

// EncRET encodes RET.
func EncRET() uint32 { return uint32(OpRET) << opShift }

// EncNOP encodes NOP.
func EncNOP() uint32 { return uint32(OpNOP) << opShift }

// EncHALT encodes HALT, which terminates emulation.
func EncHALT() uint32 { return uint32(OpHALT) << opShift }
