package lmbench

import (
	"testing"

	"racesim/internal/hw"
)

func TestEstimateA53(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(p.A53)
	if err != nil {
		t.Fatal(err)
	}
	truth := p.A53.TrueConfig()
	t.Logf("A53 estimates: L1=%d L2=%d mem=%d (truth: %d, %d, %d+)",
		est.L1Cycles, est.L2Cycles, est.MemCycles,
		truth.Mem.L1D.HitLatency, truth.Mem.L2.HitLatency, truth.Mem.DRAM.LatencyCycles)
	if d := est.L1Cycles - truth.Mem.L1D.HitLatency; d < -1 || d > 2 {
		t.Errorf("L1 estimate %d vs truth %d", est.L1Cycles, truth.Mem.L1D.HitLatency)
	}
	// L2 chases see L1 latency + L2 latency (+serial tag penalty).
	l2Truth := truth.Mem.L1D.HitLatency + truth.Mem.L2.HitLatency
	if d := est.L2Cycles - l2Truth; d < -4 || d > 8 {
		t.Errorf("L2 estimate %d vs expected ~%d", est.L2Cycles, l2Truth)
	}
	memTruth := truth.Mem.DRAM.LatencyCycles
	if est.MemCycles < memTruth/2 || est.MemCycles > memTruth*2 {
		t.Errorf("memory estimate %d vs truth %d", est.MemCycles, memTruth)
	}
}

func TestEstimateOrdering(t *testing.T) {
	p, err := hw.Firefly()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []*hw.Board{p.A53, p.A72} {
		est, err := Estimate(b)
		if err != nil {
			t.Fatal(err)
		}
		if !(est.L1Cycles < est.L2Cycles && est.L2Cycles < est.MemCycles) {
			t.Errorf("%s: latencies not ordered: %+v", b.Name, est)
		}
	}
}

func TestSnap(t *testing.T) {
	vals := []int{9, 12, 15, 18, 21}
	cases := map[int]int{8: 9, 13: 12, 14: 15, 17: 18, 30: 21}
	for in, want := range cases {
		if got := Snap(in, vals); got != want {
			t.Errorf("Snap(%d) = %d, want %d", in, got, want)
		}
	}
}
