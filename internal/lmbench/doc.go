// Package lmbench estimates cache and memory latencies of a reference
// board the way the paper's step 2 uses lmbench's lat_mem_rd: a randomly
// permuted pointer chase over working sets sized for each hierarchy
// level, measured through the board's performance counters only.
//
// The chase defeats prefetching (each load's address depends on the
// previous load's data), so cycles-per-load at a working-set size
// approximates the access latency of the smallest level that holds the
// set. Estimate reports L1, L2 and DRAM latencies in cycles;
// validate.SeedLatencies snaps them onto the discrete candidate values of
// the tuning space before handing the model to the tuner, mirroring how
// the paper plugs lmbench numbers into the simulator as a starting point
// rather than trusting them as ground truth.
package lmbench
