package lmbench

import (
	"fmt"
	"math/rand"
	"strings"

	"racesim/internal/asm"
	"racesim/internal/hw"
	"racesim/internal/trace"
)

// Estimates are the derived load-to-use latencies in cycles.
type Estimates struct {
	L1Cycles  int
	L2Cycles  int
	MemCycles int
}

// touchPreamble emits a store loop touching every page of the buffer, so
// the chain counts as program-written memory (as lmbench's list
// construction does). It stores at byte 56 of each page: inside the page
// but clear of the 8-byte chain pointers at stride-aligned offsets.
func touchPreamble(sizeBytes int) string {
	pages := sizeBytes / 4096
	if pages < 1 {
		pages = 1
	}
	return fmt.Sprintf("la x27, BUF\nla x26, %d\nmovz x25, #1\ntouch:\nstrx x25, [x27, #56]\naddi x27, x27, #4095\naddi x27, x27, #1\nsubi x26, x26, #1\ncbnz x26, touch\n", pages)
}

// chaseProgram builds a pointer-chase program over a permuted cycle of
// nodes spaced stride bytes apart in a buffer of the given size. The chain
// is written with stores first (as lmbench does when building its list),
// then chased with four dependent loads per loop iteration.
func chaseProgram(sizeBytes, stride int, iters int, rng *rand.Rand) (string, int) {
	n := sizeBytes / stride
	perm := rng.Perm(n)
	// Build a single cycle following the permutation order (Sattolo-like:
	// node perm[i] points to perm[i+1]).
	var b strings.Builder
	b.WriteString(".equ BUF, 0x2000000\n.org 0x1000\n")
	b.WriteString(touchPreamble(sizeBytes))
	// The chain itself is data: node offsets hold absolute next pointers.
	fmt.Fprintf(&b, "la x20, BUF+%d\n", perm[0]*stride)
	fmt.Fprintf(&b, "la x28, %d\n", iters)
	b.WriteString(`chase:
ldrx x20, [x20, #0]
ldrx x20, [x20, #0]
ldrx x20, [x20, #0]
ldrx x20, [x20, #0]
subi x28, x28, #1
cbnz x28, chase
halt
`)
	for i := 0; i < n; i++ {
		next := perm[(i+1)%n]
		fmt.Fprintf(&b, ".data BUF+%d\n.quad BUF+%d\n", perm[i]*stride, next*stride)
	}
	return b.String(), 4 * iters
}

// measureChase returns measured cycles per load for one working-set size.
// A calibration trace containing only the touch preamble is measured and
// subtracted, so the estimate isolates the chase itself (the loop overhead
// executes in the shadow of the dependent loads and costs ~nothing).
func measureChase(b *hw.Board, sizeBytes, stride, iters int, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	src, loads := chaseProgram(sizeBytes, stride, iters, rng)
	prog, err := asm.Assemble(src)
	if err != nil {
		return 0, fmt.Errorf("lmbench: %w", err)
	}
	tr, err := trace.Record(fmt.Sprintf("lmbench-%d", sizeBytes), prog, 30_000_000)
	if err != nil {
		return 0, fmt.Errorf("lmbench: %w", err)
	}
	c, err := b.Measure(tr)
	if err != nil {
		return 0, err
	}
	calSrc := touchPreamble(sizeBytes) + "halt\n"
	calProg, err := asm.Assemble(".equ BUF, 0x2000000\n.org 0x1000\n" + calSrc)
	if err != nil {
		return 0, fmt.Errorf("lmbench: %w", err)
	}
	calTr, err := trace.Record(fmt.Sprintf("lmbench-cal-%d", sizeBytes), calProg, 30_000_000)
	if err != nil {
		return 0, fmt.Errorf("lmbench: %w", err)
	}
	cal, err := b.Measure(calTr)
	if err != nil {
		return 0, err
	}
	cycles := float64(c.Cycles) - float64(cal.Cycles)
	if cycles <= 0 {
		cycles = float64(c.Cycles)
	}
	return cycles / float64(loads), nil
}

// Estimate derives L1, L2 and memory latencies from three chases whose
// cache-line footprint (nodes x 64 B) lands well inside each level: 8 KB
// for L1, 128 KB for L2 (beyond L1, inside both cores' L2), and 2 MB of
// touched lines spread over 16 MB for memory (beyond both L2s).
func Estimate(b *hw.Board) (Estimates, error) {
	l1, err := measureChase(b, 8*1024, 64, 6000, 1)
	if err != nil {
		return Estimates{}, err
	}
	l2, err := measureChase(b, 128*1024, 64, 4000, 2)
	if err != nil {
		return Estimates{}, err
	}
	mem, err := measureChase(b, 16*1024*1024, 512, 1500, 3)
	if err != nil {
		return Estimates{}, err
	}
	round := func(v float64) int {
		if v < 1 {
			return 1
		}
		return int(v + 0.5)
	}
	return Estimates{L1Cycles: round(l1), L2Cycles: round(l2), MemCycles: round(mem)}, nil
}

// Snap returns the candidate from vals closest to estimate (used to plug
// estimates into the discrete parameter space).
func Snap(estimate int, vals []int) int {
	best := vals[0]
	for _, v := range vals[1:] {
		d1, d2 := estimate-v, estimate-best
		if d1 < 0 {
			d1 = -d1
		}
		if d2 < 0 {
			d2 = -d2
		}
		if d1 < d2 {
			best = v
		}
	}
	return best
}
