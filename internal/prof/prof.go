// Package prof wires the standard pprof profilers into the execution
// engine (every `racesim` subcommand accepts -cpuprofile/-memprofile
// through engine.Options), so hot-path regressions in the replay
// pipeline are diagnosable with `go tool pprof` (see
// docs/performance.md).
package prof

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Run executes work with profiling active: CPU profiling to cpuPath and a
// heap profile to memPath on completion (either may be empty). Profile
// teardown errors are reported even when work fails.
func Run(cpuPath, memPath string, work func() error) error {
	stop, err := Start(cpuPath, memPath)
	if err != nil {
		return err
	}
	return errors.Join(work(), stop())
}

// Start begins CPU profiling to cpuPath (if non-empty) and returns a stop
// function that ends the CPU profile and writes a heap profile to memPath
// (if non-empty). Call stop exactly once, after the measured work.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
