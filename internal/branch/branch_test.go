package branch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"racesim/internal/isa"
)

func condBranch(pc, target uint64, taken bool) *isa.Inst {
	return &isa.Inst{PC: pc, Cls: isa.ClassBranch, Op: isa.OpBCC, Taken: taken, Target: target}
}

func mustUnit(t *testing.T, cfg Config) *Unit {
	t.Helper()
	u, err := NewUnit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BimodalEntries = 100 // not a power of two
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two table accepted")
	}
	bad = good
	bad.Kind = "magic"
	if err := bad.Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
	bad = good
	bad.BTBAssoc = 3
	bad.BTBEntries = 256
	if err := bad.Validate(); err == nil {
		t.Error("BTB entries not divisible by assoc accepted")
	}
	for _, k := range Kinds {
		c := DefaultConfig()
		c.Kind = k
		if err := c.Validate(); err != nil {
			t.Errorf("kind %s: %v", k, err)
		}
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	u := mustUnit(t, DefaultConfig())
	// Heavily taken branch: after warmup, nearly always predicted.
	for i := 0; i < 1000; i++ {
		u.Access(condBranch(0x1000, 0x900, true))
	}
	s := u.Stats()
	if s.DirectionMiss > 4 {
		t.Errorf("bimodal missed %d times on an always-taken branch", s.DirectionMiss)
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Kind = KindGShare
	cfg.HistoryBits = 8
	u := mustUnit(t, cfg)
	// Period-4 pattern TTNT: gshare should learn it almost perfectly;
	// bimodal cannot.
	pattern := []bool{true, true, false, true}
	for i := 0; i < 4000; i++ {
		u.Access(condBranch(0x2000, 0x1900, pattern[i%4]))
	}
	gshMiss := u.Stats().DirectionMiss

	cfgB := DefaultConfig()
	uB := mustUnit(t, cfgB)
	for i := 0; i < 4000; i++ {
		uB.Access(condBranch(0x2000, 0x1900, pattern[i%4]))
	}
	bimMiss := uB.Stats().DirectionMiss
	if gshMiss >= bimMiss {
		t.Errorf("gshare (%d misses) should beat bimodal (%d) on a periodic pattern", gshMiss, bimMiss)
	}
	if float64(gshMiss) > 0.05*4000 {
		t.Errorf("gshare miss rate %.2f%% too high for a learnable pattern", float64(gshMiss)/40)
	}
}

func TestTournamentTracksBetterComponent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Kind = KindTournament
	u := mustUnit(t, cfg)
	pattern := []bool{true, true, false, true}
	for i := 0; i < 4000; i++ {
		u.Access(condBranch(0x2000, 0x1900, pattern[i%4]))
	}
	if miss := u.Stats().DirectionMiss; float64(miss) > 0.10*4000 {
		t.Errorf("tournament miss rate %.2f%% too high", float64(miss)/40)
	}
}

func TestStaticBackwardTaken(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Kind = KindStatic
	u := mustUnit(t, cfg)
	// Backward taken loop branch: static predicts correctly.
	for i := 0; i < 100; i++ {
		u.Access(condBranch(0x1000, 0x900, true))
	}
	if miss := u.Stats().DirectionMiss; miss != 0 {
		t.Errorf("static missed %d backward-taken branches", miss)
	}
	// Forward taken: static predicts not-taken, always wrong.
	u2 := mustUnit(t, cfg)
	for i := 0; i < 100; i++ {
		u2.Access(condBranch(0x1000, 0x2000, true))
	}
	if miss := u2.Stats().DirectionMiss; miss != 100 {
		t.Errorf("static should miss all forward-taken, missed %d", miss)
	}
}

func TestBTBTargetMiss(t *testing.T) {
	u := mustUnit(t, DefaultConfig())
	// First taken encounter: direction may miss or BTB misses; afterwards
	// both direction and target hit.
	out := u.Access(condBranch(0x3000, 0x2000, true))
	if !out.Mispredict && !out.TargetMiss {
		t.Error("first taken branch should pay some penalty")
	}
	for i := 0; i < 10; i++ {
		u.Access(condBranch(0x3000, 0x2000, true))
	}
	out = u.Access(condBranch(0x3000, 0x2000, true))
	if out.Mispredict || out.TargetMiss {
		t.Errorf("warmed branch should be free, got %+v", out)
	}
}

func TestBTBCapacityEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 16
	cfg.BTBAssoc = 2
	u := mustUnit(t, cfg)
	// Warm 64 distinct always-taken branches (4x BTB capacity), then
	// revisit: targets must have been evicted for most.
	for round := 0; round < 2; round++ {
		for i := 0; i < 64; i++ {
			pc := uint64(0x1000 + i*4)
			u.Access(condBranch(pc, pc+0x400, true))
		}
	}
	if miss := u.Stats().BTBMiss; miss < 64 {
		t.Errorf("BTBMiss = %d; thrashing 64 branches in a 16-entry BTB should miss heavily", miss)
	}
}

func TestCallReturnRAS(t *testing.T) {
	u := mustUnit(t, DefaultConfig())
	// Nested call/return: returns should be perfectly predicted by RAS.
	for i := 0; i < 50; i++ {
		call := &isa.Inst{PC: 0x1000, Cls: isa.ClassCall, Op: isa.OpBL, Taken: true, Target: 0x4000}
		u.Access(call)
		call2 := &isa.Inst{PC: 0x4004, Cls: isa.ClassCall, Op: isa.OpBL, Taken: true, Target: 0x5000}
		u.Access(call2)
		ret2 := &isa.Inst{PC: 0x5000, Cls: isa.ClassRet, Op: isa.OpRET, Taken: true, Target: 0x4008}
		u.Access(ret2)
		ret := &isa.Inst{PC: 0x4010, Cls: isa.ClassRet, Op: isa.OpRET, Taken: true, Target: 0x1004}
		u.Access(ret)
	}
	s := u.Stats()
	if s.ReturnMiss != 0 {
		t.Errorf("RAS missed %d of %d returns", s.ReturnMiss, s.Returns)
	}
}

func TestRASOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASEntries = 2
	u := mustUnit(t, cfg)
	// Depth-4 nesting overflows a 2-entry RAS: outer returns mispredict.
	var pcs []uint64
	for d := 0; d < 4; d++ {
		pc := uint64(0x1000 + d*0x100)
		u.Access(&isa.Inst{PC: pc, Cls: isa.ClassCall, Op: isa.OpBL, Taken: true, Target: pc + 0x100})
		pcs = append(pcs, pc+isa.InstSize)
	}
	for d := 3; d >= 0; d-- {
		u.Access(&isa.Inst{PC: 0x5000, Cls: isa.ClassRet, Op: isa.OpRET, Taken: true, Target: pcs[d]})
	}
	if miss := u.Stats().ReturnMiss; miss == 0 {
		t.Error("overflowed RAS should mispredict some returns")
	}
}

func TestIndirectPredictorImprovesPolymorphicTargets(t *testing.T) {
	// An indirect branch alternating between targets in a fixed sequence:
	// a BTB (last-target) predictor misses every switch; the history-based
	// indirect predictor learns the sequence.
	targets := []uint64{0x2000, 0x3000, 0x4000, 0x3000}
	run := func(enabled bool) uint64 {
		cfg := DefaultConfig()
		cfg.IndirectEnabled = enabled
		cfg.IndirectEntries = 512
		cfg.IndirectHistory = 8
		u, _ := NewUnit(cfg)
		for i := 0; i < 4000; i++ {
			u.Access(&isa.Inst{PC: 0x1000, Cls: isa.ClassBranchInd, Op: isa.OpBR, Taken: true, Target: targets[i%len(targets)]})
		}
		return u.Stats().IndirectMiss
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Errorf("indirect predictor (%d misses) should beat BTB fallback (%d)", with, without)
	}
}

func TestMPKI(t *testing.T) {
	var s Stats
	s.DirectionMiss = 5
	s.IndirectMiss = 3
	s.ReturnMiss = 2
	if got := s.MPKI(10000); got != 1.0 {
		t.Errorf("MPKI = %v, want 1.0", got)
	}
	if got := s.MPKI(0); got != 0 {
		t.Errorf("MPKI(0) = %v, want 0", got)
	}
}

// Property: predictor state machines never let counters escape 0..3 and
// prediction is deterministic for identical state.
func TestPredictorDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Kind = Kinds[r.Intn(len(Kinds))]
		u1, _ := NewUnit(cfg)
		u2, _ := NewUnit(cfg)
		for i := 0; i < 500; i++ {
			pc := uint64(0x1000 + r.Intn(64)*4)
			taken := r.Intn(2) == 0
			in := condBranch(pc, pc-64, taken)
			o1 := u1.Access(in)
			o2 := u2.Access(in)
			if o1 != o2 {
				return false
			}
		}
		return u1.Stats() == u2.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
