// Package branch implements the branch prediction unit of the racesim core
// models: direction predictors (static, bimodal, gshare, tournament), a
// set-associative branch target buffer, a return-address stack, and an
// optional indirect-target predictor.
//
// The indirect predictor is the component the paper's validation loop adds
// after micro-benchmark CS1 exposes an abstraction error in the baseline
// model (Sec. IV-B): it is off in the initial public model and offered to
// the tuner as a configuration choice afterwards.
package branch

import "fmt"

// Kind selects a direction predictor.
type Kind string

// Direction predictor kinds.
const (
	KindStatic     Kind = "static"     // backward taken, forward not-taken
	KindBimodal    Kind = "bimodal"    // PC-indexed 2-bit counters
	KindGShare     Kind = "gshare"     // global history XOR PC, 2-bit counters
	KindTournament Kind = "tournament" // bimodal vs gshare with a chooser
)

// Kinds lists all supported direction predictor kinds.
var Kinds = []Kind{KindStatic, KindBimodal, KindGShare, KindTournament}

// Config configures a prediction unit.
type Config struct {
	Kind            Kind
	BimodalEntries  int // power of two
	GShareEntries   int // power of two
	HistoryBits     int
	ChooserEntries  int // power of two (tournament)
	BTBEntries      int
	BTBAssoc        int
	RASEntries      int
	IndirectEnabled bool
	IndirectEntries int // power of two
	IndirectHistory int // path history bits folded into the index
}

// DefaultConfig returns a small, plausible unit (used as a best-guess
// starting point in the public models).
func DefaultConfig() Config {
	return Config{
		Kind:            KindBimodal,
		BimodalEntries:  2048,
		GShareEntries:   2048,
		HistoryBits:     8,
		ChooserEntries:  2048,
		BTBEntries:      256,
		BTBAssoc:        2,
		RASEntries:      8,
		IndirectEnabled: false,
		IndirectEntries: 256,
		IndirectHistory: 4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	pow2 := func(name string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("branch: %s = %d must be a positive power of two", name, v)
		}
		return nil
	}
	switch c.Kind {
	case KindStatic:
	case KindBimodal:
		if err := pow2("BimodalEntries", c.BimodalEntries); err != nil {
			return err
		}
	case KindGShare:
		if err := pow2("GShareEntries", c.GShareEntries); err != nil {
			return err
		}
	case KindTournament:
		if err := pow2("BimodalEntries", c.BimodalEntries); err != nil {
			return err
		}
		if err := pow2("GShareEntries", c.GShareEntries); err != nil {
			return err
		}
		if err := pow2("ChooserEntries", c.ChooserEntries); err != nil {
			return err
		}
	default:
		return fmt.Errorf("branch: unknown predictor kind %q", c.Kind)
	}
	if c.BTBEntries <= 0 || c.BTBAssoc <= 0 || c.BTBEntries%c.BTBAssoc != 0 {
		return fmt.Errorf("branch: BTB %d entries / %d ways invalid", c.BTBEntries, c.BTBAssoc)
	}
	if c.RASEntries < 0 {
		return fmt.Errorf("branch: RASEntries = %d", c.RASEntries)
	}
	if c.IndirectEnabled {
		if err := pow2("IndirectEntries", c.IndirectEntries); err != nil {
			return err
		}
	}
	return nil
}

// DirectionPredictor predicts conditional branch directions.
type DirectionPredictor interface {
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
}

// --- static ---

type static struct{}

func (static) Predict(pc uint64) bool { return false } // refined by Unit using target
func (static) Update(uint64, bool)    {}

// --- bimodal ---

type bimodal struct {
	ctr  []uint8
	mask uint64
}

func newBimodal(entries int) *bimodal {
	b := &bimodal{ctr: make([]uint8, entries), mask: uint64(entries - 1)}
	for i := range b.ctr {
		b.ctr[i] = 1 // weakly not-taken
	}
	return b
}

func (b *bimodal) idx(pc uint64) uint64 { return (pc >> 2) & b.mask }

func (b *bimodal) Predict(pc uint64) bool { return b.ctr[b.idx(pc)] >= 2 }

func (b *bimodal) Update(pc uint64, taken bool) {
	i := b.idx(pc)
	if taken && b.ctr[i] < 3 {
		b.ctr[i]++
	} else if !taken && b.ctr[i] > 0 {
		b.ctr[i]--
	}
}

// --- gshare ---

type gshare struct {
	ctr     []uint8
	mask    uint64
	hist    uint64
	histMax uint64
}

func newGShare(entries, histBits int) *gshare {
	g := &gshare{
		ctr:     make([]uint8, entries),
		mask:    uint64(entries - 1),
		histMax: 1<<histBits - 1,
	}
	for i := range g.ctr {
		g.ctr[i] = 1
	}
	return g
}

func (g *gshare) idx(pc uint64) uint64 { return ((pc >> 2) ^ g.hist) & g.mask }

func (g *gshare) Predict(pc uint64) bool { return g.ctr[g.idx(pc)] >= 2 }

func (g *gshare) Update(pc uint64, taken bool) {
	i := g.idx(pc)
	if taken && g.ctr[i] < 3 {
		g.ctr[i]++
	} else if !taken && g.ctr[i] > 0 {
		g.ctr[i]--
	}
	g.hist = (g.hist << 1) & g.histMax
	if taken {
		g.hist |= 1
	}
}

// --- tournament ---

type tournament struct {
	bim     *bimodal
	gsh     *gshare
	chooser []uint8 // >=2 selects gshare
	mask    uint64
}

func newTournament(c Config) *tournament {
	t := &tournament{
		bim:     newBimodal(c.BimodalEntries),
		gsh:     newGShare(c.GShareEntries, c.HistoryBits),
		chooser: make([]uint8, c.ChooserEntries),
		mask:    uint64(c.ChooserEntries - 1),
	}
	for i := range t.chooser {
		t.chooser[i] = 2 // weakly prefer gshare
	}
	return t
}

func (t *tournament) Predict(pc uint64) bool {
	if t.chooser[(pc>>2)&t.mask] >= 2 {
		return t.gsh.Predict(pc)
	}
	return t.bim.Predict(pc)
}

func (t *tournament) Update(pc uint64, taken bool) {
	i := (pc >> 2) & t.mask
	bp := t.bim.Predict(pc)
	gp := t.gsh.Predict(pc)
	if bp != gp {
		if gp == taken && t.chooser[i] < 3 {
			t.chooser[i]++
		} else if bp == taken && t.chooser[i] > 0 {
			t.chooser[i]--
		}
	}
	t.bim.Update(pc, taken)
	t.gsh.Update(pc, taken)
}

func newDirection(c Config) DirectionPredictor {
	switch c.Kind {
	case KindBimodal:
		return newBimodal(c.BimodalEntries)
	case KindGShare:
		return newGShare(c.GShareEntries, c.HistoryBits)
	case KindTournament:
		return newTournament(c)
	default:
		return static{}
	}
}
