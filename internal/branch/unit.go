package branch

import (
	"racesim/internal/isa"
)

// btb is a set-associative branch target buffer with LRU replacement.
type btb struct {
	sets  int
	mask  uint64 // sets-1 when sets is a power of two, else 0 (modulo path)
	assoc int
	tags  []uint64 // sets*assoc; 0 = invalid
	tgts  []uint64
	lru   []uint8
}

func newBTB(entries, assoc int) *btb {
	sets := entries / assoc
	b := &btb{
		sets:  sets,
		assoc: assoc,
		tags:  make([]uint64, entries),
		tgts:  make([]uint64, entries),
		lru:   make([]uint8, entries),
	}
	if sets&(sets-1) == 0 {
		b.mask = uint64(sets - 1)
	}
	// Recency ranks must form a permutation per set (0 = MRU) for touch to
	// age the other ways correctly.
	for i := range b.lru {
		b.lru[i] = uint8(i % assoc)
	}
	return b
}

func (b *btb) set(pc uint64) int {
	if b.mask != 0 || b.sets == 1 {
		return int((pc >> 2) & b.mask)
	}
	return int((pc >> 2) % uint64(b.sets))
}

func (b *btb) lookup(pc uint64) (uint64, bool) {
	base := b.set(pc) * b.assoc
	for w := 0; w < b.assoc; w++ {
		if b.tags[base+w] == pc {
			b.touch(base, w)
			return b.tgts[base+w], true
		}
	}
	return 0, false
}

func (b *btb) touch(base, way int) {
	old := b.lru[base+way]
	if old == 0 {
		return // already MRU
	}
	for w := 0; w < b.assoc; w++ {
		if b.lru[base+w] < old {
			b.lru[base+w]++
		}
	}
	b.lru[base+way] = 0
}

func (b *btb) insert(pc, target uint64) {
	base := b.set(pc) * b.assoc
	victim := 0
	for w := 0; w < b.assoc; w++ {
		if b.tags[base+w] == pc || b.tags[base+w] == 0 {
			victim = w
			break
		}
		if b.lru[base+w] > b.lru[base+victim] {
			victim = w
		}
	}
	b.tags[base+victim] = pc
	b.tgts[base+victim] = target
	b.touch(base, victim)
}

// indirect is a tagged target cache indexed by PC hashed with recent
// indirect-target path history.
type indirect struct {
	tags []uint64
	tgts []uint64
	mask uint64
	hist uint64
	bits int
}

func newIndirect(entries, histBits int) *indirect {
	return &indirect{
		tags: make([]uint64, entries),
		tgts: make([]uint64, entries),
		mask: uint64(entries - 1),
		bits: histBits,
	}
}

func (p *indirect) idx(pc uint64) uint64 {
	h := p.hist & (1<<p.bits - 1)
	return ((pc >> 2) ^ h) & p.mask
}

func (p *indirect) lookup(pc uint64) (uint64, bool) {
	i := p.idx(pc)
	if p.tags[i] == pc {
		return p.tgts[i], true
	}
	return 0, false
}

func (p *indirect) update(pc, target uint64) {
	i := p.idx(pc)
	p.tags[i] = pc
	p.tgts[i] = target
	// Fold several target bit ranges so aligned targets still perturb the
	// path history.
	p.hist = p.hist<<2 ^ (target>>2 ^ target>>12 ^ target>>22)
}

// ras is a return address stack.
type ras struct {
	stack []uint64
	top   int
	size  int
}

func newRAS(entries int) *ras { return &ras{stack: make([]uint64, max(entries, 1)), size: entries} }

func (r *ras) push(addr uint64) {
	if r.size == 0 {
		return
	}
	r.top = (r.top + 1) % r.size
	r.stack[r.top] = addr
}

func (r *ras) pop() (uint64, bool) {
	if r.size == 0 {
		return 0, false
	}
	v := r.stack[r.top]
	r.top = (r.top - 1 + r.size) % r.size
	return v, v != 0
}

// Stats accumulates prediction statistics.
type Stats struct {
	Branches      uint64 // conditional + unconditional direct
	DirectionMiss uint64
	BTBMiss       uint64 // taken branches whose target was not in the BTB
	Indirect      uint64
	IndirectMiss  uint64
	Returns       uint64
	ReturnMiss    uint64
	Calls         uint64
}

// Mispredicts returns the total number of full pipeline-flush events.
func (s *Stats) Mispredicts() uint64 { return s.DirectionMiss + s.IndirectMiss + s.ReturnMiss }

// MPKI returns mispredictions per kilo-instruction given a total
// instruction count.
func (s *Stats) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Mispredicts()) / float64(instructions) * 1000
}

// Outcome describes how the unit handled one branch.
type Outcome struct {
	// Mispredict is a wrong direction or wrong predicted target: the
	// pipeline restarts from the redirect stage (full penalty).
	Mispredict bool
	// TargetMiss is a correct direction but a BTB miss on a taken direct
	// branch: the front-end refetches after decode (shorter bubble).
	TargetMiss bool
}

// Unit is a complete branch prediction unit.
type Unit struct {
	cfg       Config
	dir       DirectionPredictor
	dirStatic bool // dir is the static predictor (checked per branch otherwise)
	btb       *btb
	ind       *indirect
	ras       *ras
	stats     Stats
}

// NewUnit builds a unit from cfg; cfg must be valid.
func NewUnit(cfg Config) (*Unit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	u := &Unit{
		cfg: cfg,
		dir: newDirection(cfg),
		btb: newBTB(cfg.BTBEntries, cfg.BTBAssoc),
		ras: newRAS(cfg.RASEntries),
	}
	_, u.dirStatic = u.dir.(static)
	if cfg.IndirectEnabled {
		u.ind = newIndirect(cfg.IndirectEntries, cfg.IndirectHistory)
	}
	return u, nil
}

// Stats returns accumulated statistics.
func (u *Unit) Stats() Stats { return u.stats }

// Access predicts the branch in, updates all structures with the actual
// outcome, and reports the timing consequence.
func (u *Unit) Access(in *isa.Inst) Outcome {
	return u.AccessOutcome(in.Cls, in.Op, in.PC, in.Target, in.Taken)
}

// AccessOutcome is Access over the branch's fields directly, so decoded
// trace replay can drive the unit without materializing an isa.Inst per
// dynamic branch.
func (u *Unit) AccessOutcome(cls isa.Class, op isa.Op, pc, target uint64, taken bool) Outcome {
	switch cls {
	case isa.ClassBranch:
		u.stats.Branches++
		var predTaken bool
		if op == isa.OpB {
			predTaken = true // unconditional: direction known at decode
		} else if u.dirStatic {
			predTaken = target <= pc // backward taken, forward not-taken
		} else {
			predTaken = u.dir.Predict(pc)
		}
		predTarget, btbHit := u.btb.lookup(pc)
		u.dir.Update(pc, taken)
		if taken {
			u.btb.insert(pc, target)
		}
		if predTaken != taken {
			u.stats.DirectionMiss++
			return Outcome{Mispredict: true}
		}
		if taken && (!btbHit || predTarget != target) {
			u.stats.BTBMiss++
			return Outcome{TargetMiss: true}
		}
		return Outcome{}

	case isa.ClassCall:
		u.stats.Calls++
		u.ras.push(pc + isa.InstSize)
		_, btbHit := u.btb.lookup(pc)
		u.btb.insert(pc, target)
		if !btbHit {
			u.stats.BTBMiss++
			return Outcome{TargetMiss: true}
		}
		return Outcome{}

	case isa.ClassRet:
		u.stats.Returns++
		pred, ok := u.ras.pop()
		if !ok || pred != target {
			u.stats.ReturnMiss++
			return Outcome{Mispredict: true}
		}
		return Outcome{}

	case isa.ClassBranchInd:
		u.stats.Indirect++
		var pred uint64
		var hit bool
		if u.ind != nil {
			pred, hit = u.ind.lookup(pc)
			u.ind.update(pc, target)
		} else {
			pred, hit = u.btb.lookup(pc)
			u.btb.insert(pc, target)
		}
		if !hit || pred != target {
			u.stats.IndirectMiss++
			return Outcome{Mispredict: true}
		}
		return Outcome{}
	}
	return Outcome{}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
