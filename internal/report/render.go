package report

import (
	"encoding/json"
	"fmt"
	"strings"
)

// MarshalJSON renders the report as indented JSON with a trailing
// newline — the bytes persisted to the reports/ history directory and
// served by GET /v1/jobs/{id}/report. Field order is fixed by the
// struct definitions and boards are name-sorted, so two runs over the
// same data produce identical bytes.
func (r ValidationReport) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Render writes the human-readable report. Every row is fixed-width
// formatted from finite values in a fixed order, so the text is
// byte-deterministic across runs and parallelism levels — the same
// guarantee the per-category error lines established, now for the full
// statistical table.
func (r ValidationReport) Render() string {
	var b strings.Builder
	for i, br := range r.Boards {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "validation report: %s (%s core, stage %s)\n", br.Board, br.Core, br.Stage)
		fmt.Fprintf(&b, "  %-14s %3s  %6s  %7s  %6s  %7s  %18s  %7s  %-14s %s\n",
			"group", "n", "corr", "rmse", "mape", "bias", "95% CI", "p", "worst", "verdict")
		for _, g := range br.Groups {
			verdict := "ok"
			if !g.Pass {
				verdict = "FAIL"
			}
			fmt.Fprintf(&b, "  %-14s %3d  %6.3f  %7.4f  %5.1f%%  %+6.1f%%  [%+6.1f%%, %+6.1f%%]  %7.4f  %-14s %s\n",
				g.Name, g.N, g.Correlation, g.RMSE, g.MAPE*100, g.MeanError*100,
				g.CILo*100, g.CIHi*100, g.PValue,
				fmt.Sprintf("%s %.1f%%", g.WorstBench, g.MaxAbsError*100), verdict)
			for _, v := range g.Violations {
				fmt.Fprintf(&b, "    ! %s\n", v)
			}
		}
		for _, p := range br.Plausibility {
			fmt.Fprintf(&b, "  ! plausibility: %s\n", p)
		}
	}
	if r.Pass {
		b.WriteString("accuracy budget: PASS\n")
	} else {
		b.WriteString("accuracy budget: FAIL\n")
	}
	return b.String()
}
