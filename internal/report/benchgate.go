package report

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// BenchThreshold pins one metric of one committed benchmark result: the
// BENCH_*.json file recording it, the benchmark name inside its
// "results" array, the numeric field to read, and the bound. At least
// one of Min/Max must be set.
type BenchThreshold struct {
	File   string  `json:"file"`
	Bench  string  `json:"bench"`
	Metric string  `json:"metric"`
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
}

// BenchBudget is the bench-regression threshold file: the perf floor a
// PR must not sink the committed BENCH_*.json numbers below.
type BenchBudget struct {
	Thresholds []BenchThreshold `json:"thresholds"`
}

// LoadBenchBudget reads a bench threshold file (strict JSON).
func LoadBenchBudget(path string) (BenchBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchBudget{}, err
	}
	var b BenchBudget
	if err := unmarshalStrict(data, &b); err != nil {
		return BenchBudget{}, fmt.Errorf("report: bench budget %s: %w", path, err)
	}
	if len(b.Thresholds) == 0 {
		return BenchBudget{}, fmt.Errorf("report: bench budget %s declares no thresholds", path)
	}
	for i, t := range b.Thresholds {
		if t.File == "" || t.Bench == "" || t.Metric == "" {
			return BenchBudget{}, fmt.Errorf("report: bench budget %s: threshold %d needs file, bench and metric", path, i)
		}
		if t.Min == 0 && t.Max == 0 {
			return BenchBudget{}, fmt.Errorf("report: bench budget %s: threshold %d (%s/%s) sets neither min nor max", path, i, t.Bench, t.Metric)
		}
	}
	return b, nil
}

// benchFile is the committed BENCH_*.json shape the gate understands:
// anything with a "results" array of named objects with numeric fields.
type benchFile struct {
	Results []map[string]any `json:"results"`
}

// CheckBench verifies every threshold against the BENCH_*.json files
// under dir and returns one error naming each violation, or nil when
// all thresholds hold. A missing file, benchmark or metric is a
// violation too — a silently dropped benchmark must not pass the gate.
func CheckBench(dir string, b BenchBudget) error {
	files := map[string]benchFile{}
	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}
	for _, t := range b.Thresholds {
		bf, ok := files[t.File]
		if !ok {
			data, err := os.ReadFile(filepath.Join(dir, t.File))
			if err != nil {
				fail("%s: %v", t.File, err)
				files[t.File] = benchFile{}
				continue
			}
			if err := json.Unmarshal(data, &bf); err != nil {
				fail("%s: %v", t.File, err)
				files[t.File] = benchFile{}
				continue
			}
			files[t.File] = bf
		}
		var result map[string]any
		for _, r := range bf.Results {
			if name, _ := r["name"].(string); name == t.Bench {
				result = r
				break
			}
		}
		if result == nil {
			fail("%s: benchmark %q not found", t.File, t.Bench)
			continue
		}
		v, ok := result[t.Metric].(float64)
		if !ok {
			fail("%s: %s has no numeric metric %q", t.File, t.Bench, t.Metric)
			continue
		}
		if t.Min != 0 && v < t.Min {
			fail("%s: %s %s = %v regressed below threshold %v", t.File, t.Bench, t.Metric, v, t.Min)
		}
		if t.Max != 0 && v > t.Max {
			fail("%s: %s %s = %v exceeds threshold %v", t.File, t.Bench, t.Metric, v, t.Max)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("report: bench regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
