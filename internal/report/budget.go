package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Tolerance declares the accuracy bounds one sample group must meet.
// Zero values mean "unconstrained", so a budget file only states the
// bounds it cares about.
type Tolerance struct {
	// MinCorrelation is the minimum Pearson r between sim and hardware
	// CPI (e.g. 0.99).
	MinCorrelation float64 `json:"min_correlation,omitempty"`
	// MaxMAPE bounds the mean absolute percentage error, as a fraction.
	MaxMAPE float64 `json:"max_mape,omitempty"`
	// MaxAbsMeanError bounds the absolute mean signed error (model bias).
	MaxAbsMeanError float64 `json:"max_abs_mean_error,omitempty"`
	// MaxRMSE bounds the root-mean-square CPI error, in CPI units.
	MaxRMSE float64 `json:"max_rmse,omitempty"`
	// MaxBenchError bounds the worst single benchmark's absolute error.
	MaxBenchError float64 `json:"max_bench_error,omitempty"`
}

// Check returns one violation line per bound the metrics break.
func (t Tolerance) Check(m Metrics) []string {
	var v []string
	if t.MinCorrelation > 0 && m.Correlation < t.MinCorrelation {
		v = append(v, fmt.Sprintf("correlation %.4f < budget %.4f", m.Correlation, t.MinCorrelation))
	}
	if t.MaxMAPE > 0 && m.MAPE > t.MaxMAPE {
		v = append(v, fmt.Sprintf("MAPE %.1f%% > budget %.1f%%", m.MAPE*100, t.MaxMAPE*100))
	}
	if t.MaxAbsMeanError > 0 && math.Abs(m.MeanError) > t.MaxAbsMeanError {
		v = append(v, fmt.Sprintf("|mean error| %.1f%% > budget %.1f%%", math.Abs(m.MeanError)*100, t.MaxAbsMeanError*100))
	}
	if t.MaxRMSE > 0 && m.RMSE > t.MaxRMSE {
		v = append(v, fmt.Sprintf("RMSE %.4f CPI > budget %.4f CPI", m.RMSE, t.MaxRMSE))
	}
	if t.MaxBenchError > 0 && m.MaxAbsError > t.MaxBenchError {
		v = append(v, fmt.Sprintf("worst bench %s error %.1f%% > budget %.1f%%", m.WorstBench, m.MaxAbsError*100, t.MaxBenchError*100))
	}
	return v
}

// BoardBudget declares the tolerances for one board: suite-wide bounds
// plus optional per-category overrides.
type BoardBudget struct {
	Suite      Tolerance            `json:"suite"`
	Categories map[string]Tolerance `json:"categories,omitempty"`
}

// Budget is the accuracy-budget file: tolerances per board name. Boards
// absent from the budget pass unconditionally (their report still
// carries every metric).
type Budget struct {
	Boards map[string]BoardBudget `json:"boards"`
}

// ParseBudget decodes a budget from JSON, rejecting unknown fields so a
// typoed bound fails the gate loudly instead of silently not gating.
func ParseBudget(data []byte) (Budget, error) {
	var b Budget
	if err := unmarshalStrict(data, &b); err != nil {
		return Budget{}, fmt.Errorf("report: budget: %w", err)
	}
	return b, nil
}

// LoadBudget reads a budget file.
func LoadBudget(path string) (Budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Budget{}, err
	}
	b, err := ParseBudget(data)
	if err != nil {
		return Budget{}, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
