package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// suiteSamples is a small hand-checkable dataset: two categories, the
// model optimistic on memory and pessimistic on execution.
func suiteSamples() []Sample {
	return []Sample{
		{Bench: "MD", Category: "memory", SimCPI: 1.10, HWCPI: 1.00},
		{Bench: "ML2", Category: "memory", SimCPI: 0.90, HWCPI: 1.00},
		{Bench: "EI", Category: "execution", SimCPI: 2.00, HWCPI: 2.00},
		{Bench: "EF", Category: "execution", SimCPI: 3.60, HWCPI: 3.00},
	}
}

func TestComputeHandChecked(t *testing.T) {
	m, err := Compute(suiteSamples())
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 4 {
		t.Errorf("N = %d, want 4", m.N)
	}
	// Errors: +0.1, -0.1, 0, +0.2 -> MAPE 0.1, mean +0.05.
	if math.Abs(m.MAPE-0.1) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.1", m.MAPE)
	}
	if math.Abs(m.MeanError-0.05) > 1e-12 {
		t.Errorf("mean error = %v, want 0.05", m.MeanError)
	}
	// RMSE = sqrt((0.01 + 0.01 + 0 + 0.36) / 4).
	if want := math.Sqrt(0.38 / 4); math.Abs(m.RMSE-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", m.RMSE, want)
	}
	if m.Correlation < 0.9 || m.Correlation > 1 {
		t.Errorf("correlation = %v, want in (0.9, 1] for near-diagonal data", m.Correlation)
	}
	if m.WorstBench != "EF" || math.Abs(m.MaxAbsError-0.2) > 1e-12 {
		t.Errorf("worst = %s %.3f, want EF 0.200", m.WorstBench, m.MaxAbsError)
	}
	// The CI must bracket the mean and p must be a probability.
	if !(m.CILo <= m.MeanError && m.MeanError <= m.CIHi) {
		t.Errorf("CI [%v, %v] does not bracket mean %v", m.CILo, m.CIHi, m.MeanError)
	}
	if m.CILo == m.CIHi {
		t.Error("CI should widen beyond the mean for n = 4 with nonzero variance")
	}
	if m.PValue < 0 || m.PValue > 1 {
		t.Errorf("p-value = %v outside [0, 1]", m.PValue)
	}
}

func TestComputeDegenerateGroupsStayFinite(t *testing.T) {
	cases := map[string][]Sample{
		"empty":        nil,
		"single":       {{Bench: "MD", Category: "memory", SimCPI: 1.2, HWCPI: 1.0}},
		"zeroVariance": {{Bench: "a", SimCPI: 1, HWCPI: 1}, {Bench: "b", SimCPI: 1, HWCPI: 1}},
	}
	for name, samples := range cases {
		m, err := Compute(samples)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for field, v := range map[string]float64{
			"correlation": m.Correlation, "rmse": m.RMSE, "mape": m.MAPE,
			"mean": m.MeanError, "ci_lo": m.CILo, "ci_hi": m.CIHi,
			"p": m.PValue, "max": m.MaxAbsError,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %v, want finite", name, field, v)
			}
		}
		// Every metrics value must marshal (json.Marshal fails on NaN).
		if _, err := json.Marshal(m); err != nil {
			t.Errorf("%s: metrics do not marshal: %v", name, err)
		}
	}
}

func TestComputeRejectsNonFiniteCPI(t *testing.T) {
	cases := []Sample{
		{Bench: "bad", SimCPI: 1, HWCPI: 0},
		{Bench: "bad", SimCPI: 1, HWCPI: -2},
		{Bench: "bad", SimCPI: 1, HWCPI: math.NaN()},
		{Bench: "bad", SimCPI: math.NaN(), HWCPI: 1},
		{Bench: "bad", SimCPI: math.Inf(1), HWCPI: 1},
	}
	for _, s := range cases {
		if _, err := Compute([]Sample{s}); err == nil || !strings.Contains(err.Error(), "bad") {
			t.Errorf("Compute(%+v) err = %v, want error naming the benchmark", s, err)
		}
	}
}

func TestBuildGroupsAndOrdering(t *testing.T) {
	br, err := Build("firefly-a53", "inorder", "fixed", suiteSamples(), nil, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !br.Pass {
		t.Error("unconstrained budget must pass")
	}
	var names []string
	for _, g := range br.Groups {
		names = append(names, g.Name)
	}
	want := []string{"suite", "memory", "execution"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("groups %v, want %v (suite first, categories in first-appearance order)", names, want)
	}
	if br.Groups[0].N != 4 || br.Groups[1].N != 2 || br.Groups[2].N != 2 {
		t.Errorf("group sizes %d/%d/%d, want 4/2/2", br.Groups[0].N, br.Groups[1].N, br.Groups[2].N)
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build("b", "inorder", "fixed", nil, nil, Budget{}); err == nil {
		t.Error("empty sample set must error, not produce an all-zero report")
	}
}

// TestOutOfToleranceBudgetFailsGate is the acceptance scenario: inject a
// budget the data cannot meet and confirm the gate (report.Err) fails
// with violations naming each broken bound — the exact failure mode the
// CI accuracy-gate job exists to produce.
func TestOutOfToleranceBudgetFailsGate(t *testing.T) {
	budget := Budget{Boards: map[string]BoardBudget{
		"firefly-a53": {
			Suite:      Tolerance{MinCorrelation: 0.99999, MaxMAPE: 0.0001},
			Categories: map[string]Tolerance{"memory": {MaxBenchError: 0.0001}},
		},
	}}
	br, err := Build("firefly-a53", "inorder", "fixed", suiteSamples(), nil, budget)
	if err != nil {
		t.Fatal(err)
	}
	if br.Pass {
		t.Fatal("out-of-tolerance budget must fail the board")
	}
	rep := New(br)
	if rep.Pass {
		t.Fatal("failing board must fail the report")
	}
	gateErr := rep.Err()
	if gateErr == nil {
		t.Fatal("Err() = nil for a failing report; the CI gate would pass")
	}
	for _, want := range []string{"correlation", "MAPE", "worst bench", "firefly-a53/suite", "firefly-a53/memory"} {
		if !strings.Contains(gateErr.Error(), want) {
			t.Errorf("gate error missing %q:\n%v", want, gateErr)
		}
	}
	if !strings.Contains(rep.Render(), "accuracy budget: FAIL") {
		t.Errorf("rendered report missing FAIL footer:\n%s", rep.Render())
	}
}

func TestBudgetOnlyGatesNamedBoards(t *testing.T) {
	budget := Budget{Boards: map[string]BoardBudget{
		"some-other-board": {Suite: Tolerance{MaxMAPE: 1e-9}},
	}}
	br, err := Build("firefly-a53", "inorder", "fixed", suiteSamples(), nil, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !br.Pass {
		t.Error("a board absent from the budget must pass unconditionally")
	}
}

func TestPlausibilityViolationsFailBoard(t *testing.T) {
	br, err := Build("firefly-a53", "inorder", "fixed", suiteSamples(),
		[]string{"ipc<=width: IPC 4.2 exceeds issue width 2"}, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if br.Pass {
		t.Error("plausibility violation must fail the board even with no budget")
	}
	rep := New(br)
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "plausibility") {
		t.Errorf("gate error must carry the plausibility violation: %v", err)
	}
}

func TestNewSortsBoardsByName(t *testing.T) {
	a72, err := Build("firefly-a72", "ooo", "fixed", suiteSamples(), nil, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	a53, err := Build("firefly-a53", "inorder", "fixed", suiteSamples(), nil, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	rep := New(a72, a53)
	if rep.Boards[0].Board != "firefly-a53" || rep.Boards[1].Board != "firefly-a72" {
		t.Errorf("boards not name-sorted: %s, %s", rep.Boards[0].Board, rep.Boards[1].Board)
	}
	if rep.Version != Version {
		t.Errorf("version %d, want %d", rep.Version, Version)
	}
}

func TestParseBudgetRejectsUnknownFields(t *testing.T) {
	_, err := ParseBudget([]byte(`{"boards": {"b": {"suite": {"max_mapee": 0.1}}}}`))
	if err == nil {
		t.Error("typoed tolerance field must fail loudly, not silently not gate")
	}
	b, err := ParseBudget([]byte(`{"boards": {"b": {"suite": {"max_mape": 0.1}}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if b.Boards["b"].Suite.MaxMAPE != 0.1 {
		t.Errorf("parsed MaxMAPE = %v, want 0.1", b.Boards["b"].Suite.MaxMAPE)
	}
}

func TestMarshalIndentDeterministic(t *testing.T) {
	br, err := Build("firefly-a53", "inorder", "fixed", suiteSamples(), nil, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	rep := New(br)
	first, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := rep.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatal("MarshalIndent bytes differ between calls")
		}
	}
	if first[len(first)-1] != '\n' {
		t.Error("report JSON missing trailing newline")
	}
	var round ValidationReport
	if err := json.Unmarshal(first, &round); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if round.Boards[0].Board != "firefly-a53" {
		t.Errorf("round-tripped board %q", round.Boards[0].Board)
	}
}
